#include "net/bytes.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace iotsentinel::net {
namespace {

TEST(ByteReader, ReadsBigEndianScalars) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  ByteReader r(data);
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_EQ(r.u16be(), 0x0203);
  EXPECT_EQ(r.u32be(), 0x04050607u);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, ReadsLittleEndianScalars) {
  const std::uint8_t data[] = {0xd4, 0xc3, 0xb2, 0xa1, 0x34, 0x12};
  ByteReader r(data);
  EXPECT_EQ(r.u32le(), 0xa1b2c3d4u);
  EXPECT_EQ(r.u16le(), 0x1234);
}

TEST(ByteReader, FailsWithoutAdvancingOnTruncation) {
  const std::uint8_t data[] = {0xaa};
  ByteReader r(data);
  EXPECT_FALSE(r.u16be().has_value());
  EXPECT_EQ(r.remaining(), 1u);  // cursor unchanged
  EXPECT_EQ(r.u8(), 0xaa);
}

TEST(ByteReader, BytesViewAndSkip) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  ByteReader r(data);
  auto view = r.bytes(3);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ((*view)[2], 3);
  EXPECT_FALSE(r.skip(5));
  EXPECT_TRUE(r.skip(2));
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, PeekRestDoesNotConsume) {
  const std::uint8_t data[] = {9, 8, 7};
  ByteReader r(data);
  ASSERT_TRUE(r.skip(1));
  EXPECT_EQ(r.peek_rest().size(), 2u);
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(ByteWriter, RoundTripsThroughReader) {
  ByteWriter w;
  w.u8(0xab);
  w.u16be(0x1234);
  w.u32be(0xdeadbeef);
  w.u32le(0xcafebabe);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16be(), 0x1234);
  EXPECT_EQ(r.u32be(), 0xdeadbeefu);
  EXPECT_EQ(r.u32le(), 0xcafebabeu);
}

TEST(ByteWriter, PatchU16FixesEarlierField) {
  ByteWriter w;
  w.u16be(0);
  w.bytes(std::string("xyz"));
  w.patch_u16be(0, 3);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16be(), 3);
}

TEST(ByteWriter, PadAppendsFill) {
  ByteWriter w;
  w.pad(4, 0x55);
  ASSERT_EQ(w.size(), 4u);
  for (auto b : w.data()) EXPECT_EQ(b, 0x55);
}

TEST(InternetChecksum, MatchesKnownVector) {
  // Classic RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::uint8_t even[] = {0x12, 0x34, 0x56, 0x00};
  const std::uint8_t odd[] = {0x12, 0x34, 0x56};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(InternetChecksum, ValidatedMessageSumsToZero) {
  // A message with its own checksum embedded verifies to 0xffff complement.
  std::vector<std::uint8_t> msg = {0x45, 0x00, 0x00, 0x1c, 0x00, 0x00,
                                   0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                                   0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                   0x00, 0x02};
  const std::uint16_t csum = internet_checksum(msg);
  msg[10] = static_cast<std::uint8_t>(csum >> 8);
  msg[11] = static_cast<std::uint8_t>(csum & 0xff);
  EXPECT_EQ(internet_checksum(msg), 0);
}

TEST(ByteReader, ReadTagConsumesOnlyOnExactMatch) {
  const std::uint8_t data[] = {'I', 'R', 'F', '2', 0x01};
  ByteReader r(data);
  EXPECT_FALSE(r.read_tag("IRF1"));
  EXPECT_EQ(r.position(), 0u);  // mismatch leaves the cursor for a re-probe
  EXPECT_TRUE(r.read_tag("IRF2"));
  EXPECT_EQ(r.position(), 4u);
  EXPECT_FALSE(r.read_tag("IRF2"));  // only one byte left: truncation
  EXPECT_EQ(r.position(), 4u);
}

TEST(ByteReader, SliceBoundsSubReaderToItsRecord) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03, 0x04, 0x05};
  ByteReader r(data);
  auto sub = r.slice(3);
  ASSERT_TRUE(sub.has_value());
  // The parent already sits past the record, however much of the slice
  // the sub-reader consumes.
  EXPECT_EQ(r.position(), 3u);
  EXPECT_EQ(sub->u16be(), 0x0102);
  EXPECT_FALSE(sub->u16be().has_value());  // only 1 byte left in the slice
  EXPECT_EQ(sub->u8(), 0x03);
  EXPECT_FALSE(r.slice(3).has_value());  // 2 bytes remain in the parent
  EXPECT_EQ(r.position(), 3u);
}

TEST(ByteReader, F32beRoundTripsBitPatterns) {
  ByteWriter w;
  w.f32be(1.5f);
  w.f32be(-0.0f);
  ByteReader r(w.data());
  EXPECT_EQ(r.f32be(), 1.5f);
  auto neg_zero = r.f32be();
  ASSERT_TRUE(neg_zero.has_value());
  EXPECT_TRUE(std::signbit(*neg_zero));  // the bit pattern survives
}

TEST(ByteWriter, PatchU32beRewritesLengthPrefix) {
  ByteWriter w;
  w.u32be(0);
  w.bytes(std::string("payload"));
  w.patch_u32be(0, static_cast<std::uint32_t>(w.size() - 4));
  ByteReader r(w.data());
  EXPECT_EQ(r.u32be(), 7u);
  EXPECT_THROW(w.patch_u32be(w.size() - 2, 1), std::out_of_range);
}

}  // namespace
}  // namespace iotsentinel::net
