#include "core/classifier_bank.hpp"

#include <gtest/gtest.h>

#include "simnet/corpus.hpp"

namespace iotsentinel::core {
namespace {

/// Small corpus over a few clearly distinct device-types.
sim::FingerprintCorpus distinct_corpus() {
  return sim::generate_corpus_for(
      {"Aria", "HueBridge", "MAXGateway", "WeMoLink"}, 12, 77);
}

std::vector<std::vector<fp::FixedFingerprint>> to_fixed(
    const sim::FingerprintCorpus& corpus) {
  std::vector<std::vector<fp::FixedFingerprint>> out;
  for (const auto& runs : corpus.by_type) {
    auto& fixed = out.emplace_back();
    for (const auto& f : runs) fixed.push_back(f.to_fixed());
  }
  return out;
}

TEST(ClassifierBank, AcceptsOwnTypeRejectsOthers) {
  const auto corpus = distinct_corpus();
  const auto fixed = to_fixed(corpus);
  ClassifierBank bank;
  bank.train(corpus.type_names, fixed);
  ASSERT_EQ(bank.num_types(), 4u);

  // Every training fingerprint should be accepted by (at least) its own
  // classifier, and for clearly distinct types mostly only by it.
  for (std::size_t t = 0; t < fixed.size(); ++t) {
    std::size_t own_accepts = 0;
    std::size_t foreign_accepts = 0;
    for (const auto& f : fixed[t]) {
      const auto accepted = bank.accepted(f);
      for (std::size_t a : accepted) {
        if (a == t) {
          ++own_accepts;
        } else {
          ++foreign_accepts;
        }
      }
    }
    EXPECT_GE(own_accepts, fixed[t].size() - 1) << corpus.type_names[t];
    EXPECT_LE(foreign_accepts, 2u) << corpus.type_names[t];
  }
}

TEST(ClassifierBank, ScoresAreProbabilities) {
  const auto corpus = distinct_corpus();
  const auto fixed = to_fixed(corpus);
  ClassifierBank bank;
  bank.train(corpus.type_names, fixed);
  const auto scores = bank.scores(fixed[0][0]);
  ASSERT_EQ(scores.size(), 4u);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_GT(scores[0], 0.5);  // own type confidently accepted
}

TEST(ClassifierBank, ScoreOneMatchesScores) {
  const auto corpus = distinct_corpus();
  const auto fixed = to_fixed(corpus);
  ClassifierBank bank;
  bank.train(corpus.type_names, fixed);
  const auto all = bank.scores(fixed[1][3]);
  for (std::size_t t = 0; t < bank.num_types(); ++t) {
    EXPECT_DOUBLE_EQ(bank.score_one(t, fixed[1][3]), all[t]);
  }
}

TEST(ClassifierBank, AddTypeExtendsBankIncrementally) {
  auto corpus = distinct_corpus();
  auto fixed = to_fixed(corpus);

  // Train on the first three types only.
  std::vector<std::string> names3(corpus.type_names.begin(),
                                  corpus.type_names.end() - 1);
  std::vector<std::vector<fp::FixedFingerprint>> fixed3(fixed.begin(),
                                                        fixed.end() - 1);
  ClassifierBank bank;
  bank.train(names3, fixed3);
  EXPECT_EQ(bank.num_types(), 3u);

  // Snapshot existing classifiers' behaviour on a probe.
  const auto probe = fixed[0][0];
  const auto before = bank.scores(probe);

  // Add the fourth type; existing classifiers must be untouched.
  std::vector<const fp::FixedFingerprint*> negative_pool;
  for (std::size_t t = 0; t < 3; ++t) {
    for (const auto& f : fixed[t]) negative_pool.push_back(&f);
  }
  const std::size_t idx = bank.add_type(corpus.type_names[3], fixed[3],
                                        negative_pool);
  EXPECT_EQ(idx, 3u);
  EXPECT_EQ(bank.num_types(), 4u);
  const auto after = bank.scores(probe);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_DOUBLE_EQ(before[t], after[t]) << "classifier " << t << " changed";
  }
  // And the new classifier recognises its own type.
  EXPECT_GT(bank.score_one(3, fixed[3][0]), 0.5);
}

TEST(ClassifierBank, AddTypeRetrainsExistingName) {
  const auto corpus = distinct_corpus();
  const auto fixed = to_fixed(corpus);
  ClassifierBank bank;
  bank.train(corpus.type_names, fixed);
  std::vector<const fp::FixedFingerprint*> pool;
  for (const auto& f : fixed[1]) pool.push_back(&f);
  const std::size_t idx = bank.add_type(corpus.type_names[0], fixed[0], pool);
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(bank.num_types(), 4u);  // no duplicate entry
}

TEST(ClassifierBank, DeterministicAcrossRuns) {
  const auto corpus = distinct_corpus();
  const auto fixed = to_fixed(corpus);
  ClassifierBank a;
  ClassifierBank b;
  a.train(corpus.type_names, fixed);
  b.train(corpus.type_names, fixed);
  const auto sa = a.scores(fixed[2][5]);
  const auto sb = b.scores(fixed[2][5]);
  for (std::size_t t = 0; t < sa.size(); ++t) EXPECT_DOUBLE_EQ(sa[t], sb[t]);
}

}  // namespace
}  // namespace iotsentinel::core
