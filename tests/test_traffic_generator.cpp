#include "simnet/traffic_generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fingerprint/extractor.hpp"
#include "simnet/device_catalog.hpp"

namespace iotsentinel::sim {
namespace {

const net::Ipv4Address kDevIp = net::Ipv4Address::of(192, 168, 0, 42);

TEST(TrafficGenerator, DeterministicForSameSeed) {
  const auto* profile = find_profile("HueBridge");
  ASSERT_NE(profile, nullptr);
  TrafficGenerator gen;
  const auto mac = TrafficGenerator::mint_mac(*profile, 1);
  ml::Rng rng_a(5);
  ml::Rng rng_b(5);
  const auto a = gen.generate(*profile, mac, kDevIp, rng_a);
  const auto b = gen.generate(*profile, mac, kDevIp, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp_us, b[i].timestamp_us);
    EXPECT_EQ(a[i].frame, b[i].frame);
  }
}

TEST(TrafficGenerator, DifferentSeedsVaryTiming) {
  const auto* profile = find_profile("HueBridge");
  TrafficGenerator gen;
  const auto mac = TrafficGenerator::mint_mac(*profile, 1);
  ml::Rng rng_a(5);
  ml::Rng rng_b(6);
  const auto a = gen.generate(*profile, mac, kDevIp, rng_a);
  const auto b = gen.generate(*profile, mac, kDevIp, rng_b);
  bool any_difference = a.size() != b.size();
  for (std::size_t i = 0; !any_difference && i < a.size(); ++i) {
    any_difference = a[i].timestamp_us != b[i].timestamp_us;
  }
  EXPECT_TRUE(any_difference);
}

TEST(TrafficGenerator, TimestampsAreMonotonic) {
  const auto* profile = find_profile("EdnetCam");
  TrafficGenerator gen;
  ml::Rng rng(11);
  const auto frames = gen.generate(
      *profile, TrafficGenerator::mint_mac(*profile, 2), kDevIp, rng);
  ASSERT_GT(frames.size(), 3u);
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_GE(frames[i].timestamp_us, frames[i - 1].timestamp_us);
  }
}

TEST(TrafficGenerator, AllFramesComeFromTheDeviceMac) {
  const auto* profile = find_profile("WeMoSwitch");
  TrafficGenerator gen;
  ml::Rng rng(13);
  const auto mac = TrafficGenerator::mint_mac(*profile, 3);
  const auto frames = gen.generate(*profile, mac, kDevIp, rng);
  for (const auto& pkt : parse_frames(frames)) {
    EXPECT_EQ(pkt.src_mac, mac);
  }
}

TEST(TrafficGenerator, MintMacUsesProfileOuiAndInstance) {
  const auto* profile = find_profile("Aria");
  const auto mac = TrafficGenerator::mint_mac(*profile, 0x010203);
  EXPECT_EQ(mac.octets()[0], profile->oui[0]);
  EXPECT_EQ(mac.octets()[1], profile->oui[1]);
  EXPECT_EQ(mac.octets()[2], profile->oui[2]);
  EXPECT_EQ(mac.octets()[3], 0x01);
  EXPECT_EQ(mac.octets()[5], 0x03);
  EXPECT_NE(TrafficGenerator::mint_mac(*profile, 1),
            TrafficGenerator::mint_mac(*profile, 2));
}

TEST(TrafficGenerator, WifiProfileEmitsEapolAndDhcp) {
  const auto* profile = find_profile("Withings");  // wifi_join preamble
  TrafficGenerator gen;
  ml::Rng rng(17);
  const auto packets = parse_frames(gen.generate(
      *profile, TrafficGenerator::mint_mac(*profile, 4), kDevIp, rng));
  bool saw_eapol = false;
  bool saw_dhcp = false;
  for (const auto& pkt : packets) {
    saw_eapol |= pkt.is_eapol;
    saw_dhcp |= pkt.app.dhcp;
  }
  EXPECT_TRUE(saw_eapol);
  EXPECT_TRUE(saw_dhcp);
}

TEST(TrafficGenerator, EthernetProfileHasNoEapol) {
  const auto* profile = find_profile("MAXGateway");
  TrafficGenerator gen;
  ml::Rng rng(19);
  const auto packets = parse_frames(gen.generate(
      *profile, TrafficGenerator::mint_mac(*profile, 5), kDevIp, rng));
  for (const auto& pkt : packets) {
    EXPECT_FALSE(pkt.is_eapol);
  }
}

TEST(TrafficGenerator, HeartbeatsFollowSetupBurstAfterLongGaps) {
  const auto* profile = find_profile("Aria");
  GeneratorConfig cfg;
  cfg.trailing_heartbeats = 3;
  cfg.heartbeat_gap_us = 30'000'000;
  TrafficGenerator gen(cfg);
  ml::Rng rng(23);
  const auto frames = gen.generate(
      *profile, TrafficGenerator::mint_mac(*profile, 6), kDevIp, rng);
  ASSERT_GT(frames.size(), 3u);
  // The last three inter-arrival gaps are heartbeat-sized.
  for (std::size_t i = frames.size() - 3; i < frames.size(); ++i) {
    EXPECT_GE(frames[i].timestamp_us - frames[i - 1].timestamp_us,
              30'000'000u);
  }
}

TEST(TrafficGenerator, PcapExportParsesBack) {
  const auto* profile = find_profile("Lightify");
  TrafficGenerator gen;
  ml::Rng rng(29);
  const auto pcap = gen.generate_pcap(
      *profile, TrafficGenerator::mint_mac(*profile, 7), kDevIp, rng);
  ASSERT_FALSE(pcap.records.empty());
  const auto image = net::serialize_pcap(pcap);
  const auto parsed = net::parse_pcap(image);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.file.records.size(), pcap.records.size());
}

TEST(TrafficGenerator, SkippableStepsActuallyVary) {
  // D-LinkSwitch has a skip_prob=0.5 step: across seeds both outcomes occur.
  const auto* profile = find_profile("D-LinkSwitch");
  TrafficGenerator gen;
  std::set<std::size_t> packet_counts;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    ml::Rng rng(seed);
    packet_counts.insert(
        gen.generate(*profile, TrafficGenerator::mint_mac(*profile, 8),
                     kDevIp, rng)
            .size());
  }
  EXPECT_GT(packet_counts.size(), 1u);
}

// Every catalog profile must generate a parsable, fingerprintable capture.
class AllProfilesGenerateTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(AllProfilesGenerateTest, GeneratesFingerprintableTraffic) {
  const auto* profile = find_profile(GetParam());
  ASSERT_NE(profile, nullptr);
  TrafficGenerator gen;
  ml::Rng rng(31);
  const auto frames = gen.generate(
      *profile, TrafficGenerator::mint_mac(*profile, 9), kDevIp, rng);
  ASSERT_FALSE(frames.empty());
  const auto packets = parse_frames(frames);
  const auto fp = fp::fingerprint_from_packets(packets);
  EXPECT_GE(fp.size(), 3u) << GetParam();
  EXPECT_GE(fp.unique_packet_count(), 3u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, AllProfilesGenerateTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> names;
      for (const auto& p : device_catalog()) names.push_back(p.name);
      return names;
    }()));

// ---------------------------------------------------------------------------
// DeviceTraceStream: the streaming core must be bit-identical to the batch
// wrappers, however the frames are pulled.

bool frames_equal(const std::vector<TimedFrame>& a,
                  const std::vector<TimedFrame>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].timestamp_us != b[i].timestamp_us || a[i].frame != b[i].frame) {
      return false;
    }
  }
  return true;
}

TEST(DeviceTraceStream, StreamEqualsBatchForEveryProfile) {
  GeneratorConfig cfg;
  cfg.trailing_heartbeats = 3;
  TrafficGenerator gen(cfg);
  for (const auto& p : device_catalog()) {
    const auto mac = TrafficGenerator::mint_mac(p, 21);
    ml::Rng batch_rng(0xabc);
    const auto batch = gen.generate(p, mac, kDevIp, batch_rng);

    ml::Rng stream_rng(0xabc);
    DeviceTraceStream stream(cfg, p, mac, kDevIp,
                             DeviceTraceStream::Mode::kSetup, 0, 0,
                             stream_rng);
    std::vector<TimedFrame> streamed;
    while (auto tf = stream.next()) streamed.push_back(std::move(*tf));

    EXPECT_TRUE(frames_equal(batch, streamed)) << p.name;
    // The wrapper consumed the caller's RNG in the historical order, so
    // both generators end in the same state.
    EXPECT_EQ(batch_rng.next_u64(), stream_rng.next_u64()) << p.name;
  }
}

TEST(DeviceTraceStream, ChunkedPullIsBitIdentical) {
  const auto* profile = find_profile("HueBridge");
  ASSERT_NE(profile, nullptr);
  const auto mac = TrafficGenerator::mint_mac(*profile, 3);
  GeneratorConfig cfg;

  const auto collect = [&](std::size_t chunk) {
    DeviceTraceStream stream(cfg, *profile, mac, kDevIp,
                             DeviceTraceStream::Mode::kStandby, 4, 60'000'000,
                             std::uint64_t{0x5eed});
    std::vector<TimedFrame> out;
    // Pull in bursts of `chunk` with interleaved idle periods; the
    // resumable state machine must not care.
    for (;;) {
      bool exhausted = false;
      for (std::size_t i = 0; i < chunk; ++i) {
        auto tf = stream.next();
        if (!tf) {
          exhausted = true;
          break;
        }
        out.push_back(std::move(*tf));
      }
      if (exhausted) break;
    }
    return out;
  };

  const auto one_shot = collect(std::size_t(-1));
  ASSERT_FALSE(one_shot.empty());
  EXPECT_TRUE(frames_equal(one_shot, collect(1)));
  EXPECT_TRUE(frames_equal(one_shot, collect(7)));
}

TEST(DeviceTraceStream, StandbyStreamMatchesBatchAndAdvancesClock) {
  const auto* profile = find_profile("WeMoSwitch");
  ASSERT_NE(profile, nullptr);
  const auto mac = TrafficGenerator::mint_mac(*profile, 4);
  TrafficGenerator gen;
  ml::Rng batch_rng(77);
  const auto batch = gen.generate_standby(*profile, mac, kDevIp, 3, batch_rng);

  ml::Rng stream_rng(77);
  DeviceTraceStream stream({}, *profile, mac, kDevIp,
                           DeviceTraceStream::Mode::kStandby, 3, 60'000'000,
                           stream_rng);
  std::vector<TimedFrame> streamed;
  while (auto tf = stream.next()) streamed.push_back(std::move(*tf));

  EXPECT_TRUE(frames_equal(batch, streamed));
  EXPECT_EQ(batch_rng.next_u64(), stream_rng.next_u64());
  // After exhaustion now_us() sits past the last frame (trailing quiet
  // period) — the fleet simulator keys the rejoin off this.
  ASSERT_FALSE(streamed.empty());
  EXPECT_GT(stream.now_us(), streamed.back().timestamp_us);
}

TEST(DeviceTraceStream, MoveKeepsOwnedRngWorking) {
  const auto* profile = find_profile("HueSwitch");
  ASSERT_NE(profile, nullptr);
  const auto mac = TrafficGenerator::mint_mac(*profile, 5);

  DeviceTraceStream reference({}, *profile, mac, kDevIp,
                              DeviceTraceStream::Mode::kSetup, 0, 0,
                              std::uint64_t{99});
  std::vector<TimedFrame> expected;
  while (auto tf = reference.next()) expected.push_back(std::move(*tf));

  DeviceTraceStream original({}, *profile, mac, kDevIp,
                             DeviceTraceStream::Mode::kSetup, 0, 0,
                             std::uint64_t{99});
  std::vector<TimedFrame> actual;
  actual.push_back(*original.next());
  DeviceTraceStream moved = std::move(original);
  actual.push_back(*moved.next());
  std::vector<DeviceTraceStream> pool;
  pool.push_back(std::move(moved));
  pool.reserve(32);  // forces a reallocation-move
  while (auto tf = pool[0].next()) actual.push_back(std::move(*tf));

  EXPECT_TRUE(frames_equal(expected, actual));
}

}  // namespace
}  // namespace iotsentinel::sim
