#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "net/builder.hpp"
#include "net/bytes.hpp"

namespace iotsentinel::net {
namespace {

PcapFile sample_file() {
  PcapFile file;
  const auto mac = MacAddress::of(0x02, 1, 2, 3, 4, 5);
  for (int i = 0; i < 5; ++i) {
    PcapRecord rec;
    rec.timestamp_us = 1'700'000'000'000'000ULL + static_cast<std::uint64_t>(i) * 12'345;
    rec.frame = build_arp_request(mac, Ipv4Address::of(192, 168, 0, 9),
                                  Ipv4Address::of(192, 168, 0, 1));
    rec.orig_len = static_cast<std::uint32_t>(rec.frame.size());
    file.records.push_back(std::move(rec));
  }
  return file;
}

TEST(Pcap, SerializeParseRoundTrip) {
  const PcapFile original = sample_file();
  const auto image = serialize_pcap(original);
  const PcapParseResult parsed = parse_pcap(image);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.file.linktype, 1u);
  ASSERT_EQ(parsed.file.records.size(), original.records.size());
  for (std::size_t i = 0; i < original.records.size(); ++i) {
    EXPECT_EQ(parsed.file.records[i].timestamp_us,
              original.records[i].timestamp_us);
    EXPECT_EQ(parsed.file.records[i].frame, original.records[i].frame);
  }
}

TEST(Pcap, FileRoundTripOnDisk) {
  const PcapFile original = sample_file();
  const std::string path = ::testing::TempDir() + "/iots_roundtrip.pcap";
  ASSERT_TRUE(write_pcap_file(path, original));
  const PcapParseResult parsed = read_pcap_file(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.file.records.size(), original.records.size());
  std::remove(path.c_str());
}

TEST(Pcap, ReadsBigEndianVariant) {
  // Hand-build a big-endian microsecond file with one empty record.
  ByteWriter w;
  w.u32be(0xa1b2c3d4);  // written BE => reader sees the BE-magic byte order
  w.u16be(2);
  w.u16be(4);
  w.u32be(0);
  w.u32be(0);
  w.u32be(65535);
  w.u32be(1);       // linktype
  w.u32be(10);      // ts_sec
  w.u32be(500000);  // ts_usec
  w.u32be(0);       // incl_len
  w.u32be(0);       // orig_len
  const PcapParseResult parsed = parse_pcap(w.data());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.file.records.size(), 1u);
  EXPECT_EQ(parsed.file.records[0].timestamp_us, 10'500'000ULL);
}

TEST(Pcap, ReadsNanosecondVariant) {
  ByteWriter w;
  w.u32le(0xa1b23c4d);
  w.u16le(2);
  w.u16le(4);
  w.u32le(0);
  w.u32le(0);
  w.u32le(65535);
  w.u32le(1);
  w.u32le(3);          // ts_sec
  w.u32le(999'000'000);  // ts_nsec -> 999000 us
  w.u32le(0);
  w.u32le(0);
  const PcapParseResult parsed = parse_pcap(w.data());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.file.records[0].timestamp_us, 3'999'000ULL);
}

TEST(Pcap, RejectsBadMagic) {
  const std::uint8_t junk[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const PcapParseResult parsed = parse_pcap(junk);
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("magic"), std::string::npos);
}

TEST(Pcap, TruncatedRecordKeepsEarlierRecords) {
  const auto image = serialize_pcap(sample_file());
  const std::span<const std::uint8_t> cut(image.data(), image.size() - 7);
  const PcapParseResult parsed = parse_pcap(cut);
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.file.records.size(), 4u);  // all but the clipped last
}

TEST(Pcap, RejectsImplausibleRecordLength) {
  ByteWriter w;
  w.u32le(0xa1b2c3d4);
  w.u16le(2);
  w.u16le(4);
  w.u32le(0);
  w.u32le(0);
  w.u32le(65535);
  w.u32le(1);
  w.u32le(0);
  w.u32le(0);
  w.u32le(0x7fffffff);  // absurd incl_len
  w.u32le(0);
  const PcapParseResult parsed = parse_pcap(w.data());
  EXPECT_FALSE(parsed.ok);
}

TEST(Pcap, MissingFileReportsError) {
  const PcapParseResult parsed = read_pcap_file("/nonexistent/nope.pcap");
  EXPECT_FALSE(parsed.ok);
}

TEST(Pcap, EmptyFileParsesToZeroRecords) {
  PcapFile empty;
  const auto image = serialize_pcap(empty);
  const PcapParseResult parsed = parse_pcap(image);
  ASSERT_TRUE(parsed.ok);
  EXPECT_TRUE(parsed.file.records.empty());
}

}  // namespace
}  // namespace iotsentinel::net
