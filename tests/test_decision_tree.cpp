#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace iotsentinel::ml {
namespace {

/// Linearly separable 1-D data: x < 5 -> class 0, else class 1.
Dataset separable() {
  Dataset d(1);
  for (int i = 0; i < 10; ++i) {
    const float row[] = {static_cast<float>(i)};
    d.add(row, i < 5 ? 0 : 1);
  }
  return d;
}

std::vector<std::size_t> all_indices(const Dataset& d) {
  std::vector<std::size_t> idx(d.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return idx;
}

TEST(DecisionTree, LearnsSeparableSplit) {
  const Dataset d = separable();
  DecisionTree tree;
  Rng rng(1);
  tree.train(d, all_indices(d), 2, {}, rng);
  ASSERT_TRUE(tree.trained());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(tree.predict(d.row(i)), d.label(i)) << "row " << i;
  }
  const float low[] = {-100.0f};
  const float high[] = {100.0f};
  EXPECT_EQ(tree.predict(low), 0);
  EXPECT_EQ(tree.predict(high), 1);
}

TEST(DecisionTree, PureNodeBecomesLeaf) {
  Dataset d(1);
  for (int i = 0; i < 6; ++i) {
    const float row[] = {static_cast<float>(i)};
    d.add(row, 1);
  }
  DecisionTree tree;
  Rng rng(2);
  tree.train(d, all_indices(d), 2, {}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.depth(), 1u);
}

TEST(DecisionTree, MaxDepthLimitsGrowth) {
  // Three-segment 1-D data (0s, then 1s, then 0s) needs two split levels;
  // a depth-1 cap must stop after the first split, the unlimited tree must
  // fit exactly. (Greedy CART can make progress here, unlike XOR.)
  Dataset d(1);
  for (int i = 0; i < 12; ++i) {
    const float row[] = {static_cast<float>(i)};
    d.add(row, (i >= 4 && i < 8) ? 1 : 0);
  }

  DecisionTree shallow;
  Rng rng(3);
  shallow.train(d, all_indices(d), 2, {.max_depth = 1}, rng);
  EXPECT_LE(shallow.depth(), 2u);  // root + leaves
  EXPECT_LE(shallow.node_count(), 3u);

  DecisionTree deep;
  Rng rng2(3);
  deep.train(d, all_indices(d), 2, {}, rng2);
  EXPECT_GT(deep.depth(), shallow.depth());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(deep.predict(d.row(i)), d.label(i));
  }
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const Dataset d = separable();
  DecisionTree tree;
  Rng rng(4);
  tree.train(d, all_indices(d), 2, {.min_samples_leaf = 5}, rng);
  // Only the 5/5 split satisfies the leaf minimum; deeper splits cannot.
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTree, MinSamplesSplitMakesLeaf) {
  const Dataset d = separable();
  DecisionTree tree;
  Rng rng(5);
  tree.train(d, all_indices(d), 2, {.min_samples_split = 100}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, PredictProbaSumsToOne) {
  const Dataset d = separable();
  DecisionTree tree;
  Rng rng(6);
  tree.train(d, all_indices(d), 2, {}, rng);
  const float probe[] = {4.2f};
  const auto proba = tree.predict_proba(probe);
  ASSERT_EQ(proba.size(), 2u);
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
}

TEST(DecisionTree, BootstrapIndicesWithDuplicatesWork) {
  const Dataset d = separable();
  std::vector<std::size_t> boot = {0, 0, 1, 9, 9, 9, 5, 4};
  DecisionTree tree;
  Rng rng(7);
  tree.train(d, boot, 2, {}, rng);
  const float low[] = {0.0f};
  const float high[] = {9.0f};
  EXPECT_EQ(tree.predict(low), 0);
  EXPECT_EQ(tree.predict(high), 1);
}

TEST(DecisionTree, ConstantFeaturesYieldLeaf) {
  Dataset d(2);
  for (int i = 0; i < 8; ++i) {
    const float row[] = {1.0f, 2.0f};
    d.add(row, i % 2);
  }
  DecisionTree tree;
  Rng rng(8);
  tree.train(d, all_indices(d), 2, {}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  const float probe[] = {1.0f, 2.0f};
  const auto proba = tree.predict_proba(probe);
  EXPECT_NEAR(proba[0], 0.5, 1e-9);
}

TEST(DecisionTree, MultiClassSupport) {
  Dataset d(1);
  for (int i = 0; i < 15; ++i) {
    const float row[] = {static_cast<float>(i)};
    d.add(row, i / 5);  // classes 0,1,2
  }
  DecisionTree tree;
  Rng rng(9);
  tree.train(d, all_indices(d), 3, {}, rng);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(tree.predict(d.row(i)), d.label(i));
  }
}

}  // namespace
}  // namespace iotsentinel::ml
