#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace iotsentinel::ml {
namespace {

Dataset small_dataset() {
  Dataset d(2);
  for (int i = 0; i < 10; ++i) {
    const float x = static_cast<float>(i);
    const float row[] = {x, -x};
    d.add(row, i % 2);
  }
  return d;
}

TEST(Dataset, StoresRowsAndLabels) {
  const Dataset d = small_dataset();
  EXPECT_EQ(d.size(), 10u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.num_classes(), 2);
  EXPECT_FLOAT_EQ(d.row(3)[0], 3.0f);
  EXPECT_FLOAT_EQ(d.row(3)[1], -3.0f);
  EXPECT_EQ(d.label(3), 1);
}

TEST(Dataset, SubsetSelectsRows) {
  const Dataset d = small_dataset();
  const std::size_t idx[] = {0, 2, 4};
  const Dataset sub = d.subset(idx);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_FLOAT_EQ(sub.row(2)[0], 4.0f);
  EXPECT_EQ(sub.label(1), 0);
}

TEST(Dataset, InfersWidthFromFirstRow) {
  Dataset d;
  const float row[] = {1.0f, 2.0f, 3.0f};
  d.add(row, 0);
  EXPECT_EQ(d.num_features(), 3u);
}

TEST(StratifiedKFold, PartitionsAllSamplesExactlyOnce) {
  std::vector<int> labels;
  for (int t = 0; t < 3; ++t)
    for (int i = 0; i < 20; ++i) labels.push_back(t);
  Rng rng(1);
  const auto folds = stratified_k_fold(labels, 10, rng);
  ASSERT_EQ(folds.size(), 10u);

  std::vector<int> seen(labels.size(), 0);
  for (const auto& fold : folds) {
    for (std::size_t idx : fold.test) ++seen[idx];
    // train + test must cover everything exactly once per fold.
    EXPECT_EQ(fold.train.size() + fold.test.size(), labels.size());
    std::set<std::size_t> all(fold.train.begin(), fold.train.end());
    all.insert(fold.test.begin(), fold.test.end());
    EXPECT_EQ(all.size(), labels.size());
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(StratifiedKFold, PreservesClassProportions) {
  std::vector<int> labels;
  for (int t = 0; t < 3; ++t)
    for (int i = 0; i < 20; ++i) labels.push_back(t);
  Rng rng(2);
  const auto folds = stratified_k_fold(labels, 10, rng);
  for (const auto& fold : folds) {
    std::map<int, int> per_class;
    for (std::size_t idx : fold.test) ++per_class[labels[idx]];
    ASSERT_EQ(per_class.size(), 3u);
    for (const auto& [label, count] : per_class) EXPECT_EQ(count, 2);
  }
}

TEST(StratifiedKFold, HandlesUnevenClassSizes) {
  std::vector<int> labels(17, 0);
  labels.insert(labels.end(), 5, 1);
  Rng rng(3);
  const auto folds = stratified_k_fold(labels, 4, rng);
  std::size_t total_test = 0;
  for (const auto& fold : folds) total_test += fold.test.size();
  EXPECT_EQ(total_test, labels.size());
  // Class 1 (5 samples over 4 folds): every fold gets 1 or 2.
  for (const auto& fold : folds) {
    int ones = 0;
    for (std::size_t idx : fold.test) ones += labels[idx] == 1 ? 1 : 0;
    EXPECT_GE(ones, 1);
    EXPECT_LE(ones, 2);
  }
}

TEST(StratifiedKFold, DeterministicGivenSeed) {
  std::vector<int> labels(40, 0);
  for (std::size_t i = 20; i < 40; ++i) labels[i] = 1;
  Rng a(5);
  Rng b(5);
  const auto fa = stratified_k_fold(labels, 5, a);
  const auto fb = stratified_k_fold(labels, 5, b);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].test, fb[i].test);
    EXPECT_EQ(fa[i].train, fb[i].train);
  }
}

}  // namespace
}  // namespace iotsentinel::ml
