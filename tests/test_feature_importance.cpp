#include <gtest/gtest.h>

#include <numeric>

#include "ml/random_forest.hpp"

namespace iotsentinel::ml {
namespace {

/// Data where only feature 1 matters: x1 < 0.5 -> class 0, else class 1;
/// features 0 and 2 are noise.
Dataset informative_feature_one(std::uint64_t seed) {
  Dataset d(3);
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    const float x1 = static_cast<float>(rng.uniform());
    const float row[] = {static_cast<float>(rng.uniform()), x1,
                         static_cast<float>(rng.uniform())};
    d.add(row, x1 < 0.5f ? 0 : 1);
  }
  return d;
}

TEST(FeatureImportance, InformativeFeatureDominates) {
  const Dataset d = informative_feature_one(1);
  RandomForest forest;
  forest.train(d, {.num_trees = 25, .seed = 3});
  const auto imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[1], 0.7);
  EXPECT_GT(imp[1], imp[0]);
  EXPECT_GT(imp[1], imp[2]);
}

TEST(FeatureImportance, NormalizedToOne) {
  const Dataset d = informative_feature_one(2);
  RandomForest forest;
  forest.train(d, {.num_trees = 10, .seed = 4});
  const auto imp = forest.feature_importances();
  const double sum = std::accumulate(imp.begin(), imp.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double v : imp) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(FeatureImportance, PureDataYieldsAllZeros) {
  Dataset d(2);
  for (int i = 0; i < 10; ++i) {
    const float row[] = {static_cast<float>(i), 0.0f};
    d.add(row, 1);  // single class: no split ever happens
  }
  RandomForest forest;
  forest.train(d, {.num_trees = 5, .seed = 5});
  for (double v : forest.feature_importances()) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(FeatureImportance, SingleTreeMatchesForestOfOne) {
  const Dataset d = informative_feature_one(3);
  RandomForest forest;
  forest.train(d, {.num_trees = 1, .seed = 6});
  const auto forest_imp = forest.feature_importances();
  const auto& tree_imp = forest.tree(0).feature_importances();
  ASSERT_EQ(forest_imp.size(), tree_imp.size());
  for (std::size_t f = 0; f < forest_imp.size(); ++f) {
    EXPECT_NEAR(forest_imp[f], tree_imp[f], 1e-12);
  }
}

}  // namespace
}  // namespace iotsentinel::ml
