// Cross-validation harness tests on a reduced corpus (fast), checking the
// paper's qualitative findings hold: distinct types identify ~perfectly,
// identical-platform siblings confuse only within their family.
#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include "simnet/corpus.hpp"

namespace iotsentinel::core {
namespace {

TEST(CrossValidation, DistinctTypesScoreNearPerfect) {
  const auto corpus = sim::generate_corpus_for(
      {"Aria", "HueBridge", "MAXGateway", "Withings", "Lightify"}, 20, 51);
  CvConfig config;
  config.repetitions = 1;
  const CvOutcome out =
      cross_validate(corpus.type_names, corpus.by_type, config);
  EXPECT_GE(out.global_accuracy, 0.95);
  for (std::size_t t = 0; t < corpus.num_types(); ++t) {
    EXPECT_GE(out.per_type_accuracy[t], 0.9) << corpus.type_names[t];
  }
}

TEST(CrossValidation, SiblingConfusionStaysInFamily) {
  const auto corpus = sim::generate_corpus_for(
      {"EdimaxPlug1101W", "EdimaxPlug2101W", "Aria", "HueBridge"}, 20, 53);
  CvConfig config;
  config.repetitions = 2;
  const CvOutcome out =
      cross_validate(corpus.type_names, corpus.by_type, config);

  // All mass in rows 0-1 must stay within columns 0-1 (family block).
  std::uint64_t family_mass = 0;
  std::uint64_t leaked = 0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < corpus.num_types(); ++c) {
      (c < 2 ? family_mass : leaked) += out.confusion.at(r, c);
    }
  }
  EXPECT_GT(family_mass, 0u);
  EXPECT_LE(leaked, family_mass / 10);  // at most stray leakage
  // Distinct types unharmed by the confusable pair.
  EXPECT_GE(out.per_type_accuracy[2], 0.9);
  EXPECT_GE(out.per_type_accuracy[3], 0.9);
}

TEST(CrossValidation, StatisticsAreConsistent) {
  const auto corpus =
      sim::generate_corpus_for({"Aria", "HueBridge", "Withings"}, 10, 55);
  CvConfig config;
  config.repetitions = 1;
  config.folds = 5;
  const CvOutcome out =
      cross_validate(corpus.type_names, corpus.by_type, config);
  // 30 samples tested once.
  EXPECT_EQ(out.confusion.total() + out.rejected, 30u);
  EXPECT_GE(out.discrimination_fraction, 0.0);
  EXPECT_LE(out.discrimination_fraction, 1.0);
  EXPECT_GE(out.mean_distance_computations, 0.0);
  EXPECT_EQ(out.per_type_accuracy.size(), 3u);
}

TEST(CrossValidation, DeterministicForSameSeed) {
  const auto corpus =
      sim::generate_corpus_for({"Aria", "HueBridge"}, 10, 57);
  CvConfig config;
  config.repetitions = 1;
  config.folds = 5;
  config.seed = 99;
  const CvOutcome a = cross_validate(corpus.type_names, corpus.by_type, config);
  const CvOutcome b = cross_validate(corpus.type_names, corpus.by_type, config);
  EXPECT_EQ(a.global_accuracy, b.global_accuracy);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(a.confusion.at(r, c), b.confusion.at(r, c));
    }
  }
}

}  // namespace
}  // namespace iotsentinel::core
