#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include "ml/rng.hpp"

namespace iotsentinel::ml {
namespace {

/// Two gaussian-ish blobs in 4-D, classes 0/1.
Dataset blobs(std::size_t per_class, std::uint64_t seed) {
  Dataset d(4);
  Rng rng(seed);
  for (std::size_t i = 0; i < per_class; ++i) {
    float row0[4];
    float row1[4];
    for (int f = 0; f < 4; ++f) {
      row0[f] = static_cast<float>(rng.uniform(0.0, 1.0));
      row1[f] = static_cast<float>(rng.uniform(2.0, 3.0));
    }
    d.add(row0, 0);
    d.add(row1, 1);
  }
  return d;
}

TEST(RandomForest, SeparatesBlobs) {
  const Dataset d = blobs(50, 1);
  RandomForest forest;
  forest.train(d, {.num_trees = 20, .seed = 5});
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(forest.predict(d.row(i)), d.label(i));
  }
  const float far0[] = {-1.0f, -1.0f, -1.0f, -1.0f};
  const float far1[] = {4.0f, 4.0f, 4.0f, 4.0f};
  EXPECT_EQ(forest.predict(far0), 0);
  EXPECT_EQ(forest.predict(far1), 1);
}

TEST(RandomForest, PositiveScoreIsCalibratedAtExtremes) {
  const Dataset d = blobs(50, 2);
  RandomForest forest;
  forest.train(d, {.num_trees = 20, .seed = 6});
  const float clearly1[] = {2.5f, 2.5f, 2.5f, 2.5f};
  const float clearly0[] = {0.5f, 0.5f, 0.5f, 0.5f};
  EXPECT_GT(forest.positive_score(clearly1), 0.9);
  EXPECT_LT(forest.positive_score(clearly0), 0.1);
}

TEST(RandomForest, ProbaIsDistribution) {
  const Dataset d = blobs(30, 3);
  RandomForest forest;
  forest.train(d, {.num_trees = 10, .seed = 7});
  const float probe[] = {1.5f, 1.5f, 1.5f, 1.5f};  // between the blobs
  const auto proba = forest.predict_proba(probe);
  ASSERT_EQ(proba.size(), 2u);
  double sum = 0.0;
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RandomForest, DeterministicForSameSeed) {
  const Dataset d = blobs(30, 4);
  RandomForest a;
  RandomForest b;
  a.train(d, {.num_trees = 15, .seed = 11});
  b.train(d, {.num_trees = 15, .seed = 11});
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    float probe[4];
    for (auto& x : probe) x = static_cast<float>(rng.uniform(-1.0, 4.0));
    EXPECT_DOUBLE_EQ(a.positive_score(probe), b.positive_score(probe));
  }
}

TEST(RandomForest, DifferentSeedsGiveDifferentForests) {
  const Dataset d = blobs(30, 5);
  RandomForest a;
  RandomForest b;
  a.train(d, {.num_trees = 15, .seed = 1});
  b.train(d, {.num_trees = 15, .seed = 2});
  const float probe[] = {1.5f, 1.4f, 1.6f, 1.5f};
  // Near the boundary the vote fractions almost surely differ.
  EXPECT_NE(a.positive_score(probe), b.positive_score(probe));
}

TEST(RandomForest, TrainOnSubsetIgnoresOtherRows) {
  Dataset d = blobs(20, 6);
  // Poison rows outside the subset with flipped labels.
  const float poison[] = {0.5f, 0.5f, 0.5f, 0.5f};
  for (int i = 0; i < 20; ++i) d.add(poison, 1);
  std::vector<std::size_t> clean;
  for (std::size_t i = 0; i < 40; ++i) clean.push_back(i);
  RandomForest forest;
  forest.train(d, clean, {.num_trees = 20, .seed = 8});
  EXPECT_LT(forest.positive_score(poison), 0.5);
}

TEST(RandomForest, TreeCountMatchesConfig) {
  const Dataset d = blobs(10, 7);
  RandomForest forest;
  forest.train(d, {.num_trees = 7, .seed = 3});
  EXPECT_EQ(forest.tree_count(), 7u);
}

TEST(RandomForest, EmptyTrainingIsHarmless) {
  Dataset d(3);
  RandomForest forest;
  forest.train(d, {.num_trees = 5, .seed = 1});
  EXPECT_FALSE(forest.trained());
  const float probe[] = {0.0f, 0.0f, 0.0f};
  EXPECT_EQ(forest.positive_score(probe), 0.0);
}

// Property sweep over forest sizes: accuracy on held-out blob data should
// be high for any reasonable tree count.
class ForestSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestSizeTest, GeneralizesToHeldOut) {
  const Dataset train = blobs(40, 10);
  const Dataset test = blobs(20, 20);
  RandomForest forest;
  forest.train(train, {.num_trees = GetParam(), .seed = 4});
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (forest.predict(test.row(i)) == test.label(i)) ++correct;
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(test.size()),
            0.95);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizeTest,
                         ::testing::Values(1, 5, 10, 30, 60));

}  // namespace
}  // namespace iotsentinel::ml
