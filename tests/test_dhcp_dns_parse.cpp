// Structured DHCP and DNS parsing tests (round trips against the builders
// plus malformed-input robustness).
#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/dhcp.hpp"
#include "net/dns.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::net {
namespace {

const MacAddress kDev = MacAddress::of(0x02, 7, 7, 7, 7, 7);
const MacAddress kGw = MacAddress::of(0x02, 1, 1, 1, 1, 1);
const Ipv4Address kDevIp = Ipv4Address::of(192, 168, 0, 44);
const Ipv4Address kGwIp = Ipv4Address::of(192, 168, 0, 1);

TEST(DhcpParse, RoundTripsBuilderOutput) {
  const std::vector<std::uint8_t> params = {1, 3, 6, 15, 42};
  const auto frame = build_dhcp(kDev, dhcptype::kDiscover, 0xcafe1234,
                                Ipv4Address::any(), params, "hue-bridge");
  const auto payload = udp_payload_of(frame);
  ASSERT_FALSE(payload.empty());
  const auto msg = parse_dhcp(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->op, 1);
  EXPECT_EQ(msg->xid, 0xcafe1234u);
  EXPECT_EQ(msg->client_mac, kDev);
  EXPECT_EQ(msg->message_type, dhcptype::kDiscover);
  EXPECT_EQ(msg->hostname, "hue-bridge");
  EXPECT_EQ(msg->param_request_list, params);
  // Option codes in wire order: 53, 61, 55, 12.
  ASSERT_GE(msg->option_codes.size(), 4u);
  EXPECT_EQ(msg->option_codes[0], 53);
  EXPECT_EQ(msg->option_codes.back(), 12);
}

TEST(DhcpParse, NoHostnameOptionWhenEmpty) {
  const auto frame = build_dhcp(kDev, dhcptype::kRequest, 7);
  const auto msg = parse_dhcp(udp_payload_of(frame));
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->hostname.empty());
  for (std::uint8_t code : msg->option_codes) EXPECT_NE(code, 12);
}

TEST(DhcpParse, RejectsGarbage) {
  EXPECT_FALSE(parse_dhcp({}).has_value());
  const std::vector<std::uint8_t> junk(300, 0xaa);
  EXPECT_FALSE(parse_dhcp(junk).has_value());
  // Valid fixed header but wrong magic cookie.
  auto frame = build_dhcp(kDev, dhcptype::kDiscover, 1);
  auto payload_span = udp_payload_of(frame);
  std::vector<std::uint8_t> payload(payload_span.begin(), payload_span.end());
  payload[236] = 0x00;  // clobber the cookie
  EXPECT_FALSE(parse_dhcp(payload).has_value());
}

TEST(DhcpParse, TruncatedOptionsKeepParsedPrefix) {
  auto frame = build_dhcp(kDev, dhcptype::kDiscover, 1, Ipv4Address::any(),
                          {1, 3, 6}, "host");
  auto payload_span = udp_payload_of(frame);
  std::vector<std::uint8_t> payload(payload_span.begin(),
                                    payload_span.end() - 4);  // clip the tail
  const auto msg = parse_dhcp(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->message_type, dhcptype::kDiscover);
}

TEST(DnsParse, RoundTripsQuery) {
  const auto frame = build_dns_query(kDev, kGw, kDevIp, kGwIp, 50000, 0xbeef,
                                     "devs.tplinkcloud.com");
  const auto msg = parse_dns(udp_payload_of(frame));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->txn_id, 0xbeef);
  EXPECT_FALSE(msg->is_response);
  ASSERT_EQ(msg->questions.size(), 1u);
  EXPECT_EQ(msg->questions[0].name, "devs.tplinkcloud.com");
  EXPECT_EQ(msg->questions[0].qtype, 1);  // A
  EXPECT_TRUE(msg->answers.empty());
}

TEST(DnsParse, ParsesResponseWithCompressedAnswer) {
  // The mDNS builder emits a response with a compression-pointer answer.
  const auto frame = build_mdns(kDev, kDevIp, "printer.local", true);
  const auto msg = parse_dns(udp_payload_of(frame));
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->is_response);
  ASSERT_EQ(msg->questions.size(), 1u);
  EXPECT_EQ(msg->questions[0].name, "printer.local");
  ASSERT_EQ(msg->answers.size(), 1u);
  EXPECT_EQ(msg->answers[0].name, "printer.local");  // via pointer to 0x0c
  ASSERT_TRUE(msg->answers[0].address.has_value());
}

TEST(DnsParse, RejectsTruncatedHeader) {
  const std::vector<std::uint8_t> tiny = {1, 2, 3};
  EXPECT_FALSE(parse_dns(tiny).has_value());
}

TEST(DnsParse, SurvivesPointerLoops) {
  // Header + a name that is a pointer to itself.
  std::vector<std::uint8_t> evil = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                    0xc0, 0x0c};
  const auto msg = parse_dns(evil);
  // Parse must terminate (no hang/crash); the question is dropped.
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->questions.empty());
}

TEST(UdpPayloadOf, EmptyForNonUdpFrames) {
  EXPECT_TRUE(udp_payload_of(build_arp_request(kDev, kDevIp, kGwIp)).empty());
  EXPECT_TRUE(udp_payload_of(build_tcp_syn(kDev, kGw, kDevIp, kGwIp, 50000,
                                           80, 1))
                  .empty());
  EXPECT_TRUE(udp_payload_of({}).empty());
}

TEST(UdpPayloadOf, ExcludesMinFramePadding) {
  // A tiny UDP datagram padded to the 60-byte Ethernet minimum: the
  // payload span must honour the UDP length field, not the frame size.
  const Bytes udp = build_udp_payload(50000, 9999, {});
  const Bytes frame = build_ipv4(kDev, kGw, kDevIp, kGwIp, ipproto::kUdp, udp);
  EXPECT_GE(frame.size(), 60u);
  EXPECT_TRUE(udp_payload_of(frame).empty());
}

}  // namespace
}  // namespace iotsentinel::net
