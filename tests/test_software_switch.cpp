#include "sdn/software_switch.hpp"

#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::sdn {
namespace {

using net::Ipv4Address;
using net::MacAddress;

const MacAddress kA = MacAddress::of(0x02, 0xa, 0, 0, 0, 1);
const MacAddress kB = MacAddress::of(0x02, 0xb, 0, 0, 0, 2);
const Ipv4Address kIpA = Ipv4Address::of(192, 168, 0, 10);
const Ipv4Address kIpB = Ipv4Address::of(192, 168, 0, 20);

net::ParsedPacket udp_packet(std::uint16_t dport) {
  const auto udp = net::build_udp_payload(50000, dport, {});
  const auto frame =
      net::build_ipv4(kA, kB, kIpA, kIpB, net::ipproto::kUdp, udp);
  return net::parse_ethernet_frame(frame, 0);
}

TEST(SoftwareSwitch, FirstPacketSlowPathThenFastPath) {
  Controller controller;
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 0);
  controller.apply_rule({.device = kB, .level = IsolationLevel::kTrusted}, 0);
  SoftwareSwitch sw(controller);

  const auto pkt = udp_packet(8000);
  const auto first = sw.process(pkt, 1);
  EXPECT_EQ(first.path, SwitchPath::kSlowPath);
  EXPECT_EQ(first.action, FlowAction::kForward);

  const auto second = sw.process(pkt, 2);
  EXPECT_EQ(second.path, SwitchPath::kFastPath);
  EXPECT_EQ(second.action, FlowAction::kForward);

  EXPECT_EQ(sw.slow_path_packets(), 1u);
  EXPECT_EQ(sw.fast_path_packets(), 1u);
  EXPECT_EQ(controller.packet_ins(), 1u);
  EXPECT_EQ(sw.table().size(), 1u);
}

TEST(SoftwareSwitch, DropsAreCachedInFlowTableToo) {
  Controller controller;
  controller.apply_rule({.device = kA, .level = IsolationLevel::kStrict}, 0);
  SoftwareSwitch sw(controller);

  const auto udp = net::build_udp_payload(50000, 443, {});
  const auto frame = net::build_ipv4(kA, kB, kIpA,
                                     Ipv4Address::of(8, 8, 8, 8),
                                     net::ipproto::kUdp, udp);
  const auto pkt = net::parse_ethernet_frame(frame, 0);

  EXPECT_EQ(sw.process(pkt, 1).action, FlowAction::kDrop);
  const auto second = sw.process(pkt, 2);
  EXPECT_EQ(second.action, FlowAction::kDrop);
  EXPECT_EQ(second.path, SwitchPath::kFastPath);
}

TEST(SoftwareSwitch, DifferentFlowsEachTakeOneSlowPath) {
  Controller controller;
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 0);
  controller.apply_rule({.device = kB, .level = IsolationLevel::kTrusted}, 0);
  SoftwareSwitch sw(controller);

  sw.process(udp_packet(1000), 1);
  sw.process(udp_packet(2000), 2);
  sw.process(udp_packet(1000), 3);
  EXPECT_EQ(sw.slow_path_packets(), 2u);
  EXPECT_EQ(sw.fast_path_packets(), 1u);
  EXPECT_EQ(sw.table().size(), 2u);
}

TEST(SoftwareSwitch, FlushDeviceForcesReevaluation) {
  Controller controller;
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 0);
  controller.apply_rule({.device = kB, .level = IsolationLevel::kTrusted}, 0);
  SoftwareSwitch sw(controller);

  const auto pkt = udp_packet(8000);
  sw.process(pkt, 1);
  EXPECT_EQ(sw.table().size(), 1u);

  // The device is re-classified as strict; its cached flows must go.
  controller.apply_rule({.device = kA, .level = IsolationLevel::kStrict}, 2);
  EXPECT_EQ(sw.flush_device(kA), 1u);
  EXPECT_EQ(sw.table().size(), 0u);

  // Local same-overlay traffic is still fine (kB has no trusted peer now),
  // but kA -> Internet is dropped on the fresh slow-path evaluation.
  const auto udp = net::build_udp_payload(50000, 443, {});
  const auto inet = net::parse_ethernet_frame(
      net::build_ipv4(kA, kB, kIpA, Ipv4Address::of(8, 8, 8, 8),
                      net::ipproto::kUdp, udp),
      3);
  EXPECT_EQ(sw.process(inet, 3).action, FlowAction::kDrop);
}

TEST(SoftwareSwitch, ExpireFlowsPrunesIdleEntries) {
  Controller controller(
      {.flow_idle_timeout_us = 1000, .filtering_enabled = true});
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 0);
  controller.apply_rule({.device = kB, .level = IsolationLevel::kTrusted}, 0);
  SoftwareSwitch sw(controller);
  sw.process(udp_packet(8000), 1);
  EXPECT_EQ(sw.expire_flows(500), 0u);
  EXPECT_EQ(sw.expire_flows(5000), 1u);
  // Next packet of the flow goes through the controller again.
  sw.process(udp_packet(8000), 6000);
  EXPECT_EQ(sw.slow_path_packets(), 2u);
}

}  // namespace
}  // namespace iotsentinel::sdn
