#include "core/security_service.hpp"

#include <gtest/gtest.h>

#include "simnet/corpus.hpp"

namespace iotsentinel::core {
namespace {

/// Builds a service trained on a few types with one vulnerable device.
IoTSecurityService make_service(std::uint64_t seed = 21) {
  // Broad enough a bank that foreign device-types are reliably rejected.
  const auto corpus = sim::generate_corpus_for(
      {"Aria", "EdimaxCam", "HueBridge", "MAXGateway", "Withings",
       "WeMoLink", "EdnetCam", "Lightify"},
      12, seed);
  DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);

  VulnerabilityDb db;
  for (const char* clean : {"Aria", "HueBridge", "MAXGateway", "Withings",
                            "WeMoLink", "EdnetCam", "Lightify"}) {
    db.mark_assessed(clean);
  }
  db.add("EdimaxCam",
         {.id = "CVE-2016-EDIMAX-11", .cvss = 9.0, .summary = "hardcoded"});

  IoTSecurityService service(std::move(identifier), std::move(db));
  service.register_endpoints(
      "EdimaxCam", {net::Ipv4Address::of(104, 22, 7, 70)});
  return service;
}

fp::Fingerprint probe_of(const std::string& type, std::uint64_t seed) {
  return sim::generate_corpus_for({type}, 1, seed).by_type[0][0];
}

TEST(IoTSecurityService, CleanDeviceGetsTrusted) {
  const auto service = make_service();
  const ServiceVerdict verdict = service.assess(probe_of("Aria", 1001));
  EXPECT_TRUE(verdict.is_known);
  EXPECT_EQ(verdict.device_type, "Aria");
  EXPECT_EQ(verdict.level, sdn::IsolationLevel::kTrusted);
  EXPECT_TRUE(verdict.permitted_endpoints.empty());
}

TEST(IoTSecurityService, VulnerableDeviceGetsRestrictedWithEndpoints) {
  const auto service = make_service();
  const ServiceVerdict verdict = service.assess(probe_of("EdimaxCam", 1002));
  EXPECT_TRUE(verdict.is_known);
  EXPECT_EQ(verdict.device_type, "EdimaxCam");
  EXPECT_EQ(verdict.level, sdn::IsolationLevel::kRestricted);
  ASSERT_EQ(verdict.permitted_endpoints.size(), 1u);
  EXPECT_EQ(verdict.permitted_endpoints[0],
            net::Ipv4Address::of(104, 22, 7, 70));
}

TEST(IoTSecurityService, UnknownDeviceTypeGetsStrict) {
  const auto service = make_service();
  // A platform the identifier was never trained on.
  const ServiceVerdict verdict =
      service.assess(probe_of("TP-LinkPlugHS110", 1003));
  EXPECT_FALSE(verdict.is_known);
  EXPECT_TRUE(verdict.device_type.empty());
  EXPECT_EQ(verdict.level, sdn::IsolationLevel::kStrict);
  EXPECT_TRUE(verdict.identification.is_new_type);
}

TEST(IoTSecurityService, VerdictCarriesIdentificationTrace) {
  const auto service = make_service();
  const ServiceVerdict verdict = service.assess(probe_of("HueBridge", 1004));
  ASSERT_TRUE(verdict.identification.type_index.has_value());
  EXPECT_EQ(verdict.identification.type_name, "HueBridge");
  EXPECT_FALSE(verdict.identification.candidates.empty());
}

}  // namespace
}  // namespace iotsentinel::core
