// Parser tests: every builder output must parse back with the expected
// protocol flags, plus robustness on truncated/garbage frames.
#include "net/parser.hpp"

#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::net {
namespace {

const MacAddress kDev = MacAddress::of(0x02, 0xaa, 0xbb, 0x00, 0x00, 0x01);
const MacAddress kGw = MacAddress::of(0x02, 0x47, 0x57, 0x00, 0x00, 0x01);
const Ipv4Address kDevIp = Ipv4Address::of(192, 168, 0, 23);
const Ipv4Address kGwIp = Ipv4Address::of(192, 168, 0, 1);
const Ipv4Address kCloud = Ipv4Address::of(104, 20, 5, 50);

TEST(Parser, ArpRequest) {
  const auto frame = build_arp_request(kDev, kDevIp, kGwIp);
  const auto pkt = parse_ethernet_frame(frame, 7);
  EXPECT_EQ(pkt.timestamp_us, 7u);
  EXPECT_TRUE(pkt.is_arp);
  EXPECT_FALSE(pkt.is_ip());
  EXPECT_EQ(pkt.src_mac, kDev);
  EXPECT_EQ(pkt.dst_mac, MacAddress::broadcast());
  ASSERT_TRUE(pkt.src_ip.has_value());
  EXPECT_EQ(pkt.src_ip->v4(), kDevIp);
  ASSERT_TRUE(pkt.dst_ip.has_value());
  EXPECT_EQ(pkt.dst_ip->v4(), kGwIp);
}

TEST(Parser, GratuitousArpHasNoSpuriousPorts) {
  const auto pkt =
      parse_ethernet_frame(build_gratuitous_arp(kDev, kDevIp), 0);
  EXPECT_TRUE(pkt.is_arp);
  EXPECT_FALSE(pkt.src_port.has_value());
  EXPECT_FALSE(pkt.dst_port.has_value());
}

TEST(Parser, EapolKeyFrame) {
  const auto pkt = parse_ethernet_frame(build_eapol_key(kDev, kGw), 0);
  EXPECT_TRUE(pkt.is_eapol);
  EXPECT_FALSE(pkt.is_ip());
  EXPECT_TRUE(pkt.has_payload);
}

TEST(Parser, DhcpDiscoverDetectedAsDhcpAndBootp) {
  const auto frame = build_dhcp(kDev, dhcptype::kDiscover, 0x1234);
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.is_ipv4);
  EXPECT_TRUE(pkt.is_udp);
  EXPECT_TRUE(pkt.app.dhcp);
  EXPECT_TRUE(pkt.app.bootp);
  EXPECT_EQ(pkt.src_port, port::kDhcpClient);
  EXPECT_EQ(pkt.dst_port, port::kDhcpServer);
  ASSERT_TRUE(pkt.dst_ip.has_value());
  EXPECT_TRUE(pkt.dst_ip->v4().is_broadcast());
}

TEST(Parser, DnsQuery) {
  const auto frame =
      build_dns_query(kDev, kGw, kDevIp, kGwIp, 50000, 0x42, "example.com");
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.is_udp);
  EXPECT_TRUE(pkt.app.dns);
  EXPECT_FALSE(pkt.app.mdns);
  EXPECT_EQ(pkt.dst_port, port::kDns);
}

TEST(Parser, MdnsIsMdnsNotDns) {
  const auto frame = build_mdns(kDev, kDevIp, "_hue._tcp.local", true);
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.app.mdns);
  EXPECT_FALSE(pkt.app.dns);
  ASSERT_TRUE(pkt.dst_ip.has_value());
  EXPECT_TRUE(pkt.dst_ip->v4().is_multicast());
  EXPECT_TRUE(pkt.dst_mac.is_multicast());
}

TEST(Parser, SsdpMsearch) {
  const auto frame = build_ssdp_msearch(kDev, kDevIp, 49500, "ssdp:all");
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.app.ssdp);
  EXPECT_TRUE(pkt.is_udp);
  EXPECT_EQ(pkt.dst_port, port::kSsdp);
  EXPECT_TRUE(pkt.has_payload);
}

TEST(Parser, SsdpNotify) {
  const auto frame = build_ssdp_notify(kDev, kDevIp,
                                       "http://192.168.0.23:49153/desc.xml",
                                       "TestDevice UPnP/1.0");
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.app.ssdp);
}

TEST(Parser, NtpRequest) {
  const auto frame = build_ntp_request(kDev, kGw, kDevIp,
                                       Ipv4Address::of(94, 130, 49, 186),
                                       49700);
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.app.ntp);
  EXPECT_EQ(pkt.dst_port, port::kNtp);
}

TEST(Parser, HttpGet) {
  const auto frame = build_http_get(kDev, kGw, kDevIp, kCloud, 49600,
                                    "cloud.example.com", "/register");
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.is_tcp);
  EXPECT_TRUE(pkt.app.http);
  EXPECT_FALSE(pkt.app.https);
  EXPECT_TRUE(pkt.has_payload);
  EXPECT_EQ(pkt.dst_port, port::kHttp);
}

TEST(Parser, TlsClientHelloIsHttps) {
  const auto frame = build_tls_client_hello(kDev, kGw, kDevIp, kCloud, 49601,
                                            "cloud.example.com");
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.is_tcp);
  EXPECT_TRUE(pkt.app.https);
  EXPECT_FALSE(pkt.app.http);
}

TEST(Parser, TcpSynHasNoPayload) {
  const auto frame = build_tcp_syn(kDev, kGw, kDevIp, kCloud, 49602, 8883, 1);
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.is_tcp);
  EXPECT_FALSE(pkt.has_payload);  // min-frame padding must not count
  EXPECT_EQ(pkt.payload_size, 0u);
}

TEST(Parser, IgmpJoinSetsBothIpOptionFeatures) {
  const auto frame =
      build_igmp_join(kDev, kDevIp, Ipv4Address::of(239, 255, 255, 250));
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.is_ipv4);
  EXPECT_TRUE(pkt.ip_opt_router_alert);
  EXPECT_TRUE(pkt.ip_opt_padding);
  EXPECT_FALSE(pkt.is_tcp);
  EXPECT_FALSE(pkt.is_udp);
}

TEST(Parser, IcmpEcho) {
  const auto frame = build_icmp_echo(kDev, kGw, kDevIp, kGwIp, 7, 1);
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.is_icmp);
  EXPECT_TRUE(pkt.is_ipv4);
  EXPECT_TRUE(pkt.has_payload);
}

TEST(Parser, Icmpv6RouterSolicitation) {
  const auto pkt = parse_ethernet_frame(build_icmpv6_router_solicit(kDev), 0);
  EXPECT_TRUE(pkt.is_ipv6);
  EXPECT_TRUE(pkt.is_icmpv6);
  EXPECT_FALSE(pkt.ip_opt_router_alert);
  ASSERT_TRUE(pkt.src_ip.has_value());
  EXPECT_TRUE(pkt.src_ip->is_v6());
}

TEST(Parser, MldReportCarriesV6RouterAlert) {
  const auto pkt = parse_ethernet_frame(build_mldv1_report(kDev), 0);
  EXPECT_TRUE(pkt.is_ipv6);
  EXPECT_TRUE(pkt.is_icmpv6);
  EXPECT_TRUE(pkt.ip_opt_router_alert);
  EXPECT_TRUE(pkt.ip_opt_padding);  // PadN in the hop-by-hop header
}

TEST(Parser, LlcFrame) {
  const std::uint8_t payload[] = {0x00, 0x00, 0x00, 0x00};
  const auto frame = build_llc_frame(kDev, kGw, 0x42, 0x42, payload);
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_TRUE(pkt.is_llc);
  EXPECT_FALSE(pkt.is_ip());
}

TEST(Parser, WireSizeMatchesFrame) {
  const auto frame = build_dhcp(kDev, dhcptype::kRequest, 1);
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_EQ(pkt.wire_size, frame.size());
}

TEST(Parser, TruncatedFrameYieldsPartialSummary) {
  const std::uint8_t tiny[] = {1, 2, 3};
  const auto pkt = parse_ethernet_frame(tiny, 5);
  EXPECT_EQ(pkt.wire_size, 3u);
  EXPECT_FALSE(pkt.is_ip());
  EXPECT_FALSE(pkt.is_arp);
}

TEST(Parser, UnknownEthertypePreservesMacs) {
  Bytes payload = {0xde, 0xad};
  const auto frame = build_ethernet(kDev, kGw, 0x1234, payload);
  const auto pkt = parse_ethernet_frame(frame, 0);
  EXPECT_EQ(pkt.src_mac, kDev);
  EXPECT_FALSE(pkt.is_ip());
  EXPECT_TRUE(pkt.has_payload);
}

TEST(Parser, SummaryMentionsProtocols) {
  const auto frame = build_dhcp(kDev, dhcptype::kDiscover, 9);
  const auto pkt = parse_ethernet_frame(frame, 0);
  const std::string s = pkt.summary();
  EXPECT_NE(s.find("IPv4"), std::string::npos);
  EXPECT_NE(s.find("UDP"), std::string::npos);
  EXPECT_NE(s.find("DHCP"), std::string::npos);
}

// Property sweep: parsing any prefix of a valid frame must be safe and
// never report protocols beyond what the prefix can prove.
class ParserTruncationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParserTruncationTest, NoCrashOnAnyPrefix) {
  const auto frame = build_tls_client_hello(kDev, kGw, kDevIp, kCloud, 49000,
                                            "truncation.example.com");
  const std::size_t cut = std::min(GetParam(), frame.size());
  const std::span<const std::uint8_t> prefix(frame.data(), cut);
  const auto pkt = parse_ethernet_frame(prefix, 0);
  EXPECT_EQ(pkt.wire_size, cut);
}

INSTANTIATE_TEST_SUITE_P(Prefixes, ParserTruncationTest,
                         ::testing::Values(0, 1, 5, 13, 14, 20, 33, 34, 40,
                                           53, 54, 60, 80, 120, 10'000));

}  // namespace
}  // namespace iotsentinel::net
