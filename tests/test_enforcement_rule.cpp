#include "sdn/enforcement_rule.hpp"

#include <gtest/gtest.h>

namespace iotsentinel::sdn {
namespace {

using net::Ipv4Address;
using net::MacAddress;

const MacAddress kDevice = MacAddress::of(0x13, 0x73, 0x74, 0x7e, 0xa9, 0xc2);
const Ipv4Address kCloudA = Ipv4Address::of(104, 31, 18, 30);
const Ipv4Address kCloudB = Ipv4Address::of(104, 31, 19, 30);

TEST(EnforcementRule, TrustedPermitsAnyRemote) {
  EnforcementRule rule{.device = kDevice, .level = IsolationLevel::kTrusted};
  EXPECT_TRUE(rule.permits_remote(kCloudA));
  EXPECT_TRUE(rule.permits_remote(Ipv4Address::of(8, 8, 8, 8)));
  EXPECT_EQ(rule.overlay(), Overlay::kTrusted);
}

TEST(EnforcementRule, RestrictedPermitsOnlyWhitelist) {
  EnforcementRule rule{.device = kDevice,
                       .level = IsolationLevel::kRestricted,
                       .permitted_ips = {kCloudA, kCloudB}};
  EXPECT_TRUE(rule.permits_remote(kCloudA));
  EXPECT_TRUE(rule.permits_remote(kCloudB));
  EXPECT_FALSE(rule.permits_remote(Ipv4Address::of(8, 8, 8, 8)));
  EXPECT_EQ(rule.overlay(), Overlay::kUntrusted);
}

TEST(EnforcementRule, StrictPermitsNothing) {
  EnforcementRule rule{.device = kDevice, .level = IsolationLevel::kStrict};
  EXPECT_FALSE(rule.permits_remote(kCloudA));
  EXPECT_EQ(rule.overlay(), Overlay::kUntrusted);
}

TEST(EnforcementRule, HashIsStableAndOrderInsensitive) {
  EnforcementRule a{.device = kDevice,
                    .level = IsolationLevel::kRestricted,
                    .permitted_ips = {kCloudA, kCloudB}};
  EnforcementRule b{.device = kDevice,
                    .level = IsolationLevel::kRestricted,
                    .permitted_ips = {kCloudB, kCloudA}};
  EXPECT_EQ(a.hash(), b.hash());  // commutative IP combine
  EXPECT_EQ(a.hash(), a.hash());  // stable
}

TEST(EnforcementRule, HashDistinguishesContent) {
  EnforcementRule base{.device = kDevice, .level = IsolationLevel::kStrict};
  EnforcementRule other_level = base;
  other_level.level = IsolationLevel::kTrusted;
  EXPECT_NE(base.hash(), other_level.hash());

  EnforcementRule other_device = base;
  other_device.device = MacAddress::of(1, 2, 3, 4, 5, 6);
  EXPECT_NE(base.hash(), other_device.hash());

  EnforcementRule extra_ip = base;
  extra_ip.permitted_ips.insert(kCloudA);
  EXPECT_NE(base.hash(), extra_ip.hash());
}

TEST(EnforcementRule, ToStringMirrorsFig2Format) {
  EnforcementRule rule{.device = kDevice,
                       .level = IsolationLevel::kRestricted,
                       .permitted_ips = {kCloudB, kCloudA}};
  const std::string text = rule.to_string();
  EXPECT_NE(text.find("Device: 13-73-74-7E-A9-C2"), std::string::npos);
  EXPECT_NE(text.find("Isolation level: Restricted"), std::string::npos);
  // Permitted IPs are listed sorted.
  const auto pos_a = text.find("104.31.18.30");
  const auto pos_b = text.find("104.31.19.30");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  EXPECT_NE(text.find("Hash: 0x"), std::string::npos);
}

TEST(EnforcementRule, StrictToStringOmitsWhitelist) {
  EnforcementRule rule{.device = kDevice, .level = IsolationLevel::kStrict};
  EXPECT_EQ(rule.to_string().find("Permitted"), std::string::npos);
}

TEST(IsolationLevel, OverlayMapping) {
  EXPECT_EQ(overlay_for(IsolationLevel::kTrusted), Overlay::kTrusted);
  EXPECT_EQ(overlay_for(IsolationLevel::kRestricted), Overlay::kUntrusted);
  EXPECT_EQ(overlay_for(IsolationLevel::kStrict), Overlay::kUntrusted);
  EXPECT_EQ(to_string(IsolationLevel::kStrict), "Strict");
  EXPECT_EQ(to_string(Overlay::kTrusted), "trusted");
}

}  // namespace
}  // namespace iotsentinel::sdn
