// Scenario engine: parsing (typed errors), deterministic compilation,
// and the shipped attack library holding against the serial and sharded
// gateways with the enforcement auditor attached.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "simnet/device_catalog.hpp"
#include "simnet/scenario.hpp"

namespace iotsentinel::sim {
namespace {

// ---------------------------------------------------------------- parse

ScenarioError::Kind parse_kind(const std::string& text) {
  ScenarioParseResult result = parse_scenario(text);
  EXPECT_FALSE(result) << "expected a parse error for:\n" << text;
  return result ? ScenarioError::Kind::kNone : result.error().kind;
}

TEST(ScenarioParse, MinimalScenario) {
  ScenarioParseResult result = parse_scenario(
      "scenario v1\n"
      "name tiny\n"
      "join a Aria at 1.5\n");
  ASSERT_TRUE(result) << describe(result.error());
  EXPECT_EQ(result->name, "tiny");
  EXPECT_EQ(result->seed, 1u);
  ASSERT_EQ(result->joins.size(), 1u);
  EXPECT_EQ(result->joins[0].actor, "a");
  EXPECT_EQ(result->joins[0].type, "Aria");
  EXPECT_EQ(result->joins[0].at_us, 1'500'000u);
  EXPECT_TRUE(result->joins[0].spoof_actor.empty());
}

TEST(ScenarioParse, AllDirectives) {
  ScenarioParseResult result = parse_scenario(
      "# full-format smoke\n"
      "scenario v1\n"
      "name full\n"
      "seed 42\n"
      "join a Aria at 0\n"
      "join b EdimaxCam at 10 mac a\n"
      "standby a cycles 3 at 60\n"
      "expire at 600 idle 120\n"
      "flood at 5 frames 100 kind spray gap-us 500\n"
      "fault from 0 to 30 drop 0.1 dup 0.2 reorder 0.3 corrupt 0.05 "
      "depth 6 actor a\n"
      "expect a type Aria\n"
      "expect b new-type\n"
      "expect a level trusted\n");
  ASSERT_TRUE(result) << describe(result.error());
  EXPECT_EQ(result->seed, 42u);
  ASSERT_EQ(result->joins.size(), 2u);
  EXPECT_EQ(result->joins[1].spoof_actor, "a");
  ASSERT_EQ(result->standbys.size(), 1u);
  EXPECT_EQ(result->standbys[0].cycles, 3u);
  ASSERT_EQ(result->expires.size(), 1u);
  EXPECT_EQ(result->expires[0].idle_us, 120'000'000u);
  ASSERT_EQ(result->floods.size(), 1u);
  EXPECT_EQ(result->floods[0].kind, ScenarioFlood::Kind::kSpray);
  EXPECT_EQ(result->floods[0].gap_us, 500u);
  ASSERT_EQ(result->faults.size(), 1u);
  EXPECT_DOUBLE_EQ(result->faults[0].faults.drop_prob, 0.1);
  EXPECT_EQ(result->faults[0].faults.reorder_depth, 6u);
  EXPECT_EQ(result->faults[0].actor, "a");
  ASSERT_EQ(result->expects.size(), 3u);
  EXPECT_EQ(result->expects[2].kind, ScenarioExpect::Kind::kLevel);
  EXPECT_EQ(result->expects[2].level, sdn::IsolationLevel::kTrusted);
}

TEST(ScenarioParse, TypedErrors) {
  using K = ScenarioError::Kind;
  EXPECT_EQ(parse_kind(""), K::kBadHeader);
  EXPECT_EQ(parse_kind("roster v1\nname x\n"), K::kBadHeader);
  EXPECT_EQ(parse_kind("scenario v2\n"), K::kBadHeader);
  EXPECT_EQ(parse_kind("scenario v1\njoin a Aria at 0\n"), K::kMissingField);
  EXPECT_EQ(parse_kind("scenario v1\nname x\n"), K::kMissingField);
  EXPECT_EQ(parse_kind("scenario v1\nname x\nteleport a\n"),
            K::kUnknownDirective);
  EXPECT_EQ(parse_kind("scenario v1\nname x\njoin a Aria at nope\n"),
            K::kMalformedLine);
  EXPECT_EQ(parse_kind("scenario v1\nname x\njoin a Aria at 0\n"
                       "join a Aria at 1\n"),
            K::kDuplicateActor);
  EXPECT_EQ(parse_kind("scenario v1\nname x\njoin a Aria at 0 mac ghost\n"),
            K::kUnknownActor);
  // Self-spoof: the target must be an *earlier* join.
  EXPECT_EQ(parse_kind("scenario v1\nname x\njoin a Aria at 0 mac a\n"),
            K::kUnknownActor);
  EXPECT_EQ(parse_kind("scenario v1\nname x\njoin a Aria at 0\n"
                       "standby ghost cycles 2 at 5\n"),
            K::kUnknownActor);
  EXPECT_EQ(parse_kind("scenario v1\nname x\njoin a Aria at 0\n"
                       "expect ghost type Aria\n"),
            K::kUnknownActor);
  EXPECT_EQ(parse_kind("scenario v1\nname x\njoin a Aria at 0\n"
                       "fault from 0 to 10 drop 1.5\n"),
            K::kOutOfRange);
  EXPECT_EQ(parse_kind("scenario v1\nname x\njoin a Aria at 0\n"
                       "fault from 10 to 5\n"),
            K::kMalformedLine);
  EXPECT_EQ(parse_kind("scenario v1\nname x\njoin a Aria at 0\n"
                       "flood at 0 frames 0 kind random\n"),
            K::kOutOfRange);
  EXPECT_EQ(parse_kind("scenario v1\nname x\njoin a Aria at 0\n"
                       "expect a level turbo\n"),
            K::kOutOfRange);
}

TEST(ScenarioParse, ErrorsCarryLineNumbers) {
  ScenarioParseResult result = parse_scenario(
      "scenario v1\n"
      "name x\n"
      "join a Aria at 0\n"
      "warp a\n");
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error().line, 4u);
  EXPECT_NE(describe(result.error()).find("line 4"), std::string::npos);
  EXPECT_STREQ(to_string(result.error().kind), "unknown-directive");
}

TEST(ScenarioParse, LoadFileReportsIoError) {
  ScenarioParseResult result = load_scenario_file("/nonexistent/x.scn");
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error().kind, ScenarioError::Kind::kIoError);
}

// -------------------------------------------------------------- compile

Scenario parse_ok(const std::string& text) {
  ScenarioParseResult result = parse_scenario(text);
  EXPECT_TRUE(result) << describe(result.error());
  return result.take();
}

TEST(ScenarioCompile, UnknownTypeIsACompileError) {
  const Scenario scn = parse_ok(
      "scenario v1\nname x\njoin a FluxCapacitor at 0\n");
  ScenarioError error;
  EXPECT_FALSE(compile_scenario(scn, device_roster(), &error));
  EXPECT_EQ(error.kind, ScenarioError::Kind::kUnknownType);
  EXPECT_NE(error.detail.find("FluxCapacitor"), std::string::npos);
}

TEST(ScenarioCompile, SameSeedCompilesBitIdentically) {
  const Scenario scn = parse_ok(
      "scenario v1\nname det\nseed 5\n"
      "join a Aria at 0\njoin b EdimaxCam at 10\n"
      "flood at 3 frames 50 kind random\n"
      "fault from 0 to 60 drop 0.1 reorder 0.2\n");
  const auto c1 = compile_scenario(scn, device_roster());
  const auto c2 = compile_scenario(scn, device_roster());
  ASSERT_TRUE(c1 && c2);
  EXPECT_EQ(c1->stream_hash, c2->stream_hash);
  ASSERT_EQ(c1->items.size(), c2->items.size());
  for (std::size_t i = 0; i < c1->items.size(); ++i) {
    EXPECT_EQ(c1->items[i].frame.timestamp_us, c2->items[i].frame.timestamp_us);
    EXPECT_EQ(c1->items[i].frame.frame, c2->items[i].frame.frame);
  }

  Scenario reseeded = scn;
  reseeded.seed = 6;
  const auto c3 = compile_scenario(reseeded, device_roster());
  ASSERT_TRUE(c3);
  EXPECT_NE(c1->stream_hash, c3->stream_hash);
}

TEST(ScenarioCompile, SpoofJoinSharesTheMac) {
  const Scenario scn = parse_ok(
      "scenario v1\nname spoof\n"
      "join a Aria at 0\n"
      "join b EdimaxCam at 100 mac a\n"
      "join c EdimaxCam at 200\n");
  const auto compiled = compile_scenario(scn, device_roster());
  ASSERT_TRUE(compiled);
  ASSERT_EQ(compiled->actor_macs.size(), 3u);
  EXPECT_EQ(compiled->actor_macs[0], compiled->actor_macs[1]);
  EXPECT_NE(compiled->actor_macs[0], compiled->actor_macs[2]);
}

TEST(ScenarioCompile, FaultWindowOnlyTouchesItsFrames) {
  const std::string base =
      "scenario v1\nname w\nseed 9\n"
      "join a Aria at 0\njoin b EdimaxCam at 120\n";
  const auto clean = compile_scenario(parse_ok(base), device_roster());
  const auto faulted = compile_scenario(
      parse_ok(base + "fault from 0 to 60 drop 0.3 actor a\n"),
      device_roster());
  ASSERT_TRUE(clean && faulted);
  EXPECT_GT(faulted->fault_stats.frames_in, 0u);
  EXPECT_GT(faulted->fault_stats.dropped, 0u);
  // b joins outside the window: its frames survive untouched.
  std::size_t clean_b = 0;
  std::size_t faulted_b = 0;
  for (const ScenarioItem& item : clean->items) {
    clean_b += item.frame.timestamp_us >= 120'000'000u;
  }
  for (const ScenarioItem& item : faulted->items) {
    faulted_b += item.frame.timestamp_us >= 120'000'000u;
  }
  EXPECT_EQ(clean_b, faulted_b);
  // a lost frames.
  EXPECT_EQ(clean->items.size() - faulted->items.size(),
            faulted->fault_stats.dropped);
}

TEST(ScenarioCompile, ExpireItemsLandAtTheirTime) {
  const Scenario scn = parse_ok(
      "scenario v1\nname e\n"
      "join a Aria at 0\n"
      "expire at 300 idle 60\n"
      "join b EdimaxCam at 600\n");
  const auto compiled = compile_scenario(scn, device_roster());
  ASSERT_TRUE(compiled);
  bool seen_expire = false;
  for (std::size_t i = 0; i < compiled->items.size(); ++i) {
    const ScenarioItem& item = compiled->items[i];
    if (item.kind == ScenarioItem::Kind::kExpire) {
      seen_expire = true;
      EXPECT_EQ(item.frame.timestamp_us, 300'000'000u);
      EXPECT_EQ(item.idle_us, 60'000'000u);
      // Stream stays time-ordered around the control op.
      if (i > 0) {
        EXPECT_LE(compiled->items[i - 1].frame.timestamp_us,
                  item.frame.timestamp_us);
      }
      if (i + 1 < compiled->items.size()) {
        EXPECT_LE(item.frame.timestamp_us,
                  compiled->items[i + 1].frame.timestamp_us);
      }
    }
  }
  EXPECT_TRUE(seen_expire);
}

// ------------------------------------------------------------- builtins

const core::IoTSecurityService& scenario_service() {
  static const core::IoTSecurityService service = make_scenario_service(
      {"Aria", "EdimaxCam", "HueBridge", "Withings"});
  return service;
}

CompiledScenario compile_builtin(const char* name) {
  for (const BuiltinScenario& builtin : builtin_scenarios()) {
    if (std::string_view(builtin.name) == name) {
      ScenarioParseResult parsed = parse_scenario(builtin.text);
      EXPECT_TRUE(parsed) << describe(parsed.error());
      ScenarioError error;
      auto compiled = compile_scenario(*parsed, device_roster(), &error);
      EXPECT_TRUE(compiled) << describe(error);
      return std::move(*compiled);
    }
  }
  ADD_FAILURE() << "no builtin named " << name;
  return {};
}

class BuiltinScenarioTest
    : public ::testing::TestWithParam<std::tuple<const char*, std::size_t>> {};

TEST_P(BuiltinScenarioTest, HoldsWithZeroEnforcementViolations) {
  const auto [name, shards] = GetParam();
  const CompiledScenario compiled = compile_builtin(name);
  const ScenarioOutcome out =
      run_scenario(compiled, scenario_service(), shards);
  EXPECT_EQ(out.audit_violations, 0u);
  EXPECT_TRUE(out.passed()) << [&] {
    std::string all;
    for (const std::string& failure : out.failures) all += failure + "\n";
    return all;
  }();
  EXPECT_GT(out.audit_checked, 0u);
  EXPECT_EQ(out.misid_rate, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBuiltinsAllFlavours, BuiltinScenarioTest,
    ::testing::Combine(::testing::Values("mac-reuse", "fingerprint-mimicry",
                                         "setup-degradation",
                                         "malformed-flood"),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{4})),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + (std::get<1>(info.param) == 0
                         ? "_serial"
                         : "_shards" + std::to_string(std::get<1>(info.param)));
    });

TEST(ScenarioRun, SerialRunsAreDeterministic) {
  const CompiledScenario compiled = compile_builtin("setup-degradation");
  const ScenarioOutcome a = run_scenario(compiled, scenario_service(), 0);
  const ScenarioOutcome b = run_scenario(compiled, scenario_service(), 0);
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.frames_fed, b.frames_fed);
  EXPECT_EQ(a.malformed_frames, b.malformed_frames);
  EXPECT_EQ(a.dropped_frames, b.dropped_frames);
  EXPECT_EQ(a.events_total, b.events_total);
  ASSERT_EQ(a.actors.size(), b.actors.size());
  for (std::size_t i = 0; i < a.actors.size(); ++i) {
    EXPECT_EQ(a.actors[i].identified_type, b.actors[i].identified_type);
    EXPECT_EQ(a.actors[i].level, b.actors[i].level);
  }
}

TEST(ScenarioRun, MacReuseNeverInheritsIdentityOrRules) {
  const CompiledScenario compiled = compile_builtin("mac-reuse");
  for (const std::size_t shards : {std::size_t{0}, std::size_t{2}}) {
    const ScenarioOutcome out =
        run_scenario(compiled, scenario_service(), shards);
    ASSERT_EQ(out.actors.size(), 2u);
    const ScenarioActorOutcome& victim = out.actors[0];
    const ScenarioActorOutcome& intruder = out.actors[1];
    EXPECT_EQ(victim.mac, intruder.mac);  // the attack premise
    ASSERT_TRUE(victim.identified);
    ASSERT_TRUE(intruder.identified);
    // The intruder is re-fingerprinted as its own hardware type and
    // pinned to that type's (Restricted) level — not the victim's
    // Trusted verdict.
    EXPECT_EQ(victim.identified_type, "Aria");
    EXPECT_EQ(victim.level, sdn::IsolationLevel::kTrusted);
    EXPECT_EQ(intruder.identified_type, "EdimaxCam");
    EXPECT_EQ(intruder.level, sdn::IsolationLevel::kRestricted);
    EXPECT_GT(out.devices_expired, 0u);
    EXPECT_EQ(out.audit_violations, 0u);
  }
}

TEST(ScenarioRun, MalformedFloodIsCountedAndBounded) {
  const CompiledScenario compiled = compile_builtin("malformed-flood");
  const ScenarioOutcome out = run_scenario(compiled, scenario_service(), 0);
  EXPECT_TRUE(out.passed());
  // The random flood lands a meaningful malformed count...
  EXPECT_GT(out.malformed_frames, 50u);
  EXPECT_GE(out.dropped_frames, out.malformed_frames);
  // ...and phantom state stays bounded: at most one capture per distinct
  // flood source (400 sprayed MACs + well-formed-by-chance random frames)
  // plus the two real devices, with idle discard reclaiming the
  // sub-threshold captures afterwards.
  EXPECT_GT(out.extractor_peak_active, 2u);
  EXPECT_LE(out.extractor_peak_active, 802u);
  EXPECT_GT(out.extractor_discarded, 0u);
}

// -------------------------------------------------- docs worked example

std::string docs_worked_example() {
  std::ifstream in(IOTSENTINEL_DOCS_DIR "/SCENARIOS.md");
  EXPECT_TRUE(in.good()) << "cannot open docs/SCENARIOS.md";
  std::string line, example;
  bool in_block = false;
  while (std::getline(in, line)) {
    if (!in_block && line == "```scenario") {
      in_block = true;
    } else if (in_block && line == "```") {
      break;
    } else if (in_block) {
      example += line + "\n";
    }
  }
  return example;
}

TEST(ScenarioDocs, WorkedExampleIsTheShippedMacReuseScenario) {
  const std::string example = docs_worked_example();
  ASSERT_FALSE(example.empty()) << "no ```scenario block in docs/SCENARIOS.md";
  // The doc block and the builtin must be the same text, so the
  // documentation cannot drift from what the suite actually runs.
  const BuiltinScenario* mac_reuse = nullptr;
  for (const BuiltinScenario& builtin : builtin_scenarios()) {
    if (std::string_view(builtin.name) == "mac-reuse") mac_reuse = &builtin;
  }
  ASSERT_NE(mac_reuse, nullptr);
  EXPECT_EQ(example, std::string(mac_reuse->text));

  ScenarioParseResult parsed = parse_scenario(example);
  ASSERT_TRUE(parsed) << describe(parsed.error());
  EXPECT_EQ(parsed->name, "mac-reuse");
  ASSERT_EQ(parsed->joins.size(), 2u);
  EXPECT_EQ(parsed->joins[1].spoof_actor, "victim");
  EXPECT_EQ(parsed->expects.size(), 4u);
}

}  // namespace
}  // namespace iotsentinel::sim
