#include "core/legacy_migration.hpp"

#include <gtest/gtest.h>

#include "fingerprint/extractor.hpp"
#include "simnet/corpus.hpp"
#include "simnet/traffic_generator.hpp"

namespace iotsentinel::core {
namespace {

fp::Fingerprint standby_fp(const std::string& type, std::uint64_t seed) {
  const auto* profile = sim::find_profile(type);
  sim::TrafficGenerator gen;
  ml::Rng rng(seed);
  const auto frames = gen.generate_standby(
      *profile, sim::TrafficGenerator::mint_mac(*profile, 42),
      net::Ipv4Address::of(192, 168, 0, 66), 3, rng);
  return fp::fingerprint_from_packets(sim::parse_frames(frames));
}

/// Service trained on standby fingerprints of a broad type set; EdimaxCam
/// carries a vulnerability record.
IoTSecurityService make_service() {
  const auto corpus = sim::generate_standby_corpus(12, 555);
  DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  VulnerabilityDb db = VulnerabilityDb::with_sample_data();
  IoTSecurityService service(std::move(identifier), std::move(db));
  service.register_endpoints("EdimaxCam",
                             {net::Ipv4Address::of(104, 22, 7, 70)});
  return service;
}

struct MigrationHarness {
  IoTSecurityService service = make_service();
  sdn::Controller controller;
  NotificationCenter notifications;
  LegacyMigrator migrator{service, controller, notifications};
};

TEST(LegacyMigration, CleanWpsDeviceJoinsTrustedOverlayWithFreshPsk) {
  MigrationHarness h;
  LegacyDevice device;
  device.mac = net::MacAddress::of(2, 1, 0, 0, 0, 1);
  device.supports_wps_rekeying = true;
  device.standby_fingerprint = standby_fp("HueBridge", 1);

  const MigrationOutcome out = h.migrator.migrate(device, 100);
  EXPECT_EQ(out.device_type, "HueBridge");
  EXPECT_EQ(out.level, sdn::IsolationLevel::kTrusted);
  EXPECT_EQ(out.overlay, sdn::Overlay::kTrusted);
  EXPECT_FALSE(out.issued_psk.empty());
  EXPECT_EQ(h.migrator.psk_of(device.mac), out.issued_psk);
  EXPECT_EQ(h.controller.level_of(device.mac),
            sdn::IsolationLevel::kTrusted);
  EXPECT_TRUE(h.notifications.pending().empty());
}

TEST(LegacyMigration, CleanDeviceWithoutWpsStaysUntrustedAndPromptsUser) {
  MigrationHarness h;
  LegacyDevice device;
  device.mac = net::MacAddress::of(2, 1, 0, 0, 0, 2);
  device.supports_wps_rekeying = false;
  device.standby_fingerprint = standby_fp("Aria", 2);

  const MigrationOutcome out = h.migrator.migrate(device, 100);
  EXPECT_EQ(out.overlay, sdn::Overlay::kUntrusted);
  EXPECT_TRUE(out.needs_manual_reauth);
  EXPECT_TRUE(out.issued_psk.empty());
  EXPECT_FALSE(h.migrator.psk_of(device.mac).has_value());
  ASSERT_EQ(h.notifications.pending().size(), 1u);
  EXPECT_EQ(h.notifications.pending()[0].reason,
            NotificationReason::kManualReauthRequired);
}

TEST(LegacyMigration, VulnerableDeviceStaysRestrictedUntrusted) {
  MigrationHarness h;
  LegacyDevice device;
  device.mac = net::MacAddress::of(2, 1, 0, 0, 0, 3);
  device.standby_fingerprint = standby_fp("EdimaxCam", 3);

  const MigrationOutcome out = h.migrator.migrate(device, 100);
  EXPECT_EQ(out.level, sdn::IsolationLevel::kRestricted);
  EXPECT_EQ(out.overlay, sdn::Overlay::kUntrusted);
  EXPECT_FALSE(out.flagged_for_removal);  // no uncontrolled channel
  // The whitelist travelled into the installed rule.
  const sdn::EnforcementRule* rule = h.controller.rules().lookup(device.mac);
  ASSERT_NE(rule, nullptr);
  EXPECT_TRUE(rule->permitted_ips.contains(net::Ipv4Address::of(104, 22, 7, 70)));
}

TEST(LegacyMigration, VulnerableWithUncontrolledChannelFlagsRemoval) {
  MigrationHarness h;
  LegacyDevice device;
  device.mac = net::MacAddress::of(2, 1, 0, 0, 0, 4);
  device.has_uncontrolled_channel = true;
  device.standby_fingerprint = standby_fp("EdimaxCam", 4);

  const MigrationOutcome out = h.migrator.migrate(device, 100);
  EXPECT_TRUE(out.flagged_for_removal);
  bool saw_removal = false;
  for (const auto& n : h.notifications.pending()) {
    saw_removal |= n.reason == NotificationReason::kRemoveDevice;
  }
  EXPECT_TRUE(saw_removal);
}

TEST(LegacyMigration, MigrateAllProcessesEveryDevice) {
  MigrationHarness h;
  std::vector<LegacyDevice> devices;
  const char* types[] = {"HueBridge", "Aria", "D-LinkCam"};
  for (int i = 0; i < 3; ++i) {
    LegacyDevice d;
    d.mac = net::MacAddress::of(2, 2, 0, 0, 0, static_cast<std::uint8_t>(i));
    d.standby_fingerprint = standby_fp(types[i], 10 + static_cast<std::uint64_t>(i));
    devices.push_back(std::move(d));
  }
  const auto outcomes = h.migrator.migrate_all(devices, 100);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(h.migrator.outcomes().size(), 3u);
  for (const auto& d : devices) {
    EXPECT_TRUE(h.controller.level_of(d.mac).has_value());
  }
}

TEST(LegacyMigration, IssuedPsksAreUniquePerDevice) {
  MigrationHarness h;
  std::vector<std::string> psks;
  for (int i = 0; i < 4; ++i) {
    LegacyDevice d;
    d.mac = net::MacAddress::of(2, 3, 0, 0, 0, static_cast<std::uint8_t>(i));
    d.standby_fingerprint = standby_fp("HueBridge", 20 + static_cast<std::uint64_t>(i));
    const auto out = h.migrator.migrate(d, 100);
    if (!out.issued_psk.empty()) psks.push_back(out.issued_psk);
  }
  ASSERT_GE(psks.size(), 2u);
  for (std::size_t i = 0; i < psks.size(); ++i) {
    EXPECT_EQ(psks[i].size(), 32u);
    for (std::size_t j = i + 1; j < psks.size(); ++j) {
      EXPECT_NE(psks[i], psks[j]);
    }
  }
}

}  // namespace
}  // namespace iotsentinel::core
