// Equivalence suite for the compiled-forest inference engine: every
// prediction of CompiledForest must be *bit-identical* to the
// training-side RandomForest / DecisionTree paths (the serving rewire in
// ClassifierBank silently swapped engines, so exactness is what keeps
// accept thresholds, ties and persisted models behaving the same).
#include "ml/compiled_forest.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>

#include "core/classifier_bank.hpp"
#include "ml/random_forest.hpp"
#include "ml/rng.hpp"
#include "net/bytes.hpp"
#include "simnet/corpus.hpp"

/// Binary-wide allocation counter so the no-allocation guarantee of the
/// serving path is asserted, not assumed.
namespace {
std::atomic<std::size_t> g_heap_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_heap_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace iotsentinel::ml {
namespace {

/// Random dense dataset: uniform floats in [0, 4), labels in [0, classes).
Dataset random_dataset(std::size_t rows, std::size_t features, int classes,
                       std::uint64_t seed) {
  Dataset data(features);
  Rng rng(seed);
  std::vector<float> row(features);
  for (std::size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = static_cast<float>(rng.uniform(0.0, 4.0));
    // Make labels loosely feature-correlated so trees actually split.
    const int label = (row[0] + row[1] > 4.0f)
                          ? static_cast<int>(rng.index(static_cast<std::size_t>(classes)))
                          : static_cast<int>(i % static_cast<std::size_t>(classes));
    data.add(row, label);
  }
  return data;
}

std::vector<std::vector<float>> random_probes(std::size_t count,
                                              std::size_t features,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> probes(count, std::vector<float>(features));
  for (auto& p : probes) {
    for (auto& v : p) v = static_cast<float>(rng.uniform(0.0, 4.0));
  }
  return probes;
}

/// Exact (bitwise) comparison of reference vs compiled on one input.
void expect_exact_match(const RandomForest& forest, const CompiledForest& fast,
                        std::span<const float> x) {
  const auto reference = forest.predict_proba(x);
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(fast.num_classes()));
  std::vector<double> compiled(reference.size());
  fast.predict_proba_into(x, compiled);
  for (std::size_t c = 0; c < reference.size(); ++c) {
    EXPECT_EQ(reference[c], compiled[c]) << "class " << c;
  }
  EXPECT_EQ(forest.predict(x), fast.predict(x));
  EXPECT_EQ(forest.positive_score(x), fast.positive_score(x));
}

TEST(CompiledForest, MatchesForestAcrossDepthsAndClassCounts) {
  struct Case {
    int classes;
    std::size_t max_depth;
    std::size_t num_trees;
  };
  const Case cases[] = {
      {2, 0, 30}, {2, 3, 7}, {2, 1, 1}, {3, 0, 15}, {4, 2, 10}, {5, 4, 9},
  };
  for (const auto& c : cases) {
    const Dataset data =
        random_dataset(120, 12, c.classes, 1000 + static_cast<std::uint64_t>(c.classes));
    ForestConfig config;
    config.num_trees = c.num_trees;
    config.tree.max_depth = c.max_depth;
    config.seed = 7 * c.num_trees + 1;
    RandomForest forest;
    forest.train(data, config);
    const CompiledForest fast = forest.compile();
    EXPECT_EQ(fast.tree_count(), forest.tree_count());
    EXPECT_EQ(fast.num_classes(), forest.num_classes());

    for (std::size_t i = 0; i < data.size(); ++i) {
      expect_exact_match(forest, fast, data.row(i));
    }
    for (const auto& probe : random_probes(50, 12, 99 + c.num_trees)) {
      expect_exact_match(forest, fast, probe);
    }
  }
}

TEST(CompiledForest, DegenerateSingleLeafTrees) {
  // All rows share one label: every tree is a single pure leaf.
  Dataset pure(6);
  Rng rng(5);
  std::vector<float> row(6);
  for (int i = 0; i < 40; ++i) {
    for (auto& v : row) v = static_cast<float>(rng.uniform(0.0, 1.0));
    pure.add(row, 0);
  }
  RandomForest forest;
  forest.train(pure, ForestConfig{.num_trees = 5});
  const CompiledForest fast = forest.compile();
  for (const auto& probe : random_probes(10, 6, 11)) {
    expect_exact_match(forest, fast, probe);
  }

  // Constant features with mixed labels: no split improves impurity, so
  // trees collapse to a single mixed leaf.
  Dataset constant(4);
  const std::vector<float> same(4, 1.5f);
  for (int i = 0; i < 30; ++i) constant.add(same, i % 2);
  RandomForest mixed;
  mixed.train(constant, ForestConfig{.num_trees = 8});
  const CompiledForest mixed_fast = mixed.compile();
  for (const auto& probe : random_probes(10, 4, 13)) {
    expect_exact_match(mixed, mixed_fast, probe);
  }
  EXPECT_EQ(mixed_fast.node_count(), 8u);  // one leaf per tree
}

TEST(CompiledForest, MatchesSingleDecisionTreeExactly) {
  const Dataset data = random_dataset(90, 8, 3, 321);
  std::vector<std::size_t> all(data.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng(17);
  DecisionTree tree;
  tree.train(data, all, data.num_classes(), TreeConfig{}, rng);

  const CompiledForest fast = CompiledForest::compile(tree);
  ASSERT_EQ(fast.tree_count(), 1u);
  std::vector<double> compiled(static_cast<std::size_t>(tree.num_classes()));
  for (const auto& probe : random_probes(60, 8, 22)) {
    const auto reference = tree.predict_proba(probe);
    fast.predict_proba_into(probe, compiled);
    for (std::size_t c = 0; c < reference.size(); ++c) {
      EXPECT_EQ(reference[c], compiled[c]);
    }
    EXPECT_EQ(tree.predict(probe), fast.predict(probe));
  }
}

TEST(CompiledForest, SaveLoadCompileRoundTrip) {
  const Dataset data = random_dataset(100, 10, 2, 777);
  RandomForest forest;
  forest.train(data, ForestConfig{.num_trees = 12, .seed = 3});

  net::ByteWriter w;
  forest.save(w);
  net::ByteReader r(w.data());
  const auto loaded = RandomForest::load(r);
  ASSERT_TRUE(loaded.has_value());

  const CompiledForest original = forest.compile();
  const CompiledForest reloaded = loaded->compile();
  EXPECT_EQ(original.node_count(), reloaded.node_count());
  for (const auto& probe : random_probes(40, 10, 31)) {
    EXPECT_EQ(original.positive_score(probe), reloaded.positive_score(probe));
    EXPECT_EQ(forest.positive_score(probe), reloaded.positive_score(probe));
    EXPECT_EQ(loaded->predict(probe), reloaded.predict(probe));
  }
}

TEST(CompiledForest, UntrainedForestPredictsZeros) {
  const RandomForest forest;
  const CompiledForest fast = forest.compile();
  EXPECT_TRUE(fast.empty());
  const std::vector<float> probe(16, 0.5f);
  EXPECT_EQ(fast.positive_score(probe), 0.0);
  EXPECT_EQ(fast.predict(probe), forest.predict(probe));
}

TEST(CompiledForest, BatchMatchesScalarScores) {
  const Dataset data = random_dataset(80, 9, 2, 4242);
  RandomForest forest;
  forest.train(data, ForestConfig{.num_trees = 10});
  const CompiledForest fast = forest.compile();

  const auto batch = random_probes(33, 9, 55);
  std::vector<double> out(batch.size());
  fast.score_batch(batch, out);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out[i], forest.positive_score(batch[i]));
  }
}

// The bank-level serving paths must all agree with each other and with
// the pre-compilation semantics (per-forest positive_score).
TEST(CompiledForest, ClassifierBankServesIdenticalScores) {
  const auto corpus = sim::generate_corpus_for(
      {"Aria", "HueBridge", "MAXGateway", "WeMoLink"}, 10, 321);
  std::vector<std::vector<fp::FixedFingerprint>> fixed;
  for (const auto& runs : corpus.by_type) {
    auto& out = fixed.emplace_back();
    for (const auto& f : runs) out.push_back(f.to_fixed());
  }
  core::ClassifierBank bank;
  bank.train(corpus.type_names, fixed);

  std::vector<double> into(bank.num_types());
  std::vector<std::size_t> accepted_buf;
  std::vector<fp::FixedFingerprint> batch;
  for (const auto& runs : fixed) batch.push_back(runs.front());
  std::vector<double> batch_out(batch.size() * bank.num_types());
  bank.score_batch(batch, batch_out);

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& probe = batch[i];
    const auto reference = bank.scores(probe);
    bank.scores_into(probe, into);
    for (std::size_t t = 0; t < bank.num_types(); ++t) {
      // The uncompiled forest remains the ground truth.
      EXPECT_EQ(reference[t], bank.forest(t).positive_score(probe));
      EXPECT_EQ(reference[t], into[t]);
      EXPECT_EQ(reference[t], bank.score_one(t, probe));
      EXPECT_EQ(reference[t], batch_out[i * bank.num_types() + t]);
    }
    bank.accepted_into(probe, accepted_buf);
    EXPECT_EQ(bank.accepted(probe), accepted_buf);
  }

  // After warm-up the serving path must be allocation-free: positive
  // scores, scores_into, accepted_into and score_batch all run on the
  // flat compiled arrays and caller-owned buffers.
  bank.scores_into(batch[0], into);
  bank.accepted_into(batch[0], accepted_buf);
  bank.score_batch(batch, batch_out);
  volatile double benchmark_sink = 0.0;
  const std::size_t allocations_before = g_heap_allocations.load();
  for (int round = 0; round < 50; ++round) {
    for (const auto& probe : batch) {
      bank.scores_into(probe, into);
      bank.accepted_into(probe, accepted_buf);
      for (std::size_t t = 0; t < bank.num_types(); ++t) {
        benchmark_sink = benchmark_sink + bank.score_one(t, probe);
      }
    }
    bank.score_batch(batch, batch_out);
  }
  EXPECT_EQ(g_heap_allocations.load(), allocations_before)
      << "serving path allocated on the heap after warm-up";

  // Persistence keeps the compiled engine in sync: a loaded bank serves
  // the same scores as the bank that saved it.
  net::ByteWriter w;
  bank.save(w);
  net::ByteReader r(w.data());
  const auto loaded = core::ClassifierBank::load(r);
  ASSERT_TRUE(loaded.has_value());
  for (const auto& probe : batch) {
    const auto a = bank.scores(probe);
    const auto b = loaded->scores(probe);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t) EXPECT_EQ(a[t], b[t]);
  }
}

}  // namespace
}  // namespace iotsentinel::ml
