// Controller policy tests: the strict/restricted/trusted matrix over
// local-overlay and Internet destinations (paper Sect. V / Fig. 3).
#include "sdn/controller.hpp"

#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::sdn {
namespace {

using net::Ipv4Address;
using net::MacAddress;

const MacAddress kStrictDev = MacAddress::of(0x02, 1, 0, 0, 0, 1);
const MacAddress kRestrictedDev = MacAddress::of(0x02, 2, 0, 0, 0, 2);
const MacAddress kTrustedDev = MacAddress::of(0x02, 3, 0, 0, 0, 3);
const MacAddress kTrustedDev2 = MacAddress::of(0x02, 4, 0, 0, 0, 4);
const MacAddress kUnknownDev = MacAddress::of(0x02, 5, 0, 0, 0, 5);

const Ipv4Address kIpStrict = Ipv4Address::of(192, 168, 0, 11);
const Ipv4Address kIpRestricted = Ipv4Address::of(192, 168, 0, 12);
const Ipv4Address kIpTrusted = Ipv4Address::of(192, 168, 0, 13);
const Ipv4Address kIpTrusted2 = Ipv4Address::of(192, 168, 0, 14);
const Ipv4Address kVendorCloud = Ipv4Address::of(104, 31, 18, 30);
const Ipv4Address kOtherCloud = Ipv4Address::of(8, 8, 8, 8);

class ControllerPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    controller_.apply_rule({.device = kStrictDev,
                            .level = IsolationLevel::kStrict},
                           0);
    controller_.apply_rule({.device = kRestrictedDev,
                            .level = IsolationLevel::kRestricted,
                            .permitted_ips = {kVendorCloud}},
                           0);
    controller_.apply_rule({.device = kTrustedDev,
                            .level = IsolationLevel::kTrusted},
                           0);
    controller_.apply_rule({.device = kTrustedDev2,
                            .level = IsolationLevel::kTrusted},
                           0);
  }

  FlowAction run(const MacAddress& src_mac, Ipv4Address src_ip,
                 const MacAddress& dst_mac, Ipv4Address dst_ip) {
    const auto udp = net::build_udp_payload(50000, 8000, {});
    const auto frame = net::build_ipv4(src_mac, dst_mac, src_ip, dst_ip,
                                       net::ipproto::kUdp, udp);
    const auto pkt = net::parse_ethernet_frame(frame, 1);
    return controller_.packet_in(pkt, 1).action;
  }

  Controller controller_;
};

TEST_F(ControllerPolicyTest, StrictDeviceCannotReachInternet) {
  EXPECT_EQ(run(kStrictDev, kIpStrict, kTrustedDev, kVendorCloud),
            FlowAction::kDrop);
  EXPECT_EQ(run(kStrictDev, kIpStrict, kTrustedDev, kOtherCloud),
            FlowAction::kDrop);
}

TEST_F(ControllerPolicyTest, RestrictedDeviceReachesOnlyWhitelist) {
  EXPECT_EQ(run(kRestrictedDev, kIpRestricted, kTrustedDev, kVendorCloud),
            FlowAction::kForward);
  EXPECT_EQ(run(kRestrictedDev, kIpRestricted, kTrustedDev, kOtherCloud),
            FlowAction::kDrop);
}

TEST_F(ControllerPolicyTest, TrustedDeviceHasFullInternet) {
  EXPECT_EQ(run(kTrustedDev, kIpTrusted, kTrustedDev2, kVendorCloud),
            FlowAction::kForward);
  EXPECT_EQ(run(kTrustedDev, kIpTrusted, kTrustedDev2, kOtherCloud),
            FlowAction::kForward);
}

TEST_F(ControllerPolicyTest, UnidentifiedDeviceHasNoInternet) {
  EXPECT_EQ(run(kUnknownDev, Ipv4Address::of(192, 168, 0, 99), kTrustedDev,
                kOtherCloud),
            FlowAction::kDrop);
}

TEST_F(ControllerPolicyTest, OverlayIsolationBlocksCrossOverlay) {
  // Untrusted (strict/restricted) <-> trusted overlay is blocked.
  EXPECT_EQ(run(kStrictDev, kIpStrict, kTrustedDev, kIpTrusted),
            FlowAction::kDrop);
  EXPECT_EQ(run(kTrustedDev, kIpTrusted, kStrictDev, kIpStrict),
            FlowAction::kDrop);
  EXPECT_EQ(run(kRestrictedDev, kIpRestricted, kTrustedDev, kIpTrusted),
            FlowAction::kDrop);
}

TEST_F(ControllerPolicyTest, SameOverlayCommunicationAllowed) {
  // Both untrusted: strict <-> restricted may talk.
  EXPECT_EQ(run(kStrictDev, kIpStrict, kRestrictedDev, kIpRestricted),
            FlowAction::kForward);
  // Both trusted.
  EXPECT_EQ(run(kTrustedDev, kIpTrusted, kTrustedDev2, kIpTrusted2),
            FlowAction::kForward);
  // Unknown devices default into the untrusted overlay.
  EXPECT_EQ(run(kUnknownDev, Ipv4Address::of(192, 168, 0, 99), kStrictDev,
                kIpStrict),
            FlowAction::kForward);
}

TEST_F(ControllerPolicyTest, InfrastructureTrafficAlwaysFlows) {
  // DHCP from a strict device must be forwarded (or no device could ever
  // complete its setup dialogue).
  const auto dhcp =
      net::parse_ethernet_frame(net::build_dhcp(kStrictDev, 1, 42), 1);
  EXPECT_EQ(controller_.packet_in(dhcp, 1).action, FlowAction::kForward);
  // ARP likewise.
  const auto arp = net::parse_ethernet_frame(
      net::build_arp_request(kStrictDev, kIpStrict,
                             Ipv4Address::of(192, 168, 0, 1)),
      1);
  EXPECT_EQ(controller_.packet_in(arp, 1).action, FlowAction::kForward);
}

TEST_F(ControllerPolicyTest, InfrastructureTrafficIsNotInstalled) {
  const auto dhcp =
      net::parse_ethernet_frame(net::build_dhcp(kStrictDev, 1, 42), 1);
  const auto decision = controller_.packet_in(dhcp, 1);
  EXPECT_FALSE(decision.flow_to_install.has_value());
}

TEST_F(ControllerPolicyTest, UnicastDecisionsComeWithFlowEntries) {
  const auto udp = net::build_udp_payload(50000, 8000, {});
  const auto frame = net::build_ipv4(kTrustedDev, kTrustedDev2, kIpTrusted,
                                     kIpTrusted2, net::ipproto::kUdp, udp);
  const auto pkt = net::parse_ethernet_frame(frame, 1);
  const auto decision = controller_.packet_in(pkt, 1);
  ASSERT_TRUE(decision.flow_to_install.has_value());
  EXPECT_EQ(decision.flow_to_install->action, FlowAction::kForward);
  EXPECT_EQ(decision.flow_to_install->cookie, kTrustedDev.to_u64());
  EXPECT_TRUE(decision.flow_to_install->match.matches(pkt));
}

TEST_F(ControllerPolicyTest, LocalMulticastForwardedWithoutInstall) {
  const auto frame = net::build_mdns(kStrictDev, kIpStrict,
                                     "_svc._tcp.local", true);
  const auto pkt = net::parse_ethernet_frame(frame, 1);
  const auto decision = controller_.packet_in(pkt, 1);
  EXPECT_EQ(decision.action, FlowAction::kForward);
  EXPECT_FALSE(decision.flow_to_install.has_value());
}

TEST_F(ControllerPolicyTest, DropCounterTracksBlocks) {
  const auto before = controller_.drops();
  run(kStrictDev, kIpStrict, kTrustedDev, kOtherCloud);
  EXPECT_EQ(controller_.drops(), before + 1);
}

TEST_F(ControllerPolicyTest, LevelOfReportsInstalledRules) {
  EXPECT_EQ(controller_.level_of(kStrictDev), IsolationLevel::kStrict);
  EXPECT_EQ(controller_.level_of(kTrustedDev), IsolationLevel::kTrusted);
  EXPECT_FALSE(controller_.level_of(kUnknownDev).has_value());
}

TEST_F(ControllerPolicyTest, RemoveDeviceRevokesRule) {
  controller_.remove_device(kTrustedDev);
  EXPECT_FALSE(controller_.level_of(kTrustedDev).has_value());
  // Without a rule the device loses Internet access.
  EXPECT_EQ(run(kTrustedDev, kIpTrusted, kTrustedDev2, kOtherCloud),
            FlowAction::kDrop);
}

TEST(ControllerNoFiltering, ForwardsEverything) {
  Controller controller({.filtering_enabled = false});
  const auto udp = net::build_udp_payload(50000, 8000, {});
  const auto frame = net::build_ipv4(kStrictDev, kTrustedDev, kIpStrict,
                                     kOtherCloud, net::ipproto::kUdp, udp);
  const auto pkt = net::parse_ethernet_frame(frame, 1);
  const auto decision = controller.packet_in(pkt, 1);
  EXPECT_EQ(decision.action, FlowAction::kForward);
  EXPECT_TRUE(decision.flow_to_install.has_value());
}

TEST(IsInternetDestination, Classification) {
  EXPECT_TRUE(is_internet_destination(Ipv4Address::of(8, 8, 8, 8)));
  EXPECT_FALSE(is_internet_destination(Ipv4Address::of(192, 168, 1, 1)));
  EXPECT_FALSE(is_internet_destination(Ipv4Address::of(10, 0, 0, 1)));
  EXPECT_FALSE(is_internet_destination(Ipv4Address::of(239, 255, 255, 250)));
  EXPECT_FALSE(is_internet_destination(Ipv4Address::broadcast()));
  EXPECT_FALSE(is_internet_destination(Ipv4Address::any()));
}

}  // namespace
}  // namespace iotsentinel::sdn
