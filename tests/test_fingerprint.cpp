#include "fingerprint/fingerprint.hpp"

#include <gtest/gtest.h>

namespace iotsentinel::fp {
namespace {

FeatureVector vec(std::uint32_t tag) {
  FeatureVector v{};
  v[0] = tag;
  v[static_cast<std::size_t>(FeatureIndex::kSize)] = 60 + tag;
  return v;
}

TEST(Fingerprint, AppendDiscardsConsecutiveDuplicates) {
  Fingerprint f;
  f.append(vec(1));
  f.append(vec(1));  // dropped (p_i == p_{i+1})
  f.append(vec(2));
  f.append(vec(1));  // kept: not consecutive with the first vec(1)
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(f.packet(0), vec(1));
  EXPECT_EQ(f.packet(1), vec(2));
  EXPECT_EQ(f.packet(2), vec(1));
}

TEST(Fingerprint, UniquePacketCountIsGlobal) {
  Fingerprint f;
  f.append(vec(1));
  f.append(vec(2));
  f.append(vec(1));
  f.append(vec(3));
  EXPECT_EQ(f.size(), 4u);
  EXPECT_EQ(f.unique_packet_count(), 3u);
}

TEST(Fingerprint, ToFixedIs276Wide) {
  Fingerprint f;
  f.append(vec(5));
  const FixedFingerprint fixed = f.to_fixed();
  EXPECT_EQ(fixed.size(), kFixedDims);
  EXPECT_EQ(fixed.size(), 276u);
}

TEST(Fingerprint, ToFixedZeroPadsWhenShort) {
  Fingerprint f;
  f.append(vec(1));
  f.append(vec(2));
  const FixedFingerprint fixed = f.to_fixed();
  // First two packet slots populated, rest zero.
  EXPECT_FLOAT_EQ(fixed[0], 1.0f);
  EXPECT_FLOAT_EQ(fixed[kNumFeatures], 2.0f);
  for (std::size_t i = 2 * kNumFeatures; i < fixed.size(); ++i) {
    EXPECT_FLOAT_EQ(fixed[i], 0.0f);
  }
}

TEST(Fingerprint, ToFixedSkipsGlobalDuplicates) {
  Fingerprint f;
  f.append(vec(1));
  f.append(vec(2));
  f.append(vec(1));  // global duplicate, must not occupy an F' slot
  f.append(vec(3));
  const FixedFingerprint fixed = f.to_fixed();
  EXPECT_FLOAT_EQ(fixed[0], 1.0f);
  EXPECT_FLOAT_EQ(fixed[kNumFeatures], 2.0f);
  EXPECT_FLOAT_EQ(fixed[2 * kNumFeatures], 3.0f);
}

TEST(Fingerprint, ToFixedTruncatesAtPrefix) {
  Fingerprint f;
  for (std::uint32_t i = 0; i < 40; ++i) f.append(vec(i));
  const FixedFingerprint fixed = f.to_fixed();
  // Slot 11 holds vec(11); nothing beyond packet 12 is present.
  EXPECT_FLOAT_EQ(fixed[11 * kNumFeatures], 11.0f);
  EXPECT_EQ(fixed.size(), 276u);
}

TEST(Fingerprint, ToFixedHonoursCustomPrefix) {
  Fingerprint f;
  for (std::uint32_t i = 0; i < 10; ++i) f.append(vec(i));
  EXPECT_EQ(f.to_fixed(4).size(), 4 * kNumFeatures);
  EXPECT_EQ(f.to_fixed(20).size(), 20 * kNumFeatures);
}

TEST(Fingerprint, CsvRoundTrip) {
  Fingerprint f;
  f.append(vec(1));
  f.append(vec(2));
  f.append(vec(1));
  const Fingerprint parsed = Fingerprint::from_csv(f.to_csv());
  EXPECT_EQ(parsed, f);
}

TEST(Fingerprint, FromCsvRejectsMalformedRows) {
  EXPECT_TRUE(Fingerprint::from_csv("1,2,3\n").empty());
  EXPECT_TRUE(Fingerprint::from_csv("garbage").empty());
}

TEST(Fingerprint, EmptyFingerprintBehaviour) {
  Fingerprint f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.unique_packet_count(), 0u);
  const FixedFingerprint fixed = f.to_fixed();
  for (float x : fixed) EXPECT_FLOAT_EQ(x, 0.0f);
  EXPECT_TRUE(Fingerprint::from_csv("").empty());
}

}  // namespace
}  // namespace iotsentinel::fp
