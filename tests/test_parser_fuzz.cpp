// Deterministic fuzz sweeps: the parser stack must survive arbitrary
// bytes (random frames, bit-flipped valid frames, random pcap images)
// without crashing, and its outputs must stay internally consistent.
#include <gtest/gtest.h>

#include "fingerprint/features.hpp"
#include "ml/rng.hpp"
#include "net/builder.hpp"
#include "net/dhcp.hpp"
#include "net/dns.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"
#include "net/pcap.hpp"

namespace iotsentinel::net {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  ml::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> frame(rng.index(200));
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.next_u64());
    const ParsedPacket pkt = parse_ethernet_frame(frame, trial);
    // Internal consistency regardless of input garbage.
    EXPECT_EQ(pkt.wire_size, frame.size());
    if (pkt.src_port || pkt.dst_port) {
      EXPECT_TRUE(pkt.is_tcp || pkt.is_udp);
    }
    if (pkt.is_tcp || pkt.is_udp) {
      EXPECT_TRUE(pkt.is_ip());
    }
    // Feature extraction over garbage packets must also be safe.
    fp::PacketFeatureExtractor fx;
    const auto v = fx.extract(pkt);
    EXPECT_EQ(fp::get(v, fp::FeatureIndex::kSize), pkt.wire_size);
  }
}

TEST_P(ParserFuzzTest, BitFlippedValidFramesNeverCrash) {
  ml::Rng rng(GetParam() ^ 0xf1f1);
  const MacAddress dev = MacAddress::of(2, 0, 0, 0, 0, 1);
  const MacAddress gw = MacAddress::of(2, 0, 0, 0, 0, 2);
  const Ipv4Address dev_ip = Ipv4Address::of(192, 168, 0, 5);
  const Ipv4Address gw_ip = Ipv4Address::of(192, 168, 0, 1);
  const Bytes originals[] = {
      build_dhcp(dev, dhcptype::kDiscover, 7, Ipv4Address::any(), {1, 3, 6},
                 "fuzzy"),
      build_dns_query(dev, gw, dev_ip, gw_ip, 50000, 9, "a.example.com"),
      build_mdns(dev, dev_ip, "_svc._tcp.local", true),
      build_tls_client_hello(dev, gw, dev_ip, gw_ip, 50001, "sni.example"),
      build_mldv1_report(dev),
      build_igmp_join(dev, dev_ip, Ipv4Address::of(239, 255, 255, 250)),
  };
  for (int trial = 0; trial < 300; ++trial) {
    Bytes frame = originals[rng.index(std::size(originals))];
    // Flip 1-8 random bits.
    const std::size_t flips = 1 + rng.index(8);
    for (std::size_t f = 0; f < flips; ++f) {
      frame[rng.index(frame.size())] ^=
          static_cast<std::uint8_t>(1u << rng.index(8));
    }
    const ParsedPacket pkt = parse_ethernet_frame(frame, trial);
    (void)pkt.summary();  // rendering must be safe too
    // Structured parsers on possibly-corrupted payloads.
    const auto payload = udp_payload_of(frame);
    (void)parse_dhcp(payload);
    (void)parse_dns(payload);
  }
}

TEST_P(ParserFuzzTest, RandomPcapImagesNeverCrash) {
  ml::Rng rng(GetParam() ^ 0xacab);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> image(rng.index(400));
    for (auto& b : image) b = static_cast<std::uint8_t>(rng.next_u64());
    // Half the trials get a valid magic prefix so record parsing runs.
    if (trial % 2 == 0 && image.size() >= 4) {
      image[0] = 0xd4;
      image[1] = 0xc3;
      image[2] = 0xb2;
      image[3] = 0xa1;
    }
    const PcapParseResult result = parse_pcap(image);
    if (result.ok) {
      for (const auto& rec : result.file.records) {
        (void)parse_ethernet_frame(rec.frame, rec.timestamp_us);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace iotsentinel::net

// ---------------------------------------------------------------------------
// End-to-end fuzz: the same hostile inputs through the complete gateway
// path (parse -> extractor -> classify -> enforce). Malformed frames must
// be counted and dropped, and neither gateway flavour may crash or wedge.

#include "core/gateway_pool.hpp"
#include "core/security_gateway.hpp"
#include "simnet/scenario.hpp"

namespace iotsentinel::core {
namespace {

const IoTSecurityService& fuzz_service() {
  static const IoTSecurityService service =
      sim::make_scenario_service({"Aria", "EdimaxCam"}, /*runs_per_type=*/8);
  return service;
}

std::vector<net::Bytes> hostile_frames(std::uint64_t seed, std::size_t n) {
  ml::Rng rng(seed);
  const net::MacAddress dev = net::MacAddress::of(2, 0, 0, 0, 0, 1);
  const net::MacAddress gw = net::MacAddress::of(2, 0, 0, 0, 0, 2);
  const net::Ipv4Address dev_ip = net::Ipv4Address::of(192, 168, 0, 5);
  const net::Ipv4Address gw_ip = net::Ipv4Address::of(192, 168, 0, 1);
  std::vector<net::Bytes> frames;
  frames.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.index(3)) {
      case 0: {  // random bytes, any length incl. sub-Ethernet runts
        net::Bytes frame(rng.index(120));
        for (auto& b : frame) b = static_cast<std::uint8_t>(rng.next_u64());
        frames.push_back(std::move(frame));
        break;
      }
      case 1: {  // bit-flipped valid protocol frames
        net::Bytes frame = rng.chance(0.5)
                               ? net::build_dhcp(dev, net::dhcptype::kDiscover,
                                                 7, net::Ipv4Address::any(),
                                                 {1, 3, 6}, "fuzzy")
                               : net::build_dns_query(dev, gw, dev_ip, gw_ip,
                                                      50000, 9, "a.example");
        for (std::size_t f = 0, flips = 1 + rng.index(12); f < flips; ++f) {
          frame[rng.index(frame.size())] ^=
              static_cast<std::uint8_t>(1u << rng.index(8));
        }
        frames.push_back(std::move(frame));
        break;
      }
      default: {  // forged source addresses (zero / multicast)
        net::Bytes frame = net::build_arp_request(
            rng.chance(0.5) ? net::MacAddress()
                            : net::MacAddress::of(0x01, 0x00, 0x5e, 1, 2, 3),
            dev_ip, gw_ip);
        frames.push_back(std::move(frame));
        break;
      }
    }
  }
  return frames;
}

class GatewayFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GatewayFuzzTest, SerialGatewayCountsAndDropsHostileFrames) {
  SecurityGateway gateway(fuzz_service(), {});
  const auto frames = hostile_frames(GetParam(), 300);
  std::uint64_t expect_malformed = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    expect_malformed += is_malformed_frame(frames[i]) ? 1 : 0;
    const auto result = gateway.on_frame(frames[i], 1'000 * (i + 1));
    if (is_malformed_frame(frames[i])) {
      EXPECT_EQ(result.action, sdn::FlowAction::kDrop);
    }
  }
  gateway.finish_pending_captures();
  EXPECT_EQ(gateway.malformed_frames(), expect_malformed);
  EXPECT_GT(gateway.malformed_frames(), 0u);
  EXPECT_GE(gateway.dropped_frames(), gateway.malformed_frames());
}

TEST_P(GatewayFuzzTest, ShardedGatewayCountsAndDropsHostileFrames) {
  ShardedGatewayConfig config;
  config.num_shards = 2;
  config.ring_capacity = 256;
  ShardedGateway gateway(fuzz_service(), config);
  const auto frames = hostile_frames(GetParam() ^ 0x9a9a, 300);
  std::uint64_t expect_malformed = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    expect_malformed += is_malformed_frame(frames[i]) ? 1 : 0;
    gateway.submit_owned(net::Bytes(frames[i]), 1'000 * (i + 1));
  }
  gateway.finish();  // must terminate: no wedge on garbage
  const auto stats = gateway.stats();
  EXPECT_EQ(stats.malformed_frames, expect_malformed);
  EXPECT_GT(stats.malformed_frames, 0u);
  EXPECT_GE(stats.dropped_frames, stats.malformed_frames);
  EXPECT_EQ(stats.frames_processed, frames.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatewayFuzzTest, ::testing::Values(7, 77));

}  // namespace
}  // namespace iotsentinel::core
