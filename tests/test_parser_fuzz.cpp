// Deterministic fuzz sweeps: the parser stack must survive arbitrary
// bytes (random frames, bit-flipped valid frames, random pcap images)
// without crashing, and its outputs must stay internally consistent.
#include <gtest/gtest.h>

#include "fingerprint/features.hpp"
#include "ml/rng.hpp"
#include "net/builder.hpp"
#include "net/dhcp.hpp"
#include "net/dns.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"
#include "net/pcap.hpp"

namespace iotsentinel::net {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  ml::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> frame(rng.index(200));
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.next_u64());
    const ParsedPacket pkt = parse_ethernet_frame(frame, trial);
    // Internal consistency regardless of input garbage.
    EXPECT_EQ(pkt.wire_size, frame.size());
    if (pkt.src_port || pkt.dst_port) {
      EXPECT_TRUE(pkt.is_tcp || pkt.is_udp);
    }
    if (pkt.is_tcp || pkt.is_udp) {
      EXPECT_TRUE(pkt.is_ip());
    }
    // Feature extraction over garbage packets must also be safe.
    fp::PacketFeatureExtractor fx;
    const auto v = fx.extract(pkt);
    EXPECT_EQ(fp::get(v, fp::FeatureIndex::kSize), pkt.wire_size);
  }
}

TEST_P(ParserFuzzTest, BitFlippedValidFramesNeverCrash) {
  ml::Rng rng(GetParam() ^ 0xf1f1);
  const MacAddress dev = MacAddress::of(2, 0, 0, 0, 0, 1);
  const MacAddress gw = MacAddress::of(2, 0, 0, 0, 0, 2);
  const Ipv4Address dev_ip = Ipv4Address::of(192, 168, 0, 5);
  const Ipv4Address gw_ip = Ipv4Address::of(192, 168, 0, 1);
  const Bytes originals[] = {
      build_dhcp(dev, dhcptype::kDiscover, 7, Ipv4Address::any(), {1, 3, 6},
                 "fuzzy"),
      build_dns_query(dev, gw, dev_ip, gw_ip, 50000, 9, "a.example.com"),
      build_mdns(dev, dev_ip, "_svc._tcp.local", true),
      build_tls_client_hello(dev, gw, dev_ip, gw_ip, 50001, "sni.example"),
      build_mldv1_report(dev),
      build_igmp_join(dev, dev_ip, Ipv4Address::of(239, 255, 255, 250)),
  };
  for (int trial = 0; trial < 300; ++trial) {
    Bytes frame = originals[rng.index(std::size(originals))];
    // Flip 1-8 random bits.
    const std::size_t flips = 1 + rng.index(8);
    for (std::size_t f = 0; f < flips; ++f) {
      frame[rng.index(frame.size())] ^=
          static_cast<std::uint8_t>(1u << rng.index(8));
    }
    const ParsedPacket pkt = parse_ethernet_frame(frame, trial);
    (void)pkt.summary();  // rendering must be safe too
    // Structured parsers on possibly-corrupted payloads.
    const auto payload = udp_payload_of(frame);
    (void)parse_dhcp(payload);
    (void)parse_dns(payload);
  }
}

TEST_P(ParserFuzzTest, RandomPcapImagesNeverCrash) {
  ml::Rng rng(GetParam() ^ 0xacab);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> image(rng.index(400));
    for (auto& b : image) b = static_cast<std::uint8_t>(rng.next_u64());
    // Half the trials get a valid magic prefix so record parsing runs.
    if (trial % 2 == 0 && image.size() >= 4) {
      image[0] = 0xd4;
      image[1] = 0xc3;
      image[2] = 0xb2;
      image[3] = 0xa1;
    }
    const PcapParseResult result = parse_pcap(image);
    if (result.ok) {
      for (const auto& rec : result.file.records) {
        (void)parse_ethernet_frame(rec.frame, rec.timestamp_us);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace iotsentinel::net
