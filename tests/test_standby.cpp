// Standby/operation-traffic extension tests (paper Sect. VIII-A).
#include <gtest/gtest.h>

#include "core/identifier.hpp"
#include "fingerprint/extractor.hpp"
#include "simnet/corpus.hpp"
#include "simnet/traffic_generator.hpp"

namespace iotsentinel::sim {
namespace {

TEST(Standby, EveryProfileHasAStandbyCycle) {
  for (const auto& p : device_catalog()) {
    EXPECT_FALSE(p.standby_steps.empty()) << p.name;
  }
}

TEST(Standby, IdenticalPlatformsHaveIdenticalStandbyCycles) {
  auto steps_equal = [](const DeviceProfile& a, const DeviceProfile& b) {
    if (a.standby_steps.size() != b.standby_steps.size()) return false;
    for (std::size_t i = 0; i < a.standby_steps.size(); ++i) {
      const auto& x = a.standby_steps[i];
      const auto& y = b.standby_steps[i];
      if (x.kind != y.kind || x.host != y.host || x.remote != y.remote) {
        return false;
      }
    }
    return true;
  };
  EXPECT_TRUE(steps_equal(*find_profile("SmarterCoffee"),
                          *find_profile("iKettle2")));
  EXPECT_TRUE(steps_equal(*find_profile("D-LinkWaterSensor"),
                          *find_profile("D-LinkSiren")));
}

TEST(Standby, GeneratesCyclesSeparatedByQuietPeriods) {
  const auto* profile = find_profile("HueBridge");
  TrafficGenerator gen;
  ml::Rng rng(5);
  const auto frames = gen.generate_standby(
      *profile, TrafficGenerator::mint_mac(*profile, 1),
      net::Ipv4Address::of(192, 168, 0, 9), 3, rng, 60'000'000);
  ASSERT_GT(frames.size(), 6u);
  // At least two inter-cycle gaps of >= 30 s must exist.
  int long_gaps = 0;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    if (frames[i].timestamp_us - frames[i - 1].timestamp_us >= 30'000'000) {
      ++long_gaps;
    }
  }
  EXPECT_GE(long_gaps, 2);
}

TEST(Standby, DeterministicPerSeed) {
  const auto* profile = find_profile("WeMoSwitch");
  TrafficGenerator gen;
  const auto mac = TrafficGenerator::mint_mac(*profile, 2);
  ml::Rng a(9);
  ml::Rng b(9);
  const auto fa = gen.generate_standby(*profile, mac,
                                       net::Ipv4Address::of(192, 168, 0, 9),
                                       2, a);
  const auto fb = gen.generate_standby(*profile, mac,
                                       net::Ipv4Address::of(192, 168, 0, 9),
                                       2, b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].frame, fb[i].frame);
  }
}

TEST(Standby, NoJoinPreambleInStandbyTraffic) {
  // Operational traffic must not contain EAPoL or DHCP-discover bursts.
  const auto* profile = find_profile("Withings");
  TrafficGenerator gen;
  ml::Rng rng(11);
  const auto packets = parse_frames(gen.generate_standby(
      *profile, TrafficGenerator::mint_mac(*profile, 3),
      net::Ipv4Address::of(192, 168, 0, 9), 2, rng));
  for (const auto& pkt : packets) {
    EXPECT_FALSE(pkt.is_eapol);
    EXPECT_FALSE(pkt.app.dhcp);
  }
}

TEST(Standby, CorpusShape) {
  const auto corpus = generate_standby_corpus(3, 99, 2);
  EXPECT_EQ(corpus.num_types(), 27u);
  EXPECT_EQ(corpus.total(), 27u * 3u);
  for (const auto& runs : corpus.by_type) {
    for (const auto& f : runs) {
      EXPECT_GE(f.size(), 1u);
    }
  }
}

TEST(Standby, DistinctTypesIdentifiableFromStandbyTraffic) {
  // The Sect. VIII-A hypothesis, on a small distinct-type subset: train on
  // standby windows, identify held-out standby windows.
  const auto corpus = generate_standby_corpus(14, 1234, 3);
  const std::vector<std::string> picks = {"HueBridge", "Aria", "MAXGateway",
                                          "EdnetCam", "Lightify"};
  std::vector<std::string> names;
  std::vector<std::vector<fp::Fingerprint>> train(picks.size());
  std::vector<std::vector<fp::Fingerprint>> test(picks.size());
  for (std::size_t p = 0; p < picks.size(); ++p) {
    names.push_back(picks[p]);
    const auto idx = *profile_index(picks[p]);
    const auto& runs = corpus.by_type[idx];
    for (std::size_t r = 0; r < runs.size(); ++r) {
      (r < 10 ? train : test)[p].push_back(runs[r]);
    }
  }
  core::DeviceIdentifier identifier;
  identifier.train(names, train);
  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t p = 0; p < picks.size(); ++p) {
    for (const auto& f : test[p]) {
      ++total;
      const auto result = identifier.identify(f);
      if (result.type_index && *result.type_index == p) ++correct;
    }
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(total), 0.8);
}

}  // namespace
}  // namespace iotsentinel::sim
