#include "fingerprint/extractor.hpp"

#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::fp {
namespace {

using net::Ipv4Address;
using net::MacAddress;

const MacAddress kDevA = MacAddress::of(0x02, 0xa, 0, 0, 0, 1);
const MacAddress kDevB = MacAddress::of(0x02, 0xb, 0, 0, 0, 2);
const MacAddress kGw = MacAddress::of(0x02, 0x47, 0, 0, 0, 1);
const Ipv4Address kIpA = Ipv4Address::of(192, 168, 0, 10);
const Ipv4Address kIpB = Ipv4Address::of(192, 168, 0, 11);
const Ipv4Address kGwIp = Ipv4Address::of(192, 168, 0, 1);

/// Builds a DNS-query packet whose hostname length varies with `variant`
/// so consecutive packets have distinct feature vectors (sizes differ).
net::ParsedPacket packet_from(const MacAddress& mac, Ipv4Address ip,
                              std::uint64_t ts, std::uint16_t sport,
                              int variant = 0) {
  const std::string host =
      std::string(static_cast<std::size_t>(variant % 16) + 1, 'a') + ".example";
  return net::parse_ethernet_frame(
      net::build_dns_query(mac, kGw, ip, kGwIp, sport,
                           static_cast<std::uint16_t>(ts), host),
      ts);
}

TEST(Extractor, CompletesOnIdleTimeout) {
  SetupCaptureExtractor ex({.idle_timeout_us = 1'000'000, .min_packets = 2});
  for (int i = 0; i < 5; ++i) {
    ex.observe(packet_from(kDevA, kIpA, 1000u * static_cast<std::uint64_t>(i + 1),
                           static_cast<std::uint16_t>(50000 + i), i));
  }
  EXPECT_EQ(ex.active_devices(), 1u);
  ex.advance_time(10'000'000);
  EXPECT_EQ(ex.active_devices(), 0u);
  ASSERT_EQ(ex.completed().size(), 1u);
  EXPECT_EQ(ex.completed()[0].mac, kDevA);
  EXPECT_GE(ex.completed()[0].fingerprint.size(), 2u);
}

TEST(Extractor, ForgetClearsFingerprintedMarkerAndActiveCapture) {
  SetupCaptureExtractor ex({.idle_timeout_us = 1'000'000, .min_packets = 2});
  // Complete a capture for A: further A packets are skipped.
  for (int i = 0; i < 4; ++i) {
    ex.observe(packet_from(kDevA, kIpA, 1000u * static_cast<std::uint64_t>(i + 1),
                           static_cast<std::uint16_t>(50000 + i), i));
  }
  ex.advance_time(10'000'000);
  ASSERT_EQ(ex.completed().size(), 1u);
  ex.observe(packet_from(kDevA, kIpA, 11'000'000, 51000, 1));
  EXPECT_EQ(ex.active_devices(), 0u);  // already fingerprinted: ignored

  // After forget (device departed), A is fingerprinted afresh on rejoin.
  EXPECT_TRUE(ex.forget(kDevA));
  EXPECT_FALSE(ex.forget(kDevA));  // nothing left to forget
  for (int i = 0; i < 4; ++i) {
    ex.observe(packet_from(kDevA, kIpA,
                           20'000'000 + 1000u * static_cast<std::uint64_t>(i),
                           static_cast<std::uint16_t>(52000 + i), i));
  }
  EXPECT_EQ(ex.active_devices(), 1u);
  ex.advance_time(40'000'000);
  EXPECT_EQ(ex.completed().size(), 2u);

  // Forgetting a device mid-capture discards it without completing.
  ex.observe(packet_from(kDevB, kIpB, 41'000'000, 53000, 0));
  EXPECT_EQ(ex.active_devices(), 1u);
  EXPECT_TRUE(ex.forget(kDevB));
  EXPECT_EQ(ex.active_devices(), 0u);
  ex.flush_all();
  EXPECT_EQ(ex.completed().size(), 2u);  // B never completed
}

TEST(Extractor, DemultiplexesConcurrentDevices) {
  SetupCaptureExtractor ex({.idle_timeout_us = 1'000'000, .min_packets = 2});
  for (int i = 0; i < 4; ++i) {
    const auto ts = 1000u * static_cast<std::uint64_t>(i + 1);
    ex.observe(packet_from(kDevA, kIpA, ts, static_cast<std::uint16_t>(50000 + i)));
    ex.observe(packet_from(kDevB, kIpB, ts + 311,
                           static_cast<std::uint16_t>(51000 + i)));
  }
  EXPECT_EQ(ex.active_devices(), 2u);
  ex.flush_all();
  EXPECT_EQ(ex.completed().size(), 2u);
}

TEST(Extractor, RateDropEndsSetupPhase) {
  // Packets every ~1 ms, then a 10 s gap: the gap must end the capture and
  // the late packet must NOT be part of the fingerprint.
  SetupCaptureExtractor ex(
      {.idle_timeout_us = 60'000'000, .rate_drop_factor = 8.0,
       .min_packets = 4});
  std::uint64_t ts = 0;
  for (int i = 0; i < 10; ++i) {
    ts += 1000;
    ex.observe(packet_from(kDevA, kIpA, ts,
                           static_cast<std::uint16_t>(50000 + i), i));
  }
  ts += 10'000'000;
  ex.observe(packet_from(kDevA, kIpA, ts, 59999));  // heartbeat
  ASSERT_EQ(ex.completed().size(), 1u);
  EXPECT_LE(ex.completed()[0].end_us, ts - 10'000'000);
}

TEST(Extractor, MaxPacketCapCompletesCapture) {
  SetupCaptureExtractor ex({.max_packets = 5, .min_packets = 1});
  for (int i = 0; i < 20; ++i) {
    ex.observe(packet_from(kDevA, kIpA, 1000u * static_cast<std::uint64_t>(i + 1),
                           static_cast<std::uint16_t>(50000 + i), i));
  }
  ASSERT_EQ(ex.completed().size(), 1u);
  EXPECT_EQ(ex.completed()[0].raw_packet_count, 5u);
  EXPECT_EQ(ex.completed()[0].fingerprint.size(), 5u);  // all distinct
}

TEST(Extractor, IgnoresConfiguredAndNonDeviceSources) {
  ExtractorConfig cfg{.min_packets = 1};
  cfg.ignored_macs.insert(kGw);
  SetupCaptureExtractor ex(cfg);
  ex.observe(packet_from(kGw, kGwIp, 1000, 50000));  // ignored MAC
  net::ParsedPacket multicast_src = packet_from(kDevA, kIpA, 2000, 50001);
  multicast_src.src_mac = MacAddress::of(0x01, 0, 0x5e, 0, 0, 1);
  ex.observe(multicast_src);  // multicast source: not a device
  EXPECT_EQ(ex.active_devices(), 0u);
}

TEST(Extractor, DeviceIsFingerprintedOnlyOnce) {
  SetupCaptureExtractor ex({.max_packets = 3, .min_packets = 1});
  for (int i = 0; i < 10; ++i) {
    ex.observe(packet_from(kDevA, kIpA, 1000u * static_cast<std::uint64_t>(i + 1),
                           static_cast<std::uint16_t>(50000 + i), i));
  }
  // Capture completed at 3 packets; later traffic must not reopen it.
  EXPECT_EQ(ex.completed().size(), 1u);
  EXPECT_EQ(ex.active_devices(), 0u);
}

TEST(Extractor, CallbackFiresOnCompletion) {
  SetupCaptureExtractor ex({.max_packets = 2, .min_packets = 1});
  std::vector<net::MacAddress> seen;
  ex.on_capture_complete(
      [&](const DeviceCapture& c) { seen.push_back(c.mac); });
  ex.observe(packet_from(kDevA, kIpA, 1000, 50000));
  ex.observe(packet_from(kDevA, kIpA, 2000, 50001));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], kDevA);
}

TEST(Extractor, RawCountIncludesDuplicatesFingerprintDoesNot) {
  SetupCaptureExtractor ex({.min_packets = 1});
  const auto pkt = packet_from(kDevA, kIpA, 1000, 50000);
  auto dup = pkt;
  dup.timestamp_us = 1500;
  ex.observe(pkt);
  ex.observe(dup);  // identical feature vector -> dropped from F
  ex.flush_all();
  ASSERT_EQ(ex.completed().size(), 1u);
  EXPECT_EQ(ex.completed()[0].raw_packet_count, 2u);
  EXPECT_EQ(ex.completed()[0].fingerprint.size(), 1u);
}

TEST(Extractor, ReorderedTimestampsYieldDeterministicFingerprint) {
  // The same packets, delivered with a late straggler (an old capture
  // timestamp arriving after newer ones — what a reordering channel
  // produces), must fingerprint deterministically and must not stall the
  // idle clock.
  const auto run = [](bool reorder) {
    ExtractorConfig config;
    SetupCaptureExtractor ex(config);
    std::vector<net::ParsedPacket> packets;
    for (int i = 0; i < 6; ++i) {
      packets.push_back(packet_from(kDevA, kIpA, 1'000u * (i + 1),
                                    static_cast<std::uint16_t>(50000 + i), i));
    }
    if (reorder) {
      std::swap(packets[2], packets[4]);  // pkt t=5000 before t=3000
    }
    for (const auto& pkt : packets) ex.observe(pkt);
    // Idle expiry must still fire off the *newest* timestamp seen, even
    // though the last-delivered packet bore an older one.
    ex.advance_time(6'000 + config.idle_timeout_us + 1);
    EXPECT_EQ(ex.completed().size(), 1u);
    return ex.completed().empty() ? Fingerprint{}
                                  : ex.completed()[0].fingerprint;
  };
  const Fingerprint in_order = run(false);
  const Fingerprint reordered_a = run(true);
  const Fingerprint reordered_b = run(true);
  EXPECT_FALSE(reordered_a.empty());
  EXPECT_EQ(reordered_a, reordered_b);  // reorder-determinism
  // Same multiset of packets: same number of fingerprinted vectors.
  EXPECT_EQ(in_order.size(), reordered_a.size());
}

TEST(Extractor, NonAdjacentDuplicateDoesNotDoubleCountFingerprint) {
  SetupCaptureExtractor ex;
  const auto p0 = packet_from(kDevA, kIpA, 1'000, 50000, 0);
  const auto p1 = packet_from(kDevA, kIpA, 2'000, 50001, 1);
  ex.observe(p0);
  ex.observe(p1);
  ex.observe(p0);  // duplicated delivery of an earlier frame
  ex.observe(packet_from(kDevA, kIpA, 3'000, 50002, 2));
  ex.advance_time(3'000 + 10'000'001);
  ASSERT_EQ(ex.completed().size(), 1u);
  const DeviceCapture& capture = ex.completed()[0];
  EXPECT_EQ(capture.raw_packet_count, 4u);  // raw count sees every delivery
  // The capture window is the true packet span: the stale duplicate's
  // timestamp neither rewinds the start nor extends the end.
  EXPECT_EQ(capture.start_us, 1'000u);
  EXPECT_EQ(capture.end_us, 3'000u);
}

TEST(Extractor, IdleDiscardsSubThresholdCapturesWithCounter) {
  // A one-frame "device" (e.g. one sprayed ARP) must not linger as
  // active state nor complete as a capture: idle expiry discards it.
  SetupCaptureExtractor ex;
  ex.observe(packet_from(kDevA, kIpA, 1'000, 50000, 0));
  EXPECT_EQ(ex.active_devices(), 1u);
  ex.advance_time(1'000 + 10'000'001);
  EXPECT_EQ(ex.active_devices(), 0u);
  EXPECT_TRUE(ex.completed().empty());
  EXPECT_EQ(ex.discarded_captures(), 1u);
  // The MAC is reclaimed, not marked fingerprinted: a later real setup
  // burst from the same device still captures.
  for (int i = 0; i < 5; ++i) {
    ex.observe(packet_from(kDevA, kIpA, 20'000'000 + 1'000u * i,
                           static_cast<std::uint16_t>(51000 + i), i));
  }
  ex.advance_time(20'004'000 + 10'000'001);
  EXPECT_EQ(ex.completed().size(), 1u);
}

TEST(Extractor, AdmissionCapBoundsSprayFloods) {
  ExtractorConfig config;
  config.max_active_devices = 8;
  SetupCaptureExtractor ex(config);
  // 100 distinct source MACs in one burst: only 8 admitted.
  for (int i = 0; i < 100; ++i) {
    const MacAddress mac = MacAddress::of(
        0x06, 0, 0, 0, static_cast<std::uint8_t>(i >> 8),
        static_cast<std::uint8_t>(i));
    ex.observe(packet_from(mac, kIpA, 1'000u * (i + 1),
                           static_cast<std::uint16_t>(50000 + i), i));
  }
  EXPECT_EQ(ex.active_devices(), 8u);
  EXPECT_EQ(ex.peak_active_devices(), 8u);
  EXPECT_EQ(ex.rejected_admissions(), 92u);
  // Idle expiry reclaims the slots; admissions resume afterwards.
  ex.advance_time(100'000 + 10'000'001);
  EXPECT_EQ(ex.active_devices(), 0u);
  ex.observe(packet_from(kDevB, kIpB, 200'000'000, 52000, 0));
  EXPECT_EQ(ex.active_devices(), 1u);
  EXPECT_EQ(ex.rejected_admissions(), 92u);
}

TEST(FingerprintFromPackets, RespectsMaxPackets) {
  std::vector<net::ParsedPacket> packets;
  for (int i = 0; i < 50; ++i) {
    packets.push_back(packet_from(kDevA, kIpA, 1000u * static_cast<std::uint64_t>(i),
                                  static_cast<std::uint16_t>(50000 + i), i));
  }
  const Fingerprint f = fingerprint_from_packets(packets, 10);
  EXPECT_LE(f.size(), 10u);
}

}  // namespace
}  // namespace iotsentinel::fp
