#include "simnet/device_catalog.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "net/crc32.hpp"
#include "simnet/roster.hpp"
#include "simnet/traffic_generator.hpp"

namespace iotsentinel::sim {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool same_steps(const DeviceProfile& a, const DeviceProfile& b) {
  if (a.steps.size() != b.steps.size()) return false;
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    const SetupStep& x = a.steps[i];
    const SetupStep& y = b.steps[i];
    if (x.kind != y.kind || x.host != y.host || x.remote != y.remote ||
        x.port != y.port || x.repeat != y.repeat ||
        x.repeat_jitter != y.repeat_jitter || x.skip_prob != y.skip_prob) {
      return false;
    }
  }
  return true;
}

TEST(DeviceCatalog, HasAll27TableIITypes) {
  EXPECT_EQ(device_catalog().size(), 27u);
  std::set<std::string> names;
  for (const auto& p : device_catalog()) names.insert(p.name);
  EXPECT_EQ(names.size(), 27u);  // unique identifiers
}

TEST(DeviceCatalog, FindProfileWorks) {
  ASSERT_NE(find_profile("HueBridge"), nullptr);
  EXPECT_EQ(find_profile("HueBridge")->name, "HueBridge");
  EXPECT_EQ(find_profile("NotADevice"), nullptr);
  ASSERT_TRUE(profile_index("Aria").has_value());
  EXPECT_EQ(*profile_index("Aria"), 0u);
  EXPECT_FALSE(profile_index("NotADevice").has_value());
}

TEST(DeviceCatalog, EveryProfileHasSetupSteps) {
  for (const auto& p : device_catalog()) {
    EXPECT_FALSE(p.steps.empty()) << p.name;
    EXPECT_FALSE(p.model.empty()) << p.name;
    EXPECT_GT(p.intra_gap_ms, 0.0) << p.name;
  }
}

TEST(DeviceCatalog, ConfusableFamiliesShareIdenticalScripts) {
  // The paper's Table-III root cause: identical hardware/firmware.
  const auto* water = find_profile("D-LinkWaterSensor");
  const auto* siren = find_profile("D-LinkSiren");
  const auto* sensor = find_profile("D-LinkSensor");
  ASSERT_TRUE(water && siren && sensor);
  EXPECT_TRUE(same_steps(*water, *siren));
  EXPECT_TRUE(same_steps(*water, *sensor));

  EXPECT_TRUE(same_steps(*find_profile("TP-LinkPlugHS110"),
                         *find_profile("TP-LinkPlugHS100")));
  EXPECT_TRUE(same_steps(*find_profile("EdimaxPlug1101W"),
                         *find_profile("EdimaxPlug2101W")));
  EXPECT_TRUE(same_steps(*find_profile("SmarterCoffee"),
                         *find_profile("iKettle2")));
}

TEST(DeviceCatalog, DlinkSwitchDiffersSlightlyFromSensors) {
  // Same platform but a plug: one extra (often-skipped) step, matching its
  // slightly higher Fig. 5 accuracy.
  const auto* plug = find_profile("D-LinkSwitch");
  const auto* sensor = find_profile("D-LinkSensor");
  ASSERT_TRUE(plug && sensor);
  EXPECT_FALSE(same_steps(*plug, *sensor));
  EXPECT_EQ(plug->steps.size(), sensor->steps.size() + 1);
}

TEST(DeviceCatalog, DistinctDevicesHaveDistinctScripts) {
  // Outside the known confusable groups, scripts must differ pairwise.
  const std::set<std::string> confusable(confusable_device_names().begin(),
                                         confusable_device_names().end());
  const auto& catalog = device_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    for (std::size_t j = i + 1; j < catalog.size(); ++j) {
      if (confusable.contains(catalog[i].name) &&
          confusable.contains(catalog[j].name)) {
        continue;
      }
      EXPECT_FALSE(same_steps(catalog[i], catalog[j]))
          << catalog[i].name << " vs " << catalog[j].name;
    }
  }
}

TEST(DeviceCatalog, ConfusableListMatchesPaperOrder) {
  const auto& names = confusable_device_names();
  ASSERT_EQ(names.size(), 10u);
  EXPECT_EQ(names[0], "D-LinkSwitch");       // paper index 1
  EXPECT_EQ(names[4], "TP-LinkPlugHS110");   // paper index 5
  EXPECT_EQ(names[9], "iKettle2");           // paper index 10
  for (const auto& n : names) {
    EXPECT_NE(find_profile(n), nullptr) << n;
  }
}

TEST(DeviceCatalog, CloudStepsUsePublicAddresses) {
  for (const auto& p : device_catalog()) {
    for (const auto& step : p.steps) {
      if (step.kind == StepKind::kHttpCloudCheck ||
          step.kind == StepKind::kHttpsCloudCheck ||
          step.kind == StepKind::kTcpConnect) {
        EXPECT_FALSE(step.remote.is_private())
            << p.name << " step towards " << step.remote.to_string();
        EXPECT_NE(step.remote.value(), 0u) << p.name;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Golden pins: the roster-loaded catalog must stay byte-for-byte identical to
// the legacy hardcoded catalog it replaced. The fixtures under tests/data/
// were dumped from the last hardcoded build; regenerate them only via
// tools/roster_dump (and only when a catalog change is intentional).

TEST(CatalogGolden, CanonicalDumpMatchesLegacyCatalog) {
  std::string dump;
  for (const auto& p : device_catalog()) dump += canonical_profile_text(p);
  const std::string golden =
      read_file(IOTSENTINEL_TEST_DATA_DIR "/catalog_golden.txt");
  ASSERT_FALSE(golden.empty());
  if (dump != golden) {
    std::size_t i = 0;
    while (i < std::min(dump.size(), golden.size()) && dump[i] == golden[i]) {
      ++i;
    }
    FAIL() << "catalog diverges from golden fixture at byte " << i << ": got \""
           << dump.substr(i > 40 ? i - 40 : 0, 80) << "\" want \""
           << golden.substr(i > 40 ? i - 40 : 0, 80) << '"';
  }
}

TEST(CatalogGolden, ShippedRosterFileMatchesEmbeddedCatalog) {
  // The on-disk config file and the build-time-embedded copy must agree:
  // an edit to one without rebuilding the other is a packaging bug.
  RosterResult parsed =
      load_roster_file(IOTSENTINEL_CONFIG_DIR "/roster_table2.roster");
  ASSERT_TRUE(parsed) << describe(parsed.error());
  const Roster& embedded = device_roster();
  ASSERT_EQ(parsed->entries.size(), embedded.entries.size());
  for (std::size_t i = 0; i < embedded.entries.size(); ++i) {
    const RosterEntry& a = parsed->entries[i];
    const RosterEntry& b = embedded.entries[i];
    EXPECT_EQ(canonical_profile_text(a.profile),
              canonical_profile_text(b.profile));
    EXPECT_EQ(a.count, b.count) << a.profile.name;
    EXPECT_TRUE(a.fleet == b.fleet) << a.profile.name;
  }
}

TEST(CatalogGolden, RosterFleetShapeMatchesPaperTableII) {
  const Roster& roster = device_roster();
  EXPECT_EQ(roster.num_types(), 27u);
  // Table II lists 31 devices over 27 types (four types present twice).
  EXPECT_EQ(roster.total_devices(), 31u);
  std::size_t duplicated = 0;
  for (const auto& e : roster.entries) {
    if (e.count > 1) {
      EXPECT_EQ(e.count, 2u) << e.profile.name;
      ++duplicated;
    }
  }
  EXPECT_EQ(duplicated, 4u);
}

std::uint32_t trace_crc(const std::vector<TimedFrame>& frames) {
  std::uint32_t crc = 0;
  for (const auto& tf : frames) {
    std::uint8_t ts[8];
    for (int i = 0; i < 8; ++i) {
      ts[i] = static_cast<std::uint8_t>(tf.timestamp_us >> (8 * i));
    }
    crc = net::crc32c(ts, crc);
    crc = net::crc32c(tf.frame, crc);
  }
  return crc;
}

TEST(CatalogGolden, GeneratedTrafficMatchesLegacyCrcs) {
  // Pins the full generator pipeline (catalog -> RNG draws -> frame bytes
  // -> timestamps) against traces recorded from the hardcoded catalog.
  const auto& catalog = device_catalog();
  std::string traffic;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& p = catalog[i];
    const auto mac =
        TrafficGenerator::mint_mac(p, static_cast<std::uint32_t>(7 + i));
    const auto ip = net::Ipv4Address::of(192, 168, 0,
                                         static_cast<std::uint8_t>(2 + i % 250));

    GeneratorConfig cfg;
    cfg.trailing_heartbeats = 2;
    TrafficGenerator gen(cfg);
    ml::Rng rng(0xf00d + i);
    const auto setup = gen.generate(p, mac, ip, rng);

    TrafficGenerator gen2;
    ml::Rng rng2(0xbeef + i);
    const auto standby = gen2.generate_standby(p, mac, ip, 2, rng2);

    char line[160];
    std::snprintf(line, sizeof(line), "%s %u %08x %08x\n", p.name.c_str(),
                  static_cast<unsigned>(setup.size()), trace_crc(setup),
                  trace_crc(standby));
    traffic += line;
  }
  EXPECT_EQ(traffic,
            read_file(IOTSENTINEL_TEST_DATA_DIR "/catalog_traffic_golden.txt"));
}

}  // namespace
}  // namespace iotsentinel::sim
