#include "simnet/device_catalog.hpp"

#include <gtest/gtest.h>

#include <set>

namespace iotsentinel::sim {
namespace {

bool same_steps(const DeviceProfile& a, const DeviceProfile& b) {
  if (a.steps.size() != b.steps.size()) return false;
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    const SetupStep& x = a.steps[i];
    const SetupStep& y = b.steps[i];
    if (x.kind != y.kind || x.host != y.host || x.remote != y.remote ||
        x.port != y.port || x.repeat != y.repeat ||
        x.repeat_jitter != y.repeat_jitter || x.skip_prob != y.skip_prob) {
      return false;
    }
  }
  return true;
}

TEST(DeviceCatalog, HasAll27TableIITypes) {
  EXPECT_EQ(device_catalog().size(), 27u);
  std::set<std::string> names;
  for (const auto& p : device_catalog()) names.insert(p.name);
  EXPECT_EQ(names.size(), 27u);  // unique identifiers
}

TEST(DeviceCatalog, FindProfileWorks) {
  ASSERT_NE(find_profile("HueBridge"), nullptr);
  EXPECT_EQ(find_profile("HueBridge")->name, "HueBridge");
  EXPECT_EQ(find_profile("NotADevice"), nullptr);
  ASSERT_TRUE(profile_index("Aria").has_value());
  EXPECT_EQ(*profile_index("Aria"), 0u);
  EXPECT_FALSE(profile_index("NotADevice").has_value());
}

TEST(DeviceCatalog, EveryProfileHasSetupSteps) {
  for (const auto& p : device_catalog()) {
    EXPECT_FALSE(p.steps.empty()) << p.name;
    EXPECT_FALSE(p.model.empty()) << p.name;
    EXPECT_GT(p.intra_gap_ms, 0.0) << p.name;
  }
}

TEST(DeviceCatalog, ConfusableFamiliesShareIdenticalScripts) {
  // The paper's Table-III root cause: identical hardware/firmware.
  const auto* water = find_profile("D-LinkWaterSensor");
  const auto* siren = find_profile("D-LinkSiren");
  const auto* sensor = find_profile("D-LinkSensor");
  ASSERT_TRUE(water && siren && sensor);
  EXPECT_TRUE(same_steps(*water, *siren));
  EXPECT_TRUE(same_steps(*water, *sensor));

  EXPECT_TRUE(same_steps(*find_profile("TP-LinkPlugHS110"),
                         *find_profile("TP-LinkPlugHS100")));
  EXPECT_TRUE(same_steps(*find_profile("EdimaxPlug1101W"),
                         *find_profile("EdimaxPlug2101W")));
  EXPECT_TRUE(same_steps(*find_profile("SmarterCoffee"),
                         *find_profile("iKettle2")));
}

TEST(DeviceCatalog, DlinkSwitchDiffersSlightlyFromSensors) {
  // Same platform but a plug: one extra (often-skipped) step, matching its
  // slightly higher Fig. 5 accuracy.
  const auto* plug = find_profile("D-LinkSwitch");
  const auto* sensor = find_profile("D-LinkSensor");
  ASSERT_TRUE(plug && sensor);
  EXPECT_FALSE(same_steps(*plug, *sensor));
  EXPECT_EQ(plug->steps.size(), sensor->steps.size() + 1);
}

TEST(DeviceCatalog, DistinctDevicesHaveDistinctScripts) {
  // Outside the known confusable groups, scripts must differ pairwise.
  const std::set<std::string> confusable(confusable_device_names().begin(),
                                         confusable_device_names().end());
  const auto& catalog = device_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    for (std::size_t j = i + 1; j < catalog.size(); ++j) {
      if (confusable.contains(catalog[i].name) &&
          confusable.contains(catalog[j].name)) {
        continue;
      }
      EXPECT_FALSE(same_steps(catalog[i], catalog[j]))
          << catalog[i].name << " vs " << catalog[j].name;
    }
  }
}

TEST(DeviceCatalog, ConfusableListMatchesPaperOrder) {
  const auto& names = confusable_device_names();
  ASSERT_EQ(names.size(), 10u);
  EXPECT_EQ(names[0], "D-LinkSwitch");       // paper index 1
  EXPECT_EQ(names[4], "TP-LinkPlugHS110");   // paper index 5
  EXPECT_EQ(names[9], "iKettle2");           // paper index 10
  for (const auto& n : names) {
    EXPECT_NE(find_profile(n), nullptr) << n;
  }
}

TEST(DeviceCatalog, CloudStepsUsePublicAddresses) {
  for (const auto& p : device_catalog()) {
    for (const auto& step : p.steps) {
      if (step.kind == StepKind::kHttpCloudCheck ||
          step.kind == StepKind::kHttpsCloudCheck ||
          step.kind == StepKind::kTcpConnect) {
        EXPECT_FALSE(step.remote.is_private())
            << p.name << " step towards " << step.remote.to_string();
        EXPECT_NE(step.remote.value(), 0u) << p.name;
      }
    }
  }
}

}  // namespace
}  // namespace iotsentinel::sim
