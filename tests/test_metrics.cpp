#include "ml/metrics.hpp"

#include <gtest/gtest.h>

namespace iotsentinel::ml {
namespace {

TEST(ConfusionMatrix, RecordsAndReportsCounts) {
  ConfusionMatrix m(3);
  m.record(0, 0);
  m.record(0, 1);
  m.record(1, 1);
  m.record(2, 2);
  m.record(2, 2);
  EXPECT_EQ(m.at(0, 0), 1u);
  EXPECT_EQ(m.at(0, 1), 1u);
  EXPECT_EQ(m.at(2, 2), 2u);
  EXPECT_EQ(m.row_total(0), 2u);
  EXPECT_EQ(m.total(), 5u);
}

TEST(ConfusionMatrix, AccuracyComputations) {
  ConfusionMatrix m(2);
  for (int i = 0; i < 8; ++i) m.record(0, 0);
  for (int i = 0; i < 2; ++i) m.record(0, 1);
  for (int i = 0; i < 5; ++i) m.record(1, 1);
  for (int i = 0; i < 5; ++i) m.record(1, 0);
  EXPECT_DOUBLE_EQ(m.class_accuracy(0), 0.8);
  EXPECT_DOUBLE_EQ(m.class_accuracy(1), 0.5);
  EXPECT_DOUBLE_EQ(m.accuracy(), 13.0 / 20.0);
}

TEST(ConfusionMatrix, EmptyClassAccuracyIsZero) {
  ConfusionMatrix m(2);
  m.record(0, 0);
  EXPECT_DOUBLE_EQ(m.class_accuracy(1), 0.0);
}

TEST(ConfusionMatrix, MergeAddsCounts) {
  ConfusionMatrix a(2);
  ConfusionMatrix b(2);
  a.record(0, 0);
  b.record(0, 0);
  b.record(1, 0);
  a.merge(b);
  EXPECT_EQ(a.at(0, 0), 2u);
  EXPECT_EQ(a.at(1, 0), 1u);
}

TEST(ConfusionMatrix, MergeIntoEmptyAdopts) {
  ConfusionMatrix empty;
  ConfusionMatrix b(2);
  b.record(1, 1);
  empty.merge(b);
  EXPECT_EQ(empty.num_classes(), 2u);
  EXPECT_EQ(empty.at(1, 1), 1u);
}

TEST(ConfusionMatrix, ToTableSelectsSubMatrix) {
  ConfusionMatrix m(4);
  m.record(2, 2);
  m.record(2, 3);
  m.record(3, 3);
  const std::string table = m.to_table({2, 3}, {"TypeC", "TypeD"});
  EXPECT_NE(table.find("TypeC"), std::string::npos);
  EXPECT_NE(table.find("TypeD"), std::string::npos);
  // Row for actual=2 must contain both counts 1 and 1.
  EXPECT_NE(table.find('1'), std::string::npos);
}

TEST(ConfusionMatrix, ZeroTotalAccuracyIsZero) {
  ConfusionMatrix m(3);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
}

}  // namespace
}  // namespace iotsentinel::ml
