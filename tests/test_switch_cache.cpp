// SwitchRuleCache / federation tests: flow-class key semantics, the
// owner-thread cache protocol (hits, invalidation drain, generation
// check, flush-on-full, lag samples), controller invalidation fan-out,
// the controller's negative-entry cache, and the SoftwareSwitch cached
// path end-to-end — including the enforcement auditor replaying cached
// verdicts.
#include "sdn/switch_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <thread>

#include "net/builder.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"
#include "sdn/controller.hpp"
#include "sdn/enforcement_audit.hpp"
#include "sdn/software_switch.hpp"
#include "telemetry/registry.hpp"

namespace iotsentinel::sdn {
namespace {

using net::Ipv4Address;
using net::MacAddress;

const MacAddress kA = MacAddress::of(0x02, 0xa, 0, 0, 0, 1);
const MacAddress kB = MacAddress::of(0x02, 0xb, 0, 0, 0, 2);
const Ipv4Address kIpA = Ipv4Address::of(192, 168, 0, 10);
const Ipv4Address kIpB = Ipv4Address::of(192, 168, 0, 20);

net::ParsedPacket udp_packet(std::uint16_t sport, std::uint16_t dport,
                             const MacAddress& src = kA,
                             const MacAddress& dst = kB) {
  const auto udp = net::build_udp_payload(sport, dport, {});
  const auto frame = net::build_ipv4(src, dst, kIpA, kIpB,
                                     net::ipproto::kUdp, udp);
  return net::parse_ethernet_frame(frame, 0);
}

// ---------------------------------------------------------------------------
// FlowClassKey

TEST(SwitchRuleCache, ClassKeyCollapsesSourcePort) {
  const auto key1 = FlowClassKey::of_packet(udp_packet(50'000, 8000));
  const auto key2 = FlowClassKey::of_packet(udp_packet(61'234, 8000));
  EXPECT_EQ(key1, key2);
  EXPECT_EQ(key1.hash(), key2.hash());
}

TEST(SwitchRuleCache, ClassKeyKeepsDestinationPort) {
  const auto key1 = FlowClassKey::of_packet(udp_packet(50'000, 8000));
  const auto key2 = FlowClassKey::of_packet(udp_packet(50'000, 8001));
  EXPECT_NE(key1, key2);
}

TEST(SwitchRuleCache, ClassKeyDistinguishesInfraClasses) {
  const auto arp = net::parse_ethernet_frame(
      net::build_arp_request(kA, kIpA, kIpB), 0);
  ASSERT_TRUE(arp.is_arp);
  const auto key_arp = FlowClassKey::of_packet(arp);
  EXPECT_EQ(key_arp.cls, FlowClassKey::kClsArp);

  auto plain = arp;
  plain.is_arp = false;
  EXPECT_NE(key_arp, FlowClassKey::of_packet(plain));

  const auto dhcp = net::parse_ethernet_frame(net::build_dhcp(kA, 1, 7), 0);
  EXPECT_EQ(FlowClassKey::of_packet(dhcp).cls, FlowClassKey::kClsDhcp);
}

TEST(SwitchRuleCache, ClassKeyExposesMacs) {
  const auto key = FlowClassKey::of_packet(udp_packet(50'000, 8000));
  EXPECT_EQ(key.src_mac_u64(), kA.to_u64());
  EXPECT_EQ(key.dst_mac_u64(), kB.to_u64());
}

// ---------------------------------------------------------------------------
// Cache protocol

TEST(SwitchRuleCache, LookupInsertHit) {
  SwitchRuleCache cache;
  const auto key = FlowClassKey::of_packet(udp_packet(50'000, 8000));
  EXPECT_EQ(cache.lookup(key, 1), nullptr);
  cache.insert(key, {FlowAction::kForward, "ok", true});
  const CachedDecision* hit = cache.lookup(key, 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action, FlowAction::kForward);
  EXPECT_STREQ(hit->reason, "ok");
  EXPECT_TRUE(hit->installable);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.insertions(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SwitchRuleCache, InvalidateDeviceErasesOnlyItsEntries) {
  SwitchRuleCache cache;
  const MacAddress kC = MacAddress::of(0x02, 0xc, 0, 0, 0, 3);
  const auto key_a = FlowClassKey::of_packet(udp_packet(50'000, 8000, kA, kB));
  const auto key_c = FlowClassKey::of_packet(udp_packet(50'000, 8000, kC, kB));
  cache.insert(key_a, {FlowAction::kForward, "", false});
  cache.insert(key_c, {FlowAction::kForward, "", false});
  ASSERT_EQ(cache.size(), 2u);

  cache.invalidate_device(kA, 10);
  // kB is the *destination* of both entries; invalidating kA must erase
  // only the kA-sourced one.
  EXPECT_EQ(cache.lookup(key_a, 20), nullptr);
  EXPECT_NE(cache.lookup(key_c, 20), nullptr);
  EXPECT_EQ(cache.invalidated_entries(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // Destination-keyed erase: invalidating kB kills the remaining entry.
  cache.invalidate_device(kB, 30);
  EXPECT_EQ(cache.lookup(key_c, 40), nullptr);
  EXPECT_EQ(cache.invalidated_entries(), 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SwitchRuleCache, InvalidateAllFlushes) {
  SwitchRuleCache cache;
  cache.insert(FlowClassKey::of_packet(udp_packet(1, 1)), {});
  cache.insert(FlowClassKey::of_packet(udp_packet(1, 2)), {});
  cache.invalidate_all(5);
  EXPECT_EQ(cache.lookup(FlowClassKey::of_packet(udp_packet(1, 1)), 6),
            nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.flushes(), 1u);
}

TEST(SwitchRuleCache, StaleInsertDroppedAfterInvalidation) {
  SwitchRuleCache cache;
  const auto key = FlowClassKey::of_packet(udp_packet(50'000, 8000));
  EXPECT_EQ(cache.lookup(key, 1), nullptr);  // miss -> decision in flight
  // Rule change lands between the miss and the insert: the computed
  // decision may predate it, so the insert must be dropped.
  cache.invalidate_device(kA, 2);
  cache.insert(key, {FlowAction::kForward, "", false});
  EXPECT_EQ(cache.stale_inserts(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key, 3), nullptr);

  // The next miss/insert pair (post-drain) caches normally again.
  cache.insert(key, {FlowAction::kForward, "", false});
  EXPECT_NE(cache.lookup(key, 4), nullptr);
}

TEST(SwitchRuleCache, FlushOnCapacityOverflow) {
  SwitchRuleCache cache(4);
  for (std::uint16_t p = 1; p <= 4; ++p) {
    cache.insert(FlowClassKey::of_packet(udp_packet(1, p)), {});
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.flushes(), 0u);
  cache.insert(FlowClassKey::of_packet(udp_packet(1, 5)), {});
  EXPECT_EQ(cache.flushes(), 1u);
  EXPECT_EQ(cache.size(), 1u);  // only the overflowing entry survives
}

TEST(SwitchRuleCache, CrossThreadInvalidationDrainedAtNextLookup) {
  SwitchRuleCache cache;
  const auto key = FlowClassKey::of_packet(udp_packet(50'000, 8000));
  cache.insert(key, {FlowAction::kForward, "", false});
  std::thread controller_thread([&] { cache.invalidate_device(kA, 100); });
  controller_thread.join();
  EXPECT_EQ(cache.invalidations_enqueued(), 1u);
  EXPECT_EQ(cache.lookup(key, 200), nullptr);
  EXPECT_EQ(cache.invalidated_entries(), 1u);
}

TEST(SwitchRuleCache, LagHistogramRecordsDrainDelay) {
  telemetry::Registry reg;
  telemetry::Histogram& lag = reg.histogram("sdn.invalidation_fanout_lag_us");
  SwitchRuleCache cache;
  cache.bind_lag_histogram(&lag);
  const auto key = FlowClassKey::of_packet(udp_packet(50'000, 8000));
  cache.invalidate_device(kA, 100);
  (void)cache.lookup(key, 400);  // drains: lag sample = 400 - 100 = 300
  EXPECT_EQ(lag.count(), 1u);
  EXPECT_EQ(lag.sum(), 300u);
  EXPECT_EQ(lag.bucket(telemetry::Histogram::bucket_index(300)), 1u);

  // Enqueue timestamp 0 means "unknown": no sample recorded.
  cache.invalidate_device(kA, 0);
  (void)cache.lookup(key, 500);
  EXPECT_EQ(lag.count(), 1u);
}

// ---------------------------------------------------------------------------
// Controller federation fan-out

TEST(SwitchRuleCache, ControllerFansOutInvalidationsOnRuleChange) {
  Controller controller;
  SwitchRuleCache cache;
  controller.attach_cache(&cache);

  const auto key = FlowClassKey::of_packet(udp_packet(50'000, 8000));
  cache.insert(key, {FlowAction::kForward, "", false});

  // Rule install for kA must invalidate the attached cache's kA entries
  // (negative cache + 1 attached cache = 2 invalidations per change).
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 10);
  EXPECT_EQ(controller.invalidations_sent(), 2u);
  EXPECT_EQ(cache.lookup(key, 20), nullptr);
  EXPECT_EQ(cache.invalidated_entries(), 1u);

  cache.insert(key, {FlowAction::kForward, "", false});
  controller.remove_device(kA, 30);
  EXPECT_EQ(controller.invalidations_sent(), 4u);
  EXPECT_EQ(cache.lookup(key, 40), nullptr);
}

// ---------------------------------------------------------------------------
// Controller negative-entry cache

TEST(SwitchRuleCache, NegativeCacheAnswersRepeatedClassMisses) {
  Controller controller;
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 0);
  controller.apply_rule({.device = kB, .level = IsolationLevel::kTrusted}, 0);

  const auto first = controller.packet_in(udp_packet(50'000, 8000), 1);
  EXPECT_EQ(controller.negative_cache_hits(), 0u);

  // Same class, fresh ephemeral source port: answered from the negative
  // cache, observably identical to a fresh decision.
  const auto second = controller.packet_in(udp_packet(61'000, 8000), 2);
  EXPECT_EQ(controller.negative_cache_hits(), 1u);
  EXPECT_EQ(second.action, first.action);
  EXPECT_STREQ(second.reason, first.reason);
  ASSERT_EQ(second.flow_to_install.has_value(), first.flow_to_install.has_value());
  if (second.flow_to_install) {
    // The rebuilt entry must match THIS packet (its source port), not the
    // one that populated the cache.
    EXPECT_EQ(second.flow_to_install->match.src_port,
              std::optional<std::uint16_t>{61'000});
    EXPECT_EQ(second.flow_to_install->action, first.flow_to_install->action);
  }
  EXPECT_EQ(controller.packet_ins(), 2u);
}

TEST(SwitchRuleCache, NegativeCacheInvalidatedByReidentification) {
  Controller controller;
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 0);
  controller.apply_rule({.device = kB, .level = IsolationLevel::kTrusted}, 0);

  EXPECT_EQ(controller.packet_in(udp_packet(50'000, 8000), 1).action,
            FlowAction::kForward);
  EXPECT_EQ(controller.packet_in(udp_packet(50'001, 8000), 2).action,
            FlowAction::kForward);
  EXPECT_EQ(controller.negative_cache_hits(), 1u);

  // kA is re-identified as strict: the cached forward verdict must NOT
  // survive — the next miss re-decides under the new rule and drops
  // (strict kA and trusted kB sit on different overlays).
  controller.apply_rule({.device = kA, .level = IsolationLevel::kStrict}, 3);
  EXPECT_EQ(controller.packet_in(udp_packet(50'002, 8000), 4).action,
            FlowAction::kDrop);
  EXPECT_EQ(controller.negative_cache_hits(), 1u);  // miss, not a hit
  // And the drop verdict is itself cached for the class.
  EXPECT_EQ(controller.packet_in(udp_packet(50'003, 8000), 5).action,
            FlowAction::kDrop);
  EXPECT_EQ(controller.negative_cache_hits(), 2u);
}

TEST(SwitchRuleCache, NegativeCacheInvalidatedByDeviceRemoval) {
  Controller controller;
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 0);
  controller.apply_rule({.device = kB, .level = IsolationLevel::kTrusted}, 0);

  EXPECT_EQ(controller.packet_in(udp_packet(50'000, 8000), 1).action,
            FlowAction::kForward);
  (void)controller.packet_in(udp_packet(50'001, 8000), 2);
  EXPECT_EQ(controller.negative_cache_hits(), 1u);

  // Departure (expire_departed path): rule removed, cache entry fanned
  // out; a ruleless kA falls back to strict-pending handling.
  controller.remove_device(kA, 3);
  const auto after = controller.packet_in(udp_packet(50'002, 8000), 4);
  EXPECT_EQ(controller.negative_cache_hits(), 1u);
  EXPECT_EQ(after.action, FlowAction::kDrop);
}

TEST(SwitchRuleCache, NegativeCacheCanBeDisabled) {
  Controller controller({.negative_cache_enabled = false});
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 0);
  controller.apply_rule({.device = kB, .level = IsolationLevel::kTrusted}, 0);
  (void)controller.packet_in(udp_packet(50'000, 8000), 1);
  (void)controller.packet_in(udp_packet(50'001, 8000), 2);
  EXPECT_EQ(controller.negative_cache_hits(), 0u);
  EXPECT_EQ(controller.packet_ins(), 2u);
}

// ---------------------------------------------------------------------------
// SoftwareSwitch cached path end-to-end

TEST(SwitchRuleCache, SwitchServesSameClassFromCachedPath) {
  Controller controller;
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 0);
  controller.apply_rule({.device = kB, .level = IsolationLevel::kTrusted}, 0);
  SwitchRuleCache cache;
  controller.attach_cache(&cache);
  SoftwareSwitch sw(controller);
  sw.set_rule_cache(&cache);

  // First occurrence: slow path, decision cached.
  const auto first = sw.process(udp_packet(50'000, 8000), 1);
  EXPECT_EQ(first.path, SwitchPath::kSlowPath);

  // Fresh ephemeral source port: micro-flow entry cannot match, but the
  // class cache answers locally — no packet-in, no new flow entry.
  const auto second = sw.process(udp_packet(61'000, 8000), 2);
  EXPECT_EQ(second.path, SwitchPath::kCachedPath);
  EXPECT_EQ(second.action, FlowAction::kForward);
  EXPECT_EQ(controller.packet_ins(), 1u);
  EXPECT_EQ(sw.cached_path_packets(), 1u);
  EXPECT_EQ(sw.table().size(), 1u);

  // An exact repeat also rides the cached path: the class cache sits
  // between tier-1 and the tier-2 scan, and tier-1 is only populated by
  // tier-2 matches — which cached classes no longer reach.
  const auto third = sw.process(udp_packet(50'000, 8000), 3);
  EXPECT_EQ(third.path, SwitchPath::kCachedPath);
  EXPECT_EQ(sw.cached_path_packets(), 2u);
}

TEST(SwitchRuleCache, SwitchHonorsRuleChangeAfterInvalidation) {
  Controller controller;
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 0);
  controller.apply_rule({.device = kB, .level = IsolationLevel::kTrusted}, 0);
  SwitchRuleCache cache;
  controller.attach_cache(&cache);
  SoftwareSwitch sw(controller);
  sw.set_rule_cache(&cache);

  (void)sw.process(udp_packet(50'000, 8000), 1);
  EXPECT_EQ(sw.process(udp_packet(50'001, 8000), 2).path,
            SwitchPath::kCachedPath);

  // Re-identification demotes kA; the cached forward verdict is fanned
  // out, so the next fresh-port packet re-consults and is dropped.
  controller.apply_rule({.device = kA, .level = IsolationLevel::kStrict}, 3);
  sw.flush_device(kA);
  const auto after = sw.process(udp_packet(50'002, 8000), 4);
  EXPECT_EQ(after.path, SwitchPath::kSlowPath);
  EXPECT_EQ(after.action, FlowAction::kDrop);
}

TEST(SwitchRuleCache, AuditorRepaysCachedPathVerdicts) {
  Controller controller;
  controller.apply_rule({.device = kA, .level = IsolationLevel::kTrusted}, 0);
  controller.apply_rule({.device = kB, .level = IsolationLevel::kTrusted}, 0);
  SwitchRuleCache cache;
  controller.attach_cache(&cache);
  SoftwareSwitch sw(controller);
  sw.set_rule_cache(&cache);
  EnforcementAuditor auditor(controller);
  auditor.attach(sw);

  (void)sw.process(udp_packet(50'000, 8000), 1);  // slow path: not audited
  EXPECT_EQ(auditor.checked(), 0u);
  (void)sw.process(udp_packet(50'001, 8000), 2);  // cached path: audited
  (void)sw.process(udp_packet(50'000, 8000), 3);  // fast path: audited
  EXPECT_EQ(auditor.checked(), 2u);
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_EQ(auditor.overblocks(), 0u);
}

}  // namespace
}  // namespace iotsentinel::sdn
