// Hot model swap suite: epoch/RCU publication of compiled forest banks
// (ml/hot_swap.hpp) and its wiring into the sharded gateway.
//
//   * Differential proof: after retraining type T through the publisher,
//     every other type's predictions are *bit-identical* to the pre-swap
//     bank, and T's engine is bit-identical to an in-place add_type
//     retrain with the same inputs.
//   * Epoch reclamation: a retired bank is never freed while any reader
//     holds it (operator new/delete counting, as in the compiled-forest
//     suite), and is freed once the last pin drains.
//   * Swap-under-load stress: readers acquiring while several publishers
//     swap concurrently always observe exactly one published bank — the
//     engines of a snapshot carry one version tag, never a torn mix.
//   * Gateway integration: a no-swap publisher gateway is event-identical
//     to the fixed-model gateway, and the enforcement auditor sees zero
//     violations at 1/2/4 shards while a background retrainer swaps
//     continuously (the model-swap cache-invalidation fan-out regression
//     test).
//
// The HotSwap*/ForestBankPublisher suites run under the CI TSan job.
#include "ml/hot_swap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>
#include <numeric>
#include <optional>
#include <tuple>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/classifier_bank.hpp"
#include "core/gateway_pool.hpp"
#include "core/security_gateway.hpp"
#include "ml/rng.hpp"
#include "net/builder.hpp"
#include "net/parser.hpp"
#include "sdn/enforcement_audit.hpp"
#include "simnet/corpus.hpp"
#include "simnet/device_catalog.hpp"
#include "simnet/traffic_generator.hpp"
#include "telemetry/registry.hpp"

/// Binary-wide allocation/free counters so "never freed while held" and
/// "acquire is allocation-free" are asserted, not assumed.
namespace {
std::atomic<std::size_t> g_heap_allocations{0};
std::atomic<std::size_t> g_heap_frees{0};

void* counted_alloc(std::size_t size) {
  ++g_heap_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void counted_free(void* p) noexcept {
  if (p != nullptr) ++g_heap_frees;
  std::free(p);
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }

namespace iotsentinel::core {
namespace {

// ------------------------------------------------------------- fixtures

/// A trained 4-type bank plus its per-type fixed fingerprints.
struct TrainedBank {
  ClassifierBank bank;
  std::vector<std::string> type_names;
  std::vector<std::vector<fp::FixedFingerprint>> fixed;
};

TrainedBank make_trained_bank() {
  const auto corpus = sim::generate_corpus_for(
      {"Aria", "HueBridge", "MAXGateway", "WeMoLink"}, 10, 321);
  TrainedBank t;
  t.type_names = corpus.type_names;
  for (const auto& runs : corpus.by_type) {
    auto& out = t.fixed.emplace_back();
    for (const auto& f : runs) out.push_back(f.to_fixed());
  }
  t.bank.train(corpus.type_names, t.fixed);
  return t;
}

/// Copies of a bank's training-side forests (seeds a publisher).
std::vector<ml::RandomForest> bank_forests(const ClassifierBank& bank) {
  std::vector<ml::RandomForest> forests;
  forests.reserve(bank.num_types());
  for (std::size_t t = 0; t < bank.num_types(); ++t) {
    forests.push_back(bank.forest(t));
  }
  return forests;
}

/// Copies of a bank's compiled engines (a publish_engines payload).
std::vector<ml::CompiledForest> engine_copies(const ClassifierBank& bank) {
  std::vector<ml::CompiledForest> engines;
  engines.reserve(bank.num_types());
  for (std::size_t t = 0; t < bank.num_types(); ++t) {
    engines.push_back(bank.compiled(t));
  }
  return engines;
}

/// Fresh fixed fingerprints of one device-type from an independent corpus
/// (the "newly confirmed" positives a retrain folds in).
std::vector<fp::FixedFingerprint> fresh_positives(const std::string& type,
                                                  std::uint64_t seed) {
  const auto corpus = sim::generate_corpus_for({type}, 8, seed);
  std::vector<fp::FixedFingerprint> out;
  for (const auto& f : corpus.by_type.front()) out.push_back(f.to_fixed());
  return out;
}

std::vector<const fp::FixedFingerprint*> negative_pool_excluding(
    const std::vector<std::vector<fp::FixedFingerprint>>& fixed,
    std::size_t skip) {
  std::vector<const fp::FixedFingerprint*> pool;
  for (std::size_t t = 0; t < fixed.size(); ++t) {
    if (t == skip) continue;
    for (const auto& f : fixed[t]) pool.push_back(&f);
  }
  return pool;
}

/// scores[t][i] = engines[t].positive_score(probes[i]).
std::vector<std::vector<double>> engine_scores(
    std::span<const ml::CompiledForest> engines,
    const std::vector<fp::FixedFingerprint>& probes) {
  std::vector<std::vector<double>> scores(engines.size());
  for (std::size_t t = 0; t < engines.size(); ++t) {
    scores[t].reserve(probes.size());
    for (const auto& probe : probes) {
      scores[t].push_back(engines[t].positive_score(probe));
    }
  }
  return scores;
}

/// Training fingerprints plus uniform-random probes of F' dimensionality.
std::vector<fp::FixedFingerprint> make_probes(const TrainedBank& trained) {
  std::vector<fp::FixedFingerprint> probes;
  for (const auto& per_type : trained.fixed) {
    probes.insert(probes.end(), per_type.begin(), per_type.end());
  }
  ml::Rng rng(99);
  for (int i = 0; i < 16; ++i) {
    fp::FixedFingerprint p(fp::kFixedDims);
    for (auto& v : p) v = static_cast<float>(rng.uniform(0.0, 4.0));
    probes.push_back(std::move(p));
  }
  return probes;
}

// ---------------------------------------------------- ForestBankPublisher

TEST(ForestBankPublisher, InitialBankServesSourceBankScoresExactly) {
  const auto trained = make_trained_bank();
  ml::ForestBankPublisher publisher(bank_forests(trained.bank));
  EXPECT_EQ(publisher.version(), 1u);
  EXPECT_EQ(publisher.num_types(), trained.bank.num_types());
  EXPECT_EQ(publisher.retrains_completed(), 0u);
  EXPECT_EQ(publisher.retired_banks(), 0u);

  auto reader = publisher.register_reader();
  const auto bank = publisher.acquire(reader);
  EXPECT_EQ(bank->version, 1u);
  EXPECT_EQ(bank->retrained_type, ml::ForestBank::kNoRetrainedType);
  ASSERT_EQ(bank->engines.size(), trained.bank.num_types());
  for (std::size_t t = 0; t < trained.bank.num_types(); ++t) {
    for (const auto& per_type : trained.fixed) {
      for (const auto& probe : per_type) {
        EXPECT_EQ(bank->engines[t].positive_score(probe),
                  trained.bank.compiled(t).positive_score(probe))
            << "type " << t;
      }
    }
  }
}

// The tentpole differential proof: rebuilding one type must leave every
// other type's predictions bit-identical, and must equal an in-place
// add_type retrain of the same bank with the same inputs.
TEST(ForestBankPublisher, UntouchedTypesServeBitIdenticalScoresAcrossSwap) {
  auto trained = make_trained_bank();
  constexpr std::size_t kRetrained = 1;  // HueBridge
  const auto probes = make_probes(trained);

  ml::ForestBankPublisher publisher(bank_forests(trained.bank));
  auto reader = publisher.register_reader();

  std::vector<std::vector<double>> before;
  {
    const auto bank = publisher.acquire(reader);
    before = engine_scores(bank->engines, probes);
  }

  const auto positives =
      fresh_positives(trained.type_names[kRetrained], 4242);
  const auto pool = negative_pool_excluding(trained.fixed, kRetrained);
  const auto plan = trained.bank.retrain_plan(kRetrained, positives, pool);
  EXPECT_EQ(publisher.rebuild_type(kRetrained, plan.data, plan.forest), 2u);
  EXPECT_EQ(publisher.version(), 2u);
  EXPECT_EQ(publisher.retrains_completed(), 1u);

  const auto bank = publisher.acquire(reader);
  EXPECT_EQ(bank->version, 2u);
  EXPECT_EQ(bank->retrained_type, kRetrained);
  const auto after = engine_scores(bank->engines, probes);
  for (std::size_t t = 0; t < after.size(); ++t) {
    if (t == kRetrained) continue;
    EXPECT_EQ(after[t], before[t])
        << "untouched type " << t << " drifted across the swap";
  }

  // The retrained engine equals an in-place add_type with the same
  // inputs: retrain_plan replays add_type's exact RNG stream.
  ClassifierBank inplace = trained.bank;
  ASSERT_EQ(inplace.add_type(trained.type_names[kRetrained], positives, pool),
            kRetrained);
  for (const auto& probe : probes) {
    EXPECT_EQ(bank->engines[kRetrained].positive_score(probe),
              inplace.compiled(kRetrained).positive_score(probe));
  }

  // Fold-back for persistence: replace_forest(forest_copy(T)) reproduces
  // the published engine from the master bank (what the incremental
  // model-store rewrite serializes).
  trained.bank.replace_forest(kRetrained, publisher.forest_copy(kRetrained));
  for (const auto& probe : probes) {
    EXPECT_EQ(bank->engines[kRetrained].positive_score(probe),
              trained.bank.compiled(kRetrained).positive_score(probe));
  }
}

TEST(ForestBankPublisher, RetiredBankIsNotFreedWhileAReaderHoldsIt) {
  const auto trained = make_trained_bank();
  ml::ForestBankPublisher publisher(bank_forests(trained.bank));
  auto reader = publisher.register_reader();
  const auto& probe = trained.fixed.front().front();

  std::optional<ml::ForestBankPublisher::BankRef> held{
      publisher.acquire(reader)};
  const double held_score = (*held)->engines[0].positive_score(probe);
  EXPECT_EQ((*held)->version, 1u);

  // Publish on top of the pin: v1 retires but stays alive.
  EXPECT_EQ(publisher.publish_engines(engine_copies(trained.bank), 0), 2u);
  EXPECT_EQ(publisher.retired_banks(), 1u);

  // reclaim() with the pin in place must free nothing at all.
  const std::size_t frees_before = g_heap_frees.load();
  publisher.reclaim();
  const std::size_t frees_after = g_heap_frees.load();
  EXPECT_EQ(frees_after, frees_before)
      << "reclaim freed heap memory while a reader pinned the bank";
  EXPECT_EQ(publisher.retired_banks(), 1u);

  // The held snapshot still serves the same bytes.
  EXPECT_EQ((*held)->version, 1u);
  EXPECT_EQ((*held)->engines[0].positive_score(probe), held_score);

  // Another publish: v2 retires too, and epoch reclamation keeps both
  // (the pin at epoch 1 bounds the reclaim horizon from below).
  EXPECT_EQ(publisher.publish_engines(engine_copies(trained.bank), 0), 3u);
  EXPECT_EQ(publisher.retired_banks(), 2u);
  EXPECT_EQ((*held)->engines[0].positive_score(probe), held_score);

  // Dropping the pin makes every retired bank reclaimable.
  held.reset();
  const std::size_t frees_before_reclaim = g_heap_frees.load();
  publisher.reclaim();
  EXPECT_GT(g_heap_frees.load(), frees_before_reclaim);
  EXPECT_EQ(publisher.retired_banks(), 0u);
}

TEST(ForestBankPublisher, AcquireAndReleaseAreAllocationFree) {
  const auto trained = make_trained_bank();
  ml::ForestBankPublisher publisher(bank_forests(trained.bank));
  auto reader = publisher.register_reader();
  const auto& probe = trained.fixed.front().front();

  volatile double sink = 0.0;
  {
    const auto warm = publisher.acquire(reader);
    sink = sink + warm->engines[0].positive_score(probe);
  }
  const std::size_t allocations_before = g_heap_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    const auto bank = publisher.acquire(reader);
    sink = sink + bank->engines[0].positive_score(probe);
  }
  EXPECT_EQ(g_heap_allocations.load(), allocations_before)
      << "the reader hot path allocated on the heap";
}

TEST(ForestBankPublisher, TelemetryBindingsTrackSwaps) {
  const auto trained = make_trained_bank();
  ml::ForestBankPublisher publisher(bank_forests(trained.bank));

  telemetry::Registry registry;
  ml::ForestBankPublisher::Telemetry telemetry;
  telemetry.retrains = &registry.counter("hotswap.retrains_completed");
  telemetry.bank_epoch = &registry.gauge("hotswap.bank_epoch");
  telemetry.swap_latency_us = &registry.histogram("hotswap.swap_latency_us");
  telemetry.retired_banks = &registry.gauge("hotswap.retired_banks");
  publisher.bind_telemetry(telemetry);
  // Binding publishes the current epoch immediately.
  EXPECT_EQ(registry.gauge("hotswap.bank_epoch").value(), 1u);

  EXPECT_EQ(publisher.publish_engines(engine_copies(trained.bank), 0), 2u);
  EXPECT_EQ(publisher.publish_engines(engine_copies(trained.bank), 1), 3u);

  EXPECT_EQ(registry.counter("hotswap.retrains_completed").value(), 2u);
  EXPECT_EQ(registry.gauge("hotswap.bank_epoch").value(), 3u);
  EXPECT_EQ(registry.histogram("hotswap.swap_latency_us").count(), 2u);
  EXPECT_EQ(registry.gauge("hotswap.retired_banks").value(),
            publisher.retired_banks());
}

// ---------------------------------------------------------- HotSwapStress

// Concurrent swap/acquire stress: N publishers swap tagged banks while
// R readers acquire snapshots. Every engine of a bank built from tag
// forest j scores the same input-independent fraction (constant features
// collapse each tree to one mixed leaf), so a snapshot whose engines
// disagree — or whose score doesn't match the tag recorded for its
// version — would expose a torn or reclaimed-too-early bank.
TEST(HotSwapStress, EveryAcquireObservesExactlyOnePublishedBank) {
  constexpr std::size_t kTypes = 3;
  constexpr std::size_t kPublishers = 4;
  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kAcquiresPerReader = 4000;
  constexpr std::size_t kTagsPerPublisher = 8;
  constexpr std::size_t kRows = 64;
  const std::vector<float> probe(8, 1.0f);

  // Tag trees are trained on explicit indices (no bootstrap), so the
  // single mixed leaf of tag j scores exactly j/kRows on any input.
  auto tag_tree = [&](std::size_t positives) {
    ml::Dataset data(8);
    for (std::size_t i = 0; i < kRows; ++i) {
      data.add(probe, i < positives ? 1 : 0);
    }
    std::vector<std::size_t> all(data.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    ml::Rng rng(17);
    ml::DecisionTree tree;
    tree.train(data, all, data.num_classes(), ml::TreeConfig{}, rng);
    return tree;
  };

  // Publisher p cycles through tags [p*kTagsPerPublisher, ...) + 1.
  std::vector<ml::DecisionTree> tag_trees;
  std::vector<double> tags;
  const std::size_t pool_size = kPublishers * kTagsPerPublisher;
  for (std::size_t j = 0; j < pool_size; ++j) {
    tag_trees.push_back(tag_tree(j + 1));
    tags.push_back(ml::CompiledForest::compile(tag_trees.back())
                       .positive_score(probe));
  }

  // The initial bank scores 0 (all-negative training set): distinct from
  // every tag tree's strictly positive fraction.
  ml::Dataset zeros(8);
  for (std::size_t i = 0; i < kRows; ++i) zeros.add(probe, 0);
  ml::RandomForest zero_forest;
  zero_forest.train(zeros, ml::ForestConfig{.num_trees = 1});
  ml::ForestBankPublisher publisher(
      std::vector<ml::RandomForest>(kTypes, zero_forest));

  std::mutex tag_mu;
  std::unordered_map<std::uint64_t, double> tag_of_version;
  {
    auto handle = publisher.register_reader();
    const auto bank = publisher.acquire(handle);
    tag_of_version[1] = bank->engines[0].positive_score(probe);
  }
  for (std::size_t i = 0; i < pool_size; ++i) {
    ASSERT_NE(tags[i], tag_of_version[1]) << "tag collision with v1";
    for (std::size_t j = i + 1; j < pool_size; ++j) {
      ASSERT_NE(tags[i], tags[j]) << "tag collision " << i << "/" << j;
    }
  }

  struct Observation {
    std::uint64_t version = 0;
    double tag = 0.0;
    bool torn = false;
  };
  std::vector<std::vector<Observation>> observations(kReaders);
  std::atomic<bool> readers_done{false};

  std::vector<std::thread> publishers;
  for (std::size_t p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&, p] {
      std::size_t i = 0;
      while (!readers_done.load(std::memory_order_acquire)) {
        const std::size_t j =
            p * kTagsPerPublisher + (i % kTagsPerPublisher);
        std::vector<ml::CompiledForest> engines;
        engines.reserve(kTypes);
        for (std::size_t t = 0; t < kTypes; ++t) {
          engines.push_back(ml::CompiledForest::compile(tag_trees[j]));
        }
        const std::uint64_t version =
            publisher.publish_engines(std::move(engines), j % kTypes);
        {
          std::lock_guard<std::mutex> lock(tag_mu);
          tag_of_version[version] = tags[j];
        }
        ++i;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto handle = publisher.register_reader();
      auto& obs = observations[r];
      obs.reserve(kAcquiresPerReader);
      std::uint64_t last_version = 0;
      for (std::size_t i = 0; i < kAcquiresPerReader; ++i) {
        const auto bank = publisher.acquire(handle);
        Observation o;
        o.version = bank->version;
        o.tag = bank->engines[0].positive_score(probe);
        for (std::size_t t = 1; t < kTypes; ++t) {
          if (bank->engines[t].positive_score(probe) != o.tag) o.torn = true;
        }
        if (o.version < last_version) o.torn = true;  // epoch regressed
        last_version = o.version;
        obs.push_back(o);
        if (i % 64 == 0) std::this_thread::yield();
      }
    });
  }

  for (auto& t : readers) t.join();
  readers_done.store(true, std::memory_order_release);
  for (auto& t : publishers) t.join();

  std::size_t torn = 0, mismatched = 0;
  std::vector<std::uint64_t> versions_seen;
  for (const auto& obs : observations) {
    for (const auto& o : obs) {
      if (o.torn) ++torn;
      const auto it = tag_of_version.find(o.version);
      if (it == tag_of_version.end() || it->second != o.tag) ++mismatched;
      versions_seen.push_back(o.version);
    }
  }
  EXPECT_EQ(torn, 0u) << "a snapshot mixed engines of different banks";
  EXPECT_EQ(mismatched, 0u)
      << "a snapshot's engines did not match its version's published tag";
  std::sort(versions_seen.begin(), versions_seen.end());
  versions_seen.erase(std::unique(versions_seen.begin(), versions_seen.end()),
                      versions_seen.end());
  EXPECT_GE(versions_seen.size(), 2u)
      << "readers never overlapped a swap — stress window too short";

  // All reader handles are gone: everything retired must reclaim.
  publisher.reclaim();
  EXPECT_EQ(publisher.retired_banks(), 0u);
}

// --------------------------------------------------------- HotSwapGateway

IoTSecurityService make_service() {
  const auto corpus = sim::generate_corpus_for(
      {"Aria", "EdimaxCam", "HueBridge", "MAXGateway", "Withings",
       "WeMoLink", "EdnetCam", "Lightify"},
      12, 33);
  DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  VulnerabilityDb db;
  for (const char* clean : {"Aria", "HueBridge", "MAXGateway", "Withings",
                            "WeMoLink", "EdnetCam", "Lightify"}) {
    db.mark_assessed(clean);
  }
  db.add("EdimaxCam", {.id = "CVE-X", .cvss = 9.0, .summary = "bad"});
  IoTSecurityService service(std::move(identifier), std::move(db));
  service.register_endpoints("EdimaxCam",
                             {net::Ipv4Address::of(104, 22, 7, 70)});
  return service;
}

std::vector<sim::TimedFrame> make_trace() {
  const char* kTypes[] = {"Aria",      "EdimaxCam", "HueBridge", "MAXGateway",
                          "Withings",  "WeMoLink",  "EdnetCam",  "Lightify",
                          "iKettle2",  "Aria",      "EdimaxCam", "HueBridge"};
  std::vector<sim::TimedFrame> trace;
  std::uint32_t instance = 0;
  for (const char* type : kTypes) {
    const auto* profile = sim::find_profile(type);
    EXPECT_NE(profile, nullptr);
    sim::GeneratorConfig config;
    config.start_time_us = (instance % 4) * 750'000;
    sim::TrafficGenerator gen(config);
    ml::Rng rng(1000 + instance);
    const auto mac = sim::TrafficGenerator::mint_mac(*profile, instance);
    const auto ip = net::Ipv4Address::of(
        192, 168, 0, static_cast<std::uint8_t>(50 + instance));
    for (auto& tf : gen.generate(*profile, mac, ip, rng)) {
      trace.push_back(std::move(tf));
    }
    ++instance;
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const sim::TimedFrame& a, const sim::TimedFrame& b) {
                     return a.timestamp_us < b.timestamp_us;
                   });
  return trace;
}

using EventKey = std::tuple<std::uint64_t, std::string, int, bool>;

std::vector<EventKey> event_keys(const std::vector<GatewayEvent>& events) {
  std::vector<EventKey> keys;
  keys.reserve(events.size());
  for (const auto& e : events) {
    keys.emplace_back(e.device.to_u64(), e.device_type,
                      static_cast<int>(e.level), e.is_new_type);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// One retrain plan per type, from an independent corpus of the same
/// types (what a background retrainer would fold in).
std::vector<ClassifierBank::RetrainPlan> make_retrain_plans(
    const IoTSecurityService& service, std::uint64_t seed) {
  const ClassifierBank& bank = service.identifier().bank();
  std::vector<std::string> names;
  for (std::size_t t = 0; t < bank.num_types(); ++t) {
    names.push_back(bank.type_name(t));
  }
  const auto corpus = sim::generate_corpus_for(names, 6, seed);
  std::vector<std::vector<fp::FixedFingerprint>> fixed;
  for (const auto& runs : corpus.by_type) {
    auto& out = fixed.emplace_back();
    for (const auto& f : runs) out.push_back(f.to_fixed());
  }
  std::vector<ClassifierBank::RetrainPlan> plans;
  for (std::size_t t = 0; t < bank.num_types(); ++t) {
    plans.push_back(
        bank.retrain_plan(t, fixed[t], negative_pool_excluding(fixed, t)));
  }
  return plans;
}

// A publisher that never swaps must be observably identical to the fixed
// model path: same event set as the serial gateway, every event stamped
// with the initial bank version.
TEST(HotSwapGateway, NoSwapMatchesFixedModelGateway) {
  const auto service = make_service();
  const auto trace = make_trace();

  SecurityGateway serial(service);
  for (const auto& tf : trace) serial.on_frame(tf.frame, tf.timestamp_us);
  serial.finish_pending_captures();
  const auto expected = event_keys(serial.events());
  ASSERT_FALSE(expected.empty());
  for (const auto& e : serial.events()) {
    EXPECT_EQ(e.model_version, 0u);  // fixed-model gateways stamp 0
  }

  ml::ForestBankPublisher publisher(
      bank_forests(service.identifier().bank()));
  ShardedGatewayConfig config;
  config.num_shards = 2;
  config.model_publisher = &publisher;
  ShardedGateway gw(service, config);
  for (const auto& tf : trace) gw.submit(tf.frame, tf.timestamp_us);
  gw.finish();

  EXPECT_EQ(event_keys(gw.events()), expected);
  const auto events = gw.events();
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_EQ(e.model_version, 1u) << "event not stamped with bank version";
  }
  EXPECT_EQ(gw.registry().gauge("hotswap.bank_epoch").value(), 1u);
}

// The model-swap invalidation regression test: while a background
// retrainer swaps banks continuously, devices onboard, depart and
// re-onboard, and every cached fast-path verdict is replayed against the
// controller's decision oracle. A swap that failed to invalidate the
// negative cache / per-shard rule caches for re-identified devices would
// surface here as an audit violation.
TEST(HotSwapGateway, SwapUnderLoadZeroAuditViolationsAtEveryShardCount) {
  const auto service = make_service();
  const auto trace = make_trace();
  const auto gw_mac = net::MacAddress::of(0x02, 0x47, 0x57, 0, 0, 1);
  const auto plans_a = make_retrain_plans(service, 77);
  const auto plans_b = make_retrain_plans(service, 78);

  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ml::ForestBankPublisher publisher(
        bank_forests(service.identifier().bank()));
    ShardedGatewayConfig config;
    config.num_shards = shards;
    config.model_publisher = &publisher;
    ShardedGateway gw(service, config);
    sdn::EnforcementAuditor auditor(gw.controller());
    gw.set_audit(auditor.hook());

    std::atomic<bool> stop_retrainer{false};
    std::thread retrainer([&] {
      std::size_t round = 0;
      while (!stop_retrainer.load(std::memory_order_acquire)) {
        const auto& plans = (round / plans_a.size()) % 2 ? plans_b : plans_a;
        const std::size_t t = round % plans.size();
        publisher.rebuild_type(t, plans[t].data, plans[t].forest);
        ++round;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    // Wave 1: onboard every device while swaps run.
    std::uint64_t now = 0;
    for (const auto& tf : trace) {
      gw.submit(tf.frame, tf.timestamp_us);
      now = std::max(now, tf.timestamp_us);
    }
    // Real departure sweep: every device idles out, rules removed.
    now += 120'000'000;
    gw.expire_departed(now, /*idle_us=*/1'000'000);

    // Make sure wave 2 is scored by a bank the classifier has not seen
    // yet, so the swap-observation path (and its invalidation fan-out)
    // definitely runs.
    const std::uint64_t retrains_floor = publisher.retrains_completed() + 2;
    while (publisher.retrains_completed() < retrains_floor) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Wave 2: the same devices re-onboard and are re-identified under
    // the retrained banks.
    const std::uint64_t kWave2Offset = 400'000'000;
    for (const auto& tf : trace) {
      gw.submit(tf.frame, tf.timestamp_us + kWave2Offset);
      now = std::max(now, tf.timestamp_us + kWave2Offset);
    }
    // Barrier sweep (idle window nothing can meet): all wave-2 verdicts
    // applied on their owning workers once it completes.
    std::vector<std::pair<net::MacAddress, net::Ipv4Address>> devices;
    now += 120'000'000;
    for (const auto& tf : trace) {
      const auto pkt = net::parse_ethernet_frame(tf.frame, tf.timestamp_us);
      const bool seen =
          std::any_of(devices.begin(), devices.end(),
                      [&](const auto& d) { return d.first == pkt.src_mac; });
      if (!seen) {
        devices.emplace_back(pkt.src_mac,
                             net::Ipv4Address::of(
                                 192, 168, 0,
                                 static_cast<std::uint8_t>(
                                     50 + devices.size())));
        gw.submit_owned(
            net::build_arp_request(pkt.src_mac, devices.back().second,
                                   net::Ipv4Address::of(192, 168, 0, 1)),
            now++);
      }
    }
    gw.expire_departed(now, /*idle_us=*/~0ull);

    // Fast-path phase: repeats of each 5-tuple hit the cached path the
    // auditor replays, while swaps continue underneath.
    now += 1'000'000;
    for (const auto& [mac, ip] : devices) {
      for (int rep = 0; rep < 4; ++rep) {
        gw.submit_owned(
            net::build_tcp_syn(mac, gw_mac, ip,
                               net::Ipv4Address::of(8, 8, 8, 8), 50000, 443,
                               1),
            now++);
      }
    }
    stop_retrainer.store(true, std::memory_order_release);
    retrainer.join();
    gw.finish();

    EXPECT_GT(auditor.checked(), 0u) << shards << " shard(s)";
    EXPECT_EQ(auditor.violations(), 0u) << shards << " shard(s)";
    for (const auto& sample : auditor.violation_samples()) {
      ADD_FAILURE() << sample;
    }

    // The swaps really reached the serving path: wave-2 events carry a
    // retrained bank's version.
    EXPECT_GE(publisher.retrains_completed(), 2u);
    std::uint64_t max_model_version = 0;
    for (const auto& e : gw.events()) {
      EXPECT_GE(e.model_version, 1u);
      EXPECT_LE(e.model_version, publisher.version());
      max_model_version = std::max(max_model_version, e.model_version);
    }
    EXPECT_GE(max_model_version, 3u)
        << "no event was scored by a retrained bank at " << shards
        << " shard(s)";

    // Publisher telemetry flows through the gateway's registry.
    EXPECT_EQ(gw.registry().counter("hotswap.retrains_completed").value(),
              publisher.retrains_completed());
    EXPECT_EQ(gw.registry().gauge("hotswap.bank_epoch").value(),
              publisher.version());
    EXPECT_EQ(
        gw.registry().histogram("hotswap.swap_latency_us").count(),
        publisher.retrains_completed());
  }
}

}  // namespace
}  // namespace iotsentinel::core
