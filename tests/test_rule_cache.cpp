#include "sdn/rule_cache.hpp"

#include <gtest/gtest.h>

namespace iotsentinel::sdn {
namespace {

using net::MacAddress;

MacAddress mac(int i) {
  return MacAddress::of(0x02, 0, 0, 0, static_cast<std::uint8_t>(i >> 8),
                        static_cast<std::uint8_t>(i));
}

EnforcementRule rule(int i, IsolationLevel level = IsolationLevel::kStrict) {
  return EnforcementRule{.device = mac(i), .level = level};
}

TEST(RuleCache, InstallAndLookup) {
  RuleCache cache;
  cache.install(rule(1, IsolationLevel::kTrusted));
  const EnforcementRule* found = cache.lookup(mac(1));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->level, IsolationLevel::kTrusted);
  EXPECT_EQ(cache.lookup(mac(2)), nullptr);
  EXPECT_EQ(cache.lookups(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(RuleCache, ReinstallReplacesRule) {
  RuleCache cache;
  cache.install(rule(1, IsolationLevel::kStrict));
  cache.install(rule(1, IsolationLevel::kTrusted));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(mac(1))->level, IsolationLevel::kTrusted);
}

TEST(RuleCache, CapacityEvictsLeastRecentlyUsed) {
  RuleCache cache(3);
  cache.install(rule(1));
  cache.install(rule(2));
  cache.install(rule(3));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(cache.lookup(mac(1)), nullptr);
  cache.install(rule(4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lookup(mac(2)), nullptr);  // evicted
  EXPECT_NE(cache.lookup(mac(1)), nullptr);
  EXPECT_NE(cache.lookup(mac(4)), nullptr);
}

TEST(RuleCache, RemoveDeletesRule) {
  RuleCache cache;
  cache.install(rule(1));
  EXPECT_TRUE(cache.remove(mac(1)));
  EXPECT_FALSE(cache.remove(mac(1)));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(mac(1)), nullptr);
}

TEST(RuleCache, ExpireUnusedDropsStaleRules) {
  RuleCache cache;
  cache.set_now(1000);
  cache.install(rule(1));
  cache.install(rule(2));
  cache.set_now(5000);
  EXPECT_NE(cache.lookup(mac(1)), nullptr);  // refresh rule 1 at t=5000
  EXPECT_EQ(cache.expire_unused(3000), 1u);  // rule 2 last used at 1000
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.lookup(mac(1)), nullptr);
}

TEST(RuleCache, MemoryGrowsWithRules) {
  RuleCache cache;
  const std::size_t empty_bytes = cache.memory_bytes();
  for (int i = 0; i < 1000; ++i) {
    auto r = rule(i, IsolationLevel::kRestricted);
    r.permitted_ips.insert(net::Ipv4Address::of(104, 0, 0, 1));
    cache.install(std::move(r));
  }
  const std::size_t full_bytes = cache.memory_bytes();
  EXPECT_GT(full_bytes, empty_bytes);
  // At least the raw entry payload must be accounted for.
  EXPECT_GT(full_bytes - empty_bytes, 1000 * sizeof(EnforcementRule) / 2);
}

TEST(RuleCache, UnboundedCacheNeverEvicts) {
  RuleCache cache;
  for (int i = 0; i < 5000; ++i) cache.install(rule(i));
  EXPECT_EQ(cache.size(), 5000u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LinearRuleStore, LookupAndReplaceSemanticsMatchCache) {
  LinearRuleStore store;
  store.install(rule(1, IsolationLevel::kStrict));
  store.install(rule(2, IsolationLevel::kTrusted));
  store.install(rule(1, IsolationLevel::kTrusted));  // replace
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.lookup(mac(1)), nullptr);
  EXPECT_EQ(store.lookup(mac(1))->level, IsolationLevel::kTrusted);
  EXPECT_EQ(store.lookup(mac(99)), nullptr);
}

}  // namespace
}  // namespace iotsentinel::sdn
