#include "ml/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace iotsentinel::ml {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedCoversSmallRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.bounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(17);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleClampsKToN) {
  Rng rng(19);
  EXPECT_EQ(rng.sample_without_replacement(5, 10).size(), 5u);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(23);
  Rng childA = parent.fork();
  Rng childB = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (childA.next_u64() == childB.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace iotsentinel::ml
