#include "sdn/flow_table.hpp"

#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::sdn {
namespace {

using net::Ipv4Address;
using net::MacAddress;

const MacAddress kA = MacAddress::of(0x02, 0xa, 0, 0, 0, 1);
const MacAddress kB = MacAddress::of(0x02, 0xb, 0, 0, 0, 2);
const Ipv4Address kIpA = Ipv4Address::of(192, 168, 0, 10);
const Ipv4Address kIpB = Ipv4Address::of(192, 168, 0, 20);

net::ParsedPacket udp_packet(std::uint16_t sport, std::uint16_t dport) {
  const auto udp = net::build_udp_payload(sport, dport, {});
  const auto frame =
      net::build_ipv4(kA, kB, kIpA, kIpB, net::ipproto::kUdp, udp);
  return net::parse_ethernet_frame(frame, 0);
}

TEST(FlowMatch, WildcardsMatchEverything) {
  FlowMatch any;
  EXPECT_TRUE(any.matches(udp_packet(1000, 2000)));
  EXPECT_EQ(any.to_string(), "any");
}

TEST(FlowMatch, FieldMismatchesReject) {
  const auto pkt = udp_packet(1000, 2000);
  FlowMatch m;
  m.src_mac = kB;  // wrong
  EXPECT_FALSE(m.matches(pkt));
  m = FlowMatch{};
  m.dst_ip = Ipv4Address::of(10, 0, 0, 1);
  EXPECT_FALSE(m.matches(pkt));
  m = FlowMatch{};
  m.ip_proto = 6;  // TCP wanted, packet is UDP
  EXPECT_FALSE(m.matches(pkt));
  m = FlowMatch{};
  m.dst_port = 2001;
  EXPECT_FALSE(m.matches(pkt));
}

TEST(FlowMatch, MicroFlowPinsAllFields) {
  const auto pkt = udp_packet(49999, 53);
  const FlowMatch m = FlowMatch::micro_flow(pkt);
  EXPECT_TRUE(m.matches(pkt));
  EXPECT_FALSE(m.matches(udp_packet(49999, 54)));
  EXPECT_EQ(m.ip_proto, std::uint8_t{17});
  const std::string s = m.to_string();
  EXPECT_NE(s.find("dl_src=02:0a"), std::string::npos);
  EXPECT_NE(s.find("tp_dst=53"), std::string::npos);
}

TEST(FlowTable, HighestPriorityWins) {
  FlowTable table;
  FlowEntry drop_all;
  drop_all.action = FlowAction::kDrop;
  drop_all.priority = 1;
  table.install(drop_all, 0);

  FlowEntry allow_dns;
  allow_dns.match.dst_port = 53;
  allow_dns.action = FlowAction::kForward;
  allow_dns.priority = 100;
  table.install(allow_dns, 0);

  EXPECT_EQ(table.process(udp_packet(40000, 53), 1),
            FlowAction::kForward);
  EXPECT_EQ(table.process(udp_packet(40000, 80), 1), FlowAction::kDrop);
}

TEST(FlowTable, EqualPriorityKeepsInsertionOrder) {
  FlowTable table;
  FlowEntry first;
  first.action = FlowAction::kForward;
  first.priority = 5;
  table.install(first, 0);
  FlowEntry second;
  second.action = FlowAction::kDrop;
  second.priority = 5;
  table.install(second, 0);
  EXPECT_EQ(table.process(udp_packet(1, 2), 1), FlowAction::kForward);
}

TEST(FlowTable, MissReturnsNulloptAndCounts) {
  FlowTable table;
  FlowEntry dns_only;
  dns_only.match.dst_port = 53;
  dns_only.action = FlowAction::kForward;
  table.install(dns_only, 0);
  EXPECT_FALSE(table.process(udp_packet(1, 80), 1).has_value());
  EXPECT_EQ(table.misses(), 1u);
  EXPECT_EQ(table.matched_packets(), 0u);
}

TEST(FlowTable, CountersTrackMatchedTraffic) {
  FlowTable table;
  FlowEntry entry;
  entry.action = FlowAction::kForward;
  table.install(entry, 0);
  const auto pkt = udp_packet(1, 2);
  table.process(pkt, 10);
  table.process(pkt, 20);
  ASSERT_EQ(table.entries().size(), 1u);
  EXPECT_EQ(table.entries()[0].packets, 2u);
  EXPECT_EQ(table.entries()[0].bytes, 2ull * pkt.wire_size);
  EXPECT_EQ(table.entries()[0].last_matched_us, 20u);
}

TEST(FlowTable, IdleEntriesExpire) {
  FlowTable table;
  FlowEntry ephemeral;
  ephemeral.action = FlowAction::kForward;
  ephemeral.idle_timeout_us = 1000;
  table.install(ephemeral, 0);
  FlowEntry permanent;
  permanent.action = FlowAction::kForward;
  permanent.idle_timeout_us = 0;
  table.install(permanent, 0);

  EXPECT_EQ(table.expire(500), 0u);
  EXPECT_EQ(table.expire(5000), 1u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, MatchRefreshesIdleTimer) {
  FlowTable table;
  FlowEntry entry;
  entry.action = FlowAction::kForward;
  entry.idle_timeout_us = 1000;
  table.install(entry, 0);
  table.process(udp_packet(1, 2), 900);
  EXPECT_EQ(table.expire(1500), 0u);  // refreshed at 900
  EXPECT_EQ(table.expire(2000), 1u);
}

TEST(FlowTable, RemoveByCookie) {
  FlowTable table;
  for (int i = 0; i < 4; ++i) {
    FlowEntry entry;
    entry.action = FlowAction::kForward;
    entry.cookie = static_cast<std::uint64_t>(i % 2);
    table.install(entry, 0);
  }
  EXPECT_EQ(table.remove_by_cookie(0), 2u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.remove_by_cookie(7), 0u);
}

}  // namespace
}  // namespace iotsentinel::sdn
