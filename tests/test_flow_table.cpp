#include "sdn/flow_table.hpp"

#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::sdn {
namespace {

using net::Ipv4Address;
using net::MacAddress;

const MacAddress kA = MacAddress::of(0x02, 0xa, 0, 0, 0, 1);
const MacAddress kB = MacAddress::of(0x02, 0xb, 0, 0, 0, 2);
const Ipv4Address kIpA = Ipv4Address::of(192, 168, 0, 10);
const Ipv4Address kIpB = Ipv4Address::of(192, 168, 0, 20);

net::ParsedPacket udp_packet(std::uint16_t sport, std::uint16_t dport) {
  const auto udp = net::build_udp_payload(sport, dport, {});
  const auto frame =
      net::build_ipv4(kA, kB, kIpA, kIpB, net::ipproto::kUdp, udp);
  return net::parse_ethernet_frame(frame, 0);
}

TEST(FlowMatch, WildcardsMatchEverything) {
  FlowMatch any;
  EXPECT_TRUE(any.matches(udp_packet(1000, 2000)));
  EXPECT_EQ(any.to_string(), "any");
}

TEST(FlowMatch, FieldMismatchesReject) {
  const auto pkt = udp_packet(1000, 2000);
  FlowMatch m;
  m.src_mac = kB;  // wrong
  EXPECT_FALSE(m.matches(pkt));
  m = FlowMatch{};
  m.dst_ip = Ipv4Address::of(10, 0, 0, 1);
  EXPECT_FALSE(m.matches(pkt));
  m = FlowMatch{};
  m.ip_proto = 6;  // TCP wanted, packet is UDP
  EXPECT_FALSE(m.matches(pkt));
  m = FlowMatch{};
  m.dst_port = 2001;
  EXPECT_FALSE(m.matches(pkt));
}

TEST(FlowMatch, MicroFlowPinsAllFields) {
  const auto pkt = udp_packet(49999, 53);
  const FlowMatch m = FlowMatch::micro_flow(pkt);
  EXPECT_TRUE(m.matches(pkt));
  EXPECT_FALSE(m.matches(udp_packet(49999, 54)));
  EXPECT_EQ(m.ip_proto, std::uint8_t{17});
  const std::string s = m.to_string();
  EXPECT_NE(s.find("dl_src=02:0a"), std::string::npos);
  EXPECT_NE(s.find("tp_dst=53"), std::string::npos);
}

TEST(FlowTable, HighestPriorityWins) {
  FlowTable table;
  FlowEntry drop_all;
  drop_all.action = FlowAction::kDrop;
  drop_all.priority = 1;
  table.install(drop_all, 0);

  FlowEntry allow_dns;
  allow_dns.match.dst_port = 53;
  allow_dns.action = FlowAction::kForward;
  allow_dns.priority = 100;
  table.install(allow_dns, 0);

  EXPECT_EQ(table.process(udp_packet(40000, 53), 1),
            FlowAction::kForward);
  EXPECT_EQ(table.process(udp_packet(40000, 80), 1), FlowAction::kDrop);
}

TEST(FlowTable, EqualPriorityKeepsInsertionOrder) {
  FlowTable table;
  FlowEntry first;
  first.action = FlowAction::kForward;
  first.priority = 5;
  table.install(first, 0);
  FlowEntry second;
  second.action = FlowAction::kDrop;
  second.priority = 5;
  table.install(second, 0);
  EXPECT_EQ(table.process(udp_packet(1, 2), 1), FlowAction::kForward);
}

TEST(FlowTable, MissReturnsNulloptAndCounts) {
  FlowTable table;
  FlowEntry dns_only;
  dns_only.match.dst_port = 53;
  dns_only.action = FlowAction::kForward;
  table.install(dns_only, 0);
  EXPECT_FALSE(table.process(udp_packet(1, 80), 1).has_value());
  EXPECT_EQ(table.misses(), 1u);
  EXPECT_EQ(table.matched_packets(), 0u);
}

TEST(FlowTable, CountersTrackMatchedTraffic) {
  FlowTable table;
  FlowEntry entry;
  entry.action = FlowAction::kForward;
  table.install(entry, 0);
  const auto pkt = udp_packet(1, 2);
  table.process(pkt, 10);
  table.process(pkt, 20);
  ASSERT_EQ(table.entries().size(), 1u);
  EXPECT_EQ(table.entries()[0].packets, 2u);
  EXPECT_EQ(table.entries()[0].bytes, 2ull * pkt.wire_size);
  EXPECT_EQ(table.entries()[0].last_matched_us, 20u);
}

TEST(FlowTable, IdleEntriesExpire) {
  FlowTable table;
  FlowEntry ephemeral;
  ephemeral.action = FlowAction::kForward;
  ephemeral.idle_timeout_us = 1000;
  table.install(ephemeral, 0);
  FlowEntry permanent;
  permanent.action = FlowAction::kForward;
  permanent.idle_timeout_us = 0;
  table.install(permanent, 0);

  EXPECT_EQ(table.expire(500), 0u);
  EXPECT_EQ(table.expire(5000), 1u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, MatchRefreshesIdleTimer) {
  FlowTable table;
  FlowEntry entry;
  entry.action = FlowAction::kForward;
  entry.idle_timeout_us = 1000;
  table.install(entry, 0);
  table.process(udp_packet(1, 2), 900);
  EXPECT_EQ(table.expire(1500), 0u);  // refreshed at 900
  EXPECT_EQ(table.expire(2000), 1u);
}

TEST(FlowTable, RemoveByCookie) {
  FlowTable table;
  for (int i = 0; i < 4; ++i) {
    FlowEntry entry;
    entry.action = FlowAction::kForward;
    entry.cookie = static_cast<std::uint64_t>(i % 2);
    table.install(entry, 0);
  }
  EXPECT_EQ(table.remove_by_cookie(0), 2u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.remove_by_cookie(7), 0u);
}

// --- tie-break and two-tier semantics ---------------------------------------

// Locks in the tie rule for the hashed rewrite: equal priorities resolve
// by insertion order (older entry wins) in the tier-2 scan, in the tier-1
// cached verdict, and again after the winner is removed.
TEST(FlowTable, EqualPriorityTieIsStableAcrossTiersAndRemoval) {
  FlowTable table;
  FlowEntry first;
  first.match.dst_port = 53;
  first.action = FlowAction::kForward;
  first.priority = 5;
  first.cookie = 1;
  table.install(first, 0);
  FlowEntry second;
  second.match.dst_port = 53;
  second.action = FlowAction::kDrop;
  second.priority = 5;
  second.cookie = 2;
  table.install(second, 0);
  FlowEntry lower;
  lower.action = FlowAction::kDrop;
  lower.priority = 1;
  lower.cookie = 3;
  table.install(lower, 0);

  const auto pkt = udp_packet(40000, 53);
  EXPECT_EQ(table.process(pkt, 1), FlowAction::kForward);  // tier-2 scan
  EXPECT_EQ(table.process(pkt, 2), FlowAction::kForward);  // tier-1 hit
  EXPECT_EQ(table.tier1_hits(), 1u);

  // Snapshot order mirrors the scan order: priority desc, then insertion.
  const auto snapshot = table.entries();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].cookie, 1u);
  EXPECT_EQ(snapshot[1].cookie, 2u);
  EXPECT_EQ(snapshot[2].cookie, 3u);

  // Removing the older winner promotes the next same-priority entry.
  EXPECT_EQ(table.remove_by_cookie(1), 1u);
  EXPECT_EQ(table.process(pkt, 3), FlowAction::kDrop);
  EXPECT_EQ(table.process(pkt, 4), FlowAction::kDrop);
}

TEST(FlowTable, Tier1ServesRepeatPacketsWithoutRescan) {
  FlowTable table;
  FlowEntry entry;
  entry.match.dst_port = 53;
  entry.action = FlowAction::kForward;
  table.install(entry, 0);

  const auto pkt = udp_packet(40000, 53);
  EXPECT_EQ(table.process(pkt, 1), FlowAction::kForward);
  EXPECT_EQ(table.tier2_scans(), 1u);
  EXPECT_EQ(table.tier1_hits(), 0u);
  for (std::uint64_t t = 2; t < 10; ++t) {
    EXPECT_EQ(table.process(pkt, t), FlowAction::kForward);
  }
  EXPECT_EQ(table.tier2_scans(), 1u);  // scanned exactly once
  EXPECT_EQ(table.tier1_hits(), 8u);
  EXPECT_EQ(table.matched_packets(), 9u);
  const auto snapshot = table.entries();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].packets, 9u);  // tier-1 hits update the entry
  EXPECT_EQ(snapshot[0].last_matched_us, 9u);
}

TEST(FlowTable, Tier1InvalidatedWhenBackingWildcardRemoved) {
  FlowTable table;
  FlowEntry wildcard;
  wildcard.match.dst_port = 53;
  wildcard.action = FlowAction::kForward;
  wildcard.cookie = 42;
  table.install(wildcard, 0);

  const auto pkt = udp_packet(40000, 53);
  EXPECT_EQ(table.process(pkt, 1), FlowAction::kForward);
  EXPECT_EQ(table.process(pkt, 2), FlowAction::kForward);  // cached
  EXPECT_EQ(table.remove_by_cookie(42), 1u);
  // The cached tier-1 verdict must not outlive its backing entry.
  EXPECT_FALSE(table.process(pkt, 3).has_value());
  EXPECT_EQ(table.misses(), 1u);
}

TEST(FlowTable, WildcardInstallEvictsCoveredCachedWinners) {
  FlowTable table;
  FlowEntry allow;
  allow.match.dst_port = 53;
  allow.action = FlowAction::kForward;
  allow.priority = 10;
  table.install(allow, 0);

  const auto pkt = udp_packet(40000, 53);
  EXPECT_EQ(table.process(pkt, 1), FlowAction::kForward);
  EXPECT_EQ(table.process(pkt, 2), FlowAction::kForward);  // cached

  // A higher-priority drop-all must take effect immediately, even for
  // tuples whose verdict tier 1 already cached.
  FlowEntry deny;
  deny.action = FlowAction::kDrop;
  deny.priority = 100;
  table.install(deny, 3);
  EXPECT_EQ(table.process(pkt, 4), FlowAction::kDrop);

  // An equal-priority late-comer must NOT steal cached verdicts (older
  // entry wins ties), and a lower-priority one must not either.
  FlowEntry tie;
  tie.action = FlowAction::kForward;
  tie.priority = 100;
  table.install(tie, 5);
  EXPECT_EQ(table.process(pkt, 6), FlowAction::kDrop);
}

TEST(FlowTable, ExactInstallInvalidatesOnlyItsOwnTuple) {
  FlowTable table;
  FlowEntry allow_dns;
  allow_dns.match.dst_port = 53;
  allow_dns.action = FlowAction::kForward;
  allow_dns.priority = 1;
  table.install(allow_dns, 0);

  const auto pkt_a = udp_packet(40000, 53);
  const auto pkt_b = udp_packet(40001, 53);
  EXPECT_EQ(table.process(pkt_a, 1), FlowAction::kForward);
  EXPECT_EQ(table.process(pkt_b, 2), FlowAction::kForward);
  EXPECT_EQ(table.tier2_scans(), 2u);

  // Exact micro-flow drop for tuple A at higher priority: A flips, B's
  // cached verdict stays valid (no rescan).
  FlowEntry exact;
  exact.match = FlowMatch::micro_flow(pkt_a);
  exact.action = FlowAction::kDrop;
  exact.priority = 50;
  table.install(exact, 3);
  EXPECT_EQ(table.process(pkt_a, 4), FlowAction::kDrop);
  EXPECT_EQ(table.process(pkt_b, 5), FlowAction::kForward);
  EXPECT_EQ(table.tier2_scans(), 3u);  // only A rescanned
}

// --- expiry / removal edge cases --------------------------------------------

TEST(FlowTable, PermanentEntriesNeverEnterTheDeadlineHeap) {
  FlowTable table;
  FlowEntry permanent;
  permanent.action = FlowAction::kForward;
  permanent.idle_timeout_us = 0;
  table.install(permanent, 0);
  EXPECT_EQ(table.deadline_heap_size(), 0u);

  FlowEntry timed;
  timed.action = FlowAction::kForward;
  timed.idle_timeout_us = 1000;
  table.install(timed, 0);
  EXPECT_EQ(table.deadline_heap_size(), 1u);

  // Arbitrarily far future: only the timed entry ever expires.
  EXPECT_EQ(table.expire(1'000'000'000'000ull), 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.deadline_heap_size(), 0u);
  EXPECT_EQ(table.expire(2'000'000'000'000ull), 0u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, RemoveByCookieRacingPendingHeapDeadline) {
  FlowTable table;
  FlowEntry entry;
  entry.action = FlowAction::kForward;
  entry.idle_timeout_us = 1000;
  entry.cookie = 9;
  table.install(entry, 0);
  EXPECT_EQ(table.deadline_heap_size(), 1u);

  // Cookie removal first; the stale heap record must be discarded on pop,
  // not double-removed or crash on the recycled slot.
  EXPECT_EQ(table.remove_by_cookie(9), 1u);
  EXPECT_EQ(table.expire(5000), 0u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.deadline_heap_size(), 0u);

  // The recycled slot gets a fresh identity: a new entry with its own
  // deadline is unaffected by the old record's history.
  FlowEntry fresh;
  fresh.action = FlowAction::kDrop;
  fresh.idle_timeout_us = 500;
  fresh.cookie = 9;
  table.install(fresh, 6000);
  EXPECT_EQ(table.expire(6400), 0u);
  EXPECT_EQ(table.expire(6500), 1u);
}

TEST(FlowTable, ReinstallIdenticalMicroFlowAfterExpiry) {
  FlowTable table;
  const auto pkt = udp_packet(50000, 443);

  FlowEntry entry;
  entry.match = FlowMatch::micro_flow(pkt);
  entry.action = FlowAction::kForward;
  entry.idle_timeout_us = 1000;
  table.install(entry, 0);
  EXPECT_EQ(table.process(pkt, 10), FlowAction::kForward);  // caches in tier 1
  EXPECT_EQ(table.expire(5000), 1u);
  EXPECT_FALSE(table.process(pkt, 5001).has_value());

  // Same micro-flow re-installed (the controller does this on the next
  // packet-in): served again, with fresh per-entry statistics.
  FlowEntry again;
  again.match = FlowMatch::micro_flow(pkt);
  again.action = FlowAction::kForward;
  again.idle_timeout_us = 1000;
  table.install(again, 6000);
  EXPECT_EQ(table.process(pkt, 6010), FlowAction::kForward);
  EXPECT_EQ(table.process(pkt, 6020), FlowAction::kForward);
  const auto snapshot = table.entries();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].packets, 2u);
  EXPECT_EQ(snapshot[0].installed_us, 6000u);
}

TEST(FlowTable, MatchViaTier1RefreshesIdleTimer) {
  FlowTable table;
  FlowEntry entry;
  entry.match.dst_port = 53;
  entry.action = FlowAction::kForward;
  entry.idle_timeout_us = 1000;
  table.install(entry, 0);

  const auto pkt = udp_packet(40000, 53);
  EXPECT_EQ(table.process(pkt, 100), FlowAction::kForward);  // tier-2
  EXPECT_EQ(table.process(pkt, 900), FlowAction::kForward);  // tier-1
  EXPECT_EQ(table.expire(1500), 0u);  // refreshed at 900 via tier 1
  EXPECT_EQ(table.expire(1900), 1u);
}

// Adversarial tuple cardinality: one spoofing device spraying random
// ports through a permanent wildcard must not grow the tier-1 cache (and
// thus gateway memory) without bound — the cache flushes at its cap.
TEST(FlowTable, Tier1CacheIsBoundedUnderTupleSpray) {
  FlowTable table;
  FlowEntry allow_all;
  allow_all.action = FlowAction::kForward;
  allow_all.priority = 1;
  table.install(allow_all, 0);

  net::ParsedPacket pkt = udp_packet(1, 2);
  const std::size_t distinct_tuples = FlowTable::kTier1MaxBuckets + 20'000;
  for (std::size_t i = 0; i < distinct_tuples; ++i) {
    pkt.src_port = static_cast<std::uint16_t>(i);
    pkt.dst_port = static_cast<std::uint16_t>(i >> 16 << 1);
    pkt.src_ip = net::IpAddress(net::Ipv4Address(
        0x0a000000u + static_cast<std::uint32_t>(i)));
    EXPECT_EQ(table.process(pkt, i), FlowAction::kForward);
  }
  EXPECT_EQ(table.matched_packets(), distinct_tuples);
  // Live cache never exceeds half the bucket cap; memory stays small.
  EXPECT_LE(table.tier1_size(), FlowTable::kTier1MaxBuckets / 2);
  EXPECT_LT(table.memory_bytes(), 8u * 1024 * 1024);

  // The cache still works after flushes: a repeated tuple hits tier 1.
  pkt.src_port = 7;
  pkt.dst_port = 9;
  table.process(pkt, distinct_tuples + 1);
  const auto hits_before = table.tier1_hits();
  table.process(pkt, distinct_tuples + 2);
  EXPECT_EQ(table.tier1_hits(), hits_before + 1);
}

TEST(FlowTable, MemoryBytesAccountsForAllStructures) {
  FlowTable table;
  const std::size_t empty = table.memory_bytes();
  EXPECT_GE(empty, sizeof(FlowTable));

  for (int i = 0; i < 256; ++i) {
    FlowEntry entry;
    entry.match.dst_port = static_cast<std::uint16_t>(1000 + i);
    entry.action = FlowAction::kForward;
    entry.idle_timeout_us = 1000;
    entry.cookie = static_cast<std::uint64_t>(i);
    table.install(entry, 0);
  }
  // Populate tier 1 too.
  for (int i = 0; i < 256; ++i) {
    table.process(udp_packet(40000, static_cast<std::uint16_t>(1000 + i)), 1);
  }
  const std::size_t populated = table.memory_bytes();
  // Entry pool + order + heap + cookie index + tier-1 buckets all count.
  EXPECT_GT(populated, empty + 256 * sizeof(FlowEntry));
}

}  // namespace
}  // namespace iotsentinel::sdn
