// telemetry::Registry contract tests: bucket math, monotone publish,
// snapshot consistency under concurrent writers, deterministic text
// rendering, and the docs/OBSERVABILITY.md worked example (the doc and
// the renderer cannot drift apart silently).
#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace iotsentinel::telemetry {
namespace {

TEST(Telemetry, HistogramBucketIndexEdges) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Histogram::bucket_index(2), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 2u);
  EXPECT_EQ(Histogram::bucket_index(5), 3u);
  // Every bucket's upper bound lands in that bucket; bound+1 in the next.
  for (std::size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_bound(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_bound(i) + 1), i + 1);
  }
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kNumBuckets - 1);
}

TEST(Telemetry, HistogramCountEqualsBucketSum) {
  Histogram h;
  const std::uint64_t samples[] = {0, 1, 2, 100, 150, 200, 1u << 20, ~0ull};
  std::uint64_t want_sum = 0;
  for (const auto s : samples) {
    h.record(s);
    want_sum += s;
  }
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), want_sum);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h.bucket(i);
  }
  EXPECT_EQ(bucket_total, h.count());
}

TEST(Telemetry, CounterPublishIsMonotone) {
  Counter c;
  c.publish(5);
  EXPECT_EQ(c.value(), 5u);
  c.publish(3);  // stale publish must not move the counter backwards
  EXPECT_EQ(c.value(), 5u);
  c.publish(9);
  EXPECT_EQ(c.value(), 9u);
  c.add(1);
  EXPECT_EQ(c.value(), 10u);
}

TEST(Telemetry, GaugeSetMax) {
  Gauge g;
  g.set_max(7);
  g.set_max(3);
  EXPECT_EQ(g.value(), 7u);
  g.set(2);  // plain set may lower it (it is a level, not a counter)
  EXPECT_EQ(g.value(), 2u);
}

TEST(Telemetry, RegistryReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.counter("a");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  // Interleave creations to force map growth, then re-resolve.
  for (int i = 0; i < 100; ++i) {
    (void)reg.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(&a, &reg.counter("a"));
  EXPECT_EQ(&g, &reg.gauge("g"));
  EXPECT_EQ(&h, &reg.histogram("h"));
}

TEST(Telemetry, SnapshotMergesScalarsInNameOrder) {
  Registry reg;
  reg.counter("b").add(2);
  reg.gauge("a").set(1);
  reg.counter("d").add(4);
  reg.gauge("c").set(3);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.scalars.size(), 4u);
  EXPECT_EQ(snap.scalars[0].name, "a");
  EXPECT_EQ(snap.scalars[0].type, MetricType::kGauge);
  EXPECT_EQ(snap.scalars[1].name, "b");
  EXPECT_EQ(snap.scalars[1].type, MetricType::kCounter);
  EXPECT_EQ(snap.scalars[2].name, "c");
  EXPECT_EQ(snap.scalars[3].name, "d");
  EXPECT_EQ(snap.scalars[3].value, 4u);
}

// The snapshot-consistency contract under live writers: counters are
// monotone across successive snapshots, and a histogram's count always
// equals the sum of the buckets reported beside it (it is derived from
// the same reads).
TEST(Telemetry, SnapshotConsistentUnderConcurrentWriters) {
  Registry reg;
  Counter& adds = reg.counter("writers.adds");
  Counter& published = reg.counter("writers.published");
  Histogram& hist = reg.histogram("writers.latency");
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 1; i <= kPerWriter; ++i) {
        adds.add(1);
        hist.record(i % 512);
        // Monotone totals from every writer: the max-CAS keeps the
        // published counter monotone even with racing staler values.
        published.publish(i * (static_cast<std::uint64_t>(w) + 1));
      }
    });
  }
  go.store(true, std::memory_order_release);

  std::uint64_t last_adds = 0;
  std::uint64_t last_published = 0;
  std::uint64_t last_hist_count = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Snapshot snap = reg.snapshot();
    std::uint64_t cur_adds = 0, cur_published = 0;
    for (const auto& s : snap.scalars) {
      if (s.name == "writers.adds") cur_adds = s.value;
      if (s.name == "writers.published") cur_published = s.value;
    }
    ASSERT_EQ(snap.histograms.size(), 1u);
    const auto& h = snap.histograms[0];
    std::uint64_t bucket_total = 0;
    for (const auto b : h.buckets) bucket_total += b;
    EXPECT_EQ(h.count, bucket_total);  // count derives from these buckets
    EXPECT_GE(cur_adds, last_adds) << "counter went backwards";
    EXPECT_GE(cur_published, last_published) << "publish went backwards";
    EXPECT_GE(h.count, last_hist_count) << "histogram went backwards";
    last_adds = cur_adds;
    last_published = cur_published;
    last_hist_count = h.count;
  }
  for (auto& t : threads) t.join();

  // Quiesced: totals are exact.
  EXPECT_EQ(adds.value(), kWriters * kPerWriter);
  EXPECT_EQ(published.value(), kPerWriter * kWriters);  // max over writers
  EXPECT_EQ(hist.count(), kWriters * kPerWriter);
  const Snapshot final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.histograms[0].count, kWriters * kPerWriter);
}

TEST(Telemetry, TextReportFormat) {
  Registry reg;
  reg.counter("requests").add(12);
  reg.gauge("depth").set(5);
  Histogram& h = reg.histogram("lat");
  h.record(1);
  h.record(3);
  h.record(3);
  EXPECT_EQ(reg.text_report(),
            "gauge depth 5\n"
            "counter requests 12\n"
            "histogram lat count=3 sum=7\n"
            "  le=1 1\n"
            "  le=4 2\n");
}

TEST(Telemetry, TextReportOverflowBucketRendersInf) {
  Registry reg;
  reg.histogram("big").record(~std::uint64_t{0});
  const std::string report = reg.text_report();
  EXPECT_NE(report.find("  le=inf 1\n"), std::string::npos) << report;
}

// ---------------------------------------------------------------------------
// docs/OBSERVABILITY.md worked example: the fenced ```text block in the
// "Text report" section must be byte-identical to what the renderer
// produces for the documented inputs.

std::string docs_worked_example() {
  std::ifstream in(IOTSENTINEL_DOCS_DIR "/OBSERVABILITY.md");
  EXPECT_TRUE(in.good()) << "cannot open docs/OBSERVABILITY.md";
  std::string line, example;
  bool in_block = false;
  while (std::getline(in, line)) {
    if (!in_block && line == "```text") {
      in_block = true;
    } else if (in_block && line == "```") {
      break;
    } else if (in_block) {
      example += line + "\n";
    }
  }
  return example;
}

TEST(TelemetryDocs, WorkedExampleMatchesRenderer) {
  const std::string example = docs_worked_example();
  ASSERT_FALSE(example.empty()) << "no ```text block in docs/OBSERVABILITY.md";

  // The documented scenario: one controller counter, one shard gauge and
  // counter, and a classifier latency histogram fed 100us, 150us, 200us.
  Registry reg;
  reg.counter("controller.packet_ins").add(42);
  reg.gauge("gateway.shard0.flowtable.live_flows").set(3);
  reg.counter("gateway.shard0.switch.slow_path").add(7);
  Histogram& lat = reg.histogram("classifier.batch_latency_us");
  lat.record(100);
  lat.record(150);
  lat.record(200);

  EXPECT_EQ(reg.text_report(), example);
}

}  // namespace
}  // namespace iotsentinel::telemetry
