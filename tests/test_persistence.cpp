// Model-persistence round trips: tree, forest, bank and full identifier
// must reload byte-for-byte behaviourally identical, every loader must
// reject corrupted input instead of crashing, and the committed golden
// legacy blob pins the v0 migration path. The exhaustive corruption
// sweeps live in test_model_store_corruption.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "core/model_store.hpp"
#include "ml/random_forest.hpp"
#include "net/crc32.hpp"
#include "simnet/corpus.hpp"

namespace iotsentinel {
namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Identical identification behaviour on fresh probes of every type.
void expect_equivalent(const core::DeviceIdentifier& a,
                       const core::DeviceIdentifier& b,
                       const std::vector<std::string>& type_names,
                       std::uint64_t probe_seed) {
  ASSERT_EQ(a.num_types(), b.num_types());
  const auto probes = sim::generate_corpus_for(type_names, 3, probe_seed);
  for (const auto& runs : probes.by_type) {
    for (const auto& f : runs) {
      const auto ra = a.identify(f);
      const auto rb = b.identify(f);
      EXPECT_EQ(ra.type_index, rb.type_index);
      EXPECT_EQ(ra.candidates, rb.candidates);
      EXPECT_EQ(ra.is_new_type, rb.is_new_type);
      EXPECT_EQ(ra.used_discrimination, rb.used_discrimination);
    }
  }
}

ml::Dataset blob_data(std::uint64_t seed) {
  ml::Dataset d(4);
  ml::Rng rng(seed);
  for (int i = 0; i < 60; ++i) {
    float row0[4];
    float row1[4];
    for (int f = 0; f < 4; ++f) {
      row0[f] = static_cast<float>(rng.uniform(0.0, 1.0));
      row1[f] = static_cast<float>(rng.uniform(2.0, 3.0));
    }
    d.add(row0, 0);
    d.add(row1, 1);
  }
  return d;
}

TEST(Persistence, ForestRoundTripPredictsIdentically) {
  const ml::Dataset d = blob_data(1);
  ml::RandomForest forest;
  forest.train(d, {.num_trees = 12, .seed = 9});

  net::ByteWriter w;
  forest.save(w);
  net::ByteReader r(w.data());
  auto loaded = ml::RandomForest::load(r);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(loaded->tree_count(), forest.tree_count());
  EXPECT_EQ(loaded->num_classes(), forest.num_classes());

  ml::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    float probe[4];
    for (auto& x : probe) x = static_cast<float>(rng.uniform(-1.0, 4.0));
    EXPECT_DOUBLE_EQ(loaded->positive_score(probe),
                     forest.positive_score(probe));
  }
  // Importances survive too.
  const auto a = forest.feature_importances();
  const auto b = loaded->feature_importances();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a.size(); ++f) EXPECT_NEAR(a[f], b[f], 1e-6);
}

TEST(Persistence, ForestLoadRejectsCorruption) {
  const ml::Dataset d = blob_data(2);
  ml::RandomForest forest;
  forest.train(d, {.num_trees = 4, .seed = 9});
  net::ByteWriter w;
  forest.save(w);
  auto blob = w.take();

  // Bad magic.
  auto bad = blob;
  bad[0] = 'X';
  net::ByteReader r1(bad);
  EXPECT_FALSE(ml::RandomForest::load(r1).has_value());

  // Truncations at every prefix of the first 200 bytes.
  for (std::size_t cut = 0; cut < std::min<std::size_t>(blob.size(), 200);
       cut += 7) {
    net::ByteReader r(std::span<const std::uint8_t>(blob.data(), cut));
    EXPECT_FALSE(ml::RandomForest::load(r).has_value()) << "cut=" << cut;
  }
}

TEST(Persistence, IdentifierRoundTripIdentifiesIdentically) {
  const auto corpus = sim::generate_corpus_for(
      {"Aria", "HueBridge", "EdimaxCam", "SmarterCoffee", "iKettle2"}, 12,
      71);
  core::IdentifierConfig config;
  config.bank.accept_threshold = core::kPaperCalibratedAcceptThreshold;
  core::DeviceIdentifier identifier(config);
  identifier.train(corpus.type_names, corpus.by_type);

  const auto blob = core::serialize_identifier(identifier);
  auto loaded = core::deserialize_identifier(blob);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_types(), identifier.num_types());

  // Fresh probes of every type must give identical results through both.
  const auto probes = sim::generate_corpus_for(
      {"Aria", "HueBridge", "EdimaxCam", "SmarterCoffee", "iKettle2"}, 3,
      72);
  for (const auto& runs : probes.by_type) {
    for (const auto& f : runs) {
      const auto a = identifier.identify(f);
      const auto b = loaded->identify(f);
      EXPECT_EQ(a.type_index, b.type_index);
      EXPECT_EQ(a.candidates, b.candidates);
      EXPECT_EQ(a.is_new_type, b.is_new_type);
      EXPECT_EQ(a.used_discrimination, b.used_discrimination);
    }
  }
}

TEST(Persistence, DeserializeRejectsTrailingGarbage) {
  const auto corpus = sim::generate_corpus_for({"Aria", "HueBridge"}, 6, 73);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  auto blob = core::serialize_identifier(identifier);
  blob.push_back(0xff);
  EXPECT_FALSE(core::deserialize_identifier(blob).has_value());
}

TEST(Persistence, FileRoundTrip) {
  const auto corpus = sim::generate_corpus_for({"Aria", "MAXGateway"}, 8, 74);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);

  const std::string path = ::testing::TempDir() + "/iots_model.bin";
  ASSERT_TRUE(core::save_identifier_file(path, identifier));
  auto loaded = core::load_identifier_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_types(), 2u);
  EXPECT_EQ(loaded->bank().type_name(0), "Aria");
  EXPECT_EQ(loaded->references(0).size(), identifier.references(0).size());
}

TEST(Persistence, MissingFileIsNullopt) {
  const auto result = core::load_identifier_file("/nonexistent/model.bin");
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, core::LoadError::Kind::kIoError);
  EXPECT_EQ(result.error().section, "file");
}

TEST(Persistence, SaveLeavesNoTempFileAndReplacesAtomically) {
  const auto corpus = sim::generate_corpus_for({"Aria"}, 6, 75);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);

  const std::string dir = ::testing::TempDir() + "/iots_atomic_dir";
  std::filesystem::create_directory(dir);
  const std::string path = dir + "/model.iots";
  const auto only_the_artifact = [&] {
    std::vector<std::string> names;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      names.push_back(e.path().filename().string());
    }
    return names == std::vector<std::string>{"model.iots"};
  };
  ASSERT_TRUE(core::save_identifier_file(path, identifier));
  EXPECT_TRUE(only_the_artifact())
      << "temp files must not survive a successful save";
  // Overwriting an existing artifact goes through the same tmp+rename.
  ASSERT_TRUE(core::save_identifier_file(path, identifier));
  EXPECT_TRUE(only_the_artifact());
  auto loaded = core::load_identifier_file(path);
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(loaded.has_value()) << core::describe(loaded.error());
  EXPECT_EQ(loaded->num_types(), 1u);
}

TEST(Persistence, SaveToUnwritableDirectoryFailsCleanly) {
  const auto corpus = sim::generate_corpus_for({"Aria"}, 4, 76);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  EXPECT_FALSE(
      core::save_identifier_file("/nonexistent/dir/model.bin", identifier));
}

TEST(Persistence, SavePreservesStricterPermissionsOfExistingArtifact) {
  const auto corpus = sim::generate_corpus_for({"Aria"}, 4, 79);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);

  const std::string path = ::testing::TempDir() + "/iots_mode.bin";
  ASSERT_TRUE(core::save_identifier_file(path, identifier));
  std::filesystem::permissions(path, std::filesystem::perms::owner_read |
                                         std::filesystem::perms::owner_write);
  ASSERT_TRUE(core::save_identifier_file(path, identifier));
  const auto mode = std::filesystem::status(path).permissions();
  std::remove(path.c_str());
  EXPECT_EQ(mode, std::filesystem::perms::owner_read |
                      std::filesystem::perms::owner_write)
      << "re-save must not loosen an operator-tightened artifact mode";
}

// ---- crafted-blob hardening: structural bounds beyond the checksums ----

TEST(Persistence, ForestLoadRejectsAbsurdClassCount) {
  // Checksums only catch *accidental* corruption; a crafted record with
  // a huge num_classes must fail structural validation, not allocate.
  net::ByteWriter w;
  w.bytes(std::string("IRF2"));
  w.u32be(8);           // payload length
  w.u32be(0x7fffffff);  // num_classes
  w.u32be(0);           // tree_count
  net::ByteReader r(w.data());
  EXPECT_FALSE(ml::RandomForest::load(r).has_value());
}

TEST(Persistence, TreeLoadRejectsOutOfRangeSplitFeature) {
  // An internal node whose split feature exceeds the feature dimension
  // (recorded by the importances array) would read out of bounds at
  // serve time; the loader must reject it.
  const auto craft = [](std::uint32_t feature) {
    net::ByteWriter w;
    w.u32be(2);  // num_classes
    w.u32be(2);  // num_importances == feature dimension
    w.f32be(0.5f);
    w.f32be(0.5f);
    w.u32be(3);  // node_count: one split, two leaves
    w.u32be(feature);
    w.f32be(1.0f);
    w.u32be(1);  // left
    w.u32be(2);  // right
    w.u32be(0);  // counts: internal nodes store no histogram
    for (int leaf = 0; leaf < 2; ++leaf) {
      w.u32be(0xffffffff);  // feature (unused in leaves)
      w.f32be(0.0f);
      w.u32be(0xffffffff);  // left = -1
      w.u32be(0xffffffff);  // right = -1
      w.u32be(2);           // counts
      w.u32be(leaf == 0 ? 3u : 0u);
      w.u32be(leaf == 0 ? 0u : 3u);
    }
    return w.take();
  };
  const auto good = craft(1);
  net::ByteReader rg(good);
  EXPECT_TRUE(ml::DecisionTree::load(rg).has_value());
  const auto bad = craft(2);  // == feature dimension: out of range
  net::ByteReader rb(bad);
  EXPECT_FALSE(ml::DecisionTree::load(rb).has_value());
}

// ---- golden legacy fixture: the committed v0 blob stays loadable ----

TEST(Persistence, GoldenLegacyV0FixtureMigratesBitIdentically) {
  const auto fixture =
      read_file(std::string(IOTSENTINEL_TEST_DATA_DIR) + "/model_v0_legacy.bin");
  ASSERT_FALSE(fixture.empty()) << "fixture missing from tests/data";
  ASSERT_EQ(fixture[0], 'I');  // legacy blobs are bare "IID1" records

  auto legacy = core::load_identifier(fixture);
  ASSERT_TRUE(legacy.has_value()) << core::describe(legacy.error());
  EXPECT_EQ(legacy->num_types(), 2u);
  EXPECT_EQ(legacy->bank().type_name(0), "Aria");
  EXPECT_EQ(legacy->bank().type_name(1), "HueBridge");
  EXPECT_EQ(legacy->config().references_per_type, 2u);
  EXPECT_EQ(legacy->references(0).size(), 2u);

  // Migration is one re-save: serialize to IOTS1, reload, and require the
  // reload to re-serialize bit-identically — the loader lost nothing.
  const auto migrated = core::serialize_identifier(*legacy);
  auto reloaded = core::load_identifier(migrated);
  ASSERT_TRUE(reloaded.has_value()) << core::describe(reloaded.error());
  EXPECT_EQ(core::serialize_identifier(*reloaded), migrated);
  expect_equivalent(*legacy, *reloaded, {"Aria", "HueBridge"}, 42);
}

TEST(Persistence, LegacyBlobWithTrailingBytesIsTypedTrailingData) {
  auto fixture =
      read_file(std::string(IOTSENTINEL_TEST_DATA_DIR) + "/model_v0_legacy.bin");
  ASSERT_FALSE(fixture.empty());
  fixture.push_back(0x00);
  const auto result = core::load_identifier(fixture);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, core::LoadError::Kind::kTrailingData);
  EXPECT_EQ(result.error().section, "IID1");
}

// ---- forward compatibility ----

/// Rebuilds an IOTS1 container with one extra (unknown to this reader)
/// section appended, recomputing the TOC, its checksum and the trailer —
/// the blob a future writer with an additional section would produce.
std::vector<std::uint8_t> with_extra_section(
    const std::vector<std::uint8_t>& blob, const std::string& tag,
    const std::vector<std::uint8_t>& extra) {
  const std::span<const std::uint8_t> bytes(blob);
  net::ByteReader r(bytes);
  EXPECT_TRUE(r.skip(12));
  const std::uint32_t count = r.u32be().value();
  const std::size_t old_toc_size = 16 + count * 24 + 4;
  const std::size_t payloads_begin = old_toc_size;
  const std::size_t payloads_end = blob.size() - 16;  // trailer is 16 bytes
  const std::size_t shift = 24;  // one more TOC entry

  net::ByteWriter w;
  w.bytes(bytes.subspan(0, 12));  // magic + version + flags
  w.u32be(count + 1);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 16 + i * 24;
    w.bytes(bytes.subspan(at, 4));  // tag
    net::ByteReader entry(bytes.subspan(at + 4, 8));
    w.u64be(entry.u64be().value() + shift);
    w.bytes(bytes.subspan(at + 12, 12));  // length + crc
  }
  w.bytes(tag);
  w.u64be(payloads_end + shift);  // appended after the existing payloads
  w.u64be(extra.size());
  w.u32be(net::crc32c(extra));
  w.u32be(net::crc32c(w.data()));  // TOC checksum
  w.bytes(bytes.subspan(payloads_begin, payloads_end - payloads_begin));
  w.bytes(extra);
  w.bytes(std::string("IOTE"));
  w.u64be(w.size() + 12);
  w.u32be(net::crc32c(w.data()));
  return w.take();
}

TEST(Persistence, UnknownSectionsAreVerifiedThenSkipped) {
  const auto corpus = sim::generate_corpus_for({"Aria", "HueBridge"}, 6, 77);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  const auto blob = core::serialize_identifier(identifier);

  const std::vector<std::uint8_t> extra = {1, 2, 3, 4, 5};
  auto future = with_extra_section(blob, "XTRA", extra);
  auto loaded = core::load_identifier(future);
  ASSERT_TRUE(loaded.has_value()) << core::describe(loaded.error());
  expect_equivalent(identifier, *loaded, {"Aria", "HueBridge"}, 43);

  // Skippable does not mean unchecked: a corrupt unknown section is
  // still named by its own tag.
  auto corrupt = future;
  corrupt[future.size() - 16 - 2] ^= 0xff;  // inside XTRA's payload
  const auto rejected = core::load_identifier(corrupt);
  ASSERT_FALSE(rejected.has_value());
  EXPECT_EQ(rejected.error().kind, core::LoadError::Kind::kChecksumMismatch);
  EXPECT_EQ(rejected.error().section, "XTRA");
}

TEST(Persistence, FramedForestSkipsBytesAppendedByNewerWriters) {
  const ml::Dataset d = blob_data(3);
  ml::RandomForest forest;
  forest.train(d, {.num_trees = 4, .seed = 11});
  net::ByteWriter w;
  forest.save(w);
  const auto record = w.data();

  // A future writer appends a field after the trees and grows the length
  // prefix; this reader must parse the trees and skip the rest.
  net::ByteWriter future;
  net::ByteReader r(record);
  EXPECT_TRUE(r.read_tag("IRF2"));
  const std::uint32_t length = r.u32be().value();
  future.bytes(std::string("IRF2"));
  future.u32be(length + 8);
  future.bytes(r.peek_rest());
  future.pad(8, 0xab);
  future.bytes(std::string("NEXT"));  // a following record

  net::ByteReader fr(future.data());
  auto loaded = ml::RandomForest::load(fr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->tree_count(), forest.tree_count());
  EXPECT_TRUE(fr.read_tag("NEXT"))
      << "reader must resynchronize at the frame boundary";
}

/// Recomputes every checksum (per-section, TOC, whole-file) of an IOTS1
/// blob in place — lets a test alter payload semantics and prove the
/// loader's *structural* validation, not just its CRCs.
void refresh_checksums(std::vector<std::uint8_t>& blob) {
  const auto patch32 = [&](std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      blob[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((v >> (24 - 8 * i)) & 0xff);
    }
  };
  net::ByteReader header(blob);
  EXPECT_TRUE(header.skip(12));
  const std::uint32_t count = header.u32be().value();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 16 + i * 24;
    net::ByteReader entry(std::span<const std::uint8_t>(blob).subspan(at + 4));
    const auto offset = entry.u64be().value();
    const auto length = entry.u64be().value();
    patch32(at + 20, net::crc32c(std::span<const std::uint8_t>(blob).subspan(
                         offset, length)));
  }
  const std::size_t toc_crc_at = 16 + count * 24;
  patch32(toc_crc_at, net::crc32c(std::span<const std::uint8_t>(blob).subspan(
                          0, toc_crc_at)));
  patch32(blob.size() - 4,
          net::crc32c(std::span<const std::uint8_t>(blob).subspan(
              0, blob.size() - 4)));
}

TEST(Persistence, MetaBankConfigDivergenceIsRejected) {
  const auto corpus = sim::generate_corpus_for({"Aria"}, 6, 78);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  auto blob = core::serialize_identifier(identifier);

  // META starts right after the TOC (3 sections); its num_trees field is
  // 16 bytes in. Bump it and make every checksum valid again — only the
  // META/BANK cross-check can reject this artifact now.
  const std::size_t meta_num_trees_at = (16 + 3 * 24 + 4) + 16;
  blob[meta_num_trees_at + 3] ^= 0x01;
  refresh_checksums(blob);
  const auto result = core::load_identifier(blob);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, core::LoadError::Kind::kSectionParse);
  EXPECT_EQ(result.error().section, "META");

  // Sanity: refresh_checksums alone keeps a pristine blob loadable.
  blob[meta_num_trees_at + 3] ^= 0x01;
  refresh_checksums(blob);
  EXPECT_TRUE(core::load_identifier(blob).has_value());
}

// ---- the documented tiny artifact (docs/FORMAT.md worked example) ----

/// The exact bytes of the docs/FORMAT.md worked example: an untrained
/// identifier with default configuration. The doc's hex dump must stay
/// in lockstep with this constant.
constexpr const char* kFormatDocHex =
    "89 49 4f 54 53 31 0d 0a 00 01 00 00 00 00 00 03\n"
    "4d 45 54 41 00 00 00 00 00 00 00 5c 00 00 00 00\n"
    "00 00 00 24 27 3e ba a1 42 41 4e 4b 00 00 00 00\n"
    "00 00 00 80 00 00 00 00 00 00 00 20 0c 37 b2 24\n"
    "52 45 46 53 00 00 00 00 00 00 00 a0 00 00 00 00\n"
    "00 00 00 04 48 67 4b c7 9f 20 ff c5 00 00 00 05\n"
    "00 00 00 0c 00 00 00 00 00 00 00 17 00 00 00 1e\n"
    "41 20 00 00 3f 00 00 00 00 00 00 00 00 00 00 11\n"
    "49 42 4b 32 00 00 00 18 00 00 00 1e 41 20 00 00\n"
    "3f 00 00 00 00 00 00 00 00 00 00 11 00 00 00 00\n"
    "00 00 00 00 49 4f 54 45 00 00 00 00 00 00 00 b4\n"
    "4c b4 ba 8b\n";

TEST(Persistence, Iots1TinyArtifactMatchesDocumentedHexDump) {
  const core::DeviceIdentifier identifier;  // default config, no types
  const auto blob = core::serialize_identifier(identifier);

  const char* expected_hex = kFormatDocHex;
  std::vector<std::uint8_t> expected;
  for (const char* p = expected_hex; p[0] && p[1];) {
    if (p[0] == ' ' || p[0] == '\n') {
      ++p;
      continue;
    }
    auto nibble = [](char c) {
      return static_cast<std::uint8_t>(c <= '9' ? c - '0' : c - 'a' + 10);
    };
    expected.push_back(
        static_cast<std::uint8_t>((nibble(p[0]) << 4) | nibble(p[1])));
    p += 2;
  }
  EXPECT_EQ(blob, expected)
      << "serialize_identifier bytes diverged from the docs/FORMAT.md "
         "worked example — update the spec and this constant together";

  auto loaded = core::load_identifier(blob);
  ASSERT_TRUE(loaded.has_value()) << core::describe(loaded.error());
  EXPECT_EQ(loaded->num_types(), 0u);
}

}  // namespace
}  // namespace iotsentinel
