// Model-persistence round trips: tree, forest, bank and full identifier
// must reload byte-for-byte behaviourally identical, and every loader
// must reject corrupted input instead of crashing.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/model_store.hpp"
#include "ml/random_forest.hpp"
#include "simnet/corpus.hpp"

namespace iotsentinel {
namespace {

ml::Dataset blob_data(std::uint64_t seed) {
  ml::Dataset d(4);
  ml::Rng rng(seed);
  for (int i = 0; i < 60; ++i) {
    float row0[4];
    float row1[4];
    for (int f = 0; f < 4; ++f) {
      row0[f] = static_cast<float>(rng.uniform(0.0, 1.0));
      row1[f] = static_cast<float>(rng.uniform(2.0, 3.0));
    }
    d.add(row0, 0);
    d.add(row1, 1);
  }
  return d;
}

TEST(Persistence, ForestRoundTripPredictsIdentically) {
  const ml::Dataset d = blob_data(1);
  ml::RandomForest forest;
  forest.train(d, {.num_trees = 12, .seed = 9});

  net::ByteWriter w;
  forest.save(w);
  net::ByteReader r(w.data());
  auto loaded = ml::RandomForest::load(r);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(loaded->tree_count(), forest.tree_count());
  EXPECT_EQ(loaded->num_classes(), forest.num_classes());

  ml::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    float probe[4];
    for (auto& x : probe) x = static_cast<float>(rng.uniform(-1.0, 4.0));
    EXPECT_DOUBLE_EQ(loaded->positive_score(probe),
                     forest.positive_score(probe));
  }
  // Importances survive too.
  const auto a = forest.feature_importances();
  const auto b = loaded->feature_importances();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a.size(); ++f) EXPECT_NEAR(a[f], b[f], 1e-6);
}

TEST(Persistence, ForestLoadRejectsCorruption) {
  const ml::Dataset d = blob_data(2);
  ml::RandomForest forest;
  forest.train(d, {.num_trees = 4, .seed = 9});
  net::ByteWriter w;
  forest.save(w);
  auto blob = w.take();

  // Bad magic.
  auto bad = blob;
  bad[0] = 'X';
  net::ByteReader r1(bad);
  EXPECT_FALSE(ml::RandomForest::load(r1).has_value());

  // Truncations at every prefix of the first 200 bytes.
  for (std::size_t cut = 0; cut < std::min<std::size_t>(blob.size(), 200);
       cut += 7) {
    net::ByteReader r(std::span<const std::uint8_t>(blob.data(), cut));
    EXPECT_FALSE(ml::RandomForest::load(r).has_value()) << "cut=" << cut;
  }
}

TEST(Persistence, IdentifierRoundTripIdentifiesIdentically) {
  const auto corpus = sim::generate_corpus_for(
      {"Aria", "HueBridge", "EdimaxCam", "SmarterCoffee", "iKettle2"}, 12,
      71);
  core::IdentifierConfig config;
  config.bank.accept_threshold = core::kPaperCalibratedAcceptThreshold;
  core::DeviceIdentifier identifier(config);
  identifier.train(corpus.type_names, corpus.by_type);

  const auto blob = core::serialize_identifier(identifier);
  auto loaded = core::deserialize_identifier(blob);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_types(), identifier.num_types());

  // Fresh probes of every type must give identical results through both.
  const auto probes = sim::generate_corpus_for(
      {"Aria", "HueBridge", "EdimaxCam", "SmarterCoffee", "iKettle2"}, 3,
      72);
  for (const auto& runs : probes.by_type) {
    for (const auto& f : runs) {
      const auto a = identifier.identify(f);
      const auto b = loaded->identify(f);
      EXPECT_EQ(a.type_index, b.type_index);
      EXPECT_EQ(a.candidates, b.candidates);
      EXPECT_EQ(a.is_new_type, b.is_new_type);
      EXPECT_EQ(a.used_discrimination, b.used_discrimination);
    }
  }
}

TEST(Persistence, DeserializeRejectsTrailingGarbage) {
  const auto corpus = sim::generate_corpus_for({"Aria", "HueBridge"}, 6, 73);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  auto blob = core::serialize_identifier(identifier);
  blob.push_back(0xff);
  EXPECT_FALSE(core::deserialize_identifier(blob).has_value());
}

TEST(Persistence, FileRoundTrip) {
  const auto corpus = sim::generate_corpus_for({"Aria", "MAXGateway"}, 8, 74);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);

  const std::string path = ::testing::TempDir() + "/iots_model.bin";
  ASSERT_TRUE(core::save_identifier_file(path, identifier));
  auto loaded = core::load_identifier_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_types(), 2u);
  EXPECT_EQ(loaded->bank().type_name(0), "Aria");
  EXPECT_EQ(loaded->references(0).size(), identifier.references(0).size());
}

TEST(Persistence, MissingFileIsNullopt) {
  EXPECT_FALSE(core::load_identifier_file("/nonexistent/model.bin")
                   .has_value());
}

}  // namespace
}  // namespace iotsentinel
