// Exhaustive corruption harness for the IOTS1 model container
// (docs/FORMAT.md): starting from a real trained artifact, EVERY
// single-byte flip and EVERY truncation length must be rejected with a
// typed LoadError that names the failing structure — no crash, no
// false-accept. The suite runs in the tier-1 ctest pass and, unfiltered,
// under the `sanitize` preset, so "no crash" is backed by ASan + UBSan.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "core/model_store.hpp"
#include "simnet/corpus.hpp"

namespace iotsentinel {
namespace {

/// One small real artifact shared by the whole suite: trained forests,
/// reference fingerprints, everything the production path serializes —
/// just scaled down so the exhaustive sweeps stay fast under sanitizers.
class ModelStoreCorruption : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto corpus =
        sim::generate_corpus_for({"Aria", "HueBridge", "EdimaxCam"}, 4, 91);
    core::IdentifierConfig config;
    config.bank.forest.num_trees = 2;
    config.references_per_type = 2;
    core::DeviceIdentifier identifier(config);
    identifier.train(corpus.type_names, corpus.by_type);
    blob_ = new std::vector<std::uint8_t>(
        core::serialize_identifier(identifier));
  }

  static void TearDownTestSuite() {
    delete blob_;
    blob_ = nullptr;
  }

  static const std::vector<std::uint8_t>& blob() { return *blob_; }

 private:
  static const std::vector<std::uint8_t>* blob_;
};

const std::vector<std::uint8_t>* ModelStoreCorruption::blob_ = nullptr;

TEST_F(ModelStoreCorruption, PristineArtifactLoads) {
  auto result = core::load_identifier(blob());
  ASSERT_TRUE(result.has_value()) << core::describe(result.error());
  EXPECT_EQ(result->num_types(), 3u);
  EXPECT_EQ(result.error().kind, core::LoadError::Kind::kNone);
}

TEST_F(ModelStoreCorruption, EverySingleByteFlipIsRejectedAndNamed) {
  std::vector<std::uint8_t> mutated = blob();
  for (std::size_t i = 0; i < mutated.size(); ++i) {
    mutated[i] ^= 0xff;
    const auto result = core::load_identifier(mutated);
    ASSERT_FALSE(result.has_value())
        << "byte flip at offset " << i << " was accepted";
    ASSERT_NE(result.error().kind, core::LoadError::Kind::kNone)
        << "offset " << i;
    ASSERT_FALSE(result.error().section.empty())
        << "flip at offset " << i << " produced an unnamed failure";
    mutated[i] ^= 0xff;
  }
  // The buffer must be pristine again — otherwise the sweep above tested
  // double corruption.
  EXPECT_TRUE(core::load_identifier(mutated).has_value());
}

TEST_F(ModelStoreCorruption, EveryTruncationLengthIsRejectedAndNamed) {
  const auto& full = blob();
  for (std::size_t len = 0; len < full.size(); ++len) {
    const auto result = core::load_identifier(
        std::span<const std::uint8_t>(full.data(), len));
    ASSERT_FALSE(result.has_value())
        << "truncation to " << len << " bytes was accepted";
    ASSERT_FALSE(result.error().section.empty())
        << "truncation to " << len << " produced an unnamed failure";
  }
}

TEST_F(ModelStoreCorruption, PayloadFlipsNameTheirSection) {
  // The three v1 sections start right after the TOC (header 16 bytes,
  // 3 entries x 24, TOC checksum 4) and appear in META/BANK/REFS order;
  // a flip inside a payload must blame that payload's section, not just
  // the file at large.
  std::vector<std::uint8_t> mutated = blob();
  const std::size_t payload_start = 16 + 3 * 24 + 4;
  mutated[payload_start] ^= 0xff;  // first META byte
  auto result = core::load_identifier(mutated);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, core::LoadError::Kind::kChecksumMismatch);
  EXPECT_EQ(result.error().section, "META");
  EXPECT_EQ(result.error().offset, payload_start);
}

TEST_F(ModelStoreCorruption, TruncationReportsTruncated) {
  const auto& full = blob();
  const auto result = core::load_identifier(
      std::span<const std::uint8_t>(full.data(), full.size() - 1));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, core::LoadError::Kind::kTruncated);
  EXPECT_EQ(result.error().section, "trailer");
}

TEST_F(ModelStoreCorruption, FutureFormatVersionIsRejectedTyped) {
  std::vector<std::uint8_t> mutated = blob();
  mutated[9] = 2;  // format version u16 at offset 8 -> version 2
  const auto result = core::load_identifier(mutated);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind,
            core::LoadError::Kind::kUnsupportedVersion);
  EXPECT_EQ(result.error().section, "envelope");
  EXPECT_EQ(result.error().offset, 8u);
}

TEST_F(ModelStoreCorruption, DescribeNamesKindSectionAndOffset) {
  std::vector<std::uint8_t> mutated = blob();
  mutated[0] ^= 0xff;
  const auto result = core::load_identifier(mutated);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(core::describe(result.error()),
            "bad-magic in section envelope at offset 0");
}

}  // namespace
}  // namespace iotsentinel
