// Exhaustive corruption harness for the IOTS1 model container
// (docs/FORMAT.md): starting from a real trained artifact, EVERY
// single-byte flip and EVERY truncation length must be rejected with a
// typed LoadError that names the failing structure — no crash, no
// false-accept. The suite runs in the tier-1 ctest pass and, unfiltered,
// under the `sanitize` preset, so "no crash" is backed by ASan + UBSan.
//
// The ModelStoreIncremental suite extends the same guarantees to the
// hot-swap persistence path (`rewrite_bank_record`,
// `save_identifier_file_incremental`): the incrementally rewritten
// artifact is byte-identical to a full re-save, survives the same
// exhaustive flip/truncation sweeps, and a corrupt base is rejected
// with exactly the typed error a load of that base would produce.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/model_store.hpp"
#include "ml/random_forest.hpp"
#include "simnet/corpus.hpp"

namespace iotsentinel {
namespace {

/// One small real artifact shared by the whole suite: trained forests,
/// reference fingerprints, everything the production path serializes —
/// just scaled down so the exhaustive sweeps stay fast under sanitizers.
class ModelStoreCorruption : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto corpus =
        sim::generate_corpus_for({"Aria", "HueBridge", "EdimaxCam"}, 4, 91);
    core::IdentifierConfig config;
    config.bank.forest.num_trees = 2;
    config.references_per_type = 2;
    core::DeviceIdentifier identifier(config);
    identifier.train(corpus.type_names, corpus.by_type);
    blob_ = new std::vector<std::uint8_t>(
        core::serialize_identifier(identifier));
  }

  static void TearDownTestSuite() {
    delete blob_;
    blob_ = nullptr;
  }

  static const std::vector<std::uint8_t>& blob() { return *blob_; }

 private:
  static const std::vector<std::uint8_t>* blob_;
};

const std::vector<std::uint8_t>* ModelStoreCorruption::blob_ = nullptr;

TEST_F(ModelStoreCorruption, PristineArtifactLoads) {
  auto result = core::load_identifier(blob());
  ASSERT_TRUE(result.has_value()) << core::describe(result.error());
  EXPECT_EQ(result->num_types(), 3u);
  EXPECT_EQ(result.error().kind, core::LoadError::Kind::kNone);
}

TEST_F(ModelStoreCorruption, EverySingleByteFlipIsRejectedAndNamed) {
  std::vector<std::uint8_t> mutated = blob();
  for (std::size_t i = 0; i < mutated.size(); ++i) {
    mutated[i] ^= 0xff;
    const auto result = core::load_identifier(mutated);
    ASSERT_FALSE(result.has_value())
        << "byte flip at offset " << i << " was accepted";
    ASSERT_NE(result.error().kind, core::LoadError::Kind::kNone)
        << "offset " << i;
    ASSERT_FALSE(result.error().section.empty())
        << "flip at offset " << i << " produced an unnamed failure";
    mutated[i] ^= 0xff;
  }
  // The buffer must be pristine again — otherwise the sweep above tested
  // double corruption.
  EXPECT_TRUE(core::load_identifier(mutated).has_value());
}

TEST_F(ModelStoreCorruption, EveryTruncationLengthIsRejectedAndNamed) {
  const auto& full = blob();
  for (std::size_t len = 0; len < full.size(); ++len) {
    const auto result = core::load_identifier(
        std::span<const std::uint8_t>(full.data(), len));
    ASSERT_FALSE(result.has_value())
        << "truncation to " << len << " bytes was accepted";
    ASSERT_FALSE(result.error().section.empty())
        << "truncation to " << len << " produced an unnamed failure";
  }
}

TEST_F(ModelStoreCorruption, PayloadFlipsNameTheirSection) {
  // The three v1 sections start right after the TOC (header 16 bytes,
  // 3 entries x 24, TOC checksum 4) and appear in META/BANK/REFS order;
  // a flip inside a payload must blame that payload's section, not just
  // the file at large.
  std::vector<std::uint8_t> mutated = blob();
  const std::size_t payload_start = 16 + 3 * 24 + 4;
  mutated[payload_start] ^= 0xff;  // first META byte
  auto result = core::load_identifier(mutated);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, core::LoadError::Kind::kChecksumMismatch);
  EXPECT_EQ(result.error().section, "META");
  EXPECT_EQ(result.error().offset, payload_start);
}

TEST_F(ModelStoreCorruption, TruncationReportsTruncated) {
  const auto& full = blob();
  const auto result = core::load_identifier(
      std::span<const std::uint8_t>(full.data(), full.size() - 1));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, core::LoadError::Kind::kTruncated);
  EXPECT_EQ(result.error().section, "trailer");
}

TEST_F(ModelStoreCorruption, FutureFormatVersionIsRejectedTyped) {
  std::vector<std::uint8_t> mutated = blob();
  mutated[9] = 2;  // format version u16 at offset 8 -> version 2
  const auto result = core::load_identifier(mutated);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind,
            core::LoadError::Kind::kUnsupportedVersion);
  EXPECT_EQ(result.error().section, "envelope");
  EXPECT_EQ(result.error().offset, 8u);
}

TEST_F(ModelStoreCorruption, DescribeNamesKindSectionAndOffset) {
  std::vector<std::uint8_t> mutated = blob();
  mutated[0] ^= 0xff;
  const auto result = core::load_identifier(mutated);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(core::describe(result.error()),
            "bad-magic in section envelope at offset 0");
}

// ---- incremental BANK-record rewrite (the hot-swap persistence path) ----

/// The original trained identifier, a variant with exactly one type's
/// forest retrained through the same retrain_plan -> train ->
/// replace_forest path the background retrainer uses, and the full-save
/// bytes of the original as the rewrite base.
class ModelStoreIncremental : public ::testing::Test {
 protected:
  static constexpr std::size_t kChangedType = 1;  // "HueBridge"

  static void SetUpTestSuite() {
    const auto corpus =
        sim::generate_corpus_for({"Aria", "HueBridge", "EdimaxCam"}, 4, 91);
    core::IdentifierConfig config;
    config.bank.forest.num_trees = 2;
    config.references_per_type = 2;
    original_ = new core::DeviceIdentifier(config);
    original_->train(corpus.type_names, corpus.by_type);
    base_ =
        new std::vector<std::uint8_t>(core::serialize_identifier(*original_));

    // Fold an independent capture of the changed type into its forest —
    // everything else (other forests, references, config) stays shared
    // with the original, which is exactly the rewrite's caller contract.
    std::vector<std::vector<fp::FixedFingerprint>> fixed;
    for (const auto& runs : corpus.by_type) {
      auto& out = fixed.emplace_back();
      for (const auto& f : runs) out.push_back(f.to_fixed());
    }
    const auto fresh = sim::generate_corpus_for({"HueBridge"}, 4, 177);
    std::vector<fp::FixedFingerprint> positives;
    for (const auto& f : fresh.by_type.front()) {
      positives.push_back(f.to_fixed());
    }
    std::vector<const fp::FixedFingerprint*> pool;
    for (std::size_t t = 0; t < fixed.size(); ++t) {
      if (t == kChangedType) continue;
      for (const auto& f : fixed[t]) pool.push_back(&f);
    }
    core::ClassifierBank bank = original_->bank();
    const auto plan = bank.retrain_plan(kChangedType, positives, pool);
    ml::RandomForest forest;
    forest.train(plan.data, plan.forest);
    bank.replace_forest(kChangedType, std::move(forest));
    std::vector<std::vector<fp::Fingerprint>> references;
    for (std::size_t t = 0; t < original_->num_types(); ++t) {
      references.push_back(original_->references(t));
    }
    auto retrained = core::DeviceIdentifier::from_parts(
        original_->config(), std::move(bank), std::move(references));
    ASSERT_TRUE(retrained.has_value());
    retrained_ = new core::DeviceIdentifier(std::move(*retrained));
  }

  static void TearDownTestSuite() {
    delete original_;
    delete retrained_;
    delete base_;
    original_ = nullptr;
    retrained_ = nullptr;
    base_ = nullptr;
  }

  static const core::DeviceIdentifier& original() { return *original_; }
  static const core::DeviceIdentifier& retrained() { return *retrained_; }
  static const std::vector<std::uint8_t>& base() { return *base_; }

  /// The incrementally rewritten artifact (asserts the rewrite accepts
  /// the pristine base).
  static std::vector<std::uint8_t> incremental() {
    std::vector<std::uint8_t> out;
    const auto err =
        core::rewrite_bank_record(base(), retrained(), kChangedType, out);
    EXPECT_EQ(err.kind, core::LoadError::Kind::kNone) << core::describe(err);
    return out;
  }

 private:
  static core::DeviceIdentifier* original_;
  static core::DeviceIdentifier* retrained_;
  static std::vector<std::uint8_t>* base_;
};

core::DeviceIdentifier* ModelStoreIncremental::original_ = nullptr;
core::DeviceIdentifier* ModelStoreIncremental::retrained_ = nullptr;
std::vector<std::uint8_t>* ModelStoreIncremental::base_ = nullptr;

TEST_F(ModelStoreIncremental, RewriteIsByteIdenticalToFullSave) {
  const auto out = incremental();
  EXPECT_NE(out, base()) << "the retrain must actually change the record";
  EXPECT_EQ(out, core::serialize_identifier(retrained()));

  auto loaded = core::load_identifier(out);
  ASSERT_TRUE(loaded.has_value()) << core::describe(loaded.error());
  const auto probes = sim::generate_corpus_for(
      {"Aria", "HueBridge", "EdimaxCam", "WeMoLink"}, 2, 55);
  for (const auto& runs : probes.by_type) {
    for (const auto& f : runs) {
      const auto a = retrained().identify(f);
      const auto b = loaded->identify(f);
      EXPECT_EQ(a.type_index, b.type_index);
      EXPECT_EQ(a.candidates, b.candidates);
      EXPECT_EQ(a.is_new_type, b.is_new_type);
    }
  }
}

TEST_F(ModelStoreIncremental, EveryFlipOfRewrittenArtifactIsRejected) {
  std::vector<std::uint8_t> mutated = incremental();
  for (std::size_t i = 0; i < mutated.size(); ++i) {
    mutated[i] ^= 0xff;
    const auto result = core::load_identifier(mutated);
    ASSERT_FALSE(result.has_value())
        << "byte flip at offset " << i << " was accepted";
    ASSERT_FALSE(result.error().section.empty())
        << "flip at offset " << i << " produced an unnamed failure";
    mutated[i] ^= 0xff;
  }
  EXPECT_TRUE(core::load_identifier(mutated).has_value());
}

TEST_F(ModelStoreIncremental, EveryTruncationOfRewrittenArtifactIsRejected) {
  const auto full = incremental();
  for (std::size_t len = 0; len < full.size(); ++len) {
    const auto result = core::load_identifier(
        std::span<const std::uint8_t>(full.data(), len));
    ASSERT_FALSE(result.has_value())
        << "truncation to " << len << " bytes was accepted";
    ASSERT_FALSE(result.error().section.empty())
        << "truncation to " << len << " produced an unnamed failure";
  }
}

TEST_F(ModelStoreIncremental, EveryFlipOfBaseIsRejectedExactlyLikeALoad) {
  // The rewrite promises the base passes the full envelope verification
  // of a load — differentially: for every single-byte flip of the base,
  // the rewrite must reject with the SAME typed error a load produces.
  std::vector<std::uint8_t> mutated = base();
  for (std::size_t i = 0; i < mutated.size(); ++i) {
    mutated[i] ^= 0xff;
    const auto load_err = core::load_identifier(mutated).error();
    std::vector<std::uint8_t> out;
    const auto rewrite_err =
        core::rewrite_bank_record(mutated, retrained(), kChangedType, out);
    ASSERT_NE(rewrite_err.kind, core::LoadError::Kind::kNone)
        << "flipped base at offset " << i << " was accepted";
    ASSERT_EQ(rewrite_err.kind, load_err.kind) << "offset " << i;
    ASSERT_EQ(rewrite_err.section, load_err.section) << "offset " << i;
    ASSERT_EQ(rewrite_err.offset, load_err.offset) << "offset " << i;
    mutated[i] ^= 0xff;
  }
}

TEST_F(ModelStoreIncremental, EveryTruncationOfBaseIsRejectedExactlyLikeALoad) {
  const auto& full = base();
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::span<const std::uint8_t> cut(full.data(), len);
    const auto load_err = core::load_identifier(cut).error();
    std::vector<std::uint8_t> out;
    const auto rewrite_err =
        core::rewrite_bank_record(cut, retrained(), kChangedType, out);
    ASSERT_NE(rewrite_err.kind, core::LoadError::Kind::kNone)
        << "truncated base of " << len << " bytes was accepted";
    ASSERT_EQ(rewrite_err.kind, load_err.kind) << "length " << len;
    ASSERT_EQ(rewrite_err.section, load_err.section) << "length " << len;
    ASSERT_EQ(rewrite_err.offset, load_err.offset) << "length " << len;
  }
}

TEST_F(ModelStoreIncremental, ChangedTypeOutOfRangeIsABankParseError) {
  std::vector<std::uint8_t> out;
  const auto err = core::rewrite_bank_record(base(), retrained(), 99, out);
  EXPECT_EQ(err.kind, core::LoadError::Kind::kSectionParse);
  EXPECT_EQ(err.section, "BANK");
}

TEST_F(ModelStoreIncremental, MismatchedBaseIsRejectedAsSectionParse) {
  // A structurally valid artifact of a DIFFERENT identifier must not be
  // spliced into: fewer types, renamed types, and a different forest
  // configuration each fail the bit-exact cross-check, typed and named.
  const auto train_blob = [](const std::vector<std::string>& names,
                             std::uint32_t num_trees) {
    const auto corpus = sim::generate_corpus_for(names, 4, 91);
    core::IdentifierConfig config;
    config.bank.forest.num_trees = num_trees;
    config.references_per_type = 2;
    core::DeviceIdentifier identifier(config);
    identifier.train(corpus.type_names, corpus.by_type);
    return core::serialize_identifier(identifier);
  };

  std::vector<std::uint8_t> out;
  // Type-count mismatch (META matches — same config — so BANK blames).
  auto err = core::rewrite_bank_record(train_blob({"Aria", "HueBridge"}, 2),
                                       retrained(), kChangedType, out);
  EXPECT_EQ(err.kind, core::LoadError::Kind::kSectionParse);
  EXPECT_EQ(err.section, "BANK");
  // Type-name mismatch at equal count.
  err = core::rewrite_bank_record(
      train_blob({"Aria", "HueBridge", "WeMoLink"}, 2), retrained(),
      kChangedType, out);
  EXPECT_EQ(err.kind, core::LoadError::Kind::kSectionParse);
  EXPECT_EQ(err.section, "BANK");
  // Config mismatch is already visible in META's byte-compare.
  err = core::rewrite_bank_record(
      train_blob({"Aria", "HueBridge", "EdimaxCam"}, 3), retrained(),
      kChangedType, out);
  EXPECT_EQ(err.kind, core::LoadError::Kind::kSectionParse);
  EXPECT_EQ(err.section, "META");
}

TEST_F(ModelStoreIncremental, GarbageBaseIsRejectedAsBadMagic) {
  const std::vector<std::uint8_t> junk(64, 0xab);
  std::vector<std::uint8_t> out;
  const auto err =
      core::rewrite_bank_record(junk, retrained(), kChangedType, out);
  EXPECT_EQ(err.kind, core::LoadError::Kind::kBadMagic);
}

TEST_F(ModelStoreIncremental, FileSaveIncrementalReplacesArtifactAtomically) {
  const std::string dir = ::testing::TempDir() + "/iots_incremental_dir";
  std::filesystem::create_directory(dir);
  const std::string path = dir + "/model.iots";
  ASSERT_TRUE(core::save_identifier_file(path, original()));

  const auto err =
      core::save_identifier_file_incremental(path, retrained(), kChangedType);
  ASSERT_EQ(err.kind, core::LoadError::Kind::kNone) << core::describe(err);

  // No temp residue, and the on-disk bytes ARE a full re-save.
  std::vector<std::string> names;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    names.push_back(e.path().filename().string());
  }
  EXPECT_EQ(names, std::vector<std::string>{"model.iots"})
      << "temp files must not survive a successful incremental save";
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> on_disk(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  EXPECT_EQ(on_disk, core::serialize_identifier(retrained()));

  auto loaded = core::load_identifier_file(path);
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(loaded.has_value()) << core::describe(loaded.error());
  EXPECT_EQ(loaded->num_types(), 3u);
}

TEST_F(ModelStoreIncremental, FileSaveIncrementalWithoutBaseIsIoError) {
  const auto err = core::save_identifier_file_incremental(
      "/nonexistent/dir/model.iots", retrained(), kChangedType);
  EXPECT_EQ(err.kind, core::LoadError::Kind::kIoError);
  EXPECT_EQ(err.section, "file");
}

}  // namespace
}  // namespace iotsentinel
