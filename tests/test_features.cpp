// Table-I feature extraction tests.
#include "fingerprint/features.hpp"

#include <gtest/gtest.h>

#include "fingerprint/fingerprint.hpp"

#include "net/builder.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::fp {
namespace {

using net::Ipv4Address;
using net::MacAddress;

const MacAddress kDev = MacAddress::of(0x02, 1, 2, 3, 4, 5);
const MacAddress kGw = MacAddress::of(0x02, 9, 9, 9, 9, 9);
const Ipv4Address kDevIp = Ipv4Address::of(192, 168, 0, 50);
const Ipv4Address kGwIp = Ipv4Address::of(192, 168, 0, 1);

TEST(PortClass, MatchesPaperMapping) {
  EXPECT_EQ(port_class(0), 1u);
  EXPECT_EQ(port_class(80), 1u);
  EXPECT_EQ(port_class(1023), 1u);
  EXPECT_EQ(port_class(1024), 2u);
  EXPECT_EQ(port_class(49151), 2u);
  EXPECT_EQ(port_class(49152), 3u);
  EXPECT_EQ(port_class(65535), 3u);
  EXPECT_EQ(port_class_of(std::nullopt), 0u);
  EXPECT_EQ(port_class_of(std::uint16_t{443}), 1u);
}

TEST(Features, VectorHas23Entries) {
  EXPECT_EQ(kNumFeatures, 23u);
  EXPECT_EQ(kFixedDims, 276u);
}

TEST(Features, DhcpPacketSetsExpectedFlags) {
  PacketFeatureExtractor fx;
  const auto pkt = net::parse_ethernet_frame(
      net::build_dhcp(kDev, net::dhcptype::kDiscover, 1), 0);
  const FeatureVector v = fx.extract(pkt);
  EXPECT_EQ(get(v, FeatureIndex::kIp), 1u);
  EXPECT_EQ(get(v, FeatureIndex::kUdp), 1u);
  EXPECT_EQ(get(v, FeatureIndex::kDhcp), 1u);
  EXPECT_EQ(get(v, FeatureIndex::kBootp), 1u);
  EXPECT_EQ(get(v, FeatureIndex::kArp), 0u);
  EXPECT_EQ(get(v, FeatureIndex::kTcp), 0u);
  EXPECT_EQ(get(v, FeatureIndex::kSrcPortClass), 1u);  // 68 well-known
  EXPECT_EQ(get(v, FeatureIndex::kDstPortClass), 1u);  // 67 well-known
  EXPECT_EQ(get(v, FeatureIndex::kSize), pkt.wire_size);
}

TEST(Features, ArpHasNoPortsAndNoIpFlag) {
  PacketFeatureExtractor fx;
  const auto pkt = net::parse_ethernet_frame(
      net::build_arp_request(kDev, kDevIp, kGwIp), 0);
  const FeatureVector v = fx.extract(pkt);
  EXPECT_EQ(get(v, FeatureIndex::kArp), 1u);
  EXPECT_EQ(get(v, FeatureIndex::kIp), 0u);
  EXPECT_EQ(get(v, FeatureIndex::kSrcPortClass), 0u);
  EXPECT_EQ(get(v, FeatureIndex::kDstPortClass), 0u);
}

TEST(Features, IgmpJoinSetsIpOptionFeatures) {
  PacketFeatureExtractor fx;
  const auto pkt = net::parse_ethernet_frame(
      net::build_igmp_join(kDev, kDevIp, Ipv4Address::of(239, 255, 255, 250)),
      0);
  const FeatureVector v = fx.extract(pkt);
  EXPECT_EQ(get(v, FeatureIndex::kIpOptRouterAlert), 1u);
  EXPECT_EQ(get(v, FeatureIndex::kIpOptPadding), 1u);
}

TEST(Features, DestinationIpCounterCountsFirstContactOrder) {
  PacketFeatureExtractor fx;
  const Ipv4Address peer_a = Ipv4Address::of(10, 0, 0, 1);
  const Ipv4Address peer_b = Ipv4Address::of(10, 0, 0, 2);
  auto frame_to = [&](Ipv4Address dst) {
    return net::parse_ethernet_frame(
        net::build_dns_query(kDev, kGw, kDevIp, dst, 50000, 1, "x.com"), 0);
  };
  EXPECT_EQ(get(fx.extract(frame_to(peer_a)), FeatureIndex::kDstIpCounter), 1u);
  EXPECT_EQ(get(fx.extract(frame_to(peer_b)), FeatureIndex::kDstIpCounter), 2u);
  // Revisiting a known peer keeps its original counter value.
  EXPECT_EQ(get(fx.extract(frame_to(peer_a)), FeatureIndex::kDstIpCounter), 1u);
  EXPECT_EQ(fx.distinct_destinations(), 2u);
}

TEST(Features, DstCounterZeroWithoutIp) {
  PacketFeatureExtractor fx;
  const auto pkt =
      net::parse_ethernet_frame(net::build_eapol_key(kDev, kGw), 0);
  const FeatureVector v = fx.extract(pkt);
  EXPECT_EQ(get(v, FeatureIndex::kDstIpCounter), 0u);
  EXPECT_EQ(get(v, FeatureIndex::kEapol), 1u);
}

TEST(Features, ResetClearsCounterState) {
  PacketFeatureExtractor fx;
  const auto pkt = net::parse_ethernet_frame(
      net::build_dns_query(kDev, kGw, kDevIp, kGwIp, 50000, 1, "a.com"), 0);
  fx.extract(pkt);
  EXPECT_EQ(fx.distinct_destinations(), 1u);
  fx.reset();
  EXPECT_EQ(fx.distinct_destinations(), 0u);
  EXPECT_EQ(get(fx.extract(pkt), FeatureIndex::kDstIpCounter), 1u);
}

TEST(Features, RawDataFlagTracksPayload) {
  PacketFeatureExtractor fx;
  const auto syn = net::parse_ethernet_frame(
      net::build_tcp_syn(kDev, kGw, kDevIp, kGwIp, 49999, 80, 1), 0);
  EXPECT_EQ(get(fx.extract(syn), FeatureIndex::kRawData), 0u);
  const auto get_req = net::parse_ethernet_frame(
      net::build_http_get(kDev, kGw, kDevIp, kGwIp, 49999, "h", "/"), 0);
  EXPECT_EQ(get(fx.extract(get_req), FeatureIndex::kRawData), 1u);
}

TEST(Features, EveryFeatureHasAName) {
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    EXPECT_NE(feature_name(static_cast<FeatureIndex>(i)), "?");
  }
}

// Binary features must be 0/1 for every builder-generated packet kind.
class BinaryFeatureDomainTest
    : public ::testing::TestWithParam<net::Bytes> {};

TEST_P(BinaryFeatureDomainTest, BinaryFeaturesStayBinary) {
  PacketFeatureExtractor fx;
  const auto pkt = net::parse_ethernet_frame(GetParam(), 0);
  const FeatureVector v = fx.extract(pkt);
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    const auto idx = static_cast<FeatureIndex>(i);
    if (idx == FeatureIndex::kSize || idx == FeatureIndex::kDstIpCounter ||
        idx == FeatureIndex::kSrcPortClass ||
        idx == FeatureIndex::kDstPortClass) {
      continue;  // integer features
    }
    EXPECT_LE(v[i], 1u) << feature_name(idx);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBuilders, BinaryFeatureDomainTest,
    ::testing::Values(
        net::build_arp_request(kDev, kDevIp, kGwIp),
        net::build_eapol_key(kDev, kGw),
        net::build_dhcp(kDev, net::dhcptype::kDiscover, 1),
        net::build_dns_query(kDev, kGw, kDevIp, kGwIp, 50000, 1, "a.b"),
        net::build_mdns(kDev, kDevIp, "_svc._tcp.local", true),
        net::build_ssdp_msearch(kDev, kDevIp, 49500, "ssdp:all"),
        net::build_ntp_request(kDev, kGw, kDevIp, kGwIp, 49700),
        net::build_http_get(kDev, kGw, kDevIp, kGwIp, 49600, "h", "/"),
        net::build_tls_client_hello(kDev, kGw, kDevIp, kGwIp, 49601, "sni"),
        net::build_igmp_join(kDev, kDevIp, Ipv4Address::of(239, 255, 255, 250)),
        net::build_icmp_echo(kDev, kGw, kDevIp, kGwIp, 1, 1),
        net::build_icmpv6_router_solicit(kDev),
        net::build_mldv1_report(kDev)));

}  // namespace
}  // namespace iotsentinel::fp
