// End-to-end gateway test: raw frames in -> fingerprint -> IoTSSP verdict
// -> enforcement rule installed -> traffic filtered accordingly.
#include "core/security_gateway.hpp"

#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/protocols.hpp"
#include "simnet/corpus.hpp"
#include "simnet/traffic_generator.hpp"

namespace iotsentinel::core {
namespace {

IoTSecurityService make_service() {
  // Broad bank so unknown-device detection is reliable (see the identifier
  // tests: narrow banks have loose decision envelopes).
  const auto corpus = sim::generate_corpus_for(
      {"Aria", "EdimaxCam", "HueBridge", "MAXGateway", "Withings",
       "WeMoLink", "EdnetCam", "Lightify"},
      12, 33);
  DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  VulnerabilityDb db;
  for (const char* clean : {"Aria", "HueBridge", "MAXGateway", "Withings",
                            "WeMoLink", "EdnetCam", "Lightify"}) {
    db.mark_assessed(clean);
  }
  db.add("EdimaxCam", {.id = "CVE-X", .cvss = 9.0, .summary = "bad"});
  IoTSecurityService service(std::move(identifier), std::move(db));
  service.register_endpoints("EdimaxCam",
                             {net::Ipv4Address::of(104, 22, 7, 70)});
  return service;
}

/// Replays one generated setup capture into the gateway.
void replay_setup(SecurityGateway& gw, const std::string& type,
                  const net::MacAddress& mac, net::Ipv4Address ip,
                  std::uint64_t seed) {
  const auto* profile = sim::find_profile(type);
  ASSERT_NE(profile, nullptr);
  sim::TrafficGenerator gen;
  ml::Rng rng(seed);
  std::uint64_t last_ts = 0;
  for (const auto& tf : gen.generate(*profile, mac, ip, rng)) {
    gw.on_frame(tf.frame, tf.timestamp_us);
    last_ts = tf.timestamp_us;
  }
  gw.advance_time(last_ts + 120'000'000);  // idle out the capture
}

TEST(SecurityGateway, IdentifiesCleanDeviceAndTrustsIt) {
  const auto service = make_service();
  SecurityGateway gw(service);
  const auto mac = net::MacAddress::of(0x20, 0xbb, 0xc0, 0, 0, 9);
  replay_setup(gw, "Aria", mac, net::Ipv4Address::of(192, 168, 0, 30), 101);

  ASSERT_EQ(gw.events().size(), 1u);
  const GatewayEvent& event = gw.events()[0];
  EXPECT_EQ(event.device, mac);
  EXPECT_EQ(event.device_type, "Aria");
  EXPECT_EQ(event.level, sdn::IsolationLevel::kTrusted);
  EXPECT_EQ(gw.controller().level_of(mac), sdn::IsolationLevel::kTrusted);
}

TEST(SecurityGateway, QuarantinesVulnerableDevice) {
  const auto service = make_service();
  SecurityGateway gw(service);
  const auto mac = net::MacAddress::of(0x74, 0xda, 0x38, 0, 0, 7);
  const auto ip = net::Ipv4Address::of(192, 168, 0, 31);
  replay_setup(gw, "EdimaxCam", mac, ip, 102);

  ASSERT_EQ(gw.events().size(), 1u);
  EXPECT_EQ(gw.events()[0].device_type, "EdimaxCam");
  EXPECT_EQ(gw.events()[0].level, sdn::IsolationLevel::kRestricted);

  // Post-identification traffic: the vendor cloud is reachable, anything
  // else on the Internet is not.
  const auto now = gw.events()[0].at_us + 1000;
  const auto ok = gw.on_frame(
      net::build_tcp_syn(mac, net::MacAddress::of(2, 0, 0, 0, 0, 1), ip,
                         net::Ipv4Address::of(104, 22, 7, 70), 50000, 443, 1),
      now);
  EXPECT_EQ(ok.action, sdn::FlowAction::kForward);

  const auto blocked = gw.on_frame(
      net::build_tcp_syn(mac, net::MacAddress::of(2, 0, 0, 0, 0, 1), ip,
                         net::Ipv4Address::of(8, 8, 8, 8), 50001, 443, 1),
      now + 1000);
  EXPECT_EQ(blocked.action, sdn::FlowAction::kDrop);
}

TEST(SecurityGateway, UnknownDeviceGetsStrictIsolation) {
  const auto service = make_service();  // Smarter platform never trained
  SecurityGateway gw(service);
  const auto mac = net::MacAddress::of(0x5c, 0xcf, 0x7f, 0, 0, 1);
  const auto ip = net::Ipv4Address::of(192, 168, 0, 32);
  replay_setup(gw, "iKettle2", mac, ip, 103);  // never trained

  ASSERT_EQ(gw.events().size(), 1u);
  EXPECT_TRUE(gw.events()[0].is_new_type);
  EXPECT_EQ(gw.events()[0].level, sdn::IsolationLevel::kStrict);

  // No Internet access at all for strict devices.
  const auto blocked = gw.on_frame(
      net::build_tcp_syn(mac, net::MacAddress::of(2, 0, 0, 0, 0, 1), ip,
                         net::Ipv4Address::of(104, 27, 12, 120), 50002, 2081,
                         1),
      gw.events()[0].at_us + 1000);
  EXPECT_EQ(blocked.action, sdn::FlowAction::kDrop);
}

TEST(SecurityGateway, HandlesMultipleDevicesIndependently) {
  const auto service = make_service();
  SecurityGateway gw(service);
  const auto mac_a = net::MacAddress::of(0x20, 0xbb, 0xc0, 0, 1, 1);
  const auto mac_b = net::MacAddress::of(0x74, 0xda, 0x38, 0, 1, 2);
  replay_setup(gw, "Aria", mac_a, net::Ipv4Address::of(192, 168, 0, 40), 104);
  replay_setup(gw, "EdimaxCam", mac_b, net::Ipv4Address::of(192, 168, 0, 41),
               105);
  ASSERT_EQ(gw.events().size(), 2u);
  EXPECT_EQ(gw.controller().level_of(mac_a), sdn::IsolationLevel::kTrusted);
  EXPECT_EQ(gw.controller().level_of(mac_b),
            sdn::IsolationLevel::kRestricted);
}

TEST(SecurityGateway, ObserverCallbackFires) {
  const auto service = make_service();
  SecurityGateway gw(service);
  std::vector<std::string> seen;
  gw.on_device_identified(
      [&](const GatewayEvent& e) { seen.push_back(e.device_type); });
  replay_setup(gw, "HueBridge", net::MacAddress::of(0, 0x17, 0x88, 0, 0, 1),
               net::Ipv4Address::of(192, 168, 0, 50), 106);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "HueBridge");
}

TEST(SecurityGateway, ExpireDepartedSweepsRuleFlowsAndInventory) {
  const auto service = make_service();
  SecurityGateway gw(service);
  const auto mac = net::MacAddress::of(0x20, 0xbb, 0xc0, 0, 3, 3);
  const auto ip = net::Ipv4Address::of(192, 168, 0, 70);
  replay_setup(gw, "Aria", mac, ip, 108);
  ASSERT_EQ(gw.controller().level_of(mac), sdn::IsolationLevel::kTrusted);
  ASSERT_NE(gw.inventory().find(mac), nullptr);

  // Post-identification traffic installs flows under the device's cookie.
  const auto now = gw.events()[0].at_us + 1000;
  gw.on_frame(
      net::build_tcp_syn(mac, net::MacAddress::of(2, 0, 0, 0, 0, 1), ip,
                         net::Ipv4Address::of(8, 8, 8, 8), 50000, 443, 1),
      now);
  EXPECT_GE(gw.data_plane().table().size(), 1u);

  // Still active: a sweep with a generous idle window removes nothing.
  EXPECT_EQ(gw.expire_departed(now + 1000, 60'000'000'000ull), 0u);
  EXPECT_NE(gw.inventory().find(mac), nullptr);

  // Long silence: the departure sweep drops the rule, the installed flows
  // (via the flow table's cookie index) and the inventory record.
  EXPECT_EQ(gw.expire_departed(now + 600'000'000'000ull, 60'000'000ull), 1u);
  EXPECT_EQ(gw.controller().level_of(mac), std::nullopt);
  EXPECT_EQ(gw.inventory().find(mac), nullptr);
  EXPECT_EQ(gw.data_plane().table().size(), 0u);

  // Rejoin after departure: the extractor state was swept too, so the
  // device is fingerprinted and identified afresh — not stuck provisional.
  const auto* profile = sim::find_profile("Aria");
  ASSERT_NE(profile, nullptr);
  sim::GeneratorConfig rejoin_cfg;
  rejoin_cfg.start_time_us = now + 700'000'000'000ull;
  sim::TrafficGenerator gen(rejoin_cfg);
  ml::Rng rng(109);
  std::uint64_t last_ts = 0;
  for (const auto& tf : gen.generate(*profile, mac, ip, rng)) {
    gw.on_frame(tf.frame, tf.timestamp_us);
    last_ts = tf.timestamp_us;
  }
  gw.advance_time(last_ts + 120'000'000);
  ASSERT_EQ(gw.events().size(), 2u);
  EXPECT_EQ(gw.events()[1].device, mac);
  EXPECT_EQ(gw.controller().level_of(mac), sdn::IsolationLevel::kTrusted);
}

TEST(SecurityGateway, MacReuseAfterExpiryIsReclassifiedNotInherited) {
  // Identity-theft-by-address-reuse: after the departure sweep, different
  // hardware joining on the same MAC must be re-fingerprinted as its own
  // type and earn only its own level — never the departed device's rule.
  const auto service = make_service();
  SecurityGateway gw(service);
  const auto mac = net::MacAddress::of(0x20, 0xbb, 0xc0, 0, 4, 4);
  const auto ip = net::Ipv4Address::of(192, 168, 0, 71);
  replay_setup(gw, "Aria", mac, ip, 110);
  ASSERT_EQ(gw.events().size(), 1u);
  ASSERT_EQ(gw.events()[0].device_type, "Aria");
  ASSERT_EQ(gw.controller().level_of(mac), sdn::IsolationLevel::kTrusted);

  const auto now = gw.events()[0].at_us;
  ASSERT_EQ(gw.expire_departed(now + 600'000'000'000ull, 60'000'000ull), 1u);

  // A vulnerable camera re-joins on the victim's MAC.
  const auto* profile = sim::find_profile("EdimaxCam");
  ASSERT_NE(profile, nullptr);
  sim::GeneratorConfig rejoin_cfg;
  rejoin_cfg.start_time_us = now + 700'000'000'000ull;
  sim::TrafficGenerator gen(rejoin_cfg);
  ml::Rng rng(111);
  std::uint64_t last_ts = 0;
  for (const auto& tf : gen.generate(*profile, mac, ip, rng)) {
    gw.on_frame(tf.frame, tf.timestamp_us);
    last_ts = tf.timestamp_us;
  }
  gw.advance_time(last_ts + 120'000'000);

  ASSERT_EQ(gw.events().size(), 2u);
  EXPECT_EQ(gw.events()[1].device, mac);
  EXPECT_EQ(gw.events()[1].device_type, "EdimaxCam");
  EXPECT_EQ(gw.events()[1].level, sdn::IsolationLevel::kRestricted);
  EXPECT_EQ(gw.controller().level_of(mac), sdn::IsolationLevel::kRestricted);

  // The Restricted rule actually bites: internet traffic to a
  // non-whitelisted endpoint is dropped, the vendor endpoint passes.
  const auto t = last_ts + 130'000'000;
  const auto gw_mac = net::MacAddress::of(2, 0x47, 0x57, 0, 0, 1);
  EXPECT_EQ(gw.on_frame(net::build_tcp_syn(mac, gw_mac, ip,
                                           net::Ipv4Address::of(8, 8, 8, 8),
                                           50000, 443, 1),
                        t)
                .action,
            sdn::FlowAction::kDrop);
  EXPECT_EQ(gw.on_frame(net::build_tcp_syn(
                            mac, gw_mac, ip,
                            net::Ipv4Address::of(104, 22, 7, 70), 50001, 443,
                            1),
                        t + 1)
                .action,
            sdn::FlowAction::kForward);
}

TEST(SecurityGateway, MalformedFramesAreCountedAndDropped) {
  const auto service = make_service();
  SecurityGateway gw(service);

  const net::Bytes runt(10, 0xff);  // < Ethernet header
  net::Bytes zero_src =
      net::build_arp_request(net::MacAddress(),  // all-zero source MAC
                             net::Ipv4Address::of(192, 168, 0, 9),
                             net::Ipv4Address::of(192, 168, 0, 1));
  net::Bytes multicast_src = net::build_arp_request(
      net::MacAddress::of(0x01, 0x00, 0x5e, 1, 2, 3),  // group bit set
      net::Ipv4Address::of(192, 168, 0, 9), net::Ipv4Address::of(192, 168, 0, 1));

  EXPECT_TRUE(is_malformed_frame(runt));
  EXPECT_TRUE(is_malformed_frame(zero_src));
  EXPECT_TRUE(is_malformed_frame(multicast_src));

  EXPECT_EQ(gw.on_frame(runt, 1'000).action, sdn::FlowAction::kDrop);
  EXPECT_EQ(gw.on_frame(zero_src, 2'000).action, sdn::FlowAction::kDrop);
  EXPECT_EQ(gw.on_frame(multicast_src, 3'000).action, sdn::FlowAction::kDrop);
  EXPECT_EQ(gw.malformed_frames(), 3u);
  EXPECT_GE(gw.dropped_frames(), 3u);

  // A well-formed frame is not counted.
  const auto mac = net::MacAddress::of(0x20, 0xbb, 0xc0, 0, 5, 5);
  EXPECT_FALSE(is_malformed_frame(net::build_arp_request(
      mac, net::Ipv4Address::of(192, 168, 0, 72),
      net::Ipv4Address::of(192, 168, 0, 1))));
  gw.on_frame(net::build_arp_request(mac, net::Ipv4Address::of(192, 168, 0, 72),
                                     net::Ipv4Address::of(192, 168, 0, 1)),
              4'000);
  EXPECT_EQ(gw.malformed_frames(), 3u);
  // Nothing malformed ever reached the extractor.
  EXPECT_EQ(gw.extractor().active_devices(), 1u);
}

TEST(SecurityGateway, FinishPendingCapturesFlushes) {
  const auto service = make_service();
  SecurityGateway gw(service);
  const auto* profile = sim::find_profile("Aria");
  sim::TrafficGenerator gen;
  ml::Rng rng(107);
  const auto mac = net::MacAddress::of(0x20, 0xbb, 0xc0, 0, 2, 2);
  // Feed the frames but never advance time: capture stays open...
  for (const auto& tf : gen.generate(
           *profile, mac, net::Ipv4Address::of(192, 168, 0, 60), rng)) {
    gw.on_frame(tf.frame, tf.timestamp_us);
  }
  EXPECT_TRUE(gw.events().empty());
  // ...until explicitly flushed.
  gw.finish_pending_captures();
  ASSERT_EQ(gw.events().size(), 1u);
  EXPECT_EQ(gw.events()[0].device_type, "Aria");
}

}  // namespace
}  // namespace iotsentinel::core
