// Differential proof that the two-tier hashed FlowTable is observably
// identical to the reference LinearFlowTable: randomized traces of
// install / process / expire / remove_by_cookie are replayed against both
// implementations and every observable compared — per-packet actions,
// matched/miss counters, removal counts, and the full surviving-entry
// snapshot (order, matches, actions, per-entry statistics).
//
// The trace generator deliberately mixes the hard cases: wildcard entries
// of every arity, exact micro-flows, equal-priority ties, non-TCP/UDP
// matches, duplicate installs, idle timeouts racing cookie removals, and
// repeated packets (tier-1 hits) interleaved with table mutations.
#include "sdn/flow_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "net/builder.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::sdn {
namespace {

using net::Ipv4Address;
using net::MacAddress;

/// A small closed universe of packets so traces revisit tuples often
/// (exercising tier-1 hits and invalidation, not just cold scans).
std::vector<net::ParsedPacket> make_packet_universe() {
  std::vector<net::ParsedPacket> universe;
  const MacAddress macs[] = {
      MacAddress::of(0x02, 1, 0, 0, 0, 1), MacAddress::of(0x02, 1, 0, 0, 0, 2),
      MacAddress::of(0x02, 1, 0, 0, 0, 3), MacAddress::of(0x02, 1, 0, 0, 0, 4)};
  const Ipv4Address ips[] = {
      Ipv4Address::of(192, 168, 0, 10), Ipv4Address::of(192, 168, 0, 20),
      Ipv4Address::of(10, 0, 0, 5), Ipv4Address::of(104, 22, 7, 70)};
  const std::uint16_t ports[] = {53, 80, 443, 8080, 40000};

  for (int src = 0; src < 3; ++src) {
    for (int dst = 0; dst < 3; ++dst) {
      if (src == dst) continue;
      for (const std::uint16_t sport : {std::uint16_t{50000}, ports[src]}) {
        for (const std::uint16_t dport : ports) {
          // UDP flavor.
          universe.push_back(net::parse_ethernet_frame(
              net::build_ipv4(macs[src], macs[dst], ips[src], ips[dst],
                              net::ipproto::kUdp,
                              net::build_udp_payload(sport, dport, {})),
              0));
          // TCP flavor.
          universe.push_back(net::parse_ethernet_frame(
              net::build_tcp_syn(macs[src], macs[dst], ips[src], ips[dst],
                                 sport, dport, 1),
              0));
        }
      }
      // Portless traffic: ICMP echo and ARP (no IP at all).
      universe.push_back(net::parse_ethernet_frame(
          net::build_icmp_echo(macs[src], macs[dst], ips[src], ips[dst], 7, 1),
          0));
      universe.push_back(net::parse_ethernet_frame(
          net::build_arp_request(macs[src], ips[src], ips[dst]), 0));
    }
  }
  return universe;
}

/// A random match: each field independently wildcarded or pinned to the
/// corresponding field of a random universe packet (so matches actually
/// hit), occasionally pinned to an off-universe value or a non-TCP/UDP
/// protocol (so rejection paths run too).
FlowMatch random_match(std::mt19937_64& rng,
                       const std::vector<net::ParsedPacket>& universe) {
  const net::ParsedPacket& ref = universe[rng() % universe.size()];
  FlowMatch m;
  if (rng() % 2) m.src_mac = ref.src_mac;
  if (rng() % 2) m.dst_mac = ref.dst_mac;
  if (rng() % 2 && ref.src_ip && ref.src_ip->is_v4()) {
    m.src_ip = ref.src_ip->v4();
  }
  if (rng() % 2 && ref.dst_ip && ref.dst_ip->is_v4()) {
    m.dst_ip = ref.dst_ip->v4();
  }
  switch (rng() % 4) {
    case 0: m.ip_proto = 6; break;
    case 1: m.ip_proto = 17; break;
    case 2: m.ip_proto = 1; break;  // never matchable: only TCP/UDP are
    default: break;                 // wildcard
  }
  if (rng() % 2 && ref.src_port) m.src_port = *ref.src_port;
  if (rng() % 2 && ref.dst_port) m.dst_port = *ref.dst_port;
  return m;
}

void expect_identical_snapshots(const FlowTable& hashed,
                                const LinearFlowTable& linear,
                                std::uint64_t seed, std::size_t step) {
  const auto h = hashed.entries();
  const auto& l = linear.entries();
  ASSERT_EQ(h.size(), l.size()) << "seed " << seed << " step " << step;
  for (std::size_t i = 0; i < h.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " step " +
                 std::to_string(step) + " entry " + std::to_string(i));
    EXPECT_EQ(h[i].match.to_string(), l[i].match.to_string());
    EXPECT_EQ(h[i].action, l[i].action);
    EXPECT_EQ(h[i].priority, l[i].priority);
    EXPECT_EQ(h[i].idle_timeout_us, l[i].idle_timeout_us);
    EXPECT_EQ(h[i].packets, l[i].packets);
    EXPECT_EQ(h[i].bytes, l[i].bytes);
    EXPECT_EQ(h[i].last_matched_us, l[i].last_matched_us);
    EXPECT_EQ(h[i].installed_us, l[i].installed_us);
    EXPECT_EQ(h[i].cookie, l[i].cookie);
  }
}

void run_trace(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto universe = make_packet_universe();
  FlowTable hashed;
  LinearFlowTable linear;
  std::uint64_t now_us = 1;

  constexpr std::size_t kSteps = 4000;
  for (std::size_t step = 0; step < kSteps; ++step) {
    now_us += rng() % 500;  // monotonic virtual clock
    const std::uint64_t op = rng() % 100;
    if (op < 12) {
      // Install a wildcard-ish entry.
      FlowEntry entry;
      entry.match = random_match(rng, universe);
      entry.action = (rng() % 2) ? FlowAction::kForward : FlowAction::kDrop;
      entry.priority = static_cast<std::uint16_t>(rng() % 4);  // force ties
      entry.idle_timeout_us = (rng() % 3 == 0) ? 0 : 200 + rng() % 2000;
      entry.cookie = rng() % 6;
      hashed.install(entry, now_us);
      linear.install(entry, now_us);
    } else if (op < 22) {
      // Install an exact micro-flow of a universe packet (the
      // controller's common install).
      FlowEntry entry;
      entry.match = FlowMatch::micro_flow(universe[rng() % universe.size()]);
      entry.action = (rng() % 2) ? FlowAction::kForward : FlowAction::kDrop;
      entry.priority = static_cast<std::uint16_t>(10 + rng() % 2);
      entry.idle_timeout_us = 200 + rng() % 2000;
      entry.cookie = rng() % 6;
      hashed.install(entry, now_us);
      linear.install(entry, now_us);
    } else if (op < 88) {
      // Process a packet; repeats are frequent by construction.
      const net::ParsedPacket& pkt = universe[rng() % universe.size()];
      const auto ha = hashed.process(pkt, now_us);
      const auto la = linear.process(pkt, now_us);
      ASSERT_EQ(ha, la) << "seed " << seed << " step " << step << " pkt "
                        << pkt.summary();
    } else if (op < 94) {
      const auto hr = hashed.expire(now_us);
      const auto lr = linear.expire(now_us);
      ASSERT_EQ(hr, lr) << "seed " << seed << " step " << step;
    } else {
      const std::uint64_t cookie = rng() % 6;
      const auto hr = hashed.remove_by_cookie(cookie);
      const auto lr = linear.remove_by_cookie(cookie);
      ASSERT_EQ(hr, lr) << "seed " << seed << " step " << step;
    }

    ASSERT_EQ(hashed.size(), linear.size()) << "seed " << seed << " step "
                                            << step;
    ASSERT_EQ(hashed.misses(), linear.misses());
    ASSERT_EQ(hashed.matched_packets(), linear.matched_packets());
    if (step % 500 == 0) {
      expect_identical_snapshots(hashed, linear, seed, step);
    }
  }
  expect_identical_snapshots(hashed, linear, seed, kSteps);
  // Sanity: the closed packet universe guarantees repeats, so some of
  // them must have been served by the tier-1 cache. (Table misses are
  // not cached, so under this install-heavy adversarial trace tier-2
  // scans still dominate — cache *efficacy* is measured by the fig6a
  // bench on a realistic hit-heavy workload, not here.)
  EXPECT_GT(hashed.tier1_hits(), 0u);
}

TEST(FlowTableDifferential, RandomTraceSeed1) { run_trace(1); }
TEST(FlowTableDifferential, RandomTraceSeed2) { run_trace(2); }
TEST(FlowTableDifferential, RandomTraceSeed3) { run_trace(3); }
TEST(FlowTableDifferential, RandomTraceSeed4) { run_trace(20170605); }

// A trace with no process() calls at all: pure install/expire/remove churn
// keeps the order, heap, cookie index and freelist coherent without tier-1
// traffic masking bookkeeping bugs.
TEST(FlowTableDifferential, ChurnOnlyTrace) {
  std::mt19937_64 rng(99);
  const auto universe = make_packet_universe();
  FlowTable hashed;
  LinearFlowTable linear;
  std::uint64_t now_us = 1;
  for (std::size_t step = 0; step < 3000; ++step) {
    now_us += rng() % 300;
    const std::uint64_t op = rng() % 10;
    if (op < 6) {
      FlowEntry entry;
      entry.match = random_match(rng, universe);
      entry.action = (rng() % 2) ? FlowAction::kForward : FlowAction::kDrop;
      entry.priority = static_cast<std::uint16_t>(rng() % 3);
      entry.idle_timeout_us = (rng() % 4 == 0) ? 0 : 100 + rng() % 1500;
      entry.cookie = rng() % 4;
      hashed.install(entry, now_us);
      linear.install(entry, now_us);
    } else if (op < 8) {
      ASSERT_EQ(hashed.expire(now_us), linear.expire(now_us)) << step;
    } else {
      const std::uint64_t cookie = rng() % 4;
      ASSERT_EQ(hashed.remove_by_cookie(cookie),
                linear.remove_by_cookie(cookie))
          << step;
    }
    ASSERT_EQ(hashed.size(), linear.size()) << step;
  }
  expect_identical_snapshots(hashed, linear, 99, 3000);
}

}  // namespace
}  // namespace iotsentinel::sdn
