// FaultChannel: deterministic drop/duplicate/corrupt/reorder stream
// transformer (simnet/fault_injection.hpp).
#include <gtest/gtest.h>

#include <algorithm>

#include "net/crc32.hpp"
#include "net/hash_mix.hpp"
#include "simnet/fault_injection.hpp"

namespace iotsentinel::sim {
namespace {

std::vector<TimedFrame> make_trace(std::size_t n) {
  std::vector<TimedFrame> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TimedFrame tf;
    tf.timestamp_us = 1'000 * (i + 1);
    tf.frame.assign(32, static_cast<std::uint8_t>(i));
    trace.push_back(std::move(tf));
  }
  return trace;
}

std::uint64_t trace_hash(const std::vector<TimedFrame>& trace) {
  std::uint64_t h = 0x1234;
  for (const TimedFrame& tf : trace) {
    h = net::mix64(h ^ tf.timestamp_us);
    h = net::mix64(h ^ net::crc32c(tf.frame));
  }
  return h;
}

TEST(FaultChannel, CleanConfigIsIdentity) {
  const auto in = make_trace(50);
  const auto out = FaultChannel(FaultConfig{}).apply(in);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].timestamp_us, in[i].timestamp_us);
    EXPECT_EQ(out[i].frame, in[i].frame);
  }
}

TEST(FaultChannel, SameSeedReproducesBitIdentically) {
  FaultConfig config;
  config.drop_prob = 0.1;
  config.duplicate_prob = 0.1;
  config.reorder_prob = 0.2;
  config.corrupt_prob = 0.1;
  config.seed = 99;
  const auto a = FaultChannel(config).apply(make_trace(200));
  const auto b = FaultChannel(config).apply(make_trace(200));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(trace_hash(a), trace_hash(b));

  config.seed = 100;
  const auto c = FaultChannel(config).apply(make_trace(200));
  EXPECT_NE(trace_hash(a), trace_hash(c));
}

TEST(FaultChannel, DropOnlyRemovesFrames) {
  FaultConfig config;
  config.drop_prob = 0.5;
  config.seed = 7;
  FaultChannel channel(config);
  const auto out = channel.apply(make_trace(400));
  const auto& stats = channel.stats();
  EXPECT_EQ(stats.frames_in, 400u);
  EXPECT_EQ(stats.emitted, out.size());
  EXPECT_EQ(stats.dropped + stats.emitted, 400u);
  EXPECT_GT(stats.dropped, 100u);  // ~200 expected
  EXPECT_LT(stats.dropped, 300u);
  // Survivors keep order and content.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].timestamp_us, out[i].timestamp_us);
  }
}

TEST(FaultChannel, DuplicateEmitsBackToBackCopies) {
  FaultConfig config;
  config.duplicate_prob = 1.0;
  config.seed = 7;
  const auto out = FaultChannel(config).apply(make_trace(10));
  ASSERT_EQ(out.size(), 20u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[2 * i].frame, out[2 * i + 1].frame);
    EXPECT_EQ(out[2 * i].timestamp_us, out[2 * i + 1].timestamp_us);
  }
}

TEST(FaultChannel, ReorderHoldsFrameForDepthInputs) {
  FaultConfig config;
  config.reorder_prob = 1.0;  // every frame is held
  config.reorder_depth = 3;
  config.seed = 7;
  FaultChannel channel(config);
  std::vector<TimedFrame> out;
  auto trace = make_trace(8);
  for (auto& tf : trace) channel.feed(std::move(tf), out);
  // Frame i is re-emitted after 3 further inputs: after 8 feeds frames
  // 1..5 are out (held counts 3).
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(channel.held(), 3u);
  channel.flush(out);
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(channel.held(), 0u);
  // All held with equal depth: order is preserved overall here, but
  // every frame left 3 ticks late — mixing with unheld frames in a real
  // stream yields genuine reordering (covered by the extractor tests).
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i].frame[0], static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(channel.stats().reordered, 8u);
}

TEST(FaultChannel, ReorderActuallyInvertsArrivalOrder) {
  FaultConfig config;
  config.reorder_prob = 0.3;
  config.reorder_depth = 4;
  config.seed = 21;
  const auto out = FaultChannel(config).apply(make_trace(100));
  ASSERT_EQ(out.size(), 100u);
  bool inverted = false;
  for (std::size_t i = 1; i < out.size(); ++i) {
    inverted = inverted || out[i].timestamp_us < out[i - 1].timestamp_us;
  }
  EXPECT_TRUE(inverted);
  // Timestamps are never rewritten; the multiset of frames survives.
  std::vector<std::uint64_t> ts;
  for (const auto& tf : out) ts.push_back(tf.timestamp_us);
  std::sort(ts.begin(), ts.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(ts[i], 1'000 * (i + 1));
}

TEST(FaultChannel, CorruptFlipsBoundedBitsInPlace) {
  FaultConfig config;
  config.corrupt_prob = 1.0;
  config.corrupt_max_bits = 4;
  config.seed = 13;
  const auto in = make_trace(50);
  const auto out = FaultChannel(config).apply(in);
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    ASSERT_EQ(out[i].frame.size(), in[i].frame.size());
    int flipped = 0;
    for (std::size_t b = 0; b < in[i].frame.size(); ++b) {
      flipped += __builtin_popcount(
          static_cast<unsigned>(in[i].frame[b] ^ out[i].frame[b]));
    }
    EXPECT_GE(flipped, 1);
    EXPECT_LE(flipped, 4);
  }
}

TEST(FaultChannel, StatsAccountForEveryFrame) {
  FaultConfig config;
  config.drop_prob = 0.2;
  config.duplicate_prob = 0.2;
  config.reorder_prob = 0.2;
  config.corrupt_prob = 0.2;
  config.seed = 3;
  FaultChannel channel(config);
  const auto out = channel.apply(make_trace(500));
  const auto& s = channel.stats();
  EXPECT_EQ(s.frames_in, 500u);
  EXPECT_EQ(s.emitted, out.size());
  // Every non-dropped frame is emitted exactly once plus one per dup.
  EXPECT_EQ(s.emitted, s.frames_in - s.dropped + s.duplicated);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_GT(s.duplicated, 0u);
  EXPECT_GT(s.reordered, 0u);
  EXPECT_GT(s.corrupted, 0u);
}

}  // namespace
}  // namespace iotsentinel::sim
