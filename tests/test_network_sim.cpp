#include "simnet/network_sim.hpp"

#include <gtest/gtest.h>

namespace iotsentinel::sim {
namespace {

TEST(NetworkSim, PaperTestbedBaseRttsMatchTableV) {
  NetworkSim sim = make_paper_testbed(/*filtering=*/false, 7);
  const RttResult d1d4 = sim.measure_rtt("D1", "D4", 30);
  EXPECT_EQ(d1d4.dropped, 0u);
  EXPECT_NEAR(d1d4.rtt_ms.mean(), 24.5, 2.0);

  const RttResult d1sl = sim.measure_rtt("D1", "Slocal", 30);
  EXPECT_NEAR(d1sl.rtt_ms.mean(), 17.0, 2.5);

  const RttResult d1sr = sim.measure_rtt("D1", "Sremote", 30);
  EXPECT_NEAR(d1sr.rtt_ms.mean(), 20.0, 2.5);
}

TEST(NetworkSim, FilteringAddsOnlySmallOverhead) {
  NetworkSim with = make_paper_testbed(true, 7);
  NetworkSim without = make_paper_testbed(false, 7);
  const double w = with.measure_rtt("D1", "D4", 40).rtt_ms.mean();
  const double wo = without.measure_rtt("D1", "D4", 40).rtt_ms.mean();
  EXPECT_GT(w, wo - 0.5);        // filtering never makes it faster
  EXPECT_LT(w - wo, 2.0);        // ... and costs well under 2 ms on average
}

TEST(NetworkSim, StrictDeviceGetsPingBlocked) {
  NetworkSim sim = make_paper_testbed(true, 7);
  sdn::EnforcementRule strict;
  strict.device = sim.host("D1").mac;
  strict.level = sdn::IsolationLevel::kStrict;
  sim.apply_rule(std::move(strict));
  // D1 (untrusted overlay) -> D4 (trusted overlay): blocked.
  const RttResult res = sim.measure_rtt("D1", "D4", 10);
  EXPECT_EQ(res.dropped, 10u);
  EXPECT_EQ(res.rtt_ms.count(), 0u);
}

TEST(NetworkSim, NoFilteringForwardsEvenStrictDevices) {
  NetworkSim sim = make_paper_testbed(false, 7);
  sdn::EnforcementRule strict;
  strict.device = sim.host("D1").mac;
  strict.level = sdn::IsolationLevel::kStrict;
  sim.apply_rule(std::move(strict));
  const RttResult res = sim.measure_rtt("D1", "D4", 10);
  EXPECT_EQ(res.dropped, 0u);
}

TEST(NetworkSim, ConcurrentFlowsPopulateFlowTable) {
  NetworkSim sim = make_paper_testbed(true, 7);
  sim.set_concurrent_flows(100);
  EXPECT_EQ(sim.concurrent_flows(), 100u);
  EXPECT_GE(sim.data_plane().table().size(), 90u);  // broadcast etc. aside
}

TEST(NetworkSim, LatencyGrowsMildlyWithFlows) {
  NetworkSim idle = make_paper_testbed(true, 7);
  NetworkSim busy = make_paper_testbed(true, 7);
  busy.set_concurrent_flows(150);
  const double idle_ms = idle.measure_rtt("D1", "D4", 40).rtt_ms.mean();
  const double busy_ms = busy.measure_rtt("D1", "D4", 40).rtt_ms.mean();
  // Fig. 6a: increase exists but is "insignificant" (< 1 ms at 150 flows).
  EXPECT_GT(busy_ms, idle_ms - 0.5);
  EXPECT_LT(busy_ms - idle_ms, 1.5);
}

TEST(NetworkSim, CpuUtilizationRisesWithFlows) {
  NetworkSim sim = make_paper_testbed(true, 7);
  RunningStats idle;
  for (int i = 0; i < 20; ++i) idle.add(sim.cpu_utilization_pct());
  sim.set_concurrent_flows(150);
  RunningStats busy;
  for (int i = 0; i < 20; ++i) busy.add(sim.cpu_utilization_pct());
  EXPECT_GT(busy.mean(), idle.mean());
  EXPECT_LT(busy.mean(), 55.0);  // Fig. 6b peaks below ~50%
  EXPECT_GT(idle.mean(), 30.0);
}

TEST(NetworkSim, FilteringCpuOverheadIsSmall) {
  NetworkSim with = make_paper_testbed(true, 7);
  NetworkSim without = make_paper_testbed(false, 7);
  with.set_concurrent_flows(100);
  without.set_concurrent_flows(100);
  RunningStats w;
  RunningStats wo;
  for (int i = 0; i < 50; ++i) {
    w.add(with.cpu_utilization_pct());
    wo.add(without.cpu_utilization_pct());
  }
  // Table VI: +0.63% (+-1.8) CPU.
  EXPECT_LT(w.mean() - wo.mean(), 2.5);
}

TEST(NetworkSim, MemoryGrowsLinearlyWithRulesWhenFiltering) {
  NetworkSim sim = make_paper_testbed(true, 7);
  const double mb0 = sim.memory_mb(0);
  const double mb10k = sim.memory_mb(10'000);
  const double mb20k = sim.memory_mb(20'000);
  EXPECT_LT(mb0, mb10k);
  EXPECT_LT(mb10k, mb20k);
  // Fig. 6c: ~85 MB at 20k rules, ~40 MB base.
  EXPECT_NEAR(mb0, 40.0, 5.0);
  EXPECT_NEAR(mb20k, 86.0, 10.0);
  // Linearity: midpoint within a tolerance.
  EXPECT_NEAR(mb10k, (mb0 + mb20k) / 2, 1.0);
}

TEST(NetworkSim, MemoryFlatWithoutFiltering) {
  NetworkSim sim = make_paper_testbed(false, 7);
  EXPECT_NEAR(sim.memory_mb(20'000) - sim.memory_mb(0), 0.8, 0.8);
}

TEST(NetworkSim, RawMeasuredMemoryAlsoGrows) {
  NetworkSim sim = make_paper_testbed(true, 7);
  const double before = sim.memory_mb(0, /*calibrated=*/false);
  for (int i = 0; i < 2000; ++i) {
    sdn::EnforcementRule rule;
    rule.device = net::MacAddress::of(0x02, 0x99, 0,
                                      static_cast<std::uint8_t>(i >> 8), 0,
                                      static_cast<std::uint8_t>(i));
    rule.level = sdn::IsolationLevel::kRestricted;
    rule.permitted_ips.insert(net::Ipv4Address::of(104, 0, 0, 1));
    sim.apply_rule(std::move(rule));
  }
  const double after = sim.memory_mb(0, /*calibrated=*/false);
  EXPECT_GT(after, before);
}

TEST(NetworkSim, UnknownHostAborts) {
  NetworkSim sim = make_paper_testbed(true, 7);
  EXPECT_DEATH((void)sim.host("Nope"), "unknown host");
}

}  // namespace
}  // namespace iotsentinel::sim
