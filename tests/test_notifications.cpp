#include "core/notifications.hpp"

#include <gtest/gtest.h>

namespace iotsentinel::core {
namespace {

const net::MacAddress kDevA = net::MacAddress::of(2, 0, 0, 0, 0, 1);
const net::MacAddress kDevB = net::MacAddress::of(2, 0, 0, 0, 0, 2);

UserNotification removal(const net::MacAddress& mac) {
  return {.device = mac,
          .device_type = "EdimaxCam",
          .reason = NotificationReason::kRemoveDevice,
          .message = "remove it",
          .raised_at_us = 5};
}

TEST(NotificationCenter, RecordsAndListsPending) {
  NotificationCenter center;
  EXPECT_TRUE(center.notify(removal(kDevA)));
  ASSERT_EQ(center.pending().size(), 1u);
  EXPECT_EQ(center.pending()[0].device, kDevA);
  EXPECT_EQ(center.pending()[0].reason, NotificationReason::kRemoveDevice);
}

TEST(NotificationCenter, SuppressesDuplicatePendingPairs) {
  NotificationCenter center;
  EXPECT_TRUE(center.notify(removal(kDevA)));
  EXPECT_FALSE(center.notify(removal(kDevA)));  // same device + reason
  EXPECT_EQ(center.pending().size(), 1u);
  // Different reason for the same device is a new notification.
  EXPECT_TRUE(center.notify(
      {.device = kDevA,
       .reason = NotificationReason::kManualReauthRequired,
       .message = "reauth"}));
  EXPECT_EQ(center.pending().size(), 2u);
}

TEST(NotificationCenter, AcknowledgeClearsAndAllowsReraising) {
  NotificationCenter center;
  center.notify(removal(kDevA));
  center.notify(removal(kDevB));
  EXPECT_EQ(center.acknowledge(kDevA), 1u);
  EXPECT_EQ(center.pending().size(), 1u);
  EXPECT_EQ(center.pending()[0].device, kDevB);
  // After acknowledgement the same (device, reason) may be raised again.
  EXPECT_TRUE(center.notify(removal(kDevA)));
  // History keeps everything.
  EXPECT_EQ(center.history().size(), 3u);
}

TEST(NotificationCenter, AcknowledgeUnknownDeviceIsZero) {
  NotificationCenter center;
  EXPECT_EQ(center.acknowledge(kDevA), 0u);
}

TEST(NotificationCenter, CallbackFiresOnNewOnly) {
  NotificationCenter center;
  int fired = 0;
  center.on_notify([&](const UserNotification&) { ++fired; });
  center.notify(removal(kDevA));
  center.notify(removal(kDevA));  // suppressed -> no callback
  EXPECT_EQ(fired, 1);
}

TEST(NotificationReasonStrings, AllNamed) {
  EXPECT_EQ(to_string(NotificationReason::kRemoveDevice), "remove-device");
  EXPECT_EQ(to_string(NotificationReason::kManualReauthRequired),
            "manual-reauth-required");
  EXPECT_EQ(to_string(NotificationReason::kUnknownDeviceQuarantined),
            "unknown-device-quarantined");
}

}  // namespace
}  // namespace iotsentinel::core
