// Sharded gateway pipeline tests: SPSC ring semantics, serial-vs-sharded
// verdict/event equivalence, per-shard packet-order preservation, clean
// shutdown with in-flight packets, and batched-assessment equivalence.
// These are the suites the CI ThreadSanitizer job runs.
#include "core/gateway_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/security_gateway.hpp"
#include "core/spsc_ring.hpp"
#include "net/builder.hpp"
#include "net/parser.hpp"
#include "sdn/enforcement_audit.hpp"
#include "simnet/corpus.hpp"
#include "simnet/device_catalog.hpp"
#include "simnet/traffic_generator.hpp"

namespace iotsentinel::core {
namespace {

// ---------------------------------------------------------------- SpscRing

TEST(SpscRing, StartsEmptyAndPopFails) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, -1);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
}

TEST(SpscRing, FullRingRejectsPushWithoutConsumingValue) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));
  // FIFO intact after the rejected push.
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(99));  // slot freed
}

TEST(SpscRing, WraparoundPreservesFifoOrder) {
  SpscRing<int> ring(4);
  int next_push = 0, next_pop = 0;
  // Push/pop far beyond capacity so the cursors wrap many times.
  for (int round = 0; round < 100; ++round) {
    const int burst = 1 + round % 4;
    for (int i = 0; i < burst; ++i) ASSERT_TRUE(ring.try_push(next_push++));
    for (int i = 0; i < burst; ++i) {
      int out = -1;
      ASSERT_TRUE(ring.try_pop(out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MoveOnlyElementsPassThrough) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRing, RejectedPushLeavesValueIntact) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto value = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(value)));
  ASSERT_NE(value, nullptr);  // still ours after the failed push
  EXPECT_EQ(*value, 3);
}

TEST(SpscRing, CrossThreadTransferKeepsOrder) {
  // The memory-ordering proof the TSan job exercises: one producer, one
  // consumer, every element and its order observed intact.
  constexpr int kCount = 200'000;
  SpscRing<int> ring(64);
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  int expected = 0;
  while (expected < kCount) {
    int out = -1;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ------------------------------------------------------------ ShardedGateway

IoTSecurityService make_service() {
  // Same construction as the serial gateway's test: a broad bank so
  // unknown-device detection is reliable.
  const auto corpus = sim::generate_corpus_for(
      {"Aria", "EdimaxCam", "HueBridge", "MAXGateway", "Withings",
       "WeMoLink", "EdnetCam", "Lightify"},
      12, 33);
  DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  VulnerabilityDb db;
  for (const char* clean : {"Aria", "HueBridge", "MAXGateway", "Withings",
                            "WeMoLink", "EdnetCam", "Lightify"}) {
    db.mark_assessed(clean);
  }
  db.add("EdimaxCam", {.id = "CVE-X", .cvss = 9.0, .summary = "bad"});
  IoTSecurityService service(std::move(identifier), std::move(db));
  service.register_endpoints("EdimaxCam",
                             {net::Ipv4Address::of(104, 22, 7, 70)});
  return service;
}

/// One multi-device onboarding trace: setup captures of several devices
/// (trained types, a vulnerable type, and one never-trained type),
/// interleaved in timestamp order like a real mixed capture.
std::vector<sim::TimedFrame> make_trace() {
  const char* kTypes[] = {"Aria",      "EdimaxCam", "HueBridge", "MAXGateway",
                          "Withings",  "WeMoLink",  "EdnetCam",  "Lightify",
                          "iKettle2",  "Aria",      "EdimaxCam", "HueBridge"};
  std::vector<sim::TimedFrame> trace;
  std::uint32_t instance = 0;
  for (const char* type : kTypes) {
    const auto* profile = sim::find_profile(type);
    EXPECT_NE(profile, nullptr);
    sim::GeneratorConfig config;
    // Stagger onboarding starts so setup phases overlap.
    config.start_time_us = (instance % 4) * 750'000;
    sim::TrafficGenerator gen(config);
    ml::Rng rng(1000 + instance);
    const auto mac = sim::TrafficGenerator::mint_mac(*profile, instance);
    const auto ip = net::Ipv4Address::of(
        192, 168, 0, static_cast<std::uint8_t>(50 + instance));
    for (auto& tf : gen.generate(*profile, mac, ip, rng)) {
      trace.push_back(std::move(tf));
    }
    ++instance;
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const sim::TimedFrame& a, const sim::TimedFrame& b) {
                     return a.timestamp_us < b.timestamp_us;
                   });
  return trace;
}

/// Order-independent, timestamp-independent event comparison key.
using EventKey = std::tuple<std::uint64_t, std::string, int, bool>;

std::vector<EventKey> event_keys(const std::vector<GatewayEvent>& events) {
  std::vector<EventKey> keys;
  keys.reserve(events.size());
  for (const auto& e : events) {
    keys.emplace_back(e.device.to_u64(), e.device_type,
                      static_cast<int>(e.level), e.is_new_type);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(ShardedGateway, VerdictsMatchSerialGatewayAtEveryShardCount) {
  const auto service = make_service();
  const auto trace = make_trace();

  // Serial reference.
  SecurityGateway serial(service);
  for (const auto& tf : trace) serial.on_frame(tf.frame, tf.timestamp_us);
  serial.finish_pending_captures();
  const auto expected = event_keys(serial.events());
  ASSERT_FALSE(expected.empty());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    ShardedGatewayConfig config;
    config.num_shards = shards;
    ShardedGateway gw(service, config);
    for (const auto& tf : trace) gw.submit(tf.frame, tf.timestamp_us);
    gw.finish();

    EXPECT_EQ(event_keys(gw.events()), expected)
        << "event set diverged at " << shards << " shard(s)";
    // The installed enforcement levels must agree device by device.
    for (const auto& e : serial.events()) {
      EXPECT_EQ(gw.controller().level_of(e.device),
                serial.controller().level_of(e.device));
    }
  }
}

TEST(ShardedGateway, PreservesPerShardPacketOrder) {
  const auto service = make_service();
  const auto trace = make_trace();

  ShardedGatewayConfig config;
  config.num_shards = 3;
  config.record_frame_log = true;
  ShardedGateway gw(service, config);
  for (const auto& tf : trace) gw.submit(tf.frame, tf.timestamp_us);
  gw.finish();

  // Every frame must appear on exactly the shard its source MAC routes
  // to, in exactly the submission (timestamp) order of that shard's
  // subsequence of the trace.
  std::vector<std::vector<ShardedGateway::FrameLogEntry>> expected(
      gw.num_shards());
  for (const auto& tf : trace) {
    const net::ParsedPacket pkt =
        net::parse_ethernet_frame(tf.frame, tf.timestamp_us);
    expected[gw.shard_of(pkt.src_mac)].push_back(
        {tf.timestamp_us, pkt.src_mac});
  }
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < gw.num_shards(); ++s) {
    EXPECT_EQ(gw.frame_log(s), expected[s]) << "shard " << s;
    total += gw.shard_packets(s);
  }
  EXPECT_EQ(total, trace.size());
}

TEST(ShardedGateway, CleanShutdownWithInFlightPackets) {
  const auto service = make_service();
  const auto trace = make_trace();

  // Submit everything and immediately tear down: finish() must drain the
  // rings, flush in-progress captures, classify the stragglers and join
  // without losing a frame or an event.
  ShardedGatewayConfig config;
  config.num_shards = 4;
  config.ring_capacity = 64;  // small rings force backpressure too
  ShardedGateway gw(service, config);
  for (const auto& tf : trace) gw.submit(tf.frame, tf.timestamp_us);
  gw.finish();
  gw.finish();  // idempotent

  std::uint64_t total = 0;
  for (std::size_t s = 0; s < gw.num_shards(); ++s) {
    total += gw.shard_packets(s);
  }
  EXPECT_EQ(total, trace.size());

  SecurityGateway serial(service);
  for (const auto& tf : trace) serial.on_frame(tf.frame, tf.timestamp_us);
  serial.finish_pending_captures();
  EXPECT_EQ(event_keys(gw.events()), event_keys(serial.events()));
}

TEST(ShardedGateway, DestructorJoinsWithoutExplicitFinish) {
  const auto service = make_service();
  const auto trace = make_trace();
  std::vector<std::string> observed;
  {
    ShardedGatewayConfig config;
    config.num_shards = 2;
    ShardedGateway gw(service, config);
    gw.on_device_identified(
        [&](const GatewayEvent& e) { observed.push_back(e.device_type); });
    for (const auto& tf : trace) gw.submit(tf.frame, tf.timestamp_us);
    // No finish(): the destructor must drain and join on its own.
  }
  EXPECT_FALSE(observed.empty());
}

// ------------------------------------------------------- batched assessment

TEST(ShardedGateway, BatchedAssessmentMatchesSerialAssess) {
  const auto service = make_service();
  // Probe fingerprints from fresh (differently seeded) captures, plus an
  // untrained type so the new-device path is covered.
  const auto probes = sim::generate_corpus_for(
      {"Aria", "EdimaxCam", "HueBridge", "iKettle2", "WeMoLink"}, 3, 77);

  std::vector<const fp::Fingerprint*> fingerprints;
  for (const auto& pool : probes.by_type) {
    for (const auto& f : pool) fingerprints.push_back(&f);
  }
  std::vector<ServiceVerdict> batch;
  service.assess_batch(fingerprints, batch);
  ASSERT_EQ(batch.size(), fingerprints.size());

  for (std::size_t i = 0; i < fingerprints.size(); ++i) {
    const ServiceVerdict expected = service.assess(*fingerprints[i]);
    EXPECT_EQ(batch[i].device_type, expected.device_type);
    EXPECT_EQ(batch[i].is_known, expected.is_known);
    EXPECT_EQ(batch[i].level, expected.level);
    EXPECT_EQ(batch[i].permitted_endpoints, expected.permitted_endpoints);
    EXPECT_EQ(batch[i].identification.type_index,
              expected.identification.type_index);
    EXPECT_EQ(batch[i].identification.type_name,
              expected.identification.type_name);
    EXPECT_EQ(batch[i].identification.is_new_type,
              expected.identification.is_new_type);
    EXPECT_EQ(batch[i].identification.candidates,
              expected.identification.candidates);
    EXPECT_EQ(batch[i].identification.used_discrimination,
              expected.identification.used_discrimination);
    EXPECT_EQ(batch[i].identification.dissimilarity,
              expected.identification.dissimilarity);
  }
}

TEST(ShardedGateway, SubmitOwnedMatchesBorrowedSubmit) {
  const auto service = make_service();
  const auto trace = make_trace();

  ShardedGatewayConfig config;
  config.num_shards = 3;
  ShardedGateway borrowed(service, config);
  for (const auto& tf : trace) borrowed.submit(tf.frame, tf.timestamp_us);
  borrowed.finish();

  ShardedGateway owned(service, config);
  for (const auto& tf : trace) {
    owned.submit_owned(net::Bytes(tf.frame), tf.timestamp_us);  // copy
  }
  owned.finish();

  EXPECT_EQ(event_keys(owned.events()), event_keys(borrowed.events()));
  for (std::size_t s = 0; s < owned.num_shards(); ++s) {
    EXPECT_EQ(owned.shard_packets(s), borrowed.shard_packets(s));
  }
}

TEST(ShardedGateway, StatsCountFramesStallsAndHighWater) {
  const auto service = make_service();
  const auto trace = make_trace();

  ShardedGatewayConfig config;
  config.num_shards = 2;
  config.ring_capacity = 8;  // tiny rings force visible backpressure
  ShardedGateway gw(service, config);
  const auto before = gw.stats();
  ASSERT_EQ(before.shards.size(), 2u);
  EXPECT_EQ(before.frames_processed, 0u);
  for (const auto& shard : before.shards) {
    EXPECT_EQ(shard.ring_capacity, 8u);
    EXPECT_EQ(shard.ring_high_water, 0u);
  }

  for (const auto& tf : trace) gw.submit(tf.frame, tf.timestamp_us);
  gw.finish();

  const auto after = gw.stats();
  EXPECT_EQ(after.frames_processed, trace.size());
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < after.shards.size(); ++s) {
    const auto& shard = after.shards[s];
    sum += shard.frames_processed;
    EXPECT_EQ(shard.frames_processed, gw.shard_packets(s));
    EXPECT_GT(shard.ring_high_water, 0u);
    EXPECT_LE(shard.ring_high_water, shard.ring_capacity);
  }
  EXPECT_EQ(sum, after.frames_processed);
  // Monotonic: a later snapshot never goes backwards.
  EXPECT_GE(after.submit_stalls, before.submit_stalls);
}

TEST(ShardedGateway, ExpireDepartedSweepsAndReclassifiesReusedMac) {
  // The sharded departure sweep rides the frame rings as a control op
  // with a classifier barrier, so it is ordered exactly like a frame:
  // everything submitted before it is identified first, everything after
  // it sees clean state. A different-type device re-joining on the swept
  // MAC must be re-fingerprinted, never inherit identity or rules.
  const auto service = make_service();
  const auto* aria = sim::find_profile("Aria");
  const auto* cam = sim::find_profile("EdimaxCam");
  ASSERT_NE(aria, nullptr);
  ASSERT_NE(cam, nullptr);
  const auto mac = sim::TrafficGenerator::mint_mac(*aria, 7);
  const auto ip = net::Ipv4Address::of(192, 168, 0, 90);
  const auto gw_ip = net::Ipv4Address::of(192, 168, 0, 1);

  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ShardedGatewayConfig config;
    config.num_shards = shards;
    ShardedGateway gw(service, config);

    // Victim joins and is identified (a late keepalive advances the
    // shard clock past the extractor's idle timeout).
    sim::TrafficGenerator gen;
    ml::Rng rng(500);
    std::uint64_t last = 0;
    for (auto& tf : gen.generate(*aria, mac, ip, rng)) {
      last = tf.timestamp_us;
      gw.submit_owned(std::move(tf.frame), tf.timestamp_us);
    }
    gw.submit_owned(net::build_arp_request(mac, ip, gw_ip),
                    last + 30'000'000);

    // Departure sweep, long after the victim went quiet.
    gw.expire_departed(last + 600'000'000'000ull, 60'000'000ull);

    // Intruder hardware re-joins on the victim's MAC.
    sim::GeneratorConfig rejoin_cfg;
    rejoin_cfg.start_time_us = last + 700'000'000'000ull;
    sim::TrafficGenerator gen2(rejoin_cfg);
    ml::Rng rng2(501);
    for (auto& tf : gen2.generate(*cam, mac, ip, rng2)) {
      gw.submit_owned(std::move(tf.frame), tf.timestamp_us);
    }
    gw.finish();

    std::vector<GatewayEvent> mac_events;
    for (const auto& e : gw.events()) {
      if (e.device == mac) mac_events.push_back(e);
    }
    ASSERT_EQ(mac_events.size(), 2u) << shards << " shard(s)";
    EXPECT_EQ(mac_events[0].device_type, "Aria");
    EXPECT_EQ(mac_events[0].level, sdn::IsolationLevel::kTrusted);
    EXPECT_EQ(mac_events[1].device_type, "EdimaxCam");
    EXPECT_EQ(mac_events[1].level, sdn::IsolationLevel::kRestricted);
    // Final enforcement state is the intruder's own, not inherited.
    EXPECT_EQ(gw.controller().level_of(mac),
              sdn::IsolationLevel::kRestricted);
    EXPECT_GE(gw.stats().devices_expired, 1u);
  }
}

TEST(ShardedGateway, AuditHookSeesFastPathWithZeroViolations) {
  // Enforcement-integrity proof at every shard count: replay every
  // fast-path (cached-rule) verdict against the controller's decision
  // oracle. Zero frames may be forwarded where policy says drop.
  const auto service = make_service();
  const auto trace = make_trace();
  const auto gw_mac = net::MacAddress::of(0x02, 0x47, 0x57, 0, 0, 1);

  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ShardedGatewayConfig config;
    config.num_shards = shards;
    ShardedGateway gw(service, config);
    sdn::EnforcementAuditor auditor(gw.controller());
    gw.set_audit(auditor.hook());

    std::uint64_t now = 0;
    for (const auto& tf : trace) {
      gw.submit(tf.frame, tf.timestamp_us);
      now = std::max(now, tf.timestamp_us);
    }
    // Advance every device's shard clock so all captures idle out, then
    // use the departure barrier (with an idle window nothing can meet)
    // as a sync point: when it completes, every verdict above has been
    // applied on its owning worker.
    std::vector<std::pair<net::MacAddress, net::Ipv4Address>> devices;
    now += 120'000'000;
    for (const auto& tf : trace) {
      const auto pkt = net::parse_ethernet_frame(tf.frame, tf.timestamp_us);
      const bool seen =
          std::any_of(devices.begin(), devices.end(),
                      [&](const auto& d) { return d.first == pkt.src_mac; });
      if (!seen) {
        devices.emplace_back(pkt.src_mac,
                             net::Ipv4Address::of(
                                 192, 168, 0,
                                 static_cast<std::uint8_t>(
                                     50 + devices.size())));
        gw.submit_owned(
            net::build_arp_request(pkt.src_mac, devices.back().second,
                                   net::Ipv4Address::of(192, 168, 0, 1)),
            now++);
      }
    }
    gw.expire_departed(now, /*idle_us=*/~0ull);

    // Post-identification unicast: the first frame of each 5-tuple takes
    // the controller path and installs a micro-flow; the repeats hit the
    // cached fast path — the traffic the auditor checks. Mix of Trusted
    // (forward), Restricted and Strict (drop) devices.
    now += 1'000'000;
    for (const auto& [mac, ip] : devices) {
      for (int rep = 0; rep < 4; ++rep) {
        gw.submit_owned(
            net::build_tcp_syn(mac, gw_mac, ip,
                               net::Ipv4Address::of(8, 8, 8, 8), 50000, 443,
                               1),
            now++);
      }
    }
    gw.finish();

    EXPECT_GT(auditor.checked(), 0u) << shards << " shard(s)";
    EXPECT_EQ(auditor.violations(), 0u) << shards << " shard(s)";
    for (const auto& sample : auditor.violation_samples()) {
      ADD_FAILURE() << sample;
    }
  }
}

TEST(ShardedGateway, StatsCountMalformedAndDroppedFrames) {
  const auto service = make_service();
  ShardedGatewayConfig config;
  config.num_shards = 2;
  ShardedGateway gw(service, config);
  gw.submit_owned(net::Bytes(8, 0xee), 1'000);  // runt
  gw.submit_owned(net::build_arp_request(net::MacAddress(),  // zero src
                                         net::Ipv4Address::of(192, 168, 0, 9),
                                         net::Ipv4Address::of(192, 168, 0, 1)),
                  2'000);
  gw.submit_owned(
      net::build_arp_request(net::MacAddress::of(0x02, 1, 2, 3, 4, 5),
                             net::Ipv4Address::of(192, 168, 0, 9),
                             net::Ipv4Address::of(192, 168, 0, 1)),
      3'000);  // well-formed
  gw.finish();
  const auto stats = gw.stats();
  EXPECT_EQ(stats.frames_processed, 3u);
  EXPECT_EQ(stats.malformed_frames, 2u);
  EXPECT_GE(stats.dropped_frames, 2u);
  std::uint64_t per_shard = 0;
  for (const auto& shard : stats.shards) per_shard += shard.malformed_frames;
  EXPECT_EQ(per_shard, stats.malformed_frames);
}

}  // namespace
}  // namespace iotsentinel::core
