// CRC32C against published test vectors (RFC 3720 appendix B.4) plus the
// properties the IOTS1 container leans on: chunked computation and
// guaranteed detection of single-byte corruption.
#include "net/crc32.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "ml/rng.hpp"

namespace iotsentinel::net {
namespace {

std::uint32_t crc_of(std::string_view s) {
  return crc32c(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

TEST(Crc32c, KnownVectors) {
  EXPECT_EQ(crc_of(""), 0x00000000u);
  EXPECT_EQ(crc_of("a"), 0xc1d04330u);
  EXPECT_EQ(crc_of("123456789"), 0xe3069283u);

  const std::vector<std::uint8_t> zeros(32, 0x00);
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
  const std::vector<std::uint8_t> ones(32, 0xff);
  EXPECT_EQ(crc32c(ones), 0x62a8ab43u);
  std::vector<std::uint8_t> ascending(32);
  for (std::size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(crc32c(ascending), 0x46dd794eu);
}

TEST(Crc32c, ChunkedComputationMatchesOneShot) {
  std::vector<std::uint8_t> data(1027);  // odd size exercises the tail loop
  ml::Rng rng(5);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.uniform(0.0, 256.0));
  }
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{512}, data.size()}) {
    const std::uint32_t head =
        crc32c(std::span(data).subspan(0, split));
    EXPECT_EQ(crc32c(std::span(data).subspan(split), head), whole)
        << "split=" << split;
  }
}

TEST(Crc32c, DetectsEverySingleByteCorruption) {
  std::vector<std::uint8_t> data(257);
  ml::Rng rng(6);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.uniform(0.0, 256.0));
  }
  const std::uint32_t good = crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0xff;
    EXPECT_NE(crc32c(data), good) << "flip at " << i;
    data[i] ^= 0xff;
  }
}

}  // namespace
}  // namespace iotsentinel::net
