// Flow-level traffic filtering (the paper's "extend the traffic filtering
// mechanism ... up to the level of individual flows").
#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"
#include "sdn/controller.hpp"

namespace iotsentinel::sdn {
namespace {

using net::Ipv4Address;
using net::MacAddress;

const MacAddress kCam = MacAddress::of(0x02, 1, 0, 0, 0, 1);
const MacAddress kPeer = MacAddress::of(0x02, 2, 0, 0, 0, 2);
const Ipv4Address kCamIp = Ipv4Address::of(192, 168, 0, 30);
const Ipv4Address kPeerIp = Ipv4Address::of(192, 168, 0, 31);

net::ParsedPacket tcp_to(const MacAddress& src_mac, Ipv4Address src_ip,
                         const MacAddress& dst_mac, Ipv4Address dst_ip,
                         std::uint16_t dst_port) {
  return net::parse_ethernet_frame(
      net::build_tcp_syn(src_mac, dst_mac, src_ip, dst_ip, 50000, dst_port,
                         1),
      1);
}

net::ParsedPacket udp_to(const MacAddress& src_mac, Ipv4Address src_ip,
                         const MacAddress& dst_mac, Ipv4Address dst_ip,
                         std::uint16_t dst_port) {
  const auto udp = net::build_udp_payload(50000, dst_port, {});
  return net::parse_ethernet_frame(
      net::build_ipv4(src_mac, dst_mac, src_ip, dst_ip, net::ipproto::kUdp,
                      udp),
      1);
}

TEST(TrafficFilter, AppliesRespectsDirectionAndFields) {
  TrafficFilter telnet{.direction = FilterDirection::kToDevice,
                       .ip_proto = std::uint8_t{6},
                       .dst_port = std::uint16_t{23},
                       .drop = true,
                       .label = "block-telnet"};
  const auto pkt = tcp_to(kPeer, kPeerIp, kCam, kCamIp, 23);
  EXPECT_TRUE(telnet.applies(pkt, /*from_device=*/false));
  EXPECT_FALSE(telnet.applies(pkt, /*from_device=*/true));  // wrong direction
  const auto http = tcp_to(kPeer, kPeerIp, kCam, kCamIp, 80);
  EXPECT_FALSE(telnet.applies(http, false));  // wrong port
  const auto udp = udp_to(kPeer, kPeerIp, kCam, kCamIp, 23);
  EXPECT_FALSE(telnet.applies(udp, false));  // wrong protocol
}

TEST(TrafficFilter, FirstMatchingFilterWins) {
  EnforcementRule rule{.device = kCam, .level = IsolationLevel::kTrusted};
  rule.flow_filters.push_back({.direction = FilterDirection::kToDevice,
                               .dst_port = std::uint16_t{80},
                               .drop = false,
                               .label = "allow-http"});
  rule.flow_filters.push_back({.direction = FilterDirection::kToDevice,
                               .ip_proto = std::uint8_t{6},
                               .drop = true,
                               .label = "drop-other-tcp"});
  const auto http = tcp_to(kPeer, kPeerIp, kCam, kCamIp, 80);
  const auto ssh = tcp_to(kPeer, kPeerIp, kCam, kCamIp, 22);
  EXPECT_EQ(rule.filter_verdict_drop(http, false), std::optional<bool>(false));
  EXPECT_EQ(rule.filter_verdict_drop(ssh, false), std::optional<bool>(true));
  // UDP matches neither filter.
  const auto udp = udp_to(kPeer, kPeerIp, kCam, kCamIp, 5000);
  EXPECT_FALSE(rule.filter_verdict_drop(udp, false).has_value());
}

class ControllerFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Camera: trusted, but inbound telnet/ssh blocked, and egress IRC
    // (6667) blocked (C2 channel of a known botnet).
    EnforcementRule cam{.device = kCam, .level = IsolationLevel::kTrusted};
    cam.flow_filters.push_back({.direction = FilterDirection::kToDevice,
                                .ip_proto = std::uint8_t{6},
                                .dst_port = std::uint16_t{23},
                                .drop = true,
                                .label = "block-telnet"});
    cam.flow_filters.push_back({.direction = FilterDirection::kToDevice,
                                .ip_proto = std::uint8_t{6},
                                .dst_port = std::uint16_t{22},
                                .drop = true,
                                .label = "block-ssh"});
    cam.flow_filters.push_back({.direction = FilterDirection::kFromDevice,
                                .ip_proto = std::uint8_t{6},
                                .dst_port = std::uint16_t{6667},
                                .drop = true,
                                .label = "block-irc-c2"});
    controller_.apply_rule(std::move(cam), 0);
    controller_.apply_rule({.device = kPeer,
                            .level = IsolationLevel::kTrusted},
                           0);
  }

  FlowAction run(const net::ParsedPacket& pkt) {
    return controller_.packet_in(pkt, 1).action;
  }

  Controller controller_;
};

TEST_F(ControllerFilterTest, InboundTelnetAndSshBlocked) {
  EXPECT_EQ(run(tcp_to(kPeer, kPeerIp, kCam, kCamIp, 23)), FlowAction::kDrop);
  EXPECT_EQ(run(tcp_to(kPeer, kPeerIp, kCam, kCamIp, 22)), FlowAction::kDrop);
}

TEST_F(ControllerFilterTest, OtherInboundTrafficUnaffected) {
  EXPECT_EQ(run(tcp_to(kPeer, kPeerIp, kCam, kCamIp, 80)),
            FlowAction::kForward);
  EXPECT_EQ(run(udp_to(kPeer, kPeerIp, kCam, kCamIp, 5000)),
            FlowAction::kForward);
}

TEST_F(ControllerFilterTest, EgressC2PortBlockedEvenForTrustedDevice) {
  // Trusted => full Internet, EXCEPT the filtered port.
  const auto c2 = tcp_to(kCam, kCamIp, MacAddress::of(2, 0, 0, 0, 0, 9),
                         Ipv4Address::of(45, 155, 205, 86), 6667);
  EXPECT_EQ(run(c2), FlowAction::kDrop);
  const auto https = tcp_to(kCam, kCamIp, MacAddress::of(2, 0, 0, 0, 0, 9),
                            Ipv4Address::of(45, 155, 205, 86), 443);
  EXPECT_EQ(run(https), FlowAction::kForward);
}

TEST_F(ControllerFilterTest, ReasonTagsIdentifyTheFilter) {
  const auto decision = controller_.packet_in(
      tcp_to(kPeer, kPeerIp, kCam, kCamIp, 23), 1);
  EXPECT_STREQ(decision.reason, "flow-filter-ingress");
  const auto egress = controller_.packet_in(
      tcp_to(kCam, kCamIp, kPeer, Ipv4Address::of(8, 8, 8, 8), 6667), 1);
  EXPECT_STREQ(egress.reason, "flow-filter-egress");
}

TEST_F(ControllerFilterTest, AllowFilterOverridesWhitelistMiss) {
  // A Restricted device whose whitelist is empty but with an explicit
  // allow filter for NTP egress: the filter wins.
  const MacAddress plug = MacAddress::of(0x02, 3, 0, 0, 0, 3);
  EnforcementRule rule{.device = plug, .level = IsolationLevel::kRestricted};
  rule.flow_filters.push_back({.direction = FilterDirection::kFromDevice,
                               .ip_proto = std::uint8_t{17},
                               .dst_port = std::uint16_t{123},
                               .drop = false,
                               .label = "allow-ntp"});
  controller_.apply_rule(std::move(rule), 0);
  const auto ntp = udp_to(plug, Ipv4Address::of(192, 168, 0, 40),
                          MacAddress::of(2, 0, 0, 0, 0, 9),
                          Ipv4Address::of(94, 130, 49, 186), 123);
  EXPECT_EQ(run(ntp), FlowAction::kForward);
  // Anything else from the restricted plug toward the Internet drops.
  const auto other = udp_to(plug, Ipv4Address::of(192, 168, 0, 40),
                            MacAddress::of(2, 0, 0, 0, 0, 9),
                            Ipv4Address::of(94, 130, 49, 186), 9999);
  EXPECT_EQ(run(other), FlowAction::kDrop);
}

}  // namespace
}  // namespace iotsentinel::sdn
