#include "core/device_tracker.hpp"

#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::core {
namespace {

const net::MacAddress kDev = net::MacAddress::of(0x02, 5, 5, 5, 5, 5);
const net::MacAddress kGw = net::MacAddress::of(0x02, 1, 1, 1, 1, 1);
const net::Ipv4Address kDevIp = net::Ipv4Address::of(192, 168, 0, 60);
const net::Ipv4Address kGwIp = net::Ipv4Address::of(192, 168, 0, 1);

void feed(DeviceTracker& tracker, const net::Bytes& frame, std::uint64_t ts) {
  tracker.observe(net::parse_ethernet_frame(frame, ts), frame);
}

TEST(DeviceTracker, GleansHostnameFromDhcp) {
  DeviceTracker tracker;
  feed(tracker,
       net::build_dhcp(kDev, net::dhcptype::kDiscover, 1,
                       net::Ipv4Address::any(), {1, 3, 6}, "smart-cam"),
       1000);
  const TrackedDevice* device = tracker.find(kDev);
  ASSERT_NE(device, nullptr);
  EXPECT_EQ(device->hostname, "smart-cam");
  EXPECT_EQ(device->first_seen_us, 1000u);
}

TEST(DeviceTracker, GleansDnsQueries) {
  DeviceTracker tracker;
  feed(tracker,
       net::build_dns_query(kDev, kGw, kDevIp, kGwIp, 50000, 1,
                            "cloud.vendor-a.com"),
       1000);
  feed(tracker,
       net::build_dns_query(kDev, kGw, kDevIp, kGwIp, 50001, 2,
                            "ntp.vendor-a.com"),
       2000);
  feed(tracker,
       net::build_dns_query(kDev, kGw, kDevIp, kGwIp, 50002, 3,
                            "cloud.vendor-a.com"),  // repeat: dedup'd
       3000);
  const TrackedDevice* device = tracker.find(kDev);
  ASSERT_NE(device, nullptr);
  EXPECT_EQ(device->dns_queries.size(), 2u);
  EXPECT_TRUE(device->dns_queries.contains("cloud.vendor-a.com"));
  EXPECT_EQ(device->ip, kDevIp);
}

TEST(DeviceTracker, CountsTrafficAndTimestamps) {
  DeviceTracker tracker;
  const auto frame =
      net::build_dns_query(kDev, kGw, kDevIp, kGwIp, 50000, 1, "x.com");
  feed(tracker, frame, 1000);
  feed(tracker, frame, 5000);
  const TrackedDevice* device = tracker.find(kDev);
  ASSERT_NE(device, nullptr);
  EXPECT_EQ(device->packets, 2u);
  EXPECT_EQ(device->bytes, 2 * frame.size());
  EXPECT_EQ(device->first_seen_us, 1000u);
  EXPECT_EQ(device->last_seen_us, 5000u);
}

TEST(DeviceTracker, MarkIdentifiedAttachesVerdict) {
  DeviceTracker tracker;
  feed(tracker, net::build_gratuitous_arp(kDev, kDevIp), 1000);
  tracker.mark_identified(kDev, "EdimaxCam", sdn::IsolationLevel::kRestricted);
  const TrackedDevice* device = tracker.find(kDev);
  ASSERT_NE(device, nullptr);
  EXPECT_EQ(device->device_type, "EdimaxCam");
  EXPECT_EQ(device->level, sdn::IsolationLevel::kRestricted);
  const std::string summary = device->summary();
  EXPECT_NE(summary.find("EdimaxCam"), std::string::npos);
  EXPECT_NE(summary.find("Restricted"), std::string::npos);
}

TEST(DeviceTracker, MarkIdentifiedCreatesUnknownDevice) {
  DeviceTracker tracker;
  tracker.mark_identified(kDev, "Aria", sdn::IsolationLevel::kTrusted);
  EXPECT_NE(tracker.find(kDev), nullptr);
}

TEST(DeviceTracker, IgnoresMulticastSources) {
  DeviceTracker tracker;
  auto pkt = net::parse_ethernet_frame(
      net::build_gratuitous_arp(kDev, kDevIp), 1);
  pkt.src_mac = net::MacAddress::of(0x01, 0, 0x5e, 0, 0, 1);
  tracker.observe(pkt);
  EXPECT_EQ(tracker.size(), 0u);
}

TEST(DeviceTracker, IdleDevicesAndForget) {
  DeviceTracker tracker;
  feed(tracker, net::build_gratuitous_arp(kDev, kDevIp), 1000);
  const auto other = net::MacAddress::of(0x02, 9, 9, 9, 9, 9);
  feed(tracker,
       net::build_gratuitous_arp(other, net::Ipv4Address::of(192, 168, 0, 61)),
       50'000'000);

  const auto idle = tracker.idle_devices(60'000'000, 30'000'000);
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_EQ(idle[0], kDev);

  EXPECT_TRUE(tracker.forget(kDev));
  EXPECT_FALSE(tracker.forget(kDev));
  EXPECT_EQ(tracker.size(), 1u);
}

TEST(DeviceTracker, AllSortsByRecency) {
  DeviceTracker tracker;
  const auto a = net::MacAddress::of(0x02, 1, 0, 0, 0, 1);
  const auto b = net::MacAddress::of(0x02, 1, 0, 0, 0, 2);
  feed(tracker, net::build_gratuitous_arp(a, kDevIp), 1000);
  feed(tracker, net::build_gratuitous_arp(b, kDevIp), 2000);
  const auto all = tracker.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->mac, b);  // most recent first
  EXPECT_EQ(all[1]->mac, a);
}

TEST(DeviceTracker, ForEachVisitsEveryDeviceWithoutAllocating) {
  DeviceTracker tracker;
  const auto a = net::MacAddress::of(0x02, 1, 0, 0, 0, 1);
  const auto b = net::MacAddress::of(0x02, 1, 0, 0, 0, 2);
  feed(tracker, net::build_gratuitous_arp(a, kDevIp), 1000);
  feed(tracker, net::build_gratuitous_arp(b, kDevIp), 2000);

  std::size_t visited = 0;
  std::uint64_t packet_total = 0;
  bool saw_a = false;
  bool saw_b = false;
  tracker.for_each([&](const TrackedDevice& device) {
    ++visited;
    packet_total += device.packets;
    saw_a = saw_a || device.mac == a;
    saw_b = saw_b || device.mac == b;
  });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(packet_total, 2u);
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(DeviceTracker, IdleDevicesIntoReusesTheCallerBuffer) {
  DeviceTracker tracker;
  const auto a = net::MacAddress::of(0x02, 1, 0, 0, 0, 1);
  const auto b = net::MacAddress::of(0x02, 1, 0, 0, 0, 2);
  feed(tracker, net::build_gratuitous_arp(a, kDevIp), 1'000'000);
  feed(tracker, net::build_gratuitous_arp(b, kDevIp), 50'000'000);

  std::vector<net::MacAddress> scratch;
  tracker.idle_devices_into(60'000'000, 30'000'000, scratch);
  ASSERT_EQ(scratch.size(), 1u);
  EXPECT_EQ(scratch[0], a);

  // The buffer is cleared and refilled, never appended to.
  tracker.idle_devices_into(120'000'000, 30'000'000, scratch);
  EXPECT_EQ(scratch.size(), 2u);
  tracker.idle_devices_into(60'000'000, 59'500'000, scratch);
  EXPECT_TRUE(scratch.empty());
}

TEST(DeviceTracker, WorksWithoutFrameBytes) {
  DeviceTracker tracker;
  const auto pkt = net::parse_ethernet_frame(
      net::build_dns_query(kDev, kGw, kDevIp, kGwIp, 50000, 1, "x.com"), 7);
  tracker.observe(pkt);  // metadata only
  const TrackedDevice* device = tracker.find(kDev);
  ASSERT_NE(device, nullptr);
  EXPECT_TRUE(device->dns_queries.empty());  // no content without bytes
  EXPECT_EQ(device->packets, 1u);
}

}  // namespace
}  // namespace iotsentinel::core
