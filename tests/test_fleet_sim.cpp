// FleetSim contract tests: the merged fleet event stream is globally
// time-ordered, bit-identical across runs and shard counts (the
// determinism the paper-reproduction benches rely on), and the
// simulator's memory stays O(active devices) over simulated days.
#include "simnet/fleet_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "net/crc32.hpp"
#include "simnet/device_catalog.hpp"

namespace iotsentinel::sim {
namespace {

constexpr std::uint64_t kHourUs = 3'600'000'000ULL;

/// Compact event identity: enough to prove bit-equality of streams.
struct EventKey {
  std::uint64_t timestamp_us;
  std::uint32_t device_id;
  std::uint32_t frame_crc;
  friend bool operator==(const EventKey&, const EventKey&) = default;
  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.timestamp_us != b.timestamp_us) {
      return a.timestamp_us < b.timestamp_us;
    }
    return a.device_id < b.device_id;
  }
};

FleetConfig small_config() {
  FleetConfig config;
  config.seed = 42;
  config.sim_end_us = 2 * kHourUs;
  config.join_window_us = kHourUs / 2;
  return config;
}

std::vector<EventKey> drain(FleetSim& sim) {
  std::vector<EventKey> out;
  while (auto event = sim.next()) {
    out.push_back({event->frame.timestamp_us, event->device_id,
                   net::crc32c(event->frame.frame)});
  }
  return out;
}

TEST(FleetSim, StreamIsTimeOrderedAndAttributed) {
  const Roster& roster = device_roster();
  FleetSim sim(roster, 40, small_config());
  EXPECT_EQ(sim.num_devices(), 40u);
  EXPECT_EQ(sim.local_devices(), 40u);

  std::uint64_t last_ts = 0;
  std::uint32_t last_id = 0;
  std::map<std::uint32_t, std::size_t> per_device;
  std::size_t events = 0;
  while (auto event = sim.next()) {
    // Global (timestamp, device_id) order.
    ASSERT_GE(event->frame.timestamp_us, last_ts);
    if (event->frame.timestamp_us == last_ts && events > 0) {
      ASSERT_GE(event->device_id, last_id);
    }
    last_ts = event->frame.timestamp_us;
    last_id = event->device_id;
    ASSERT_LE(last_ts, small_config().sim_end_us);

    // Every frame's source MAC is the id-minted MAC of its device.
    ASSERT_LT(event->device_id, 40u);
    const auto& profile =
        roster.entries[FleetSim::type_index_of(roster, event->device_id)]
            .profile;
    const auto expected =
        TrafficGenerator::mint_mac(profile, event->device_id);
    ASSERT_GE(event->frame.frame.size(), 12u);
    EXPECT_TRUE(std::equal(expected.octets().begin(), expected.octets().end(),
                           event->frame.frame.begin() + 6));
    ++per_device[event->device_id];
    ++events;
  }
  EXPECT_EQ(sim.events_emitted(), events);
  // Two simulated hours give every device its setup burst at minimum.
  EXPECT_EQ(per_device.size(), 40u);
  EXPECT_GT(events, 40u * 10u);
  // The stream ended because the horizon retired every device.
  EXPECT_EQ(sim.active_devices(), 0u);
  EXPECT_FALSE(sim.next().has_value());
}

TEST(FleetSim, SameSeedIsBitIdentical) {
  const Roster& roster = device_roster();
  FleetSim a(roster, 30, small_config());
  FleetSim b(roster, 30, small_config());
  // Interleaved pulls: neither instance may leak state into the other.
  std::vector<EventKey> from_a, from_b;
  for (;;) {
    auto ea = a.next();
    if (ea) {
      from_a.push_back({ea->frame.timestamp_us, ea->device_id,
                        net::crc32c(ea->frame.frame)});
    }
    auto eb = b.next();
    if (eb) {
      from_b.push_back({eb->frame.timestamp_us, eb->device_id,
                        net::crc32c(eb->frame.frame)});
    }
    if (!ea && !eb) break;
  }
  ASSERT_FALSE(from_a.empty());
  EXPECT_EQ(from_a, from_b);

  FleetConfig other = small_config();
  other.seed = 43;
  FleetSim c(roster, 30, other);
  EXPECT_NE(from_a, drain(c));
}

TEST(FleetSim, ShardUnionEqualsUnshardedStream) {
  const Roster& roster = device_roster();
  FleetSim whole(roster, 24, small_config());
  const std::vector<EventKey> reference = drain(whole);
  ASSERT_FALSE(reference.empty());

  for (std::uint32_t num_shards : {2u, 4u}) {
    std::vector<EventKey> merged;
    std::size_t local_total = 0;
    for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
      FleetConfig config = small_config();
      config.shard = shard;
      config.num_shards = num_shards;
      FleetSim part(roster, 24, config);
      EXPECT_EQ(part.num_devices(), 24u);
      local_total += part.local_devices();
      const auto events = drain(part);
      // Each shard only ever emits its own devices.
      for (const auto& e : events) {
        EXPECT_EQ(e.device_id % num_shards, shard);
      }
      merged.insert(merged.end(), events.begin(), events.end());
    }
    EXPECT_EQ(local_total, 24u);
    std::sort(merged.begin(), merged.end());
    EXPECT_EQ(merged, reference) << num_shards << " shards";
  }
}

TEST(FleetSim, TypeAssignmentIsCountWeightedRoundRobin) {
  const Roster& roster = device_roster();
  const std::size_t period = roster.total_devices();
  // Over one period every type appears exactly `count` times...
  std::map<std::size_t, std::size_t> histogram;
  for (std::uint32_t id = 0; id < period; ++id) {
    ++histogram[FleetSim::type_index_of(roster, id)];
  }
  ASSERT_EQ(histogram.size(), roster.num_types());
  for (std::size_t i = 0; i < roster.entries.size(); ++i) {
    EXPECT_EQ(histogram[i], roster.entries[i].count)
        << roster.entries[i].profile.name;
  }
  // ...and the assignment cycles with that period.
  for (std::uint32_t id = 0; id < 3 * period; ++id) {
    EXPECT_EQ(FleetSim::type_index_of(roster, id),
              FleetSim::type_index_of(roster, id % period));
  }
  EXPECT_EQ(FleetSim::type_index_of(roster, 0), 0u);
}

TEST(FleetSim, MemoryPlateausOverSimulatedDays) {
  // O(active devices) memory: simulating more time must not grow the
  // footprint once the whole fleet has joined (no trace accumulates).
  const Roster& roster = device_roster();
  FleetConfig config;
  config.seed = 7;
  config.sim_end_us = 3 * 86'400'000'000ULL;  // three simulated days
  config.join_window_us = kHourUs / 4;
  FleetSim sim(roster, 64, config);

  std::size_t events = 0;
  std::size_t early_peak = 0;
  std::size_t late_peak = 0;
  constexpr std::size_t kWarmup = 20'000;
  constexpr std::size_t kTotal = 200'000;
  while (events < kTotal) {
    if (!sim.next()) break;
    ++events;
    if (events % 500 == 0) {
      const std::size_t mem = sim.approx_memory_bytes();
      (events <= kWarmup ? early_peak : late_peak) =
          std::max(events <= kWarmup ? early_peak : late_peak, mem);
    }
  }
  ASSERT_GT(events, kWarmup) << "fleet produced too few events";
  ASSERT_GT(late_peak, 0u);
  // The late peak may wobble (streams buffer a step occurrence) but must
  // not trend upwards: allow 25% headroom over the warm-up peak.
  EXPECT_LE(late_peak, early_peak + early_peak / 4)
      << "memory grew with simulated time: " << early_peak << " -> "
      << late_peak;
  // Sanity: the whole simulator for 64 devices stays well under 1 MiB.
  EXPECT_LT(late_peak, 1u << 20);
}

TEST(FleetSim, HorizonRetiresDevicesDuringSetup) {
  const Roster& roster = device_roster();
  FleetConfig config;
  config.seed = 3;
  config.sim_end_us = 1'000'000;  // 1s horizon
  config.join_window_us = kHourUs;  // most joins are beyond the horizon
  FleetSim sim(roster, 100, config);
  std::size_t events = 0;
  while (sim.next()) ++events;
  EXPECT_EQ(sim.active_devices(), 0u);
  // With joins spread over an hour, almost no device fits a 1s horizon.
  EXPECT_LT(events, 100u);
}

}  // namespace
}  // namespace iotsentinel::sim
