#include <gtest/gtest.h>

#include <unordered_set>

#include "net/ip_address.hpp"
#include "net/mac_address.hpp"

namespace iotsentinel::net {
namespace {

TEST(MacAddress, ParseAndFormatRoundTrip) {
  auto mac = MacAddress::parse("13:73:74:7e:a9:c2");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "13:73:74:7e:a9:c2");
  EXPECT_EQ(mac->to_rule_string(), "13-73-74-7E-A9-C2");
}

TEST(MacAddress, ParseAcceptsDashesAndUppercase) {
  auto mac = MacAddress::parse("AA-BB-CC-DD-EE-FF");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(*mac, MacAddress::of(0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff));
}

TEST(MacAddress, ParseRejectsGarbage) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee").has_value());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee:fg").has_value());
  EXPECT_FALSE(MacAddress::parse("aabbccddeeff0011").has_value());
  EXPECT_FALSE(MacAddress::parse("aa.bb.cc.dd.ee.ff").has_value());
}

TEST(MacAddress, ClassificationBits) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  EXPECT_TRUE(MacAddress::of(0x01, 0x00, 0x5e, 1, 2, 3).is_multicast());
  EXPECT_FALSE(MacAddress::of(0x02, 0, 0, 0, 0, 1).is_multicast());
  EXPECT_TRUE(MacAddress().is_zero());
}

TEST(MacAddress, HashDistributesDistinctKeys) {
  std::unordered_set<MacAddress> set;
  for (int i = 0; i < 1000; ++i) {
    set.insert(MacAddress::of(0x02, 0, 0, 0,
                              static_cast<std::uint8_t>(i >> 8),
                              static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(set.size(), 1000u);
}

TEST(Ipv4Address, ParseAndFormat) {
  auto ip = Ipv4Address::parse("192.168.0.17");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "192.168.0.17");
  EXPECT_EQ(*ip, Ipv4Address::of(192, 168, 0, 17));
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("192.168.0").has_value());
  EXPECT_FALSE(Ipv4Address::parse("192.168.0.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4Address, RangeClassification) {
  EXPECT_TRUE(Ipv4Address::of(10, 1, 2, 3).is_private());
  EXPECT_TRUE(Ipv4Address::of(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address::of(172, 31, 255, 1).is_private());
  EXPECT_FALSE(Ipv4Address::of(172, 32, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address::of(192, 168, 255, 255).is_private());
  EXPECT_FALSE(Ipv4Address::of(8, 8, 8, 8).is_private());
  EXPECT_TRUE(Ipv4Address::of(224, 0, 0, 251).is_multicast());
  EXPECT_TRUE(Ipv4Address::of(239, 255, 255, 250).is_multicast());
  EXPECT_FALSE(Ipv4Address::of(223, 255, 255, 255).is_multicast());
  EXPECT_TRUE(Ipv4Address::broadcast().is_broadcast());
}

TEST(Ipv6Address, LinkLocalFromMacUsesEui64) {
  const auto mac = MacAddress::of(0x02, 0x11, 0x22, 0x33, 0x44, 0x55);
  const auto ll = Ipv6Address::link_local_from_mac(mac.octets());
  const auto& o = ll.octets();
  EXPECT_EQ(o[0], 0xfe);
  EXPECT_EQ(o[1], 0x80);
  EXPECT_EQ(o[8], 0x00);  // U/L bit flipped: 0x02 ^ 0x02
  EXPECT_EQ(o[11], 0xff);
  EXPECT_EQ(o[12], 0xfe);
  EXPECT_EQ(o[15], 0x55);
}

TEST(Ipv6Address, MulticastDetection) {
  EXPECT_TRUE(Ipv6Address::all_nodes().is_multicast());
  EXPECT_TRUE(Ipv6Address::all_routers().is_multicast());
  EXPECT_FALSE(Ipv6Address::link_local_from_mac({0, 1, 2, 3, 4, 5})
                   .is_multicast());
}

TEST(IpAddress, VariantDispatchAndHash) {
  IpAddress v4 = Ipv4Address::of(1, 2, 3, 4);
  IpAddress v6 = Ipv6Address::all_nodes();
  EXPECT_TRUE(v4.is_v4());
  EXPECT_TRUE(v6.is_v6());
  EXPECT_NE(v4, v6);
  std::unordered_set<IpAddress> set{v4, v6, v4};
  EXPECT_EQ(set.size(), 2u);
}

TEST(IpAddress, OrderingIsConsistent) {
  IpAddress a = Ipv4Address::of(1, 2, 3, 4);
  IpAddress b = Ipv4Address::of(1, 2, 3, 5);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, IpAddress(Ipv4Address::of(1, 2, 3, 4)));
}

}  // namespace
}  // namespace iotsentinel::net
