// Roster parser contract tests: every malformed input is rejected with
// a typed error kind naming the offending line (mirroring the model
// store's corruption-test discipline), canonical formatting round-trips,
// and the docs/ROSTER.md worked example stays parseable.
#include "simnet/roster.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace iotsentinel::sim {
namespace {

using Kind = RosterError::Kind;

// A minimal valid roster; single source for the mutation tests below.
constexpr const char* kValidRoster =
    "roster v1\n"                  // line 1
    "type T\n"                     // line 2
    "  model M 1\n"                // line 3
    "  oui 00:11:22\n"             // line 4
    "  dhcp-params 1,3,6\n"        // line 5
    "  retransmit-prob 0.1\n"      // line 6
    "  intra-gap-ms 20\n"          // line 7
    "  step dhcp gap-ms=100\n"     // line 8
    "end\n";                       // line 9

RosterError expect_reject(const std::string& text, Kind kind) {
  RosterResult result = parse_roster(text);
  EXPECT_FALSE(result) << "parse unexpectedly succeeded";
  EXPECT_EQ(result.error().kind, kind) << describe(result.error());
  EXPECT_FALSE(result.error().detail.empty());
  return result.error();
}

void expect_reject_at(const std::string& text, Kind kind, std::size_t line,
                      const std::string& detail_substr) {
  const RosterError error = expect_reject(text, kind);
  EXPECT_EQ(error.line, line) << describe(error);
  EXPECT_NE(error.detail.find(detail_substr), std::string::npos)
      << describe(error);
}

TEST(Roster, MinimalRosterParses) {
  RosterResult result = parse_roster(kValidRoster);
  ASSERT_TRUE(result) << describe(result.error());
  EXPECT_EQ(result.error().kind, Kind::kNone);
  ASSERT_EQ(result->num_types(), 1u);
  const RosterEntry& entry = result->entries[0];
  EXPECT_EQ(entry.profile.name, "T");
  EXPECT_EQ(entry.profile.model, "M 1");
  EXPECT_EQ(entry.count, 1u);
  EXPECT_EQ(entry.fleet, FleetBehavior{});
  ASSERT_EQ(entry.profile.steps.size(), 1u);
  EXPECT_EQ(entry.profile.steps[0].kind, StepKind::kDhcpExchange);
  // Standby derivation ran at `end`: at least the gateway-ARP probe.
  ASSERT_FALSE(entry.profile.standby_steps.empty());
  EXPECT_EQ(entry.profile.standby_steps[0].kind, StepKind::kArpGateway);
  EXPECT_EQ(result->total_devices(), 1u);
  EXPECT_NE(result->find("T"), nullptr);
  EXPECT_EQ(result->find("U"), nullptr);
}

TEST(Roster, HeaderIsMandatory) {
  expect_reject_at("", Kind::kBadHeader, 0, "empty roster");
  expect_reject_at("# only a comment\n", Kind::kBadHeader, 0, "empty roster");
  expect_reject_at("roster v2\n", Kind::kBadHeader, 1, "roster v1");
  expect_reject_at("type T\n", Kind::kBadHeader, 1, "roster v1");
}

TEST(Roster, MalformedLinesAreNamed) {
  // A directive outside any type block.
  expect_reject_at("roster v1\nmodel M\n", Kind::kMalformedLine, 2,
                   "outside a type block");
  // Type names are single tokens.
  expect_reject_at("roster v1\ntype two words\n", Kind::kMalformedLine, 2,
                   "one token");
  // `type` nested in an open block.
  expect_reject_at("roster v1\ntype A\n  model M\ntype B\n",
                   Kind::kMalformedLine, 4, "open type block");
  // `end` takes no value.
  expect_reject_at("roster v1\ntype A\n  model M\n  step dhcp gap-ms=1\n"
                   "end now\n",
                   Kind::kMalformedLine, 5, "takes no value");
  // Step attributes must be key=value.
  expect_reject_at("roster v1\ntype A\n  model M\n  step dhcp gapms\nend\n",
                   Kind::kMalformedLine, 4, "key=value");
  // Step without a kind.
  expect_reject_at("roster v1\ntype A\n  model M\n  step\nend\n",
                   Kind::kMalformedLine, 4, "without a kind");
  // Bad OUI spelling.
  expect_reject_at("roster v1\ntype A\n  oui 001122\n", Kind::kMalformedLine,
                   3, "xx:xx:xx");
  // Bad IPv4 remote.
  expect_reject_at(
      "roster v1\ntype A\n  step tcp remote=1.2.3.999 gap-ms=1\n",
      Kind::kMalformedLine, 3, "IPv4");
  // dhcp-params trailing comma / non-numeric entries.
  expect_reject_at("roster v1\ntype A\n  dhcp-params 1,3,\n",
                   Kind::kMalformedLine, 3, "trailing comma");
  expect_reject_at("roster v1\ntype A\n  dhcp-params 1,x\n",
                   Kind::kMalformedLine, 3, "not an unsigned integer");
  // Non-numeric scalar value.
  expect_reject_at("roster v1\ntype A\n  retransmit-prob often\n",
                   Kind::kMalformedLine, 3, "not a number");
}

TEST(Roster, UnknownDirectiveAndStepKind) {
  expect_reject_at("roster v1\ntype A\n  colour blue\n",
                   Kind::kUnknownDirective, 3, "colour");
  expect_reject_at("roster v1\ntype A\n  step warp-drive gap-ms=1\n",
                   Kind::kUnknownStepKind, 3, "warp-drive");
  expect_reject_at("roster v1\ntype A\n  step dhcp warp=9 gap-ms=1\n",
                   Kind::kUnknownDirective, 3, "warp");
  expect_reject_at("roster v1\ntype A\n  fleet warp=9\n",
                   Kind::kUnknownDirective, 3, "warp");
}

TEST(Roster, DuplicateTypeAndField) {
  expect_reject_at(std::string(kValidRoster) + "type T\n", Kind::kDuplicateType,
                   10, "'T' already defined");
  expect_reject_at("roster v1\ntype A\n  model M\n  model N\n",
                   Kind::kDuplicateField, 4, "repeated within type 'A'");
  // `step` is the one repeatable directive.
  RosterResult multi = parse_roster(
      "roster v1\ntype A\n  model M\n"
      "  step dhcp gap-ms=1\n  step dhcp gap-ms=2\nend\n");
  ASSERT_TRUE(multi) << describe(multi.error());
  EXPECT_EQ(multi->entries[0].profile.steps.size(), 2u);
}

TEST(Roster, OutOfRangeValuesAreNamed) {
  expect_reject_at("roster v1\ntype A\n  retransmit-prob 1.5\n",
                   Kind::kOutOfRange, 3, "within [0, 1], got 1.5");
  expect_reject_at("roster v1\ntype A\n  intra-gap-ms 0\n", Kind::kOutOfRange,
                   3, "intra-gap-ms");
  expect_reject_at("roster v1\ntype A\n  intra-gap-ms -3\n", Kind::kOutOfRange,
                   3, "intra-gap-ms");
  expect_reject_at("roster v1\ntype A\n  count 0\n", Kind::kOutOfRange, 3,
                   "count");
  expect_reject_at("roster v1\ntype A\n  step dhcp repeat=0 gap-ms=1\n",
                   Kind::kOutOfRange, 3, "repeat");
  expect_reject_at("roster v1\ntype A\n  step dhcp skip-prob=2 gap-ms=1\n",
                   Kind::kOutOfRange, 3, "skip-prob");
  expect_reject_at("roster v1\ntype A\n  step dhcp port=70000 gap-ms=1\n",
                   Kind::kOutOfRange, 3, "port");
  expect_reject_at("roster v1\ntype A\n  step dhcp gap-ms=0\n",
                   Kind::kOutOfRange, 3, "gap-ms");
  expect_reject_at("roster v1\ntype A\n  fleet cycles=0\n", Kind::kOutOfRange,
                   3, "cycles");
  expect_reject_at("roster v1\ntype A\n  fleet downtime-s=0\n",
                   Kind::kOutOfRange, 3, "downtime-s");
  expect_reject_at("roster v1\ntype A\n  dhcp-params 300\n", Kind::kOutOfRange,
                   3, "dhcp-params entry");
}

TEST(Roster, MissingFieldsAtEnd) {
  expect_reject_at("roster v1\ntype A\n  step dhcp gap-ms=1\nend\n",
                   Kind::kMissingField, 4, "no model");
  expect_reject_at("roster v1\ntype A\n  model M\nend\n", Kind::kMissingField,
                   4, "no steps");
}

TEST(Roster, TruncatedFileNamesTheOpenBlock) {
  // The error points at the line the unterminated block started on.
  expect_reject_at("roster v1\ntype A\n  model M\n  step dhcp gap-ms=1\n",
                   Kind::kUnterminatedType, 2, "missing its 'end'");
  // Truncation mid-directive still reports the open block.
  expect_reject_at(
      std::string(kValidRoster) + "type U\n  model M\n  step dhcp gap-ms=1",
      Kind::kUnterminatedType, 10, "'U'");
}

TEST(Roster, LoadRosterFileReportsIoErrors) {
  RosterResult result = load_roster_file("/nonexistent/roster.roster");
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error().kind, Kind::kIoError);
  EXPECT_EQ(result.error().line, 0u);
  EXPECT_NE(result.error().detail.find("/nonexistent/roster.roster"),
            std::string::npos);
}

TEST(Roster, DescribeRendersKindLineAndDetail) {
  EXPECT_STREQ(to_string(Kind::kOutOfRange), "out-of-range");
  EXPECT_STREQ(to_string(Kind::kUnterminatedType), "unterminated-type");
  const RosterError error{Kind::kOutOfRange, 12,
                          "skip-prob must be within [0, 1], got 1.5"};
  EXPECT_EQ(describe(error),
            "out-of-range at line 12: skip-prob must be within [0, 1], got "
            "1.5");
  EXPECT_EQ(describe(RosterError{Kind::kIoError, 0, "cannot open 'x'"}),
            "io-error: cannot open 'x'");
}

TEST(Roster, FormatRoundTripsExactly) {
  RosterResult first = parse_roster(kValidRoster);
  ASSERT_TRUE(first);
  const std::string rendered = format_roster(*first);
  RosterResult second = parse_roster(rendered);
  ASSERT_TRUE(second) << describe(second.error());
  EXPECT_EQ(format_roster(*second), rendered);
  ASSERT_EQ(second->num_types(), first->num_types());
  EXPECT_EQ(canonical_profile_text(second->entries[0].profile),
            canonical_profile_text(first->entries[0].profile));
}

TEST(Roster, CommentsAndWhitespaceAreCosmetic) {
  RosterResult result = parse_roster(
      "# leading comment\n\n"
      "roster v1   # trailing comment\n"
      "\ttype T\t\n"
      "  model M 1  # model comment\n"
      "  step dhcp gap-ms=100\n"
      "end\n");
  ASSERT_TRUE(result) << describe(result.error());
  EXPECT_EQ(result->entries[0].profile.model, "M 1");
}

// ---------------------------------------------------------------------------
// docs/ROSTER.md worked example: extracted from the fenced `roster` code
// block so the documentation cannot drift from the parser.

std::string docs_worked_example() {
  std::ifstream in(IOTSENTINEL_DOCS_DIR "/ROSTER.md");
  EXPECT_TRUE(in.good()) << "cannot open docs/ROSTER.md";
  std::string line, example;
  bool in_block = false;
  while (std::getline(in, line)) {
    if (!in_block && line == "```roster") {
      in_block = true;
    } else if (in_block && line == "```") {
      break;
    } else if (in_block) {
      example += line + "\n";
    }
  }
  return example;
}

TEST(RosterDocs, WorkedExampleParses) {
  const std::string example = docs_worked_example();
  ASSERT_FALSE(example.empty()) << "no ```roster block in docs/ROSTER.md";
  RosterResult result = parse_roster(example);
  ASSERT_TRUE(result) << describe(result.error());
  ASSERT_EQ(result->num_types(), 1u);
  const RosterEntry& cam = result->entries[0];
  EXPECT_EQ(cam.profile.name, "DocsCam");
  EXPECT_EQ(cam.profile.model, "DocsCam DC-1");
  EXPECT_EQ(cam.profile.dhcp_hostname, "docscam");
  EXPECT_EQ(cam.count, 2u);
  EXPECT_EQ(cam.fleet.standby_cycles, 6u);
  EXPECT_EQ(cam.fleet.cycle_gap_s, 45.0);
  EXPECT_EQ(cam.fleet.downtime_s, 1800.0);
  ASSERT_EQ(cam.profile.steps.size(), 5u);
  EXPECT_EQ(cam.profile.steps.back().kind, StepKind::kHttpsCloudCheck);
  EXPECT_EQ(cam.profile.steps.back().host, "api.docscam.example");
  // Standby derived as the doc describes: arp-gateway, dns, ntp, https.
  ASSERT_EQ(cam.profile.standby_steps.size(), 4u);
  EXPECT_EQ(cam.profile.standby_steps[0].kind, StepKind::kArpGateway);
  EXPECT_EQ(cam.profile.standby_steps[1].kind, StepKind::kDnsQuery);
  EXPECT_EQ(cam.profile.standby_steps[2].kind, StepKind::kNtpSync);
  EXPECT_EQ(cam.profile.standby_steps[3].kind, StepKind::kHttpsCloudCheck);
}

}  // namespace
}  // namespace iotsentinel::sim
