// Full-pipeline integration: generated pcap file -> pcap parse -> packet
// parse -> streaming extraction -> two-stage identification. Exercises the
// exact byte path a real deployment (tcpdump capture) would take.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/identifier.hpp"
#include "fingerprint/extractor.hpp"
#include "net/parser.hpp"
#include "net/pcap.hpp"
#include "simnet/corpus.hpp"
#include "simnet/traffic_generator.hpp"

namespace iotsentinel {
namespace {

TEST(IntegrationPipeline, PcapFileToIdentification) {
  const std::vector<std::string> types = {"Aria", "HueBridge", "EdnetCam",
                                          "WeMoLink"};
  // Train on in-memory corpora.
  const auto corpus = sim::generate_corpus_for(types, 12, 61);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);

  // Write a fresh capture of each type to disk as pcap, then run the whole
  // ingest path from the file.
  sim::TrafficGenerator gen;
  std::size_t correct = 0;
  for (std::size_t t = 0; t < types.size(); ++t) {
    const auto* profile = sim::find_profile(types[t]);
    ASSERT_NE(profile, nullptr);
    ml::Rng rng(9000 + t);
    const auto mac = sim::TrafficGenerator::mint_mac(*profile, 500 + static_cast<std::uint32_t>(t));
    const auto pcap = gen.generate_pcap(
        *profile, mac, net::Ipv4Address::of(192, 168, 0, 77), rng);

    const std::string path = ::testing::TempDir() + "/iots_integration_" +
                             std::to_string(t) + ".pcap";
    ASSERT_TRUE(net::write_pcap_file(path, pcap));
    const auto parsed = net::read_pcap_file(path);
    std::remove(path.c_str());
    ASSERT_TRUE(parsed.ok) << parsed.error;

    // Streaming extraction over the re-read capture.
    fp::SetupCaptureExtractor extractor;
    for (const auto& rec : parsed.file.records) {
      extractor.observe(net::parse_ethernet_frame(rec.frame, rec.timestamp_us));
    }
    extractor.flush_all();
    ASSERT_EQ(extractor.completed().size(), 1u) << types[t];
    const fp::DeviceCapture& capture = extractor.completed()[0];
    EXPECT_EQ(capture.mac, mac);

    const auto result = identifier.identify(capture.fingerprint);
    if (result.type_index && corpus.type_names[*result.type_index] == types[t]) {
      ++correct;
    }
  }
  EXPECT_EQ(correct, types.size());
}

TEST(IntegrationPipeline, MixedInterleavedCaptureDemultiplexes) {
  // Two devices set up concurrently; their frames interleave on the wire.
  const auto* aria = sim::find_profile("Aria");
  const auto* hue = sim::find_profile("HueBridge");
  sim::TrafficGenerator gen;
  ml::Rng rng_a(71);
  ml::Rng rng_b(72);
  const auto mac_a = sim::TrafficGenerator::mint_mac(*aria, 1);
  const auto mac_b = sim::TrafficGenerator::mint_mac(*hue, 2);
  auto frames_a = gen.generate(*aria, mac_a,
                               net::Ipv4Address::of(192, 168, 0, 10), rng_a);
  auto frames_b = gen.generate(*hue, mac_b,
                               net::Ipv4Address::of(192, 168, 0, 11), rng_b);

  // Merge by timestamp.
  std::vector<sim::TimedFrame> merged;
  merged.reserve(frames_a.size() + frames_b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < frames_a.size() || j < frames_b.size()) {
    const bool take_a =
        j >= frames_b.size() ||
        (i < frames_a.size() &&
         frames_a[i].timestamp_us <= frames_b[j].timestamp_us);
    merged.push_back(take_a ? frames_a[i++] : frames_b[j++]);
  }

  fp::SetupCaptureExtractor extractor;
  for (const auto& tf : merged) {
    extractor.observe(net::parse_ethernet_frame(tf.frame, tf.timestamp_us));
  }
  extractor.flush_all();
  ASSERT_EQ(extractor.completed().size(), 2u);

  // Each capture contains only its own device's packets and is identified
  // correctly by a bank trained on both types.
  const auto corpus = sim::generate_corpus_for({"Aria", "HueBridge"}, 12, 73);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  for (const auto& capture : extractor.completed()) {
    const auto result = identifier.identify(capture.fingerprint);
    ASSERT_TRUE(result.type_index.has_value());
    const std::string& predicted = corpus.type_names[*result.type_index];
    if (capture.mac == mac_a) {
      EXPECT_EQ(predicted, "Aria");
    } else {
      EXPECT_EQ(capture.mac, mac_b);
      EXPECT_EQ(predicted, "HueBridge");
    }
  }
}

TEST(IntegrationPipeline, FirmwareVersionsAreDistinguishable) {
  // The paper defines a device-type as make+model+software version and
  // observed that firmware updates "led to generate distinguishable
  // fingerprints" (Sect. VIII-B). Model an update as a behaviour change:
  // once BOTH versions are trained (the new one added incrementally via
  // add_type, without touching existing classifiers), fingerprints of each
  // version must be attributed to the right version.
  const auto corpus = sim::generate_corpus_for({"Aria", "Withings"}, 12, 81);

  // "Updated firmware": Aria's script with a different DHCP parameter list
  // (changes early packet sizes) and an extra cloud endpoint.
  sim::DeviceProfile updated = *sim::find_profile("Aria");
  updated.name = "Aria-fw2";
  updated.dhcp_params = {1, 3, 6, 15, 42, 119, 121};
  updated.steps.insert(
      updated.steps.begin() + 5,
      sim::SetupStep{.kind = sim::StepKind::kHttpsCloudCheck,
                     .host = "fw2.fitbit.com",
                     .remote = net::Ipv4Address::of(104, 16, 1, 99),
                     .gap_ms = 100});

  // Generate a training corpus for the updated version.
  sim::TrafficGenerator gen;
  std::vector<fp::Fingerprint> fw2_train;
  std::vector<fp::Fingerprint> fw2_test;
  for (std::uint64_t seed = 0; seed < 18; ++seed) {
    ml::Rng rng(8000 + seed);
    const auto frames = gen.generate(
        updated, sim::TrafficGenerator::mint_mac(updated, 900),
        net::Ipv4Address::of(192, 168, 0, 88), rng);
    auto f = fp::fingerprint_from_packets(sim::parse_frames(frames));
    (seed < 12 ? fw2_train : fw2_test).push_back(std::move(f));
  }

  // Train on {Aria(fw1), Withings, Aria-fw2}.
  auto names = corpus.type_names;
  auto by_type = corpus.by_type;
  names.push_back("Aria-fw2");
  by_type.push_back(fw2_train);
  core::DeviceIdentifier identifier;
  identifier.train(names, by_type);

  // Updated-firmware captures are identified as the new version...
  std::size_t fw2_correct = 0;
  for (const auto& f : fw2_test) {
    const auto result = identifier.identify(f);
    if (result.type_index && names[*result.type_index] == "Aria-fw2") {
      ++fw2_correct;
    }
  }
  EXPECT_GE(fw2_correct, fw2_test.size() - 1);

  // ...and old-firmware captures still map to the old version.
  const auto fw1_probe = sim::generate_corpus_for({"Aria"}, 4, 83);
  std::size_t fw1_correct = 0;
  for (const auto& f : fw1_probe.by_type[0]) {
    const auto result = identifier.identify(f);
    if (result.type_index && names[*result.type_index] == "Aria") {
      ++fw1_correct;
    }
  }
  EXPECT_GE(fw1_correct, 3u);
}

}  // namespace
}  // namespace iotsentinel
