#include "core/identifier.hpp"

#include <gtest/gtest.h>

#include "simnet/corpus.hpp"

namespace iotsentinel::core {
namespace {

/// Distinct device-types train/test split: first 10 runs train, rest test.
struct Split {
  std::vector<std::string> names;
  std::vector<std::vector<fp::Fingerprint>> train;
  std::vector<std::vector<fp::Fingerprint>> test;
};

Split make_split(const std::vector<std::string>& names, std::size_t runs,
                 std::uint64_t seed) {
  const auto corpus = sim::generate_corpus_for(names, runs, seed);
  Split split;
  split.names = corpus.type_names;
  split.train.resize(corpus.num_types());
  split.test.resize(corpus.num_types());
  for (std::size_t t = 0; t < corpus.num_types(); ++t) {
    for (std::size_t r = 0; r < corpus.by_type[t].size(); ++r) {
      (r < runs / 2 ? split.train : split.test)[t].push_back(
          corpus.by_type[t][r]);
    }
  }
  return split;
}

TEST(DeviceIdentifier, IdentifiesDistinctTypesOnHeldOut) {
  const Split split = make_split(
      {"Aria", "HueBridge", "MAXGateway", "WeMoLink", "EdimaxCam"}, 16, 3);
  DeviceIdentifier identifier;
  identifier.train(split.names, split.train);

  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t t = 0; t < split.test.size(); ++t) {
    for (const auto& f : split.test[t]) {
      const auto result = identifier.identify(f);
      ++total;
      if (result.type_index && *result.type_index == t) ++correct;
    }
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

TEST(DeviceIdentifier, UnknownDeviceTypeIsRejectedByAll) {
  // Train WITHOUT the Smarter appliance family, then present SmarterCoffee
  // fingerprints: the "one classifier per type" design must reject them
  // everywhere, flagging a new device-type (the paper's discovery
  // property). A reasonably broad bank is used — with only a handful of
  // negative types the classifiers' decision envelopes are too loose for
  // reliable novelty detection.
  const Split split = make_split(
      {"Aria", "MAXGateway", "WeMoLink", "EdimaxCam", "Withings",
       "HomeMaticPlug", "EdnetGateway", "EdnetCam", "Lightify",
       "WeMoInsightSwitch", "D-LinkHomeHub", "D-LinkCam"},
      12, 5);
  DeviceIdentifier identifier;
  identifier.train(split.names, split.train);

  const auto foreign = sim::generate_corpus_for({"SmarterCoffee"}, 6, 11);
  std::size_t flagged_new = 0;
  for (const auto& f : foreign.by_type[0]) {
    const auto result = identifier.identify(f);
    if (result.is_new_type) ++flagged_new;
  }
  EXPECT_GE(flagged_new, 4u);  // most runs rejected by every classifier
}

TEST(DeviceIdentifier, ConfusableSiblingsTriggerDiscrimination) {
  const Split split =
      make_split({"SmarterCoffee", "iKettle2", "Aria"}, 16, 7);
  // Paper-calibrated operating point: sibling classifiers accept each
  // other's fingerprints, forcing edit-distance discrimination.
  IdentifierConfig config;
  config.bank.accept_threshold = kPaperCalibratedAcceptThreshold;
  DeviceIdentifier identifier(config);
  identifier.train(split.names, split.train);

  bool any_discrimination = false;
  for (std::size_t t = 0; t < 2; ++t) {  // the Smarter pair
    for (const auto& f : split.test[t]) {
      const auto result = identifier.identify(f);
      any_discrimination |= result.used_discrimination;
      if (result.used_discrimination) {
        EXPECT_GE(result.candidates.size(), 2u);
        EXPECT_GT(result.distance_computations, 0u);
        EXPECT_GE(result.dissimilarity, 0.0);
        EXPECT_LE(result.dissimilarity, 5.0);
      }
      // Whatever the winner, it must be within the Smarter family.
      if (result.type_index) {
        EXPECT_LT(*result.type_index, 2u)
            << "confused outside the platform family";
      }
    }
  }
  EXPECT_TRUE(any_discrimination);
}

TEST(DeviceIdentifier, ReferencesPerTypeHonoured) {
  const Split split = make_split({"Aria", "HueBridge"}, 16, 9);
  IdentifierConfig config;
  config.references_per_type = 3;
  DeviceIdentifier identifier(config);
  identifier.train(split.names, split.train);
  EXPECT_EQ(identifier.references(0).size(), 3u);
  EXPECT_EQ(identifier.references(1).size(), 3u);
}

TEST(DeviceIdentifier, ReferencesClampedToPoolSize) {
  const Split split = make_split({"Aria", "HueBridge"}, 6, 13);
  IdentifierConfig config;
  config.references_per_type = 50;
  DeviceIdentifier identifier(config);
  identifier.train(split.names, split.train);
  EXPECT_EQ(identifier.references(0).size(), split.train[0].size());
}

TEST(DeviceIdentifier, ClassifyAndDiscriminateComposeLikeIdentify) {
  const Split split =
      make_split({"TP-LinkPlugHS110", "TP-LinkPlugHS100", "Withings"}, 14, 15);
  DeviceIdentifier identifier;
  identifier.train(split.names, split.train);

  const fp::Fingerprint& probe = split.test[0][0];
  const auto full = identifier.identify(probe);
  const auto candidates = identifier.classify(probe.to_fixed());
  ASSERT_EQ(candidates, full.candidates);
  if (candidates.size() > 1) {
    EXPECT_EQ(identifier.discriminate(probe, candidates), *full.type_index);
  } else if (candidates.size() == 1) {
    EXPECT_EQ(candidates.front(), *full.type_index);
  }
}

TEST(DeviceIdentifier, EmptyFingerprintIsNotACrash) {
  const Split split = make_split({"Aria", "HueBridge"}, 8, 17);
  DeviceIdentifier identifier;
  identifier.train(split.names, split.train);
  const fp::Fingerprint empty;
  const auto result = identifier.identify(empty);
  // An all-zero F' should look like nothing we trained on.
  EXPECT_TRUE(result.is_new_type || result.type_index.has_value());
}

}  // namespace
}  // namespace iotsentinel::core
