// Damerau-Levenshtein (OSA) distance: unit cases + parameterized metric
// property sweeps on random fingerprint-like sequences.
#include "distance/damerau_levenshtein.hpp"

#include <gtest/gtest.h>

#include <string>

#include "ml/rng.hpp"

namespace iotsentinel::dist {
namespace {

std::size_t sdist(const std::string& a, const std::string& b) {
  return damerau_levenshtein<char>(std::span<const char>(a.data(), a.size()),
                                   std::span<const char>(b.data(), b.size()));
}

TEST(DamerauLevenshtein, ClassicCases) {
  EXPECT_EQ(sdist("", ""), 0u);
  EXPECT_EQ(sdist("abc", "abc"), 0u);
  EXPECT_EQ(sdist("abc", ""), 3u);
  EXPECT_EQ(sdist("", "abc"), 3u);
  EXPECT_EQ(sdist("abc", "abd"), 1u);     // substitution
  EXPECT_EQ(sdist("abc", "abcd"), 1u);    // insertion
  EXPECT_EQ(sdist("abcd", "abc"), 1u);    // deletion
  EXPECT_EQ(sdist("ab", "ba"), 1u);       // transposition (Damerau!)
  EXPECT_EQ(sdist("ca", "abc"), 3u);      // OSA's known deviation case
  EXPECT_EQ(sdist("kitten", "sitting"), 3u);
}

TEST(DamerauLevenshtein, Transposition) {
  // Plain Levenshtein gives 2 for an adjacent swap; OSA gives 1.
  EXPECT_EQ(sdist("paper", "papre"), 1u);
  EXPECT_EQ(sdist("sentinel", "sentienl"), 1u);
}

fp::Fingerprint make_fp(const std::string& word) {
  fp::Fingerprint f;
  for (char c : word) {
    fp::FeatureVector v{};
    v[0] = static_cast<std::uint32_t>(c);
    f.append(v);
  }
  return f;
}

TEST(FingerprintDistance, PacketColumnsActAsCharacters) {
  EXPECT_EQ(fingerprint_distance(make_fp("abc"), make_fp("abc")), 0u);
  EXPECT_EQ(fingerprint_distance(make_fp("abc"), make_fp("abd")), 1u);
  EXPECT_EQ(fingerprint_distance(make_fp("ab"), make_fp("ba")), 1u);
}

TEST(NormalizedDistance, BoundsAndNormalization) {
  EXPECT_DOUBLE_EQ(
      normalized_fingerprint_distance(make_fp(""), make_fp("")), 0.0);
  EXPECT_DOUBLE_EQ(
      normalized_fingerprint_distance(make_fp("abcd"), make_fp("abcd")), 0.0);
  // Completely different, equal length: distance = len / len = 1.
  EXPECT_DOUBLE_EQ(
      normalized_fingerprint_distance(make_fp("aaaa"), make_fp("bbbb")), 1.0);
  // One empty: distance = |other| / |other| = 1.
  EXPECT_DOUBLE_EQ(
      normalized_fingerprint_distance(make_fp(""), make_fp("xy")), 1.0);
  // One substitution over length 4.
  EXPECT_DOUBLE_EQ(
      normalized_fingerprint_distance(make_fp("abcd"), make_fp("abcx")), 0.25);
}

TEST(DissimilarityScore, SumsOverReferences) {
  const fp::Fingerprint probe = make_fp("abcd");
  const fp::Fingerprint same = make_fp("abcd");
  const fp::Fingerprint off = make_fp("abcx");
  const fp::Fingerprint* refs[] = {&same, &off, &off};
  const double score =
      dissimilarity_score(probe, std::span<const fp::Fingerprint* const>(refs));
  EXPECT_DOUBLE_EQ(score, 0.0 + 0.25 + 0.25);
}

TEST(DissimilarityScore, BoundedByReferenceCount) {
  const fp::Fingerprint probe = make_fp("zzzz");
  const fp::Fingerprint far = make_fp("abcd");
  std::vector<const fp::Fingerprint*> refs(5, &far);
  const double score = dissimilarity_score(
      probe, std::span<const fp::Fingerprint* const>(refs));
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 5.0);
}

// --- metric property sweeps -------------------------------------------------

class DistancePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::string random_word(ml::Rng& rng, std::size_t max_len) {
    std::string w(rng.index(max_len + 1), 'a');
    for (auto& c : w) c = static_cast<char>('a' + rng.index(4));
    return w;
  }
};

TEST_P(DistancePropertyTest, SymmetryIdentityAndBounds) {
  ml::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::string a = random_word(rng, 12);
    const std::string b = random_word(rng, 12);
    const std::size_t ab = sdist(a, b);
    const std::size_t ba = sdist(b, a);
    EXPECT_EQ(ab, ba) << a << " vs " << b;
    EXPECT_EQ(sdist(a, a), 0u);
    // d >= |len difference| and d <= max length.
    const std::size_t diff =
        a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    EXPECT_GE(ab, diff);
    EXPECT_LE(ab, std::max(a.size(), b.size()));
    // Zero distance iff equal.
    EXPECT_EQ(ab == 0, a == b);
  }
}

TEST_P(DistancePropertyTest, SingleEditCostsOne) {
  ml::Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 30; ++trial) {
    std::string a = random_word(rng, 10);
    if (a.empty()) continue;
    std::string inserted = a;
    inserted.insert(inserted.begin() + static_cast<std::ptrdiff_t>(
                        rng.index(inserted.size() + 1)), 'z');
    EXPECT_EQ(sdist(a, inserted), 1u);

    std::string substituted = a;
    substituted[rng.index(substituted.size())] = 'z';
    const std::size_t d = sdist(a, substituted);
    EXPECT_LE(d, 1u);  // 0 if the char happened to be 'z' already
  }
}

TEST_P(DistancePropertyTest, NormalizedStaysInUnitInterval) {
  ml::Rng rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 50; ++trial) {
    const auto fa = make_fp(random_word(rng, 15));
    const auto fb = make_fp(random_word(rng, 15));
    const double d = normalized_fingerprint_distance(fa, fb);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistancePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

}  // namespace
}  // namespace iotsentinel::dist
