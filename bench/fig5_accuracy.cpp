// Reproduces Fig. 5: ratio of correct identification for the 27
// device-types, via stratified 10-fold cross-validation repeated 10 times
// (IOTS_CV_REPS overrides the repetition count).
//
// Paper reference points: accuracy > 0.95 for 17 devices (most at 1.0),
// ~0.5 for the 10 family-confusable devices, global ratio 0.815.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace iotsentinel;
  std::printf("=== Fig. 5: ratio of correct identification, 27 device-types ===\n");
  const auto corpus = bench::paper_corpus();
  std::printf("corpus: %zu device-types, %zu fingerprints (20 per type)\n",
              corpus.num_types(), corpus.total());
  const auto config = bench::paper_cv_config();
  std::printf("protocol: stratified %zu-fold CV x %zu repetitions\n\n",
              config.folds, config.repetitions);

  const core::CvOutcome out =
      core::cross_validate(corpus.type_names, corpus.by_type, config);

  std::printf("%-22s %s\n", "device-type", "accuracy");
  for (std::size_t t = 0; t < corpus.num_types(); ++t) {
    const double acc = out.per_type_accuracy[t];
    std::printf("%-22s %.3f  ", corpus.type_names[t].c_str(), acc);
    const int bars = static_cast<int>(acc * 40 + 0.5);
    for (int b = 0; b < bars; ++b) std::putchar('#');
    std::putchar('\n');
  }

  std::size_t high = 0;
  for (double a : out.per_type_accuracy) {
    if (a > 0.95) ++high;
  }
  std::printf("\nglobal ratio of correct identification: %.3f  (paper: 0.815)\n",
              out.global_accuracy);
  std::printf("device-types above 0.95:                %zu     (paper: 17)\n",
              high);
  std::printf("fingerprints needing discrimination:    %.0f%%   (paper: 55%%)\n",
              100.0 * out.discrimination_fraction);
  std::printf("mean edit distances per identification: %.1f   (paper: ~7)\n",
              out.mean_distance_computations);
  std::printf("rejected by all classifiers:            %llu\n",
              static_cast<unsigned long long>(out.rejected));
  return 0;
}
