// Reproduces Fig. 6a: latency between device pairs vs the number of
// concurrent flows in the network (20..150), with and without filtering.
//
// Paper reference: both curves are essentially flat around the pairs' base
// RTTs (D1-D2 ~12-16 ms, D1-D3 ~10-14 ms in the figure's normalization);
// "the increase in latency for up to 150 concurrent flows is insignificant".
// Shape to reproduce: slope of a few hundred microseconds over the whole
// sweep, filtering curve marginally above no-filtering.
//
// Part 2 is the data-plane ablation behind the figure: per-packet flow-
// table lookup cost vs the number of installed wildcard flows, for the
// reference LinearFlowTable (priority scan per packet) and the two-tier
// hashed FlowTable (exact-match micro-flow cache in front of the scan).
// The curves are written to BENCH_flowtable.json (uploaded by CI next to
// the other BENCH_*.json reference numbers).
#include <chrono>
#include <cstdio>
#include <vector>

#include "net/builder.hpp"
#include "net/parser.hpp"
#include "net/protocols.hpp"
#include "sdn/flow_table.hpp"
#include "simnet/network_sim.hpp"

namespace {

using namespace iotsentinel;

/// One synthetic flow: a wildcard entry (src MAC + dst port pinned, the
/// rest open — NOT tier-1-exact, so the hashed table must earn its cache
/// hits) and a packet that matches it and nothing else.
struct SyntheticFlow {
  sdn::FlowEntry entry;
  net::ParsedPacket pkt;
};

std::vector<SyntheticFlow> make_flows(std::size_t count) {
  std::vector<SyntheticFlow> flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto a = static_cast<std::uint8_t>(i & 0xff);
    const auto b = static_cast<std::uint8_t>((i >> 8) & 0xff);
    const net::MacAddress src = net::MacAddress::of(0x02, 0x6a, 0, 0, b, a);
    const net::MacAddress dst = net::MacAddress::of(0x02, 0x6b, 0, 0, b, a);
    const auto dport = static_cast<std::uint16_t>(1024 + (i % 30000));

    SyntheticFlow flow;
    flow.entry.match.src_mac = src;
    flow.entry.match.dst_port = dport;
    flow.entry.action = sdn::FlowAction::kForward;
    flow.entry.priority = 10;
    flow.entry.cookie = src.to_u64();

    const net::Bytes frame = net::build_ipv4(
        src, dst, net::Ipv4Address::of(10, static_cast<std::uint8_t>(1 + b),
                                       a, 2),
        net::Ipv4Address::of(10, 200, b, a), net::ipproto::kUdp,
        net::build_udp_payload(static_cast<std::uint16_t>(40000 + (i % 9000)),
                               dport, {}));
    flow.pkt = net::parse_ethernet_frame(frame, 0);
    flows.push_back(std::move(flow));
  }
  return flows;
}

/// Steady-state per-packet process() cost on a caller-provided table:
/// install all entries, warm with one pass, then time `passes` full
/// passes over the packet set. The table outlives the call so the caller
/// can read implementation-specific counters of the timed section.
template <typename Table>
double ns_per_packet(Table& table, const std::vector<SyntheticFlow>& flows,
                     std::size_t passes) {
  std::uint64_t now = 1;
  for (const auto& flow : flows) table.install(flow.entry, now++);
  for (const auto& flow : flows) table.process(flow.pkt, now++);  // warm-up

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < passes; ++p) {
    for (const auto& flow : flows) {
      table.process(flow.pkt, now++);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double total_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count());
  return total_ns / static_cast<double>(passes * flows.size());
}

struct AblationRow {
  std::size_t flows = 0;
  double linear_ns = 0.0;
  double hashed_ns = 0.0;
  double tier1_hit_rate = 0.0;
};

AblationRow run_ablation(std::size_t flow_count) {
  const auto flows = make_flows(flow_count);
  // Fixed total work (~128k timed packets) so large tables don't blow up
  // the CI smoke run while small ones still measure enough packets.
  const std::size_t passes =
      std::max<std::size_t>(2, (128 * 1024) / flow_count);

  AblationRow row;
  row.flows = flow_count;

  sdn::LinearFlowTable linear;
  row.linear_ns = ns_per_packet(linear, flows, passes);
  if (linear.matched_packets() == 0) std::printf("(unexpected: no matches)\n");

  sdn::FlowTable hashed;
  row.hashed_ns = ns_per_packet(hashed, flows, passes);
  // Hit share of the timed passes alone: the warm-up pass contributes
  // exactly one tier-2 scan per flow, which must not dilute the rate.
  if (hashed.matched_packets() <= flows.size()) {
    std::printf("(unexpected: hashed table missed packets)\n");
  } else {
    row.tier1_hit_rate =
        static_cast<double>(hashed.tier1_hits()) /
        static_cast<double>(hashed.matched_packets() - flows.size());
  }
  return row;
}

void write_json(const std::vector<AblationRow>& rows) {
  std::FILE* f = std::fopen("BENCH_flowtable.json", "w");
  if (!f) {
    std::printf("could not write BENCH_flowtable.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"flowtable_lookup\",\n");
  std::fprintf(f, "  \"generated_by\": \"fig6a_latency_flows\",\n");
  std::fprintf(f,
               "  \"description\": \"steady-state per-packet process() cost "
               "vs installed wildcard flows; linear = single priority-scan "
               "table, hashed = two-tier (exact-match micro-flow cache + "
               "priority scan)\",\n");
  std::fprintf(f, "  \"curve\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AblationRow& r = rows[i];
    std::fprintf(f,
                 "    {\"flows\": %zu, \"linear_ns_per_packet\": %.1f, "
                 "\"hashed_ns_per_packet\": %.1f, \"speedup\": %.1f, "
                 "\"tier1_hit_rate\": %.4f}%s\n",
                 r.flows, r.linear_ns, r.hashed_ns, r.linear_ns / r.hashed_ns,
                 r.tier1_hit_rate, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf("=== Fig. 6a: latency vs number of concurrent flows ===\n\n");
  std::printf("%6s  %16s %16s %16s %16s\n", "flows", "D1-D2 w/filt",
              "D1-D2 wo/filt", "D1-D3 w/filt", "D1-D3 wo/filt");

  double first_with = 0.0;
  double last_with = 0.0;
  for (std::size_t flows = 20; flows <= 150; flows += 10) {
    double row[4] = {0, 0, 0, 0};
    int col = 0;
    for (const char* dst : {"D2", "D3"}) {
      for (bool filtering : {true, false}) {
        sim::NetworkSim sim =
            sim::make_paper_testbed(filtering, 40 + flows + (filtering ? 1 : 0));
        sim.set_concurrent_flows(flows);
        row[col++] = sim.measure_rtt("D1", dst, 15).rtt_ms.mean();
      }
    }
    std::printf("%6zu  %13.2f ms %13.2f ms %13.2f ms %13.2f ms\n", flows,
                row[0], row[1], row[2], row[3]);
    if (flows == 20) first_with = row[0];
    if (flows == 150) last_with = row[0];
  }

  std::printf("\nD1-D2 (filtering) increase across the sweep: %.2f ms "
              "(paper: insignificant, well under 1 ms)\n",
              last_with - first_with);

  std::printf("\n=== flow-table ablation: per-packet lookup vs installed "
              "wildcard flows ===\n\n");
  std::printf("%6s  %14s %14s %9s %13s\n", "flows", "linear ns/pkt",
              "hashed ns/pkt", "speedup", "tier-1 hits");
  std::vector<AblationRow> rows;
  for (const std::size_t flows : {16u, 64u, 256u, 1024u, 4096u}) {
    rows.push_back(run_ablation(flows));
    const AblationRow& r = rows.back();
    std::printf("%6zu  %14.1f %14.1f %8.1fx %12.1f%%\n", r.flows, r.linear_ns,
                r.hashed_ns, r.linear_ns / r.hashed_ns,
                100.0 * r.tier1_hit_rate);
  }
  write_json(rows);
  std::printf("\ncurves written to BENCH_flowtable.json\n");
  return 0;
}
