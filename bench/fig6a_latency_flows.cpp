// Reproduces Fig. 6a: latency between device pairs vs the number of
// concurrent flows in the network (20..150), with and without filtering.
//
// Paper reference: both curves are essentially flat around the pairs' base
// RTTs (D1-D2 ~12-16 ms, D1-D3 ~10-14 ms in the figure's normalization);
// "the increase in latency for up to 150 concurrent flows is insignificant".
// Shape to reproduce: slope of a few hundred microseconds over the whole
// sweep, filtering curve marginally above no-filtering.
#include <cstdio>

#include "simnet/network_sim.hpp"

int main() {
  using namespace iotsentinel;
  std::printf("=== Fig. 6a: latency vs number of concurrent flows ===\n\n");
  std::printf("%6s  %16s %16s %16s %16s\n", "flows", "D1-D2 w/filt",
              "D1-D2 wo/filt", "D1-D3 w/filt", "D1-D3 wo/filt");

  double first_with = 0.0;
  double last_with = 0.0;
  for (std::size_t flows = 20; flows <= 150; flows += 10) {
    double row[4] = {0, 0, 0, 0};
    int col = 0;
    for (const char* dst : {"D2", "D3"}) {
      for (bool filtering : {true, false}) {
        sim::NetworkSim sim =
            sim::make_paper_testbed(filtering, 40 + flows + (filtering ? 1 : 0));
        sim.set_concurrent_flows(flows);
        row[col++] = sim.measure_rtt("D1", dst, 15).rtt_ms.mean();
      }
    }
    std::printf("%6zu  %13.2f ms %13.2f ms %13.2f ms %13.2f ms\n", flows,
                row[0], row[1], row[2], row[3]);
    if (flows == 20) first_with = row[0];
    if (flows == 150) last_with = row[0];
  }

  std::printf("\nD1-D2 (filtering) increase across the sweep: %.2f ms "
              "(paper: insignificant, well under 1 ms)\n",
              last_with - first_with);
  return 0;
}
