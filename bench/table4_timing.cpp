// Reproduces Table IV: time consumption of device-type identification.
//
// Paper reference values (their laptop-class hardware + Weka/Java stack):
//   1 classification (Random Forest)   0.014 ms
//   1 discrimination (edit distance)   23.36 ms
//   fingerprint extraction             0.850 ms
//   27 classifications                 0.385 ms
//   7 discriminations                  156.5 ms
//   full type identification           157.7 ms
// Absolute numbers differ on other hardware; the structure (discrimination
// dominates, classification is negligible and scales linearly with types)
// must hold.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "fingerprint/extractor.hpp"
#include "simnet/traffic_generator.hpp"

namespace {

using namespace iotsentinel;

/// Shared trained state (built once).
struct TimingFixtureState {
  sim::FingerprintCorpus corpus;
  core::DeviceIdentifier identifier{bench::paper_identifier_config()};
  std::vector<fp::Fingerprint> probes;          // one per type
  std::vector<fp::FixedFingerprint> probes_fixed;

  TimingFixtureState() : corpus(sim::generate_corpus(20, 42)) {
    // Hold out the last run of each type as the probe set; train on the
    // remaining 19 runs.
    std::vector<std::vector<fp::Fingerprint>> train(corpus.num_types());
    for (std::size_t t = 0; t < corpus.num_types(); ++t) {
      auto runs = corpus.by_type[t];
      probes.push_back(runs.back());
      runs.pop_back();
      train[t] = std::move(runs);
    }
    identifier.train(corpus.type_names, train);
    for (const auto& f : probes) probes_fixed.push_back(f.to_fixed());
  }
};

TimingFixtureState& state() {
  static TimingFixtureState s;
  return s;
}

/// "1 Classification (Random Forest)": one binary per-type classifier.
void BM_SingleClassification(benchmark::State& bm) {
  auto& s = state();
  std::size_t i = 0;
  for (auto _ : bm) {
    const double score = s.identifier.bank().score_one(
        i % s.identifier.num_types(), s.probes_fixed[i % s.probes_fixed.size()]);
    benchmark::DoNotOptimize(score);
    ++i;
  }
}
BENCHMARK(BM_SingleClassification)->Unit(benchmark::kMicrosecond);

/// "1 Discrimination (edit distance)": probe F vs one type's 5 references.
void BM_SingleDiscrimination(benchmark::State& bm) {
  auto& s = state();
  std::size_t i = 0;
  for (auto _ : bm) {
    const std::vector<std::size_t> one_candidate = {i %
                                                    s.identifier.num_types()};
    const std::size_t winner = s.identifier.discriminate(
        s.probes[i % s.probes.size()], one_candidate);
    benchmark::DoNotOptimize(winner);
    ++i;
  }
}
BENCHMARK(BM_SingleDiscrimination)->Unit(benchmark::kMicrosecond);

/// "Fingerprint extraction": raw frames -> parsed packets -> F.
void BM_FingerprintExtraction(benchmark::State& bm) {
  const auto* profile = sim::find_profile("D-LinkCam");
  sim::TrafficGenerator gen;
  ml::Rng rng(77);
  const auto frames = gen.generate(
      *profile, sim::TrafficGenerator::mint_mac(*profile, 1),
      net::Ipv4Address::of(192, 168, 0, 5), rng);
  for (auto _ : bm) {
    const auto packets = sim::parse_frames(frames);
    const auto f = fp::fingerprint_from_packets(packets);
    benchmark::DoNotOptimize(f.size());
  }
}
BENCHMARK(BM_FingerprintExtraction)->Unit(benchmark::kMicrosecond);

/// "27 Classifications": the full bank scores one fingerprint.
void BM_AllClassifications(benchmark::State& bm) {
  auto& s = state();
  std::size_t i = 0;
  for (auto _ : bm) {
    const auto accepted =
        s.identifier.classify(s.probes_fixed[i % s.probes_fixed.size()]);
    benchmark::DoNotOptimize(accepted.size());
    ++i;
  }
  bm.counters["types"] = static_cast<double>(s.identifier.num_types());
}
BENCHMARK(BM_AllClassifications)->Unit(benchmark::kMicrosecond);

/// "7 Discriminations": stage 2 with a 7-candidate set (the paper's mean
/// workload: seven edit-distance computations... per candidate five refs,
/// so we time a two-candidate set with 5 refs each, closest to 7 distance
/// computations when combined with the paper's 2-5 candidate range).
void BM_SevenDistanceComputations(benchmark::State& bm) {
  auto& s = state();
  // Candidates chosen from the confusable D-Link family (realistic tie).
  const std::vector<std::size_t> candidates = {17, 18};  // 2 x 5 refs = 10
  std::size_t i = 0;
  std::size_t computations = 0;
  for (auto _ : bm) {
    std::size_t n = 0;
    const std::size_t winner = s.identifier.discriminate(
        s.probes[(17 + i % 4) % s.probes.size()], candidates, &n);
    benchmark::DoNotOptimize(winner);
    computations = n;
    ++i;
  }
  bm.counters["distances"] = static_cast<double>(computations);
}
BENCHMARK(BM_SevenDistanceComputations)->Unit(benchmark::kMicrosecond);

/// "Type Identification": the full two-stage pipeline.
void BM_FullIdentification(benchmark::State& bm) {
  auto& s = state();
  std::size_t i = 0;
  for (auto _ : bm) {
    const auto result = s.identifier.identify(s.probes[i % s.probes.size()]);
    benchmark::DoNotOptimize(result.type_index);
    ++i;
  }
}
BENCHMARK(BM_FullIdentification)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
