// Ablation: enforcement-rule storage — hash table (the paper's choice,
// "stored in a hash table structure to minimize the lookup time as the
// enforcement rule cache grows") vs a naive linear scan.
//
// Expected shape: O(1) lookups for the hash cache regardless of
// population; linear growth for the scan, crossing from comparable at ~10
// rules to orders of magnitude slower at 10k.
#include <benchmark/benchmark.h>

#include "sdn/rule_cache.hpp"

namespace {

using namespace iotsentinel;

net::MacAddress mac_of(std::size_t i) {
  return net::MacAddress::of(0x02, 0x77, static_cast<std::uint8_t>(i >> 16),
                             static_cast<std::uint8_t>(i >> 8),
                             static_cast<std::uint8_t>(i), 0x01);
}

sdn::EnforcementRule rule_of(std::size_t i) {
  sdn::EnforcementRule rule;
  rule.device = mac_of(i);
  rule.level = sdn::IsolationLevel::kRestricted;
  rule.permitted_ips.insert(
      net::Ipv4Address(0x68000000u + static_cast<std::uint32_t>(i)));
  return rule;
}

void BM_HashCacheLookup(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  sdn::RuleCache cache;
  for (std::size_t i = 0; i < rules; ++i) cache.install(rule_of(i));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(mac_of(i++ % rules)));
  }
}
BENCHMARK(BM_HashCacheLookup)->RangeMultiplier(10)->Range(10, 100'000);

void BM_LinearScanLookup(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  sdn::LinearRuleStore store;
  for (std::size_t i = 0; i < rules; ++i) store.install(rule_of(i));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.lookup(mac_of(i++ % rules)));
  }
}
BENCHMARK(BM_LinearScanLookup)->RangeMultiplier(10)->Range(10, 10'000);

void BM_HashCacheInstall(benchmark::State& state) {
  sdn::RuleCache cache;
  std::size_t i = 0;
  for (auto _ : state) {
    cache.install(rule_of(i++));
  }
  state.counters["final_rules"] = static_cast<double>(cache.size());
}
BENCHMARK(BM_HashCacheInstall);

}  // namespace

BENCHMARK_MAIN();
