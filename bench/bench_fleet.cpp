// Streaming fleet benchmark: 100k..1M simulated devices through the
// sharded gateway pipeline, over days of simulated time, in bounded
// memory.
//
// FleetSim merges per-device lifecycle state machines (join -> setup
// burst -> standby cycles -> depart -> rejoin) into one time-ordered
// frame stream; every frame is handed to ShardedGateway::submit_owned,
// so no trace is ever materialised — the resident set is O(devices),
// never O(simulated time). This is the scale test the per-figure benches
// cannot provide: onboarding and steady-state traffic interleaved for an
// entire fleet, with flow-table expiry, rule-cache pressure and ring
// backpressure all live at once.
//
// Self-timed (the run is minutes, not microseconds — Google Benchmark's
// repetition model does not fit). Results are written as JSON; reference
// numbers recorded from this bench live in BENCH_gateway.json.
//
// Run from the release preset:
//   cmake --preset release && cmake --build --preset release -j
//   ./build-release/bench/bench_fleet --devices 100000 --hours 48
//
// Defaults reproduce the recorded run: 100k devices, two simulated days,
// 4 shards. CI smoke-runs a smaller fleet (see .github/workflows/ci.yml).
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/gateway_pool.hpp"
#include "core/vulnerability_db.hpp"
#include "net/crc32.hpp"
#include "net/hash_mix.hpp"
#include "simnet/device_catalog.hpp"
#include "simnet/fleet_sim.hpp"

namespace {

using namespace iotsentinel;

constexpr std::uint64_t kHourUs = 3'600'000'000ULL;

struct Options {
  std::uint64_t devices = 100'000;
  std::uint64_t hours = 48;
  std::uint64_t shards = 4;
  std::uint64_t ring_capacity = 16'384;
  std::uint64_t seed = 1;
  /// Micro-flow idle timeout. The fleet's connections are sub-second
  /// (every standby occurrence draws a fresh ephemeral port), so the
  /// controller default of 60 s only bloats tier-2 with dead entries —
  /// and every table miss scans tier-2, making miss cost O(live flows).
  /// 5 s keeps the live population proportional to genuinely concurrent
  /// connections; pass --flow-timeout-s 60 to measure the untuned wall.
  std::uint64_t flow_timeout_s = 5;
  std::string json_path = "BENCH_fleet.json";
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--devices N] [--hours H] [--shards S]\n"
               "          [--ring N] [--seed X] [--json PATH]\n",
               argv0);
}

bool parse_options(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const auto read_u64 = [&](std::uint64_t& out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      out = std::strtoull(argv[++i], &end, 10);
      return end != nullptr && *end == '\0' && out > 0;
    };
    if (std::strcmp(argv[i], "--devices") == 0) {
      if (!read_u64(opt.devices)) return false;
    } else if (std::strcmp(argv[i], "--hours") == 0) {
      if (!read_u64(opt.hours)) return false;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      if (!read_u64(opt.shards)) return false;
    } else if (std::strcmp(argv[i], "--ring") == 0) {
      if (!read_u64(opt.ring_capacity)) return false;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (!read_u64(opt.seed)) return false;
    } else if (std::strcmp(argv[i], "--flow-timeout-s") == 0) {
      if (!read_u64(opt.flow_timeout_s)) return false;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) return false;
      opt.json_path = argv[++i];
    } else {
      return false;
    }
  }
  return true;
}

/// One "VmHWM:  123 kB"-style field from /proc/self/status, in KiB
/// (0 when unavailable, e.g. off-Linux).
std::uint64_t status_kib(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  std::uint64_t value = 0;
  char line[256];
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      value = std::strtoull(line + key_len, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return value;
}

struct RunResult {
  std::uint64_t frames = 0;
  double wall_s = 0.0;
  std::uint64_t identifications = 0;
  std::uint64_t stream_hash = 0;       // order+content digest of the stream
  std::uint64_t sim_peak_bytes = 0;    // FleetSim's own footprint, sampled
  std::uint64_t active_at_end = 0;
  core::ShardedGateway::Stats gateway;
  // Data-plane aggregates across shards, snapshotted after finish().
  std::uint64_t fast_path = 0;
  std::uint64_t slow_path = 0;
  std::uint64_t cached_path = 0;
  std::uint64_t flow_misses = 0;
  std::uint64_t tier1_hits = 0;
  std::uint64_t tier2_scans = 0;
  std::uint64_t live_flows = 0;
  std::uint64_t switch_memory_bytes = 0;
  std::uint64_t rule_cache_size = 0;
  std::uint64_t rule_cache_evictions = 0;
  // Federation (per-switch decision caches + controller negative cache).
  std::uint64_t switch_cache_hits = 0;
  std::uint64_t switch_cache_misses = 0;
  std::uint64_t switch_cache_size = 0;
  std::uint64_t switch_cache_invalidated = 0;
  std::uint64_t switch_cache_flushes = 0;
  std::uint64_t negative_cache_hits = 0;
  std::uint64_t rule_installs = 0;
  std::uint64_t invalidations_sent = 0;
  // Per-shard data-plane breakdown for the JSON shards array.
  struct ShardPaths {
    std::uint64_t fast = 0;
    std::uint64_t cached = 0;
    std::uint64_t slow = 0;
    std::uint64_t tier1_hits = 0;
    std::uint64_t tier2_scans = 0;
    std::uint64_t cache_size = 0;
  };
  std::vector<ShardPaths> shard_paths;
  /// Full end-of-run metric report (docs/OBSERVABILITY.md format).
  std::string telemetry_report;
};

RunResult run_fleet(const Options& opt, const core::IoTSecurityService& service,
                    const sim::Roster& roster) {
  sim::FleetConfig fleet_config;
  fleet_config.seed = opt.seed;
  fleet_config.sim_end_us = opt.hours * kHourUs;
  fleet_config.join_window_us = std::min<std::uint64_t>(
      kHourUs, fleet_config.sim_end_us / 4);
  sim::FleetSim fleet(roster, opt.devices, fleet_config);

  core::ShardedGatewayConfig gw_config;
  gw_config.num_shards = opt.shards;
  gw_config.ring_capacity = opt.ring_capacity;
  gw_config.controller.flow_idle_timeout_us = opt.flow_timeout_s * 1'000'000;
  core::ShardedGateway gw(service, gw_config);

  RunResult r;
  constexpr std::uint64_t kMemSampleStride = 1u << 16;
  constexpr std::uint64_t kProgressStride = 5'000'000;
  const auto start = std::chrono::steady_clock::now();
  while (auto event = fleet.next()) {
    const std::uint64_t ts = event->frame.timestamp_us;
    r.stream_hash = net::mix64(r.stream_hash ^ ts);
    r.stream_hash = net::mix64(r.stream_hash ^ net::crc32c(event->frame.frame));
    gw.submit_owned(std::move(event->frame.frame), ts);
    ++r.frames;
    if (r.frames % kMemSampleStride == 0) {
      r.sim_peak_bytes =
          std::max<std::uint64_t>(r.sim_peak_bytes, fleet.approx_memory_bytes());
    }
    if (r.frames % kProgressStride == 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      std::fprintf(stderr,
                   "  %" PRIu64 "M frames, sim t=%.1fh, %zu active, "
                   "%.0f frames/s, VmRSS %" PRIu64 " KiB\n",
                   r.frames / 1'000'000, static_cast<double>(ts) / kHourUs,
                   fleet.active_devices(), static_cast<double>(r.frames) / elapsed,
                   status_kib("VmRSS:"));
    }
  }
  r.active_at_end = fleet.active_devices();
  gw.finish();
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();

  r.identifications = gw.events().size();
  r.gateway = gw.stats();
  for (std::size_t s = 0; s < gw.num_shards(); ++s) {
    const sdn::SoftwareSwitch& dp = gw.shard_data_plane(s);
    const sdn::SwitchRuleCache& cache = gw.shard_rule_cache(s);
    r.fast_path += dp.fast_path_packets();
    r.slow_path += dp.slow_path_packets();
    r.cached_path += dp.cached_path_packets();
    r.flow_misses += dp.table().misses();
    r.tier1_hits += dp.table().tier1_hits();
    r.tier2_scans += dp.table().tier2_scans();
    r.live_flows += dp.table().size();
    r.switch_memory_bytes += dp.memory_bytes();
    r.switch_cache_hits += cache.hits();
    r.switch_cache_misses += cache.misses();
    r.switch_cache_size += cache.size();
    r.switch_cache_invalidated += cache.invalidated_entries();
    r.switch_cache_flushes += cache.flushes();
    r.shard_paths.push_back({dp.fast_path_packets(), dp.cached_path_packets(),
                             dp.slow_path_packets(), dp.table().tier1_hits(),
                             dp.table().tier2_scans(), cache.size()});
  }
  r.rule_cache_size = gw.controller().rules().size();
  r.rule_cache_evictions = gw.controller().rules().evictions();
  r.negative_cache_hits = gw.controller().negative_cache_hits();
  r.rule_installs = gw.controller().rule_installs();
  r.invalidations_sent = gw.controller().invalidations_sent();
  r.telemetry_report = gw.registry().text_report();
  return r;
}

void write_json(const Options& opt, const RunResult& r) {
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"bench_fleet\",\n");
  std::fprintf(f, "  \"config\": {\n");
  std::fprintf(f, "    \"devices\": %" PRIu64 ",\n", opt.devices);
  std::fprintf(f, "    \"simulated_hours\": %" PRIu64 ",\n", opt.hours);
  std::fprintf(f, "    \"shards\": %" PRIu64 ",\n", opt.shards);
  std::fprintf(f, "    \"ring_capacity\": %" PRIu64 ",\n", opt.ring_capacity);
  std::fprintf(f, "    \"flow_idle_timeout_s\": %" PRIu64 ",\n",
               opt.flow_timeout_s);
  std::fprintf(f, "    \"seed\": %" PRIu64 "\n", opt.seed);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"results\": {\n");
  std::fprintf(f, "    \"frames\": %" PRIu64 ",\n", r.frames);
  std::fprintf(f, "    \"wall_s\": %.3f,\n", r.wall_s);
  std::fprintf(f, "    \"frames_per_s\": %.0f,\n",
               static_cast<double>(r.frames) / r.wall_s);
  std::fprintf(f, "    \"identifications\": %" PRIu64 ",\n", r.identifications);
  std::fprintf(f, "    \"stream_hash\": \"%016" PRIx64 "\",\n", r.stream_hash);
  std::fprintf(f, "    \"peak_rss_kib\": %" PRIu64 ",\n", status_kib("VmHWM:"));
  std::fprintf(f, "    \"fleet_sim_peak_bytes\": %" PRIu64 ",\n",
               r.sim_peak_bytes);
  std::fprintf(f, "    \"submit_stalls\": %" PRIu64 ",\n",
               r.gateway.submit_stalls);
  std::fprintf(f, "    \"flows_expired\": %" PRIu64 ",\n",
               r.gateway.flows_expired);
  std::fprintf(f, "    \"fast_path_packets\": %" PRIu64 ",\n", r.fast_path);
  std::fprintf(f, "    \"cached_path_packets\": %" PRIu64 ",\n", r.cached_path);
  std::fprintf(f, "    \"slow_path_packets\": %" PRIu64 ",\n", r.slow_path);
  const double frames_d = r.frames > 0 ? static_cast<double>(r.frames) : 1.0;
  std::fprintf(f, "    \"tier1_hit_rate\": %.6f,\n",
               static_cast<double>(r.tier1_hits) / frames_d);
  std::fprintf(f, "    \"cached_path_rate\": %.6f,\n",
               static_cast<double>(r.cached_path) / frames_d);
  std::fprintf(f, "    \"slow_path_rate\": %.6f,\n",
               static_cast<double>(r.slow_path) / frames_d);
  std::fprintf(f, "    \"flow_misses\": %" PRIu64 ",\n", r.flow_misses);
  std::fprintf(f, "    \"tier1_hits\": %" PRIu64 ",\n", r.tier1_hits);
  std::fprintf(f, "    \"tier2_scans\": %" PRIu64 ",\n", r.tier2_scans);
  std::fprintf(f, "    \"switch_cache_hits\": %" PRIu64 ",\n",
               r.switch_cache_hits);
  std::fprintf(f, "    \"switch_cache_misses\": %" PRIu64 ",\n",
               r.switch_cache_misses);
  std::fprintf(f, "    \"switch_cache_size_at_end\": %" PRIu64 ",\n",
               r.switch_cache_size);
  std::fprintf(f, "    \"switch_cache_invalidated_entries\": %" PRIu64 ",\n",
               r.switch_cache_invalidated);
  std::fprintf(f, "    \"switch_cache_flushes\": %" PRIu64 ",\n",
               r.switch_cache_flushes);
  std::fprintf(f, "    \"negative_cache_hits\": %" PRIu64 ",\n",
               r.negative_cache_hits);
  std::fprintf(f, "    \"rule_installs\": %" PRIu64 ",\n", r.rule_installs);
  std::fprintf(f, "    \"invalidations_sent\": %" PRIu64 ",\n",
               r.invalidations_sent);
  std::fprintf(f, "    \"live_flows_at_end\": %" PRIu64 ",\n", r.live_flows);
  std::fprintf(f, "    \"switch_memory_bytes\": %" PRIu64 ",\n",
               r.switch_memory_bytes);
  std::fprintf(f, "    \"rule_cache_size\": %" PRIu64 ",\n", r.rule_cache_size);
  std::fprintf(f, "    \"rule_cache_evictions\": %" PRIu64 ",\n",
               r.rule_cache_evictions);
  std::fprintf(f, "    \"shards\": [\n");
  for (std::size_t s = 0; s < r.gateway.shards.size(); ++s) {
    const auto& shard = r.gateway.shards[s];
    const auto& paths = r.shard_paths[s];
    const double shard_frames =
        shard.frames_processed > 0
            ? static_cast<double>(shard.frames_processed)
            : 1.0;
    std::fprintf(f,
                 "      {\"frames\": %" PRIu64 ", \"stalls\": %" PRIu64
                 ", \"ring_high_water\": %" PRIu64 ", \"flows_expired\": %" PRIu64
                 ",\n       \"fast_path\": %" PRIu64 ", \"cached_path\": %" PRIu64
                 ", \"slow_path\": %" PRIu64 ", \"tier1_hits\": %" PRIu64
                 ", \"tier2_scans\": %" PRIu64 ",\n       \"tier1_hit_rate\": %.6f"
                 ", \"cached_path_rate\": %.6f, \"switch_cache_size\": %" PRIu64
                 "}%s\n",
                 shard.frames_processed, shard.submit_stalls,
                 shard.ring_high_water, shard.flows_expired, paths.fast,
                 paths.cached, paths.slow, paths.tier1_hits, paths.tier2_scans,
                 static_cast<double>(paths.tier1_hits) / shard_frames,
                 static_cast<double>(paths.cached) / shard_frames,
                 paths.cache_size,
                 s + 1 < r.gateway.shards.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", opt.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }

  // Trained state is built outside the measured span (training the
  // type bank dominates startup, not throughput).
  const sim::Roster& roster = sim::device_roster();
  sim::FingerprintCorpus corpus = bench::paper_corpus();
  core::DeviceIdentifier identifier(bench::paper_identifier_config());
  identifier.train(corpus.type_names, corpus.by_type);
  core::IoTSecurityService service(std::move(identifier),
                                   core::VulnerabilityDb::with_sample_data());

  std::printf("bench_fleet: %" PRIu64 " devices (%zu roster types), %" PRIu64
              " simulated hours, %" PRIu64 " shards\n",
              opt.devices, roster.num_types(), opt.hours, opt.shards);
  const RunResult r = run_fleet(opt, service, roster);

  std::printf("frames            %" PRIu64 "\n", r.frames);
  std::printf("wall_s            %.2f\n", r.wall_s);
  std::printf("frames_per_s      %.0f\n", static_cast<double>(r.frames) / r.wall_s);
  std::printf("identifications   %" PRIu64 "\n", r.identifications);
  std::printf("stream_hash       %016" PRIx64 "\n", r.stream_hash);
  std::printf("peak_rss_kib      %" PRIu64 "\n", status_kib("VmHWM:"));
  std::printf("fleet_sim_peak_b  %" PRIu64 "\n", r.sim_peak_bytes);
  std::printf("submit_stalls     %" PRIu64 "\n", r.gateway.submit_stalls);
  std::printf("flows_expired     %" PRIu64 "\n", r.gateway.flows_expired);
  std::printf("rule_evictions    %" PRIu64 "\n", r.rule_cache_evictions);
  std::printf("fast_path         %" PRIu64 "\n", r.fast_path);
  std::printf("cached_path       %" PRIu64 "\n", r.cached_path);
  std::printf("slow_path         %" PRIu64 "\n", r.slow_path);
  std::printf("neg_cache_hits    %" PRIu64 "\n", r.negative_cache_hits);
  std::printf("\n--- telemetry report (docs/OBSERVABILITY.md format) ---\n%s",
              r.telemetry_report.c_str());
  if (r.active_at_end != 0) {
    std::printf("note: %" PRIu64 " devices still active at horizon\n",
                r.active_at_end);
  }

  write_json(opt, r);
  return 0;
}
