// Reproduces Table III: the confusion matrix of the 10 device-types with
// low identification accuracy (D-Link sensor family 1-4, TP-Link plugs
// 5-6, Edimax plugs 7-8, Smarter appliances 9-10).
//
// Paper reference: confusion counts form vendor-family blocks — mass stays
// within columns 1-4 / 5-6 / 7-8 / 9-10 of the corresponding rows, zero
// outside.
#include <cstdio>

#include "bench_util.hpp"
#include "simnet/device_catalog.hpp"

int main() {
  using namespace iotsentinel;
  std::printf("=== Table III: confusion matrix of the 10 low-accuracy types ===\n\n");
  const auto corpus = bench::paper_corpus();
  const auto config = bench::paper_cv_config();
  const core::CvOutcome out =
      core::cross_validate(corpus.type_names, corpus.by_type, config);

  // Map the paper's index order 1..10 onto catalog indices.
  const auto& names = sim::confusable_device_names();
  std::vector<std::size_t> classes;
  for (const auto& name : names) {
    classes.push_back(*sim::profile_index(name));
  }

  std::printf("%s\n", out.confusion.to_table(classes, names).c_str());

  // Family-block leakage check (the paper's key qualitative finding).
  auto family_of = [](std::size_t paper_index) {
    if (paper_index < 4) return 0;   // D-Link 1-4
    if (paper_index < 6) return 1;   // TP-Link 5-6
    if (paper_index < 8) return 2;   // Edimax 7-8
    return 3;                        // Smarter 9-10
  };
  std::uint64_t in_family = 0;
  std::uint64_t out_of_family = 0;
  for (std::size_t r = 0; r < classes.size(); ++r) {
    for (std::size_t c = 0; c < corpus.num_types(); ++c) {
      const std::uint64_t count = out.confusion.at(classes[r], c);
      bool same_family = false;
      for (std::size_t p = 0; p < classes.size(); ++p) {
        if (classes[p] == c && family_of(p) == family_of(r)) {
          same_family = true;
          break;
        }
      }
      (same_family ? in_family : out_of_family) += count;
    }
  }
  std::printf("confusion mass inside vendor families:  %llu\n",
              static_cast<unsigned long long>(in_family));
  std::printf("confusion mass leaking outside families: %llu  (paper: 0)\n",
              static_cast<unsigned long long>(out_of_family));
  return 0;
}
