// Retrain-under-load benchmark: the ROADMAP acceptance number for the
// hot model swap — zero added tail latency on `assess_batch` while
// per-type forests are rebuilt and published concurrently.
//
// Two phases:
//
//  1. Latency differential (the acceptance criterion). One serving
//     thread drives `IoTSecurityService::assess_batch_with` through
//     ml::ForestBankPublisher snapshots — pin, score a batch, unpin —
//     exactly like the sharded gateway's classifier thread. Baseline
//     (publisher idle) and during-retrain (a background retrainer
//     rebuilding one type at a time and swapping the bank underneath)
//     rounds are *interleaved* — B R B R ... — and per-batch samples
//     pooled per condition, so machine-level drift and external
//     scheduling spikes hit both distributions equally instead of
//     biasing whichever condition ran later. The retrainer runs at
//     background (SCHED_IDLE) scheduling priority — the production
//     posture on gateway hardware, where training is batch work that
//     must only consume cycles the serving path leaves idle.
//     BENCH_retrain.json records both latency distributions; p99 during
//     retrains must stay within 5% of baseline.
//
//  2. Fleet realism. The 4-shard gateway ingests FleetSim traffic with
//     `model_publisher` wired while the retrainer swaps underneath, and
//     sdn::EnforcementAuditor replays every fast-path verdict against
//     the controller oracle — violations must stay zero and every event
//     must carry a published bank version.
//
// Self-timed (the phases run for seconds and need precise per-batch
// stamps — Google Benchmark's repetition model does not fit). Run from
// the release preset:
//   ./build-release/bench/bench_retrain
// CI smoke-runs `--small` (see .github/workflows/ci.yml).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "bench_util.hpp"
#include "core/classifier_bank.hpp"
#include "core/gateway_pool.hpp"
#include "core/security_service.hpp"
#include "core/vulnerability_db.hpp"
#include "ml/hot_swap.hpp"
#include "sdn/enforcement_audit.hpp"
#include "simnet/device_catalog.hpp"
#include "simnet/fleet_sim.hpp"
#include "telemetry/registry.hpp"

namespace {

using namespace iotsentinel;

constexpr std::uint64_t kHourUs = 3'600'000'000ULL;

struct Options {
  std::uint64_t batch_size = 64;
  std::uint64_t batches = 8'000;
  std::uint64_t warmup_batches = 400;
  /// Idle gap between batches, modelling batch arrival (fingerprints
  /// complete when devices finish setup; the classifier thread is never
  /// 100% duty). The gap is also where an idle-priority retrainer gets
  /// its CPU time on small gateway hardware.
  std::uint64_t batch_gap_us = 500;
  /// Pause between one-type rebuilds. The default models an aggressive
  /// production cadence (confirmed-capture folding is a
  /// seconds-to-minutes event, not a per-batch one) while still putting
  /// tens of swaps inside the measured window. 0 = unpaced tight loop —
  /// that measures raw CPU/cache contention from *continuous* training
  /// (interesting, but not the swap-mechanism acceptance number).
  std::uint64_t retrain_interval_ms = 250;
  std::uint64_t devices = 20'000;
  std::uint64_t hours = 6;
  std::uint64_t shards = 4;
  std::uint64_t seed = 1;
  std::string json_path = "BENCH_retrain.json";
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--batch-size N] [--batches N] [--batch-gap-us N]\n"
               "          [--retrain-interval-ms N] [--devices N] [--hours H]\n"
               "          [--shards S] [--seed X] [--json PATH] [--small]\n",
               argv0);
}

bool parse_options(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const auto read_u64 = [&](std::uint64_t& out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      out = std::strtoull(argv[++i], &end, 10);
      return end != nullptr && *end == '\0' && out > 0;
    };
    if (std::strcmp(argv[i], "--batch-size") == 0) {
      if (!read_u64(opt.batch_size)) return false;
    } else if (std::strcmp(argv[i], "--batches") == 0) {
      if (!read_u64(opt.batches)) return false;
    } else if (std::strcmp(argv[i], "--batch-gap-us") == 0) {
      if (i + 1 >= argc) return false;
      opt.batch_gap_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--retrain-interval-ms") == 0) {
      if (i + 1 >= argc) return false;
      opt.retrain_interval_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--devices") == 0) {
      if (!read_u64(opt.devices)) return false;
    } else if (std::strcmp(argv[i], "--hours") == 0) {
      if (!read_u64(opt.hours)) return false;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      if (!read_u64(opt.shards)) return false;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (!read_u64(opt.seed)) return false;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) return false;
      opt.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--small") == 0) {
      opt.batches = 800;
      opt.warmup_batches = 100;
      opt.devices = 2'000;
      opt.hours = 2;
    } else {
      return false;
    }
  }
  return true;
}

/// One retrain plan per bank type, built from an independent capture of
/// the same types — the inputs a background retrainer folds in. Plans
/// are precomputed so only the train-and-publish work runs during the
/// measured window.
std::vector<core::ClassifierBank::RetrainPlan> make_retrain_plans(
    const core::ClassifierBank& bank, std::uint64_t seed) {
  std::vector<std::string> names;
  names.reserve(bank.num_types());
  for (std::size_t t = 0; t < bank.num_types(); ++t) {
    names.push_back(bank.type_name(t));
  }
  const auto corpus = sim::generate_corpus_for(names, /*runs_per_type=*/6,
                                               seed);
  std::vector<std::vector<fp::FixedFingerprint>> fixed;
  for (const auto& runs : corpus.by_type) {
    auto& out = fixed.emplace_back();
    for (const auto& f : runs) out.push_back(f.to_fixed());
  }
  std::vector<core::ClassifierBank::RetrainPlan> plans;
  plans.reserve(bank.num_types());
  for (std::size_t t = 0; t < bank.num_types(); ++t) {
    std::vector<const fp::FixedFingerprint*> pool;
    for (std::size_t o = 0; o < fixed.size(); ++o) {
      if (o == t) continue;
      for (const auto& f : fixed[o]) pool.push_back(&f);
    }
    plans.push_back(bank.retrain_plan(t, fixed[t], pool));
  }
  return plans;
}

std::vector<ml::RandomForest> bank_forests(const core::ClassifierBank& bank) {
  std::vector<ml::RandomForest> forests;
  forests.reserve(bank.num_types());
  for (std::size_t t = 0; t < bank.num_types(); ++t) {
    forests.push_back(bank.forest(t));
  }
  return forests;
}

/// Drops the calling thread to background (idle) scheduling priority —
/// the production posture for a retrainer sharing a small gateway CPU
/// with the serving path: training consumes only cycles the serving
/// thread leaves idle, and is preempted the moment serving wakes. Both
/// calls are best-effort (never privileged); off Linux this is a no-op.
void make_thread_background() {
#ifdef __linux__
  sched_param sp{};
  if (pthread_setschedparam(pthread_self(), SCHED_IDLE, &sp) != 0) {
    // SCHED_IDLE unavailable: settle for the weakest nice level.
    sp = sched_param{};
    (void)pthread_setschedparam(pthread_self(), SCHED_OTHER, &sp);
  }
#endif
}

/// Runs the retrainer loop until `stop`: one type per round, alternating
/// two plan sets so every publish installs a genuinely different forest,
/// paced by `retrain_interval_ms` between rebuilds.
void retrainer_loop(ml::ForestBankPublisher& publisher,
                    const std::vector<core::ClassifierBank::RetrainPlan>& a,
                    const std::vector<core::ClassifierBank::RetrainPlan>& b,
                    std::uint64_t retrain_interval_ms,
                    const std::atomic<bool>& stop) {
  make_thread_background();
  std::size_t round = 0;
  while (!stop.load(std::memory_order_acquire)) {
    const auto& plans = (round / a.size()) % 2 ? b : a;
    const std::size_t t = round % plans.size();
    publisher.rebuild_type(t, plans[t].data, plans[t].forest);
    ++round;
    if (retrain_interval_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retrain_interval_ms));
    }
  }
}

struct LatencySummary {
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t retrains_during = 0;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<std::size_t>(rank, 1)) - 1];
}

/// The classifier thread's serving loop, isolated: `batches`
/// assess_batch_with calls through publisher snapshots, appending the
/// per-batch wall time (µs) to `samples`.
void measure_round(const core::IoTSecurityService& service,
                   ml::ForestBankPublisher& publisher,
                   ml::ForestBankPublisher::ReaderHandle& reader,
                   const std::vector<const fp::Fingerprint*>& probes,
                   const Options& opt, std::uint64_t batches,
                   std::vector<double>* samples) {
  std::vector<core::ServiceVerdict> verdicts;
  std::vector<const fp::Fingerprint*> batch(opt.batch_size);
  for (std::uint64_t n = 0; n < batches; ++n) {
    for (std::uint64_t i = 0; i < opt.batch_size; ++i) {
      batch[i] = probes[(n * opt.batch_size + i) % probes.size()];
    }
    const auto t0 = std::chrono::steady_clock::now();
    {
      const auto bank = publisher.acquire(reader);
      service.assess_batch_with(bank->engines, batch, verdicts);
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (samples != nullptr) {
      samples->push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    if (opt.batch_gap_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(opt.batch_gap_us));
    }
  }
}

LatencySummary summarize(std::vector<double> samples,
                         std::uint64_t retrains_during) {
  std::sort(samples.begin(), samples.end());
  LatencySummary s;
  s.p50_us = percentile(samples, 0.50);
  s.p90_us = percentile(samples, 0.90);
  s.p99_us = percentile(samples, 0.99);
  s.p999_us = percentile(samples, 0.999);
  s.max_us = samples.empty() ? 0.0 : samples.back();
  s.batches = samples.size();
  s.retrains_during = retrains_during;
  return s;
}

struct FleetSummary {
  std::uint64_t frames = 0;
  double wall_s = 0.0;
  std::uint64_t identifications = 0;
  std::uint64_t retrains_completed = 0;
  std::uint64_t bank_epoch = 0;
  std::uint64_t swap_count = 0;
  double swap_mean_us = 0.0;
  std::uint64_t audit_checked = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t model_version_min = 0;
  std::uint64_t model_version_max = 0;
};

FleetSummary run_fleet_under_retrain(const Options& opt,
                                     const core::IoTSecurityService& service) {
  sim::FleetConfig fleet_config;
  fleet_config.seed = opt.seed;
  fleet_config.sim_end_us = opt.hours * kHourUs;
  fleet_config.join_window_us =
      std::min<std::uint64_t>(kHourUs, fleet_config.sim_end_us / 4);
  sim::FleetSim fleet(sim::device_roster(), opt.devices, fleet_config);

  ml::ForestBankPublisher publisher(
      bank_forests(service.identifier().bank()));
  core::ShardedGatewayConfig gw_config;
  gw_config.num_shards = opt.shards;
  gw_config.model_publisher = &publisher;
  core::ShardedGateway gw(service, gw_config);
  sdn::EnforcementAuditor auditor(gw.controller());
  gw.set_audit(auditor.hook());

  const auto plans_a =
      make_retrain_plans(service.identifier().bank(), opt.seed + 100);
  const auto plans_b =
      make_retrain_plans(service.identifier().bank(), opt.seed + 101);
  std::atomic<bool> stop_retrainer{false};
  std::thread retrainer([&] {
    retrainer_loop(publisher, plans_a, plans_b, opt.retrain_interval_ms,
                   stop_retrainer);
  });

  FleetSummary r;
  const auto start = std::chrono::steady_clock::now();
  while (auto event = fleet.next()) {
    gw.submit_owned(std::move(event->frame.frame), event->frame.timestamp_us);
    ++r.frames;
  }
  gw.finish();
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stop_retrainer.store(true, std::memory_order_release);
  retrainer.join();

  const auto& events = gw.events();
  r.identifications = events.size();
  for (const auto& e : events) {
    r.model_version_min = r.model_version_min == 0
                              ? e.model_version
                              : std::min(r.model_version_min, e.model_version);
    r.model_version_max = std::max(r.model_version_max, e.model_version);
  }
  r.retrains_completed = publisher.retrains_completed();
  r.bank_epoch = publisher.version();
  const auto& swap_hist = gw.registry().histogram("hotswap.swap_latency_us");
  r.swap_count = swap_hist.count();
  r.swap_mean_us = r.swap_count > 0 ? static_cast<double>(swap_hist.sum()) /
                                          static_cast<double>(r.swap_count)
                                    : 0.0;
  r.audit_checked = auditor.checked();
  r.audit_violations = auditor.violations();
  return r;
}

void print_latency(const char* label, const LatencySummary& s) {
  std::printf(
      "%-16s p50 %8.1f us   p90 %8.1f us   p99 %8.1f us   "
      "p99.9 %8.1f us   max %8.1f us   (%" PRIu64 " batches, %" PRIu64
      " retrains during)\n",
      label, s.p50_us, s.p90_us, s.p99_us, s.p999_us, s.max_us, s.batches,
      s.retrains_during);
}

void write_latency_json(std::FILE* f, const char* key,
                        const LatencySummary& s, bool trailing_comma) {
  std::fprintf(f,
               "    \"%s\": {\"p50_us\": %.2f, \"p90_us\": %.2f, "
               "\"p99_us\": %.2f, \"p999_us\": %.2f, \"max_us\": %.2f,\n"
               "      \"batches\": %" PRIu64 ", \"retrains_during\": %" PRIu64
               "}%s\n",
               key, s.p50_us, s.p90_us, s.p99_us, s.p999_us, s.max_us,
               s.batches, s.retrains_during, trailing_comma ? "," : "");
}

void write_json(const Options& opt, const LatencySummary& baseline,
                const LatencySummary& retrain, double p99_delta_pct,
                const FleetSummary& fleet) {
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"bench_retrain\",\n");
  std::fprintf(f, "  \"config\": {\n");
  std::fprintf(f, "    \"batch_size\": %" PRIu64 ",\n", opt.batch_size);
  std::fprintf(f, "    \"batches\": %" PRIu64 ",\n", opt.batches);
  std::fprintf(f, "    \"batch_gap_us\": %" PRIu64 ",\n", opt.batch_gap_us);
  std::fprintf(f, "    \"retrain_interval_ms\": %" PRIu64 ",\n",
               opt.retrain_interval_ms);
  std::fprintf(f, "    \"devices\": %" PRIu64 ",\n", opt.devices);
  std::fprintf(f, "    \"simulated_hours\": %" PRIu64 ",\n", opt.hours);
  std::fprintf(f, "    \"shards\": %" PRIu64 ",\n", opt.shards);
  std::fprintf(f, "    \"seed\": %" PRIu64 "\n", opt.seed);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"assess_batch_latency\": {\n");
  write_latency_json(f, "baseline", baseline, /*trailing_comma=*/true);
  write_latency_json(f, "during_retrain", retrain, /*trailing_comma=*/true);
  std::fprintf(f, "    \"p99_delta_pct\": %.2f,\n", p99_delta_pct);
  std::fprintf(f, "    \"within_5pct\": %s\n",
               p99_delta_pct <= 5.0 ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fleet_under_retrain\": {\n");
  std::fprintf(f, "    \"frames\": %" PRIu64 ",\n", fleet.frames);
  std::fprintf(f, "    \"wall_s\": %.3f,\n", fleet.wall_s);
  std::fprintf(f, "    \"frames_per_s\": %.0f,\n",
               fleet.wall_s > 0.0
                   ? static_cast<double>(fleet.frames) / fleet.wall_s
                   : 0.0);
  std::fprintf(f, "    \"identifications\": %" PRIu64 ",\n",
               fleet.identifications);
  std::fprintf(f, "    \"retrains_completed\": %" PRIu64 ",\n",
               fleet.retrains_completed);
  std::fprintf(f, "    \"bank_epoch\": %" PRIu64 ",\n", fleet.bank_epoch);
  std::fprintf(f, "    \"swap_count\": %" PRIu64 ",\n", fleet.swap_count);
  std::fprintf(f, "    \"swap_mean_us\": %.2f,\n", fleet.swap_mean_us);
  std::fprintf(f, "    \"audit_checked\": %" PRIu64 ",\n", fleet.audit_checked);
  std::fprintf(f, "    \"audit_violations\": %" PRIu64 ",\n",
               fleet.audit_violations);
  std::fprintf(f, "    \"model_version_min\": %" PRIu64 ",\n",
               fleet.model_version_min);
  std::fprintf(f, "    \"model_version_max\": %" PRIu64 "\n",
               fleet.model_version_max);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", opt.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }

  // Trained state (and the probe set) is built outside every measured
  // span — training dominates startup, not serving latency.
  sim::FingerprintCorpus corpus = bench::paper_corpus();
  core::DeviceIdentifier identifier(bench::paper_identifier_config());
  identifier.train(corpus.type_names, corpus.by_type);
  core::IoTSecurityService service(std::move(identifier),
                                   core::VulnerabilityDb::with_sample_data());
  const core::ClassifierBank& bank = service.identifier().bank();

  const auto probe_corpus =
      sim::generate_corpus_for(corpus.type_names, /*runs_per_type=*/4, 4242);
  std::vector<const fp::Fingerprint*> probes;
  for (const auto& runs : probe_corpus.by_type) {
    for (const auto& f : runs) probes.push_back(&f);
  }

  std::printf("bench_retrain: %zu types, batch=%" PRIu64 " x %" PRIu64
              " batches, fleet %" PRIu64 " devices / %" PRIu64
              "h / %" PRIu64 " shards\n",
              bank.num_types(), opt.batch_size, opt.batches, opt.devices,
              opt.hours, opt.shards);

  // Phase 1: interleaved latency differential. Baseline and
  // during-retrain rounds alternate (B R B R ...) and pool per-batch
  // samples per condition, so slow machine-level drift and external
  // scheduling spikes land in both pools instead of biasing whichever
  // condition happened to run later.
  ml::ForestBankPublisher publisher(bank_forests(bank));
  telemetry::Registry registry;
  publisher.bind_telemetry({
      .retrains = &registry.counter("hotswap.retrains_completed"),
      .bank_epoch = &registry.gauge("hotswap.bank_epoch"),
      .swap_latency_us = &registry.histogram("hotswap.swap_latency_us"),
      .retired_banks = &registry.gauge("hotswap.retired_banks"),
  });
  const auto plans_a = make_retrain_plans(bank, opt.seed + 10);
  const auto plans_b = make_retrain_plans(bank, opt.seed + 11);

  auto reader = publisher.register_reader();
  measure_round(service, publisher, reader, probes, opt, opt.warmup_batches,
                /*samples=*/nullptr);

  constexpr std::uint64_t kRounds = 4;
  const std::uint64_t per_round =
      std::max<std::uint64_t>(1, opt.batches / kRounds);
  std::vector<double> base_samples;
  std::vector<double> retrain_samples;
  base_samples.reserve(per_round * kRounds);
  retrain_samples.reserve(per_round * kRounds);
  std::uint64_t retrains_during = 0;
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    measure_round(service, publisher, reader, probes, opt, per_round,
                  &base_samples);
    const std::uint64_t before = publisher.retrains_completed();
    std::atomic<bool> stop_retrainer{false};
    std::thread retrainer([&] {
      retrainer_loop(publisher, plans_a, plans_b, opt.retrain_interval_ms,
                     stop_retrainer);
    });
    measure_round(service, publisher, reader, probes, opt, per_round,
                  &retrain_samples);
    stop_retrainer.store(true, std::memory_order_release);
    retrainer.join();
    retrains_during += publisher.retrains_completed() - before;
  }
  const LatencySummary baseline =
      summarize(std::move(base_samples), /*retrains_during=*/0);
  const LatencySummary retrain =
      summarize(std::move(retrain_samples), retrains_during);
  print_latency("baseline", baseline);
  print_latency("during_retrain", retrain);

  const double p99_delta_pct =
      baseline.p99_us > 0.0
          ? (retrain.p99_us - baseline.p99_us) / baseline.p99_us * 100.0
          : 0.0;
  std::printf("p99 delta         %+.2f%% (acceptance: within +5%%) -> %s\n",
              p99_delta_pct, p99_delta_pct <= 5.0 ? "PASS" : "FAIL");

  // Phase 2: fleet traffic through the sharded gateway while swapping.
  const FleetSummary fleet = run_fleet_under_retrain(opt, service);
  std::printf("fleet             %" PRIu64 " frames in %.2fs (%.0f frames/s), "
              "%" PRIu64 " identifications\n",
              fleet.frames, fleet.wall_s,
              fleet.wall_s > 0.0
                  ? static_cast<double>(fleet.frames) / fleet.wall_s
                  : 0.0,
              fleet.identifications);
  std::printf("retrains          %" PRIu64 " (bank epoch %" PRIu64
              ", swap mean %.1f us)\n",
              fleet.retrains_completed, fleet.bank_epoch, fleet.swap_mean_us);
  std::printf("audit             %" PRIu64 " checked, %" PRIu64
              " violations\n",
              fleet.audit_checked, fleet.audit_violations);
  std::printf("model versions    [%" PRIu64 ", %" PRIu64 "]\n",
              fleet.model_version_min, fleet.model_version_max);

  write_json(opt, baseline, retrain, p99_delta_pct, fleet);
  return fleet.audit_violations == 0 ? 0 : 1;
}
