// Reproduces Table V: latency (ms) experienced between devices D1-D3 and
// destinations D4 / S_local / S_remote, with and without traffic filtering
// (15 ping iterations per pair, as in the paper).
//
// Paper reference rows (mean +- stdev, ms):
//   D1->D4 24.8/24.5   D1->Slocal 18.4/18.2   D1->Sremote 20.6/20.3
//   D2->D4 28.5/28.2   D2->Slocal 17.2/17.0   D2->Sremote 20.0/19.8
//   D3->D4 27.6/27.5   D3->Slocal 15.5/15.4   D3->Sremote 20.6/19.9
// (filtering / no-filtering). Shape to reproduce: filtering adds well
// under 1 ms on every pair.
#include <cstdio>

#include "simnet/network_sim.hpp"

int main() {
  using namespace iotsentinel;
  std::printf("=== Table V: latency (ms) with / without traffic filtering ===\n");
  std::printf("(15 iterations per pair; real SDN data plane, modeled link "
              "latencies calibrated to the paper's testbed)\n\n");

  const char* sources[] = {"D1", "D2", "D3"};
  const char* destinations[] = {"D4", "Slocal", "Sremote"};

  std::printf("%-8s %-10s %-22s %-22s %s\n", "Source", "Destination",
              "Filtering mean(+-sd)", "NoFiltering mean(+-sd)", "delta");
  double max_delta = 0.0;
  for (const char* src : sources) {
    for (const char* dst : destinations) {
      // Fresh sims per pair so flow-table state doesn't leak across rows;
      // seeds differ per pair for independent noise, identical between the
      // filtering and no-filtering columns for a paired comparison.
      const std::uint64_t seed =
          7 + static_cast<std::uint64_t>(src[1] - '0') * 131 +
          static_cast<std::uint64_t>(dst[0]) * 17;
      sim::NetworkSim with = sim::make_paper_testbed(true, seed);
      sim::NetworkSim without = sim::make_paper_testbed(false, seed);
      const sim::RttResult w = with.measure_rtt(src, dst, 15);
      const sim::RttResult wo = without.measure_rtt(src, dst, 15);
      const double delta = w.rtt_ms.mean() - wo.rtt_ms.mean();
      max_delta = std::max(max_delta, delta);
      std::printf("%-8s %-10s %6.1f (+-%4.1f)        %6.1f (+-%4.1f)        %+5.2f\n",
                  src, dst, w.rtt_ms.mean(), w.rtt_ms.stddev(),
                  wo.rtt_ms.mean(), wo.rtt_ms.stddev(), delta);
    }
  }
  std::printf("\nmax filtering-induced latency increase: %.2f ms "
              "(paper: <= 0.7 ms on every pair)\n", max_delta);
  return 0;
}
