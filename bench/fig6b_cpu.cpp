// Reproduces Fig. 6b: Security Gateway CPU utilization vs concurrent
// flows, with and without filtering.
//
// Paper reference: both curves rise from ~37% at idle to ~46-48% at 150
// flows on the Raspberry Pi II, with the filtering curve overlapping the
// no-filtering curve (difference within noise).
#include <cstdio>

#include "simnet/network_sim.hpp"

int main() {
  using namespace iotsentinel;
  std::printf("=== Fig. 6b: gateway CPU utilization vs concurrent flows ===\n\n");
  std::printf("%6s  %18s %18s\n", "flows", "with filtering", "without filtering");

  for (std::size_t flows = 0; flows <= 150; flows += 10) {
    sim::NetworkSim with = sim::make_paper_testbed(true, 60 + flows);
    sim::NetworkSim without = sim::make_paper_testbed(false, 600 + flows);
    with.set_concurrent_flows(flows);
    without.set_concurrent_flows(flows);
    sim::RunningStats w;
    sim::RunningStats wo;
    for (int i = 0; i < 25; ++i) {
      w.add(with.cpu_utilization_pct());
      wo.add(without.cpu_utilization_pct());
    }
    std::printf("%6zu  %10.1f%% (+-%3.1f) %10.1f%% (+-%3.1f)\n", flows,
                w.mean(), w.stddev(), wo.mean(), wo.stddev());
  }
  std::printf("\n(paper: ~37%% idle -> ~46-48%% at 150 flows, filtering "
              "within noise of no-filtering)\n");
  return 0;
}
