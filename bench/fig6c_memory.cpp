// Reproduces Fig. 6c: Security Gateway memory consumption vs the number of
// installed enforcement rules (0..20000), with and without filtering.
//
// Paper reference: with filtering, memory grows roughly linearly from
// ~40 MB to ~85 MB at 20k rules; without filtering it stays flat at the
// ~40 MB base. Two series are reported here: the paper-calibrated
// footprint (Floodlight/Java bytes-per-rule) and the raw measured bytes of
// this library's C++ state — the RuleCache plus the switch's two-tier
// flow table (entries, tier-1 hash buckets, deadline heap, cookie index)
// — which is about an order of magnitude leaner (recorded in
// EXPERIMENTS.md). The testbed carries 150 concurrent flows so the
// switch-side share is visible.
#include <cstdio>

#include "simnet/network_sim.hpp"

namespace {

using namespace iotsentinel;

/// Installs `count` restricted rules with realistic whitelists.
void install_rules(sim::NetworkSim& sim, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    sdn::EnforcementRule rule;
    rule.device = net::MacAddress::of(
        0x02, 0x60, static_cast<std::uint8_t>(i >> 16),
        static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i), 1);
    rule.level = sdn::IsolationLevel::kRestricted;
    rule.permitted_ips.insert(
        net::Ipv4Address(0x68000000u + static_cast<std::uint32_t>(i)));
    rule.permitted_ips.insert(
        net::Ipv4Address(0x69000000u + static_cast<std::uint32_t>(i)));
    sim.apply_rule(std::move(rule));
  }
}

}  // namespace

int main() {
  std::printf("=== Fig. 6c: gateway memory vs number of enforcement rules ===\n\n");
  std::printf("%8s  %20s %20s %22s\n", "rules", "w/filt (calibrated)",
              "wo/filt", "w/filt (raw C++ state)");

  for (std::size_t rules = 0; rules <= 20'000; rules += 2'500) {
    sim::NetworkSim with = sim::make_paper_testbed(true, 80);
    sim::NetworkSim without = sim::make_paper_testbed(false, 81);
    install_rules(with, rules);
    // Populate the data plane too: the raw series accounts for switch-side
    // flow-table state (Fig. 6a's max concurrent-flow load).
    with.set_concurrent_flows(150);
    std::printf("%8zu  %17.1f MB %17.1f MB %19.2f MB\n", rules,
                with.memory_mb(rules, /*calibrated=*/true),
                without.memory_mb(rules),
                with.memory_mb(rules, /*calibrated=*/false));
  }
  std::printf("\n(paper: ~40 MB base growing to ~85 MB at 20k rules with "
              "filtering; flat without)\n");
  return 0;
}
