// Ablation: classifier accept threshold — the identification/discovery
// trade-off behind kPaperCalibratedAcceptThreshold.
//
// Low thresholds maximize in-set accuracy (siblings multi-accept and edit
// distance arbitrates, matching the paper's 55% discrimination rate); high
// thresholds maximize new-device-type discovery (foreign fingerprints are
// rejected by every classifier) at the cost of in-set rejections.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace iotsentinel;

/// Fraction of fingerprints of types the bank never saw that are rejected
/// by every classifier (discovery rate).
double discovery_rate(double threshold) {
  // Train on 20 types, probe with the 7 remaining (distinct platforms).
  std::vector<std::string> train_names;
  const std::vector<std::string> held_out = {
      "SmarterCoffee", "iKettle2",        "TP-LinkPlugHS110",
      "TP-LinkPlugHS100", "EdimaxPlug1101W", "EdimaxPlug2101W",
      "HomeMaticPlug"};
  for (const auto& p : sim::device_catalog()) {
    bool excluded = false;
    for (const auto& h : held_out) excluded |= (p.name == h);
    if (!excluded) train_names.push_back(p.name);
  }
  const auto train_corpus = sim::generate_corpus_for(train_names, 15, 421);
  core::IdentifierConfig config;
  config.bank.accept_threshold = threshold;
  core::DeviceIdentifier identifier(config);
  identifier.train(train_corpus.type_names, train_corpus.by_type);

  const auto probes = sim::generate_corpus_for(held_out, 5, 422);
  std::size_t rejected = 0;
  std::size_t total = 0;
  for (const auto& runs : probes.by_type) {
    for (const auto& f : runs) {
      ++total;
      if (identifier.identify(f).is_new_type) ++rejected;
    }
  }
  return static_cast<double>(rejected) / static_cast<double>(total);
}

}  // namespace

int main() {
  std::printf("=== Ablation: accept threshold (library default 0.5, "
              "paper-calibrated %.2f) ===\n\n",
              core::kPaperCalibratedAcceptThreshold);
  const auto corpus = bench::paper_corpus();

  std::printf("%10s %10s %12s %10s %12s\n", "threshold", "global",
              "discr.frac", "rejected", "discovery");
  for (double threshold : {0.15, 0.25, 0.35, 0.5, 0.65}) {
    auto config = bench::paper_cv_config();
    config.repetitions = 2;
    config.identifier.bank.accept_threshold = threshold;
    const auto out =
        core::cross_validate(corpus.type_names, corpus.by_type, config);
    std::printf("%10.2f %10.3f %11.0f%% %10llu %11.0f%%\n", threshold,
                out.global_accuracy, 100.0 * out.discrimination_fraction,
                static_cast<unsigned long long>(out.rejected),
                100.0 * discovery_rate(threshold));
  }
  std::printf("\n(global/discr.frac/rejected: in-set CV on all 27 types; "
              "discovery: foreign-platform rejection rate)\n");
  return 0;
}
