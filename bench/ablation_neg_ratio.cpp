// Ablation: negative subsampling ratio for the one-vs-rest classifiers.
// The paper trains each per-type classifier with 10*n negatives "to avoid
// imbalanced class learning issues"; this bench sweeps the ratio.
//
// Expected shape: tiny ratios starve the classifiers of negative evidence
// (more cross-type accepts, heavier reliance on discrimination); very
// large ratios drown the positives. The plateau around 5-15x justifies
// the paper's choice.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace iotsentinel;
  std::printf("=== Ablation: negative subsampling ratio (paper: 10x) ===\n\n");
  const auto corpus = bench::paper_corpus();

  std::printf("%8s %10s %12s %12s\n", "ratio", "global", "discr.frac",
              "rejected");
  for (double ratio : {1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 26.0}) {
    auto config = bench::paper_cv_config();
    config.repetitions = 2;
    config.identifier.bank.negative_ratio = ratio;
    const auto out =
        core::cross_validate(corpus.type_names, corpus.by_type, config);
    std::printf("%7.0fx %10.3f %11.0f%% %12llu\n", ratio, out.global_accuracy,
                100.0 * out.discrimination_fraction,
                static_cast<unsigned long long>(out.rejected));
  }
  return 0;
}
