// Reproduces Table VI: overhead of the filtering mechanism.
//
// Paper reference: D1D2 latency +5.84% (+-4.76), D1D3 latency +0.71%
// (+-5.88), CPU utilization +0.63% (+-1.8), memory usage +7.6% (+-4.6).
// Shape to reproduce: single-digit-percent overheads with stdev of the
// same order (individual runs are noisy; the mean is small).
#include <cstdio>

#include "simnet/network_sim.hpp"

namespace {

using namespace iotsentinel;

/// Percentage overhead of `with` over `without`.
double pct(double with_value, double without_value) {
  return 100.0 * (with_value - without_value) / without_value;
}

}  // namespace

int main() {
  std::printf("=== Table VI: overhead due to the filtering mechanism ===\n\n");

  // Latency overheads: repeated paired measurements, mean and stdev of the
  // per-run percentage difference (the paper's large stdevs come from
  // exactly this run-to-run noise).
  for (const char* pair : {"D2", "D3"}) {
    sim::RunningStats overhead;
    for (std::uint64_t run = 0; run < 10; ++run) {
      sim::NetworkSim with = sim::make_paper_testbed(true, 100 + run);
      sim::NetworkSim without = sim::make_paper_testbed(false, 900 + run);
      with.set_concurrent_flows(50);
      without.set_concurrent_flows(50);
      const double w = with.measure_rtt("D1", pair, 15).rtt_ms.mean();
      const double wo = without.measure_rtt("D1", pair, 15).rtt_ms.mean();
      overhead.add(pct(w, wo));
    }
    std::printf("D1%s latency overhead: %+5.2f%% (+-%.2f%%)   (paper: %s)\n",
                pair, overhead.mean(), overhead.stddev(),
                pair[1] == '2' ? "+5.84% +-4.76%" : "+0.71% +-5.88%");
  }

  // CPU overhead at 100 concurrent flows.
  {
    sim::NetworkSim with = sim::make_paper_testbed(true, 11);
    sim::NetworkSim without = sim::make_paper_testbed(false, 12);
    with.set_concurrent_flows(100);
    without.set_concurrent_flows(100);
    sim::RunningStats diff;
    for (int i = 0; i < 40; ++i) {
      diff.add(with.cpu_utilization_pct() - without.cpu_utilization_pct());
    }
    std::printf("CPU utilization overhead: %+5.2f%% (+-%.2f%%)  (paper: +0.63%% +-1.8%%)\n",
                diff.mean(), diff.stddev());
  }

  // Memory overhead across rule populations. The paper reports +7.6%
  // (+-4.6%) for their lab population; the sweep shows where that sits.
  {
    sim::NetworkSim with = sim::make_paper_testbed(true, 13);
    sim::NetworkSim without = sim::make_paper_testbed(false, 14);
    const double wo = without.memory_mb(0);
    for (std::size_t rules : {100u, 1250u, 3000u}) {
      std::printf(
          "Memory usage overhead (%5zu rules): %+5.2f%%%s\n", rules,
          pct(with.memory_mb(rules), wo),
          rules == 1250u ? "   (paper lab population: +7.6% +-4.6%)" : "");
    }
  }
  return 0;
}
