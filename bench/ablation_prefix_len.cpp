// Ablation: length of the F' prefix (the paper fixed 12 packets after a
// "preliminary analysis"; this bench regenerates that analysis).
//
// Expected shape: accuracy climbs steeply up to ~8-12 packets, then
// saturates — longer prefixes only add zero padding because most setup
// dialogues contain 6-14 unique packets.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace iotsentinel;
  std::printf("=== Ablation: F' prefix length (paper default: 12) ===\n\n");
  const auto corpus = bench::paper_corpus();

  std::printf("%8s %10s %12s %12s\n", "prefix", "global", "discr.frac",
              "rejected");
  for (std::size_t prefix : {2, 4, 6, 8, 10, 12, 16, 20}) {
    auto config = bench::paper_cv_config();
    config.repetitions = 2;  // ablation sweep: 2 reps per point suffice
    config.identifier.fixed_prefix = prefix;
    const auto out =
        core::cross_validate(corpus.type_names, corpus.by_type, config);
    std::printf("%8zu %10.3f %11.0f%% %12llu\n", prefix, out.global_accuracy,
                100.0 * out.discrimination_fraction,
                static_cast<unsigned long long>(out.rejected));
  }
  return 0;
}
