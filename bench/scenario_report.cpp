// Adversarial scenario report: runs the shipped attack library
// (simnet/scenario.hpp builtin_scenarios) against the serial
// SecurityGateway and the ShardedGateway at 1, 2 and 4 shards, with the
// enforcement auditor attached, and writes the per-run metrics —
// misidentification rate, enforcement-integrity counters, extractor
// state-bloat, fault-injection tallies — to BENCH_scenarios.json.
//
// Exit status is the robustness verdict: 0 only when every scenario
// passes every expectation with zero enforcement violations on every
// gateway flavour. CI runs this in the release-bench job and uploads the
// JSON; a nonzero exit fails the job.
//
// Self-timed (scenario replay is milliseconds-to-seconds; Google
// Benchmark's repetition model adds nothing here).
//
//   cmake --preset release && cmake --build --preset release -j
//   ./build-release/bench/scenario_report [--json PATH] [--runs N]
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "simnet/device_catalog.hpp"
#include "simnet/scenario.hpp"

namespace {

using namespace iotsentinel;

struct Options {
  std::string json_path = "BENCH_scenarios.json";
  /// Extra repeat runs per (scenario, flavour) to demonstrate the
  /// determinism contract (stream hash and serial outcome stability).
  std::size_t runs = 2;
};

constexpr std::size_t kShardCounts[] = {0, 1, 2, 4};  // 0 = serial

const char* flavour_name(std::size_t shards) {
  switch (shards) {
    case 0: return "serial";
    case 1: return "sharded-1";
    case 2: return "sharded-2";
    default: return shards == 4 ? "sharded-4" : "sharded-n";
  }
}

void json_outcome(std::FILE* f, const sim::ScenarioOutcome& out,
                  double wall_ms) {
  std::fprintf(f,
               "      {\"flavour\": \"%s\", \"num_shards\": %zu,\n"
               "       \"stream_hash\": \"%016" PRIx64 "\",\n"
               "       \"frames_fed\": %" PRIu64
               ", \"malformed_frames\": %" PRIu64
               ", \"dropped_frames\": %" PRIu64 ",\n"
               "       \"audit_checked\": %" PRIu64
               ", \"audit_violations\": %" PRIu64
               ", \"audit_overblocks\": %" PRIu64 ",\n"
               "       \"extractor_peak_active\": %" PRIu64
               ", \"extractor_discarded\": %" PRIu64
               ", \"extractor_rejected\": %" PRIu64 ",\n"
               "       \"devices_expired\": %" PRIu64
               ", \"events_total\": %zu,\n"
               "       \"actors_with_type_expectation\": %zu"
               ", \"actors_misidentified\": %zu"
               ", \"misid_rate\": %.4f,\n"
               "       \"failures\": %zu, \"passed\": %s"
               ", \"wall_ms\": %.2f}",
               flavour_name(out.num_shards), out.num_shards, out.stream_hash,
               out.frames_fed, out.malformed_frames, out.dropped_frames,
               out.audit_checked, out.audit_violations, out.audit_overblocks,
               out.extractor_peak_active, out.extractor_discarded,
               out.extractor_rejected, out.devices_expired, out.events_total,
               out.actors_with_type_expectation, out.actors_misidentified,
               out.misid_rate, out.failures.size(),
               out.passed() ? "true" : "false", wall_ms);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      opt.runs = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (opt.runs == 0) opt.runs = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--runs N]\n", argv[0]);
      return 2;
    }
  }

  // One service for the whole report: the types the builtin scenarios
  // join, trained from the catalog profiles. EdimaxCam carries a CVSS 9.0
  // entry (Restricted); the others are assessed clean (Trusted).
  const std::vector<std::string> kTypes = {"Aria", "EdimaxCam", "HueBridge",
                                           "Withings"};
  const core::IoTSecurityService service = sim::make_scenario_service(kTypes);
  const sim::Roster& roster = sim::device_roster();

  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", opt.json_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"bench\": \"scenario_report\",\n  \"runs\": %zu,\n",
               opt.runs);
  std::fprintf(f, "  \"scenarios\": [\n");

  bool all_passed = true;
  bool first_scenario = true;
  for (const sim::BuiltinScenario& builtin : sim::builtin_scenarios()) {
    sim::ScenarioParseResult parsed = sim::parse_scenario(builtin.text);
    if (!parsed) {
      std::fprintf(stderr, "FATAL: builtin `%s` failed to parse: %s\n",
                   builtin.name, sim::describe(parsed.error()).c_str());
      std::fclose(f);
      return 2;
    }
    sim::ScenarioError cerr;
    const auto compiled = sim::compile_scenario(*parsed, roster, &cerr);
    if (!compiled) {
      std::fprintf(stderr, "FATAL: builtin `%s` failed to compile: %s\n",
                   builtin.name, sim::describe(cerr).c_str());
      std::fclose(f);
      return 2;
    }

    std::fprintf(f, "%s    {\"name\": \"%s\", \"seed\": %" PRIu64
                    ", \"items\": %zu,\n",
                 first_scenario ? "" : ",\n", builtin.name, compiled->seed,
                 compiled->items.size());
    first_scenario = false;
    std::fprintf(f,
                 "     \"fault_stats\": {\"frames_in\": %" PRIu64
                 ", \"dropped\": %" PRIu64 ", \"duplicated\": %" PRIu64
                 ", \"reordered\": %" PRIu64 ", \"corrupted\": %" PRIu64
                 "},\n",
                 compiled->fault_stats.frames_in, compiled->fault_stats.dropped,
                 compiled->fault_stats.duplicated,
                 compiled->fault_stats.reordered,
                 compiled->fault_stats.corrupted);
    std::fprintf(f, "     \"results\": [\n");

    bool first_result = true;
    for (const std::size_t shards : kShardCounts) {
      for (std::size_t run = 0; run < opt.runs; ++run) {
        const auto t0 = std::chrono::steady_clock::now();
        const sim::ScenarioOutcome out =
            sim::run_scenario(*compiled, service, shards);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::fprintf(f, "%s", first_result ? "" : ",\n");
        first_result = false;
        json_outcome(f, out, wall_ms);

        std::printf("%-20s %-10s run %zu: %s  (misid %.2f, violations %" PRIu64
                    ", %zu events, %.1f ms)\n",
                    builtin.name, flavour_name(shards), run,
                    out.passed() ? "PASS" : "FAIL", out.misid_rate,
                    out.audit_violations, out.events_total, wall_ms);
        for (const std::string& failure : out.failures) {
          std::printf("    %s\n", failure.c_str());
          all_passed = false;
        }
        if (!out.passed()) all_passed = false;
      }
    }
    std::fprintf(f, "\n    ]}");
  }
  std::fprintf(f, "\n  ],\n  \"all_passed\": %s\n}\n",
               all_passed ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s — %s\n", opt.json_path.c_str(),
              all_passed ? "all scenarios hold" : "FAILURES PRESENT");
  return all_passed ? 0 : 1;
}
