// Extension experiment (paper Sect. VIII-A, future work): can device-types
// be identified from *standby/operation* traffic instead of the one-time
// setup dialogue?
//
// The paper's working hypothesis: "message exchanges during standby and
// operation cycles are likely to be characteristic for particular
// device-types and therefore form a good basis for device-type
// identification". This bench tests the hypothesis on the simulated
// catalog: a fingerprint corpus is extracted from windows of operational
// traffic (cloud keepalives, service re-announcements, periodic NTP) and
// evaluated with the same CV protocol as Fig. 5.
//
// Expected shape: high accuracy for types with distinctive services, the
// same family-level confusion as the setup corpus, and somewhat lower
// overall accuracy than setup traffic (standby cycles are shorter and
// lack the join preamble's protocol diversity).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace iotsentinel;
  std::printf("=== Extension (Sect. VIII-A): identification from standby "
              "traffic ===\n\n");

  const auto standby = sim::generate_standby_corpus(20, 4242, /*cycles=*/3);
  auto config = bench::paper_cv_config();
  const auto out =
      core::cross_validate(standby.type_names, standby.by_type, config);

  std::printf("%-22s %s\n", "device-type", "standby accuracy");
  for (std::size_t t = 0; t < standby.num_types(); ++t) {
    std::printf("%-22s %.3f\n", standby.type_names[t].c_str(),
                out.per_type_accuracy[t]);
  }
  std::printf("\nglobal standby-identification accuracy: %.3f\n",
              out.global_accuracy);

  // Setup-phase accuracy under the same (reduced) protocol for contrast.
  const auto setup = bench::paper_corpus();
  const auto setup_out =
      core::cross_validate(setup.type_names, setup.by_type, config);
  std::printf("setup-phase accuracy (same protocol):    %.3f\n",
              setup_out.global_accuracy);
  std::printf("\n(supports the paper's hypothesis when standby accuracy is "
              "well above the 1/27 = 0.037 random baseline)\n");
  return 0;
}
