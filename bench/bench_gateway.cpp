// Gateway packet-throughput benchmark, two workloads:
//
//   * Onboarding: the serial SecurityGateway vs the ShardedGateway
//     pipeline at 1/2/4/8 worker shards, replaying the same multi-device
//     onboarding trace (many devices of the 27 catalog types joining in
//     staggered waves). Setup dialogues are slow-path heavy (ARP/DHCP/
//     multicast never leave the controller), so this measures the
//     fingerprinting + classification pipeline, not the flow table.
//   * Steady state: identified devices exchanging sustained traffic over
//     established flows — the data-plane-bound workload where per-packet
//     flow-table lookup dominates and the two-tier hashed table earns its
//     keep (each flow pays one priority scan, then tier-1 hits).
//
// Wall-clock (UseRealTime) is the honest metric for a threaded pipeline;
// items/s is frames through the gateway. Reference numbers live in
// BENCH_gateway.json.
//
// Note: the speedup of the sharded pipeline is bounded by the physical
// core count — on a single-core container the 1-shard run measures pure
// pipeline overhead, not parallelism.
//
// Run from the release preset:
//   cmake --preset release && cmake --build --preset release -j
//   ./build-release/bench/bench_gateway
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_util.hpp"
#include "core/gateway_pool.hpp"
#include "core/security_gateway.hpp"
#include "core/vulnerability_db.hpp"
#include "net/builder.hpp"
#include "net/protocols.hpp"
#include "simnet/device_catalog.hpp"
#include "simnet/traffic_generator.hpp"

namespace {

using namespace iotsentinel;

/// Setup dialogues per catalog type in the onboarding trace; the device
/// count is derived from the loaded roster (kTypeMultiplier x number of
/// types) instead of a magic total, so the workload tracks catalog edits.
constexpr std::uint32_t kTypeMultiplier = 28;

std::uint32_t num_trace_devices() {
  return kTypeMultiplier *
         static_cast<std::uint32_t>(sim::device_catalog().size());
}

core::IoTSecurityService make_service(const sim::FingerprintCorpus& corpus) {
  core::DeviceIdentifier identifier(bench::paper_identifier_config());
  identifier.train(corpus.type_names, corpus.by_type);
  return core::IoTSecurityService(std::move(identifier),
                                  core::VulnerabilityDb::with_sample_data());
}

/// One mixed capture: setup dialogues for every catalog type in staggered
/// onboarding waves, merged into a single timestamp-ordered frame stream.
std::vector<sim::TimedFrame> make_trace() {
  const auto& catalog = sim::device_catalog();
  std::vector<sim::TimedFrame> trace;
  const std::uint32_t num_devices = num_trace_devices();
  for (std::uint32_t d = 0; d < num_devices; ++d) {
    const sim::DeviceProfile& profile = catalog[d % catalog.size()];
    sim::GeneratorConfig config;
    config.start_time_us = (d % 16) * 500'000;  // 16 overlapping waves
    sim::TrafficGenerator gen(config);
    ml::Rng rng(9000 + d);
    const auto mac = sim::TrafficGenerator::mint_mac(profile, 1000 + d);
    const auto ip = net::Ipv4Address::of(
        192, 168, static_cast<std::uint8_t>(1 + d / 200),
        static_cast<std::uint8_t>(2 + d % 200));
    for (auto& tf : gen.generate(profile, mac, ip, rng)) {
      trace.push_back(std::move(tf));
    }
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const sim::TimedFrame& a, const sim::TimedFrame& b) {
                     return a.timestamp_us < b.timestamp_us;
                   });
  return trace;
}

/// Steady-state workload shape: identified devices, a few long-lived
/// flows each, sustained packets per flow. ~1500 installed micro-flows in
/// the serial gateway's table, ~60k timed frames.
constexpr std::uint32_t kSteadyDevices = 512;
constexpr std::uint32_t kSteadyFlowsPerDevice = 3;
constexpr std::uint32_t kSteadyPacketsPerFlow = 40;

net::MacAddress steady_mac(std::uint32_t d) {
  return net::MacAddress::of(0x02, 0x77, 0,
                             static_cast<std::uint8_t>(d >> 8),
                             static_cast<std::uint8_t>(d), 1);
}

/// Round-robin interleaved UDP traffic over established device flows: all
/// flows stay concurrently live, as behind a real gateway under load.
std::vector<sim::TimedFrame> make_steady_trace() {
  std::vector<sim::TimedFrame> trace;
  trace.reserve(static_cast<std::size_t>(kSteadyDevices) *
                kSteadyFlowsPerDevice * kSteadyPacketsPerFlow);
  const net::MacAddress gw_mac = net::MacAddress::of(2, 0, 0, 0, 0, 1);
  std::uint64_t ts = 1'000'000;
  for (std::uint32_t p = 0; p < kSteadyPacketsPerFlow; ++p) {
    for (std::uint32_t d = 0; d < kSteadyDevices; ++d) {
      const auto src_ip = net::Ipv4Address::of(
          192, 168, static_cast<std::uint8_t>(1 + d / 200),
          static_cast<std::uint8_t>(2 + d % 200));
      for (std::uint32_t f = 0; f < kSteadyFlowsPerDevice; ++f) {
        // Whitelist-friendly remote endpoint per (device, flow).
        const auto dst_ip = net::Ipv4Address::of(
            104, 20, static_cast<std::uint8_t>(d), static_cast<std::uint8_t>(f));
        sim::TimedFrame tf;
        tf.timestamp_us = ts;
        tf.frame = net::build_ipv4(
            steady_mac(d), gw_mac, src_ip, dst_ip, net::ipproto::kUdp,
            net::build_udp_payload(
                static_cast<std::uint16_t>(50000 + f),
                static_cast<std::uint16_t>(443 + f), {}));
        trace.push_back(std::move(tf));
        ts += 50;
      }
    }
  }
  return trace;
}

/// Marks every steady-state device Trusted so its flows are forwarded and
/// installed (bypasses identification: this workload measures the data
/// plane, not the classifier).
template <typename Gateway>
void install_steady_rules(Gateway& gw) {
  for (std::uint32_t d = 0; d < kSteadyDevices; ++d) {
    gw.controller().apply_rule(
        {.device = steady_mac(d), .level = sdn::IsolationLevel::kTrusted}, 0);
  }
}

/// Shared trained state (built once; training the 27-type bank dominates
/// startup, not measurement).
struct GatewayFixtureState {
  sim::FingerprintCorpus corpus = bench::paper_corpus();
  core::IoTSecurityService service = make_service(corpus);
  std::vector<sim::TimedFrame> trace = make_trace();
  std::vector<sim::TimedFrame> steady_trace = make_steady_trace();
};

GatewayFixtureState& state() {
  static GatewayFixtureState s;
  return s;
}

/// Baseline: the serial gateway, one frame at a time through one
/// extractor, one classifier, one data plane.
void BM_GatewaySerial(benchmark::State& bm) {
  auto& s = state();
  std::size_t events = 0;
  for (auto _ : bm) {
    core::SecurityGateway gw(s.service);
    for (const auto& tf : s.trace) gw.on_frame(tf.frame, tf.timestamp_us);
    gw.finish_pending_captures();
    events = gw.events().size();
    benchmark::DoNotOptimize(events);
  }
  bm.SetItemsProcessed(static_cast<std::int64_t>(bm.iterations()) *
                       static_cast<std::int64_t>(s.trace.size()));
  bm.counters["devices"] = static_cast<double>(events);
}
BENCHMARK(BM_GatewaySerial)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The sharded pipeline end to end: submit every frame (zero-copy ingest),
/// then finish() — the measured span covers ingest, all shard work,
/// batched classification and the full drain.
void BM_GatewaySharded(benchmark::State& bm) {
  auto& s = state();
  const auto shards = static_cast<std::size_t>(bm.range(0));
  std::size_t events = 0;
  for (auto _ : bm) {
    core::ShardedGatewayConfig config;
    config.num_shards = shards;
    core::ShardedGateway gw(s.service, config);
    for (const auto& tf : s.trace) gw.submit(tf.frame, tf.timestamp_us);
    gw.finish();
    events = gw.events().size();
    benchmark::DoNotOptimize(events);
  }
  bm.SetItemsProcessed(static_cast<std::int64_t>(bm.iterations()) *
                       static_cast<std::int64_t>(s.trace.size()));
  bm.counters["devices"] = static_cast<double>(events);
  bm.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_GatewaySharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Steady state through the serial gateway: every flow's first packet
/// takes the slow path and installs a micro-flow; the remaining traffic is
/// pure fast path, i.e. per-packet flow-table lookup over ~1.5k installed
/// flows.
void BM_GatewaySteadySerial(benchmark::State& bm) {
  auto& s = state();
  std::uint64_t fast = 0;
  for (auto _ : bm) {
    core::SecurityGateway gw(s.service);
    install_steady_rules(gw);
    for (const auto& tf : s.steady_trace) gw.on_frame(tf.frame, tf.timestamp_us);
    fast = gw.data_plane().fast_path_packets();
    benchmark::DoNotOptimize(fast);
  }
  bm.SetItemsProcessed(static_cast<std::int64_t>(bm.iterations()) *
                       static_cast<std::int64_t>(s.steady_trace.size()));
  bm.counters["fast_path"] = static_cast<double>(fast);
  bm.counters["flows"] =
      static_cast<double>(kSteadyDevices) * kSteadyFlowsPerDevice;
}
BENCHMARK(BM_GatewaySteadySerial)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Steady state through the sharded pipeline: per-shard tables hold 1/N of
/// the flows; lookups additionally run concurrently when cores allow.
void BM_GatewaySteadySharded(benchmark::State& bm) {
  auto& s = state();
  const auto shards = static_cast<std::size_t>(bm.range(0));
  for (auto _ : bm) {
    core::ShardedGatewayConfig config;
    config.num_shards = shards;
    core::ShardedGateway gw(s.service, config);
    install_steady_rules(gw);
    for (const auto& tf : s.steady_trace) gw.submit(tf.frame, tf.timestamp_us);
    gw.finish();
  }
  bm.SetItemsProcessed(static_cast<std::int64_t>(bm.iterations()) *
                       static_cast<std::int64_t>(s.steady_trace.size()));
  bm.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_GatewaySteadySharded)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
