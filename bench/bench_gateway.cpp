// Gateway packet-throughput benchmark: the serial SecurityGateway vs the
// ShardedGateway pipeline at 1/2/4/8 worker shards, replaying the same
// multi-device onboarding trace (many devices of the 27 catalog types
// joining in staggered waves). Wall-clock (UseRealTime) is the honest
// metric for a threaded pipeline; items/s is frames through the gateway.
// Reference numbers live in BENCH_gateway.json.
//
// Note: the speedup of the sharded pipeline is bounded by the physical
// core count — on a single-core container the 1-shard run measures pure
// pipeline overhead, not parallelism.
//
// Run from the release preset:
//   cmake --preset release && cmake --build --preset release -j
//   ./build-release/bench/bench_gateway
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_util.hpp"
#include "core/gateway_pool.hpp"
#include "core/security_gateway.hpp"
#include "core/vulnerability_db.hpp"
#include "simnet/device_catalog.hpp"
#include "simnet/traffic_generator.hpp"

namespace {

using namespace iotsentinel;

/// Devices onboarding in the replayed trace (catalog types, round-robin).
constexpr std::uint32_t kNumDevices = 768;

core::IoTSecurityService make_service(const sim::FingerprintCorpus& corpus) {
  core::DeviceIdentifier identifier(bench::paper_identifier_config());
  identifier.train(corpus.type_names, corpus.by_type);
  return core::IoTSecurityService(std::move(identifier),
                                  core::VulnerabilityDb::with_sample_data());
}

/// One mixed capture: kNumDevices setup dialogues in staggered onboarding
/// waves, merged into a single timestamp-ordered frame stream.
std::vector<sim::TimedFrame> make_trace() {
  const auto& catalog = sim::device_catalog();
  std::vector<sim::TimedFrame> trace;
  for (std::uint32_t d = 0; d < kNumDevices; ++d) {
    const sim::DeviceProfile& profile = catalog[d % catalog.size()];
    sim::GeneratorConfig config;
    config.start_time_us = (d % 16) * 500'000;  // 16 overlapping waves
    sim::TrafficGenerator gen(config);
    ml::Rng rng(9000 + d);
    const auto mac = sim::TrafficGenerator::mint_mac(profile, 1000 + d);
    const auto ip = net::Ipv4Address::of(
        192, 168, static_cast<std::uint8_t>(1 + d / 200),
        static_cast<std::uint8_t>(2 + d % 200));
    for (auto& tf : gen.generate(profile, mac, ip, rng)) {
      trace.push_back(std::move(tf));
    }
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const sim::TimedFrame& a, const sim::TimedFrame& b) {
                     return a.timestamp_us < b.timestamp_us;
                   });
  return trace;
}

/// Shared trained state (built once; training the 27-type bank dominates
/// startup, not measurement).
struct GatewayFixtureState {
  sim::FingerprintCorpus corpus = bench::paper_corpus();
  core::IoTSecurityService service = make_service(corpus);
  std::vector<sim::TimedFrame> trace = make_trace();
};

GatewayFixtureState& state() {
  static GatewayFixtureState s;
  return s;
}

/// Baseline: the serial gateway, one frame at a time through one
/// extractor, one classifier, one data plane.
void BM_GatewaySerial(benchmark::State& bm) {
  auto& s = state();
  std::size_t events = 0;
  for (auto _ : bm) {
    core::SecurityGateway gw(s.service);
    for (const auto& tf : s.trace) gw.on_frame(tf.frame, tf.timestamp_us);
    gw.finish_pending_captures();
    events = gw.events().size();
    benchmark::DoNotOptimize(events);
  }
  bm.SetItemsProcessed(static_cast<std::int64_t>(bm.iterations()) *
                       static_cast<std::int64_t>(s.trace.size()));
  bm.counters["devices"] = static_cast<double>(events);
}
BENCHMARK(BM_GatewaySerial)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The sharded pipeline end to end: submit every frame (zero-copy ingest),
/// then finish() — the measured span covers ingest, all shard work,
/// batched classification and the full drain.
void BM_GatewaySharded(benchmark::State& bm) {
  auto& s = state();
  const auto shards = static_cast<std::size_t>(bm.range(0));
  std::size_t events = 0;
  for (auto _ : bm) {
    core::ShardedGatewayConfig config;
    config.num_shards = shards;
    core::ShardedGateway gw(s.service, config);
    for (const auto& tf : s.trace) gw.submit(tf.frame, tf.timestamp_us);
    gw.finish();
    events = gw.events().size();
    benchmark::DoNotOptimize(events);
  }
  bm.SetItemsProcessed(static_cast<std::int64_t>(bm.iterations()) *
                       static_cast<std::int64_t>(s.trace.size()));
  bm.counters["devices"] = static_cast<double>(events);
  bm.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_GatewaySharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
