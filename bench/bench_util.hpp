// Shared configuration for the paper-reproduction benches: one place pins
// the corpus seed and the paper-calibrated pipeline settings so Fig. 5,
// Table III and Table IV all evaluate the same system.
#pragma once

#include <cstdlib>
#include <string>

#include "core/evaluation.hpp"
#include "simnet/corpus.hpp"

namespace iotsentinel::bench {

/// Corpus matching the paper's dataset shape: 27 types x 20 captures.
inline sim::FingerprintCorpus paper_corpus() {
  return sim::generate_corpus(/*runs_per_type=*/20, /*seed=*/42);
}

/// The paper's evaluation protocol: stratified 10-fold CV, repeated.
/// Repetitions default to the paper's 10 but can be reduced through the
/// IOTS_CV_REPS environment variable for quick runs.
inline core::CvConfig paper_cv_config() {
  core::CvConfig config;
  config.folds = 10;
  config.repetitions = 10;
  if (const char* reps = std::getenv("IOTS_CV_REPS")) {
    const int value = std::atoi(reps);
    if (value > 0) config.repetitions = static_cast<std::size_t>(value);
  }
  config.identifier.bank.accept_threshold =
      core::kPaperCalibratedAcceptThreshold;
  config.seed = 20170605;  // ICDCS'17 :-)
  return config;
}

/// Identifier settings used outside cross-validation (timing benches).
inline core::IdentifierConfig paper_identifier_config() {
  core::IdentifierConfig config;
  config.bank.accept_threshold = core::kPaperCalibratedAcceptThreshold;
  return config;
}

}  // namespace iotsentinel::bench
