// Forest-inference microbenchmarks: legacy (training-side, per-call
// heap-allocating) prediction vs the CompiledForest serving engine, at
// every granularity of the identification hot path — one tree, one
// binary per-type forest, the full 27-type classifier bank, and a
// batched bank sweep. The before/after pairs feed BENCH_inference.json.
//
// Run from the release preset:
//   cmake --preset release && cmake --build --preset release -j
//   ./build-release/bench/bench_inference
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ml/compiled_forest.hpp"

namespace {

using namespace iotsentinel;

/// Shared trained state: the paper-shaped bank (27 types x 30 trees)
/// plus one probe fingerprint per type.
struct InferenceFixtureState {
  sim::FingerprintCorpus corpus;
  core::ClassifierBank bank{[] {
    core::BankConfig config;
    config.accept_threshold = core::kPaperCalibratedAcceptThreshold;
    return config;
  }()};
  std::vector<fp::FixedFingerprint> probes;  // one per type
  ml::CompiledForest compiled_tree;          // first tree of type 0

  InferenceFixtureState() : corpus(bench::paper_corpus()) {
    std::vector<std::vector<fp::FixedFingerprint>> fixed;
    for (std::size_t t = 0; t < corpus.num_types(); ++t) {
      auto& runs = fixed.emplace_back();
      const auto& pool = corpus.by_type[t];
      // Hold out the last run as the probe; train on the rest.
      for (std::size_t i = 0; i + 1 < pool.size(); ++i) {
        runs.push_back(pool[i].to_fixed());
      }
      probes.push_back(pool.back().to_fixed());
    }
    bank.train(corpus.type_names, fixed);
    compiled_tree = ml::CompiledForest::compile(bank.forest(0).tree(0));
  }
};

InferenceFixtureState& state() {
  static InferenceFixtureState s;
  return s;
}

/// One tree, legacy path: predict_proba heap-allocates its histogram and
/// walks nodes whose leaf counts live in scattered per-node vectors.
void BM_SingleTreeLegacy(benchmark::State& bm) {
  auto& s = state();
  const auto& tree = s.bank.forest(0).tree(0);
  std::size_t i = 0;
  for (auto _ : bm) {
    const auto proba = tree.predict_proba(s.probes[i % s.probes.size()]);
    benchmark::DoNotOptimize(proba.data());
    ++i;
  }
}
BENCHMARK(BM_SingleTreeLegacy);

/// One tree, compiled: flat node array + shared leaf pool, caller buffer.
void BM_SingleTreeCompiled(benchmark::State& bm) {
  auto& s = state();
  std::vector<double> out(static_cast<std::size_t>(s.compiled_tree.num_classes()));
  std::size_t i = 0;
  for (auto _ : bm) {
    s.compiled_tree.predict_proba_into(s.probes[i % s.probes.size()], out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_SingleTreeCompiled);

/// One binary forest (30 trees), legacy positive_score: 30 tree-level
/// histogram allocations + the forest-level sum vector per call.
void BM_SingleForestLegacy(benchmark::State& bm) {
  auto& s = state();
  const auto& forest = s.bank.forest(0);
  std::size_t i = 0;
  for (auto _ : bm) {
    const double score = forest.positive_score(s.probes[i % s.probes.size()]);
    benchmark::DoNotOptimize(score);
    ++i;
  }
}
BENCHMARK(BM_SingleForestLegacy);

/// One binary forest, compiled: zero allocations, no scratch at all.
void BM_SingleForestCompiled(benchmark::State& bm) {
  auto& s = state();
  const auto& engine = s.bank.compiled(0);
  std::size_t i = 0;
  for (auto _ : bm) {
    const double score = engine.positive_score(s.probes[i % s.probes.size()]);
    benchmark::DoNotOptimize(score);
    ++i;
  }
}
BENCHMARK(BM_SingleForestCompiled);

/// Full bank (27 types x 30 trees), pre-compilation serving path: exactly
/// what ClassifierBank::scores did before this engine existed (~810
/// heap-allocated histograms per call).
void BM_FullBankLegacy(benchmark::State& bm) {
  auto& s = state();
  std::size_t i = 0;
  for (auto _ : bm) {
    std::vector<double> out(s.bank.num_types(), 0.0);
    for (std::size_t t = 0; t < s.bank.num_types(); ++t) {
      out[t] = s.bank.forest(t).positive_score(s.probes[i % s.probes.size()]);
    }
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  bm.counters["types"] = static_cast<double>(s.bank.num_types());
}
BENCHMARK(BM_FullBankLegacy)->Unit(benchmark::kMicrosecond);

/// Full bank through the compiled engines and the reused caller buffer —
/// the production ClassifierBank::scores_into path.
void BM_FullBankCompiled(benchmark::State& bm) {
  auto& s = state();
  std::vector<double> out(s.bank.num_types());
  std::size_t i = 0;
  for (auto _ : bm) {
    s.bank.scores_into(s.probes[i % s.probes.size()], out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  bm.counters["types"] = static_cast<double>(s.bank.num_types());
}
BENCHMARK(BM_FullBankCompiled)->Unit(benchmark::kMicrosecond);

/// Batched bank scoring (type-major sweep): per-fingerprint cost when
/// many onboarding devices are classified together.
void BM_BankBatchCompiled(benchmark::State& bm) {
  auto& s = state();
  std::vector<double> out(s.probes.size() * s.bank.num_types());
  for (auto _ : bm) {
    s.bank.score_batch(s.probes, out);
    benchmark::DoNotOptimize(out.data());
  }
  bm.SetItemsProcessed(static_cast<std::int64_t>(bm.iterations()) *
                       static_cast<std::int64_t>(s.probes.size()));
  bm.counters["batch"] = static_cast<double>(s.probes.size());
}
BENCHMARK(BM_BankBatchCompiled)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
