// Analysis: which Table-I features carry the identification signal?
//
// Trains the full 27-type classifier bank, averages the gini feature
// importance over all per-type forests, and aggregates the 276 F'
// dimensions (12 packet slots x 23 features) back to the 23 Table-I
// feature names and to the 12 packet positions.
//
// Not a paper artifact — supporting analysis for the design discussion in
// Sect. IV-A (the paper motivates the feature set qualitatively).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/identifier.hpp"

int main() {
  using namespace iotsentinel;
  std::printf("=== Analysis: gini feature importance over the 27-type bank ===\n\n");
  const auto corpus = bench::paper_corpus();
  core::DeviceIdentifier identifier(bench::paper_identifier_config());
  identifier.train(corpus.type_names, corpus.by_type);

  // Average the 276-dim importances across the 27 binary forests.
  std::vector<double> dims(fp::kFixedDims, 0.0);
  for (std::size_t t = 0; t < identifier.num_types(); ++t) {
    const auto imp = identifier.bank().forest(t).feature_importances();
    for (std::size_t d = 0; d < dims.size(); ++d) dims[d] += imp[d];
  }
  for (double& v : dims) v /= static_cast<double>(identifier.num_types());

  // Aggregate per Table-I feature (summing over the 12 packet slots).
  std::vector<std::pair<double, std::size_t>> per_feature(fp::kNumFeatures);
  for (std::size_t f = 0; f < fp::kNumFeatures; ++f) {
    per_feature[f] = {0.0, f};
    for (std::size_t slot = 0; slot < fp::kPrefixPackets; ++slot) {
      per_feature[f].first += dims[slot * fp::kNumFeatures + f];
    }
  }
  std::sort(per_feature.rbegin(), per_feature.rend());

  std::printf("%-18s %10s\n", "feature", "importance");
  for (const auto& [importance, f] : per_feature) {
    std::printf("%-18s %9.1f%%  ",
                fp::feature_name(static_cast<fp::FeatureIndex>(f)).c_str(),
                100.0 * importance);
    const int bars = static_cast<int>(importance * 120 + 0.5);
    for (int b = 0; b < bars; ++b) std::putchar('#');
    std::putchar('\n');
  }

  // Aggregate per packet position (summing over the 23 features).
  std::printf("\n%-18s %10s\n", "packet position", "importance");
  for (std::size_t slot = 0; slot < fp::kPrefixPackets; ++slot) {
    double sum = 0.0;
    for (std::size_t f = 0; f < fp::kNumFeatures; ++f) {
      sum += dims[slot * fp::kNumFeatures + f];
    }
    std::printf("p%-17zu %9.1f%%  ", slot + 1, 100.0 * sum);
    const int bars = static_cast<int>(sum * 120 + 0.5);
    for (int b = 0; b < bars; ++b) std::putchar('#');
    std::putchar('\n');
  }
  return 0;
}
