// Ablation: stage-2 edit-distance discrimination vs plain argmax over the
// classifier scores (no edit distance at all).
//
// The paper argues the two-stage design buys accuracy on confusable types
// while keeping the expensive edit distance off the common path. Expected
// shape: on the 17 distinct types both variants tie; on the confusable
// families the argmax variant inherits whatever bias the score landscape
// has, while edit distance arbitrates with sequence evidence. Overall
// accuracy should be equal or better with discrimination — at ~1000x the
// per-tie cost (see table4_timing).
#include <cstdio>

#include "bench_util.hpp"
#include "ml/dataset.hpp"

namespace {

using namespace iotsentinel;

struct VariantResult {
  double accuracy = 0.0;
  double family_accuracy = 0.0;  // over the 10 confusable types
};

/// Runs one CV protocol; `use_discrimination` false replaces stage 2 with
/// argmax over the raw classifier scores among the accepted candidates.
VariantResult run_variant(const sim::FingerprintCorpus& corpus,
                          bool use_discrimination) {
  auto config = bench::paper_cv_config();
  config.repetitions = 2;

  // Flatten.
  std::vector<const fp::Fingerprint*> samples;
  std::vector<int> labels;
  for (std::size_t t = 0; t < corpus.num_types(); ++t) {
    for (const auto& f : corpus.by_type[t]) {
      samples.push_back(&f);
      labels.push_back(static_cast<int>(t));
    }
  }

  std::uint64_t correct = 0;
  std::uint64_t total = 0;
  std::uint64_t family_correct = 0;
  std::uint64_t family_total = 0;
  const bool is_family[27] = {false, false, false, false, false, false, false,
                              false, false, false, false, false, false, false,
                              false, false, false, true,  true,  true,  true,
                              true,  true,  true,  true,  true,  true};

  ml::Rng rng(config.seed);
  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    const auto folds = ml::stratified_k_fold(labels, config.folds, rng);
    for (const auto& fold : folds) {
      std::vector<std::vector<fp::Fingerprint>> train(corpus.num_types());
      for (std::size_t idx : fold.train) {
        train[static_cast<std::size_t>(labels[idx])].push_back(*samples[idx]);
      }
      auto id_config = config.identifier;
      id_config.bank.seed = rng.next_u64();
      id_config.seed = rng.next_u64();
      core::DeviceIdentifier identifier(id_config);
      identifier.train(corpus.type_names, train);

      for (std::size_t idx : fold.test) {
        const auto actual = static_cast<std::size_t>(labels[idx]);
        std::size_t predicted = corpus.num_types();  // sentinel: rejected
        if (use_discrimination) {
          const auto result = identifier.identify(*samples[idx]);
          if (result.type_index) predicted = *result.type_index;
        } else {
          const auto fixed = samples[idx]->to_fixed();
          const auto candidates = identifier.classify(fixed);
          double best = -1.0;
          for (std::size_t c : candidates) {
            const double score = identifier.bank().score_one(c, fixed);
            if (score > best) {
              best = score;
              predicted = c;
            }
          }
        }
        ++total;
        if (predicted == actual) ++correct;
        if (is_family[actual]) {
          ++family_total;
          if (predicted == actual) ++family_correct;
        }
      }
    }
  }
  VariantResult out;
  out.accuracy = static_cast<double>(correct) / static_cast<double>(total);
  out.family_accuracy =
      static_cast<double>(family_correct) / static_cast<double>(family_total);
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: edit-distance discrimination vs score argmax ===\n\n");
  const auto corpus = bench::paper_corpus();
  const VariantResult with = run_variant(corpus, true);
  const VariantResult argmax = run_variant(corpus, false);
  std::printf("%-28s %10s %18s\n", "variant", "global", "confusable-10");
  std::printf("%-28s %10.3f %18.3f\n", "two-stage (paper)", with.accuracy,
              with.family_accuracy);
  std::printf("%-28s %10.3f %18.3f\n", "argmax scores (no stage 2)",
              argmax.accuracy, argmax.family_accuracy);
  std::printf("\n(stage 2 costs ~1000x more per tie than a classification —"
              " see table4_timing)\n");
  return 0;
}
