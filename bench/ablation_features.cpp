// Ablation: Table-I feature groups — what happens to identification
// accuracy when a whole group of the 23 features is removed (zeroed in
// both F and F', affecting classifiers AND edit-distance equality).
//
// Groups follow Table I: link/network/transport/application protocol
// flags, IP options, packet content (size + raw data), destination-IP
// counter, port classes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace iotsentinel;

struct FeatureGroup {
  const char* name;
  std::vector<fp::FeatureIndex> features;
};

/// Rebuilds a corpus with the given features zeroed out of every packet.
sim::FingerprintCorpus mask_corpus(const sim::FingerprintCorpus& corpus,
                                   const std::vector<fp::FeatureIndex>& drop) {
  sim::FingerprintCorpus out;
  out.type_names = corpus.type_names;
  for (const auto& runs : corpus.by_type) {
    auto& masked_runs = out.by_type.emplace_back();
    for (const auto& f : runs) {
      fp::Fingerprint masked;
      for (const auto& packet : f.packets()) {
        fp::FeatureVector v = packet;
        for (fp::FeatureIndex idx : drop) {
          v[static_cast<std::size_t>(idx)] = 0;
        }
        masked.append(v);  // re-dedup under the reduced feature view
      }
      masked_runs.push_back(std::move(masked));
    }
  }
  return out;
}

}  // namespace

int main() {
  using FI = fp::FeatureIndex;
  std::printf("=== Ablation: dropping Table-I feature groups ===\n\n");
  const auto corpus = bench::paper_corpus();

  const FeatureGroup groups[] = {
      {"none (full 23 features)", {}},
      {"link layer (ARP, LLC)", {FI::kArp, FI::kLlc}},
      {"network layer (IP, ICMP, ICMPv6, EAPoL)",
       {FI::kIp, FI::kIcmp, FI::kIcmpv6, FI::kEapol}},
      {"transport (TCP, UDP)", {FI::kTcp, FI::kUdp}},
      {"application protocols (8 flags)",
       {FI::kHttp, FI::kHttps, FI::kDhcp, FI::kBootp, FI::kSsdp, FI::kDns,
        FI::kMdns, FI::kNtp}},
      {"IP options (padding, router alert)",
       {FI::kIpOptPadding, FI::kIpOptRouterAlert}},
      {"packet content (size, raw data)", {FI::kSize, FI::kRawData}},
      {"destination-IP counter", {FI::kDstIpCounter}},
      {"port classes (src, dst)", {FI::kSrcPortClass, FI::kDstPortClass}},
  };

  std::printf("%-42s %10s %12s\n", "dropped group", "global", "discr.frac");
  for (const auto& group : groups) {
    const auto masked = mask_corpus(corpus, group.features);
    auto config = bench::paper_cv_config();
    config.repetitions = 2;
    const auto out =
        core::cross_validate(masked.type_names, masked.by_type, config);
    std::printf("%-42s %10.3f %11.0f%%\n", group.name, out.global_accuracy,
                100.0 * out.discrimination_fraction);
  }
  std::printf("\n(expected: packet size carries the most signal; protocol "
              "flags and the\n destination counter degrade gracefully; no "
              "single group is fatal)\n");
  return 0;
}
