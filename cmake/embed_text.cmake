# Wraps a text file into a C++ source via a raw-string-literal template.
# Usage:
#   cmake -DEMBED_INPUT=<file> -DEMBED_TEMPLATE=<in> -DEMBED_OUTPUT=<cpp>
#         -P embed_text.cmake
# The template references the file content as @IOTSENTINEL_EMBED_TEXT@
# inside a R"iotsentinel(...)iotsentinel" literal, so the input must not
# contain the delimiter sequence `)iotsentinel"` (enforced here).
file(READ "${EMBED_INPUT}" IOTSENTINEL_EMBED_TEXT)
string(FIND "${IOTSENTINEL_EMBED_TEXT}" ")iotsentinel\"" _delim_pos)
if(NOT _delim_pos EQUAL -1)
  message(FATAL_ERROR
    "${EMBED_INPUT} contains the raw-string delimiter ')iotsentinel\"'")
endif()
configure_file("${EMBED_TEMPLATE}" "${EMBED_OUTPUT}" @ONLY)
