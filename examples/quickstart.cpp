// Quickstart: the IoT Sentinel pipeline in ~60 lines.
//
//  1. Simulate a device's setup-phase traffic (real packet bytes).
//  2. Extract its fingerprint (23 features per packet, Table I).
//  3. Train the two-stage identifier on a few known device-types.
//  4. Identify the device and derive its enforcement rule.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/identifier.hpp"
#include "core/vulnerability_db.hpp"
#include "fingerprint/extractor.hpp"
#include "sdn/enforcement_rule.hpp"
#include "simnet/corpus.hpp"
#include "simnet/traffic_generator.hpp"

int main() {
  using namespace iotsentinel;

  // 1. A brand-new Edimax camera joins the network; capture its setup
  //    dialogue (in production this is the gateway's live capture or a
  //    tcpdump pcap — see pcap_tool for file ingest).
  const sim::DeviceProfile* camera = sim::find_profile("EdimaxCam");
  sim::TrafficGenerator generator;
  ml::Rng rng(2024);
  const net::MacAddress mac = sim::TrafficGenerator::mint_mac(*camera, 1);
  const auto frames = generator.generate(
      *camera, mac, net::Ipv4Address::of(192, 168, 0, 23), rng);
  std::printf("captured %zu setup packets from %s\n", frames.size(),
              mac.to_string().c_str());

  // 2. Parse the raw frames and build the fingerprint F.
  const auto packets = sim::parse_frames(frames);
  const fp::Fingerprint fingerprint = fp::fingerprint_from_packets(packets);
  std::printf("fingerprint: %zu packet columns, %zu unique -> F' fills %zu/276 dims\n",
              fingerprint.size(), fingerprint.unique_packet_count(),
              23 * std::min<std::size_t>(12, fingerprint.unique_packet_count()));

  // 3. Train the identifier on reference captures of known device-types.
  const auto corpus = sim::generate_corpus_for(
      {"EdimaxCam", "Aria", "HueBridge", "WeMoSwitch", "Withings"}, 15, 7);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);

  // 4. Identify and derive the enforcement rule.
  const core::IdentificationResult result = identifier.identify(fingerprint);
  if (!result.type_index) {
    std::printf("unknown device-type -> Strict isolation\n");
    return 0;
  }
  std::printf("identified as: %s%s\n", result.type_name.c_str(),
              result.used_discrimination ? " (after edit-distance tie-break)"
                                         : "");

  const core::VulnerabilityDb db = core::VulnerabilityDb::with_sample_data();
  sdn::EnforcementRule rule;
  rule.device = mac;
  rule.level = db.assess(result.type_name);
  if (rule.level == sdn::IsolationLevel::kRestricted) {
    // Whitelist the vendor cloud endpoints for Restricted devices.
    for (const auto& step : camera->steps) {
      if (step.remote.value() != 0 && !step.remote.is_private()) {
        rule.permitted_ips.insert(step.remote);
      }
    }
  }
  std::printf("\nenforcement rule (cf. paper Fig. 2):\n%s",
              rule.to_string().c_str());
  if (const auto* vulns = db.query(result.type_name); vulns && !vulns->empty()) {
    std::printf("reason: %s — %s\n", (*vulns)[0].id.c_str(),
                (*vulns)[0].summary.c_str());
  }
  return 0;
}
