// pcap_tool: command-line utility around the fingerprinting pipeline.
//
// Modes:
//   pcap_tool generate <device-type> <out.pcap> [seed]
//       Simulates one setup capture of a catalog device-type and writes a
//       standard pcap file (openable with tcpdump/wireshark).
//   pcap_tool inspect <in.pcap>
//       Prints a per-packet protocol summary and the per-device
//       fingerprints (CSV) extracted from the capture.
//   pcap_tool identify <in.pcap>
//       Trains on the full catalog, then identifies every device whose
//       setup dialogue appears in the capture.
//   pcap_tool list
//       Lists the catalog device-types.
//
// Build & run:  ./build/examples/pcap_tool list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/identifier.hpp"
#include "fingerprint/extractor.hpp"
#include "net/parser.hpp"
#include "net/pcap.hpp"
#include "simnet/corpus.hpp"
#include "simnet/traffic_generator.hpp"

namespace {

using namespace iotsentinel;

int usage() {
  std::fprintf(stderr,
               "usage: pcap_tool generate <device-type> <out.pcap> [seed]\n"
               "       pcap_tool inspect <in.pcap>\n"
               "       pcap_tool identify <in.pcap>\n"
               "       pcap_tool list\n");
  return 2;
}

int cmd_list() {
  std::printf("%-22s %s\n", "identifier", "model");
  for (const auto& p : sim::device_catalog()) {
    std::printf("%-22s %s\n", p.name.c_str(), p.model.c_str());
  }
  return 0;
}

int cmd_generate(const std::string& type, const std::string& out,
                 std::uint64_t seed) {
  const auto* profile = sim::find_profile(type);
  if (!profile) {
    std::fprintf(stderr, "unknown device-type '%s' (try: pcap_tool list)\n",
                 type.c_str());
    return 1;
  }
  sim::TrafficGenerator gen;
  ml::Rng rng(seed);
  const auto pcap = gen.generate_pcap(
      *profile, sim::TrafficGenerator::mint_mac(*profile, 1),
      net::Ipv4Address::of(192, 168, 0, 23), rng);
  if (!net::write_pcap_file(out, pcap)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu packets to %s\n", pcap.records.size(), out.c_str());
  return 0;
}

/// Shared ingest: pcap file -> completed per-device captures.
bool extract_captures(const std::string& path,
                      std::vector<fp::DeviceCapture>* captures,
                      std::vector<net::ParsedPacket>* packets_out = nullptr) {
  const auto parsed = net::read_pcap_file(path);
  if (!parsed.ok) {
    std::fprintf(stderr, "pcap error: %s\n", parsed.error.c_str());
    return false;
  }
  fp::SetupCaptureExtractor extractor;
  for (const auto& rec : parsed.file.records) {
    const auto pkt = net::parse_ethernet_frame(rec.frame, rec.timestamp_us);
    if (packets_out) packets_out->push_back(pkt);
    extractor.observe(pkt);
  }
  extractor.flush_all();
  *captures = extractor.completed();
  return true;
}

int cmd_inspect(const std::string& path) {
  std::vector<fp::DeviceCapture> captures;
  std::vector<net::ParsedPacket> packets;
  if (!extract_captures(path, &captures, &packets)) return 1;

  std::printf("--- %zu packets ---\n", packets.size());
  for (const auto& pkt : packets) {
    std::printf("%s\n", pkt.summary().c_str());
  }
  std::printf("\n--- %zu device fingerprint(s) ---\n", captures.size());
  for (const auto& capture : captures) {
    std::printf("device %s: %zu raw packets, F has %zu columns "
                "(%zu unique)\n",
                capture.mac.to_string().c_str(), capture.raw_packet_count,
                capture.fingerprint.size(),
                capture.fingerprint.unique_packet_count());
    std::printf("%s", capture.fingerprint.to_csv().c_str());
  }
  return 0;
}

int cmd_identify(const std::string& path) {
  std::vector<fp::DeviceCapture> captures;
  if (!extract_captures(path, &captures)) return 1;
  if (captures.empty()) {
    std::printf("no device setup dialogues found in %s\n", path.c_str());
    return 0;
  }

  std::printf("training on the %zu-type catalog (one forest per type)...\n",
              sim::device_catalog().size());
  const auto corpus = sim::generate_corpus(15, 42);
  core::IdentifierConfig config;
  config.bank.accept_threshold = core::kPaperCalibratedAcceptThreshold;
  core::DeviceIdentifier identifier(config);
  identifier.train(corpus.type_names, corpus.by_type);

  for (const auto& capture : captures) {
    const auto result = identifier.identify(capture.fingerprint);
    if (result.type_index) {
      std::printf("%s -> %s%s\n", capture.mac.to_string().c_str(),
                  result.type_name.c_str(),
                  result.used_discrimination ? " (edit-distance tie-break)"
                                             : "");
    } else {
      std::printf("%s -> unknown device-type (rejected by all %zu "
                  "classifiers)\n",
                  capture.mac.to_string().c_str(), identifier.num_types());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  if (mode == "list") return cmd_list();
  if (mode == "generate" && (argc == 4 || argc == 5)) {
    const std::uint64_t seed =
        argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 1;
    return cmd_generate(argv[2], argv[3], seed);
  }
  if (mode == "inspect" && argc == 3) return cmd_inspect(argv[2]);
  if (mode == "identify" && argc == 3) return cmd_identify(argv[2]);
  return usage();
}
