// dataset_export: regenerates the paper's evaluation dataset as files.
//
// The paper's dataset (540 setup captures of 27 device-types, 20 runs
// each) is "available on request"; this tool produces the simulated
// equivalent as standard artifacts:
//   <dir>/pcap/<Type>_<run>.pcap     one setup capture per file
//   <dir>/fingerprints.csv           F' rows: type,run,f1..f276
//   <dir>/labels.csv                 type index <-> name mapping
//
// Usage:  dataset_export <output-dir> [runs-per-type=20] [seed=42]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>

#include "fingerprint/extractor.hpp"
#include "net/parser.hpp"
#include "net/pcap.hpp"
#include "simnet/device_catalog.hpp"
#include "simnet/traffic_generator.hpp"

namespace {

using namespace iotsentinel;

bool make_dir(const std::string& path) {
  return ::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dataset_export <output-dir> [runs-per-type=20] "
                 "[seed=42]\n");
    return 2;
  }
  const std::string dir = argv[1];
  const std::size_t runs =
      argc > 2 ? static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10))
               : 20;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  if (!make_dir(dir) || !make_dir(dir + "/pcap")) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  std::FILE* fingerprints = std::fopen((dir + "/fingerprints.csv").c_str(), "w");
  std::FILE* labels = std::fopen((dir + "/labels.csv").c_str(), "w");
  if (!fingerprints || !labels) {
    std::fprintf(stderr, "cannot open output CSVs\n");
    return 1;
  }
  // F' header: type,run,f1..f276.
  std::fprintf(fingerprints, "type,run");
  for (std::size_t i = 1; i <= fp::kFixedDims; ++i) {
    std::fprintf(fingerprints, ",f%zu", i);
  }
  std::fprintf(fingerprints, "\n");
  std::fprintf(labels, "index,identifier,model\n");

  sim::TrafficGenerator generator;
  ml::Rng master(seed);
  std::uint32_t instance = 1;
  std::size_t pcap_count = 0;
  const auto& catalog = sim::device_catalog();
  for (std::size_t t = 0; t < catalog.size(); ++t) {
    const auto& profile = catalog[t];
    std::fprintf(labels, "%zu,%s,\"%s\"\n", t, profile.name.c_str(),
                 profile.model.c_str());
    for (std::size_t r = 0; r < runs; ++r) {
      ml::Rng run_rng = master.fork();
      const auto mac = sim::TrafficGenerator::mint_mac(profile, instance++);
      const auto ip = net::Ipv4Address::of(
          192, 168, 0, static_cast<std::uint8_t>(2 + run_rng.index(250)));
      const auto pcap = generator.generate_pcap(profile, mac, ip, run_rng);

      const std::string path = dir + "/pcap/" + profile.name + "_" +
                               std::to_string(r) + ".pcap";
      if (!net::write_pcap_file(path, pcap)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      ++pcap_count;

      // Extract F' through the same path a consumer would use.
      std::vector<net::ParsedPacket> packets;
      for (const auto& rec : pcap.records) {
        packets.push_back(net::parse_ethernet_frame(rec.frame,
                                                    rec.timestamp_us));
      }
      const auto fixed =
          fp::fingerprint_from_packets(packets).to_fixed();
      std::fprintf(fingerprints, "%s,%zu", profile.name.c_str(), r);
      for (float v : fixed) std::fprintf(fingerprints, ",%g", v);
      std::fprintf(fingerprints, "\n");
    }
  }
  std::fclose(fingerprints);
  std::fclose(labels);

  std::printf("exported %zu pcap files (%zu types x %zu runs), "
              "fingerprints.csv (276-dim F'), labels.csv -> %s\n",
              pcap_count, catalog.size(), runs, dir.c_str());
  return 0;
}
