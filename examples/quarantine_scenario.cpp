// Quarantine scenario: what the adversary model of Sect. II looks like in
// packets, and what enforcement buys you.
//
// A vulnerable smart plug is compromised after onboarding and attempts
//   (a) lateral movement: TCP scans of devices in the trusted overlay,
//   (b) data exfiltration: bulk upload to an attacker server, and
//   (c) C2 check-in to a non-whitelisted endpoint.
// The same attack traffic is replayed against a filtering gateway and a
// no-filtering baseline; the demo prints the blocked/forwarded tally.
//
// Build & run:  ./build/examples/quarantine_scenario
#include <cstdio>

#include "core/security_gateway.hpp"
#include "net/builder.hpp"
#include "net/protocols.hpp"
#include "simnet/corpus.hpp"
#include "simnet/traffic_generator.hpp"

namespace {

using namespace iotsentinel;

struct AttackStats {
  int attempted = 0;
  int blocked = 0;
};

/// Plays the compromise script against one gateway.
AttackStats run_attack(bool filtering) {
  // IoTSSP trained on a handful of types; TP-Link plug is vulnerable in
  // this scenario's vulnerability database.
  const auto corpus = sim::generate_corpus_for(
      {"TP-LinkPlugHS110", "HueBridge", "Aria", "D-LinkCam", "Withings"}, 15,
      314);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  core::VulnerabilityDb db;
  db.add("TP-LinkPlugHS110", {.id = "CVE-2017-PLUG-01", .cvss = 8.8,
                              .summary = "unauthenticated local API"});
  for (const char* clean : {"HueBridge", "Aria", "D-LinkCam", "Withings"}) {
    db.mark_assessed(clean);
  }
  core::IoTSecurityService service(std::move(identifier), std::move(db));
  service.register_endpoints("TP-LinkPlugHS110",
                             {net::Ipv4Address::of(104, 26, 11, 110)});

  core::GatewayConfig config;
  config.controller.filtering_enabled = filtering;
  core::SecurityGateway gw(service, config);

  // Onboard the (still benign) plug and two victims.
  sim::TrafficGenerator gen;
  auto onboard = [&](const char* type, std::uint32_t instance,
                     std::uint8_t ip_last, std::uint64_t seed) {
    const auto* profile = sim::find_profile(type);
    ml::Rng rng(seed);
    const auto mac = sim::TrafficGenerator::mint_mac(*profile, instance);
    std::uint64_t last = 0;
    for (const auto& tf : gen.generate(
             *profile, mac, net::Ipv4Address::of(192, 168, 0, ip_last), rng)) {
      gw.on_frame(tf.frame, tf.timestamp_us);
      last = tf.timestamp_us;
    }
    gw.advance_time(last + 120'000'000);
    return mac;
  };
  const auto plug = onboard("TP-LinkPlugHS110", 1, 50, 601);
  const auto hue = onboard("HueBridge", 2, 51, 602);
  const auto scale = onboard("Aria", 3, 52, 603);

  const auto plug_ip = net::Ipv4Address::of(192, 168, 0, 50);
  std::uint64_t now = 900'000'000;
  AttackStats stats;
  auto attempt = [&](const net::Bytes& frame) {
    const auto result = gw.on_frame(frame, now);
    ++stats.attempted;
    if (result.action == sdn::FlowAction::kDrop) ++stats.blocked;
    now += 1000;
  };

  // (a) Lateral movement: scan the victims' service ports.
  for (std::uint16_t port : {22, 23, 80, 443, 8080}) {
    attempt(net::build_tcp_syn(plug, hue, plug_ip,
                               net::Ipv4Address::of(192, 168, 0, 51), 51000,
                               port, 1));
    attempt(net::build_tcp_syn(plug, scale, plug_ip,
                               net::Ipv4Address::of(192, 168, 0, 52), 51001,
                               port, 1));
  }
  // (b) Exfiltration: bulk HTTPS upload to an attacker-controlled host.
  for (int i = 0; i < 5; ++i) {
    attempt(net::build_tls_client_hello(
        plug, net::MacAddress::of(2, 0, 0, 0, 0, 1), plug_ip,
        net::Ipv4Address::of(185, 220, 101, 4),
        static_cast<std::uint16_t>(52000 + i), "drop.attacker.example"));
  }
  // (c) C2 check-in on an unusual port.
  for (int i = 0; i < 3; ++i) {
    attempt(net::build_tcp_syn(plug, net::MacAddress::of(2, 0, 0, 0, 0, 1),
                               plug_ip, net::Ipv4Address::of(45, 155, 205, 86),
                               static_cast<std::uint16_t>(53000 + i), 6667,
                               1));
  }
  // Legitimate traffic must keep working: the plug's own cloud service.
  attempt(net::build_tls_client_hello(
      plug, net::MacAddress::of(2, 0, 0, 0, 0, 1), plug_ip,
      net::Ipv4Address::of(104, 26, 11, 110), 54000, "devs.tplinkcloud.com"));

  return stats;
}

}  // namespace

int main() {
  std::printf("=== Quarantine scenario: compromised smart plug ===\n\n");
  const AttackStats with = run_attack(/*filtering=*/true);
  const AttackStats without = run_attack(/*filtering=*/false);

  std::printf("attack/legit packets attempted: %d\n\n", with.attempted);
  std::printf("%-28s %10s %10s\n", "gateway", "blocked", "forwarded");
  std::printf("%-28s %10d %10d\n", "IoT Sentinel (filtering)", with.blocked,
              with.attempted - with.blocked);
  std::printf("%-28s %10d %10d\n", "baseline (no filtering)",
              without.blocked, without.attempted - without.blocked);
  std::printf(
      "\nWith filtering, the restricted plug reaches only its whitelisted\n"
      "vendor cloud: lateral scans into the trusted overlay, exfiltration\n"
      "and C2 check-ins are all dropped. The baseline forwards everything.\n");
  return with.blocked > 0 && without.blocked == 0 ? 0 : 1;
}
