// Full-system onboarding demo (the paper's Fig. 1/Fig. 3 flow).
//
// An IoT Security Service is trained on the complete 27-type catalog with
// a vulnerability database; a Security Gateway then watches three devices
// join the network:
//   * a Philips Hue Bridge   (clean)      -> Trusted
//   * an Edimax camera       (vulnerable) -> Restricted + cloud whitelist
//   * a mystery device       (unknown)    -> Strict
// and enforces each verdict in its SDN data plane. The demo then probes
// the data plane to show the overlays in action.
//
// Build & run:  ./build/examples/onboarding_demo
#include <cstdio>

#include "core/security_gateway.hpp"
#include "net/builder.hpp"
#include "simnet/corpus.hpp"
#include "simnet/traffic_generator.hpp"

namespace {

using namespace iotsentinel;

/// Vendor cloud endpoints per device-type, scraped from the catalog.
std::vector<net::Ipv4Address> cloud_endpoints(const sim::DeviceProfile& p) {
  std::vector<net::Ipv4Address> out;
  for (const auto& step : p.steps) {
    if (step.remote.value() != 0 && !step.remote.is_private()) {
      bool seen = false;
      for (const auto& ip : out) seen |= (ip == step.remote);
      if (!seen) out.push_back(step.remote);
    }
  }
  return out;
}

/// Replays one device's setup capture into the gateway.
net::MacAddress onboard(core::SecurityGateway& gw,
                        const sim::DeviceProfile& profile,
                        std::uint32_t instance, std::uint8_t ip_last,
                        std::uint64_t seed) {
  sim::TrafficGenerator gen;
  ml::Rng rng(seed);
  const auto mac = sim::TrafficGenerator::mint_mac(profile, instance);
  std::uint64_t last_ts = 0;
  for (const auto& tf : gen.generate(
           profile, mac, net::Ipv4Address::of(192, 168, 0, ip_last), rng)) {
    gw.on_frame(tf.frame, tf.timestamp_us);
    last_ts = tf.timestamp_us;
  }
  gw.advance_time(last_ts + 120'000'000);
  return mac;
}

const char* verdict(sdn::FlowAction action) {
  return action == sdn::FlowAction::kForward ? "FORWARD" : "DROP   ";
}

}  // namespace

int main() {
  std::printf("=== IoT Sentinel onboarding demo ===\n\n");

  // --- IoT Security Service: train on the full catalog (minus one type we
  // keep "unknown" to demonstrate discovery). -----------------------------
  std::vector<std::string> known_types;
  for (const auto& p : sim::device_catalog()) {
    if (p.name != "SmarterCoffee" && p.name != "iKettle2") {
      known_types.push_back(p.name);
    }
  }
  std::printf("[IoTSSP] training per-type classifiers for %zu device-types...\n",
              known_types.size());
  const auto corpus = sim::generate_corpus_for(known_types, 15, 99);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  core::IoTSecurityService service(std::move(identifier),
                                   core::VulnerabilityDb::with_sample_data());
  for (const auto& name : known_types) {
    service.register_endpoints(name,
                               cloud_endpoints(*sim::find_profile(name)));
  }

  // --- Security Gateway ---------------------------------------------------
  core::SecurityGateway gateway(service);
  gateway.on_device_identified([](const core::GatewayEvent& e) {
    std::printf("[gateway] %s identified as %-12s -> isolation level %s%s\n",
                e.device.to_string().c_str(),
                e.is_new_type ? "<new type>" : e.device_type.c_str(),
                sdn::to_string(e.level).c_str(),
                e.is_new_type ? " (never seen before)" : "");
  });

  std::printf("\n--- three devices join the network ---\n");
  const auto hue =
      onboard(gateway, *sim::find_profile("HueBridge"), 1, 21, 501);
  const auto cam =
      onboard(gateway, *sim::find_profile("EdimaxCam"), 2, 22, 502);
  const auto mystery =
      onboard(gateway, *sim::find_profile("iKettle2"), 3, 23, 503);

  std::printf("\n--- installed enforcement rules (paper Fig. 2 format) ---\n");
  for (const auto& mac : {hue, cam, mystery}) {
    const sdn::EnforcementRule* rule = gateway.controller().rules().lookup(mac);
    if (rule) std::printf("%s\n", rule->to_string().c_str());
  }

  // --- probe the data plane ------------------------------------------------
  std::printf("--- data-plane verdicts after onboarding ---\n");
  const std::uint64_t t = 500'000'000;
  struct Probe {
    const char* label;
    net::Bytes frame;
  };
  const Probe probes[] = {
      {"HueBridge -> Internet (any)          ",
       net::build_tcp_syn(hue, net::MacAddress::of(2, 0, 0, 0, 0, 1),
                          net::Ipv4Address::of(192, 168, 0, 21),
                          net::Ipv4Address::of(8, 8, 8, 8), 50000, 443, 1)},
      {"EdimaxCam -> its vendor cloud        ",
       net::build_tcp_syn(cam, net::MacAddress::of(2, 0, 0, 0, 0, 1),
                          net::Ipv4Address::of(192, 168, 0, 22),
                          net::Ipv4Address::of(104, 22, 7, 70), 50001, 80, 1)},
      {"EdimaxCam -> elsewhere on the Internet",
       net::build_tcp_syn(cam, net::MacAddress::of(2, 0, 0, 0, 0, 1),
                          net::Ipv4Address::of(192, 168, 0, 22),
                          net::Ipv4Address::of(8, 8, 8, 8), 50002, 443, 1)},
      {"EdimaxCam -> HueBridge (cross overlay)",
       net::build_tcp_syn(cam, hue, net::Ipv4Address::of(192, 168, 0, 22),
                          net::Ipv4Address::of(192, 168, 0, 21), 50003, 80,
                          1)},
      {"mystery device -> Internet            ",
       net::build_tcp_syn(mystery, net::MacAddress::of(2, 0, 0, 0, 0, 1),
                          net::Ipv4Address::of(192, 168, 0, 23),
                          net::Ipv4Address::of(104, 27, 12, 120), 50004, 2081,
                          1)},
      {"mystery device -> EdimaxCam (untrusted overlay)",
       net::build_tcp_syn(mystery, cam, net::Ipv4Address::of(192, 168, 0, 23),
                          net::Ipv4Address::of(192, 168, 0, 22), 50005, 80,
                          1)},
  };
  std::uint64_t now = t;
  for (const auto& probe : probes) {
    const auto result = gateway.on_frame(probe.frame, now);
    std::printf("  %-48s %s (%s)\n", probe.label, verdict(result.action),
                result.reason);
    now += 1000;
  }

  std::printf("\n--- device inventory ---\n");
  gateway.inventory().for_each([](const core::TrackedDevice& device) {
    std::printf("  %s\n", device.summary().c_str());
  });

  std::printf("\ndata plane: %llu fast-path / %llu slow-path packets "
              "(%llu tier-1 cache hits), %zu flow entries, "
              "%llu controller drops\n",
              static_cast<unsigned long long>(
                  gateway.data_plane().fast_path_packets()),
              static_cast<unsigned long long>(
                  gateway.data_plane().slow_path_packets()),
              static_cast<unsigned long long>(
                  gateway.data_plane().table().tier1_hits()),
              gateway.data_plane().table().size(),
              static_cast<unsigned long long>(gateway.controller().drops()));
  return 0;
}
