// Legacy-installation migration demo (paper Sect. VIII-A + III-C.3).
//
// A brownfield network has six devices already connected under one shared
// WPA2 PSK. The gateway fingerprints each from its standby traffic,
// identifies it, and migrates the installation:
//   * clean + WPS re-keying      -> fresh device PSK, trusted overlay
//   * clean, no WPS              -> stays untrusted, user prompted
//   * vulnerable                 -> restricted, untrusted overlay
//   * vulnerable + own radio     -> remove-device notification
//   * unknown type               -> strict + review notification
//
// Build & run:  ./build/examples/legacy_migration_demo
#include <cstdio>

#include "core/legacy_migration.hpp"
#include "fingerprint/extractor.hpp"
#include "simnet/corpus.hpp"
#include "simnet/traffic_generator.hpp"

namespace {

using namespace iotsentinel;

/// Captures a standby-traffic fingerprint for one device instance.
fp::Fingerprint standby_fingerprint(const sim::DeviceProfile& profile,
                                    const net::MacAddress& mac,
                                    std::uint64_t seed) {
  sim::TrafficGenerator gen;
  ml::Rng rng(seed);
  const auto frames = gen.generate_standby(
      profile, mac, net::Ipv4Address::of(192, 168, 0, 77), 3, rng);
  return fp::fingerprint_from_packets(sim::parse_frames(frames));
}

}  // namespace

int main() {
  std::printf("=== Legacy installation migration demo ===\n\n");

  // IoTSSP trained on *standby* fingerprints (operation-phase profiling).
  std::printf("[IoTSSP] training on standby-traffic fingerprints...\n");
  const auto corpus = sim::generate_standby_corpus(15, 777);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  core::IoTSecurityService service(std::move(identifier),
                                   core::VulnerabilityDb::with_sample_data());
  service.register_endpoints("EdimaxCam",
                             {net::Ipv4Address::of(104, 22, 7, 70)});
  service.register_endpoints("D-LinkCam",
                             {net::Ipv4Address::of(104, 25, 10, 100)});

  sdn::Controller controller;
  core::NotificationCenter notifications;
  notifications.on_notify([](const core::UserNotification& n) {
    std::printf("[notify ] %-18s %s: %s\n", n.device.to_string().c_str(),
                core::to_string(n.reason).c_str(), n.message.c_str());
  });
  core::LegacyMigrator migrator(service, controller, notifications);

  // The brownfield inventory. D-LinkCam is vulnerable; Withings lacks WPS
  // re-keying; EdimaxCam is vulnerable AND this instance has an LTE stick
  // attached (uncontrolled channel). SmarterCoffee may be identified as
  // its identical-platform sibling iKettle2 — which, as the paper argues,
  // is harmless for enforcement: identical platforms share vulnerabilities
  // and therefore isolation levels.
  struct Entry {
    const char* type;
    bool wps;
    bool uncontrolled;
  };
  const Entry inventory[] = {
      {"HueBridge", true, false},  {"Aria", true, false},
      {"Withings", false, false},  {"D-LinkCam", true, false},
      {"EdimaxCam", true, true},   {"SmarterCoffee", true, false},
  };

  std::printf("\n--- migrating %zu legacy devices ---\n",
              std::size(inventory));
  std::vector<core::LegacyDevice> devices;
  std::uint32_t instance = 1;
  for (const auto& entry : inventory) {
    const auto* profile = sim::find_profile(entry.type);
    core::LegacyDevice device;
    device.mac = sim::TrafficGenerator::mint_mac(*profile, instance);
    device.supports_wps_rekeying = entry.wps;
    device.has_uncontrolled_channel = entry.uncontrolled;
    device.standby_fingerprint =
        standby_fingerprint(*profile, device.mac, 9000 + instance);
    devices.push_back(std::move(device));
    ++instance;
  }

  const auto outcomes = migrator.migrate_all(devices, 1'000'000);

  std::printf("\n%-18s %-14s %-11s %-10s %-8s %s\n", "device", "identified",
              "level", "overlay", "re-key", "flags");
  for (const auto& o : outcomes) {
    std::string flags;
    if (o.needs_manual_reauth) flags += "manual-reauth ";
    if (o.flagged_for_removal) flags += "REMOVE";
    std::printf("%-18s %-14s %-11s %-10s %-8s %s\n",
                o.mac.to_string().c_str(),
                o.device_type.empty() ? "<unknown>" : o.device_type.c_str(),
                sdn::to_string(o.level).c_str(),
                sdn::to_string(o.overlay).c_str(),
                o.issued_psk.empty() ? "-" : "fresh", flags.c_str());
  }

  std::printf("\n%zu notification(s) pending for the user\n",
              notifications.pending().size());
  return 0;
}
