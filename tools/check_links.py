#!/usr/bin/env python3
"""Markdown link checker for intra-repo links.

Scans the given markdown files (or the repo's default doc set) for
inline links/images and verifies that every relative target exists on
disk. External links (http/https/mailto) are not fetched. Exits
non-zero listing every dead link, so CI fails when docs rot.

Usage: tools/check_links.py [file-or-dir ...]
"""
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGETS = ["README.md", "ROADMAP.md", "docs"]

# Inline links/images: [text](target) — after code has been stripped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~)")
INLINE_CODE_RE = re.compile(r"`[^`]*`")


def markdown_files(targets):
    """Returns (files, errors): a missing or non-markdown explicit target
    is an error — a renamed README must fail the gate, not hollow it out."""
    files, errors = [], []
    for target in targets:
        path = (REPO_ROOT / target).resolve()
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md" and path.exists():
            files.append(path)
        else:
            errors.append(target)
    return files, errors


def links_in(path):
    """Yields (line_number, target) for every inline link outside code."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(INLINE_CODE_RE.sub("", line)):
            yield lineno, match.group(1)


def check_file(path):
    dead = []
    for lineno, target in links_in(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        # Intra-document anchors can't be resolved without rendering
        # heading ids; only file existence is checked.
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            dead.append((lineno, target))
        elif REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
            dead.append((lineno, f"{target} (escapes the repository)"))
    return dead


def main():
    targets = sys.argv[1:] or DEFAULT_TARGETS
    files, errors = markdown_files(targets)
    failures = 0
    checked = 0
    for target in errors:
        print(f"MISSING TARGET {target}: not a markdown file or directory")
        failures += 1
    for md in files:
        checked += 1
        name = md.relative_to(REPO_ROOT) if md.is_relative_to(REPO_ROOT) else md
        for lineno, target in check_file(md):
            print(f"DEAD LINK {name}:{lineno}: {target}")
            failures += 1
    print(f"checked {checked} markdown file(s): "
          f"{failures} problem(s)" if failures else
          f"checked {checked} markdown file(s): all intra-repo links resolve")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
