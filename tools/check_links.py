#!/usr/bin/env python3
"""Markdown link checker for intra-repo links.

Scans the given markdown files (or the repo's default doc set) for
inline links/images and verifies that every relative target exists on
disk. External links (http/https/mailto) are not fetched. Exits
non-zero listing every dead link, so CI fails when docs rot.

For files listed in SYMBOL_CHECK_FILES it additionally verifies that
backticked code symbols (`telemetry::Registry`, `snapshot()`, ...)
actually occur in the source tree, so a rename cannot silently orphan
the normative docs.

Usage: tools/check_links.py [file-or-dir ...]
"""
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGETS = ["README.md", "ROADMAP.md", "docs"]

# Docs whose backticked symbols are grepped against the source tree
# (repo-relative paths).
SYMBOL_CHECK_FILES = {"docs/OBSERVABILITY.md"}
SYMBOL_SEARCH_DIRS = ["src", "tests", "bench"]

# Inline links/images: [text](target) — after code has been stripped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~)")
INLINE_CODE_RE = re.compile(r"`[^`]*`")
BACKTICK_RE = re.compile(r"`([^`]+)`")
# A checkable code symbol: identifier, optionally ::-qualified, with an
# optional trailing call "()" — deliberately excludes metric names
# (contain '.'), expressions (spaces, '='), and glob/placeholder text.
SYMBOL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(?:::[A-Za-z_][A-Za-z0-9_]*)*(?:\(\))?$")
# A repo-relative file reference with a recognized extension.
FILE_REF_RE = re.compile(r"^[\w./-]+\.(?:hpp|cpp|h|c|py|md|json|yml|yaml|roster)$")
# Symbols shorter than this are too ambiguous to grep meaningfully.
MIN_SYMBOL_LEN = 4


def markdown_files(targets):
    """Returns (files, errors): a missing or non-markdown explicit target
    is an error — a renamed README must fail the gate, not hollow it out."""
    files, errors = [], []
    for target in targets:
        path = (REPO_ROOT / target).resolve()
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md" and path.exists():
            files.append(path)
        else:
            errors.append(target)
    return files, errors


def links_in(path):
    """Yields (line_number, target) for every inline link outside code."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(INLINE_CODE_RE.sub("", line)):
            yield lineno, match.group(1)


def check_file(path):
    dead = []
    for lineno, target in links_in(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        # Intra-document anchors can't be resolved without rendering
        # heading ids; only file existence is checked.
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            dead.append((lineno, target))
        elif REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
            dead.append((lineno, f"{target} (escapes the repository)"))
    return dead


def source_corpus():
    """Concatenated text of every source file symbols are grepped in."""
    chunks = []
    for d in SYMBOL_SEARCH_DIRS:
        root = REPO_ROOT / d
        if not root.is_dir():
            continue
        for f in sorted(root.rglob("*")):
            if f.suffix in {".hpp", ".cpp", ".h", ".c"} and f.is_file():
                chunks.append(f.read_text(errors="replace"))
    return "\n".join(chunks)


def symbols_in(path):
    """Yields (line_number, token) for backticked tokens outside fences."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in BACKTICK_RE.finditer(line):
            yield lineno, match.group(1)


def check_symbols(path, corpus):
    """Returns [(lineno, token)] for backticked symbols absent from the
    source tree. Tokens that are not plain identifiers/paths (metric
    names, expressions, placeholders) are skipped, not failed."""
    dead = []
    for lineno, token in symbols_in(path):
        if FILE_REF_RE.match(token):
            if not (REPO_ROOT / token).exists():
                dead.append((lineno, token))
            continue
        if not SYMBOL_RE.match(token):
            continue
        # Grep for the last :: component (the identifier a rename would
        # change); namespace qualifiers rarely appear verbatim in code.
        name = token.rstrip("()").split("::")[-1]
        if len(name) < MIN_SYMBOL_LEN:
            continue
        if name not in corpus:
            dead.append((lineno, token))
    return dead


def main():
    targets = sys.argv[1:] or DEFAULT_TARGETS
    files, errors = markdown_files(targets)
    failures = 0
    checked = 0
    corpus = None
    for target in errors:
        print(f"MISSING TARGET {target}: not a markdown file or directory")
        failures += 1
    for md in files:
        checked += 1
        name = md.relative_to(REPO_ROOT) if md.is_relative_to(REPO_ROOT) else md
        for lineno, target in check_file(md):
            print(f"DEAD LINK {name}:{lineno}: {target}")
            failures += 1
        if str(name) in SYMBOL_CHECK_FILES:
            if corpus is None:
                corpus = source_corpus()
            for lineno, token in check_symbols(md, corpus):
                print(f"UNKNOWN SYMBOL {name}:{lineno}: `{token}` "
                      f"not found in {'/'.join(SYMBOL_SEARCH_DIRS)}")
                failures += 1
    print(f"checked {checked} markdown file(s): "
          f"{failures} problem(s)" if failures else
          f"checked {checked} markdown file(s): all intra-repo links resolve")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
