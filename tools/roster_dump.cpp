// Roster inspection and golden-fixture regeneration.
//
// The catalog golden tests (tests/test_device_catalog.cpp) pin the
// shipped roster against byte-exact fixtures. When a catalog change is
// *intentional*, regenerate them from the embedded roster and commit the
// result:
//
//   roster_dump --write tests/data
//
// Other modes:
//   roster_dump                   print the canonical profile dump
//   roster_dump --check FILE      parse FILE, report typed errors/summary
//
// The traffic CRC recipe here must stay in lockstep with
// CatalogGolden.GeneratedTrafficMatchesLegacyCrcs.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/crc32.hpp"
#include "simnet/device_catalog.hpp"
#include "simnet/roster.hpp"
#include "simnet/traffic_generator.hpp"

using namespace iotsentinel;

namespace {

std::uint32_t trace_crc(const std::vector<sim::TimedFrame>& frames) {
  std::uint32_t crc = 0;
  for (const auto& tf : frames) {
    std::uint8_t ts[8];
    for (int i = 0; i < 8; ++i) {
      ts[i] = static_cast<std::uint8_t>(tf.timestamp_us >> (8 * i));
    }
    crc = net::crc32c(ts, crc);
    crc = net::crc32c(tf.frame, crc);
  }
  return crc;
}

std::string canonical_dump() {
  std::string out;
  for (const auto& p : sim::device_catalog()) {
    out += sim::canonical_profile_text(p);
  }
  return out;
}

/// One fixture line per type: `<name> <setup_count> <setup_crc> <standby_crc>`
/// at the pinned seeds — the exact recipe the golden test replays.
std::string traffic_dump() {
  const auto& catalog = sim::device_catalog();
  std::string out;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& p = catalog[i];
    const auto mac =
        sim::TrafficGenerator::mint_mac(p, static_cast<std::uint32_t>(7 + i));
    const auto ip = net::Ipv4Address::of(
        192, 168, 0, static_cast<std::uint8_t>(2 + i % 250));

    sim::GeneratorConfig config;
    config.trailing_heartbeats = 2;
    sim::TrafficGenerator gen(config);
    ml::Rng rng(0xf00d + i);
    const auto setup = gen.generate(p, mac, ip, rng);

    sim::TrafficGenerator standby_gen;
    ml::Rng standby_rng(0xbeef + i);
    const auto standby = standby_gen.generate_standby(p, mac, ip, 2, standby_rng);

    char line[160];
    std::snprintf(line, sizeof(line), "%s %u %08x %08x\n", p.name.c_str(),
                  static_cast<unsigned>(setup.size()), trace_crc(setup),
                  trace_crc(standby));
    out += line;
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
  return true;
}

int check(const char* path) {
  const sim::RosterResult result = sim::load_roster_file(path);
  if (!result) {
    std::fprintf(stderr, "%s: %s\n", path, sim::describe(result.error()).c_str());
    return 1;
  }
  std::printf("%s: %zu types, %zu devices\n", path,
              static_cast<std::size_t>(result->num_types()),
              static_cast<std::size_t>(result->total_devices()));
  for (const auto& entry : result->entries) {
    std::printf("  %-24s count=%u setup_steps=%zu\n",
                entry.profile.name.c_str(), entry.count,
                entry.profile.steps.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::fputs(canonical_dump().c_str(), stdout);
    return 0;
  }
  if (argc == 3 && std::strcmp(argv[1], "--write") == 0) {
    const std::string dir = argv[2];
    const bool ok =
        write_file(dir + "/catalog_golden.txt", canonical_dump()) &&
        write_file(dir + "/catalog_traffic_golden.txt", traffic_dump());
    return ok ? 0 : 1;
  }
  if (argc == 3 && std::strcmp(argv[1], "--check") == 0) {
    return check(argv[2]);
  }
  std::fprintf(stderr,
               "usage: %s                  print canonical profile dump\n"
               "       %s --write DIR      regenerate golden fixtures in DIR\n"
               "       %s --check FILE     parse a roster file and summarise\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
