#include "distance/damerau_levenshtein.hpp"

namespace iotsentinel::dist {

std::size_t fingerprint_distance(const fp::Fingerprint& a,
                                 const fp::Fingerprint& b) {
  return damerau_levenshtein<fp::FeatureVector>(
      std::span<const fp::FeatureVector>(a.packets()),
      std::span<const fp::FeatureVector>(b.packets()));
}

double normalized_fingerprint_distance(const fp::Fingerprint& a,
                                       const fp::Fingerprint& b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(fingerprint_distance(a, b)) /
         static_cast<double>(longest);
}

double dissimilarity_score(
    const fp::Fingerprint& probe,
    std::span<const fp::Fingerprint* const> references) {
  double score = 0.0;
  for (const auto* ref : references) {
    score += normalized_fingerprint_distance(probe, *ref);
  }
  return score;
}

}  // namespace iotsentinel::dist
