// Damerau-Levenshtein edit distance with insertion, deletion, substitution
// and *immediate* transposition (the optimal-string-alignment variant the
// paper cites for fingerprint discrimination, Sect. IV-B.2).
//
// Fingerprints are treated as words whose characters are whole packet
// columns: two packets are "equal characters" iff all 23 features match.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "fingerprint/fingerprint.hpp"

namespace iotsentinel::dist {

/// Generic optimal-string-alignment distance over two sequences.
/// `Eq(a[i], b[j])` decides character equality.
template <typename T, typename Eq = std::equal_to<T>>
std::size_t damerau_levenshtein(std::span<const T> a, std::span<const T> b,
                                Eq eq = {}) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;

  // Three-row rolling DP: prev2 (i-2), prev (i-1), cur (i).
  std::vector<std::size_t> prev2(m + 1);
  std::vector<std::size_t> prev(m + 1);
  std::vector<std::size_t> cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;

  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t cost = eq(a[i - 1], b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1,        // deletion
                         cur[j - 1] + 1,     // insertion
                         prev[j - 1] + cost  // substitution / match
      });
      if (i > 1 && j > 1 && eq(a[i - 1], b[j - 2]) && eq(a[i - 2], b[j - 1])) {
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);  // transposition
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

/// Edit distance between two variable-length fingerprints F, in packet
/// edits.
std::size_t fingerprint_distance(const fp::Fingerprint& a,
                                 const fp::Fingerprint& b);

/// The paper's normalized distance: absolute distance divided by the
/// length of the longer fingerprint, bounded on [0,1]. Two empty
/// fingerprints have distance 0.
double normalized_fingerprint_distance(const fp::Fingerprint& a,
                                       const fp::Fingerprint& b);

/// Global dissimilarity score s_i of fingerprint `probe` against up to
/// five reference fingerprints of one device-type: the sum of normalized
/// distances, in [0, references.size()] ⊆ [0, 5].
double dissimilarity_score(
    const fp::Fingerprint& probe,
    std::span<const fp::Fingerprint* const> references);

}  // namespace iotsentinel::dist
