// Lock-free-readable telemetry: the gateway's first-class observability
// surface (docs/OBSERVABILITY.md is the normative spec of every exported
// metric).
//
// Design constraints, in order:
//   1. Hot paths must not take locks or contend: every metric is a plain
//      std::atomic updated with relaxed operations. A counter add is one
//      uncontended RMW; publishing a worker-local plain counter is one
//      store.
//   2. Readers never block writers: `snapshot()` and `text_report()` read
//      each atomic exactly once and may run while every pipeline thread
//      is live (the registration mutex only orders metric *creation*
//      against snapshots, never updates).
//   3. Deterministic output: snapshots and reports list metrics in
//      lexicographic name order, so the text report is byte-stable for a
//      given set of values — docs/OBSERVABILITY.md's worked example is
//      asserted against `text_report()` by tests/test_telemetry.cpp.
//
// Consistency model (the honest version of "point-in-time consistent"):
// each scalar is read atomically, counters are monotone (enforced
// structurally: `publish` is a max-store), and a histogram's reported
// count is by construction the sum of its reported buckets (count is
// derived from the same bucket reads). No ordering is guaranteed
// *between* two different metrics within one snapshot; a snapshot taken
// while writers run sees, for every metric, a value between that
// metric's value at snapshot start and at snapshot end.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace iotsentinel::telemetry {

enum class MetricType { kCounter, kGauge, kHistogram };

/// Monotone event count. Single-writer `publish` or multi-writer `add`.
class Counter {
 public:
  /// Adds `delta` (multi-thread safe, relaxed).
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Publishes an externally maintained monotone total (e.g. a worker's
  /// plain per-shard counter copied in on a stride). Monotone by
  /// construction: a stale publish can never move the value backwards.
  void publish(std::uint64_t total) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < total && !value_.compare_exchange_weak(
                              cur, total, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (occupancy, live sizes) or high-water mark.
class Gauge {
 public:
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if above the current value (high-water use).
  void set_max(std::uint64_t v) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket histogram for latencies/lags in microseconds.
///
/// Bucket upper bounds are powers of two: bucket i counts samples with
/// value <= 2^i for i in [0, 26] (1 us .. ~67 s), and the last bucket
/// counts everything larger. The bounds are compiled in — every
/// histogram shares them, so reports are comparable and recording is a
/// shift, two adds, done.
class Histogram {
 public:
  /// 27 power-of-two buckets + 1 overflow bucket.
  static constexpr std::size_t kNumBuckets = 28;

  /// Upper bound of bucket `i` (the last bucket is unbounded).
  [[nodiscard]] static constexpr std::uint64_t bucket_bound(std::size_t i) {
    return std::uint64_t{1} << i;
  }

  /// Index of the bucket a sample lands in.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value);

  /// Records one sample (multi-thread safe, relaxed).
  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Sum of all recorded samples. May lag the bucket counts by in-flight
  /// `record` calls (bucket is bumped first); exact once writers quiesce.
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// One bucket's count.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Total samples = sum over buckets (so a snapshot's count always
  /// equals the sum of the buckets it reports).
  [[nodiscard]] std::uint64_t count() const;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// A consistent read of one registry (see the header comment for the
/// exact guarantees). Name views point into registry-owned storage and
/// stay valid for the registry's lifetime.
struct Snapshot {
  struct Scalar {
    std::string_view name;
    MetricType type = MetricType::kCounter;
    std::uint64_t value = 0;
  };
  struct Hist {
    std::string_view name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};
  };

  /// Counters and gauges, lexicographic name order.
  std::vector<Scalar> scalars;
  /// Histograms, lexicographic name order.
  std::vector<Hist> histograms;
};

/// Named metric registry.
///
/// `counter`/`gauge`/`histogram` create-or-get under a mutex and return a
/// reference that is stable for the registry's lifetime (metrics are
/// never removed) — resolve names once at setup/bind time and keep the
/// reference; the update methods on the returned objects are the
/// lock-free hot path. Names are dotted paths (`controller.packet_ins`,
/// `gateway.shard0.flowtable.tier1_hits`); one name must be used with
/// one metric type only.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Reads every metric once (see consistency model above). Safe while
  /// writers run.
  [[nodiscard]] Snapshot snapshot() const;

  /// Renders `snapshot()` in the documented text format
  /// (docs/OBSERVABILITY.md "Text report"): one `<type> <name> <value>`
  /// line per scalar, histograms as a header line plus one indented
  /// `le=<bound>` line per non-empty bucket. Deterministic for given
  /// values.
  [[nodiscard]] std::string text_report() const;

  /// Renders a caller-provided snapshot (same format as `text_report`).
  [[nodiscard]] static std::string render(const Snapshot& snap);

 private:
  mutable std::mutex mu_;  // guards metric creation only
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace iotsentinel::telemetry
