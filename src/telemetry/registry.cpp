#include "telemetry/registry.hpp"

#include <bit>

namespace iotsentinel::telemetry {

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value <= 1) return 0;
  // Smallest i with value <= 2^i, i.e. ceil(log2(value)).
  const auto i = static_cast<std::size_t>(std::bit_width(value - 1));
  return i < kNumBuckets - 1 ? i : kNumBuckets - 1;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.scalars.reserve(counters_.size() + gauges_.size());
  snap.histograms.reserve(histograms_.size());
  // std::map iteration is already name-sorted; counters and gauges merge
  // into one sorted scalar list.
  auto ci = counters_.begin();
  auto gi = gauges_.begin();
  while (ci != counters_.end() || gi != gauges_.end()) {
    const bool take_counter =
        gi == gauges_.end() ||
        (ci != counters_.end() && ci->first < gi->first);
    if (take_counter) {
      snap.scalars.push_back(
          {ci->first, MetricType::kCounter, ci->second.value()});
      ++ci;
    } else {
      snap.scalars.push_back(
          {gi->first, MetricType::kGauge, gi->second.value()});
      ++gi;
    }
  }
  for (const auto& [name, hist] : histograms_) {
    Snapshot::Hist h;
    h.name = name;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      h.buckets[i] = hist.bucket(i);
      h.count += h.buckets[i];
    }
    h.sum = hist.sum();
    snap.histograms.push_back(h);
  }
  return snap;
}

std::string Registry::render(const Snapshot& snap) {
  std::string out;
  for (const auto& s : snap.scalars) {
    out += s.type == MetricType::kCounter ? "counter " : "gauge ";
    out += s.name;
    out += ' ';
    out += std::to_string(s.value);
    out += '\n';
  }
  for (const auto& h : snap.histograms) {
    out += "histogram ";
    out += h.name;
    out += " count=";
    out += std::to_string(h.count);
    out += " sum=";
    out += std::to_string(h.sum);
    out += '\n';
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      out += "  le=";
      out += i + 1 < Histogram::kNumBuckets
                 ? std::to_string(Histogram::bucket_bound(i))
                 : "inf";
      out += ' ';
      out += std::to_string(h.buckets[i]);
      out += '\n';
    }
  }
  return out;
}

std::string Registry::text_report() const { return render(snapshot()); }

}  // namespace iotsentinel::telemetry
