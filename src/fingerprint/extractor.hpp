// Streaming fingerprint extraction from a mixed capture.
//
// The Security Gateway observes one interleaved packet stream for the whole
// network. This module demultiplexes it by source MAC, detects devices
// newly introduced to the network ("a new device identified by a newly
// observed MAC address"), records their setup-phase packets, and closes a
// fingerprint when the packet rate decays — the paper's signal that the
// setup procedure has ended.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fingerprint/fingerprint.hpp"
#include "net/mac_address.hpp"
#include "net/packet.hpp"

namespace iotsentinel::fp {

/// Tuning knobs for setup-phase end detection.
struct ExtractorConfig {
  /// Hard cap on raw packets recorded per device (n in the paper; counted
  /// before Eq. (1)'s duplicate removal).
  std::size_t max_packets = 256;
  /// Setup is considered over once the device has been silent for this
  /// long AND has already sent at least `min_packets`.
  std::uint64_t idle_timeout_us = 10'000'000;  // 10 s
  /// A gap this many times the running mean inter-arrival also ends the
  /// setup phase (the "decrease in the rate of packets sent").
  double rate_drop_factor = 8.0;
  /// ...but only when the gap also exceeds this absolute floor: setup
  /// dialogues legitimately pause for a few hundred ms between steps
  /// (app-driven reconnects, DHCP timers), which must not end the capture.
  std::uint64_t min_silence_us = 2'000'000;  // 2 s
  /// Do not end the capture before this many raw packets were recorded.
  std::size_t min_packets = 4;
  /// MACs to ignore entirely (the gateway's own interfaces, known
  /// infrastructure).
  std::unordered_set<net::MacAddress> ignored_macs{};
  /// Hard cap on concurrently-active captures. A MAC-spray flood mints a
  /// fresh source address per frame; without a bound every one of them
  /// pins an ActiveDevice until its idle timeout. Admissions beyond the
  /// cap are rejected (counted in `rejected_admissions`) until idle
  /// expiry reclaims slots. 0 disables the cap. The default is far above
  /// any legitimate concurrent-onboarding population (a 100k-device fleet
  /// peaks near a thousand concurrent setups).
  std::size_t max_active_devices = 65536;
};

/// A completed setup capture for one device.
struct DeviceCapture {
  net::MacAddress mac;
  /// First / last packet timestamps of the setup phase.
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  /// Raw packet count before duplicate removal.
  std::size_t raw_packet_count = 0;
  Fingerprint fingerprint;
};

/// Incremental extractor; feed packets in timestamp order.
class SetupCaptureExtractor {
 public:
  using CompletionCallback = std::function<void(const DeviceCapture&)>;

  explicit SetupCaptureExtractor(ExtractorConfig config = {});

  /// Invoked whenever a device's setup phase completes.
  void on_capture_complete(CompletionCallback cb) { callback_ = std::move(cb); }

  /// Processes one packet. Packets from already-fingerprinted devices and
  /// ignored MACs are skipped. May fire the completion callback for *other*
  /// devices whose idle timeout elapsed by this packet's timestamp.
  ///
  /// Robust against hostile capture conditions: a packet whose timestamp
  /// precedes the device's newest one (network reordering, a replayed
  /// duplicate) is recorded with a zero inter-arrival gap and never rewinds
  /// the device's idle deadline or capture bounds, so end-of-setup
  /// detection cannot be stalled or retriggered by out-of-order delivery.
  void observe(const net::ParsedPacket& pkt);

  /// Advances virtual time without a packet, flushing devices whose idle
  /// timeout has expired.
  void advance_time(std::uint64_t now_us);

  /// Force-completes every in-progress capture (end of the monitoring run).
  void flush_all();

  /// Drops all state for a departed device: an in-progress capture is
  /// discarded (no completion fires) and the already-fingerprinted marker
  /// is cleared, so the device is fingerprinted afresh if it rejoins.
  /// Returns true when the device was known in either role.
  bool forget(const net::MacAddress& mac);

  /// Devices currently in their setup phase.
  [[nodiscard]] std::size_t active_devices() const { return active_.size(); }

  /// Highest concurrently-active capture count ever observed — the
  /// extractor-state-bloat metric of the adversarial scenario suite.
  [[nodiscard]] std::size_t peak_active_devices() const { return peak_active_; }

  /// Captures dropped at idle expiry because they never reached
  /// `min_packets` (one-frame phantom sources, e.g. a spoofed-MAC flood).
  /// No completion callback fires for these.
  [[nodiscard]] std::uint64_t discarded_captures() const { return discarded_; }

  /// New-device admissions rejected by `max_active_devices`.
  [[nodiscard]] std::uint64_t rejected_admissions() const { return rejected_; }

  /// Completed captures, in completion order (also delivered via callback).
  [[nodiscard]] const std::vector<DeviceCapture>& completed() const {
    return completed_;
  }

 private:
  struct ActiveDevice {
    DeviceCapture capture;
    PacketFeatureExtractor features;
    std::uint64_t last_packet_us = 0;
    double mean_gap_us = 0.0;
    std::size_t gap_count = 0;
  };

  /// Sentinel: no active device can currently expire.
  static constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};

  void complete(const net::MacAddress& mac);
  void check_timeouts(std::uint64_t now_us);
  /// Idle-expiry instant of a timeout-eligible device (strictly after its
  /// last packet, even with a zero idle timeout).
  [[nodiscard]] std::uint64_t deadline_of(const ActiveDevice& dev) const {
    return dev.last_packet_us + std::max<std::uint64_t>(config_.idle_timeout_us, 1);
  }

  ExtractorConfig config_;
  CompletionCallback callback_;
  std::unordered_map<net::MacAddress, ActiveDevice> active_;
  std::unordered_set<net::MacAddress> fingerprinted_;
  std::vector<DeviceCapture> completed_;
  /// Conservative lower bound on the earliest idle-expiry among active
  /// devices: check_timeouts early-outs on every packet before this
  /// instant instead of scanning all active devices. `last_packet_us`
  /// never rewinds (reordered timestamps saturate to a zero gap), so
  /// later packets only push a device's real deadline further out and the
  /// bound can be stale-early (extra scan) but never stale-late (missed
  /// expiry).
  std::uint64_t earliest_deadline_us_ = kNoDeadline;
  /// Reused by check_timeouts so the expiry sweep allocates nothing after
  /// warm-up.
  std::vector<net::MacAddress> expired_scratch_;
  std::size_t peak_active_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t rejected_ = 0;
};

/// One-shot extraction: builds a single device's fingerprint from an
/// already-demultiplexed packet sequence (e.g. a per-device pcap).
Fingerprint fingerprint_from_packets(
    const std::vector<net::ParsedPacket>& packets,
    std::size_t max_packets = 256);

}  // namespace iotsentinel::fp
