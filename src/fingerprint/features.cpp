#include "fingerprint/features.hpp"

#include "net/protocols.hpp"

namespace iotsentinel::fp {

std::string feature_name(FeatureIndex i) {
  switch (i) {
    case FeatureIndex::kArp: return "ARP";
    case FeatureIndex::kLlc: return "LLC";
    case FeatureIndex::kIp: return "IP";
    case FeatureIndex::kIcmp: return "ICMP";
    case FeatureIndex::kIcmpv6: return "ICMPv6";
    case FeatureIndex::kEapol: return "EAPoL";
    case FeatureIndex::kTcp: return "TCP";
    case FeatureIndex::kUdp: return "UDP";
    case FeatureIndex::kHttp: return "HTTP";
    case FeatureIndex::kHttps: return "HTTPS";
    case FeatureIndex::kDhcp: return "DHCP";
    case FeatureIndex::kBootp: return "BOOTP";
    case FeatureIndex::kSsdp: return "SSDP";
    case FeatureIndex::kDns: return "DNS";
    case FeatureIndex::kMdns: return "MDNS";
    case FeatureIndex::kNtp: return "NTP";
    case FeatureIndex::kIpOptPadding: return "IpOptPadding";
    case FeatureIndex::kIpOptRouterAlert: return "IpOptRouterAlert";
    case FeatureIndex::kSize: return "Size";
    case FeatureIndex::kRawData: return "RawData";
    case FeatureIndex::kDstIpCounter: return "DstIpCounter";
    case FeatureIndex::kSrcPortClass: return "SrcPortClass";
    case FeatureIndex::kDstPortClass: return "DstPortClass";
  }
  return "?";
}

std::uint32_t port_class(std::uint16_t port) {
  if (port <= net::portclass::kWellKnownMax) return 1;
  if (port <= net::portclass::kRegisteredMax) return 2;
  return 3;
}

std::uint32_t port_class_of(const std::optional<std::uint16_t>& port) {
  if (!port) return 0;
  return port_class(*port);
}

FeatureVector PacketFeatureExtractor::extract(const net::ParsedPacket& pkt) {
  FeatureVector v{};
  auto set = [&v](FeatureIndex i, std::uint32_t value) {
    v[static_cast<std::size_t>(i)] = value;
  };

  set(FeatureIndex::kArp, pkt.is_arp ? 1 : 0);
  set(FeatureIndex::kLlc, pkt.is_llc ? 1 : 0);
  set(FeatureIndex::kIp, pkt.is_ip() ? 1 : 0);
  set(FeatureIndex::kIcmp, pkt.is_icmp ? 1 : 0);
  set(FeatureIndex::kIcmpv6, pkt.is_icmpv6 ? 1 : 0);
  set(FeatureIndex::kEapol, pkt.is_eapol ? 1 : 0);
  set(FeatureIndex::kTcp, pkt.is_tcp ? 1 : 0);
  set(FeatureIndex::kUdp, pkt.is_udp ? 1 : 0);
  set(FeatureIndex::kHttp, pkt.app.http ? 1 : 0);
  set(FeatureIndex::kHttps, pkt.app.https ? 1 : 0);
  set(FeatureIndex::kDhcp, pkt.app.dhcp ? 1 : 0);
  set(FeatureIndex::kBootp, pkt.app.bootp ? 1 : 0);
  set(FeatureIndex::kSsdp, pkt.app.ssdp ? 1 : 0);
  set(FeatureIndex::kDns, pkt.app.dns ? 1 : 0);
  set(FeatureIndex::kMdns, pkt.app.mdns ? 1 : 0);
  set(FeatureIndex::kNtp, pkt.app.ntp ? 1 : 0);
  set(FeatureIndex::kIpOptPadding, pkt.ip_opt_padding ? 1 : 0);
  set(FeatureIndex::kIpOptRouterAlert, pkt.ip_opt_router_alert ? 1 : 0);
  set(FeatureIndex::kSize, pkt.wire_size);
  set(FeatureIndex::kRawData, pkt.has_payload ? 1 : 0);

  if (pkt.dst_ip) {
    if (!has_last_dst_ || !(*pkt.dst_ip == last_dst_)) {
      auto [it, inserted] = dst_counter_.try_emplace(
          *pkt.dst_ip, static_cast<std::uint32_t>(dst_counter_.size() + 1));
      last_dst_ = it->first;
      last_dst_counter_ = it->second;
      has_last_dst_ = true;
    }
    set(FeatureIndex::kDstIpCounter, last_dst_counter_);
  } else {
    set(FeatureIndex::kDstIpCounter, 0);
  }

  set(FeatureIndex::kSrcPortClass, port_class_of(pkt.src_port));
  set(FeatureIndex::kDstPortClass, port_class_of(pkt.dst_port));
  return v;
}

}  // namespace iotsentinel::fp
