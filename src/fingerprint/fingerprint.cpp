#include "fingerprint/fingerprint.hpp"

#include <charconv>
#include <vector>

namespace iotsentinel::fp {

void Fingerprint::append(const FeatureVector& packet) {
  if (!packets_.empty() && packets_.back() == packet) return;
  packets_.push_back(packet);
}

FixedFingerprint Fingerprint::to_fixed(std::size_t prefix) const {
  FixedFingerprint out(prefix * kNumFeatures, 0.0f);
  std::vector<const FeatureVector*> seen;
  std::size_t filled = 0;
  for (const auto& p : packets_) {
    if (filled == prefix) break;
    bool duplicate = false;
    for (const auto* s : seen) {
      if (*s == p) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen.push_back(&p);
    for (std::size_t f = 0; f < kNumFeatures; ++f) {
      out[filled * kNumFeatures + f] = static_cast<float>(p[f]);
    }
    ++filled;
  }
  return out;
}

std::size_t Fingerprint::unique_packet_count() const {
  std::vector<const FeatureVector*> seen;
  for (const auto& p : packets_) {
    bool duplicate = false;
    for (const auto* s : seen) {
      if (*s == p) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) seen.push_back(&p);
  }
  return seen.size();
}

std::string Fingerprint::to_csv() const {
  std::string out;
  for (const auto& p : packets_) {
    for (std::size_t f = 0; f < kNumFeatures; ++f) {
      if (f != 0) out.push_back(',');
      out += std::to_string(p[f]);
    }
    out.push_back('\n');
  }
  return out;
}

Fingerprint Fingerprint::from_csv(const std::string& csv) {
  Fingerprint fp;
  std::size_t line_start = 0;
  while (line_start < csv.size()) {
    std::size_t line_end = csv.find('\n', line_start);
    if (line_end == std::string::npos) line_end = csv.size();
    FeatureVector v{};
    const char* p = csv.data() + line_start;
    const char* end = csv.data() + line_end;
    bool ok = line_end > line_start;
    for (std::size_t f = 0; f < kNumFeatures && ok; ++f) {
      std::uint32_t value = 0;
      auto [next, ec] = std::from_chars(p, end, value);
      if (ec != std::errc{}) {
        ok = false;
        break;
      }
      v[f] = value;
      p = next;
      if (f + 1 < kNumFeatures) {
        if (p == end || *p != ',') {
          ok = false;
          break;
        }
        ++p;
      }
    }
    if (ok && p == end) {
      // Bypass consecutive-dup removal: CSV is an exact serialization.
      fp.packets_.push_back(v);
    } else if (line_end > line_start) {
      return Fingerprint{};  // malformed row: reject the whole blob
    }
    line_start = line_end + 1;
  }
  return fp;
}

}  // namespace iotsentinel::fp
