#include "fingerprint/extractor.hpp"

#include <algorithm>

namespace iotsentinel::fp {

SetupCaptureExtractor::SetupCaptureExtractor(ExtractorConfig config)
    : config_(std::move(config)) {}

void SetupCaptureExtractor::observe(const net::ParsedPacket& pkt) {
  check_timeouts(pkt.timestamp_us);

  const net::MacAddress& mac = pkt.src_mac;
  if (mac.is_zero() || mac.is_multicast()) return;  // not a device source
  if (config_.ignored_macs.contains(mac)) return;
  if (fingerprinted_.contains(mac)) return;

  auto it = active_.find(mac);
  if (it == active_.end()) {
    if (config_.max_active_devices != 0 &&
        active_.size() >= config_.max_active_devices) {
      ++rejected_;  // MAC-spray flood: the admission cap bounds state
      return;
    }
    ActiveDevice dev;
    dev.capture.mac = mac;
    dev.capture.start_us = pkt.timestamp_us;
    dev.last_packet_us = pkt.timestamp_us;
    it = active_.emplace(mac, std::move(dev)).first;
    peak_active_ = std::max(peak_active_, active_.size());
  } else {
    ActiveDevice& dev = it->second;
    // A reordered or replayed packet may carry a timestamp before the
    // device's newest one; saturate the gap at zero so the subtraction
    // cannot underflow into a huge bogus gap (which would both spuriously
    // end the capture here and poison the running mean).
    const std::uint64_t gap = pkt.timestamp_us > dev.last_packet_us
                                  ? pkt.timestamp_us - dev.last_packet_us
                                  : 0;
    // Rate-decrease detection: a gap far above the running mean
    // inter-arrival closes the setup phase; the current packet then belongs
    // to normal operation and is not recorded.
    if (dev.gap_count >= config_.min_packets &&
        dev.capture.raw_packet_count >= config_.min_packets &&
        gap >= config_.min_silence_us &&
        static_cast<double>(gap) >
            config_.rate_drop_factor * std::max(dev.mean_gap_us, 1.0)) {
      complete(mac);
      return;
    }
    dev.mean_gap_us =
        (dev.mean_gap_us * static_cast<double>(dev.gap_count) +
         static_cast<double>(gap)) /
        static_cast<double>(dev.gap_count + 1);
    ++dev.gap_count;
    // max(): the idle deadline and capture bounds must never rewind, or a
    // late out-of-order packet could push an already-elapsed deadline back
    // into the future and stall check_timeouts' early-out bound.
    dev.last_packet_us = std::max(dev.last_packet_us, pkt.timestamp_us);
  }

  ActiveDevice& dev = it->second;
  dev.capture.start_us = std::min(dev.capture.start_us, pkt.timestamp_us);
  dev.capture.end_us = std::max(dev.capture.end_us, pkt.timestamp_us);
  ++dev.capture.raw_packet_count;
  // Fold the device's deadline into the early-out bound (min() keeps the
  // bound conservative). Every active device is tracked — devices below
  // min_packets expire too, they are just discarded instead of completed.
  earliest_deadline_us_ = std::min(earliest_deadline_us_, deadline_of(dev));
  dev.capture.fingerprint.append(dev.features.extract(pkt));
  if (dev.capture.raw_packet_count >= config_.max_packets) complete(mac);
}

void SetupCaptureExtractor::advance_time(std::uint64_t now_us) {
  check_timeouts(now_us);
}

void SetupCaptureExtractor::check_timeouts(std::uint64_t now_us) {
  // Hot path: nothing can have expired yet, skip the scan entirely.
  if (now_us < earliest_deadline_us_) return;

  // Borrow the scratch buffer for this sweep (moved out so a completion
  // callback that re-enters the extractor cannot invalidate our
  // iteration); its capacity is handed back afterwards.
  std::vector<net::MacAddress> expired = std::move(expired_scratch_);
  expired.clear();
  std::uint64_t next_deadline = kNoDeadline;
  for (const auto& [mac, dev] : active_) {
    const std::uint64_t deadline = deadline_of(dev);
    if (now_us >= deadline) {
      expired.push_back(mac);
    } else {
      next_deadline = std::min(next_deadline, deadline);
    }
  }
  earliest_deadline_us_ = next_deadline;
  for (const auto& mac : expired) {
    // A source that went idle without ever reaching min_packets is not a
    // fingerprintable setup dialogue — it is a stray (or a spoofed-MAC
    // flood frame). Discard it silently instead of completing, so phantom
    // sources cannot pin extractor state or spam the classifier.
    auto it = active_.find(mac);
    if (it == active_.end()) continue;
    if (it->second.capture.raw_packet_count < config_.min_packets) {
      active_.erase(it);
      ++discarded_;
    } else {
      complete(mac);
    }
  }
  expired_scratch_ = std::move(expired);
}

void SetupCaptureExtractor::flush_all() {
  std::vector<net::MacAddress> macs;
  macs.reserve(active_.size());
  for (const auto& [mac, dev] : active_) macs.push_back(mac);
  // Reset the bound *before* completing: a completion callback may
  // re-enter observe() with a new device, whose deadline must survive.
  earliest_deadline_us_ = kNoDeadline;
  for (const auto& mac : macs) complete(mac);
}

bool SetupCaptureExtractor::forget(const net::MacAddress& mac) {
  const bool was_active = active_.erase(mac) > 0;
  const bool was_fingerprinted = fingerprinted_.erase(mac) > 0;
  // earliest_deadline_us_ may now be stale-early (the removed device could
  // have owned the bound); that only costs an extra scan, never a missed
  // expiry — see the member comment.
  return was_active || was_fingerprinted;
}

void SetupCaptureExtractor::complete(const net::MacAddress& mac) {
  auto it = active_.find(mac);
  if (it == active_.end()) return;
  DeviceCapture capture = std::move(it->second.capture);
  active_.erase(it);
  fingerprinted_.insert(mac);
  completed_.push_back(capture);
  if (callback_) callback_(completed_.back());
}

Fingerprint fingerprint_from_packets(
    const std::vector<net::ParsedPacket>& packets, std::size_t max_packets) {
  Fingerprint fp;
  PacketFeatureExtractor features;
  for (const auto& pkt : packets) {
    if (fp.size() >= max_packets) break;
    fp.append(features.extract(pkt));
  }
  return fp;
}

}  // namespace iotsentinel::fp
