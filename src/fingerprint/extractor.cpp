#include "fingerprint/extractor.hpp"

#include <algorithm>

namespace iotsentinel::fp {

SetupCaptureExtractor::SetupCaptureExtractor(ExtractorConfig config)
    : config_(std::move(config)) {}

void SetupCaptureExtractor::observe(const net::ParsedPacket& pkt) {
  check_timeouts(pkt.timestamp_us);

  const net::MacAddress& mac = pkt.src_mac;
  if (mac.is_zero() || mac.is_multicast()) return;  // not a device source
  if (config_.ignored_macs.contains(mac)) return;
  if (fingerprinted_.contains(mac)) return;

  auto it = active_.find(mac);
  if (it == active_.end()) {
    ActiveDevice dev;
    dev.capture.mac = mac;
    dev.capture.start_us = pkt.timestamp_us;
    dev.last_packet_us = pkt.timestamp_us;
    it = active_.emplace(mac, std::move(dev)).first;
  } else {
    ActiveDevice& dev = it->second;
    const std::uint64_t gap = pkt.timestamp_us - dev.last_packet_us;
    // Rate-decrease detection: a gap far above the running mean
    // inter-arrival closes the setup phase; the current packet then belongs
    // to normal operation and is not recorded.
    if (dev.gap_count >= config_.min_packets &&
        dev.capture.raw_packet_count >= config_.min_packets &&
        gap >= config_.min_silence_us &&
        static_cast<double>(gap) >
            config_.rate_drop_factor * std::max(dev.mean_gap_us, 1.0)) {
      complete(mac);
      return;
    }
    dev.mean_gap_us =
        (dev.mean_gap_us * static_cast<double>(dev.gap_count) +
         static_cast<double>(gap)) /
        static_cast<double>(dev.gap_count + 1);
    ++dev.gap_count;
    dev.last_packet_us = pkt.timestamp_us;
  }

  ActiveDevice& dev = it->second;
  dev.capture.end_us = pkt.timestamp_us;
  ++dev.capture.raw_packet_count;
  // The device just became (or stays) timeout-eligible; fold its deadline
  // into the early-out bound. min() keeps the bound conservative.
  if (dev.capture.raw_packet_count >= config_.min_packets) {
    earliest_deadline_us_ = std::min(earliest_deadline_us_, deadline_of(dev));
  }
  dev.capture.fingerprint.append(dev.features.extract(pkt));
  if (dev.capture.raw_packet_count >= config_.max_packets) complete(mac);
}

void SetupCaptureExtractor::advance_time(std::uint64_t now_us) {
  check_timeouts(now_us);
}

void SetupCaptureExtractor::check_timeouts(std::uint64_t now_us) {
  // Hot path: nothing can have expired yet, skip the scan entirely.
  if (now_us < earliest_deadline_us_) return;

  // Borrow the scratch buffer for this sweep (moved out so a completion
  // callback that re-enters the extractor cannot invalidate our
  // iteration); its capacity is handed back afterwards.
  std::vector<net::MacAddress> expired = std::move(expired_scratch_);
  expired.clear();
  std::uint64_t next_deadline = kNoDeadline;
  for (const auto& [mac, dev] : active_) {
    if (dev.capture.raw_packet_count < config_.min_packets) continue;
    const std::uint64_t deadline = deadline_of(dev);
    if (now_us >= deadline) {
      expired.push_back(mac);
    } else {
      next_deadline = std::min(next_deadline, deadline);
    }
  }
  earliest_deadline_us_ = next_deadline;
  for (const auto& mac : expired) complete(mac);
  expired_scratch_ = std::move(expired);
}

void SetupCaptureExtractor::flush_all() {
  std::vector<net::MacAddress> macs;
  macs.reserve(active_.size());
  for (const auto& [mac, dev] : active_) macs.push_back(mac);
  // Reset the bound *before* completing: a completion callback may
  // re-enter observe() with a new device, whose deadline must survive.
  earliest_deadline_us_ = kNoDeadline;
  for (const auto& mac : macs) complete(mac);
}

bool SetupCaptureExtractor::forget(const net::MacAddress& mac) {
  const bool was_active = active_.erase(mac) > 0;
  const bool was_fingerprinted = fingerprinted_.erase(mac) > 0;
  // earliest_deadline_us_ may now be stale-early (the removed device could
  // have owned the bound); that only costs an extra scan, never a missed
  // expiry — see the member comment.
  return was_active || was_fingerprinted;
}

void SetupCaptureExtractor::complete(const net::MacAddress& mac) {
  auto it = active_.find(mac);
  if (it == active_.end()) return;
  DeviceCapture capture = std::move(it->second.capture);
  active_.erase(it);
  fingerprinted_.insert(mac);
  completed_.push_back(capture);
  if (callback_) callback_(completed_.back());
}

Fingerprint fingerprint_from_packets(
    const std::vector<net::ParsedPacket>& packets, std::size_t max_packets) {
  Fingerprint fp;
  PacketFeatureExtractor features;
  for (const auto& pkt : packets) {
    if (fp.size() >= max_packets) break;
    fp.append(features.extract(pkt));
  }
  return fp;
}

}  // namespace iotsentinel::fp
