#include "fingerprint/extractor.hpp"

#include <algorithm>

namespace iotsentinel::fp {

SetupCaptureExtractor::SetupCaptureExtractor(ExtractorConfig config)
    : config_(std::move(config)) {}

void SetupCaptureExtractor::observe(const net::ParsedPacket& pkt) {
  check_timeouts(pkt.timestamp_us);

  const net::MacAddress& mac = pkt.src_mac;
  if (mac.is_zero() || mac.is_multicast()) return;  // not a device source
  if (config_.ignored_macs.contains(mac)) return;
  if (fingerprinted_.contains(mac)) return;

  auto it = active_.find(mac);
  if (it == active_.end()) {
    ActiveDevice dev;
    dev.capture.mac = mac;
    dev.capture.start_us = pkt.timestamp_us;
    dev.last_packet_us = pkt.timestamp_us;
    it = active_.emplace(mac, std::move(dev)).first;
  } else {
    ActiveDevice& dev = it->second;
    const std::uint64_t gap = pkt.timestamp_us - dev.last_packet_us;
    // Rate-decrease detection: a gap far above the running mean
    // inter-arrival closes the setup phase; the current packet then belongs
    // to normal operation and is not recorded.
    if (dev.gap_count >= config_.min_packets &&
        dev.capture.raw_packet_count >= config_.min_packets &&
        gap >= config_.min_silence_us &&
        static_cast<double>(gap) >
            config_.rate_drop_factor * std::max(dev.mean_gap_us, 1.0)) {
      complete(mac);
      return;
    }
    dev.mean_gap_us =
        (dev.mean_gap_us * static_cast<double>(dev.gap_count) +
         static_cast<double>(gap)) /
        static_cast<double>(dev.gap_count + 1);
    ++dev.gap_count;
    dev.last_packet_us = pkt.timestamp_us;
  }

  ActiveDevice& dev = it->second;
  dev.capture.end_us = pkt.timestamp_us;
  ++dev.capture.raw_packet_count;
  dev.capture.fingerprint.append(dev.features.extract(pkt));
  if (dev.capture.raw_packet_count >= config_.max_packets) complete(mac);
}

void SetupCaptureExtractor::advance_time(std::uint64_t now_us) {
  check_timeouts(now_us);
}

void SetupCaptureExtractor::check_timeouts(std::uint64_t now_us) {
  std::vector<net::MacAddress> expired;
  for (const auto& [mac, dev] : active_) {
    if (dev.capture.raw_packet_count >= config_.min_packets &&
        now_us > dev.last_packet_us &&
        now_us - dev.last_packet_us >= config_.idle_timeout_us) {
      expired.push_back(mac);
    }
  }
  for (const auto& mac : expired) complete(mac);
}

void SetupCaptureExtractor::flush_all() {
  std::vector<net::MacAddress> macs;
  macs.reserve(active_.size());
  for (const auto& [mac, dev] : active_) macs.push_back(mac);
  for (const auto& mac : macs) complete(mac);
}

void SetupCaptureExtractor::complete(const net::MacAddress& mac) {
  auto it = active_.find(mac);
  if (it == active_.end()) return;
  DeviceCapture capture = std::move(it->second.capture);
  active_.erase(it);
  fingerprinted_.insert(mac);
  completed_.push_back(capture);
  if (callback_) callback_(completed_.back());
}

Fingerprint fingerprint_from_packets(
    const std::vector<net::ParsedPacket>& packets, std::size_t max_packets) {
  Fingerprint fp;
  PacketFeatureExtractor features;
  for (const auto& pkt : packets) {
    if (fp.size() >= max_packets) break;
    fp.append(features.extract(pkt));
  }
  return fp;
}

}  // namespace iotsentinel::fp
