// The 23 per-packet features of Table I and their extraction.
//
// Feature order is part of the fingerprint wire format (F' concatenates
// packets feature-major), so it is fixed here once and mirrored by the
// FeatureIndex enum. All features are integers; binary features use {0,1}.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/ip_address.hpp"
#include "net/packet.hpp"

namespace iotsentinel::fp {

/// Number of per-packet features (Table I).
inline constexpr std::size_t kNumFeatures = 23;

/// Index of each Table-I feature inside a FeatureVector.
enum class FeatureIndex : std::size_t {
  // Link layer protocol (2)
  kArp = 0,
  kLlc = 1,
  // Network layer protocol (4)
  kIp = 2,
  kIcmp = 3,
  kIcmpv6 = 4,
  kEapol = 5,
  // Transport layer protocol (2)
  kTcp = 6,
  kUdp = 7,
  // Application layer protocol (8)
  kHttp = 8,
  kHttps = 9,
  kDhcp = 10,
  kBootp = 11,
  kSsdp = 12,
  kDns = 13,
  kMdns = 14,
  kNtp = 15,
  // IP options (2)
  kIpOptPadding = 16,
  kIpOptRouterAlert = 17,
  // Packet content (2)
  kSize = 18,     // integer: bytes on the wire
  kRawData = 19,  // binary: payload present
  // IP address (1)
  kDstIpCounter = 20,  // integer: order of first contact with each peer
  // Port class (2)
  kSrcPortClass = 21,  // integer in {0,1,2,3}
  kDstPortClass = 22,
};

/// One packet's feature vector p_i = {f_1..f_23}.
using FeatureVector = std::array<std::uint32_t, kNumFeatures>;

/// Convenience accessor.
inline std::uint32_t get(const FeatureVector& v, FeatureIndex i) {
  return v[static_cast<std::size_t>(i)];
}

/// Human-readable feature name ("ARP", "DstIpCounter", ...).
std::string feature_name(FeatureIndex i);

/// Maps a port number to the paper's port class:
/// 1 = well-known [0,1023], 2 = registered [1024,49151],
/// 3 = dynamic [49152,65535]. Absence of a port is encoded as 0 by the
/// extractor (use `port_class_of(std::optional)` below).
std::uint32_t port_class(std::uint16_t port);

/// Port class with the "no port => 0" rule applied.
std::uint32_t port_class_of(const std::optional<std::uint16_t>& port);

/// Stateful per-device feature extractor.
///
/// The destination-IP counter feature (f21) is defined over the device's
/// whole setup dialogue: the first distinct peer contacted maps to 1, the
/// second to 2, and so on. One PacketFeatureExtractor must therefore be
/// used per device per setup capture.
class PacketFeatureExtractor {
 public:
  /// Extracts the 23 features from one parsed packet, updating the
  /// destination-IP counter state.
  FeatureVector extract(const net::ParsedPacket& pkt);

  /// Number of distinct destination IPs seen so far.
  [[nodiscard]] std::size_t distinct_destinations() const {
    return dst_counter_.size();
  }

  /// Resets the destination-IP counter (new capture, same device).
  void reset() {
    dst_counter_.clear();
    has_last_dst_ = false;
    last_dst_counter_ = 0;
  }

 private:
  std::unordered_map<net::IpAddress, std::uint32_t> dst_counter_;
  /// Memo of the most recent destination lookup: setup dialogues talk to
  /// the same peer in bursts, so the common case skips the hash probe.
  net::IpAddress last_dst_;
  std::uint32_t last_dst_counter_ = 0;
  bool has_last_dst_ = false;
};

}  // namespace iotsentinel::fp
