// Device fingerprints F (variable length) and F' (fixed 276 dims).
//
// F is the 23×n matrix of Sect. IV-A: one column per packet received from
// the device during setup, with *consecutive* duplicate columns discarded.
// F' concatenates the first kPrefixPackets (=12) *globally unique* columns
// of F into one flat vector of 12×23 = 276 features, zero-padded when F
// has fewer unique columns.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fingerprint/features.hpp"

namespace iotsentinel::fp {

/// Number of packets concatenated into the fixed-size fingerprint F'.
/// The paper's preliminary analysis settled on 12 as the trade-off between
/// discriminative power and fill rate.
inline constexpr std::size_t kPrefixPackets = 12;

/// Dimensionality of F' (12 packets x 23 features).
inline constexpr std::size_t kFixedDims = kPrefixPackets * kNumFeatures;

/// Fixed-size fingerprint F' used by the per-type classifiers.
using FixedFingerprint = std::vector<float>;  // always kFixedDims long

/// Variable-length fingerprint F: the deduplicated packet-feature sequence.
class Fingerprint {
 public:
  Fingerprint() = default;

  /// Appends one packet column; a column identical to the immediately
  /// preceding one is discarded (p_i == p_{i+1} rule of Eq. (1)).
  void append(const FeatureVector& packet);

  /// Number of columns n (after consecutive-duplicate removal).
  [[nodiscard]] std::size_t size() const { return packets_.size(); }
  [[nodiscard]] bool empty() const { return packets_.empty(); }

  [[nodiscard]] const FeatureVector& packet(std::size_t i) const {
    return packets_[i];
  }
  [[nodiscard]] const std::vector<FeatureVector>& packets() const {
    return packets_;
  }

  /// Builds the fixed-size fingerprint F': the first `prefix` globally
  /// unique columns concatenated feature-major, zero-padded to
  /// prefix*kNumFeatures entries.
  [[nodiscard]] FixedFingerprint to_fixed(
      std::size_t prefix = kPrefixPackets) const;

  /// Number of globally unique columns (bounds how much of F' is filled).
  [[nodiscard]] std::size_t unique_packet_count() const;

  /// Serializes as CSV rows "f1,...,f23" (one row per packet) for export.
  [[nodiscard]] std::string to_csv() const;

  /// Parses the `to_csv` format; returns an empty fingerprint on garbage.
  static Fingerprint from_csv(const std::string& csv);

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

 private:
  std::vector<FeatureVector> packets_;
};

}  // namespace iotsentinel::fp
