#include "sdn/enforcement_rule.hpp"

#include <algorithm>
#include <cstdio>

namespace iotsentinel::sdn {

bool TrafficFilter::applies(const net::ParsedPacket& pkt,
                            bool from_device) const {
  if (direction == FilterDirection::kFromDevice && !from_device) return false;
  if (direction == FilterDirection::kToDevice && from_device) return false;
  if (ip_proto) {
    const bool want_tcp = *ip_proto == 6;
    const bool want_udp = *ip_proto == 17;
    if (want_tcp && !pkt.is_tcp) return false;
    if (want_udp && !pkt.is_udp) return false;
    if (!want_tcp && !want_udp) return false;
  }
  if (dst_port && (!pkt.dst_port || *pkt.dst_port != *dst_port)) return false;
  return true;
}

std::optional<bool> EnforcementRule::filter_verdict_drop(
    const net::ParsedPacket& pkt, bool from_device) const {
  for (const auto& filter : flow_filters) {
    if (filter.applies(pkt, from_device)) return filter.drop;
  }
  return std::nullopt;
}

std::uint64_t EnforcementRule::hash() const {
  // Mix the MAC, level and permitted set into one stable key. Order of
  // permitted IPs must not matter, so they are combined commutatively.
  std::uint64_t h = device.to_u64() * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(level) + 0x517cc1b727220a95ULL;
  std::uint64_t ip_mix = 0;
  for (const auto& ip : permitted_ips) {
    std::uint64_t x = ip.value() + 0x2545f4914f6cdd1dULL;
    x = (x ^ (x >> 33)) * 0xff51afd7ed558ccdULL;
    ip_mix += x;  // commutative combine
  }
  h ^= ip_mix;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 31);
}

std::string EnforcementRule::to_string() const {
  std::string out = "Device: " + device.to_rule_string() + "\n";
  out += "Isolation level: " + sdn::to_string(level) + "\n";
  if (level == IsolationLevel::kRestricted) {
    out += "Permitted:";
    std::vector<net::Ipv4Address> sorted(permitted_ips.begin(),
                                         permitted_ips.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      out += (i == 0 ? " " : ", ") + sorted[i].to_string();
    }
    out += "\n";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Hash: 0x%016llx\n",
                static_cast<unsigned long long>(hash()));
  out += buf;
  return out;
}

}  // namespace iotsentinel::sdn
