// Enforcement-rule storage.
//
// The paper stores rules "in a hash table structure to minimize the lookup
// time as the enforcement rule cache grows" and bounds memory "by limiting
// the size of the enforcement rule cache and removing unused enforcement
// rules". RuleCache implements exactly that: an unordered_map keyed by MAC
// with optional capacity, LRU eviction of unused rules, and lookup/hit
// counters for the Fig. 6c memory bench. A deliberately naive linear-scan
// variant is provided for the lookup ablation bench.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sdn/enforcement_rule.hpp"

namespace iotsentinel::sdn {

/// Hash-table rule cache with LRU eviction.
class RuleCache {
 public:
  /// `capacity == 0` means unbounded.
  explicit RuleCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Inserts or replaces the rule for `rule.device`. May evict the least
  /// recently used rule when at capacity.
  void install(EnforcementRule rule);

  /// Looks up the rule for a device, refreshing its LRU position.
  /// Returns nullptr on miss.
  const EnforcementRule* lookup(const net::MacAddress& device);

  /// Side-effect-free lookup: no LRU refresh, no counter updates. For the
  /// enforcement audit path, which must observe the cache without
  /// perturbing eviction order or hit-rate accounting.
  [[nodiscard]] const EnforcementRule* peek(
      const net::MacAddress& device) const;

  /// Removes the rule for a departed device. Returns true if present.
  bool remove(const net::MacAddress& device);

  /// Drops every rule not used since `cutoff_us` (periodic cleanup of
  /// devices no longer connected). Returns the number removed.
  std::size_t expire_unused(std::uint64_t cutoff_us);

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Estimated resident bytes of the cache (entries + hash buckets), used
  /// by the Fig. 6c memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Updates the virtual clock used to stamp rule usage.
  void set_now(std::uint64_t now_us) { now_us_ = now_us; }

 private:
  struct Entry {
    EnforcementRule rule;
    std::uint64_t last_used_us = 0;
    std::list<net::MacAddress>::iterator lru_pos;
  };

  void touch(Entry& entry, const net::MacAddress& mac);

  std::size_t capacity_;
  std::uint64_t now_us_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;
  std::unordered_map<net::MacAddress, Entry> map_;
  /// Most recently used at the front.
  std::list<net::MacAddress> lru_;
};

/// Baseline for the lookup ablation: same interface, O(n) scan per lookup.
class LinearRuleStore {
 public:
  void install(EnforcementRule rule);
  const EnforcementRule* lookup(const net::MacAddress& device);
  [[nodiscard]] std::size_t size() const { return rules_.size(); }

 private:
  std::vector<EnforcementRule> rules_;
};

}  // namespace iotsentinel::sdn
