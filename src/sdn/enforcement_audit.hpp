// Enforcement-integrity auditor: the "quarantine provably holds" check of
// the adversarial scenario suite.
//
// The data plane serves most packets from cached flow entries (the fast
// path). A cached entry is a *stale copy* of a past controller decision —
// if a device's enforcement rule changes (identification, departure) and
// the affected entries are not flushed, the switch keeps forwarding
// traffic the current policy would drop. The auditor catches exactly that
// class of bug: attached to a SoftwareSwitch's audit hook, it replays
// every fast-path verdict against Controller::audit_decision (the pure,
// side-effect-free policy oracle) and counts disagreements.
//
//   * violation:  the switch forwarded a packet the current policy drops —
//                 a quarantined/Restricted device got traffic past its
//                 rule set. This must be zero in every shipped scenario.
//   * overblock:  the switch dropped a packet the current policy forwards
//                 (fail-closed; not a security breach, tracked separately).
//
// Slow-path verdicts ARE current controller decisions, so only fast-path
// and cached-path results (flow-table entries and flow-class decision
// cache — both stale copies of past decisions) are replayed. Scope: the
// oracle is evaluated at audit time, so
// a concurrent rule install may race an in-flight packet of a *different*
// device that addresses the rule's device as unicast destination; no
// generated workload contains device-to-device unicast, and per-device
// ordering is single-writer in both gateways (see docs/SCENARIOS.md).
//
// Thread safety: counters are relaxed atomics and the oracle takes the
// controller lock, so one auditor can serve every shard's switch at once.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sdn/controller.hpp"
#include "sdn/software_switch.hpp"

namespace iotsentinel::sdn {

class EnforcementAuditor {
 public:
  /// `controller` must outlive the auditor and every switch it audits.
  explicit EnforcementAuditor(Controller& controller)
      : controller_(&controller) {}

  EnforcementAuditor(const EnforcementAuditor&) = delete;
  EnforcementAuditor& operator=(const EnforcementAuditor&) = delete;

  /// A hook bound to this auditor, suitable for SoftwareSwitch::set_audit.
  /// Copies of the hook share this auditor's counters; the auditor must
  /// outlive every switch the hook is installed on.
  [[nodiscard]] SoftwareSwitch::AuditHook hook() {
    return [this](const net::ParsedPacket& pkt, const SwitchResult& result,
                  std::uint64_t now_us) { check(pkt, result, now_us); };
  }

  /// Convenience: installs `hook()` on one switch.
  void attach(SoftwareSwitch& sw) { sw.set_audit(hook()); }

  /// Fast-path verdicts replayed against the oracle.
  [[nodiscard]] std::uint64_t checked() const {
    return checked_.load(std::memory_order_relaxed);
  }
  /// Forwarded-but-policy-says-drop disagreements (the breach counter).
  [[nodiscard]] std::uint64_t violations() const {
    return violations_.load(std::memory_order_relaxed);
  }
  /// Dropped-but-policy-says-forward disagreements (fail-closed).
  [[nodiscard]] std::uint64_t overblocks() const {
    return overblocks_.load(std::memory_order_relaxed);
  }

  /// Human-readable descriptions of the first few violations (diagnosis
  /// aid for a failing scenario run).
  [[nodiscard]] std::vector<std::string> violation_samples() const {
    std::lock_guard<std::mutex> lock(samples_mu_);
    return samples_;
  }

 private:
  static constexpr std::size_t kMaxSamples = 8;

  void check(const net::ParsedPacket& pkt, const SwitchResult& result,
             std::uint64_t now_us) {
    if (result.path == SwitchPath::kSlowPath) return;
    checked_.fetch_add(1, std::memory_order_relaxed);
    const char* want_reason = "";
    const FlowAction want = controller_->audit_decision(pkt, &want_reason);
    if (result.action == want) return;
    if (result.action == FlowAction::kForward) {
      violations_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(samples_mu_);
      if (samples_.size() < kMaxSamples) {
        samples_.push_back("t=" + std::to_string(now_us) + " " +
                           pkt.src_mac.to_string() + " -> " +
                           pkt.dst_mac.to_string() +
                           " forwarded from cache but policy says drop (" +
                           want_reason + ")");
      }
    } else {
      overblocks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Controller* controller_;
  std::atomic<std::uint64_t> checked_{0};
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<std::uint64_t> overblocks_{0};
  mutable std::mutex samples_mu_;
  std::vector<std::string> samples_;
};

}  // namespace iotsentinel::sdn
