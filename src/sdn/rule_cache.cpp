#include "sdn/rule_cache.hpp"

namespace iotsentinel::sdn {

void RuleCache::install(EnforcementRule rule) {
  auto it = map_.find(rule.device);
  if (it != map_.end()) {
    it->second.rule = std::move(rule);
    touch(it->second, it->first);
    return;
  }
  if (capacity_ != 0 && map_.size() >= capacity_) {
    // Evict the least recently used rule.
    const net::MacAddress victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++evictions_;
  }
  const net::MacAddress mac = rule.device;
  lru_.push_front(mac);
  Entry entry;
  entry.rule = std::move(rule);
  entry.last_used_us = now_us_;
  entry.lru_pos = lru_.begin();
  map_.emplace(mac, std::move(entry));
}

const EnforcementRule* RuleCache::lookup(const net::MacAddress& device) {
  ++lookups_;
  auto it = map_.find(device);
  if (it == map_.end()) return nullptr;
  ++hits_;
  touch(it->second, it->first);
  return &it->second.rule;
}

const EnforcementRule* RuleCache::peek(const net::MacAddress& device) const {
  const auto it = map_.find(device);
  return it == map_.end() ? nullptr : &it->second.rule;
}

bool RuleCache::remove(const net::MacAddress& device) {
  auto it = map_.find(device);
  if (it == map_.end()) return false;
  lru_.erase(it->second.lru_pos);
  map_.erase(it);
  return true;
}

std::size_t RuleCache::expire_unused(std::uint64_t cutoff_us) {
  std::size_t removed = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.last_used_us < cutoff_us) {
      lru_.erase(it->second.lru_pos);
      it = map_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t RuleCache::memory_bytes() const {
  // Approximate resident size: per-entry node (key + Entry + bucket
  // pointers), LRU node, and the dynamic permitted-IP sets.
  std::size_t bytes = sizeof(RuleCache);
  bytes += map_.bucket_count() * sizeof(void*);
  for (const auto& [mac, entry] : map_) {
    bytes += sizeof(mac) + sizeof(Entry) + 2 * sizeof(void*);  // map node
    bytes += sizeof(net::MacAddress) + 2 * sizeof(void*);      // lru node
    bytes += entry.rule.permitted_ips.size() *
             (sizeof(net::Ipv4Address) + 2 * sizeof(void*));
    bytes += entry.rule.permitted_ips.bucket_count() * sizeof(void*);
  }
  return bytes;
}

void RuleCache::touch(Entry& entry, const net::MacAddress& mac) {
  entry.last_used_us = now_us_;
  lru_.erase(entry.lru_pos);
  lru_.push_front(mac);
  entry.lru_pos = lru_.begin();
}

void LinearRuleStore::install(EnforcementRule rule) {
  for (auto& existing : rules_) {
    if (existing.device == rule.device) {
      existing = std::move(rule);
      return;
    }
  }
  rules_.push_back(std::move(rule));
}

const EnforcementRule* LinearRuleStore::lookup(const net::MacAddress& device) {
  for (const auto& rule : rules_) {
    if (rule.device == device) return &rule;
  }
  return nullptr;
}

}  // namespace iotsentinel::sdn
