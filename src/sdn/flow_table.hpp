// OpenFlow-style flow table: priority-ordered match/action entries with
// per-entry statistics and idle timeouts.
//
// This is the data plane the paper programs through Open vSwitch; the
// controller installs one micro-flow entry per admitted/blocked flow so
// subsequent packets of the flow are switched without a controller
// round-trip.
//
// Two-tier lookup structure
// -------------------------
// `FlowTable` keeps the observable semantics of a single priority-ordered
// OpenFlow table (highest priority wins; equal priorities are broken by
// insertion order, older entry first — in BOTH tiers, locked in by
// regression tests) but serves the per-packet hot path from a hash table:
//
//   tier 1  exact-match micro-flow cache: an open-addressed flat hash
//           table keyed by the packet's canonical 7-tuple (the same tuple
//           `FlowMatch::micro_flow` pins). Each slot caches the winning
//           entry of a previous tier-2 scan for that exact tuple, so the
//           common case — another packet of an already-seen flow — is one
//           hash probe, allocation-free, regardless of table size.
//   tier 2  the classic priority-ordered wildcard list, consulted only on
//           a tier-1 miss; the winner is inserted back into tier 1 so each
//           flow pays the linear scan once.
//
// Tier-1 slots remember the backing entry's stable id; entry removal
// (idle expiry, cookie flush) invalidates them lazily — a stale slot is
// detected by id mismatch on the next probe and falls through to tier 2.
// Installing a higher-priority wildcard eagerly evicts the cached winners
// it covers, so a cached verdict can never mask a newer rule.
//
// Tier 1 is a bounded cache: the bucket array never exceeds
// kTier1MaxBuckets (~1.5 MB). When a same-capacity purge of stale slots
// cannot make room — e.g. a spoofing device spraying random-tuple packets
// that all match one permanent wildcard — the cache is flushed wholesale
// and live flows simply re-scan once, so adversarial tuple cardinality
// cannot grow gateway memory or make wildcard-install eviction sweeps
// unbounded.
//
// Expiry is driven by a lazy min-heap of idle deadlines instead of a
// full-table scan: entries re-validate on pop (a refreshed entry is pushed
// back with its new deadline), permanent entries (idle_timeout_us == 0)
// never enter the heap. `remove_by_cookie` — device departure, quarantine,
// provisional-flow flush — resolves the victim set through a cookie→ids
// index instead of scanning the table.
//
// `LinearFlowTable` preserves the original O(n)-everything implementation
// verbatim; it is the reference oracle for the differential trace test and
// the baseline of the BENCH_flowtable.json ablation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip_address.hpp"
#include "net/mac_address.hpp"
#include "net/packet.hpp"

namespace iotsentinel::sdn {

/// Match fields; unset optionals are wildcards.
struct FlowMatch {
  std::optional<net::MacAddress> src_mac;
  std::optional<net::MacAddress> dst_mac;
  std::optional<net::Ipv4Address> src_ip;
  std::optional<net::Ipv4Address> dst_ip;
  /// IP protocol (6 = TCP, 17 = UDP); wildcard when unset.
  std::optional<std::uint8_t> ip_proto;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;

  /// Does this match cover the packet?
  [[nodiscard]] bool matches(const net::ParsedPacket& pkt) const;

  /// Exact micro-flow match for one packet (all populated fields pinned).
  static FlowMatch micro_flow(const net::ParsedPacket& pkt);

  [[nodiscard]] std::string to_string() const;
};

/// Forwarding decision of an entry.
enum class FlowAction {
  kForward,
  kDrop,
};

/// One table entry.
struct FlowEntry {
  FlowMatch match;
  FlowAction action = FlowAction::kDrop;
  /// Higher wins; ties broken by insertion order (older first).
  std::uint16_t priority = 0;
  /// Entry is removed when unmatched for this long; 0 = permanent.
  std::uint64_t idle_timeout_us = 0;
  /// Bookkeeping (maintained by FlowTable).
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t last_matched_us = 0;
  std::uint64_t installed_us = 0;
  /// Installation cookie: lets the controller bulk-remove a device's flows.
  std::uint64_t cookie = 0;
};

/// Canonical 7-tuple of one packet, packed for hashing: the tier-1 key.
///
/// Two packets with equal keys are indistinguishable to every possible
/// `FlowMatch` (matches() inspects exactly the fields encoded here,
/// including their presence), so caching one scan result per key is sound.
struct MicroFlowKey {
  std::uint64_t w0 = 0;  // src MAC (48) | presence/proto flags (6) << 48
  std::uint64_t w1 = 0;  // dst MAC (48) | src port (16) << 48
  std::uint64_t w2 = 0;  // src IPv4 | dst IPv4 << 32
  std::uint64_t w3 = 0;  // dst port (16)

  /// Builds the key of a parsed packet.
  static MicroFlowKey of_packet(const net::ParsedPacket& pkt);

  /// This key with the source port wildcarded (port and presence flag
  /// cleared). All packets of one (device, service) conversation class
  /// collapse onto this key regardless of the ephemeral port drawn per
  /// occurrence — the basis of the flow-class decision cache
  /// (sdn/switch_cache.hpp).
  [[nodiscard]] MicroFlowKey without_src_port() const;

  /// Would `match` cover every packet with this key? (Mirrors
  /// FlowMatch::matches against the encoded tuple; used to evict covered
  /// tier-1 slots when a wildcard is installed above them.)
  [[nodiscard]] bool covered_by(const FlowMatch& match) const;

  [[nodiscard]] std::uint64_t hash() const;

  friend bool operator==(const MicroFlowKey&, const MicroFlowKey&) = default;
};

/// Priority-ordered flow table with the two-tier hashed lookup path.
class FlowTable {
 public:
  /// Installs an entry; returns its stable id.
  std::uint64_t install(FlowEntry entry, std::uint64_t now_us);

  /// Finds the highest-priority matching entry, updates its counters, and
  /// returns its action. Returns nullopt on table miss.
  std::optional<FlowAction> process(const net::ParsedPacket& pkt,
                                    std::uint64_t now_us);

  /// Tier-1-only probe: serves the packet iff its exact micro-flow is
  /// cached (counting a tier-1 hit), returns nullopt otherwise WITHOUT
  /// running the tier-2 scan or counting a miss. Lets a switch consult
  /// its flow-class decision cache between the O(1) probe and the
  /// O(live-flows) scan; a nullopt here followed by `process` behaves
  /// exactly like `process` alone (the re-probe misses cleanly).
  std::optional<FlowAction> process_tier1(const net::ParsedPacket& pkt,
                                          std::uint64_t now_us);

  /// Removes entries idle past their timeout. Returns number removed.
  std::size_t expire(std::uint64_t now_us);

  /// Removes all entries with the given cookie. Returns number removed.
  std::size_t remove_by_cookie(std::uint64_t cookie);

  [[nodiscard]] std::size_t size() const { return live_; }
  /// Snapshot of the live entries in tier-2 scan order (descending
  /// priority, insertion order within a priority).
  [[nodiscard]] std::vector<FlowEntry> entries() const;
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t matched_packets() const { return matched_; }

  /// Estimated resident bytes (entry pool + tier-1 buckets + tier-2 order
  /// + deadline heap + cookie index), mirroring RuleCache::memory_bytes()
  /// for the Fig. 6c switch-side accounting.
  [[nodiscard]] std::size_t memory_bytes() const;

  // --- introspection (tests / benches) ----------------------------------
  /// Packets served by the tier-1 exact-match cache.
  [[nodiscard]] std::uint64_t tier1_hits() const { return tier1_hits_; }
  /// Packets that fell through to the tier-2 linear scan.
  [[nodiscard]] std::uint64_t tier2_scans() const { return tier2_scans_; }
  /// Live tier-1 slots.
  [[nodiscard]] std::size_t tier1_size() const { return t1_live_; }
  /// Pending deadline-heap records (permanent entries never appear).
  [[nodiscard]] std::size_t deadline_heap_size() const { return heap_.size(); }

  /// Hard cap on tier-1 buckets (48 B each): bounds cache memory and the
  /// wildcard-install eviction sweep independent of traffic.
  static constexpr std::size_t kTier1MaxBuckets = 1u << 15;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Pool slot; `id == 0` marks a free slot (ids are never reused, so a
  /// stale tier-1/heap/cookie reference is detected by id mismatch).
  struct Slot {
    FlowEntry entry;
    std::uint64_t id = 0;
    std::uint32_t next_free = kNoSlot;
  };

  /// Open-addressed tier-1 bucket (linear probing, tombstones).
  struct Bucket {
    MicroFlowKey key;
    std::uint64_t entry_id = 0;
    std::uint32_t slot = 0;
    std::uint8_t state = 0;  // 0 empty, 1 full, 2 tombstone
  };

  /// Lazy idle-deadline record; re-validated against the slot on pop.
  struct Deadline {
    std::uint64_t at_us = 0;
    std::uint64_t id = 0;
    std::uint32_t slot = 0;
  };

  std::optional<FlowAction> tier1_probe(const MicroFlowKey& key,
                                        const net::ParsedPacket& pkt,
                                        std::uint64_t now_us);
  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t slot);
  /// Removes one live entry from the pool + cookie index (the caller
  /// compacts `order_` afterwards; tier-1/heap invalidate lazily by id).
  void remove_entry(std::uint32_t slot);
  /// Drops order_ references to freed slots after a removal batch.
  void compact_order();
  void heap_push(Deadline d);
  Deadline heap_pop();

  Bucket* tier1_find(const MicroFlowKey& key);
  void tier1_insert(const MicroFlowKey& key, std::uint32_t slot,
                    std::uint64_t id);
  void tier1_erase(Bucket& bucket);
  void tier1_grow();
  /// Evicts cached winners a freshly installed wildcard now outranks.
  void tier1_evict_covered(const FlowMatch& match, std::uint16_t priority);

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  /// Tier-2 scan order: live slot indexes, descending priority, insertion
  /// order within equal priorities.
  std::vector<std::uint32_t> order_;
  std::vector<Bucket> buckets_;  // power-of-two capacity; empty until first use
  std::size_t t1_live_ = 0;
  std::size_t t1_tombstones_ = 0;
  std::vector<Deadline> heap_;  // min-heap on at_us
  /// cookie -> (slot, id) of live entries installed under it.
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::uint32_t, std::uint64_t>>>
      by_cookie_;
  std::uint64_t next_id_ = 1;
  std::uint64_t misses_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t tier1_hits_ = 0;
  std::uint64_t tier2_scans_ = 0;
};

/// The original single-tier implementation: linear scan per packet, O(n)
/// expire and remove_by_cookie. Reference oracle for the differential
/// trace test and baseline for the BENCH_flowtable.json ablation.
class LinearFlowTable {
 public:
  std::uint64_t install(FlowEntry entry, std::uint64_t now_us);
  std::optional<FlowAction> process(const net::ParsedPacket& pkt,
                                    std::uint64_t now_us);
  std::size_t expire(std::uint64_t now_us);
  std::size_t remove_by_cookie(std::uint64_t cookie);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t matched_packets() const { return matched_; }

 private:
  std::vector<FlowEntry> entries_;  // kept sorted by descending priority
  std::uint64_t next_id_ = 1;
  std::uint64_t misses_ = 0;
  std::uint64_t matched_ = 0;
};

}  // namespace iotsentinel::sdn
