// OpenFlow-style flow table: priority-ordered match/action entries with
// per-entry statistics and idle timeouts.
//
// This is the data plane the paper programs through Open vSwitch; the
// controller installs one micro-flow entry per admitted/blocked flow so
// subsequent packets of the flow are switched without a controller
// round-trip.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ip_address.hpp"
#include "net/mac_address.hpp"
#include "net/packet.hpp"

namespace iotsentinel::sdn {

/// Match fields; unset optionals are wildcards.
struct FlowMatch {
  std::optional<net::MacAddress> src_mac;
  std::optional<net::MacAddress> dst_mac;
  std::optional<net::Ipv4Address> src_ip;
  std::optional<net::Ipv4Address> dst_ip;
  /// IP protocol (6 = TCP, 17 = UDP); wildcard when unset.
  std::optional<std::uint8_t> ip_proto;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;

  /// Does this match cover the packet?
  [[nodiscard]] bool matches(const net::ParsedPacket& pkt) const;

  /// Exact micro-flow match for one packet (all populated fields pinned).
  static FlowMatch micro_flow(const net::ParsedPacket& pkt);

  [[nodiscard]] std::string to_string() const;
};

/// Forwarding decision of an entry.
enum class FlowAction {
  kForward,
  kDrop,
};

/// One table entry.
struct FlowEntry {
  FlowMatch match;
  FlowAction action = FlowAction::kDrop;
  /// Higher wins; ties broken by insertion order (older first).
  std::uint16_t priority = 0;
  /// Entry is removed when unmatched for this long; 0 = permanent.
  std::uint64_t idle_timeout_us = 0;
  /// Bookkeeping (maintained by FlowTable).
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t last_matched_us = 0;
  std::uint64_t installed_us = 0;
  /// Installation cookie: lets the controller bulk-remove a device's flows.
  std::uint64_t cookie = 0;
};

/// Priority-ordered flow table.
class FlowTable {
 public:
  /// Installs an entry; returns its stable id.
  std::uint64_t install(FlowEntry entry, std::uint64_t now_us);

  /// Finds the highest-priority matching entry, updates its counters, and
  /// returns its action. Returns nullopt on table miss.
  std::optional<FlowAction> process(const net::ParsedPacket& pkt,
                                    std::uint64_t now_us);

  /// Removes entries idle past their timeout. Returns number removed.
  std::size_t expire(std::uint64_t now_us);

  /// Removes all entries with the given cookie. Returns number removed.
  std::size_t remove_by_cookie(std::uint64_t cookie);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t matched_packets() const { return matched_; }

 private:
  std::vector<FlowEntry> entries_;  // kept sorted by descending priority
  std::uint64_t next_id_ = 1;
  std::uint64_t misses_ = 0;
  std::uint64_t matched_ = 0;
};

}  // namespace iotsentinel::sdn
