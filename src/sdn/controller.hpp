// The Security Gateway's SDN controller module.
//
// Mirrors the paper's custom Floodlight module: it owns the enforcement-
// rule cache and overlay membership, answers packet-in events from the
// software switch with forward/drop decisions, and installs micro-flow
// entries so the data plane handles subsequent packets of the flow alone.
//
// Policy implemented (Sect. V):
//   * strict     -> untrusted overlay only, no Internet
//   * restricted -> untrusted overlay + whitelisted remote endpoints
//   * trusted    -> trusted overlay + full Internet
//   * devices without a rule yet (identification in progress) are treated
//     as strict, but gateway-bound infrastructure traffic (DHCP, DNS, ARP,
//     local multicast) is always allowed so setup dialogues can proceed.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sdn/flow_table.hpp"
#include "sdn/rule_cache.hpp"
#include "sdn/switch_cache.hpp"

namespace iotsentinel::sdn {

/// Decision returned to the switch for a packet-in.
struct PacketInDecision {
  FlowAction action = FlowAction::kDrop;
  /// Entry the controller wants installed for the rest of the flow
  /// (nullopt for one-off control traffic like ARP/DHCP that should keep
  /// coming to the controller).
  std::optional<FlowEntry> flow_to_install;
  /// Diagnostic tag, e.g. "overlay-isolation", "whitelist-miss".
  const char* reason = "";
  /// True when this decision holds for every packet of the flow class
  /// (same `FlowClassKey`) until the next rule change — the switch may
  /// put it in its SwitchRuleCache. Decisions are pure functions of the
  /// class under the current rule set, so this is true whenever filtering
  /// is enabled; the controller's invalidation fan-out bounds staleness.
  bool cacheable = false;
  /// The class-cacheable form of this decision (valid iff `cacheable`).
  CachedDecision cached;
};

/// Controller configuration.
struct ControllerConfig {
  /// Idle timeout for installed micro-flows.
  std::uint64_t flow_idle_timeout_us = 60'000'000;  // 60 s
  /// Whether traffic filtering is enabled at all; when false every flow is
  /// forwarded (the paper's "No Filtering" baseline rows).
  bool filtering_enabled = true;
  /// Whether `packet_in` answers repeated misses of an already-assessed
  /// flow class from a negative-entry cache instead of re-running
  /// `decide`. Observably identical either way (same action, same reason
  /// literal, same rule-cache LRU touches) — only the work is saved.
  bool negative_cache_enabled = true;
};

/// The enforcement controller.
///
/// Thread safety: `apply_rule`, `remove_device`, `packet_in` and
/// `level_of` serialize on an internal mutex, so shard workers raising
/// packet-ins and the sharded gateway's classifier thread installing rules
/// can share one controller — the "single controller lock" of the sharded
/// pipeline. The `rules()` accessors hand out the cache unguarded and are
/// for single-threaded tooling (benches, migration helpers) only.
class Controller {
 public:
  explicit Controller(ControllerConfig config = {});

  /// Installs/updates the enforcement rule for a device (as received from
  /// the IoT Security Service).
  void apply_rule(EnforcementRule rule, std::uint64_t now_us);

  /// Removes a departed device's rule. `now_us` timestamps the
  /// invalidation fan-out (0 = unknown; lag samples are then skipped).
  void remove_device(const net::MacAddress& device, std::uint64_t now_us = 0);

  /// Federates a switch's decision cache: every subsequent rule install,
  /// removal, or rule-cache eviction fans an invalidation out to `cache`.
  /// Attach before traffic flows (the registry is append-only and the
  /// cache must outlive the controller's last rule change).
  void attach_cache(SwitchRuleCache* cache);

  /// Model-swap invalidation: flushes the negative-entry cache and every
  /// federated switch cache for each listed device. Called by the sharded
  /// gateway's classifier thread when a hot model swap replaces the
  /// classifier a device class was identified with — cached flow-class
  /// decisions derived under the replaced model must not outlive it, so
  /// the affected devices' next packets re-consult the controller.
  void invalidate_model_swap(std::span<const net::MacAddress> devices,
                             std::uint64_t now_us);

  /// Handles a table-miss packet from the switch.
  PacketInDecision packet_in(const net::ParsedPacket& pkt,
                             std::uint64_t now_us);

  /// Isolation level currently enforced for a device (nullopt = no rule).
  std::optional<IsolationLevel> level_of(const net::MacAddress& device);

  /// Re-derives the pure forward/drop policy verdict for a packet under
  /// the rules installed right now — no packet-in counters, no flow
  /// installation, no rule-cache LRU side effects. This is the oracle the
  /// enforcement auditor (sdn/enforcement_audit.hpp) replays fast-path
  /// (cached-flow) forwarding decisions against: a cached entry whose
  /// action contradicts `audit_decision` is an enforcement-integrity
  /// violation. Thread-safe (takes the controller lock).
  FlowAction audit_decision(const net::ParsedPacket& pkt,
                            const char** reason = nullptr);

  [[nodiscard]] RuleCache& rules() { return rules_; }
  [[nodiscard]] const RuleCache& rules() const { return rules_; }
  [[nodiscard]] std::uint64_t packet_ins() const {
    std::lock_guard<std::mutex> lock(mu_);
    return packet_ins_;
  }
  [[nodiscard]] std::uint64_t drops() const {
    std::lock_guard<std::mutex> lock(mu_);
    return drops_;
  }
  /// Packet-ins answered from the negative-entry cache (classification
  /// work saved; each was a `decide` + policy evaluation avoided).
  [[nodiscard]] std::uint64_t negative_cache_hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return neg_hits_;
  }
  /// Rule installs accepted via `apply_rule`.
  [[nodiscard]] std::uint64_t rule_installs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return installs_;
  }
  /// Invalidation events broadcast to federated caches (one per attached
  /// cache per rule change; the negative cache counts as one federatee).
  [[nodiscard]] std::uint64_t invalidations_sent() const {
    std::lock_guard<std::mutex> lock(mu_);
    return invalidations_sent_;
  }

 private:
  /// Fans a device invalidation out to the negative cache and every
  /// attached switch cache. Caller holds `mu_`.
  void fan_out_invalidation(const net::MacAddress& device,
                            std::uint64_t now_us);
  /// Core policy: may src talk to dst in this packet? `peek_only` makes
  /// the rule lookups side-effect-free (the audit path).
  FlowAction decide(const net::ParsedPacket& pkt, const char** reason,
                    bool* installable, bool peek_only = false);

  ControllerConfig config_;
  /// Serializes rule installs against packet-in decisions (see class
  /// comment). Also covers the counters below.
  mutable std::mutex mu_;
  RuleCache rules_;
  /// Negative-entry cache: (flow class) -> decision for classes the
  /// controller has already assessed, so repeated slow-path misses of the
  /// same class skip `decide`. Owner thread = whoever holds `mu_`, which
  /// serializes lookups/inserts against its own invalidation fan-out.
  SwitchRuleCache neg_;
  /// Federated per-switch decision caches (invalidation fan-out targets).
  std::vector<SwitchRuleCache*> caches_;
  std::uint64_t packet_ins_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t neg_hits_ = 0;
  std::uint64_t installs_ = 0;
  std::uint64_t invalidations_sent_ = 0;
};

/// True when `ip` lies outside RFC1918 space, i.e. reaching it requires
/// Internet access through the gateway.
bool is_internet_destination(net::Ipv4Address ip);

}  // namespace iotsentinel::sdn
