#include "sdn/switch_cache.hpp"

#include <algorithm>

namespace iotsentinel::sdn {

FlowClassKey FlowClassKey::of_packet(const net::ParsedPacket& pkt) {
  FlowClassKey key;
  key.base = MicroFlowKey::of_packet(pkt).without_src_port();
  if (pkt.is_arp) key.cls |= kClsArp;
  if (pkt.is_eapol) key.cls |= kClsEapol;
  if (pkt.app.dhcp || pkt.app.bootp) key.cls |= kClsDhcp;
  return key;
}

const CachedDecision* SwitchRuleCache::lookup(const FlowClassKey& key,
                                              std::uint64_t now_us) {
  if (pending_seq_.load(std::memory_order_acquire) != drained_seq_) {
    drain(now_us);
  }
  generation_at_lookup_ = generation_;
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void SwitchRuleCache::insert(const FlowClassKey& key,
                             const CachedDecision& decision) {
  if (pending_seq_.load(std::memory_order_acquire) != drained_seq_) {
    drain(/*now_us=*/0);
  }
  if (generation_ != generation_at_lookup_) {
    // A rule changed between the lookup miss and this insert; the decision
    // may have been computed against the old rule set, so drop it and let
    // the next packet of the class re-consult the controller.
    ++stale_inserts_;
    return;
  }
  if (map_.size() >= capacity_ && !map_.contains(key)) {
    flush();
    ++generation_;  // a flush invalidates concurrent lookup/insert pairs too
    generation_at_lookup_ = generation_;
  }
  const auto [it, inserted] = map_.insert_or_assign(key, decision);
  if (inserted) {
    ++insertions_;
    by_mac_[key.src_mac_u64()].push_back(key);
    const std::uint64_t dst = key.dst_mac_u64();
    // Multicast/broadcast destinations are not devices: no rule can ever
    // name them, so indexing them would only bloat the index.
    if ((dst & 0x010000000000ULL) == 0 && dst != key.src_mac_u64()) {
      by_mac_[dst].push_back(key);
    }
  }
}

void SwitchRuleCache::invalidate_device(const net::MacAddress& device,
                                        std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.push_back({device.to_u64(), now_us, /*all=*/false});
  ++enqueued_;
  pending_seq_.store(pending_seq_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_release);
}

void SwitchRuleCache::invalidate_all(std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.push_back({0, now_us, /*all=*/true});
  ++enqueued_;
  pending_seq_.store(pending_seq_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_release);
}

void SwitchRuleCache::drain(std::uint64_t now_us) {
  drain_scratch_.clear();
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    drain_scratch_.swap(pending_);
    drained_seq_ = pending_seq_.load(std::memory_order_relaxed);
  }
  for (const PendingInvalidation& inv : drain_scratch_) {
    if (inv.all) {
      flush();
    } else {
      apply_device_invalidation(inv.mac);
    }
    ++generation_;
    if (lag_hist_ && inv.enqueued_us != 0 && now_us >= inv.enqueued_us) {
      lag_hist_->record(now_us - inv.enqueued_us);
    }
  }
}

void SwitchRuleCache::apply_device_invalidation(std::uint64_t mac) {
  const auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return;
  for (const FlowClassKey& key : it->second) {
    invalidated_entries_ += map_.erase(key);
    // The key may also be indexed under its other endpoint; that stale
    // index entry is harmless (erase of a missing key is a no-op) and is
    // dropped when that endpoint is invalidated or the cache flushes.
  }
  by_mac_.erase(it);
}

void SwitchRuleCache::flush() {
  map_.clear();
  by_mac_.clear();
  ++flushes_;
}

}  // namespace iotsentinel::sdn
