// Per-device enforcement rules (paper Fig. 2).
//
// A rule is keyed by the device MAC address, carries the isolation level
// and — for Restricted — the set of permitted remote IP addresses through
// which the device may reach its cloud service. The `hash` value mirrors
// the paper's rule-storage key for the hash-table cache.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include <optional>

#include "net/ip_address.hpp"
#include "net/mac_address.hpp"
#include "net/packet.hpp"
#include "sdn/isolation.hpp"

namespace iotsentinel::sdn {

/// Direction of a per-flow filter relative to the rule's device.
enum class FilterDirection {
  kFromDevice,  // packets the device sends
  kToDevice,    // packets addressed to the device
  kBoth,
};

/// Flow-level refinement of a device's isolation level (the paper's
/// "extend the traffic filtering mechanism ... up to the level of
/// individual flows"): e.g. block inbound telnet to a camera while leaving
/// its video streaming untouched.
struct TrafficFilter {
  FilterDirection direction = FilterDirection::kBoth;
  /// IP protocol to match (6 = TCP, 17 = UDP); wildcard when unset.
  std::optional<std::uint8_t> ip_proto{};
  /// Destination port of the packet; wildcard when unset.
  std::optional<std::uint16_t> dst_port{};
  /// Verdict when the filter matches (true = drop, false = allow —
  /// an explicit allow overrides later drops, enabling allow-lists).
  bool drop = true;
  /// Human-readable tag for diagnostics ("block-telnet").
  std::string label{};

  /// Does this filter apply to `pkt`? `from_device` says whether the
  /// packet was sent by the rule's device (vs addressed to it).
  [[nodiscard]] bool applies(const net::ParsedPacket& pkt,
                             bool from_device) const;
};

/// One device's enforcement rule.
struct EnforcementRule {
  net::MacAddress device{};
  IsolationLevel level = IsolationLevel::kStrict;
  /// Remote endpoints a Restricted device may contact.
  std::unordered_set<net::Ipv4Address> permitted_ips{};
  /// Flow-level filters evaluated before the overlay/whitelist policy;
  /// the first matching filter decides.
  std::vector<TrafficFilter> flow_filters{};
  /// Installation time (for cache aging / eviction of departed devices).
  std::uint64_t installed_at_us = 0;

  /// Stable 64-bit key used for hash-table storage (Fig. 2's "hash value").
  [[nodiscard]] std::uint64_t hash() const;

  /// May this device reach the given remote (Internet) address?
  [[nodiscard]] bool permits_remote(net::Ipv4Address remote) const {
    switch (level) {
      case IsolationLevel::kTrusted: return true;
      case IsolationLevel::kRestricted: return permitted_ips.contains(remote);
      case IsolationLevel::kStrict: return false;
    }
    return false;
  }

  /// Overlay the device belongs to.
  [[nodiscard]] Overlay overlay() const { return overlay_for(level); }

  /// Evaluates the flow filters against a packet; nullopt when none match.
  /// `from_device` distinguishes egress from ingress relative to this
  /// rule's device.
  [[nodiscard]] std::optional<bool> filter_verdict_drop(
      const net::ParsedPacket& pkt, bool from_device) const;

  /// Renders the rule in the paper's Fig. 2 style:
  ///   Device: 13-73-74-7E-A9-C2
  ///   Isolation level: Restricted
  ///   Permitted: 104.31.18.30, 104.31.19.30
  ///   Hash: 0x...
  [[nodiscard]] std::string to_string() const;
};

}  // namespace iotsentinel::sdn
