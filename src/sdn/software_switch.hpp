// Open vSwitch-style software switch with an OpenFlow-ish fast/slow path.
//
// Packets are first matched against the local flow table (fast path); a
// table miss raises a packet-in to the attached controller, whose decision
// is applied and whose returned flow entry, if any, is installed so the
// rest of the flow stays on the fast path. The flow table itself is
// two-tier (see flow_table.hpp): after one priority scan a flow's packets
// are served from an exact-match micro-flow hash table, so the fast path
// stays O(1) as the installed-flow population grows. Per-path counters
// feed the latency model of the network simulator (controller round-trips
// cost more than fast-path switching).
#pragma once

#include <cstdint>
#include <functional>

#include "sdn/controller.hpp"
#include "sdn/flow_table.hpp"
#include "sdn/switch_cache.hpp"

namespace iotsentinel::sdn {

/// How a packet traversed the switch (cost model input).
enum class SwitchPath {
  kFastPath,    // matched an installed flow entry
  kSlowPath,    // controller round-trip (packet-in)
  kCachedPath,  // served by the local flow-class decision cache — a past
                // controller verdict for the class, no round-trip, no
                // flow install (cost model: local, like the fast path)
};

/// Result of pushing one packet through the switch.
struct SwitchResult {
  FlowAction action = FlowAction::kDrop;
  SwitchPath path = SwitchPath::kFastPath;
  const char* reason = "";
};

/// The data-plane element of the Security Gateway.
class SoftwareSwitch {
 public:
  explicit SoftwareSwitch(Controller& controller) : controller_(controller) {}

  /// Observer invoked after every `process` with the packet and the
  /// verdict the data plane actually applied — the attachment point for
  /// the enforcement auditor (sdn/enforcement_audit.hpp), which replays
  /// fast-path verdicts against the controller's current policy. Runs on
  /// whichever thread calls `process`; an empty hook costs one branch.
  using AuditHook = std::function<void(const net::ParsedPacket& pkt,
                                       const SwitchResult& result,
                                       std::uint64_t now_us)>;
  void set_audit(AuditHook hook) { audit_ = std::move(hook); }

  /// Binds this switch's flow-class decision cache (federation member; see
  /// sdn/switch_cache.hpp). The cache must be attached to the SAME
  /// controller (`Controller::attach_cache`) so rule changes invalidate
  /// it, and must outlive the switch. nullptr (default) disables the
  /// cached path entirely — bare switches behave exactly as before.
  void set_rule_cache(SwitchRuleCache* cache) { cache_ = cache; }

  /// Switches one packet at virtual time `now_us`.
  SwitchResult process(const net::ParsedPacket& pkt, std::uint64_t now_us);

  /// Expires idle flow entries (call periodically from the simulator).
  std::size_t expire_flows(std::uint64_t now_us) {
    return table_.expire(now_us);
  }

  /// Flushes all flows installed for a device (rule change / departure).
  std::size_t flush_device(const net::MacAddress& device) {
    return table_.remove_by_cookie(device.to_u64());
  }

  [[nodiscard]] FlowTable& table() { return table_; }
  [[nodiscard]] const FlowTable& table() const { return table_; }
  [[nodiscard]] std::uint64_t fast_path_packets() const { return fast_; }
  [[nodiscard]] std::uint64_t slow_path_packets() const { return slow_; }
  /// Packets served by the flow-class decision cache (would have been
  /// slow-path controller consults before federation).
  [[nodiscard]] std::uint64_t cached_path_packets() const { return cached_; }

  /// Switch-side state bytes (the two-tier flow table with its tier-1
  /// cache, deadline heap and cookie index) — Fig. 6c accounting.
  [[nodiscard]] std::size_t memory_bytes() const {
    return table_.memory_bytes();
  }

 private:
  Controller& controller_;
  FlowTable table_;
  AuditHook audit_;
  SwitchRuleCache* cache_ = nullptr;
  std::uint64_t fast_ = 0;
  std::uint64_t slow_ = 0;
  std::uint64_t cached_ = 0;
};

}  // namespace iotsentinel::sdn
