// Isolation levels assigned by the IoT Security Service (Sect. V, Fig. 3).
#pragma once

#include <string>

namespace iotsentinel::sdn {

/// Network isolation level for one device.
enum class IsolationLevel {
  /// Untrusted overlay only; no Internet access. Assigned to unknown
  /// device-types.
  kStrict,
  /// Untrusted overlay plus a whitelist of remote endpoints (the vendor's
  /// cloud service). Assigned to device-types with known vulnerabilities.
  kRestricted,
  /// Trusted overlay and unrestricted Internet access. Assigned to
  /// device-types with no reported vulnerabilities.
  kTrusted,
};

/// The two virtual network overlays the gateway maintains (Sect. III-C.1).
enum class Overlay {
  kUntrusted,
  kTrusted,
};

/// Overlay membership implied by an isolation level: only trusted devices
/// join the trusted overlay.
inline Overlay overlay_for(IsolationLevel level) {
  return level == IsolationLevel::kTrusted ? Overlay::kTrusted
                                           : Overlay::kUntrusted;
}

inline std::string to_string(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kStrict: return "Strict";
    case IsolationLevel::kRestricted: return "Restricted";
    case IsolationLevel::kTrusted: return "Trusted";
  }
  return "?";
}

inline std::string to_string(Overlay overlay) {
  return overlay == Overlay::kTrusted ? "trusted" : "untrusted";
}

}  // namespace iotsentinel::sdn
