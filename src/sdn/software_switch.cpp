#include "sdn/software_switch.hpp"

namespace iotsentinel::sdn {

SwitchResult SoftwareSwitch::process(const net::ParsedPacket& pkt,
                                     std::uint64_t now_us) {
  SwitchResult result;
  if (auto action = table_.process(pkt, now_us)) {
    ++fast_;
    result.action = *action;
    result.path = SwitchPath::kFastPath;
    result.reason = "flow-entry";
  } else {
    ++slow_;
    PacketInDecision decision = controller_.packet_in(pkt, now_us);
    if (decision.flow_to_install) {
      table_.install(std::move(*decision.flow_to_install), now_us);
    }
    result.action = decision.action;
    result.path = SwitchPath::kSlowPath;
    result.reason = decision.reason;
  }
  if (audit_) audit_(pkt, result, now_us);
  return result;
}

}  // namespace iotsentinel::sdn
