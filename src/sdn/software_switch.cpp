#include "sdn/software_switch.hpp"

namespace iotsentinel::sdn {

SwitchResult SoftwareSwitch::process(const net::ParsedPacket& pkt,
                                     std::uint64_t now_us) {
  SwitchResult result;
  // Without a decision cache this is exactly the pre-federation two-step:
  // process_tier1 + process together behave like process alone.
  if (auto action = table_.process_tier1(pkt, now_us)) {
    ++fast_;
    result.action = *action;
    result.path = SwitchPath::kFastPath;
    result.reason = "flow-entry";
  } else {
    // Tier-1 miss: consult the flow-class decision cache BEFORE the
    // tier-2 scan — a cached class verdict answers ephemeral-port flows
    // in O(1), skipping both the O(live-flows) scan and the controller.
    FlowClassKey cls;
    const CachedDecision* cached = nullptr;
    if (cache_) {
      cls = FlowClassKey::of_packet(pkt);
      cached = cache_->lookup(cls, now_us);
    }
    if (cached) {
      ++cached_;
      result.action = cached->action;
      result.path = SwitchPath::kCachedPath;
      result.reason = cached->reason;
    } else if (auto table_action = table_.process(pkt, now_us)) {
      ++fast_;
      result.action = *table_action;
      result.path = SwitchPath::kFastPath;
      result.reason = "flow-entry";
    } else {
      ++slow_;
      PacketInDecision decision = controller_.packet_in(pkt, now_us);
      if (decision.flow_to_install) {
        table_.install(std::move(*decision.flow_to_install), now_us);
      }
      if (cache_ && decision.cacheable) cache_->insert(cls, decision.cached);
      result.action = decision.action;
      result.path = SwitchPath::kSlowPath;
      result.reason = decision.reason;
    }
  }
  if (audit_) audit_(pkt, result, now_us);
  return result;
}

}  // namespace iotsentinel::sdn
