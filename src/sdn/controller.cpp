#include "sdn/controller.hpp"

namespace iotsentinel::sdn {

bool is_internet_destination(net::Ipv4Address ip) {
  return !ip.is_private() && !ip.is_multicast() && !ip.is_broadcast() &&
         ip.value() != 0;
}

Controller::Controller(ControllerConfig config) : config_(config) {}

void Controller::apply_rule(EnforcementRule rule, std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.set_now(now_us);
  const net::MacAddress device = rule.device;
  const std::uint64_t evictions_before = rules_.evictions();
  rules_.install(std::move(rule));
  ++installs_;
  fan_out_invalidation(device, now_us);
  if (rules_.evictions() != evictions_before) {
    // The LRU evicted some other device's rule to make room; federated
    // caches may hold decisions derived from it, and the controller does
    // not know which device went — flush them all.
    neg_.invalidate_all(now_us);
    for (SwitchRuleCache* cache : caches_) cache->invalidate_all(now_us);
    invalidations_sent_ += 1 + caches_.size();
  }
}

void Controller::remove_device(const net::MacAddress& device,
                               std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.remove(device);
  fan_out_invalidation(device, now_us);
}

void Controller::attach_cache(SwitchRuleCache* cache) {
  std::lock_guard<std::mutex> lock(mu_);
  caches_.push_back(cache);
}

void Controller::invalidate_model_swap(
    std::span<const net::MacAddress> devices, std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const net::MacAddress& device : devices) {
    fan_out_invalidation(device, now_us);
  }
}

void Controller::fan_out_invalidation(const net::MacAddress& device,
                                      std::uint64_t now_us) {
  neg_.invalidate_device(device, now_us);
  for (SwitchRuleCache* cache : caches_) {
    cache->invalidate_device(device, now_us);
  }
  invalidations_sent_ += 1 + caches_.size();
}

std::optional<IsolationLevel> Controller::level_of(
    const net::MacAddress& device) {
  std::lock_guard<std::mutex> lock(mu_);
  const EnforcementRule* rule = rules_.lookup(device);
  if (!rule) return std::nullopt;
  return rule->level;
}

FlowAction Controller::audit_decision(const net::ParsedPacket& pkt,
                                      const char** reason) {
  std::lock_guard<std::mutex> lock(mu_);
  const char* why = "";
  bool installable = false;
  const FlowAction action =
      config_.filtering_enabled
          ? decide(pkt, &why, &installable, /*peek_only=*/true)
          : (why = "filtering-disabled", FlowAction::kForward);
  if (reason) *reason = why;
  return action;
}

FlowAction Controller::decide(const net::ParsedPacket& pkt,
                              const char** reason, bool* installable,
                              bool peek_only) {
  *installable = true;

  // Infrastructure traffic required for association and identification is
  // never blocked: ARP, EAPoL, DHCP, and link-local multicast (mDNS/SSDP
  // discovery within the overlay is handled below with overlay checks —
  // but broadcast control traffic must flow for DHCP to work at all).
  if (pkt.is_arp || pkt.is_eapol || pkt.app.dhcp || pkt.app.bootp) {
    *installable = false;  // keep control traffic on the slow path
    *reason = "infrastructure";
    return FlowAction::kForward;
  }

  const auto look = [&](const net::MacAddress& mac) {
    return peek_only ? rules_.peek(mac) : rules_.lookup(mac);
  };
  const EnforcementRule* src_rule = look(pkt.src_mac);
  const EnforcementRule* dst_rule =
      pkt.dst_mac.is_multicast() ? nullptr : look(pkt.dst_mac);
  const Overlay src_overlay =
      src_rule ? src_rule->overlay() : Overlay::kUntrusted;

  // Flow-level filters refine the device's isolation level and take
  // precedence over the coarse overlay/whitelist policy: egress filters of
  // the sender first, then ingress filters of the receiver.
  if (src_rule) {
    if (auto drop = src_rule->filter_verdict_drop(pkt, /*from_device=*/true)) {
      *reason = *drop ? "flow-filter-egress" : "flow-filter-allow";
      return *drop ? FlowAction::kDrop : FlowAction::kForward;
    }
  }
  if (dst_rule) {
    if (auto drop = dst_rule->filter_verdict_drop(pkt, /*from_device=*/false)) {
      *reason = *drop ? "flow-filter-ingress" : "flow-filter-allow";
      return *drop ? FlowAction::kDrop : FlowAction::kForward;
    }
  }

  // Remote (Internet) destination?
  if (pkt.dst_ip && pkt.dst_ip->is_v4() &&
      is_internet_destination(pkt.dst_ip->v4())) {
    if (!src_rule) {
      *reason = "unidentified-no-internet";
      return FlowAction::kDrop;
    }
    if (src_rule->permits_remote(pkt.dst_ip->v4())) {
      *reason = src_rule->level == IsolationLevel::kTrusted
                    ? "trusted-internet"
                    : "whitelisted-endpoint";
      return FlowAction::kForward;
    }
    *reason = src_rule->level == IsolationLevel::kRestricted
                  ? "whitelist-miss"
                  : "strict-no-internet";
    return FlowAction::kDrop;
  }

  // Local multicast/broadcast stays within the sender's overlay; the
  // switch replicates it only to same-overlay ports, so forwarding here is
  // safe and keeps discovery protocols working.
  if (pkt.dst_mac.is_multicast()) {
    *installable = false;
    *reason = "local-multicast";
    return FlowAction::kForward;
  }

  // Device-to-device: both endpoints must be in the same overlay.
  const Overlay dst_overlay =
      dst_rule ? dst_rule->overlay() : Overlay::kUntrusted;
  if (src_overlay == dst_overlay) {
    *reason = "same-overlay";
    return FlowAction::kForward;
  }
  *reason = "overlay-isolation";
  return FlowAction::kDrop;
}

PacketInDecision Controller::packet_in(const net::ParsedPacket& pkt,
                                       std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++packet_ins_;
  rules_.set_now(now_us);

  PacketInDecision decision;
  if (!config_.filtering_enabled) {
    decision.action = FlowAction::kForward;
    decision.reason = "filtering-disabled";
    FlowEntry entry;
    entry.match = FlowMatch::micro_flow(pkt);
    entry.action = FlowAction::kForward;
    entry.priority = 10;
    entry.idle_timeout_us = config_.flow_idle_timeout_us;
    entry.cookie = pkt.src_mac.to_u64();
    decision.flow_to_install = std::move(entry);
    return decision;
  }

  const FlowClassKey cls = FlowClassKey::of_packet(pkt);
  if (config_.negative_cache_enabled) {
    if (const CachedDecision* hit = neg_.lookup(cls, now_us)) {
      ++neg_hits_;
      // Mirror the rule-cache LRU touches `decide` would have made, so the
      // cached path is observably identical (lookups/hits counters,
      // expire_unused recency) and only the policy evaluation is saved.
      if (cls.cls == 0) {
        rules_.lookup(pkt.src_mac);
        if (!pkt.dst_mac.is_multicast()) rules_.lookup(pkt.dst_mac);
      }
      decision.action = hit->action;
      decision.reason = hit->reason;
      if (decision.action == FlowAction::kDrop) ++drops_;
      if (hit->installable) {
        FlowEntry entry;
        entry.match = FlowMatch::micro_flow(pkt);
        entry.action = decision.action;
        entry.priority = 10;
        entry.idle_timeout_us = config_.flow_idle_timeout_us;
        entry.cookie = pkt.src_mac.to_u64();
        decision.flow_to_install = std::move(entry);
      }
      decision.cacheable = true;
      decision.cached = *hit;
      return decision;
    }
  }

  bool installable = false;
  decision.action = decide(pkt, &decision.reason, &installable);
  if (decision.action == FlowAction::kDrop) ++drops_;

  if (installable) {
    FlowEntry entry;
    entry.match = FlowMatch::micro_flow(pkt);
    entry.action = decision.action;
    entry.priority = 10;
    entry.idle_timeout_us = config_.flow_idle_timeout_us;
    entry.cookie = pkt.src_mac.to_u64();
    decision.flow_to_install = std::move(entry);
  }
  // Every `decide` outcome is a pure function of the packet's flow class
  // under the current rule set (policy never reads the source port), so
  // it is always class-cacheable; invalidation fan-out bounds staleness.
  decision.cacheable = true;
  decision.cached = {decision.action, decision.reason, installable};
  if (config_.negative_cache_enabled) neg_.insert(cls, decision.cached);
  return decision;
}

}  // namespace iotsentinel::sdn
