// Per-switch flow-class decision cache: the federation layer that lets N
// `SoftwareSwitch` instances (one per gateway shard) share one logical
// policy view without sharing the controller lock on every table miss.
//
// Why a *class* cache works
// -------------------------
// PR 6's fleet run showed the pipeline is slow-path bound: ~78% of standby
// packets miss the flow table because every standby flow draws a fresh
// ephemeral source port, so the micro-flow entry installed for the
// previous occurrence never matches the next one. But the controller's
// verdict does not depend on the source port at all: `Controller::decide`
// branches on the infrastructure class (ARP / EAPoL / DHCP) and otherwise
// on the src/dst enforcement rules, whose flow filters match only
// (direction, ip_proto, dst_port). Two packets with equal `FlowClassKey`s
// — the canonical 7-tuple with the source port wildcarded, plus the
// infrastructure-class bits `FlowMatch` cannot express — therefore always
// receive the same decision under the same rule set, so one packet-in per
// class per rule era answers them all.
//
// Federation protocol (who writes what, from where)
// -------------------------------------------------
// Lookups and inserts happen on the cache's OWNER thread (the shard worker
// driving its switch) and touch plain, unsynchronized maps. Rule changes
// happen on whatever thread calls the controller; the controller fans out
// `invalidate_device` / `invalidate_all` to every attached cache, which
// only appends to a mutex-protected pending queue and bumps an atomic
// sequence number. The owner drains the queue at the next lookup/insert —
// the common case (nothing pending) is a single relaxed-load-compare.
//
// Staleness window: an entry inserted concurrently with the invalidation
// that should kill it is erased at the owner's next drain; a decision
// computed before an invalidation but inserted after the drain is
// detected by a generation check and simply not cached. In the sharded
// gateway a device's rule install runs on its OWNING shard's worker
// thread — the same thread that drains that shard's cache — so entries
// keyed by the device's own (src) traffic are invalidated synchronously
// with the install, race-free. Cross-shard dst-keyed staleness has the
// same scope as stale flow-table entries and is covered by the
// enforcement auditor's documented contract (enforcement_audit.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/hash_mix.hpp"
#include "net/mac_address.hpp"
#include "net/packet.hpp"
#include "sdn/flow_table.hpp"
#include "telemetry/registry.hpp"

namespace iotsentinel::sdn {

/// Identity of one controller-decision equivalence class: the packet's
/// canonical 7-tuple with the ephemeral source port wildcarded, plus the
/// infrastructure-protocol bits `Controller::decide` branches on before
/// it ever consults a rule (FlowMatch cannot express these, so the
/// MicroFlowKey alone would conflate e.g. an ARP probe with an IP flow).
struct FlowClassKey {
  MicroFlowKey base;
  std::uint8_t cls = 0;  // kClsArp | kClsEapol | kClsDhcp

  static constexpr std::uint8_t kClsArp = 1u << 0;
  static constexpr std::uint8_t kClsEapol = 1u << 1;
  static constexpr std::uint8_t kClsDhcp = 1u << 2;  // DHCP or BOOTP

  /// Builds the class key of a parsed packet.
  static FlowClassKey of_packet(const net::ParsedPacket& pkt);

  [[nodiscard]] std::uint64_t hash() const {
    return net::mix64(base.hash() ^ (std::uint64_t{cls} * 0x9e3779b97f4a7c15ULL));
  }
  /// Source MAC encoded in the key (the invalidation index key).
  [[nodiscard]] std::uint64_t src_mac_u64() const {
    return base.w0 & 0xffffffffffffULL;
  }
  /// Destination MAC encoded in the key.
  [[nodiscard]] std::uint64_t dst_mac_u64() const {
    return base.w1 & 0xffffffffffffULL;
  }

  friend bool operator==(const FlowClassKey&, const FlowClassKey&) = default;
};

struct FlowClassKeyHash {
  std::size_t operator()(const FlowClassKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};

/// One cached controller decision, sufficient to answer a table miss
/// without a packet-in. `reason` points at the controller's static
/// diagnostic literals, so cached verdicts are byte-identical to slow-path
/// ones. `installable` is kept for the controller's own negative-entry
/// cache, which must rebuild the micro-flow entry a fresh decision would
/// have installed.
struct CachedDecision {
  FlowAction action = FlowAction::kDrop;
  const char* reason = "";
  bool installable = false;
};

/// The per-switch decision cache (see file comment for the protocol).
class SwitchRuleCache {
 public:
  /// Flush-on-full capacity: at fleet scale each shard holds ~25k devices
  /// x ~8 standby flow classes ~= 200k live entries, comfortably under
  /// this cap, so steady state never flushes (~24 MB worst case).
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit SwitchRuleCache(std::size_t max_entries = kDefaultCapacity)
      : capacity_(max_entries == 0 ? kDefaultCapacity : max_entries) {}

  SwitchRuleCache(const SwitchRuleCache&) = delete;
  SwitchRuleCache& operator=(const SwitchRuleCache&) = delete;

  /// Binds the histogram that receives one invalidation fan-out lag
  /// sample (drain virtual time - enqueue virtual time, microseconds) per
  /// drained event. Call before traffic; may be shared across caches.
  void bind_lag_histogram(telemetry::Histogram* h) { lag_hist_ = h; }

  // --- owner thread ----------------------------------------------------

  /// Drains pending invalidations, then looks up `key`. The returned
  /// pointer is valid until the next mutating call on the owner thread.
  [[nodiscard]] const CachedDecision* lookup(const FlowClassKey& key,
                                             std::uint64_t now_us);

  /// Caches the decision computed for the `lookup` miss that preceded
  /// this call. Dropped (not inserted) when any invalidation was drained
  /// since that lookup — the decision may predate the rule change.
  void insert(const FlowClassKey& key, const CachedDecision& decision);

  // --- any thread (the controller, under its own lock) ------------------

  /// Queues removal of every entry whose src or dst MAC is `device`.
  void invalidate_device(const net::MacAddress& device, std::uint64_t now_us);

  /// Queues removal of every entry (rule-cache LRU eviction: the victim
  /// device is unknown to the controller, so everything must go).
  void invalidate_all(std::uint64_t now_us);

  // --- introspection (owner thread, or after writers quiesced) ----------

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t insertions() const { return insertions_; }
  /// Inserts dropped by the post-invalidation generation check.
  [[nodiscard]] std::uint64_t stale_inserts() const { return stale_inserts_; }
  /// Entries erased by drained device invalidations.
  [[nodiscard]] std::uint64_t invalidated_entries() const {
    return invalidated_entries_;
  }
  /// Whole-cache flushes (capacity overflow or invalidate_all).
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  /// Invalidation events enqueued by the controller (any thread).
  [[nodiscard]] std::uint64_t invalidations_enqueued() const {
    std::lock_guard<std::mutex> lock(pending_mu_);
    return enqueued_;
  }

 private:
  struct PendingInvalidation {
    std::uint64_t mac = 0;  // ignored when `all`
    std::uint64_t enqueued_us = 0;
    bool all = false;
  };

  void drain(std::uint64_t now_us);
  void apply_device_invalidation(std::uint64_t mac);
  void flush();

  const std::size_t capacity_;
  telemetry::Histogram* lag_hist_ = nullptr;

  // Owner-thread state.
  std::unordered_map<FlowClassKey, CachedDecision, FlowClassKeyHash> map_;
  /// MAC -> class keys currently cached that name it (src or dst); lets a
  /// device invalidation erase O(its classes) entries instead of scanning
  /// the whole cache. Cleared per-MAC on invalidation and wholesale on
  /// flush, so it cannot outgrow the entries it indexes.
  std::unordered_map<std::uint64_t, std::vector<FlowClassKey>> by_mac_;
  std::vector<PendingInvalidation> drain_scratch_;
  std::uint64_t drained_seq_ = 0;
  /// Drained-invalidation generation for the lookup/insert pairing check.
  std::uint64_t generation_ = 0;
  std::uint64_t generation_at_lookup_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t stale_inserts_ = 0;
  std::uint64_t invalidated_entries_ = 0;
  std::uint64_t flushes_ = 0;

  // Cross-thread invalidation queue.
  mutable std::mutex pending_mu_;
  std::vector<PendingInvalidation> pending_;
  std::uint64_t enqueued_ = 0;
  /// Bumped under `pending_mu_` after each enqueue; the owner compares it
  /// to `drained_seq_` with one acquire load to skip the lock when idle.
  std::atomic<std::uint64_t> pending_seq_{0};
};

}  // namespace iotsentinel::sdn
