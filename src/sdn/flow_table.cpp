#include "sdn/flow_table.hpp"

#include <algorithm>

#include "net/hash_mix.hpp"

namespace iotsentinel::sdn {
namespace {

std::optional<net::Ipv4Address> packet_v4(const std::optional<net::IpAddress>& ip) {
  if (ip && ip->is_v4()) return ip->v4();
  return std::nullopt;
}

// MicroFlowKey presence/proto flags (w0 bits 48..53).
constexpr std::uint64_t kFlagTcp = 1u << 0;
constexpr std::uint64_t kFlagUdp = 1u << 1;
constexpr std::uint64_t kFlagSrcIp = 1u << 2;
constexpr std::uint64_t kFlagDstIp = 1u << 3;
constexpr std::uint64_t kFlagSrcPort = 1u << 4;
constexpr std::uint64_t kFlagDstPort = 1u << 5;

/// The unique tier-1 key an entry pins, when it pins one: every field
/// exact, TCP or UDP. Such an entry can only ever win for packets with
/// exactly this key, so installing it invalidates one tier-1 slot instead
/// of sweeping the cache. The controller's micro-flow installs for TCP/UDP
/// traffic — the overwhelmingly common install — all qualify.
std::optional<MicroFlowKey> exact_key_of(const FlowMatch& match) {
  if (!match.src_mac || !match.dst_mac || !match.src_ip || !match.dst_ip ||
      !match.ip_proto || !match.src_port || !match.dst_port) {
    return std::nullopt;
  }
  if (*match.ip_proto != 6 && *match.ip_proto != 17) return std::nullopt;
  MicroFlowKey key;
  std::uint64_t flags = kFlagSrcIp | kFlagDstIp | kFlagSrcPort | kFlagDstPort;
  flags |= (*match.ip_proto == 6) ? kFlagTcp : kFlagUdp;
  key.w0 = match.src_mac->to_u64() | (flags << 48);
  key.w1 = match.dst_mac->to_u64() |
           (static_cast<std::uint64_t>(*match.src_port) << 48);
  key.w2 = static_cast<std::uint64_t>(match.src_ip->value()) |
           (static_cast<std::uint64_t>(match.dst_ip->value()) << 32);
  key.w3 = *match.dst_port;
  return key;
}

}  // namespace

bool FlowMatch::matches(const net::ParsedPacket& pkt) const {
  if (src_mac && pkt.src_mac != *src_mac) return false;
  if (dst_mac && pkt.dst_mac != *dst_mac) return false;
  if (src_ip) {
    auto v4 = packet_v4(pkt.src_ip);
    if (!v4 || *v4 != *src_ip) return false;
  }
  if (dst_ip) {
    auto v4 = packet_v4(pkt.dst_ip);
    if (!v4 || *v4 != *dst_ip) return false;
  }
  if (ip_proto) {
    const bool want_tcp = *ip_proto == 6;
    const bool want_udp = *ip_proto == 17;
    if (want_tcp && !pkt.is_tcp) return false;
    if (want_udp && !pkt.is_udp) return false;
    if (!want_tcp && !want_udp) return false;  // only TCP/UDP matchable
  }
  if (src_port && (!pkt.src_port || *pkt.src_port != *src_port)) return false;
  if (dst_port && (!pkt.dst_port || *pkt.dst_port != *dst_port)) return false;
  return true;
}

FlowMatch FlowMatch::micro_flow(const net::ParsedPacket& pkt) {
  FlowMatch m;
  m.src_mac = pkt.src_mac;
  m.dst_mac = pkt.dst_mac;
  m.src_ip = packet_v4(pkt.src_ip);
  m.dst_ip = packet_v4(pkt.dst_ip);
  if (pkt.is_tcp) m.ip_proto = 6;
  if (pkt.is_udp) m.ip_proto = 17;
  m.src_port = pkt.src_port;
  m.dst_port = pkt.dst_port;
  return m;
}

std::string FlowMatch::to_string() const {
  std::string out;
  auto field = [&out](const std::string& name, const std::string& value) {
    if (!out.empty()) out += ",";
    out += name + "=" + value;
  };
  if (src_mac) field("dl_src", src_mac->to_string());
  if (dst_mac) field("dl_dst", dst_mac->to_string());
  if (src_ip) field("nw_src", src_ip->to_string());
  if (dst_ip) field("nw_dst", dst_ip->to_string());
  if (ip_proto) field("nw_proto", std::to_string(*ip_proto));
  if (src_port) field("tp_src", std::to_string(*src_port));
  if (dst_port) field("tp_dst", std::to_string(*dst_port));
  if (out.empty()) out = "any";
  return out;
}

MicroFlowKey MicroFlowKey::of_packet(const net::ParsedPacket& pkt) {
  MicroFlowKey key;
  std::uint64_t flags = 0;
  if (pkt.is_tcp) flags |= kFlagTcp;
  if (pkt.is_udp) flags |= kFlagUdp;
  if (const auto v4 = packet_v4(pkt.src_ip)) {
    flags |= kFlagSrcIp;
    key.w2 |= static_cast<std::uint64_t>(v4->value());
  }
  if (const auto v4 = packet_v4(pkt.dst_ip)) {
    flags |= kFlagDstIp;
    key.w2 |= static_cast<std::uint64_t>(v4->value()) << 32;
  }
  if (pkt.src_port) {
    flags |= kFlagSrcPort;
    key.w1 |= static_cast<std::uint64_t>(*pkt.src_port) << 48;
  }
  if (pkt.dst_port) {
    flags |= kFlagDstPort;
    key.w3 = *pkt.dst_port;
  }
  key.w0 = pkt.src_mac.to_u64() | (flags << 48);
  key.w1 |= pkt.dst_mac.to_u64();
  return key;
}

MicroFlowKey MicroFlowKey::without_src_port() const {
  MicroFlowKey key = *this;
  key.w0 &= ~(kFlagSrcPort << 48);
  key.w1 &= 0xffffffffffffULL;  // drop the port value packed above dst MAC
  return key;
}

bool MicroFlowKey::covered_by(const FlowMatch& match) const {
  const std::uint64_t flags = w0 >> 48;
  if (match.src_mac && match.src_mac->to_u64() != (w0 & 0xffffffffffffULL)) {
    return false;
  }
  if (match.dst_mac && match.dst_mac->to_u64() != (w1 & 0xffffffffffffULL)) {
    return false;
  }
  if (match.src_ip && (!(flags & kFlagSrcIp) ||
                       match.src_ip->value() !=
                           static_cast<std::uint32_t>(w2 & 0xffffffffULL))) {
    return false;
  }
  if (match.dst_ip &&
      (!(flags & kFlagDstIp) ||
       match.dst_ip->value() != static_cast<std::uint32_t>(w2 >> 32))) {
    return false;
  }
  if (match.ip_proto) {
    const bool want_tcp = *match.ip_proto == 6;
    const bool want_udp = *match.ip_proto == 17;
    if (want_tcp && !(flags & kFlagTcp)) return false;
    if (want_udp && !(flags & kFlagUdp)) return false;
    if (!want_tcp && !want_udp) return false;
  }
  if (match.src_port &&
      (!(flags & kFlagSrcPort) ||
       *match.src_port != static_cast<std::uint16_t>(w1 >> 48))) {
    return false;
  }
  if (match.dst_port && (!(flags & kFlagDstPort) ||
                         *match.dst_port != static_cast<std::uint16_t>(w3))) {
    return false;
  }
  return true;
}

std::uint64_t MicroFlowKey::hash() const {
  std::uint64_t h = net::mix64(w0 + 0x9e3779b97f4a7c15ULL);
  h = net::mix64(h ^ w1);
  h = net::mix64(h ^ w2);
  return net::mix64(h ^ w3);
}

// --- FlowTable internals ----------------------------------------------------

std::uint32_t FlowTable::alloc_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void FlowTable::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.entry = FlowEntry{};  // free the match's heap state eagerly
  s.id = 0;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

void FlowTable::remove_entry(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const auto it = by_cookie_.find(s.entry.cookie);
  if (it != by_cookie_.end()) {
    auto& refs = it->second;
    for (auto ref = refs.begin(); ref != refs.end(); ++ref) {
      if (ref->first == slot && ref->second == s.id) {
        refs.erase(ref);
        break;
      }
    }
    if (refs.empty()) by_cookie_.erase(it);
  }
  release_slot(slot);
}

void FlowTable::compact_order() {
  // Freed slots have id 0; no install can interleave inside a removal
  // batch, so "freed" cannot be confused with "reused".
  std::erase_if(order_,
                [this](std::uint32_t idx) { return slots_[idx].id == 0; });
}

void FlowTable::heap_push(Deadline d) {
  heap_.push_back(d);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Deadline& a, const Deadline& b) {
                   return a.at_us > b.at_us;
                 });
}

FlowTable::Deadline FlowTable::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const Deadline& a, const Deadline& b) {
                  return a.at_us > b.at_us;
                });
  const Deadline d = heap_.back();
  heap_.pop_back();
  return d;
}

FlowTable::Bucket* FlowTable::tier1_find(const MicroFlowKey& key) {
  if (buckets_.empty()) return nullptr;
  const std::size_t mask = buckets_.size() - 1;
  std::size_t i = key.hash() & mask;
  for (;;) {
    Bucket& b = buckets_[i];
    if (b.state == 0) return nullptr;
    if (b.state == 1 && b.key == key) return &b;
    i = (i + 1) & mask;
  }
}

void FlowTable::tier1_grow() {
  // Double while under 50% live load, capped at kTier1MaxBuckets; a grow
  // triggered by tombstone buildup rehashes at the same capacity (purge).
  // Stale slots (backing entry gone) are dropped during the rehash for
  // free.
  std::size_t cap = buckets_.empty() ? 64 : buckets_.size();
  while ((t1_live_ + 1) * 2 > cap && cap < kTier1MaxBuckets) cap *= 2;
  std::vector<Bucket> old = std::move(buckets_);
  buckets_.assign(cap, Bucket{});
  t1_live_ = 0;
  t1_tombstones_ = 0;
  const std::size_t mask = cap - 1;
  for (const Bucket& b : old) {
    if (b.state != 1) continue;
    if (slots_[b.slot].id != b.entry_id) continue;  // stale
    std::size_t i = b.key.hash() & mask;
    while (buckets_[i].state != 0) i = (i + 1) & mask;
    buckets_[i] = b;
    ++t1_live_;
  }
  // At the cap with the live set still too dense (high tuple cardinality,
  // e.g. spoofed traffic matching a permanent wildcard): flush the cache.
  // Tier 1 is only a memo of tier-2 scans, so the cost is one re-scan per
  // live flow, and memory stays bounded no matter the traffic.
  if ((t1_live_ + 1) * 2 > cap) {
    std::fill(buckets_.begin(), buckets_.end(), Bucket{});
    t1_live_ = 0;
  }
}

void FlowTable::tier1_insert(const MicroFlowKey& key, std::uint32_t slot,
                             std::uint64_t id) {
  if (buckets_.empty() ||
      (t1_live_ + t1_tombstones_ + 1) * 4 > buckets_.size() * 3) {
    tier1_grow();
  }
  const std::size_t mask = buckets_.size() - 1;
  std::size_t i = key.hash() & mask;
  Bucket* tombstone = nullptr;
  for (;;) {
    Bucket& b = buckets_[i];
    if (b.state == 1 && b.key == key) {
      b.slot = slot;
      b.entry_id = id;
      return;
    }
    if (b.state == 2 && !tombstone) tombstone = &b;
    if (b.state == 0) {
      Bucket& dst = tombstone ? *tombstone : b;
      if (dst.state == 2) --t1_tombstones_;
      dst = Bucket{key, id, slot, 1};
      ++t1_live_;
      return;
    }
    i = (i + 1) & mask;
  }
}

void FlowTable::tier1_erase(Bucket& bucket) {
  bucket.state = 2;
  bucket.entry_id = 0;
  --t1_live_;
  ++t1_tombstones_;
}

void FlowTable::tier1_evict_covered(const FlowMatch& match,
                                    std::uint16_t priority) {
  if (t1_live_ == 0) return;
  for (Bucket& b : buckets_) {
    if (b.state != 1) continue;
    const Slot& winner = slots_[b.slot];
    if (winner.id != b.entry_id) {
      tier1_erase(b);  // stale anyway — reclaim while we are here
      continue;
    }
    // The new wildcard outranks the cached winner only with strictly
    // higher priority: on a tie the older (cached) entry keeps winning.
    if (winner.entry.priority < priority && b.key.covered_by(match)) {
      tier1_erase(b);
    }
  }
}

// --- FlowTable public API ---------------------------------------------------

std::uint64_t FlowTable::install(FlowEntry entry, std::uint64_t now_us) {
  entry.installed_us = now_us;
  entry.last_matched_us = now_us;
  const std::uint64_t id = next_id_++;
  const std::uint16_t priority = entry.priority;
  const std::uint64_t timeout_us = entry.idle_timeout_us;
  const std::uint64_t cookie = entry.cookie;

  const std::uint32_t slot = alloc_slot();
  slots_[slot].entry = std::move(entry);
  slots_[slot].id = id;
  ++live_;

  // Tier-2 position: after every entry with priority >= ours, so equal
  // priorities keep insertion order and earlier rules win ties (OpenFlow
  // leaves ties undefined; we pin them for determinism — both tiers).
  const auto pos = std::partition_point(
      order_.begin(), order_.end(), [&](std::uint32_t idx) {
        return slots_[idx].entry.priority >= priority;
      });
  order_.insert(pos, slot);

  if (timeout_us != 0) heap_push({now_us + timeout_us, id, slot});
  by_cookie_[cookie].emplace_back(slot, id);

  // Tier-1 coherence: an exact entry can only change the verdict of its
  // own tuple; anything wilder evicts every cached winner it outranks.
  const FlowMatch& match = slots_[slot].entry.match;
  if (const auto key = exact_key_of(match)) {
    if (Bucket* b = tier1_find(*key)) tier1_erase(*b);
  } else {
    tier1_evict_covered(match, priority);
  }
  return id;
}

std::optional<FlowAction> FlowTable::tier1_probe(const MicroFlowKey& key,
                                                 const net::ParsedPacket& pkt,
                                                 std::uint64_t now_us) {
  // Tier 1: one probe, allocation-free.
  if (Bucket* b = tier1_find(key)) {
    Slot& s = slots_[b->slot];
    if (s.id == b->entry_id) {
      ++s.entry.packets;
      s.entry.bytes += pkt.wire_size;
      s.entry.last_matched_us = now_us;
      ++matched_;
      ++tier1_hits_;
      return s.entry.action;
    }
    tier1_erase(*b);  // backing entry expired or was removed
  }
  return std::nullopt;
}

std::optional<FlowAction> FlowTable::process_tier1(const net::ParsedPacket& pkt,
                                                   std::uint64_t now_us) {
  return tier1_probe(MicroFlowKey::of_packet(pkt), pkt, now_us);
}

std::optional<FlowAction> FlowTable::process(const net::ParsedPacket& pkt,
                                             std::uint64_t now_us) {
  const MicroFlowKey key = MicroFlowKey::of_packet(pkt);
  if (const auto action = tier1_probe(key, pkt, now_us)) return action;

  // Tier 2: the priority-ordered scan, paid once per micro-flow.
  ++tier2_scans_;
  for (const std::uint32_t idx : order_) {
    Slot& s = slots_[idx];
    if (s.entry.match.matches(pkt)) {
      ++s.entry.packets;
      s.entry.bytes += pkt.wire_size;
      s.entry.last_matched_us = now_us;
      ++matched_;
      tier1_insert(key, idx, s.id);
      return s.entry.action;
    }
  }
  ++misses_;
  return std::nullopt;
}

std::size_t FlowTable::expire(std::uint64_t now_us) {
  std::size_t removed = 0;
  while (!heap_.empty() && heap_.front().at_us <= now_us) {
    const Deadline d = heap_pop();
    const Slot& s = slots_[d.slot];
    if (s.id != d.id) continue;  // entry already removed; stale record
    const std::uint64_t deadline =
        s.entry.last_matched_us + s.entry.idle_timeout_us;
    if (deadline > now_us) {
      // Matched since the record was queued — re-arm at the new deadline.
      heap_push({deadline, d.id, d.slot});
      continue;
    }
    remove_entry(d.slot);
    ++removed;
  }
  if (removed > 0) compact_order();
  return removed;
}

std::size_t FlowTable::remove_by_cookie(std::uint64_t cookie) {
  const auto it = by_cookie_.find(cookie);
  if (it == by_cookie_.end()) return 0;
  const auto victims = std::move(it->second);
  by_cookie_.erase(it);
  std::size_t removed = 0;
  for (const auto& [slot, id] : victims) {
    if (slots_[slot].id != id) continue;  // index is maintained eagerly
    release_slot(slot);
    ++removed;
  }
  if (removed > 0) compact_order();
  return removed;
}

std::vector<FlowEntry> FlowTable::entries() const {
  std::vector<FlowEntry> out;
  out.reserve(order_.size());
  for (const std::uint32_t idx : order_) out.push_back(slots_[idx].entry);
  return out;
}

std::size_t FlowTable::memory_bytes() const {
  std::size_t bytes = sizeof(FlowTable);
  bytes += slots_.capacity() * sizeof(Slot);
  bytes += order_.capacity() * sizeof(std::uint32_t);
  bytes += buckets_.capacity() * sizeof(Bucket);
  bytes += heap_.capacity() * sizeof(Deadline);
  bytes += by_cookie_.bucket_count() * sizeof(void*);
  for (const auto& [cookie, refs] : by_cookie_) {
    bytes += sizeof(cookie) + sizeof(refs) + 2 * sizeof(void*);  // map node
    bytes += refs.capacity() * sizeof(refs[0]);
  }
  return bytes;
}

// --- LinearFlowTable (reference implementation, unchanged semantics) --------

std::uint64_t LinearFlowTable::install(FlowEntry entry, std::uint64_t now_us) {
  entry.installed_us = now_us;
  entry.last_matched_us = now_us;
  const std::uint64_t id = next_id_++;
  // Insert keeping descending priority; equal priorities keep insertion
  // order so earlier rules win ties.
  auto pos = std::find_if(entries_.begin(), entries_.end(),
                          [&](const FlowEntry& e) {
                            return e.priority < entry.priority;
                          });
  entries_.insert(pos, std::move(entry));
  return id;
}

std::optional<FlowAction> LinearFlowTable::process(const net::ParsedPacket& pkt,
                                                   std::uint64_t now_us) {
  for (auto& entry : entries_) {
    if (entry.match.matches(pkt)) {
      ++entry.packets;
      entry.bytes += pkt.wire_size;
      entry.last_matched_us = now_us;
      ++matched_;
      return entry.action;
    }
  }
  ++misses_;
  return std::nullopt;
}

std::size_t LinearFlowTable::expire(std::uint64_t now_us) {
  const std::size_t before = entries_.size();
  std::erase_if(entries_, [now_us](const FlowEntry& e) {
    return e.idle_timeout_us != 0 &&
           now_us - e.last_matched_us >= e.idle_timeout_us;
  });
  return before - entries_.size();
}

std::size_t LinearFlowTable::remove_by_cookie(std::uint64_t cookie) {
  const std::size_t before = entries_.size();
  std::erase_if(entries_,
                [cookie](const FlowEntry& e) { return e.cookie == cookie; });
  return before - entries_.size();
}

}  // namespace iotsentinel::sdn
