#include "sdn/flow_table.hpp"

#include <algorithm>

namespace iotsentinel::sdn {
namespace {

std::optional<net::Ipv4Address> packet_v4(const std::optional<net::IpAddress>& ip) {
  if (ip && ip->is_v4()) return ip->v4();
  return std::nullopt;
}

}  // namespace

bool FlowMatch::matches(const net::ParsedPacket& pkt) const {
  if (src_mac && pkt.src_mac != *src_mac) return false;
  if (dst_mac && pkt.dst_mac != *dst_mac) return false;
  if (src_ip) {
    auto v4 = packet_v4(pkt.src_ip);
    if (!v4 || *v4 != *src_ip) return false;
  }
  if (dst_ip) {
    auto v4 = packet_v4(pkt.dst_ip);
    if (!v4 || *v4 != *dst_ip) return false;
  }
  if (ip_proto) {
    const bool want_tcp = *ip_proto == 6;
    const bool want_udp = *ip_proto == 17;
    if (want_tcp && !pkt.is_tcp) return false;
    if (want_udp && !pkt.is_udp) return false;
    if (!want_tcp && !want_udp) return false;  // only TCP/UDP matchable
  }
  if (src_port && (!pkt.src_port || *pkt.src_port != *src_port)) return false;
  if (dst_port && (!pkt.dst_port || *pkt.dst_port != *dst_port)) return false;
  return true;
}

FlowMatch FlowMatch::micro_flow(const net::ParsedPacket& pkt) {
  FlowMatch m;
  m.src_mac = pkt.src_mac;
  m.dst_mac = pkt.dst_mac;
  m.src_ip = packet_v4(pkt.src_ip);
  m.dst_ip = packet_v4(pkt.dst_ip);
  if (pkt.is_tcp) m.ip_proto = 6;
  if (pkt.is_udp) m.ip_proto = 17;
  m.src_port = pkt.src_port;
  m.dst_port = pkt.dst_port;
  return m;
}

std::string FlowMatch::to_string() const {
  std::string out;
  auto field = [&out](const std::string& name, const std::string& value) {
    if (!out.empty()) out += ",";
    out += name + "=" + value;
  };
  if (src_mac) field("dl_src", src_mac->to_string());
  if (dst_mac) field("dl_dst", dst_mac->to_string());
  if (src_ip) field("nw_src", src_ip->to_string());
  if (dst_ip) field("nw_dst", dst_ip->to_string());
  if (ip_proto) field("nw_proto", std::to_string(*ip_proto));
  if (src_port) field("tp_src", std::to_string(*src_port));
  if (dst_port) field("tp_dst", std::to_string(*dst_port));
  if (out.empty()) out = "any";
  return out;
}

std::uint64_t FlowTable::install(FlowEntry entry, std::uint64_t now_us) {
  entry.installed_us = now_us;
  entry.last_matched_us = now_us;
  const std::uint64_t id = next_id_++;
  // Insert keeping descending priority; equal priorities keep insertion
  // order so earlier rules win ties (OpenFlow leaves ties undefined; we
  // pin them for determinism).
  auto pos = std::find_if(entries_.begin(), entries_.end(),
                          [&](const FlowEntry& e) {
                            return e.priority < entry.priority;
                          });
  entries_.insert(pos, std::move(entry));
  return id;
}

std::optional<FlowAction> FlowTable::process(const net::ParsedPacket& pkt,
                                             std::uint64_t now_us) {
  for (auto& entry : entries_) {
    if (entry.match.matches(pkt)) {
      ++entry.packets;
      entry.bytes += pkt.wire_size;
      entry.last_matched_us = now_us;
      ++matched_;
      return entry.action;
    }
  }
  ++misses_;
  return std::nullopt;
}

std::size_t FlowTable::expire(std::uint64_t now_us) {
  const std::size_t before = entries_.size();
  std::erase_if(entries_, [now_us](const FlowEntry& e) {
    return e.idle_timeout_us != 0 &&
           now_us - e.last_matched_us >= e.idle_timeout_us;
  });
  return before - entries_.size();
}

std::size_t FlowTable::remove_by_cookie(std::uint64_t cookie) {
  const std::size_t before = entries_.size();
  std::erase_if(entries_,
                [cookie](const FlowEntry& e) { return e.cookie == cookie; });
  return before - entries_.size();
}

}  // namespace iotsentinel::sdn
