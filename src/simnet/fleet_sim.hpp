// Streaming fleet simulator: the event source for million-device runs.
//
// FleetSim turns a roster into a single time-ordered stream of frames
// from N concurrently-active devices, without materialising any trace.
// Each device runs an independent lifecycle state machine
//
//   join -> setup burst -> standby cycles -> depart -> (downtime) -> rejoin
//
// backed by one resumable DeviceTraceStream per phase; the per-phase
// parameters (cycle count, gaps, downtime) come from the roster's
// `fleet` directives. The simulator merges the per-device streams with
// a min-heap keyed on (next timestamp, device id), so next() yields the
// fleet's frames in global time order at O(log n) per frame and O(1)
// memory per device.
//
// Determinism: every draw a device makes comes from its own RNG, seeded
// from (config.seed, device_id) via the shared SplitMix64 finalizer —
// never from a shared generator. Two consequences, both pinned by
// tests/test_fleet_sim.cpp:
//   * the event stream is bit-identical however it is pulled, and
//   * sharding is invariant: shard k of n simulates exactly the devices
//     with id % n == k, and the sorted union over any shard count
//     equals the unsharded stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "simnet/roster.hpp"
#include "simnet/traffic_generator.hpp"

namespace iotsentinel::sim {

/// Fleet-level simulation knobs.
struct FleetConfig {
  /// Master seed; device d derives its private RNG from (seed, d).
  std::uint64_t seed = 1;
  /// Shared network parameters. `generator.start_time_us` is the fleet
  /// epoch; `generator.trailing_heartbeats` applies to every setup burst.
  GeneratorConfig generator;
  /// Simulation horizon: no event is emitted past this virtual time, and
  /// devices whose next phase would start beyond it retire.
  std::uint64_t sim_end_us = 86'400'000'000ULL;  // one simulated day
  /// Initial joins are staggered uniformly over this window so a million
  /// devices do not dial in on the same microsecond.
  std::uint64_t join_window_us = 3'600'000'000ULL;  // one hour
  /// Shard selector: this instance simulates exactly the devices with
  /// `device_id % num_shards == shard`. Defaults to the whole fleet.
  std::uint32_t shard = 0;
  std::uint32_t num_shards = 1;
};

/// One emitted frame, attributed to its device.
struct FleetEvent {
  std::uint32_t device_id = 0;
  TimedFrame frame;
};

class FleetSim {
 public:
  /// Simulates `num_devices` devices drawn from `roster` (which must
  /// outlive the simulator). Device d's type is the roster expanded by
  /// per-type `count` and cycled: with counts {A:2, B:1} devices are
  /// A,A,B,A,A,B,... — so any fleet size preserves the roster's
  /// same-type multiplicity ratios.
  FleetSim(const Roster& roster, std::size_t num_devices,
           FleetConfig config = {});

  /// The next frame of the merged fleet stream in (timestamp, device_id)
  /// order, or nullopt when every device has retired past the horizon.
  [[nodiscard]] std::optional<FleetEvent> next();

  /// Fleet size across all shards.
  [[nodiscard]] std::size_t num_devices() const { return num_devices_; }
  /// Devices this shard simulates.
  [[nodiscard]] std::size_t local_devices() const { return devices_.size(); }
  /// Local devices that have not yet retired past the horizon.
  [[nodiscard]] std::size_t active_devices() const { return active_; }
  /// Frames emitted so far by this shard.
  [[nodiscard]] std::uint64_t events_emitted() const { return emitted_; }

  /// Estimate of the simulator's heap footprint: per-device state plus
  /// every buffered frame. O(local_devices) to compute; the memory
  /// plateau test asserts this does not grow with simulated time.
  [[nodiscard]] std::size_t approx_memory_bytes() const;

  /// The roster type index device `device_id` is an instance of (the
  /// count-weighted round-robin described on the constructor).
  static std::size_t type_index_of(const Roster& roster,
                                   std::uint32_t device_id);

 private:
  enum class Phase { kSetup, kStandby };

  struct Device {
    std::uint32_t id = 0;
    const RosterEntry* entry = nullptr;
    net::MacAddress mac;
    net::Ipv4Address ip;
    ml::Rng rng{0};
    Phase phase = Phase::kSetup;
    std::optional<DeviceTraceStream> stream;
    std::optional<TimedFrame> pending;
  };

  /// Pulls the device's next frame into `pending`, crossing phase
  /// boundaries as needed; retires the device at the horizon.
  void refill(Device& dev);
  void retire(Device& dev);

  /// Min-heap entry: the device's next event.
  struct HeapItem {
    std::uint64_t timestamp_us;
    std::uint32_t device_id;
    friend bool operator>(const HeapItem& a, const HeapItem& b) {
      if (a.timestamp_us != b.timestamp_us) {
        return a.timestamp_us > b.timestamp_us;
      }
      return a.device_id > b.device_id;
    }
  };

  FleetConfig config_;
  std::size_t num_devices_;
  std::vector<Device> devices_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::size_t active_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace iotsentinel::sim
