#include "simnet/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/gateway_pool.hpp"
#include "net/builder.hpp"
#include "net/crc32.hpp"
#include "net/hash_mix.hpp"
#include "sdn/enforcement_audit.hpp"
#include "simnet/corpus.hpp"

namespace iotsentinel::sim {
namespace {

using ScnKind = ScenarioError::Kind;

// ------------------------------------------------------------- tokenizing

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

bool parse_u64(const std::string& token, std::uint64_t& out) {
  if (token.empty() || token[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

bool parse_double(const std::string& token, double& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(token.c_str(), &end);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  out = value;
  return true;
}

/// Seconds (possibly fractional) to virtual microseconds.
bool parse_seconds(const std::string& token, std::uint64_t& out_us) {
  double seconds = 0.0;
  if (!parse_double(token, seconds) || seconds < 0.0) return false;
  out_us = static_cast<std::uint64_t>(seconds * 1e6 + 0.5);
  return true;
}

bool parse_prob(const std::string& token, double& out) {
  return parse_double(token, out) && out >= 0.0 && out <= 1.0;
}

bool parse_level(const std::string& token, sdn::IsolationLevel& out) {
  if (token == "strict") {
    out = sdn::IsolationLevel::kStrict;
  } else if (token == "restricted") {
    out = sdn::IsolationLevel::kRestricted;
  } else if (token == "trusted") {
    out = sdn::IsolationLevel::kTrusted;
  } else {
    return false;
  }
  return true;
}

const char* level_name(sdn::IsolationLevel level) {
  switch (level) {
    case sdn::IsolationLevel::kStrict: return "strict";
    case sdn::IsolationLevel::kRestricted: return "restricted";
    case sdn::IsolationLevel::kTrusted: return "trusted";
  }
  return "?";
}

}  // namespace

const char* to_string(ScenarioError::Kind kind) {
  switch (kind) {
    case ScnKind::kNone: return "none";
    case ScnKind::kIoError: return "io-error";
    case ScnKind::kBadHeader: return "bad-header";
    case ScnKind::kMalformedLine: return "malformed-line";
    case ScnKind::kUnknownDirective: return "unknown-directive";
    case ScnKind::kUnknownActor: return "unknown-actor";
    case ScnKind::kDuplicateActor: return "duplicate-actor";
    case ScnKind::kOutOfRange: return "out-of-range";
    case ScnKind::kMissingField: return "missing-field";
    case ScnKind::kUnknownType: return "unknown-type";
  }
  return "?";
}

std::string describe(const ScenarioError& error) {
  std::ostringstream os;
  os << to_string(error.kind);
  if (error.line > 0) os << " at line " << error.line;
  os << ": " << error.detail;
  return os.str();
}

// ---------------------------------------------------------------- parsing

ScenarioParseResult parse_scenario(std::string_view text) {
  Scenario scenario;
  bool saw_header = false;
  bool saw_name = false;
  /// Actor references to validate once every join is known.
  struct ActorRef {
    std::string name;
    std::size_t line;
  };
  std::vector<ActorRef> deferred_refs;

  const auto err = [](ScnKind kind, std::size_t line, std::string detail) {
    return ScenarioParseResult(ScenarioError{kind, line, std::move(detail)});
  };

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;

    if (!saw_header) {
      if (tok.size() != 2 || tok[0] != "scenario" || tok[1] != "v1") {
        return err(ScnKind::kBadHeader, line_no,
                   "expected `scenario v1` header, got `" + tok[0] + "`");
      }
      saw_header = true;
      continue;
    }

    const std::string& d = tok[0];
    if (d == "name") {
      if (tok.size() != 2) {
        return err(ScnKind::kMalformedLine, line_no, "usage: name <slug>");
      }
      scenario.name = tok[1];
      saw_name = true;
    } else if (d == "seed") {
      if (tok.size() != 2 || !parse_u64(tok[1], scenario.seed)) {
        return err(ScnKind::kMalformedLine, line_no, "usage: seed <u64>");
      }
    } else if (d == "join") {
      // join <actor> <type> at <s> [mac <actor>]
      ScenarioJoin join;
      if (tok.size() != 5 && tok.size() != 7) {
        return err(ScnKind::kMalformedLine, line_no,
                   "usage: join <actor> <type> at <s> [mac <actor>]");
      }
      join.actor = tok[1];
      join.type = tok[2];
      if (tok[3] != "at" || !parse_seconds(tok[4], join.at_us)) {
        return err(ScnKind::kMalformedLine, line_no,
                   "usage: join <actor> <type> at <s> [mac <actor>]");
      }
      for (const ScenarioJoin& prior : scenario.joins) {
        if (prior.actor == join.actor) {
          return err(ScnKind::kDuplicateActor, line_no,
                     "actor `" + join.actor + "` already joined");
        }
      }
      if (tok.size() == 7) {
        if (tok[5] != "mac") {
          return err(ScnKind::kMalformedLine, line_no,
                     "expected `mac <actor>`, got `" + tok[5] + "`");
        }
        join.spoof_actor = tok[6];
        // The spoof target's MAC must already exist: require an earlier
        // join (this also rules out self-spoofing).
        bool found = false;
        for (const ScenarioJoin& prior : scenario.joins) {
          found = found || prior.actor == join.spoof_actor;
        }
        if (!found) {
          return err(ScnKind::kUnknownActor, line_no,
                     "mac target `" + join.spoof_actor +
                         "` has no earlier join");
        }
      }
      scenario.joins.push_back(std::move(join));
    } else if (d == "standby") {
      // standby <actor> cycles <n> at <s>
      ScenarioStandby standby;
      std::uint64_t cycles = 0;
      if (tok.size() != 6 || tok[2] != "cycles" || !parse_u64(tok[3], cycles) ||
          tok[4] != "at" || !parse_seconds(tok[5], standby.at_us)) {
        return err(ScnKind::kMalformedLine, line_no,
                   "usage: standby <actor> cycles <n> at <s>");
      }
      if (cycles == 0 || cycles > 1000) {
        return err(ScnKind::kOutOfRange, line_no,
                   "cycles must be within [1, 1000], got " + tok[3]);
      }
      standby.actor = tok[1];
      standby.cycles = static_cast<std::uint32_t>(cycles);
      deferred_refs.push_back({standby.actor, line_no});
      scenario.standbys.push_back(std::move(standby));
    } else if (d == "expire") {
      // expire at <s> idle <s>
      ScenarioExpire expire;
      if (tok.size() != 5 || tok[1] != "at" ||
          !parse_seconds(tok[2], expire.at_us) || tok[3] != "idle" ||
          !parse_seconds(tok[4], expire.idle_us)) {
        return err(ScnKind::kMalformedLine, line_no,
                   "usage: expire at <s> idle <s>");
      }
      scenario.expires.push_back(expire);
    } else if (d == "flood") {
      // flood at <s> frames <n> kind random|spray [gap-us <n>]
      ScenarioFlood flood;
      std::uint64_t frames = 0;
      if (tok.size() < 7 || tok[1] != "at" ||
          !parse_seconds(tok[2], flood.at_us) || tok[3] != "frames" ||
          !parse_u64(tok[4], frames) || tok[5] != "kind") {
        return err(ScnKind::kMalformedLine, line_no,
                   "usage: flood at <s> frames <n> kind random|spray "
                   "[gap-us <n>]");
      }
      if (frames == 0 || frames > 10'000'000) {
        return err(ScnKind::kOutOfRange, line_no,
                   "frames must be within [1, 1e7], got " + tok[4]);
      }
      flood.frames = static_cast<std::uint32_t>(frames);
      if (tok[6] == "random") {
        flood.kind = ScenarioFlood::Kind::kRandom;
      } else if (tok[6] == "spray") {
        flood.kind = ScenarioFlood::Kind::kSpray;
      } else {
        return err(ScnKind::kOutOfRange, line_no,
                   "flood kind must be random|spray, got `" + tok[6] + "`");
      }
      if (tok.size() == 9) {
        if (tok[7] != "gap-us" || !parse_u64(tok[8], flood.gap_us) ||
            flood.gap_us == 0) {
          return err(ScnKind::kMalformedLine, line_no,
                     "expected `gap-us <n>` (n >= 1)");
        }
      } else if (tok.size() != 7) {
        return err(ScnKind::kMalformedLine, line_no,
                   "usage: flood at <s> frames <n> kind random|spray "
                   "[gap-us <n>]");
      }
      scenario.floods.push_back(flood);
    } else if (d == "fault") {
      // fault from <s> to <s> [drop p] [dup p] [reorder p] [corrupt p]
      //   [depth n] [actor name]
      ScenarioFaultWindow window;
      if (tok.size() < 5 || tok[1] != "from" ||
          !parse_seconds(tok[2], window.from_us) || tok[3] != "to" ||
          !parse_seconds(tok[4], window.to_us) ||
          window.to_us <= window.from_us) {
        return err(ScnKind::kMalformedLine, line_no,
                   "usage: fault from <s> to <s> [drop p] [dup p] "
                   "[reorder p] [corrupt p] [depth n] [actor name]");
      }
      for (std::size_t i = 5; i + 1 < tok.size(); i += 2) {
        const std::string& key = tok[i];
        const std::string& value = tok[i + 1];
        bool ok = true;
        if (key == "drop") {
          ok = parse_prob(value, window.faults.drop_prob);
        } else if (key == "dup") {
          ok = parse_prob(value, window.faults.duplicate_prob);
        } else if (key == "reorder") {
          ok = parse_prob(value, window.faults.reorder_prob);
        } else if (key == "corrupt") {
          ok = parse_prob(value, window.faults.corrupt_prob);
        } else if (key == "depth") {
          std::uint64_t depth = 0;
          ok = parse_u64(value, depth) && depth >= 1 && depth <= 1024;
          window.faults.reorder_depth = static_cast<std::size_t>(depth);
        } else if (key == "actor") {
          window.actor = value;
          deferred_refs.push_back({value, line_no});
        } else {
          return err(ScnKind::kUnknownDirective, line_no,
                     "unknown fault knob `" + key + "`");
        }
        if (!ok) {
          return err(ScnKind::kOutOfRange, line_no,
                     "bad value for fault knob `" + key + "`: " + value);
        }
      }
      if ((tok.size() - 5) % 2 != 0) {
        return err(ScnKind::kMalformedLine, line_no,
                   "fault knobs must come in `key value` pairs");
      }
      scenario.faults.push_back(std::move(window));
    } else if (d == "expect") {
      // expect <actor> type <T> | new-type | level <L>
      ScenarioExpect expect;
      if (tok.size() < 3) {
        return err(ScnKind::kMalformedLine, line_no,
                   "usage: expect <actor> type <T> | new-type | level <L>");
      }
      expect.actor = tok[1];
      deferred_refs.push_back({expect.actor, line_no});
      if (tok[2] == "type" && tok.size() == 4) {
        expect.kind = ScenarioExpect::Kind::kType;
        expect.type = tok[3];
      } else if (tok[2] == "new-type" && tok.size() == 3) {
        expect.kind = ScenarioExpect::Kind::kNewType;
      } else if (tok[2] == "level" && tok.size() == 4) {
        expect.kind = ScenarioExpect::Kind::kLevel;
        if (!parse_level(tok[3], expect.level)) {
          return err(ScnKind::kOutOfRange, line_no,
                     "level must be strict|restricted|trusted, got `" +
                         tok[3] + "`");
        }
      } else {
        return err(ScnKind::kMalformedLine, line_no,
                   "usage: expect <actor> type <T> | new-type | level <L>");
      }
      scenario.expects.push_back(std::move(expect));
    } else {
      return err(ScnKind::kUnknownDirective, line_no,
                 "unknown directive `" + d + "`");
    }
  }

  if (!saw_header) {
    return ScenarioParseResult(
        ScenarioError{ScnKind::kBadHeader, 0, "empty input (no header)"});
  }
  if (!saw_name) {
    return ScenarioParseResult(
        ScenarioError{ScnKind::kMissingField, 0, "missing `name` directive"});
  }
  if (scenario.joins.empty()) {
    return ScenarioParseResult(
        ScenarioError{ScnKind::kMissingField, 0, "scenario has no `join`"});
  }
  for (const auto& ref : deferred_refs) {
    bool found = false;
    for (const ScenarioJoin& join : scenario.joins) {
      found = found || join.actor == ref.name;
    }
    if (!found) {
      return ScenarioParseResult(ScenarioError{
          ScnKind::kUnknownActor, ref.line,
          "actor `" + ref.name + "` is never joined"});
    }
  }
  return ScenarioParseResult(std::move(scenario));
}

ScenarioParseResult load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ScenarioParseResult(ScenarioError{
        ScnKind::kIoError, 0, "cannot open `" + path + "`"});
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return ScenarioParseResult(ScenarioError{
        ScnKind::kIoError, 0, "read failure on `" + path + "`"});
  }
  return parse_scenario(buffer.str());
}

// -------------------------------------------------------------- compiling

namespace {

net::MacAddress frame_src_mac(const net::Bytes& frame) {
  if (frame.size() < 14) return net::MacAddress{};
  return net::MacAddress(
      {frame[6], frame[7], frame[8], frame[9], frame[10], frame[11]});
}

net::Ipv4Address actor_ip(std::size_t index) {
  return net::Ipv4Address::of(
      192, 168, static_cast<std::uint8_t>(1 + index / 200),
      static_cast<std::uint8_t>(40 + index % 200));
}

/// Flood-frame factory. Deterministic per (seed, flood index).
void make_flood_frames(const ScenarioFlood& flood, std::uint64_t seed,
                       std::vector<TimedFrame>& out) {
  ml::Rng rng(seed);
  for (std::uint32_t k = 0; k < flood.frames; ++k) {
    TimedFrame tf;
    tf.timestamp_us = flood.at_us + std::uint64_t{k} * flood.gap_us;
    if (flood.kind == ScenarioFlood::Kind::kRandom) {
      // Arbitrary bytes: roughly half carry a multicast/zero source and
      // are counted malformed; the rest parse as junk ethertypes.
      const std::size_t len = 14 + rng.index(107);
      tf.frame.resize(len);
      for (std::size_t i = 0; i < len; ++i) {
        tf.frame[i] = static_cast<std::uint8_t>(rng.next_u64());
      }
    } else {
      // Well-formed ARP requests from never-seen locally-administered
      // MACs: every frame mints a phantom device in the extractor, the
      // state-bloat attack the admission cap bounds.
      const net::MacAddress src = net::MacAddress::of(
          0x06, static_cast<std::uint8_t>(rng.next_u64()),
          static_cast<std::uint8_t>(rng.next_u64()),
          static_cast<std::uint8_t>(rng.next_u64()),
          static_cast<std::uint8_t>(rng.next_u64()),
          static_cast<std::uint8_t>(rng.next_u64()));
      const net::Ipv4Address ip = net::Ipv4Address::of(
          10, static_cast<std::uint8_t>(rng.next_u64()),
          static_cast<std::uint8_t>(rng.next_u64()),
          static_cast<std::uint8_t>(1 + rng.index(250)));
      tf.frame = net::build_arp_request(src, ip,
                                        net::Ipv4Address::of(192, 168, 0, 1));
    }
    out.push_back(std::move(tf));
  }
}

}  // namespace

std::optional<CompiledScenario> compile_scenario(const Scenario& scenario,
                                                 const Roster& roster,
                                                 ScenarioError* error) {
  const auto fail = [&](ScnKind kind, std::string detail) {
    if (error) *error = ScenarioError{kind, 0, std::move(detail)};
  };
  if (error) *error = ScenarioError{};

  CompiledScenario compiled;
  compiled.name = scenario.name;
  compiled.seed = scenario.seed;
  compiled.joins = scenario.joins;
  compiled.expects = scenario.expects;

  std::unordered_map<std::string, std::size_t> actor_index;
  for (std::size_t i = 0; i < scenario.joins.size(); ++i) {
    actor_index.emplace(scenario.joins[i].actor, i);
  }

  // Resolve per-join profiles and wire MACs (spoofs borrow the target's).
  std::vector<const RosterEntry*> entries(scenario.joins.size(), nullptr);
  for (std::size_t i = 0; i < scenario.joins.size(); ++i) {
    const ScenarioJoin& join = scenario.joins[i];
    const RosterEntry* entry = roster.find(join.type);
    if (!entry) {
      fail(ScnKind::kUnknownType,
           "join `" + join.actor + "`: type `" + join.type +
               "` is not in the roster");
      return std::nullopt;
    }
    entries[i] = entry;
    net::MacAddress mac;
    if (join.spoof_actor.empty()) {
      mac = TrafficGenerator::mint_mac(entry->profile,
                                       static_cast<std::uint32_t>(i));
    } else {
      const auto it = actor_index.find(join.spoof_actor);
      if (it == actor_index.end() || it->second >= i) {
        fail(ScnKind::kUnknownActor,
             "join `" + join.actor + "`: mac target `" + join.spoof_actor +
                 "` has no earlier join");
        return std::nullopt;
      }
      mac = compiled.actor_macs[it->second];
    }
    compiled.actor_macs.push_back(mac);
  }

  // Materialise every frame. Insertion order (joins, standbys, floods)
  // breaks timestamp ties deterministically via the stable sort below.
  std::vector<TimedFrame> frames;
  for (std::size_t i = 0; i < scenario.joins.size(); ++i) {
    GeneratorConfig gcfg;
    gcfg.start_time_us = scenario.joins[i].at_us;
    DeviceTraceStream stream(
        gcfg, entries[i]->profile, compiled.actor_macs[i], actor_ip(i),
        DeviceTraceStream::Mode::kSetup, 0, 0,
        net::mix64(scenario.seed ^ (0x1057ULL + i)));
    while (auto tf = stream.next()) frames.push_back(std::move(*tf));
  }
  for (std::size_t s = 0; s < scenario.standbys.size(); ++s) {
    const ScenarioStandby& standby = scenario.standbys[s];
    const std::size_t i = actor_index.at(standby.actor);
    GeneratorConfig gcfg;
    gcfg.start_time_us = standby.at_us;
    const auto gap_us =
        static_cast<std::uint64_t>(entries[i]->fleet.cycle_gap_s * 1e6);
    DeviceTraceStream stream(
        gcfg, entries[i]->profile, compiled.actor_macs[i], actor_ip(i),
        DeviceTraceStream::Mode::kStandby, standby.cycles,
        std::max<std::uint64_t>(gap_us, 1),
        net::mix64(scenario.seed ^ (0x57a4ULL + 0x100 * i + 7 * s)));
    while (auto tf = stream.next()) frames.push_back(std::move(*tf));
  }
  for (std::size_t f = 0; f < scenario.floods.size(); ++f) {
    make_flood_frames(scenario.floods[f],
                      net::mix64(scenario.seed ^ (0xF100DULL + 31 * f)),
                      frames);
  }
  std::stable_sort(frames.begin(), frames.end(),
                   [](const TimedFrame& a, const TimedFrame& b) {
                     return a.timestamp_us < b.timestamp_us;
                   });

  // Lower to items and splice the departure sweeps in at their times.
  compiled.items.reserve(frames.size() + scenario.expires.size());
  for (TimedFrame& tf : frames) {
    ScenarioItem item;
    item.kind = ScenarioItem::Kind::kFrame;
    item.frame = std::move(tf);
    compiled.items.push_back(std::move(item));
  }
  for (const ScenarioExpire& expire : scenario.expires) {
    ScenarioItem item;
    item.kind = ScenarioItem::Kind::kExpire;
    item.frame.timestamp_us = expire.at_us;
    item.idle_us = expire.idle_us;
    const auto at = std::upper_bound(
        compiled.items.begin(), compiled.items.end(), expire.at_us,
        [](std::uint64_t t, const ScenarioItem& it) {
          return t < it.frame.timestamp_us;
        });
    compiled.items.insert(at, std::move(item));
  }

  // Fault windows transform the arrival-ordered stream in place; frames
  // are selected by their *capture* time (which faults never rewrite),
  // so stacked windows compose predictably.
  for (std::size_t w = 0; w < scenario.faults.size(); ++w) {
    const ScenarioFaultWindow& window = scenario.faults[w];
    FaultConfig fcfg = window.faults;
    fcfg.seed = net::mix64(scenario.seed ^ (0xFA17ULL + 131 * w));
    FaultChannel channel(fcfg);
    std::optional<net::MacAddress> only_mac;
    if (!window.actor.empty()) {
      only_mac = compiled.actor_macs[actor_index.at(window.actor)];
    }

    std::vector<ScenarioItem> next;
    next.reserve(compiled.items.size());
    std::vector<TimedFrame> tmp;
    bool flushed = false;
    const auto emit_frames = [&] {
      for (TimedFrame& tf : tmp) {
        ScenarioItem item;
        item.kind = ScenarioItem::Kind::kFrame;
        item.frame = std::move(tf);
        next.push_back(std::move(item));
      }
      tmp.clear();
    };
    for (ScenarioItem& item : compiled.items) {
      const std::uint64_t t = item.frame.timestamp_us;
      if (!flushed && t >= window.to_us) {
        // Past the window: release everything still held before any
        // later item (including departure sweeps) is delivered.
        channel.flush(tmp);
        emit_frames();
        flushed = true;
      }
      const bool matches =
          item.kind == ScenarioItem::Kind::kFrame && !flushed &&
          t >= window.from_us &&
          (!only_mac || frame_src_mac(item.frame.frame) == *only_mac);
      if (matches) {
        channel.feed(std::move(item.frame), tmp);
        emit_frames();
      } else {
        next.push_back(std::move(item));
      }
    }
    if (!flushed) {
      channel.flush(tmp);
      emit_frames();
    }
    compiled.items = std::move(next);
    const FaultChannel::Stats& cs = channel.stats();
    compiled.fault_stats.frames_in += cs.frames_in;
    compiled.fault_stats.emitted += cs.emitted;
    compiled.fault_stats.dropped += cs.dropped;
    compiled.fault_stats.duplicated += cs.duplicated;
    compiled.fault_stats.reordered += cs.reordered;
    compiled.fault_stats.corrupted += cs.corrupted;
  }

  // Order-and-content hash: the determinism fingerprint of the stream.
  std::uint64_t h = net::mix64(scenario.seed ^ 0x5ce4a410ULL);
  for (const ScenarioItem& item : compiled.items) {
    h = net::mix64(h ^ (item.kind == ScenarioItem::Kind::kExpire
                            ? 0xE0E0'E0E0ULL
                            : 0x0F0F'0F0FULL));
    h = net::mix64(h ^ item.frame.timestamp_us);
    if (item.kind == ScenarioItem::Kind::kExpire) {
      h = net::mix64(h ^ item.idle_us);
    } else {
      h = net::mix64(h ^ net::crc32c(item.frame.frame) ^
                     (static_cast<std::uint64_t>(item.frame.frame.size())
                      << 32));
    }
  }
  compiled.stream_hash = h;
  return compiled;
}

// ---------------------------------------------------------------- running

namespace {

/// Shared scoring tail: binds the k-th identification event on a MAC to
/// the k-th join using that MAC, then checks expectations.
void evaluate_outcome(const CompiledScenario& compiled,
                      const std::vector<core::GatewayEvent>& events,
                      ScenarioOutcome& out) {
  out.events_total = events.size();
  std::unordered_map<std::uint64_t, std::vector<const core::GatewayEvent*>>
      by_mac;
  for (const core::GatewayEvent& event : events) {
    by_mac[event.device.to_u64()].push_back(&event);
  }

  std::unordered_map<std::uint64_t, std::size_t> next_rank;
  out.actors.reserve(compiled.joins.size());
  for (std::size_t i = 0; i < compiled.joins.size(); ++i) {
    ScenarioActorOutcome actor;
    actor.actor = compiled.joins[i].actor;
    actor.true_type = compiled.joins[i].type;
    actor.mac = compiled.actor_macs[i];
    const std::uint64_t key = actor.mac.to_u64();
    const std::size_t rank = next_rank[key]++;
    const auto it = by_mac.find(key);
    if (it != by_mac.end() && rank < it->second.size()) {
      const core::GatewayEvent& event = *it->second[rank];
      actor.identified = true;
      actor.is_new_type = event.is_new_type;
      actor.identified_type = event.device_type;
      actor.level = event.level;
      actor.misidentified =
          !event.is_new_type && event.device_type != actor.true_type;
    }
    out.actors.push_back(std::move(actor));
  }

  std::unordered_map<std::string, const ScenarioActorOutcome*> by_name;
  for (const ScenarioActorOutcome& actor : out.actors) {
    by_name.emplace(actor.actor, &actor);
  }

  // Misidentification metric: among type-pinned actors, the fraction
  // whose identification went wrong (wrong type, spurious new-type, or
  // never identified).
  for (const ScenarioExpect& expect : compiled.expects) {
    const ScenarioActorOutcome& actor = *by_name.at(expect.actor);
    std::string failure;
    switch (expect.kind) {
      case ScenarioExpect::Kind::kType: {
        ++out.actors_with_type_expectation;
        const bool ok = actor.identified && !actor.is_new_type &&
                        actor.identified_type == expect.type;
        if (!ok) {
          ++out.actors_misidentified;
          failure = "expected type `" + expect.type + "`, got " +
                    (actor.identified
                         ? (actor.is_new_type
                                ? std::string("new-type")
                                : "`" + actor.identified_type + "`")
                         : std::string("no identification"));
        }
        break;
      }
      case ScenarioExpect::Kind::kNewType:
        if (!(actor.identified && actor.is_new_type)) {
          failure = actor.identified
                        ? "expected new-type, got `" + actor.identified_type +
                              "`"
                        : "expected new-type, got no identification";
        }
        break;
      case ScenarioExpect::Kind::kLevel:
        if (!(actor.identified && actor.level == expect.level)) {
          failure = std::string("expected level ") + level_name(expect.level) +
                    ", got " +
                    (actor.identified ? level_name(actor.level)
                                      : "no identification");
        }
        break;
    }
    if (!failure.empty()) {
      out.failures.push_back("actor `" + expect.actor + "`: " + failure);
    }
  }
  if (out.actors_with_type_expectation > 0) {
    out.misid_rate = static_cast<double>(out.actors_misidentified) /
                     static_cast<double>(out.actors_with_type_expectation);
  }
}

}  // namespace

ScenarioOutcome run_scenario(const CompiledScenario& compiled,
                             const core::IoTSecurityService& service,
                             std::size_t num_shards,
                             const ScenarioGatewayConfig& config) {
  ScenarioOutcome out;
  out.scenario = compiled.name;
  out.num_shards = num_shards;
  out.stream_hash = compiled.stream_hash;

  std::vector<core::GatewayEvent> events;
  std::uint64_t violations = 0;
  std::vector<std::string> samples;

  if (num_shards == 0) {
    core::GatewayConfig gcfg;
    gcfg.extractor = config.extractor;
    gcfg.controller = config.controller;
    core::SecurityGateway gw(service, gcfg);
    sdn::EnforcementAuditor auditor(gw.controller());
    auditor.attach(gw.data_plane());
    for (const ScenarioItem& item : compiled.items) {
      if (item.kind == ScenarioItem::Kind::kFrame) {
        gw.on_frame(item.frame.frame, item.frame.timestamp_us);
        ++out.frames_fed;
      } else {
        out.devices_expired +=
            gw.expire_departed(item.frame.timestamp_us, item.idle_us);
      }
    }
    gw.finish_pending_captures();
    out.malformed_frames = gw.malformed_frames();
    out.dropped_frames = gw.dropped_frames();
    const fp::SetupCaptureExtractor& extractor = gw.extractor();
    out.extractor_peak_active = extractor.peak_active_devices();
    out.extractor_discarded = extractor.discarded_captures();
    out.extractor_rejected = extractor.rejected_admissions();
    out.audit_checked = auditor.checked();
    out.audit_overblocks = auditor.overblocks();
    violations = auditor.violations();
    samples = auditor.violation_samples();
    events = gw.events();
  } else {
    core::ShardedGatewayConfig scfg;
    scfg.num_shards = num_shards;
    scfg.ring_capacity = config.ring_capacity;
    scfg.classify_batch_max = config.classify_batch_max;
    scfg.extractor = config.extractor;
    scfg.controller = config.controller;
    core::ShardedGateway gw(service, scfg);
    sdn::EnforcementAuditor auditor(gw.controller());
    gw.set_audit(auditor.hook());
    for (const ScenarioItem& item : compiled.items) {
      if (item.kind == ScenarioItem::Kind::kFrame) {
        gw.submit_owned(net::Bytes(item.frame.frame), item.frame.timestamp_us);
        ++out.frames_fed;
      } else {
        gw.expire_departed(item.frame.timestamp_us, item.idle_us);
      }
    }
    gw.finish();
    const core::ShardedGateway::Stats stats = gw.stats();
    out.malformed_frames = stats.malformed_frames;
    out.dropped_frames = stats.dropped_frames;
    out.devices_expired = stats.devices_expired;
    for (std::size_t s = 0; s < gw.num_shards(); ++s) {
      const fp::SetupCaptureExtractor& extractor = gw.shard_extractor(s);
      out.extractor_peak_active += extractor.peak_active_devices();
      out.extractor_discarded += extractor.discarded_captures();
      out.extractor_rejected += extractor.rejected_admissions();
    }
    out.audit_checked = auditor.checked();
    out.audit_overblocks = auditor.overblocks();
    violations = auditor.violations();
    samples = auditor.violation_samples();
    events = gw.events();
  }

  out.audit_violations = violations;
  if (violations > 0) {
    out.failures.push_back("enforcement violations: " +
                           std::to_string(violations));
    for (const std::string& sample : samples) {
      out.failures.push_back("  violation: " + sample);
    }
  }
  evaluate_outcome(compiled, events, out);
  return out;
}

// ----------------------------------------------------- shipped scenarios

namespace {

// NOTE: the mac-reuse text below is the worked example in
// docs/SCENARIOS.md; tests assert the doc's fenced block stays in sync.
constexpr BuiltinScenario kBuiltins[] = {
    {"mac-reuse", R"(scenario v1
name mac-reuse
seed 7

# A clean device onboards, is identified and granted Trusted.
join victim Aria at 0
standby victim cycles 2 at 45

# The device leaves; the gateway sweeps its rule, flows and inventory.
expire at 600 idle 120

# Different hardware re-joins on the victim's MAC. It must be
# re-fingerprinted from scratch and earn only its own type's level —
# never inherit the victim's Trusted rule.
join intruder EdimaxCam at 700 mac victim

expect victim type Aria
expect victim level trusted
expect intruder type EdimaxCam
expect intruder level restricted
)"},
    {"fingerprint-mimicry", R"(scenario v1
name fingerprint-mimicry
seed 11

# A rogue device replays the setup dialogue of a known (vulnerable)
# camera type. Identification assigns the mimicked type — and
# enforcement therefore pins it to that type's Restricted whitelist.
# Mimicry cannot escalate past the mimicked type's privileges.
join camera EdimaxCam at 0
join mimic EdimaxCam at 20
join bystander Aria at 40

expect camera type EdimaxCam
expect camera level restricted
expect mimic type EdimaxCam
expect mimic level restricted
expect bystander type Aria
expect bystander level trusted
)"},
    {"setup-degradation", R"(scenario v1
name setup-degradation
seed 13

# Three devices onboard over a lossy, reordering channel; the
# fingerprinting pipeline must still identify all of them.
join a Aria at 0
join b HueBridge at 10
join c Withings at 20
fault from 0 to 120 drop 0.05 dup 0.10 reorder 0.10 depth 3

expect a type Aria
expect b type HueBridge
expect c type Withings
)"},
    {"malformed-flood", R"(scenario v1
name malformed-flood
seed 17

# Two legitimate devices onboard while an attacker floods the gateway
# with junk frames and a phantom-MAC ARP spray. The junk is counted and
# dropped, phantom state stays bounded, and identification of the real
# devices is unaffected.
join a Aria at 0
join b EdimaxCam at 15
flood at 2 frames 400 kind random
flood at 5 frames 400 kind spray gap-us 2000

expect a type Aria
expect a level trusted
expect b type EdimaxCam
expect b level restricted
)"},
};

}  // namespace

std::span<const BuiltinScenario> builtin_scenarios() { return kBuiltins; }

core::IoTSecurityService make_scenario_service(
    const std::vector<std::string>& types, std::size_t runs_per_type,
    std::uint64_t seed) {
  const FingerprintCorpus corpus =
      generate_corpus_for(types, runs_per_type, seed);
  core::DeviceIdentifier identifier;
  identifier.train(corpus.type_names, corpus.by_type);
  core::VulnerabilityDb db;
  for (const std::string& type : types) {
    if (type == "EdimaxCam") {
      db.add(type, {.id = "CVE-2099-0001", .cvss = 9.0,
                    .summary = "remote shell on vendor cloud port"});
    } else {
      db.mark_assessed(type);
    }
  }
  core::IoTSecurityService service(std::move(identifier), std::move(db));
  if (std::find(types.begin(), types.end(), "EdimaxCam") != types.end()) {
    service.register_endpoints("EdimaxCam",
                               {net::Ipv4Address::of(104, 22, 7, 70)});
  }
  return service;
}

}  // namespace iotsentinel::sim
