#include "simnet/fleet_sim.hpp"

#include "net/hash_mix.hpp"

namespace iotsentinel::sim {
namespace {

std::uint64_t to_us(double seconds) {
  return static_cast<std::uint64_t>(seconds * 1e6);
}

}  // namespace

std::size_t FleetSim::type_index_of(const Roster& roster,
                                    std::uint32_t device_id) {
  std::size_t slot = device_id % roster.total_devices();
  for (std::size_t i = 0; i < roster.entries.size(); ++i) {
    const std::size_t count = roster.entries[i].count;
    if (slot < count) return i;
    slot -= count;
  }
  return 0;  // unreachable for a non-empty roster
}

FleetSim::FleetSim(const Roster& roster, std::size_t num_devices,
                   FleetConfig config)
    : config_(config), num_devices_(num_devices) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  devices_.reserve(num_devices / config_.num_shards + 1);

  for (std::uint64_t id = config_.shard; id < num_devices;
       id += config_.num_shards) {
    Device dev;
    dev.id = static_cast<std::uint32_t>(id);
    dev.entry = &roster.entries[type_index_of(roster, dev.id)];
    // The device id doubles as the MAC instance (unique low 24 bits) and
    // the 10/8 lease, so identity is a pure function of the id.
    dev.mac = TrafficGenerator::mint_mac(dev.entry->profile, dev.id);
    dev.ip = net::Ipv4Address::of(10, static_cast<std::uint8_t>(id >> 16),
                                  static_cast<std::uint8_t>(id >> 8),
                                  static_cast<std::uint8_t>(id));
    // Private per-device RNG from (seed, id): no draw anywhere depends
    // on another device, which is what makes sharding invariant.
    dev.rng = ml::Rng(net::mix64(config_.seed ^ net::mix64(dev.id)));

    // Fixed per-device draw order: join offset, then setup-stream seed.
    std::uint64_t join = config_.generator.start_time_us;
    if (config_.join_window_us > 0) {
      join += dev.rng.index(config_.join_window_us);
    }
    GeneratorConfig g = config_.generator;
    g.start_time_us = join;
    dev.stream.emplace(g, dev.entry->profile, dev.mac, dev.ip,
                       DeviceTraceStream::Mode::kSetup, 0, 0,
                       dev.rng.next_u64());
    dev.phase = Phase::kSetup;
    devices_.push_back(std::move(dev));
  }

  active_ = devices_.size();
  for (auto& dev : devices_) {
    refill(dev);
    if (dev.pending) heap_.push({dev.pending->timestamp_us, dev.id});
  }
}

void FleetSim::retire(Device& dev) {
  dev.stream.reset();
  dev.pending.reset();
  --active_;
}

void FleetSim::refill(Device& dev) {
  for (;;) {
    if (auto tf = dev.stream->next()) {
      if (tf->timestamp_us > config_.sim_end_us) {
        retire(dev);
        return;
      }
      dev.pending = std::move(*tf);
      return;
    }
    // Phase boundary: the stream ran dry at virtual time now_us().
    const std::uint64_t t = dev.stream->now_us();
    const FleetBehavior& fleet = dev.entry->fleet;
    GeneratorConfig g = config_.generator;
    if (dev.phase == Phase::kSetup) {
      // Setup done -> operational period. Fixed draw order: cycle count
      // in [1, 2*mean], then the standby stream's seed.
      const std::size_t cycles =
          1 + dev.rng.index(2 * static_cast<std::size_t>(fleet.standby_cycles));
      g.start_time_us = t;
      g.trailing_heartbeats = 0;
      dev.stream.emplace(g, dev.entry->profile, dev.mac, dev.ip,
                         DeviceTraceStream::Mode::kStandby, cycles,
                         to_us(fleet.cycle_gap_s), dev.rng.next_u64());
      dev.phase = Phase::kStandby;
    } else {
      // Depart; rejoin after downtime * (0.5 + u). Fixed draw order:
      // downtime factor, then the rejoin setup stream's seed.
      const std::uint64_t rejoin =
          t + to_us(fleet.downtime_s * (0.5 + dev.rng.uniform()));
      if (rejoin > config_.sim_end_us) {
        retire(dev);
        return;
      }
      g.start_time_us = rejoin;
      dev.stream.emplace(g, dev.entry->profile, dev.mac, dev.ip,
                         DeviceTraceStream::Mode::kSetup, 0, 0,
                         dev.rng.next_u64());
      dev.phase = Phase::kSetup;
    }
  }
}

std::optional<FleetEvent> FleetSim::next() {
  if (heap_.empty()) return std::nullopt;
  const HeapItem top = heap_.top();
  heap_.pop();
  Device& dev = devices_[(top.device_id - config_.shard) / config_.num_shards];
  FleetEvent event{top.device_id, std::move(*dev.pending)};
  dev.pending.reset();
  refill(dev);
  if (dev.pending) heap_.push({dev.pending->timestamp_us, dev.id});
  ++emitted_;
  return event;
}

std::size_t FleetSim::approx_memory_bytes() const {
  std::size_t total = sizeof(*this);
  total += devices_.capacity() * sizeof(Device);
  total += heap_.size() * sizeof(HeapItem);
  for (const auto& dev : devices_) {
    if (dev.pending) total += dev.pending->frame.capacity();
    if (dev.stream) total += dev.stream->buffered_bytes();
  }
  return total;
}

}  // namespace iotsentinel::sim
