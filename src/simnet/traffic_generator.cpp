#include "simnet/traffic_generator.hpp"

#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::sim {
namespace {

/// Exponential-ish jitter around a mean, bounded to [0.3, 3] x mean so
/// captures never stall.
std::uint64_t jitter_us(double mean_ms, ml::Rng& rng) {
  const double factor = 0.3 + 2.7 * rng.uniform() * rng.uniform();
  return static_cast<std::uint64_t>(mean_ms * factor * 1000.0);
}

}  // namespace

TrafficGenerator::TrafficGenerator(GeneratorConfig config)
    : config_(config) {}

net::MacAddress TrafficGenerator::mint_mac(const DeviceProfile& profile,
                                           std::uint32_t instance) {
  return net::MacAddress::of(profile.oui[0], profile.oui[1], profile.oui[2],
                             static_cast<std::uint8_t>(instance >> 16),
                             static_cast<std::uint8_t>(instance >> 8),
                             static_cast<std::uint8_t>(instance));
}

void TrafficGenerator::push(std::vector<TimedFrame>& out,
                            std::uint64_t& now_us, net::Bytes frame,
                            const DeviceProfile& profile, ml::Rng& rng) {
  out.push_back({now_us, frame});
  // Occasional immediate retransmission of the same frame (lossy WiFi
  // during setup) — discarded later by Eq. (1)'s duplicate removal, but it
  // exercises that code path and perturbs setup-phase duration.
  if (rng.chance(profile.retransmit_prob)) {
    now_us += jitter_us(2.0, rng);
    out.push_back({now_us, std::move(frame)});
  }
  now_us += jitter_us(profile.intra_gap_ms, rng);
}

void TrafficGenerator::emit_step(const DeviceProfile& profile,
                                 const SetupStep& step,
                                 const net::MacAddress& mac,
                                 net::Ipv4Address ip, std::uint64_t& now_us,
                                 ml::Rng& rng, std::vector<TimedFrame>& out) {
  using namespace iotsentinel::net;
  const MacAddress gw_mac = config_.gateway_mac;
  const Ipv4Address gw_ip = config_.gateway_ip;
  // Ephemeral source port for this step's client sockets; class stays
  // "dynamic" but the value varies run to run like a real stack.
  const auto eph = static_cast<std::uint16_t>(49152 + rng.index(16384));

  switch (step.kind) {
    case StepKind::kEapolHandshake: {
      push(out, now_us, build_eapol(mac, gw_mac, eapoltype::kStart, {}),
           profile, rng);
      push(out, now_us, build_eapol_key(mac, gw_mac), profile, rng);
      push(out, now_us, build_eapol_key(mac, gw_mac), profile, rng);
      break;
    }
    case StepKind::kDhcpExchange: {
      const auto xid = static_cast<std::uint32_t>(rng.next_u64());
      push(out, now_us,
           build_dhcp(mac, dhcptype::kDiscover, xid, Ipv4Address::any(),
                      profile.dhcp_params, profile.dhcp_hostname),
           profile, rng);
      push(out, now_us,
           build_dhcp(mac, dhcptype::kRequest, xid, Ipv4Address::any(),
                      profile.dhcp_params, profile.dhcp_hostname),
           profile, rng);
      break;
    }
    case StepKind::kArpAnnounce: {
      push(out, now_us, build_arp_request(mac, Ipv4Address::any(), ip),
           profile, rng);
      push(out, now_us, build_gratuitous_arp(mac, ip), profile, rng);
      break;
    }
    case StepKind::kArpGateway: {
      push(out, now_us, build_arp_request(mac, ip, gw_ip), profile, rng);
      break;
    }
    case StepKind::kIpv6RouterSolicit: {
      push(out, now_us, build_icmpv6_router_solicit(mac), profile, rng);
      break;
    }
    case StepKind::kMldReport: {
      push(out, now_us, build_mldv1_report(mac), profile, rng);
      break;
    }
    case StepKind::kIgmpJoin: {
      push(out, now_us,
           build_igmp_join(mac, ip, Ipv4Address::of(239, 255, 255, 250)),
           profile, rng);
      break;
    }
    case StepKind::kDnsQuery: {
      push(out, now_us,
           build_dns_query(mac, gw_mac, ip, gw_ip, eph,
                           static_cast<std::uint16_t>(rng.next_u64()),
                           step.host),
           profile, rng);
      break;
    }
    case StepKind::kNtpSync: {
      push(out, now_us, build_ntp_request(mac, gw_mac, ip, step.remote, eph),
           profile, rng);
      break;
    }
    case StepKind::kMdnsAnnounce: {
      push(out, now_us, build_mdns(mac, ip, step.host, /*is_response=*/true),
           profile, rng);
      break;
    }
    case StepKind::kSsdpSearch: {
      push(out, now_us, build_ssdp_msearch(mac, ip, eph, step.host), profile,
           rng);
      break;
    }
    case StepKind::kSsdpNotify: {
      push(out, now_us,
           build_ssdp_notify(mac, ip,
                             "http://" + ip.to_string() + ":49153/" +
                                 step.host + ".xml",
                             step.host + " UPnP/1.0"),
           profile, rng);
      break;
    }
    case StepKind::kHttpCloudCheck: {
      push(out, now_us,
           build_tcp_syn(mac, gw_mac, ip, step.remote, eph, port::kHttp,
                         static_cast<std::uint32_t>(rng.next_u64())),
           profile, rng);
      push(out, now_us,
           build_http_get(mac, gw_mac, ip, step.remote, eph, step.host,
                          step.path, profile.name + "/1.0"),
           profile, rng);
      break;
    }
    case StepKind::kHttpsCloudCheck: {
      push(out, now_us,
           build_tcp_syn(mac, gw_mac, ip, step.remote, eph, port::kHttps,
                         static_cast<std::uint32_t>(rng.next_u64())),
           profile, rng);
      push(out, now_us,
           build_tls_client_hello(mac, gw_mac, ip, step.remote, eph,
                                  step.host),
           profile, rng);
      break;
    }
    case StepKind::kTcpConnect: {
      push(out, now_us,
           build_tcp_syn(mac, gw_mac, ip, step.remote, eph, step.port,
                         static_cast<std::uint32_t>(rng.next_u64())),
           profile, rng);
      break;
    }
    case StepKind::kIcmpPing: {
      push(out, now_us,
           build_icmp_echo(mac, gw_mac, ip, step.remote,
                           static_cast<std::uint16_t>(rng.next_u64()), 1),
           profile, rng);
      break;
    }
  }
}

std::vector<TimedFrame> TrafficGenerator::generate(
    const DeviceProfile& profile, const net::MacAddress& device_mac,
    net::Ipv4Address device_ip, ml::Rng& rng) {
  std::vector<TimedFrame> out;
  std::uint64_t now_us = config_.start_time_us;

  for (const auto& step : profile.steps) {
    if (step.skip_prob > 0.0 && rng.chance(step.skip_prob)) continue;
    now_us += jitter_us(step.gap_ms, rng);
    int occurrences = step.repeat;
    if (step.repeat_jitter > 0) {
      occurrences += static_cast<int>(
          rng.index(static_cast<std::size_t>(step.repeat_jitter) + 1));
    }
    for (int i = 0; i < occurrences; ++i) {
      emit_step(profile, step, device_mac, device_ip, now_us, rng, out);
    }
  }

  // Optional operational-phase heartbeats at a much lower rate; the
  // extractor's rate-decrease detector must cut these off.
  for (std::size_t i = 0; i < config_.trailing_heartbeats; ++i) {
    now_us += config_.heartbeat_gap_us + jitter_us(500.0, rng);
    out.push_back({now_us, net::build_arp_request(device_mac, device_ip,
                                                  config_.gateway_ip)});
  }
  return out;
}

std::vector<TimedFrame> TrafficGenerator::generate_standby(
    const DeviceProfile& profile, const net::MacAddress& device_mac,
    net::Ipv4Address device_ip, std::size_t cycles, ml::Rng& rng,
    std::uint64_t cycle_gap_us) {
  std::vector<TimedFrame> out;
  std::uint64_t now_us = config_.start_time_us;
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    for (const auto& step : profile.standby_steps) {
      if (step.skip_prob > 0.0 && rng.chance(step.skip_prob)) continue;
      now_us += jitter_us(step.gap_ms, rng);
      int occurrences = step.repeat;
      if (step.repeat_jitter > 0) {
        occurrences += static_cast<int>(
            rng.index(static_cast<std::size_t>(step.repeat_jitter) + 1));
      }
      for (int i = 0; i < occurrences; ++i) {
        emit_step(profile, step, device_mac, device_ip, now_us, rng, out);
      }
    }
    // Quiet period until the next operational cycle.
    now_us += cycle_gap_us / 2 + rng.index(cycle_gap_us);
  }
  return out;
}

net::PcapFile TrafficGenerator::generate_pcap(const DeviceProfile& profile,
                                              const net::MacAddress& mac,
                                              net::Ipv4Address ip,
                                              ml::Rng& rng) {
  net::PcapFile file;
  for (auto& tf : generate(profile, mac, ip, rng)) {
    net::PcapRecord rec;
    rec.timestamp_us = tf.timestamp_us;
    rec.orig_len = static_cast<std::uint32_t>(tf.frame.size());
    rec.frame = std::move(tf.frame);
    file.records.push_back(std::move(rec));
  }
  return file;
}

std::vector<net::ParsedPacket> parse_frames(
    const std::vector<TimedFrame>& frames) {
  std::vector<net::ParsedPacket> out;
  out.reserve(frames.size());
  for (const auto& tf : frames) {
    out.push_back(net::parse_ethernet_frame(tf.frame, tf.timestamp_us));
  }
  return out;
}

}  // namespace iotsentinel::sim
