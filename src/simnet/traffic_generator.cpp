#include "simnet/traffic_generator.hpp"

#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::sim {
namespace {

/// Exponential-ish jitter around a mean, bounded to [0.3, 3] x mean so
/// captures never stall.
std::uint64_t jitter_us(double mean_ms, ml::Rng& rng) {
  const double factor = 0.3 + 2.7 * rng.uniform() * rng.uniform();
  return static_cast<std::uint64_t>(mean_ms * factor * 1000.0);
}

/// Appends one frame, with an occasional immediate retransmission of the
/// same frame (lossy WiFi during setup) — discarded later by Eq. (1)'s
/// duplicate removal, but it exercises that code path and perturbs
/// setup-phase duration.
void push(std::vector<TimedFrame>& out, std::uint64_t& now_us,
          net::Bytes frame, const DeviceProfile& profile, ml::Rng& rng) {
  out.push_back({now_us, frame});
  if (rng.chance(profile.retransmit_prob)) {
    now_us += jitter_us(2.0, rng);
    out.push_back({now_us, std::move(frame)});
  }
  now_us += jitter_us(profile.intra_gap_ms, rng);
}

/// Emits the packets of one step occurrence into `out`. The RNG draw
/// order here is frozen: the catalog traffic golden test pins it.
void emit_step(const GeneratorConfig& config, const DeviceProfile& profile,
               const SetupStep& step, const net::MacAddress& mac,
               net::Ipv4Address ip, std::uint64_t& now_us, ml::Rng& rng,
               std::vector<TimedFrame>& out) {
  using namespace iotsentinel::net;
  const MacAddress gw_mac = config.gateway_mac;
  const Ipv4Address gw_ip = config.gateway_ip;
  // Ephemeral source port for this step's client sockets; class stays
  // "dynamic" but the value varies run to run like a real stack.
  const auto eph = static_cast<std::uint16_t>(49152 + rng.index(16384));

  switch (step.kind) {
    case StepKind::kEapolHandshake: {
      push(out, now_us, build_eapol(mac, gw_mac, eapoltype::kStart, {}),
           profile, rng);
      push(out, now_us, build_eapol_key(mac, gw_mac), profile, rng);
      push(out, now_us, build_eapol_key(mac, gw_mac), profile, rng);
      break;
    }
    case StepKind::kDhcpExchange: {
      const auto xid = static_cast<std::uint32_t>(rng.next_u64());
      push(out, now_us,
           build_dhcp(mac, dhcptype::kDiscover, xid, Ipv4Address::any(),
                      profile.dhcp_params, profile.dhcp_hostname),
           profile, rng);
      push(out, now_us,
           build_dhcp(mac, dhcptype::kRequest, xid, Ipv4Address::any(),
                      profile.dhcp_params, profile.dhcp_hostname),
           profile, rng);
      break;
    }
    case StepKind::kArpAnnounce: {
      push(out, now_us, build_arp_request(mac, Ipv4Address::any(), ip),
           profile, rng);
      push(out, now_us, build_gratuitous_arp(mac, ip), profile, rng);
      break;
    }
    case StepKind::kArpGateway: {
      push(out, now_us, build_arp_request(mac, ip, gw_ip), profile, rng);
      break;
    }
    case StepKind::kIpv6RouterSolicit: {
      push(out, now_us, build_icmpv6_router_solicit(mac), profile, rng);
      break;
    }
    case StepKind::kMldReport: {
      push(out, now_us, build_mldv1_report(mac), profile, rng);
      break;
    }
    case StepKind::kIgmpJoin: {
      push(out, now_us,
           build_igmp_join(mac, ip, Ipv4Address::of(239, 255, 255, 250)),
           profile, rng);
      break;
    }
    case StepKind::kDnsQuery: {
      push(out, now_us,
           build_dns_query(mac, gw_mac, ip, gw_ip, eph,
                           static_cast<std::uint16_t>(rng.next_u64()),
                           step.host),
           profile, rng);
      break;
    }
    case StepKind::kNtpSync: {
      push(out, now_us, build_ntp_request(mac, gw_mac, ip, step.remote, eph),
           profile, rng);
      break;
    }
    case StepKind::kMdnsAnnounce: {
      push(out, now_us, build_mdns(mac, ip, step.host, /*is_response=*/true),
           profile, rng);
      break;
    }
    case StepKind::kSsdpSearch: {
      push(out, now_us, build_ssdp_msearch(mac, ip, eph, step.host), profile,
           rng);
      break;
    }
    case StepKind::kSsdpNotify: {
      push(out, now_us,
           build_ssdp_notify(mac, ip,
                             "http://" + ip.to_string() + ":49153/" +
                                 step.host + ".xml",
                             step.host + " UPnP/1.0"),
           profile, rng);
      break;
    }
    case StepKind::kHttpCloudCheck: {
      push(out, now_us,
           build_tcp_syn(mac, gw_mac, ip, step.remote, eph, port::kHttp,
                         static_cast<std::uint32_t>(rng.next_u64())),
           profile, rng);
      push(out, now_us,
           build_http_get(mac, gw_mac, ip, step.remote, eph, step.host,
                          step.path, profile.name + "/1.0"),
           profile, rng);
      break;
    }
    case StepKind::kHttpsCloudCheck: {
      push(out, now_us,
           build_tcp_syn(mac, gw_mac, ip, step.remote, eph, port::kHttps,
                         static_cast<std::uint32_t>(rng.next_u64())),
           profile, rng);
      push(out, now_us,
           build_tls_client_hello(mac, gw_mac, ip, step.remote, eph,
                                  step.host),
           profile, rng);
      break;
    }
    case StepKind::kTcpConnect: {
      push(out, now_us,
           build_tcp_syn(mac, gw_mac, ip, step.remote, eph, step.port,
                         static_cast<std::uint32_t>(rng.next_u64())),
           profile, rng);
      break;
    }
    case StepKind::kIcmpPing: {
      push(out, now_us,
           build_icmp_echo(mac, gw_mac, ip, step.remote,
                           static_cast<std::uint16_t>(rng.next_u64()), 1),
           profile, rng);
      break;
    }
  }
}

}  // namespace

DeviceTraceStream::DeviceTraceStream(const GeneratorConfig& config,
                                     const DeviceProfile& profile,
                                     const net::MacAddress& mac,
                                     net::Ipv4Address ip, Mode mode,
                                     std::size_t standby_cycles,
                                     std::uint64_t cycle_gap_us, ml::Rng& rng)
    : config_(config),
      profile_(&profile),
      mac_(mac),
      ip_(ip),
      mode_(mode),
      cycles_left_(mode == Mode::kStandby ? standby_cycles : 0),
      cycle_gap_us_(cycle_gap_us),
      own_rng_(0),
      rng_(&rng),
      heartbeats_left_(mode == Mode::kSetup ? config.trailing_heartbeats : 0),
      now_us_(config.start_time_us) {}

DeviceTraceStream::DeviceTraceStream(const GeneratorConfig& config,
                                     const DeviceProfile& profile,
                                     const net::MacAddress& mac,
                                     net::Ipv4Address ip, Mode mode,
                                     std::size_t standby_cycles,
                                     std::uint64_t cycle_gap_us,
                                     std::uint64_t seed)
    : DeviceTraceStream(config, profile, mac, ip, mode, standby_cycles,
                        cycle_gap_us, own_rng_) {
  own_rng_ = ml::Rng(seed);
  rng_ = &own_rng_;
}

DeviceTraceStream::DeviceTraceStream(DeviceTraceStream&& other) noexcept
    : config_(other.config_),
      profile_(other.profile_),
      mac_(other.mac_),
      ip_(other.ip_),
      mode_(other.mode_),
      cycles_left_(other.cycles_left_),
      cycle_gap_us_(other.cycle_gap_us_),
      own_rng_(other.own_rng_),
      rng_(other.rng_ == &other.own_rng_ ? &own_rng_ : other.rng_),
      step_index_(other.step_index_),
      step_started_(other.step_started_),
      occurrences_left_(other.occurrences_left_),
      heartbeats_left_(other.heartbeats_left_),
      now_us_(other.now_us_),
      pending_(std::move(other.pending_)),
      pending_pos_(other.pending_pos_) {}

DeviceTraceStream& DeviceTraceStream::operator=(
    DeviceTraceStream&& other) noexcept {
  if (this == &other) return *this;
  config_ = other.config_;
  profile_ = other.profile_;
  mac_ = other.mac_;
  ip_ = other.ip_;
  mode_ = other.mode_;
  cycles_left_ = other.cycles_left_;
  cycle_gap_us_ = other.cycle_gap_us_;
  own_rng_ = other.own_rng_;
  rng_ = other.rng_ == &other.own_rng_ ? &own_rng_ : other.rng_;
  step_index_ = other.step_index_;
  step_started_ = other.step_started_;
  occurrences_left_ = other.occurrences_left_;
  heartbeats_left_ = other.heartbeats_left_;
  now_us_ = other.now_us_;
  pending_ = std::move(other.pending_);
  pending_pos_ = other.pending_pos_;
  return *this;
}

const std::vector<SetupStep>& DeviceTraceStream::active_steps() const {
  return mode_ == Mode::kSetup ? profile_->steps : profile_->standby_steps;
}

bool DeviceTraceStream::advance() {
  ml::Rng& rng = *rng_;
  for (;;) {
    const bool in_cycle = mode_ == Mode::kSetup || cycles_left_ > 0;
    const std::vector<SetupStep>& steps = active_steps();
    if (in_cycle && step_index_ < steps.size()) {
      const SetupStep& step = steps[step_index_];
      if (!step_started_) {
        // Step preamble, in the frozen draw order: skip check, leading
        // gap jitter, occurrence-count jitter.
        if (step.skip_prob > 0.0 && rng.chance(step.skip_prob)) {
          ++step_index_;
          continue;
        }
        now_us_ += jitter_us(step.gap_ms, rng);
        int occurrences = step.repeat;
        if (step.repeat_jitter > 0) {
          occurrences += static_cast<int>(
              rng.index(static_cast<std::size_t>(step.repeat_jitter) + 1));
        }
        occurrences_left_ = occurrences;
        step_started_ = true;
        if (occurrences_left_ <= 0) {
          ++step_index_;
          step_started_ = false;
          continue;
        }
      }
      emit_step(config_, *profile_, step, mac_, ip_, now_us_, rng, pending_);
      if (--occurrences_left_ == 0) {
        ++step_index_;
        step_started_ = false;
      }
      return true;
    }
    if (mode_ == Mode::kStandby) {
      if (cycles_left_ == 0) return false;
      // Quiet period until the next operational cycle (drawn after the
      // final cycle too, exactly like the historical batch loop).
      now_us_ += cycle_gap_us_ / 2 + rng.index(cycle_gap_us_);
      --cycles_left_;
      step_index_ = 0;
      step_started_ = false;
      continue;
    }
    // Setup-mode tail: operational-phase heartbeats at a much lower
    // rate; the extractor's rate-decrease detector must cut these off.
    if (heartbeats_left_ > 0) {
      now_us_ += config_.heartbeat_gap_us + jitter_us(500.0, rng);
      pending_.push_back(
          {now_us_, net::build_arp_request(mac_, ip_, config_.gateway_ip)});
      --heartbeats_left_;
      return true;
    }
    return false;
  }
}

std::size_t DeviceTraceStream::buffered_bytes() const {
  std::size_t total = pending_.capacity() * sizeof(TimedFrame);
  for (const auto& tf : pending_) total += tf.frame.capacity();
  return total;
}

std::optional<TimedFrame> DeviceTraceStream::next() {
  while (pending_pos_ >= pending_.size()) {
    pending_.clear();
    pending_pos_ = 0;
    if (!advance()) return std::nullopt;
  }
  return std::move(pending_[pending_pos_++]);
}

TrafficGenerator::TrafficGenerator(GeneratorConfig config)
    : config_(config) {}

net::MacAddress TrafficGenerator::mint_mac(const DeviceProfile& profile,
                                           std::uint32_t instance) {
  return net::MacAddress::of(profile.oui[0], profile.oui[1], profile.oui[2],
                             static_cast<std::uint8_t>(instance >> 16),
                             static_cast<std::uint8_t>(instance >> 8),
                             static_cast<std::uint8_t>(instance));
}

std::vector<TimedFrame> TrafficGenerator::generate(
    const DeviceProfile& profile, const net::MacAddress& device_mac,
    net::Ipv4Address device_ip, ml::Rng& rng) {
  DeviceTraceStream stream(config_, profile, device_mac, device_ip,
                           DeviceTraceStream::Mode::kSetup, 0, 0, rng);
  std::vector<TimedFrame> out;
  while (auto tf = stream.next()) out.push_back(std::move(*tf));
  return out;
}

std::vector<TimedFrame> TrafficGenerator::generate_standby(
    const DeviceProfile& profile, const net::MacAddress& device_mac,
    net::Ipv4Address device_ip, std::size_t cycles, ml::Rng& rng,
    std::uint64_t cycle_gap_us) {
  DeviceTraceStream stream(config_, profile, device_mac, device_ip,
                           DeviceTraceStream::Mode::kStandby, cycles,
                           cycle_gap_us, rng);
  std::vector<TimedFrame> out;
  while (auto tf = stream.next()) out.push_back(std::move(*tf));
  return out;
}

net::PcapFile TrafficGenerator::generate_pcap(const DeviceProfile& profile,
                                              const net::MacAddress& mac,
                                              net::Ipv4Address ip,
                                              ml::Rng& rng) {
  net::PcapFile file;
  for (auto& tf : generate(profile, mac, ip, rng)) {
    net::PcapRecord rec;
    rec.timestamp_us = tf.timestamp_us;
    rec.orig_len = static_cast<std::uint32_t>(tf.frame.size());
    rec.frame = std::move(tf.frame);
    file.records.push_back(std::move(rec));
  }
  return file;
}

std::vector<net::ParsedPacket> parse_frames(
    const std::vector<TimedFrame>& frames) {
  std::vector<net::ParsedPacket> out;
  out.reserve(frames.size());
  for (const auto& tf : frames) {
    out.push_back(net::parse_ethernet_frame(tf.frame, tf.timestamp_us));
  }
  return out;
}

}  // namespace iotsentinel::sim
