#include "simnet/corpus.hpp"

#include "fingerprint/extractor.hpp"
#include "simnet/traffic_generator.hpp"

namespace iotsentinel::sim {
namespace {

FingerprintCorpus generate(const std::vector<const DeviceProfile*>& profiles,
                           std::size_t runs_per_type, std::uint64_t seed) {
  FingerprintCorpus corpus;
  TrafficGenerator generator;
  ml::Rng master(seed);
  std::uint32_t instance = 1;
  for (const auto* profile : profiles) {
    corpus.type_names.push_back(profile->name);
    auto& runs = corpus.by_type.emplace_back();
    runs.reserve(runs_per_type);
    for (std::size_t r = 0; r < runs_per_type; ++r) {
      ml::Rng run_rng = master.fork();
      const net::MacAddress mac =
          TrafficGenerator::mint_mac(*profile, instance++);
      const net::Ipv4Address ip = net::Ipv4Address::of(
          192, 168, 0, static_cast<std::uint8_t>(2 + run_rng.index(250)));
      const auto frames = generator.generate(*profile, mac, ip, run_rng);
      const auto packets = parse_frames(frames);
      runs.push_back(fp::fingerprint_from_packets(packets));
    }
  }
  return corpus;
}

}  // namespace

FingerprintCorpus generate_standby_corpus(std::size_t runs_per_type,
                                          std::uint64_t seed,
                                          std::size_t cycles) {
  FingerprintCorpus corpus;
  TrafficGenerator generator;
  ml::Rng master(seed);
  std::uint32_t instance = 60'000;
  for (const auto& profile : device_catalog()) {
    corpus.type_names.push_back(profile.name);
    auto& runs = corpus.by_type.emplace_back();
    runs.reserve(runs_per_type);
    for (std::size_t r = 0; r < runs_per_type; ++r) {
      ml::Rng run_rng = master.fork();
      const net::MacAddress mac =
          TrafficGenerator::mint_mac(profile, instance++);
      const net::Ipv4Address ip = net::Ipv4Address::of(
          192, 168, 0, static_cast<std::uint8_t>(2 + run_rng.index(250)));
      const auto frames =
          generator.generate_standby(profile, mac, ip, cycles, run_rng);
      runs.push_back(fp::fingerprint_from_packets(parse_frames(frames)));
    }
  }
  return corpus;
}

FingerprintCorpus generate_corpus(std::size_t runs_per_type,
                                  std::uint64_t seed) {
  std::vector<const DeviceProfile*> profiles;
  for (const auto& p : device_catalog()) profiles.push_back(&p);
  return generate(profiles, runs_per_type, seed);
}

FingerprintCorpus generate_corpus_for(const std::vector<std::string>& names,
                                      std::size_t runs_per_type,
                                      std::uint64_t seed) {
  std::vector<const DeviceProfile*> profiles;
  for (const auto& name : names) {
    if (const auto* p = find_profile(name)) profiles.push_back(p);
  }
  return generate(profiles, runs_per_type, seed);
}

}  // namespace iotsentinel::sim
