// The evaluated device-types (paper Table II) as behavioural profiles,
// loaded from the shipped device roster.
//
// The catalog is no longer hardcoded: it is parsed from an embedded copy
// of `config/roster_table2.roster` (see src/simnet/roster.hpp for the
// format), so new device types are data, not code. A golden test pins
// the shipped roster byte-for-byte against the legacy hardcoded catalog
// (tests/data/catalog_golden.txt), so the corpus, every trained model
// and every paper-reproduction bench keep their exact historical inputs.
//
// Family structure mirrors the paper's confusion analysis (Table III):
//   * D-LinkWaterSensor / D-LinkSiren / D-LinkSensor (indices 2-4 in
//     Fig. 5's numbering) share identical hardware and firmware -> they get
//     byte-identical scripts in the roster and remain mutually confusable.
//   * D-LinkSwitch (1) is the same platform with a marginally different
//     script (it is a plug, not a sensor), matching its slightly higher
//     accuracy in Fig. 5.
//   * TP-LinkPlugHS110 / HS100 (5-6), EdimaxPlug1101W / 2101W (7-8) and
//     SmarterCoffee / iKettle2 (9-10) are pairwise identical platforms.
// Every other device-type has a distinct protocol mix, peer order and
// message sizes, so it is reliably identifiable (accuracy ~1 in Fig. 5).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "simnet/device_model.hpp"
#include "simnet/roster.hpp"

namespace iotsentinel::sim {

/// The built-in roster (the embedded copy of config/roster_table2.roster),
/// parsed once: per-type profiles plus fleet multiplicity and behaviour.
/// The embedded text is validated at first use; it cannot fail for a
/// release that passed the roster golden test.
const Roster& device_roster();

/// The device-type profiles of the built-in roster, in roster (= paper
/// Table II) order. One entry per type regardless of fleet multiplicity.
const std::vector<DeviceProfile>& device_catalog();

/// Looks up a profile by Table-II identifier (e.g. "HueBridge").
const DeviceProfile* find_profile(const std::string& name);

/// Index of a profile in the catalog; nullopt when unknown.
std::optional<std::size_t> profile_index(const std::string& name);

/// The ten device-types of the paper's Table III confusion matrix, in the
/// paper's index order 1..10 (D-LinkSwitch ... iKettle2).
const std::vector<std::string>& confusable_device_names();

}  // namespace iotsentinel::sim
