// Config-driven device roster: the declarative replacement for the
// hardcoded 27-type device catalog.
//
// A roster is a small dependency-free text file (see docs/ROSTER.md for
// the normative format and a worked example) listing device types with
// their full behavioural profile — setup-dialogue script, DHCP quirks,
// timing knobs — plus fleet-level parameters the simulator needs that a
// single setup capture does not: how many units of the type exist
// (`count`) and how the device behaves over days of operation (standby
// cycle cadence, downtime before a rejoin). New device types are data,
// not code: editing the shipped `config/roster_table2.roster` is the
// whole change.
//
// Parsing follows the model-store discipline (src/core/model_store.hpp):
// every rejection carries a typed error kind, the 1-based line number of
// the offending line and a human-readable detail, so a bad roster names
// its problem instead of yielding a bare nullopt.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "simnet/device_model.hpp"

namespace iotsentinel::sim {

/// How one device of a type behaves over operational time in the fleet
/// simulator (join -> setup burst -> standby cycles -> depart -> rejoin).
struct FleetBehavior {
  /// Mean number of standby/operation cycles per operational period;
  /// each device draws its actual count per period from [1, 2*mean].
  std::uint32_t standby_cycles = 4;
  /// Mean quiet gap between consecutive standby cycles, seconds.
  double cycle_gap_s = 60.0;
  /// Mean offline time between a departure and the rejoin, seconds.
  double downtime_s = 900.0;

  friend bool operator==(const FleetBehavior&, const FleetBehavior&) = default;
};

/// One roster line item: a device type plus its fleet multiplicity.
struct RosterEntry {
  DeviceProfile profile;
  /// Units of this type in the simulated fleet (same-type multiplicity —
  /// the paper's testbed had 31 devices covering 27 types).
  std::uint32_t count = 1;
  FleetBehavior fleet;
};

/// A parsed device roster.
struct Roster {
  std::vector<RosterEntry> entries;

  [[nodiscard]] std::size_t num_types() const { return entries.size(); }
  /// Sum of per-type counts: the physical fleet the roster describes.
  [[nodiscard]] std::size_t total_devices() const;
  /// Entry by type name; nullptr when unknown.
  [[nodiscard]] const RosterEntry* find(std::string_view name) const;
};

/// Why a roster was rejected, and where.
struct RosterError {
  enum class Kind {
    kNone,              ///< No error (the parse succeeded).
    kIoError,           ///< File could not be opened or read.
    kBadHeader,         ///< Missing or unsupported `roster v1` header.
    kMalformedLine,     ///< A line does not scan as `directive value...`.
    kUnknownDirective,  ///< Directive name not part of the format.
    kUnknownStepKind,   ///< `step` with a kind the generator cannot emit.
    kDuplicateType,     ///< Two `type` blocks share one name.
    kDuplicateField,    ///< A scalar directive repeated within one block.
    kOutOfRange,        ///< A value outside its documented domain.
    kMissingField,      ///< A required directive absent at `end`.
    kUnterminatedType,  ///< EOF inside a `type` block (truncated file).
  };

  Kind kind = Kind::kNone;
  /// 1-based line number of the offending line (0 when the error is not
  /// attributable to a line, e.g. I/O failures).
  std::size_t line = 0;
  /// Human-readable specifics, e.g. `skip-prob must be within [0, 1],
  /// got 1.5`. Never empty when `kind != kNone`.
  std::string detail;
};

/// Stable name of an error kind ("out-of-range", ...); never null.
[[nodiscard]] const char* to_string(RosterError::Kind kind);

/// One-line rendering, e.g. "out-of-range at line 12: skip-prob ...".
[[nodiscard]] std::string describe(const RosterError& error);

/// Result of parsing a roster: the roster or a typed error. Mimics
/// std::optional (has_value / bool / * / ->) like core::LoadResult.
class RosterResult {
 public:
  /*implicit*/ RosterResult(Roster roster) : roster_(std::move(roster)) {}
  /*implicit*/ RosterResult(RosterError error) : error_(std::move(error)) {}

  [[nodiscard]] bool has_value() const { return roster_.has_value(); }
  [[nodiscard]] explicit operator bool() const { return has_value(); }
  [[nodiscard]] Roster& operator*() { return *roster_; }
  [[nodiscard]] const Roster& operator*() const { return *roster_; }
  [[nodiscard]] Roster* operator->() { return &*roster_; }
  [[nodiscard]] const Roster* operator->() const { return &*roster_; }
  /// The rejection reason; `kind == kNone` iff the parse succeeded.
  [[nodiscard]] const RosterError& error() const { return error_; }
  /// Moves the roster out (valid only after a successful parse).
  [[nodiscard]] Roster take() { return std::move(*roster_); }

 private:
  std::optional<Roster> roster_;
  RosterError error_;
};

/// Parses roster text. Error contract: never throws and never crashes,
/// whatever `text` holds; on rejection the error names the offending
/// line. On success every profile is fully populated — standby steps are
/// derived from the setup script exactly as the legacy hardcoded catalog
/// derived them (see `derive_standby_steps`).
[[nodiscard]] RosterResult parse_roster(std::string_view text);

/// Reads and parses a roster file. I/O failures yield kIoError.
[[nodiscard]] RosterResult load_roster_file(const std::string& path);

/// Renders a roster in canonical form: defaults elided, one directive
/// per line, deterministic field order. parse_roster(format_roster(r))
/// reproduces `r` exactly (floats use shortest-round-trip notation).
[[nodiscard]] std::string format_roster(const Roster& roster);

/// Derives one standby/operation cycle from a profile's setup script:
/// cloud endpoints get periodic keepalives, announced services get
/// re-announcements, NTP users re-sync, everyone ARPs its gateway
/// occasionally. Deterministic, so identical platforms (the paper's
/// confusable families) stay identical in standby too. The parser calls
/// this for every profile; it is exposed for tools and tests.
[[nodiscard]] std::vector<SetupStep> derive_standby_steps(
    const DeviceProfile& profile);

/// Exhaustive, canonical text rendering of ONE profile: every field of
/// the profile and of every step (setup and standby), defaults included,
/// floats in shortest-round-trip notation. Two profiles are field-equal
/// iff their canonical texts are byte-equal — this is the currency of
/// the roster golden test (tests/data/catalog_golden.txt pins the legacy
/// hardcoded catalog) and of tools/roster_dump.
[[nodiscard]] std::string canonical_profile_text(const DeviceProfile& profile);

}  // namespace iotsentinel::sim
