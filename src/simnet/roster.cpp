#include "simnet/roster.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

namespace iotsentinel::sim {
namespace {

/// Step kinds by their roster spelling, in StepKind declaration order.
constexpr const char* kStepNames[] = {
    "eapol",        // kEapolHandshake
    "dhcp",         // kDhcpExchange
    "arp-announce", // kArpAnnounce
    "arp-gateway",  // kArpGateway
    "ipv6-rs",      // kIpv6RouterSolicit
    "mld",          // kMldReport
    "igmp",         // kIgmpJoin
    "dns",          // kDnsQuery
    "ntp",          // kNtpSync
    "mdns",         // kMdnsAnnounce
    "ssdp-search",  // kSsdpSearch
    "ssdp-notify",  // kSsdpNotify
    "http",         // kHttpCloudCheck
    "https",        // kHttpsCloudCheck
    "tcp",          // kTcpConnect
    "ping",         // kIcmpPing
};

const char* step_name(StepKind kind) {
  return kStepNames[static_cast<std::size_t>(kind)];
}

std::optional<StepKind> step_kind_of(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kStepNames); ++i) {
    if (name == kStepNames[i]) return static_cast<StepKind>(i);
  }
  return std::nullopt;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Pops the first whitespace-delimited token off `s`.
std::string_view take_token(std::string_view& s) {
  s = trim(s);
  std::size_t end = 0;
  while (end < s.size() && s[end] != ' ' && s[end] != '\t') ++end;
  const std::string_view token = s.substr(0, end);
  s.remove_prefix(end);
  s = trim(s);
  return token;
}

/// Shortest decimal notation that round-trips to the exact double.
std::string fmt_double(double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("nan");
}

bool parse_double(std::string_view text, double& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_ipv4(std::string_view text, net::Ipv4Address& out) {
  std::uint32_t octets[4];
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != '.') return false;
      ++pos;
    }
    const auto [ptr, ec] = std::from_chars(text.data() + pos,
                                           text.data() + text.size(), octets[i]);
    if (ec != std::errc{} || octets[i] > 255) return false;
    pos = static_cast<std::size_t>(ptr - text.data());
  }
  if (pos != text.size()) return false;
  out = net::Ipv4Address::of(
      static_cast<std::uint8_t>(octets[0]), static_cast<std::uint8_t>(octets[1]),
      static_cast<std::uint8_t>(octets[2]), static_cast<std::uint8_t>(octets[3]));
  return true;
}

bool parse_hex_byte(std::string_view text, std::uint8_t& out) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value > 255) {
    return false;
  }
  out = static_cast<std::uint8_t>(value);
  return true;
}

std::string fmt_oui(const std::array<std::uint8_t, 3>& oui) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x", oui[0], oui[1], oui[2]);
  return buf;
}

std::string fmt_dhcp_params(const std::vector<std::uint8_t>& params) {
  std::string out;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(params[i]);
  }
  return out;
}

/// Streams parse errors out of deeply nested helpers: the first error
/// sticks, later assignments are ignored.
class ErrorSink {
 public:
  void fail(RosterError::Kind kind, std::size_t line, std::string detail) {
    if (error_.kind == RosterError::Kind::kNone) {
      error_ = {kind, line, std::move(detail)};
    }
  }
  [[nodiscard]] bool failed() const {
    return error_.kind != RosterError::Kind::kNone;
  }
  [[nodiscard]] RosterError take() { return std::move(error_); }

 private:
  RosterError error_;
};

/// Bounded-domain numeric field parsers; every rejection names the field
/// and the offending value.
double parse_prob(std::string_view field, std::string_view value,
                  std::size_t line, ErrorSink& err) {
  double v = 0.0;
  if (!parse_double(value, v)) {
    err.fail(RosterError::Kind::kMalformedLine, line,
             std::string(field) + " is not a number: '" + std::string(value) +
                 "'");
    return 0.0;
  }
  if (!(v >= 0.0 && v <= 1.0)) {
    err.fail(RosterError::Kind::kOutOfRange, line,
             std::string(field) + " must be within [0, 1], got " +
                 std::string(value));
    return 0.0;
  }
  return v;
}

double parse_positive(std::string_view field, std::string_view value,
                      double max, std::size_t line, ErrorSink& err) {
  double v = 0.0;
  if (!parse_double(value, v)) {
    err.fail(RosterError::Kind::kMalformedLine, line,
             std::string(field) + " is not a number: '" + std::string(value) +
                 "'");
    return 1.0;
  }
  if (!(v > 0.0 && v <= max)) {
    err.fail(RosterError::Kind::kOutOfRange, line,
             std::string(field) + " must be within (0, " + fmt_double(max) +
                 "], got " + std::string(value));
    return 1.0;
  }
  return v;
}

std::uint64_t parse_uint(std::string_view field, std::string_view value,
                         std::uint64_t min, std::uint64_t max, std::size_t line,
                         ErrorSink& err) {
  std::uint64_t v = 0;
  if (!parse_u64(value, v)) {
    err.fail(RosterError::Kind::kMalformedLine, line,
             std::string(field) + " is not an unsigned integer: '" +
                 std::string(value) + "'");
    return min;
  }
  if (v < min || v > max) {
    err.fail(RosterError::Kind::kOutOfRange, line,
             std::string(field) + " must be within [" + std::to_string(min) +
                 ", " + std::to_string(max) + "], got " + std::string(value));
    return min;
  }
  return v;
}

/// `key=value` pairs for `step` and `fleet` directives.
struct KeyValue {
  std::string_view key;
  std::string_view value;
};

bool split_key_value(std::string_view token, KeyValue& out) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  out.key = token.substr(0, eq);
  out.value = token.substr(eq + 1);
  return true;
}

void parse_step_line(std::string_view rest, std::size_t line,
                     DeviceProfile& profile, ErrorSink& err) {
  const std::string_view kind_name = take_token(rest);
  if (kind_name.empty()) {
    err.fail(RosterError::Kind::kMalformedLine, line, "step without a kind");
    return;
  }
  const auto kind = step_kind_of(kind_name);
  if (!kind) {
    err.fail(RosterError::Kind::kUnknownStepKind, line,
             "unknown step kind '" + std::string(kind_name) + "'");
    return;
  }
  SetupStep step;
  step.kind = *kind;
  while (!rest.empty() && !err.failed()) {
    const std::string_view token = take_token(rest);
    KeyValue kv;
    if (!split_key_value(token, kv)) {
      err.fail(RosterError::Kind::kMalformedLine, line,
               "step attribute is not key=value: '" + std::string(token) + "'");
      return;
    }
    if (kv.key == "host") {
      step.host = std::string(kv.value);
    } else if (kv.key == "path") {
      step.path = std::string(kv.value);
    } else if (kv.key == "remote") {
      if (!parse_ipv4(kv.value, step.remote)) {
        err.fail(RosterError::Kind::kMalformedLine, line,
                 "remote is not an IPv4 address: '" + std::string(kv.value) +
                     "'");
      }
    } else if (kv.key == "port") {
      step.port = static_cast<std::uint16_t>(
          parse_uint("port", kv.value, 0, 65535, line, err));
    } else if (kv.key == "repeat") {
      step.repeat = static_cast<int>(
          parse_uint("repeat", kv.value, 1, 1000, line, err));
    } else if (kv.key == "repeat-jitter") {
      step.repeat_jitter = static_cast<int>(
          parse_uint("repeat-jitter", kv.value, 0, 1000, line, err));
    } else if (kv.key == "skip-prob") {
      step.skip_prob = parse_prob("skip-prob", kv.value, line, err);
    } else if (kv.key == "gap-ms") {
      step.gap_ms = parse_positive("gap-ms", kv.value, 86'400'000.0, line, err);
    } else {
      err.fail(RosterError::Kind::kUnknownDirective, line,
               "unknown step attribute '" + std::string(kv.key) + "'");
    }
  }
  if (!err.failed()) profile.steps.push_back(std::move(step));
}

void parse_fleet_line(std::string_view rest, std::size_t line,
                      FleetBehavior& fleet, ErrorSink& err) {
  if (rest.empty()) {
    err.fail(RosterError::Kind::kMalformedLine, line,
             "fleet without attributes");
    return;
  }
  while (!rest.empty() && !err.failed()) {
    const std::string_view token = take_token(rest);
    KeyValue kv;
    if (!split_key_value(token, kv)) {
      err.fail(RosterError::Kind::kMalformedLine, line,
               "fleet attribute is not key=value: '" + std::string(token) +
                   "'");
      return;
    }
    if (kv.key == "cycles") {
      fleet.standby_cycles = static_cast<std::uint32_t>(
          parse_uint("cycles", kv.value, 1, 1000, line, err));
    } else if (kv.key == "cycle-gap-s") {
      fleet.cycle_gap_s =
          parse_positive("cycle-gap-s", kv.value, 1'000'000.0, line, err);
    } else if (kv.key == "downtime-s") {
      fleet.downtime_s =
          parse_positive("downtime-s", kv.value, 10'000'000.0, line, err);
    } else {
      err.fail(RosterError::Kind::kUnknownDirective, line,
               "unknown fleet attribute '" + std::string(kv.key) + "'");
    }
  }
}

void parse_dhcp_params(std::string_view value, std::size_t line,
                       DeviceProfile& profile, ErrorSink& err) {
  std::vector<std::uint8_t> params;
  while (!value.empty()) {
    const std::size_t comma = value.find(',');
    const std::string_view item = value.substr(0, comma);
    params.push_back(static_cast<std::uint8_t>(
        parse_uint("dhcp-params entry", item, 0, 255, line, err)));
    if (err.failed()) return;
    if (comma == std::string_view::npos) break;
    value.remove_prefix(comma + 1);
    if (value.empty()) {
      err.fail(RosterError::Kind::kMalformedLine, line,
               "dhcp-params has a trailing comma");
      return;
    }
  }
  if (params.empty()) {
    err.fail(RosterError::Kind::kMalformedLine, line, "dhcp-params is empty");
    return;
  }
  if (params.size() > 64) {
    err.fail(RosterError::Kind::kOutOfRange, line,
             "dhcp-params lists more than 64 options");
    return;
  }
  profile.dhcp_params = std::move(params);
}

void parse_oui(std::string_view value, std::size_t line,
               DeviceProfile& profile, ErrorSink& err) {
  std::array<std::uint8_t, 3> oui{};
  std::size_t pos = 0;
  for (int i = 0; i < 3; ++i) {
    if (i > 0) {
      if (pos >= value.size() || value[pos] != ':') {
        err.fail(RosterError::Kind::kMalformedLine, line,
                 "oui must be xx:xx:xx, got '" + std::string(value) + "'");
        return;
      }
      ++pos;
    }
    const std::size_t len = std::min<std::size_t>(2, value.size() - pos);
    if (len != 2 || !parse_hex_byte(value.substr(pos, 2), oui[i])) {
      err.fail(RosterError::Kind::kMalformedLine, line,
               "oui must be xx:xx:xx, got '" + std::string(value) + "'");
      return;
    }
    pos += 2;
  }
  if (pos != value.size()) {
    err.fail(RosterError::Kind::kMalformedLine, line,
             "oui must be xx:xx:xx, got '" + std::string(value) + "'");
    return;
  }
  profile.oui = oui;
}

/// Writes one step directive in roster syntax, defaults elided.
void append_step(std::string& out, const SetupStep& step) {
  out += "  step ";
  out += step_name(step.kind);
  if (!step.host.empty()) out += " host=" + step.host;
  if (step.path != "/") out += " path=" + step.path;
  if (step.remote.value() != 0) out += " remote=" + step.remote.to_string();
  if (step.port != 0) out += " port=" + std::to_string(step.port);
  if (step.repeat != 1) out += " repeat=" + std::to_string(step.repeat);
  if (step.repeat_jitter != 0) {
    out += " repeat-jitter=" + std::to_string(step.repeat_jitter);
  }
  if (step.skip_prob != 0.0) out += " skip-prob=" + fmt_double(step.skip_prob);
  out += " gap-ms=" + fmt_double(step.gap_ms);
  out += '\n';
}

/// Exhaustive step rendering for the canonical profile dump: every
/// attribute, defaults included.
void append_step_canonical(std::string& out, const SetupStep& step) {
  out += "  step ";
  out += step_name(step.kind);
  out += " host=" + step.host;
  out += " path=" + step.path;
  out += " remote=" + step.remote.to_string();
  out += " port=" + std::to_string(step.port);
  out += " repeat=" + std::to_string(step.repeat);
  out += " repeat-jitter=" + std::to_string(step.repeat_jitter);
  out += " skip-prob=" + fmt_double(step.skip_prob);
  out += " gap-ms=" + fmt_double(step.gap_ms);
  out += '\n';
}

}  // namespace

std::size_t Roster::total_devices() const {
  std::size_t n = 0;
  for (const auto& entry : entries) n += entry.count;
  return n;
}

const RosterEntry* Roster::find(std::string_view name) const {
  for (const auto& entry : entries) {
    if (entry.profile.name == name) return &entry;
  }
  return nullptr;
}

const char* to_string(RosterError::Kind kind) {
  switch (kind) {
    case RosterError::Kind::kNone: return "none";
    case RosterError::Kind::kIoError: return "io-error";
    case RosterError::Kind::kBadHeader: return "bad-header";
    case RosterError::Kind::kMalformedLine: return "malformed-line";
    case RosterError::Kind::kUnknownDirective: return "unknown-directive";
    case RosterError::Kind::kUnknownStepKind: return "unknown-step-kind";
    case RosterError::Kind::kDuplicateType: return "duplicate-type";
    case RosterError::Kind::kDuplicateField: return "duplicate-field";
    case RosterError::Kind::kOutOfRange: return "out-of-range";
    case RosterError::Kind::kMissingField: return "missing-field";
    case RosterError::Kind::kUnterminatedType: return "unterminated-type";
  }
  return "unknown";
}

std::string describe(const RosterError& error) {
  std::string out = to_string(error.kind);
  if (error.line != 0) out += " at line " + std::to_string(error.line);
  if (!error.detail.empty()) out += ": " + error.detail;
  return out;
}

std::vector<SetupStep> derive_standby_steps(const DeviceProfile& p) {
  std::vector<SetupStep> standby;
  standby.push_back({.kind = StepKind::kArpGateway, .skip_prob = 0.5,
                     .gap_ms = 200});
  for (const auto& step : p.steps) {
    switch (step.kind) {
      case StepKind::kHttpsCloudCheck:
        standby.push_back({.kind = StepKind::kHttpsCloudCheck,
                           .host = step.host, .remote = step.remote,
                           .gap_ms = 300});
        break;
      case StepKind::kHttpCloudCheck:
        standby.push_back({.kind = StepKind::kHttpCloudCheck,
                           .host = step.host, .path = "/keepalive",
                           .remote = step.remote, .gap_ms = 300});
        break;
      case StepKind::kTcpConnect:
        standby.push_back({.kind = StepKind::kTcpConnect, .remote = step.remote,
                           .port = step.port, .gap_ms = 250});
        break;
      case StepKind::kMdnsAnnounce:
        standby.push_back({.kind = StepKind::kMdnsAnnounce, .host = step.host,
                           .skip_prob = 0.3, .gap_ms = 220});
        break;
      case StepKind::kSsdpNotify:
        standby.push_back({.kind = StepKind::kSsdpNotify, .host = step.host,
                           .skip_prob = 0.3, .gap_ms = 220});
        break;
      case StepKind::kNtpSync:
        standby.push_back({.kind = StepKind::kNtpSync, .remote = step.remote,
                           .skip_prob = 0.4, .gap_ms = 180});
        break;
      case StepKind::kDnsQuery:
        // Operational DNS re-resolution of the same names (TTL expiry).
        standby.push_back({.kind = StepKind::kDnsQuery, .host = step.host,
                           .skip_prob = 0.5, .gap_ms = 150});
        break;
      default:
        break;  // join-preamble steps do not recur during operation
    }
  }
  return standby;
}

RosterResult parse_roster(std::string_view text) {
  Roster roster;
  ErrorSink err;
  std::unordered_set<std::string> seen_names;
  std::unordered_set<std::string> seen_fields;  // per open type block

  bool saw_header = false;
  bool in_type = false;
  std::size_t type_line = 0;  // line the open block started on
  RosterEntry entry;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size() && !err.failed()) {
    if (pos == text.size() && line_no > 0) break;
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    ++line_no;
    if (eol == std::string_view::npos && line.empty() && pos >= text.size()) {
      break;
    }

    // Comments run from '#' to end of line.
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    std::string_view rest = line;
    const std::string_view directive = take_token(rest);

    if (!saw_header) {
      if (directive != "roster" || rest != "v1") {
        err.fail(RosterError::Kind::kBadHeader, line_no,
                 "expected 'roster v1' as the first directive, got '" +
                     std::string(line) + "'");
        break;
      }
      saw_header = true;
      continue;
    }

    if (directive == "type") {
      if (in_type) {
        err.fail(RosterError::Kind::kMalformedLine, line_no,
                 "'type' inside an open type block (missing 'end'?)");
        break;
      }
      if (rest.empty() || rest.find(' ') != std::string_view::npos) {
        err.fail(RosterError::Kind::kMalformedLine, line_no,
                 "type name must be one token, got '" + std::string(rest) +
                     "'");
        break;
      }
      if (!seen_names.insert(std::string(rest)).second) {
        err.fail(RosterError::Kind::kDuplicateType, line_no,
                 "type '" + std::string(rest) + "' already defined");
        break;
      }
      in_type = true;
      type_line = line_no;
      entry = RosterEntry{};
      entry.profile.name = std::string(rest);
      seen_fields.clear();
      continue;
    }

    if (!in_type) {
      err.fail(RosterError::Kind::kMalformedLine, line_no,
               "'" + std::string(directive) + "' outside a type block");
      break;
    }

    if (directive == "end") {
      if (!rest.empty()) {
        err.fail(RosterError::Kind::kMalformedLine, line_no,
                 "'end' takes no value");
        break;
      }
      if (entry.profile.model.empty()) {
        err.fail(RosterError::Kind::kMissingField, line_no,
                 "type '" + entry.profile.name + "' has no model");
        break;
      }
      if (entry.profile.steps.empty()) {
        err.fail(RosterError::Kind::kMissingField, line_no,
                 "type '" + entry.profile.name + "' has no steps");
        break;
      }
      entry.profile.standby_steps = derive_standby_steps(entry.profile);
      roster.entries.push_back(std::move(entry));
      in_type = false;
      continue;
    }

    // Scalar directives may appear once per block; `step` repeats.
    if (directive != "step" &&
        !seen_fields.insert(std::string(directive)).second) {
      err.fail(RosterError::Kind::kDuplicateField, line_no,
               "'" + std::string(directive) + "' repeated within type '" +
                   entry.profile.name + "'");
      break;
    }

    if (directive == "model") {
      if (rest.empty()) {
        err.fail(RosterError::Kind::kMalformedLine, line_no,
                 "model must not be empty");
        break;
      }
      entry.profile.model = std::string(rest);
    } else if (directive == "oui") {
      parse_oui(rest, line_no, entry.profile, err);
    } else if (directive == "dhcp-params") {
      parse_dhcp_params(rest, line_no, entry.profile, err);
    } else if (directive == "dhcp-hostname") {
      if (rest.empty() || rest.find(' ') != std::string_view::npos) {
        err.fail(RosterError::Kind::kMalformedLine, line_no,
                 "dhcp-hostname must be one token");
        break;
      }
      entry.profile.dhcp_hostname = std::string(rest);
    } else if (directive == "retransmit-prob") {
      entry.profile.retransmit_prob =
          parse_prob("retransmit-prob", rest, line_no, err);
    } else if (directive == "intra-gap-ms") {
      entry.profile.intra_gap_ms =
          parse_positive("intra-gap-ms", rest, 1'000'000.0, line_no, err);
    } else if (directive == "uncontrolled-channel") {
      if (!rest.empty()) {
        err.fail(RosterError::Kind::kMalformedLine, line_no,
                 "uncontrolled-channel takes no value");
        break;
      }
      entry.profile.has_uncontrolled_channel = true;
    } else if (directive == "count") {
      entry.count = static_cast<std::uint32_t>(
          parse_uint("count", rest, 1, 1u << 24, line_no, err));
    } else if (directive == "fleet") {
      parse_fleet_line(rest, line_no, entry.fleet, err);
    } else if (directive == "step") {
      parse_step_line(rest, line_no, entry.profile, err);
    } else {
      err.fail(RosterError::Kind::kUnknownDirective, line_no,
               "unknown directive '" + std::string(directive) + "'");
    }
  }

  if (err.failed()) return err.take();
  if (!saw_header) {
    return RosterError{RosterError::Kind::kBadHeader, 0, "empty roster"};
  }
  if (in_type) {
    return RosterError{RosterError::Kind::kUnterminatedType, type_line,
                       "type '" + entry.profile.name +
                           "' is missing its 'end' (truncated file?)"};
  }
  return roster;
}

RosterResult load_roster_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return RosterError{RosterError::Kind::kIoError, 0,
                       "cannot open '" + path + "'"};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return RosterError{RosterError::Kind::kIoError, 0,
                       "read failure on '" + path + "'"};
  }
  return parse_roster(buffer.str());
}

std::string format_roster(const Roster& roster) {
  const RosterEntry defaults;
  std::string out = "roster v1\n";
  for (const auto& entry : roster.entries) {
    const DeviceProfile& p = entry.profile;
    out += "\ntype " + p.name + "\n";
    out += "  model " + p.model + "\n";
    out += "  oui " + fmt_oui(p.oui) + "\n";
    out += "  dhcp-params " + fmt_dhcp_params(p.dhcp_params) + "\n";
    if (!p.dhcp_hostname.empty()) {
      out += "  dhcp-hostname " + p.dhcp_hostname + "\n";
    }
    out += "  retransmit-prob " + fmt_double(p.retransmit_prob) + "\n";
    out += "  intra-gap-ms " + fmt_double(p.intra_gap_ms) + "\n";
    if (p.has_uncontrolled_channel) out += "  uncontrolled-channel\n";
    if (entry.count != 1) out += "  count " + std::to_string(entry.count) + "\n";
    if (entry.fleet != defaults.fleet) {
      out += "  fleet cycles=" + std::to_string(entry.fleet.standby_cycles) +
             " cycle-gap-s=" + fmt_double(entry.fleet.cycle_gap_s) +
             " downtime-s=" + fmt_double(entry.fleet.downtime_s) + "\n";
    }
    for (const auto& step : p.steps) append_step(out, step);
    out += "end\n";
  }
  return out;
}

std::string canonical_profile_text(const DeviceProfile& p) {
  std::string out = "profile " + p.name + "\n";
  out += "model " + p.model + "\n";
  out += "oui " + fmt_oui(p.oui) + "\n";
  out += "dhcp-params " + fmt_dhcp_params(p.dhcp_params) + "\n";
  out += "dhcp-hostname " + p.dhcp_hostname + "\n";
  out += "retransmit-prob " + fmt_double(p.retransmit_prob) + "\n";
  out += "intra-gap-ms " + fmt_double(p.intra_gap_ms) + "\n";
  out += "uncontrolled-channel ";
  out += p.has_uncontrolled_channel ? "true" : "false";
  out += "\nsteps " + std::to_string(p.steps.size()) + "\n";
  for (const auto& step : p.steps) append_step_canonical(out, step);
  out += "standby-steps " + std::to_string(p.standby_steps.size()) + "\n";
  for (const auto& step : p.standby_steps) append_step_canonical(out, step);
  out += "end\n";
  return out;
}

}  // namespace iotsentinel::sim
