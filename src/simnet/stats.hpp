// Small running-statistics helper (mean / stddev / min / max) used by the
// enforcement benches to report "Mean (± StDev)" rows like the paper's
// Tables IV-VI.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace iotsentinel::sim {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace iotsentinel::sim
