#include "simnet/fault_injection.hpp"

#include <utility>

namespace iotsentinel::sim {

FaultChannel::FaultChannel(FaultConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.reorder_depth == 0) config_.reorder_depth = 1;
  if (config_.corrupt_max_bits == 0) config_.corrupt_max_bits = 1;
}

void FaultChannel::corrupt(net::Bytes& bytes) {
  if (bytes.empty()) return;
  const std::size_t nbits = 1 + rng_.index(config_.corrupt_max_bits);
  for (std::size_t i = 0; i < nbits; ++i) {
    const std::size_t bit = rng_.index(bytes.size() * 8);
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

void FaultChannel::feed(TimedFrame frame, std::vector<TimedFrame>& out) {
  ++stats_.frames_in;
  // Fixed draw order and count per frame — the determinism contract: a
  // config change never shifts which draw later frames receive.
  const bool drop = rng_.chance(config_.drop_prob);
  const bool corrupted = rng_.chance(config_.corrupt_prob);
  const bool duplicated = rng_.chance(config_.duplicate_prob);
  const bool reordered = rng_.chance(config_.reorder_prob);

  if (drop) {
    ++stats_.dropped;
  } else {
    if (corrupted) {
      corrupt(frame.frame);
      ++stats_.corrupted;
    }
    if (duplicated) {
      ++stats_.duplicated;
      out.push_back(frame);
      ++stats_.emitted;
    }
    if (reordered) {
      ++stats_.reordered;
      // +1: the aging pass below runs in this same feed, so `depth`
      // subsequent inputs (not depth-1) pass before re-emission.
      held_.push_back({config_.reorder_depth + 1, std::move(frame)});
    } else {
      out.push_back(std::move(frame));
      ++stats_.emitted;
    }
  }

  // Age held frames by one input tick; equal initial depths make the
  // deque expire front-first.
  for (Held& h : held_) --h.remaining;
  while (!held_.empty() && held_.front().remaining == 0) {
    out.push_back(std::move(held_.front().frame));
    ++stats_.emitted;
    held_.pop_front();
  }
}

void FaultChannel::flush(std::vector<TimedFrame>& out) {
  for (Held& h : held_) {
    out.push_back(std::move(h.frame));
    ++stats_.emitted;
  }
  held_.clear();
}

std::vector<TimedFrame> FaultChannel::apply(std::vector<TimedFrame> trace) {
  std::vector<TimedFrame> out;
  out.reserve(trace.size());
  for (TimedFrame& frame : trace) feed(std::move(frame), out);
  flush(out);
  return out;
}

}  // namespace iotsentinel::sim
