#include "simnet/device_catalog.hpp"

#include <unordered_map>

namespace iotsentinel::sim {
namespace {

using net::Ipv4Address;

// Stable fake cloud endpoints, one subnet per vendor. Addresses only need
// to be non-RFC1918 so the enforcement layer treats them as Internet.
constexpr Ipv4Address kFitbitCloud = Ipv4Address::of(104, 16, 1, 10);
constexpr Ipv4Address kHomematicCloud = Ipv4Address::of(104, 17, 2, 20);
constexpr Ipv4Address kWithingsCloud = Ipv4Address::of(104, 18, 3, 30);
constexpr Ipv4Address kMaxCloud = Ipv4Address::of(104, 19, 4, 40);
constexpr Ipv4Address kHueCloud = Ipv4Address::of(104, 20, 5, 50);
constexpr Ipv4Address kEdnetCloud = Ipv4Address::of(104, 21, 6, 60);
constexpr Ipv4Address kEdimaxCloud = Ipv4Address::of(104, 22, 7, 70);
constexpr Ipv4Address kOsramCloud = Ipv4Address::of(104, 23, 8, 80);
constexpr Ipv4Address kWemoCloud = Ipv4Address::of(104, 24, 9, 90);
constexpr Ipv4Address kDlinkCloud = Ipv4Address::of(104, 25, 10, 100);
constexpr Ipv4Address kTplinkCloud = Ipv4Address::of(104, 26, 11, 110);
constexpr Ipv4Address kSmarterCloud = Ipv4Address::of(104, 27, 12, 120);
constexpr Ipv4Address kPoolNtp = Ipv4Address::of(94, 130, 49, 186);

/// Common WiFi join preamble: WPA2 handshake, DHCP, ARP announcement.
std::vector<SetupStep> wifi_join() {
  return {
      {.kind = StepKind::kEapolHandshake, .gap_ms = 20},
      {.kind = StepKind::kDhcpExchange, .repeat = 1, .repeat_jitter = 1,
       .gap_ms = 120},
      {.kind = StepKind::kArpAnnounce, .gap_ms = 60},
      {.kind = StepKind::kArpGateway, .gap_ms = 40},
  };
}

/// Ethernet join preamble: no EAPoL, straight to DHCP.
std::vector<SetupStep> ethernet_join() {
  return {
      {.kind = StepKind::kDhcpExchange, .repeat = 1, .repeat_jitter = 1,
       .gap_ms = 100},
      {.kind = StepKind::kArpAnnounce, .gap_ms = 50},
      {.kind = StepKind::kArpGateway, .gap_ms = 40},
  };
}

void append(std::vector<SetupStep>& dst, std::vector<SetupStep> extra) {
  for (auto& s : extra) dst.push_back(std::move(s));
}

/// The shared script of the confusable D-Link HNAP sensor platform
/// (water sensor / siren / motion sensor — identical HW and FW).
std::vector<SetupStep> dlink_sensor_platform() {
  std::vector<SetupStep> steps = wifi_join();
  append(steps, {
      {.kind = StepKind::kIpv6RouterSolicit, .gap_ms = 30},
      {.kind = StepKind::kMldReport, .gap_ms = 25},
      {.kind = StepKind::kDnsQuery, .host = "mp-device.auto.mydlink.com",
       .repeat = 1, .repeat_jitter = 1, .gap_ms = 90},
      {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .repeat = 1,
       .gap_ms = 70},
      {.kind = StepKind::kSsdpNotify, .host = "dlink-hnap", .repeat = 2,
       .repeat_jitter = 1, .gap_ms = 110},
      {.kind = StepKind::kHttpsCloudCheck, .host = "mp-device.auto.mydlink.com",
       .remote = kDlinkCloud, .gap_ms = 160},
      {.kind = StepKind::kHttpCloudCheck, .host = "wpad.local",
       .path = "/HNAP1/", .remote = kDlinkCloud, .skip_prob = 0.35,
       .gap_ms = 120},
  });
  return steps;
}

/// The shared script of the TP-Link HS1xx smart-plug platform.
std::vector<SetupStep> tplink_plug_platform() {
  std::vector<SetupStep> steps = wifi_join();
  append(steps, {
      {.kind = StepKind::kDnsQuery, .host = "devs.tplinkcloud.com",
       .repeat = 2, .gap_ms = 80},
      {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .repeat = 2,
       .repeat_jitter = 1, .gap_ms = 60},
      {.kind = StepKind::kTcpConnect, .remote = kTplinkCloud, .port = 50443,
       .gap_ms = 130},
      {.kind = StepKind::kHttpsCloudCheck, .host = "devs.tplinkcloud.com",
       .remote = kTplinkCloud, .gap_ms = 140},
      {.kind = StepKind::kIcmpPing, .remote = kTplinkCloud, .skip_prob = 0.4,
       .gap_ms = 90},
  });
  return steps;
}

/// The shared script of the Edimax SP-x101W smart-plug platform.
std::vector<SetupStep> edimax_plug_platform() {
  std::vector<SetupStep> steps = wifi_join();
  append(steps, {
      {.kind = StepKind::kDnsQuery, .host = "mycloud.edimax.com",
       .repeat = 1, .repeat_jitter = 1, .gap_ms = 100},
      {.kind = StepKind::kTcpConnect, .remote = kEdimaxCloud, .port = 8080,
       .repeat = 2, .gap_ms = 90},
      {.kind = StepKind::kHttpCloudCheck, .host = "mycloud.edimax.com",
       .path = "/check", .remote = kEdimaxCloud, .gap_ms = 120},
      {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .skip_prob = 0.3,
       .gap_ms = 70},
  });
  return steps;
}

/// The shared script of the Smarter kitchen-appliance platform
/// (SmarterCoffee and iKettle 2.0 run the same WiFi module/firmware).
std::vector<SetupStep> smarter_platform() {
  std::vector<SetupStep> steps = wifi_join();
  append(steps, {
      {.kind = StepKind::kMdnsAnnounce, .host = "_smarter._tcp.local",
       .repeat = 2, .repeat_jitter = 1, .gap_ms = 90},
      {.kind = StepKind::kDnsQuery, .host = "time.smarter.am", .gap_ms = 80},
      {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .gap_ms = 60},
      {.kind = StepKind::kTcpConnect, .remote = kSmarterCloud, .port = 2081,
       .repeat = 2, .gap_ms = 110},
  });
  return steps;
}

/// Derives one standby/operation cycle from a profile's setup script:
/// the device's cloud endpoints get periodic keepalives, announced
/// services get re-announcements, NTP users re-sync, everyone ARPs its
/// gateway occasionally. Derivation is deterministic, so identical
/// platforms (the confusable families) stay identical in standby too.
std::vector<SetupStep> derive_standby_steps(const DeviceProfile& p) {
  std::vector<SetupStep> standby;
  standby.push_back({.kind = StepKind::kArpGateway, .skip_prob = 0.5,
                     .gap_ms = 200});
  for (const auto& step : p.steps) {
    switch (step.kind) {
      case StepKind::kHttpsCloudCheck:
        standby.push_back({.kind = StepKind::kHttpsCloudCheck,
                           .host = step.host, .remote = step.remote,
                           .gap_ms = 300});
        break;
      case StepKind::kHttpCloudCheck:
        standby.push_back({.kind = StepKind::kHttpCloudCheck,
                           .host = step.host, .path = "/keepalive",
                           .remote = step.remote, .gap_ms = 300});
        break;
      case StepKind::kTcpConnect:
        standby.push_back({.kind = StepKind::kTcpConnect, .remote = step.remote,
                           .port = step.port, .gap_ms = 250});
        break;
      case StepKind::kMdnsAnnounce:
        standby.push_back({.kind = StepKind::kMdnsAnnounce, .host = step.host,
                           .skip_prob = 0.3, .gap_ms = 220});
        break;
      case StepKind::kSsdpNotify:
        standby.push_back({.kind = StepKind::kSsdpNotify, .host = step.host,
                           .skip_prob = 0.3, .gap_ms = 220});
        break;
      case StepKind::kNtpSync:
        standby.push_back({.kind = StepKind::kNtpSync, .remote = step.remote,
                           .skip_prob = 0.4, .gap_ms = 180});
        break;
      case StepKind::kDnsQuery:
        // Operational DNS re-resolution of the same names (TTL expiry).
        standby.push_back({.kind = StepKind::kDnsQuery, .host = step.host,
                           .skip_prob = 0.5, .gap_ms = 150});
        break;
      default:
        break;  // join-preamble steps do not recur during operation
    }
  }
  return standby;
}

std::vector<DeviceProfile> build_catalog() {
  std::vector<DeviceProfile> catalog;
  catalog.reserve(27);

  // --- Aria: Fitbit Aria WiFi scale -------------------------------------
  {
    DeviceProfile p{.name = "Aria", .model = "Fitbit Aria WiFi-enabled scale"};
    p.steps = wifi_join();
    append(p.steps, {
        {.kind = StepKind::kDnsQuery, .host = "fitbit.com", .gap_ms = 70},
        {.kind = StepKind::kDnsQuery, .host = "aria.fitbit.com",
         .gap_ms = 50},
        {.kind = StepKind::kHttpCloudCheck, .host = "aria.fitbit.com",
         .path = "/scale/register", .remote = kFitbitCloud, .repeat = 2,
         .gap_ms = 140},
        {.kind = StepKind::kIcmpPing, .remote = kFitbitCloud,
         .skip_prob = 0.2, .gap_ms = 80},
    });
    p.dhcp_params = {1, 3, 6};
    p.retransmit_prob = 0.08;
    p.oui = {0x20, 0xbb, 0xc0};
    catalog.push_back(std::move(p));
  }

  // --- HomeMaticPlug: connects through the Homematic hub ----------------
  {
    DeviceProfile p{.name = "HomeMaticPlug",
                    .model = "Homematic pluggable switch HMIP-PS"};
    // Proprietary RF device: what the gateway sees is the hub's relayed
    // traffic burst — short, wired, no WiFi handshake.
    p.steps = ethernet_join();
    append(p.steps, {
        {.kind = StepKind::kDnsQuery, .host = "lookup.homematic.com",
         .gap_ms = 90},
        {.kind = StepKind::kTcpConnect, .remote = kHomematicCloud,
         .port = 2001, .repeat = 3, .gap_ms = 100},
        {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .gap_ms = 60},
    });
    p.dhcp_params = {1, 3, 6, 15, 28};
    p.intra_gap_ms = 12.0;
    p.oui = {0x00, 0x1a, 0x22};
    catalog.push_back(std::move(p));
  }

  // --- Withings: WS-30 scale --------------------------------------------
  {
    DeviceProfile p{.name = "Withings",
                    .model = "Withings Wireless Scale WS-30"};
    p.steps = wifi_join();
    append(p.steps, {
        {.kind = StepKind::kDnsQuery, .host = "scalews.withings.net",
         .repeat = 2, .gap_ms = 70},
        {.kind = StepKind::kHttpCloudCheck, .host = "scalews.withings.net",
         .path = "/cgi-bin/association", .remote = kWithingsCloud,
         .gap_ms = 130},
        {.kind = StepKind::kHttpsCloudCheck, .host = "scalews.withings.net",
         .remote = kWithingsCloud, .gap_ms = 120},
    });
    p.dhcp_params = {1, 3, 6, 12, 15, 28, 42};
    p.oui = {0x00, 0x24, 0xe4};
    catalog.push_back(std::move(p));
  }

  // --- MAXGateway: wired cube --------------------------------------------
  {
    DeviceProfile p{.name = "MAXGateway",
                    .model = "MAX! Cube LAN Gateway"};
    p.steps = ethernet_join();
    append(p.steps, {
        {.kind = StepKind::kArpGateway, .repeat = 2, .gap_ms = 30},
        {.kind = StepKind::kDnsQuery, .host = "max.eq-3.de", .gap_ms = 80},
        {.kind = StepKind::kTcpConnect, .remote = kMaxCloud, .port = 62910,
         .repeat = 2, .gap_ms = 110},
        {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .repeat = 2,
         .gap_ms = 50},
    });
    p.dhcp_params = {1, 3, 6};
    p.intra_gap_ms = 15.0;
    p.oui = {0x00, 0x1a, 0x22};
    catalog.push_back(std::move(p));
  }

  // --- HueBridge: Ethernet hub with ZigBee radio -------------------------
  {
    DeviceProfile p{.name = "HueBridge",
                    .model = "Philips Hue Bridge 3241312018"};
    p.steps = ethernet_join();
    append(p.steps, {
        {.kind = StepKind::kIgmpJoin, .gap_ms = 40},
        {.kind = StepKind::kSsdpNotify, .host = "hue-bridgeid", .repeat = 3,
         .repeat_jitter = 1, .gap_ms = 90},
        {.kind = StepKind::kMdnsAnnounce, .host = "_hue._tcp.local",
         .repeat = 2, .gap_ms = 70},
        {.kind = StepKind::kDnsQuery, .host = "www.meethue.com",
         .gap_ms = 80},
        {.kind = StepKind::kHttpsCloudCheck, .host = "ws.meethue.com",
         .remote = kHueCloud, .gap_ms = 140},
        {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .gap_ms = 60},
    });
    p.dhcp_params = {1, 3, 6, 15, 42, 119};
    p.oui = {0x00, 0x17, 0x88};
    catalog.push_back(std::move(p));
  }

  // --- HueSwitch: ZigBee switch paired through the bridge ----------------
  {
    DeviceProfile p{.name = "HueSwitch",
                    .model = "Philips Hue Light Switch PTM 215Z"};
    // Visible as a short burst of bridge-relayed events: mDNS update +
    // cloud sync, no join preamble of its own.
    p.steps = {
        {.kind = StepKind::kMdnsAnnounce, .host = "_hue._tcp.local",
         .repeat = 1, .gap_ms = 60},
        {.kind = StepKind::kHttpCloudCheck, .host = "ws.meethue.com",
         .path = "/api/sensorjoin", .remote = kHueCloud, .repeat = 2,
         .gap_ms = 120},
        {.kind = StepKind::kHttpsCloudCheck, .host = "ws.meethue.com",
         .remote = kHueCloud, .gap_ms = 100},
    };
    p.dhcp_params = {1, 3, 6, 15, 42, 119};
    p.retransmit_prob = 0.03;
    p.oui = {0x00, 0x17, 0x88};
    catalog.push_back(std::move(p));
  }

  // --- EdnetGateway -------------------------------------------------------
  {
    DeviceProfile p{.name = "EdnetGateway",
                    .model = "Ednet.living Starter kit power Gateway"};
    p.steps = wifi_join();
    append(p.steps, {
        {.kind = StepKind::kSsdpSearch, .host = "urn:schemas-upnp-org:device:basic:1",
         .repeat = 3, .repeat_jitter = 1, .gap_ms = 70},
        {.kind = StepKind::kDnsQuery, .host = "cloud.ednet-living.com",
         .gap_ms = 90},
        {.kind = StepKind::kTcpConnect, .remote = kEdnetCloud, .port = 10001,
         .repeat = 2, .gap_ms = 100},
    });
    p.dhcp_params = {1, 3, 6, 15, 44, 46, 47};
    p.oui = {0xac, 0xcf, 0x23};
    catalog.push_back(std::move(p));
  }

  // --- EdnetCam ------------------------------------------------------------
  {
    DeviceProfile p{.name = "EdnetCam",
                    .model = "Ednet Wireless indoor IP camera Cube"};
    p.steps = wifi_join();
    append(p.steps, {
        {.kind = StepKind::kIgmpJoin, .gap_ms = 35},
        {.kind = StepKind::kSsdpNotify, .host = "ednet-cam", .repeat = 2,
         .gap_ms = 80},
        {.kind = StepKind::kDnsQuery, .host = "ipcam.ednet.com",
         .repeat = 2, .gap_ms = 70},
        {.kind = StepKind::kHttpCloudCheck, .host = "ipcam.ednet.com",
         .path = "/checkupdate.cgi", .remote = kEdnetCloud, .gap_ms = 130},
        {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .repeat = 3,
         .gap_ms = 45},
    });
    p.dhcp_params = {1, 3, 6, 15, 44, 46, 47};
    p.oui = {0xac, 0xcf, 0x23};
    catalog.push_back(std::move(p));
  }

  // --- EdimaxCam -----------------------------------------------------------
  {
    DeviceProfile p{.name = "EdimaxCam",
                    .model = "Edimax IC-3115W HD WiFi Camera"};
    p.steps = wifi_join();
    append(p.steps, {
        {.kind = StepKind::kIgmpJoin, .repeat = 2, .gap_ms = 40},
        {.kind = StepKind::kSsdpNotify, .host = "edimax-ic3115", .repeat = 3,
         .gap_ms = 75},
        {.kind = StepKind::kDnsQuery, .host = "www.myedimax.com",
         .gap_ms = 85},
        {.kind = StepKind::kTcpConnect, .remote = kEdimaxCloud, .port = 9765,
         .gap_ms = 95},
        {.kind = StepKind::kHttpCloudCheck, .host = "www.myedimax.com",
         .path = "/reg.cgi", .remote = kEdimaxCloud, .repeat = 2,
         .gap_ms = 125},
    });
    p.dhcp_params = {1, 3, 6, 15, 28};
    p.oui = {0x74, 0xda, 0x38};
    catalog.push_back(std::move(p));
  }

  // --- Lightify ------------------------------------------------------------
  {
    DeviceProfile p{.name = "Lightify", .model = "Osram Lightify Gateway"};
    p.steps = wifi_join();
    append(p.steps, {
        {.kind = StepKind::kIpv6RouterSolicit, .gap_ms = 30},
        {.kind = StepKind::kMldReport, .repeat = 2, .gap_ms = 30},
        {.kind = StepKind::kDnsQuery, .host = "lightify.osram.com",
         .repeat = 2, .gap_ms = 75},
        {.kind = StepKind::kHttpsCloudCheck, .host = "lightify.osram.com",
         .remote = kOsramCloud, .repeat = 2, .gap_ms = 150},
        {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .gap_ms = 55},
    });
    p.dhcp_params = {1, 3, 6, 15, 33, 121, 249};
    p.oui = {0x84, 0x18, 0x26};
    catalog.push_back(std::move(p));
  }

  // --- WeMo family: distinct purposes => distinguishable ------------------
  {
    DeviceProfile p{.name = "WeMoInsightSwitch",
                    .model = "WeMo Insight Switch F7C029de"};
    p.steps = wifi_join();
    append(p.steps, {
        {.kind = StepKind::kSsdpNotify, .host = "wemo-insight", .repeat = 3,
         .repeat_jitter = 1, .gap_ms = 60},
        {.kind = StepKind::kSsdpSearch, .host = "urn:Belkin:device:insight:1",
         .repeat = 2, .gap_ms = 70},
        {.kind = StepKind::kDnsQuery, .host = "api.xbcs.net", .gap_ms = 80},
        {.kind = StepKind::kHttpsCloudCheck, .host = "api.xbcs.net",
         .remote = kWemoCloud, .gap_ms = 140},
        {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .repeat = 2,
         .gap_ms = 50},
    });
    p.dhcp_params = {1, 3, 6, 15, 28, 42};
    p.oui = {0xec, 0x1a, 0x59};
    catalog.push_back(std::move(p));
  }
  {
    DeviceProfile p{.name = "WeMoLink",
                    .model = "WeMo Link Lighting Bridge F7C031vf"};
    p.steps = wifi_join();
    append(p.steps, {
        {.kind = StepKind::kSsdpNotify, .host = "wemo-link-bridge",
         .repeat = 4, .repeat_jitter = 1, .gap_ms = 55},
        {.kind = StepKind::kMdnsAnnounce, .host = "_wemo._tcp.local",
         .gap_ms = 65},
        {.kind = StepKind::kDnsQuery, .host = "api.xbcs.net", .repeat = 2,
         .gap_ms = 75},
        {.kind = StepKind::kHttpCloudCheck, .host = "api.xbcs.net",
         .path = "/bridge/setup", .remote = kWemoCloud, .gap_ms = 120},
        {.kind = StepKind::kHttpsCloudCheck, .host = "api.xbcs.net",
         .remote = kWemoCloud, .gap_ms = 110},
    });
    p.dhcp_params = {1, 3, 6, 15, 28, 42};
    p.oui = {0xec, 0x1a, 0x59};
    catalog.push_back(std::move(p));
  }
  {
    DeviceProfile p{.name = "WeMoSwitch", .model = "WeMo Switch F7C027de"};
    p.steps = wifi_join();
    append(p.steps, {
        {.kind = StepKind::kSsdpNotify, .host = "wemo-switch", .repeat = 3,
         .gap_ms = 60},
        {.kind = StepKind::kDnsQuery, .host = "prod.xbcs.net", .gap_ms = 80},
        {.kind = StepKind::kHttpsCloudCheck, .host = "prod.xbcs.net",
         .remote = kWemoCloud, .repeat = 2, .gap_ms = 130},
        {.kind = StepKind::kIcmpPing, .remote = kWemoCloud, .skip_prob = 0.3,
         .gap_ms = 70},
    });
    p.dhcp_params = {1, 3, 6, 15, 28, 42};
    p.oui = {0x94, 0x10, 0x3e};
    catalog.push_back(std::move(p));
  }

  // --- D-Link non-sensor devices (distinguishable) -------------------------
  {
    DeviceProfile p{.name = "D-LinkHomeHub",
                    .model = "D-Link Connected Home Hub DCH-G020"};
    p.steps = ethernet_join();
    append(p.steps, {
        {.kind = StepKind::kIgmpJoin, .gap_ms = 35},
        {.kind = StepKind::kSsdpNotify, .host = "dlink-hub", .repeat = 3,
         .gap_ms = 70},
        {.kind = StepKind::kSsdpSearch, .host = "urn:schemas-upnp-org:device:gateway:1",
         .repeat = 2, .gap_ms = 60},
        {.kind = StepKind::kDnsQuery, .host = "hub.auto.mydlink.com",
         .repeat = 2, .gap_ms = 80},
        {.kind = StepKind::kHttpsCloudCheck, .host = "hub.auto.mydlink.com",
         .remote = kDlinkCloud, .gap_ms = 140},
        {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .gap_ms = 55},
    });
    p.dhcp_params = {1, 3, 6, 15, 28, 33};
    p.oui = {0xc4, 0x12, 0xf5};
    catalog.push_back(std::move(p));
  }
  {
    DeviceProfile p{.name = "D-LinkDoorSensor",
                    .model = "D-Link Door & Window sensor (Z-Wave)"};
    // Z-Wave device visible only as hub-relayed events.
    p.steps = {
        {.kind = StepKind::kHttpCloudCheck, .host = "hub.auto.mydlink.com",
         .path = "/zwave/inclusion", .remote = kDlinkCloud, .repeat = 2,
         .gap_ms = 130},
        {.kind = StepKind::kDnsQuery, .host = "event.auto.mydlink.com",
         .gap_ms = 70},
        {.kind = StepKind::kHttpsCloudCheck, .host = "event.auto.mydlink.com",
         .remote = kDlinkCloud, .gap_ms = 110},
    };
    p.dhcp_params = {1, 3, 6, 15, 28, 33};
    p.retransmit_prob = 0.03;
    p.oui = {0xc4, 0x12, 0xf5};
    catalog.push_back(std::move(p));
  }
  {
    DeviceProfile p{.name = "D-LinkDayCam",
                    .model = "D-Link WiFi Day Camera DCS-930L"};
    p.steps = wifi_join();
    append(p.steps, {
        {.kind = StepKind::kIgmpJoin, .repeat = 2, .gap_ms = 40},
        {.kind = StepKind::kSsdpNotify, .host = "dcs-930l", .repeat = 2,
         .gap_ms = 80},
        {.kind = StepKind::kDnsQuery, .host = "signal.auto.mydlink.com",
         .repeat = 2, .gap_ms = 75},
        {.kind = StepKind::kHttpCloudCheck, .host = "signal.auto.mydlink.com",
         .path = "/signin.html", .remote = kDlinkCloud, .repeat = 2,
         .gap_ms = 120},
        {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .repeat = 2,
         .gap_ms = 50},
    });
    p.dhcp_params = {1, 3, 6, 15, 28, 33};
    p.oui = {0xb0, 0xc5, 0x54};
    catalog.push_back(std::move(p));
  }
  {
    DeviceProfile p{.name = "D-LinkCam",
                    .model = "D-Link HD IP Camera DCH-935L"};
    p.steps = wifi_join();
    append(p.steps, {
        {.kind = StepKind::kIpv6RouterSolicit, .gap_ms = 30},
        {.kind = StepKind::kMldReport, .gap_ms = 25},
        {.kind = StepKind::kDnsQuery, .host = "cam.auto.mydlink.com",
         .repeat = 2, .gap_ms = 70},
        {.kind = StepKind::kHttpsCloudCheck, .host = "cam.auto.mydlink.com",
         .remote = kDlinkCloud, .repeat = 2, .gap_ms = 140},
        {.kind = StepKind::kSsdpNotify, .host = "dch-935l", .repeat = 2,
         .gap_ms = 85},
        {.kind = StepKind::kNtpSync, .remote = kPoolNtp, .gap_ms = 55},
    });
    p.dhcp_params = {1, 3, 6, 15, 28, 33};
    p.oui = {0xb0, 0xc5, 0x54};
    catalog.push_back(std::move(p));
  }

  // --- The confusable D-Link sensor family (paper indices 1-4) ------------
  {
    // Index 1: same platform as the sensors, plug-specific extra step =>
    // slightly more identifiable, as in Fig. 5 (accuracy ~0.6 vs ~0.45).
    DeviceProfile p{.name = "D-LinkSwitch",
                    .model = "D-Link Smart plug DSP-W215"};
    p.steps = dlink_sensor_platform();
    p.steps.push_back({.kind = StepKind::kNtpSync, .remote = kPoolNtp,
                       .skip_prob = 0.5, .gap_ms = 65});
    p.dhcp_params = {1, 3, 6, 15, 28, 33};
    p.oui = {0xc0, 0xa0, 0xbb};
    catalog.push_back(std::move(p));
  }
  {
    DeviceProfile p{.name = "D-LinkWaterSensor",
                    .model = "D-Link Water sensor DCH-S160"};
    p.steps = dlink_sensor_platform();
    p.dhcp_params = {1, 3, 6, 15, 28, 33};
    p.oui = {0xc0, 0xa0, 0xbb};
    catalog.push_back(std::move(p));
  }
  {
    DeviceProfile p{.name = "D-LinkSiren", .model = "D-Link Siren DCH-S220"};
    p.steps = dlink_sensor_platform();
    p.dhcp_params = {1, 3, 6, 15, 28, 33};
    p.oui = {0xc0, 0xa0, 0xbb};
    catalog.push_back(std::move(p));
  }
  {
    DeviceProfile p{.name = "D-LinkSensor",
                    .model = "D-Link WiFi Motion sensor DCH-S150"};
    p.steps = dlink_sensor_platform();
    p.dhcp_params = {1, 3, 6, 15, 28, 33};
    p.oui = {0xc0, 0xa0, 0xbb};
    catalog.push_back(std::move(p));
  }

  // --- TP-Link plug pair (indices 5-6): identical platform ----------------
  {
    DeviceProfile p{.name = "TP-LinkPlugHS110",
                    .model = "TP-Link WiFi Smart plug HS110"};
    p.steps = tplink_plug_platform();
    p.dhcp_params = {1, 3, 6, 12, 15, 28, 40, 41, 42};
    p.oui = {0x50, 0xc7, 0xbf};
    catalog.push_back(std::move(p));
  }
  {
    DeviceProfile p{.name = "TP-LinkPlugHS100",
                    .model = "TP-Link WiFi Smart plug HS100"};
    p.steps = tplink_plug_platform();
    p.dhcp_params = {1, 3, 6, 12, 15, 28, 40, 41, 42};
    p.oui = {0x50, 0xc7, 0xbf};
    catalog.push_back(std::move(p));
  }

  // --- Edimax plug pair (indices 7-8): identical platform -----------------
  {
    DeviceProfile p{.name = "EdimaxPlug1101W",
                    .model = "Edimax SP-1101W Smart Plug Switch"};
    p.steps = edimax_plug_platform();
    p.dhcp_params = {1, 3, 6, 15, 28};
    p.oui = {0x74, 0xda, 0x38};
    catalog.push_back(std::move(p));
  }
  {
    DeviceProfile p{.name = "EdimaxPlug2101W",
                    .model = "Edimax SP-2101W Smart Plug Switch"};
    p.steps = edimax_plug_platform();
    p.dhcp_params = {1, 3, 6, 15, 28};
    p.oui = {0x74, 0xda, 0x38};
    catalog.push_back(std::move(p));
  }

  // --- Smarter pair (indices 9-10): identical platform --------------------
  {
    DeviceProfile p{.name = "SmarterCoffee",
                    .model = "SmarterCoffee machine SMC10-EU"};
    p.steps = smarter_platform();
    p.dhcp_params = {1, 3, 6, 15};
    p.oui = {0x5c, 0xcf, 0x7f};
    catalog.push_back(std::move(p));
  }
  {
    DeviceProfile p{.name = "iKettle2",
                    .model = "Smarter iKettle 2.0 SMK20-EU"};
    p.steps = smarter_platform();
    p.dhcp_params = {1, 3, 6, 15};
    p.oui = {0x5c, 0xcf, 0x7f};
    catalog.push_back(std::move(p));
  }

  // Post-pass: model-specific DHCP hostnames (a representative subset —
  // not every vendor sends option 12).
  const std::pair<const char*, const char*> hostnames[] = {
      {"HueBridge", "Philips-hue"},       {"EdimaxCam", "IC-3115W"},
      {"WeMoSwitch", "wemo"},             {"Aria", "fitbit-aria"},
      {"D-LinkCam", "DCH-935L"},          {"TP-LinkPlugHS110", "HS110"},
      // Identical-platform siblings announce the same module hostname
      // (paper Table III: the pairs are indistinguishable on the wire).
      {"TP-LinkPlugHS100", "HS100"},      {"iKettle2", "smarter"},
      {"SmarterCoffee", "smarter"},
  };
  for (auto& p : catalog) {
    for (const auto& [name, host] : hostnames) {
      if (p.name == name) p.dhcp_hostname = host;
    }
  }

  // Post-pass: synthesize standby cycles and flag devices with radio
  // channels the gateway cannot control (Table II "Other" column:
  // Homematic proprietary RF, MAX! RF, ZigBee/Z-Wave radios on hubs).
  for (auto& p : catalog) {
    p.standby_steps = derive_standby_steps(p);
    p.has_uncontrolled_channel =
        p.name == "HomeMaticPlug" || p.name == "MAXGateway" ||
        p.name == "EdnetGateway" || p.name == "HueBridge" ||
        p.name == "HueSwitch" || p.name == "Lightify" ||
        p.name == "WeMoLink" || p.name == "D-LinkHomeHub" ||
        p.name == "D-LinkDoorSensor";
  }
  return catalog;
}

}  // namespace

const std::vector<DeviceProfile>& device_catalog() {
  static const std::vector<DeviceProfile> catalog = build_catalog();
  return catalog;
}

const DeviceProfile* find_profile(const std::string& name) {
  static const std::unordered_map<std::string, const DeviceProfile*> index =
      [] {
        std::unordered_map<std::string, const DeviceProfile*> m;
        for (const auto& p : device_catalog()) m.emplace(p.name, &p);
        return m;
      }();
  auto it = index.find(name);
  return it == index.end() ? nullptr : it->second;
}

std::optional<std::size_t> profile_index(const std::string& name) {
  const auto& catalog = device_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].name == name) return i;
  }
  return std::nullopt;
}

const std::vector<std::string>& confusable_device_names() {
  static const std::vector<std::string> names = {
      "D-LinkSwitch",     "D-LinkWaterSensor", "D-LinkSiren",
      "D-LinkSensor",     "TP-LinkPlugHS110",  "TP-LinkPlugHS100",
      "EdimaxPlug1101W",  "EdimaxPlug2101W",   "SmarterCoffee",
      "iKettle2",
  };
  return names;
}

}  // namespace iotsentinel::sim
