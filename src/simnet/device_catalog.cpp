#include "simnet/device_catalog.hpp"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace iotsentinel::sim {

/// Defined by the generated roster_data.cpp (the embedded copy of
/// config/roster_table2.roster).
extern const char* const kDefaultRosterText;

namespace {

const Roster& built_in_roster() {
  static const Roster roster = [] {
    RosterResult result = parse_roster(kDefaultRosterText);
    if (!result) {
      // Unreachable for a tree that passes the roster golden test; a
      // loud abort beats silently simulating an empty fleet.
      std::fprintf(stderr, "fatal: embedded device roster is invalid: %s\n",
                   describe(result.error()).c_str());
      std::abort();
    }
    return result.take();
  }();
  return roster;
}

}  // namespace

const Roster& device_roster() { return built_in_roster(); }

const std::vector<DeviceProfile>& device_catalog() {
  static const std::vector<DeviceProfile> catalog = [] {
    const Roster& roster = device_roster();
    std::vector<DeviceProfile> profiles;
    profiles.reserve(roster.num_types());
    for (const auto& entry : roster.entries) {
      profiles.push_back(entry.profile);
    }
    return profiles;
  }();
  return catalog;
}

const DeviceProfile* find_profile(const std::string& name) {
  static const std::unordered_map<std::string, const DeviceProfile*> index =
      [] {
        std::unordered_map<std::string, const DeviceProfile*> m;
        for (const auto& p : device_catalog()) m.emplace(p.name, &p);
        return m;
      }();
  auto it = index.find(name);
  return it == index.end() ? nullptr : it->second;
}

std::optional<std::size_t> profile_index(const std::string& name) {
  const auto& catalog = device_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].name == name) return i;
  }
  return std::nullopt;
}

const std::vector<std::string>& confusable_device_names() {
  static const std::vector<std::string> names = {
      "D-LinkSwitch",     "D-LinkWaterSensor", "D-LinkSiren",
      "D-LinkSensor",     "TP-LinkPlugHS110",  "TP-LinkPlugHS100",
      "EdimaxPlug1101W",  "EdimaxPlug2101W",   "SmarterCoffee",
      "iKettle2",
  };
  return names;
}

}  // namespace iotsentinel::sim
