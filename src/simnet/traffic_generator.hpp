// Executes a DeviceProfile into a timestamped sequence of real wire-format
// frames — the simulated equivalent of one tcpdump setup capture.
//
// All stochasticity (skips, repeat jitter, retransmissions, timing) comes
// from the caller-provided Rng, so the same seed reproduces the same
// capture byte for byte.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/rng.hpp"
#include "net/builder.hpp"
#include "net/mac_address.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "simnet/device_model.hpp"

namespace iotsentinel::sim {

/// One generated frame with its virtual capture time.
struct TimedFrame {
  std::uint64_t timestamp_us = 0;
  net::Bytes frame;
};

/// Generation knobs independent of the device profile.
struct GeneratorConfig {
  /// The gateway's addresses (DHCP server, resolver, default router).
  net::MacAddress gateway_mac =
      net::MacAddress::of(0x02, 0x47, 0x57, 0x00, 0x00, 0x01);
  net::Ipv4Address gateway_ip = net::Ipv4Address::of(192, 168, 0, 1);
  /// Subnet devices draw their leased addresses from (192.168.0.x).
  net::Ipv4Address subnet_base = net::Ipv4Address::of(192, 168, 0, 0);
  /// Virtual time at which the capture starts.
  std::uint64_t start_time_us = 0;
  /// Appends low-rate operational heartbeat packets after the setup burst
  /// (for testing setup-phase end detection). Number of heartbeats:
  std::size_t trailing_heartbeats = 0;
  /// Gap between heartbeats, microseconds.
  std::uint64_t heartbeat_gap_us = 30'000'000;
};

/// Generates setup captures from device profiles.
class TrafficGenerator {
 public:
  explicit TrafficGenerator(GeneratorConfig config = {});

  /// Mints a deterministic per-instance MAC from the profile's OUI and an
  /// instance number.
  static net::MacAddress mint_mac(const DeviceProfile& profile,
                                  std::uint32_t instance);

  /// Produces one setup capture for `profile`. `rng` drives every random
  /// choice; `device_mac`/`device_ip` identify this instance.
  std::vector<TimedFrame> generate(const DeviceProfile& profile,
                                   const net::MacAddress& device_mac,
                                   net::Ipv4Address device_ip, ml::Rng& rng);

  /// Convenience: run `generate` and wrap the result as a pcap image.
  net::PcapFile generate_pcap(const DeviceProfile& profile,
                              const net::MacAddress& device_mac,
                              net::Ipv4Address device_ip, ml::Rng& rng);

  /// Produces `cycles` standby/operation cycles of the profile's
  /// `standby_steps`, separated by long quiet periods (`cycle_gap_us`
  /// +-50% jitter). This is the traffic a legacy installation's gateway
  /// observes from already-connected devices (paper Sect. VIII-A).
  std::vector<TimedFrame> generate_standby(const DeviceProfile& profile,
                                           const net::MacAddress& device_mac,
                                           net::Ipv4Address device_ip,
                                           std::size_t cycles, ml::Rng& rng,
                                           std::uint64_t cycle_gap_us =
                                               60'000'000);

 private:
  /// Emits the packets of one step occurrence into `out`.
  void emit_step(const DeviceProfile& profile, const SetupStep& step,
                 const net::MacAddress& mac, net::Ipv4Address ip,
                 std::uint64_t& now_us, ml::Rng& rng,
                 std::vector<TimedFrame>& out);

  void push(std::vector<TimedFrame>& out, std::uint64_t& now_us,
            net::Bytes frame, const DeviceProfile& profile, ml::Rng& rng);

  GeneratorConfig config_;
};

/// Parses a generated capture back into ParsedPackets (what the gateway's
/// monitoring module would see).
std::vector<net::ParsedPacket> parse_frames(
    const std::vector<TimedFrame>& frames);

}  // namespace iotsentinel::sim
