// Executes a DeviceProfile into a timestamped sequence of real wire-format
// frames — the simulated equivalent of one tcpdump setup capture.
//
// All stochasticity (skips, repeat jitter, retransmissions, timing) comes
// from the caller-provided Rng, so the same seed reproduces the same
// capture byte for byte.
//
// The core is the resumable DeviceTraceStream: each next() yields the
// following frame of a device's capture while holding only O(1) state,
// which is what lets the fleet simulator merge hundreds of thousands of
// concurrent devices without materialising any per-device trace. The
// classic TrafficGenerator::generate* entry points are thin collect-to-
// vector wrappers over a stream and consume the caller's Rng in exactly
// the historical order — their output is pinned byte-for-byte by the
// catalog traffic golden test.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ml/rng.hpp"
#include "net/builder.hpp"
#include "net/mac_address.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "simnet/device_model.hpp"

namespace iotsentinel::sim {

/// One generated frame with its virtual capture time.
struct TimedFrame {
  std::uint64_t timestamp_us = 0;
  net::Bytes frame;
};

/// Generation knobs independent of the device profile.
struct GeneratorConfig {
  /// The gateway's addresses (DHCP server, resolver, default router).
  net::MacAddress gateway_mac =
      net::MacAddress::of(0x02, 0x47, 0x57, 0x00, 0x00, 0x01);
  net::Ipv4Address gateway_ip = net::Ipv4Address::of(192, 168, 0, 1);
  /// Subnet devices draw their leased addresses from (192.168.0.x).
  net::Ipv4Address subnet_base = net::Ipv4Address::of(192, 168, 0, 0);
  /// Virtual time at which the capture starts.
  std::uint64_t start_time_us = 0;
  /// Appends low-rate operational heartbeat packets after the setup burst
  /// (for testing setup-phase end detection). Number of heartbeats:
  std::size_t trailing_heartbeats = 0;
  /// Gap between heartbeats, microseconds.
  std::uint64_t heartbeat_gap_us = 30'000'000;
};

/// Resumable generator for ONE device trace: setup capture (the profile's
/// setup script plus optional trailing heartbeats) or a run of standby
/// cycles. Pull-based: next() returns the following frame, or nullopt
/// when the trace is finished. State is O(1) — only the frames of the
/// current step occurrence are buffered — and the emission (frames,
/// timestamps, RNG consumption) is bit-identical whether a trace is
/// pulled one-shot, in chunks, or interleaved with other streams.
class DeviceTraceStream {
 public:
  enum class Mode {
    kSetup,    ///< profile.steps once, then config.trailing_heartbeats.
    kStandby,  ///< `standby_cycles` runs of profile.standby_steps.
  };

  /// Borrows `rng`: the caller's generator drives every draw and must
  /// outlive the stream. This is what the batch wrappers use, so legacy
  /// seeds keep reproducing their historical captures.
  DeviceTraceStream(const GeneratorConfig& config,
                    const DeviceProfile& profile, const net::MacAddress& mac,
                    net::Ipv4Address ip, Mode mode, std::size_t standby_cycles,
                    std::uint64_t cycle_gap_us, ml::Rng& rng);

  /// Owns its RNG, seeded with `seed`. Safe to move; this is what the
  /// fleet simulator uses (one independent stream per device phase).
  DeviceTraceStream(const GeneratorConfig& config,
                    const DeviceProfile& profile, const net::MacAddress& mac,
                    net::Ipv4Address ip, Mode mode, std::size_t standby_cycles,
                    std::uint64_t cycle_gap_us, std::uint64_t seed);

  DeviceTraceStream(DeviceTraceStream&& other) noexcept;
  DeviceTraceStream& operator=(DeviceTraceStream&& other) noexcept;
  DeviceTraceStream(const DeviceTraceStream&) = delete;
  DeviceTraceStream& operator=(const DeviceTraceStream&) = delete;

  /// The next frame of the trace, or nullopt when it is exhausted.
  [[nodiscard]] std::optional<TimedFrame> next();

  /// Virtual time of the most recently scheduled event (after exhaustion:
  /// the end of the trace, including the final quiet period).
  [[nodiscard]] std::uint64_t now_us() const { return now_us_; }

  /// Dynamically-allocated bytes currently buffered (the frames of the
  /// in-flight step occurrence) — the fleet simulator's memory estimate.
  [[nodiscard]] std::size_t buffered_bytes() const;

 private:
  /// Runs the state machine until it emits >=1 frame into pending_
  /// (returns true) or the trace ends (returns false).
  bool advance();
  [[nodiscard]] const std::vector<SetupStep>& active_steps() const;

  GeneratorConfig config_;
  const DeviceProfile* profile_;
  net::MacAddress mac_;
  net::Ipv4Address ip_;
  Mode mode_;
  std::size_t cycles_left_;
  std::uint64_t cycle_gap_us_;
  ml::Rng own_rng_;
  ml::Rng* rng_;  // == &own_rng_ for the owning constructor

  std::size_t step_index_ = 0;
  bool step_started_ = false;
  int occurrences_left_ = 0;
  std::size_t heartbeats_left_;
  std::uint64_t now_us_;
  std::vector<TimedFrame> pending_;
  std::size_t pending_pos_ = 0;
};

/// Generates setup captures from device profiles.
class TrafficGenerator {
 public:
  explicit TrafficGenerator(GeneratorConfig config = {});

  /// Mints a deterministic per-instance MAC from the profile's OUI and an
  /// instance number.
  static net::MacAddress mint_mac(const DeviceProfile& profile,
                                  std::uint32_t instance);

  /// Produces one setup capture for `profile`. `rng` drives every random
  /// choice; `device_mac`/`device_ip` identify this instance.
  std::vector<TimedFrame> generate(const DeviceProfile& profile,
                                   const net::MacAddress& device_mac,
                                   net::Ipv4Address device_ip, ml::Rng& rng);

  /// Convenience: run `generate` and wrap the result as a pcap image.
  net::PcapFile generate_pcap(const DeviceProfile& profile,
                              const net::MacAddress& device_mac,
                              net::Ipv4Address device_ip, ml::Rng& rng);

  /// Produces `cycles` standby/operation cycles of the profile's
  /// `standby_steps`, separated by long quiet periods (`cycle_gap_us`
  /// +-50% jitter). This is the traffic a legacy installation's gateway
  /// observes from already-connected devices (paper Sect. VIII-A).
  std::vector<TimedFrame> generate_standby(const DeviceProfile& profile,
                                           const net::MacAddress& device_mac,
                                           net::Ipv4Address device_ip,
                                           std::size_t cycles, ml::Rng& rng,
                                           std::uint64_t cycle_gap_us =
                                               60'000'000);

 private:
  GeneratorConfig config_;
};

/// Parses a generated capture back into ParsedPackets (what the gateway's
/// monitoring module would see).
std::vector<net::ParsedPacket> parse_frames(
    const std::vector<TimedFrame>& frames);

}  // namespace iotsentinel::sim
