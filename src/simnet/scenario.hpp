// Scriptable adversarial & fault-injection scenarios for the gateway.
//
// A scenario is a small text file (see docs/SCENARIOS.md for the
// normative format and a worked example) describing an attack run against
// the Security Gateway: which devices join when, which of them spoof
// another device's MAC, where malformed-frame floods land, and which time
// windows suffer channel faults (drop/duplicate/reorder/corrupt via
// simnet/fault_injection.hpp). Expectations pin the intended outcome —
// who must be identified as what, at which isolation level — so a
// scenario doubles as an executable robustness test.
//
// The pipeline mirrors the roster's:
//
//   parse_scenario(text)            -> Scenario          (typed errors)
//   compile_scenario(scn, roster)   -> CompiledScenario  (concrete frames)
//   run_scenario(compiled, service) -> ScenarioOutcome   (metrics+verdicts)
//
// Compilation materialises every frame deterministically from the
// scenario seed (same seed -> bit-identical stream, pinned by
// `stream_hash`); the runner feeds the stream to a serial SecurityGateway
// or a ShardedGateway with the enforcement auditor attached, then scores
// misidentification, enforcement-integrity and state-bloat metrics.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/security_gateway.hpp"
#include "core/security_service.hpp"
#include "net/mac_address.hpp"
#include "sdn/isolation.hpp"
#include "simnet/fault_injection.hpp"
#include "simnet/roster.hpp"

namespace iotsentinel::sim {

/// `join <actor> <type> at <s> [mac <other>]`: a device joins the network
/// and plays its type's setup dialogue. With `mac <other>` it spoofs the
/// (earlier-joined) actor's MAC instead of minting its own — the
/// MAC-reuse / identity-theft primitive.
struct ScenarioJoin {
  std::string actor;
  std::string type;
  std::uint64_t at_us = 0;
  std::string spoof_actor;  // empty = own MAC
};

/// `standby <actor> cycles <n> at <s>`: operational standby cycles of an
/// already-joined actor (keeps it from looking departed).
struct ScenarioStandby {
  std::string actor;
  std::uint32_t cycles = 1;
  std::uint64_t at_us = 0;
};

/// `expire at <s> idle <s>`: the gateway runs its departure sweep.
struct ScenarioExpire {
  std::uint64_t at_us = 0;
  std::uint64_t idle_us = 0;
};

/// `flood at <s> frames <n> kind random|spray [gap-us <n>]`: an attack
/// burst. `random` frames are arbitrary bytes (mostly malformed —
/// exercises the malformed-frame counters); `spray` frames are
/// well-formed ARP requests from random never-seen MACs (exercises
/// extractor state bloat and the admission cap).
struct ScenarioFlood {
  enum class Kind { kRandom, kSpray };
  std::uint64_t at_us = 0;
  std::uint32_t frames = 0;
  Kind kind = Kind::kRandom;
  std::uint64_t gap_us = 1'000;
};

/// `fault from <s> to <s> [drop p] [dup p] [reorder p] [corrupt p]
/// [depth n] [actor <name>]`: a FaultChannel applied to the frames whose
/// capture time falls in [from, to), optionally only the named actor's.
struct ScenarioFaultWindow {
  std::uint64_t from_us = 0;
  std::uint64_t to_us = 0;
  FaultConfig faults;
  std::string actor;  // empty = every frame in the window
};

/// `expect <actor> type <T>` / `expect <actor> new-type` /
/// `expect <actor> level strict|restricted|trusted`: pinned outcome for
/// the actor's identification event (the k-th event on its MAC, where k
/// is the join's rank among joins sharing that MAC).
struct ScenarioExpect {
  enum class Kind { kType, kNewType, kLevel };
  std::string actor;
  Kind kind = Kind::kType;
  std::string type;                                        // kType
  sdn::IsolationLevel level = sdn::IsolationLevel::kStrict;  // kLevel
};

/// A parsed scenario script.
struct Scenario {
  std::string name;
  std::uint64_t seed = 1;
  std::vector<ScenarioJoin> joins;
  std::vector<ScenarioStandby> standbys;
  std::vector<ScenarioExpire> expires;
  std::vector<ScenarioFlood> floods;
  std::vector<ScenarioFaultWindow> faults;
  std::vector<ScenarioExpect> expects;
};

/// Why a scenario was rejected, and where (roster-error discipline).
struct ScenarioError {
  enum class Kind {
    kNone,            ///< No error (the parse/compile succeeded).
    kIoError,         ///< File could not be opened or read.
    kBadHeader,       ///< Missing or unsupported `scenario v1` header.
    kMalformedLine,   ///< A line does not scan as `directive args...`.
    kUnknownDirective,///< Directive name not part of the format.
    kUnknownActor,    ///< A directive references an actor never joined.
    kDuplicateActor,  ///< Two `join` lines share one actor name.
    kOutOfRange,      ///< A value outside its documented domain.
    kMissingField,    ///< Required directive absent (e.g. no `name`).
    kUnknownType,     ///< Compile: a join's type is not in the roster.
  };

  Kind kind = Kind::kNone;
  /// 1-based line number (0 when not attributable to a line).
  std::size_t line = 0;
  /// Human-readable specifics. Never empty when `kind != kNone`.
  std::string detail;
};

/// Stable name of an error kind ("unknown-actor", ...); never null.
[[nodiscard]] const char* to_string(ScenarioError::Kind kind);

/// One-line rendering, e.g. "unknown-actor at line 7: ...".
[[nodiscard]] std::string describe(const ScenarioError& error);

/// Result of parsing a scenario (mirrors RosterResult).
class ScenarioParseResult {
 public:
  /*implicit*/ ScenarioParseResult(Scenario scenario)
      : scenario_(std::move(scenario)) {}
  /*implicit*/ ScenarioParseResult(ScenarioError error)
      : error_(std::move(error)) {}

  [[nodiscard]] bool has_value() const { return scenario_.has_value(); }
  [[nodiscard]] explicit operator bool() const { return has_value(); }
  [[nodiscard]] Scenario& operator*() { return *scenario_; }
  [[nodiscard]] const Scenario& operator*() const { return *scenario_; }
  [[nodiscard]] Scenario* operator->() { return &*scenario_; }
  [[nodiscard]] const Scenario* operator->() const { return &*scenario_; }
  [[nodiscard]] const ScenarioError& error() const { return error_; }
  [[nodiscard]] Scenario take() { return std::move(*scenario_); }

 private:
  std::optional<Scenario> scenario_;
  ScenarioError error_;
};

/// Parses scenario text. Never throws, never crashes, whatever `text`
/// holds; on rejection the error names the offending line.
[[nodiscard]] ScenarioParseResult parse_scenario(std::string_view text);

/// Reads and parses a scenario file. I/O failures yield kIoError.
[[nodiscard]] ScenarioParseResult load_scenario_file(const std::string& path);

/// One item of the compiled arrival-ordered stream: a wire frame or an
/// in-band gateway control op (departure sweep).
struct ScenarioItem {
  enum class Kind { kFrame, kExpire };
  Kind kind = Kind::kFrame;
  /// kFrame: the frame and its claimed capture time (arrival order may
  /// disagree with capture order inside fault windows — that is the
  /// point). kExpire: sweep time and idle threshold.
  TimedFrame frame;
  std::uint64_t idle_us = 0;
};

/// A scenario lowered to concrete frames, ready to replay.
struct CompiledScenario {
  std::string name;
  std::uint64_t seed = 1;
  /// Join table (actor identity = index); `actor_macs[i]` is the wire
  /// source MAC join i transmits from (spoofs resolved).
  std::vector<ScenarioJoin> joins;
  std::vector<net::MacAddress> actor_macs;
  std::vector<ScenarioExpect> expects;
  /// The stream, in arrival order.
  std::vector<ScenarioItem> items;
  /// Aggregate fault-injection counters over every window.
  FaultChannel::Stats fault_stats;
  /// Order-and-content hash of `items` — two compiles of the same
  /// (scenario, roster) must agree bit for bit (determinism contract,
  /// pinned by tests and recorded in BENCH_scenarios.json).
  std::uint64_t stream_hash = 0;
};

/// Lowers a scenario against a roster. On failure returns nullopt and
/// fills `*error` (kUnknownType / kUnknownActor with the actor name).
[[nodiscard]] std::optional<CompiledScenario> compile_scenario(
    const Scenario& scenario, const Roster& roster,
    ScenarioError* error = nullptr);

/// What happened to one join ("actor") in a run.
struct ScenarioActorOutcome {
  std::string actor;
  std::string true_type;
  net::MacAddress mac;
  bool identified = false;
  bool is_new_type = false;
  std::string identified_type;
  sdn::IsolationLevel level = sdn::IsolationLevel::kStrict;
  /// identified as a concrete type other than `true_type` (the
  /// misidentification counter's numerator).
  bool misidentified = false;
};

/// Metrics + verdicts of one scenario run against one gateway flavour.
struct ScenarioOutcome {
  std::string scenario;
  /// 0 = serial SecurityGateway; otherwise ShardedGateway shard count.
  std::size_t num_shards = 0;
  std::uint64_t stream_hash = 0;

  // Data-plane accounting.
  std::uint64_t frames_fed = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t dropped_frames = 0;

  // Enforcement integrity (sdn/enforcement_audit.hpp).
  std::uint64_t audit_checked = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t audit_overblocks = 0;

  // Extractor state bloat.
  std::uint64_t extractor_peak_active = 0;
  std::uint64_t extractor_discarded = 0;
  std::uint64_t extractor_rejected = 0;

  std::uint64_t devices_expired = 0;
  std::size_t events_total = 0;

  // Identification quality.
  std::vector<ScenarioActorOutcome> actors;
  std::size_t actors_with_type_expectation = 0;
  std::size_t actors_misidentified = 0;
  /// actors_misidentified / actors_with_type_expectation (0 when the
  /// scenario pins no types).
  double misid_rate = 0.0;

  /// Failed expectations and enforcement violations, human-readable.
  /// Empty <=> the scenario holds.
  std::vector<std::string> failures;

  [[nodiscard]] bool passed() const { return failures.empty(); }
};

/// Gateway knobs for a scenario run (defaults match production).
struct ScenarioGatewayConfig {
  fp::ExtractorConfig extractor;
  sdn::ControllerConfig controller;
  /// Sharded runs only.
  std::size_t ring_capacity = 4096;
  std::size_t classify_batch_max = 32;
};

/// Replays a compiled scenario against a serial SecurityGateway
/// (`num_shards == 0`) or a ShardedGateway, with the enforcement auditor
/// attached, and scores the outcome. Deterministic for the serial
/// gateway; for sharded runs the actor verdicts and the zero-violation
/// guarantee are shard-count-invariant, while `events_total` may differ
/// (end-of-run flushing of sub-threshold captures depends on how far
/// each shard's extractor clock advanced).
[[nodiscard]] ScenarioOutcome run_scenario(
    const CompiledScenario& compiled, const core::IoTSecurityService& service,
    std::size_t num_shards = 0, const ScenarioGatewayConfig& config = {});

/// A named built-in scenario (shipped attack library).
struct BuiltinScenario {
  const char* name;
  const char* text;
};

/// The shipped scenario library: MAC reuse after departure, fingerprint
/// mimicry, setup-capture degradation, malformed-frame floods. Every
/// entry parses, compiles against the Table II roster and passes against
/// both gateways (pinned by tests/test_scenario.cpp and run by
/// bench/scenario_report.cpp).
[[nodiscard]] std::span<const BuiltinScenario> builtin_scenarios();

/// Trains an IoTSSP for scenario runs: fingerprint corpus over `types`
/// (catalog names; `runs_per_type` captures each, seeded), every type
/// assessed in the vulnerability DB, and — when present — "EdimaxCam"
/// carrying a CVSS 9.0 entry with its vendor-cloud endpoint registered,
/// so scenarios exercise Trusted, Restricted and (via untrained types)
/// Strict enforcement in one run.
[[nodiscard]] core::IoTSecurityService make_scenario_service(
    const std::vector<std::string>& types, std::size_t runs_per_type = 12,
    std::uint64_t seed = 33);

}  // namespace iotsentinel::sim
