// Discrete-event network simulator for the enforcement evaluation.
//
// Reproduces the paper's Raspberry-Pi-II Security Gateway testbed (Fig. 4):
// wireless devices D1..Dn behind the gateway, a wired local server S_local
// and a remote server S_remote. Forwarding decisions run through the *real*
// SDN stack (Controller + SoftwareSwitch + FlowTable + RuleCache); packet
// timing comes from a latency model calibrated to the paper's measured
// base RTTs (Table V), and gateway CPU/memory follow cost models
// calibrated to Fig. 6b/6c. DESIGN.md documents this substitution.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/rng.hpp"
#include "net/builder.hpp"
#include "sdn/controller.hpp"
#include "sdn/software_switch.hpp"
#include "simnet/stats.hpp"

namespace iotsentinel::sim {

/// Link medium of a simulated host.
enum class Medium {
  kWireless,  // associated to the gateway AP
  kWired,     // Ethernet port
  kInternet,  // reachable through the uplink
};

/// Latency-model parameters (milliseconds unless noted). Defaults are
/// calibrated so that unfiltered RTTs match the paper's Table V:
/// D-D ~ 24-28 ms, D-S_local ~ 15-18 ms, D-S_remote ~ 20 ms.
struct LatencyModel {
  double wifi_hop_ms = 6.05;     // one-way AP<->station airtime
  double wifi_jitter_ms = 0.55;  // gaussian std per wireless hop
  double wire_hop_ms = 1.9;      // one-way Ethernet hop
  double wire_jitter_ms = 0.25;
  double internet_oneway_ms = 2.1;  // uplink to S_remote beyond the wire
  double internet_jitter_ms = 1.1;
  double gateway_fast_us = 110.0;   // per-packet fast-path switching
  double gateway_slow_us = 2600.0;  // packet-in controller round-trip
  double per_flow_queue_us = 1.6;   // queueing per concurrent flow
  /// Extra per-traversal cost of the filtering mechanism (enforcement-rule
  /// lookup + policy evaluation); ~0.28 ms per RTT, matching Table V's
  /// sub-millisecond filtering deltas.
  double filtering_extra_us = 140.0;
};

/// Gateway CPU cost model (percent utilization on the R-Pi II), Fig. 6b.
struct CpuModel {
  double base_pct = 36.8;          // OS + hostapd + OVS idle
  double per_flow_pct = 0.062;     // per concurrent flow
  double filtering_base_pct = 0.45;
  double filtering_per_flow_pct = 0.0045;
  double noise_pct = 0.8;
};

/// Gateway memory cost model (MB), Fig. 6c. `floodlight_bytes_per_rule`
/// calibrates our lean C++ cache to the paper's Java controller footprint;
/// the bench reports both the raw measured cache bytes and this calibrated
/// figure.
struct MemoryModel {
  double base_mb = 39.5;                  // controller + OVS resident set
  double floodlight_bytes_per_rule = 2350.0;
  double no_filtering_slope_mb = 0.00004; // connection tracking only
};

/// One host attached to the simulated network.
struct SimHost {
  std::string name;
  net::MacAddress mac;
  net::Ipv4Address ip;
  Medium medium = Medium::kWireless;
  /// Per-host extra one-way latency (antenna placement, chip quality) —
  /// gives each device pair its own base RTT as in Table V.
  double extra_oneway_ms = 0.0;
};

/// RTT measurement outcome.
struct RttResult {
  RunningStats rtt_ms;
  std::size_t sent = 0;
  std::size_t dropped = 0;  // pings blocked by enforcement
};

/// The simulated testbed.
class NetworkSim {
 public:
  /// `filtering` false builds the paper's "No Filtering" baseline gateway.
  explicit NetworkSim(bool filtering, std::uint64_t seed = 7);

  /// Registers a host; returns its index.
  std::size_t add_host(SimHost host);

  /// Looks up a host by name (must exist).
  const SimHost& host(const std::string& name) const;

  /// Installs an enforcement rule for a host (via the real controller).
  void apply_rule(sdn::EnforcementRule rule);

  /// Starts `count` synthetic concurrent UDP flows between random host
  /// pairs: each flow gets a real entry in the switch's flow table and
  /// contributes to the queueing and CPU terms.
  void set_concurrent_flows(std::size_t count);

  /// Sends one ICMP echo + reply pair through the real switch and returns
  /// the modeled RTT in ms, or nullopt when enforcement dropped it.
  std::optional<double> ping_once(const SimHost& src, const SimHost& dst);

  /// `iterations` pings, paper-style (Table V uses 15).
  RttResult measure_rtt(const std::string& src, const std::string& dst,
                        std::size_t iterations = 15);

  /// Gateway CPU utilization under the current flow load (Fig. 6b).
  double cpu_utilization_pct();

  /// Gateway memory in MB with `rule_count` installed enforcement rules
  /// (Fig. 6c): `calibrated` follows the paper's Floodlight footprint,
  /// otherwise the raw measured bytes of our RuleCache are converted.
  double memory_mb(std::size_t rule_count, bool calibrated = true) const;

  [[nodiscard]] sdn::Controller& controller() { return *controller_; }
  [[nodiscard]] const sdn::Controller& controller() const {
    return *controller_;
  }
  [[nodiscard]] sdn::SoftwareSwitch& data_plane() { return *switch_; }
  [[nodiscard]] bool filtering() const { return filtering_; }
  [[nodiscard]] std::size_t concurrent_flows() const { return flows_; }
  [[nodiscard]] std::uint64_t now_us() const { return now_us_; }
  void set_models(LatencyModel l, CpuModel c, MemoryModel m) {
    latency_ = l;
    cpu_ = c;
    memory_ = m;
  }

 private:
  /// One-way path latency for a frame src -> dst, given the switch path
  /// taken at the gateway.
  double oneway_ms(const SimHost& src, const SimHost& dst,
                   sdn::SwitchPath path);

  double gaussian(double mean, double std);

  bool filtering_;
  // Held behind pointers so NetworkSim stays movable: the switch keeps a
  // reference to the controller, which must not relocate on move.
  std::unique_ptr<sdn::Controller> controller_;
  std::unique_ptr<sdn::SoftwareSwitch> switch_;
  LatencyModel latency_;
  CpuModel cpu_;
  MemoryModel memory_;
  std::vector<SimHost> hosts_;
  std::unordered_map<std::string, std::size_t> by_name_;
  std::size_t flows_ = 0;
  std::uint64_t now_us_ = 1'000'000;
  ml::Rng rng_;
};

/// Builds the paper's Fig. 4 testbed: gateway + D1..D4 (wireless, with
/// per-device link quality matching Table V's base RTTs) + S_local (wired)
/// + S_remote (Internet), all devices ruled Trusted so only the filtering
/// mechanism itself is measured.
NetworkSim make_paper_testbed(bool filtering, std::uint64_t seed = 7);

}  // namespace iotsentinel::sim
