#include "simnet/network_sim.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "net/parser.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::sim {

NetworkSim::NetworkSim(bool filtering, std::uint64_t seed)
    : filtering_(filtering),
      controller_(std::make_unique<sdn::Controller>(
          sdn::ControllerConfig{.filtering_enabled = filtering})),
      switch_(std::make_unique<sdn::SoftwareSwitch>(*controller_)),
      rng_(seed) {}

std::size_t NetworkSim::add_host(SimHost host) {
  by_name_[host.name] = hosts_.size();
  hosts_.push_back(std::move(host));
  return hosts_.size() - 1;
}

const SimHost& NetworkSim::host(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    std::fprintf(stderr, "NetworkSim: unknown host '%s'\n", name.c_str());
    std::abort();
  }
  return hosts_[it->second];
}

void NetworkSim::apply_rule(sdn::EnforcementRule rule) {
  controller_->apply_rule(std::move(rule), now_us_);
}

void NetworkSim::set_concurrent_flows(std::size_t count) {
  flows_ = count;
  // Give each synthetic flow a real micro-flow entry so the data plane's
  // table has a realistic population (the controller sees one packet-in
  // per flow, as with real traffic).
  for (std::size_t i = 0; i < count; ++i) {
    const auto a = static_cast<std::uint8_t>(2 + i % 200);
    const auto b = static_cast<std::uint8_t>(2 + (i / 200) % 200);
    const net::MacAddress src_mac =
        net::MacAddress::of(0x02, 0xf1, 0x00, 0x00, 0x00, a);
    const net::MacAddress dst_mac =
        net::MacAddress::of(0x02, 0xf1, 0x00, 0x00, 0x01, b);
    const auto src_ip = net::Ipv4Address::of(192, 168, 1, a);
    const auto dst_ip = net::Ipv4Address::of(192, 168, 2, b);
    const auto sport = static_cast<std::uint16_t>(49152 + i % 4096);
    const net::Bytes udp = net::build_udp_payload(
        sport, static_cast<std::uint16_t>(5000 + i % 1000), {});
    const net::Bytes frame = net::build_ipv4(src_mac, dst_mac, src_ip,
                                             dst_ip, net::ipproto::kUdp, udp);
    const auto pkt = net::parse_ethernet_frame(frame, now_us_);
    switch_->process(pkt, now_us_);
    now_us_ += 200;
  }
}

double NetworkSim::gaussian(double mean, double std) {
  // Box-Muller on the deterministic stream.
  const double u1 = std::max(rng_.uniform(), 1e-12);
  const double u2 = rng_.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + std * z;
}

double NetworkSim::oneway_ms(const SimHost& src, const SimHost& dst,
                             sdn::SwitchPath path) {
  double ms = 0.0;
  auto hop = [&](const SimHost& h) {
    switch (h.medium) {
      case Medium::kWireless:
        ms += std::max(0.1, gaussian(latency_.wifi_hop_ms + h.extra_oneway_ms,
                                     latency_.wifi_jitter_ms));
        break;
      case Medium::kWired:
        ms += std::max(0.05, gaussian(latency_.wire_hop_ms + h.extra_oneway_ms,
                                      latency_.wire_jitter_ms));
        break;
      case Medium::kInternet:
        ms += std::max(0.05, gaussian(latency_.wire_hop_ms, latency_.wire_jitter_ms));
        ms += std::max(0.5, gaussian(latency_.internet_oneway_ms + h.extra_oneway_ms,
                                     latency_.internet_jitter_ms));
        break;
    }
  };
  hop(src);
  hop(dst);

  // Gateway processing: fast-path switching or a controller round-trip,
  // plus queueing behind the concurrent background flows.
  double gateway_us =
      (path == sdn::SwitchPath::kSlowPath ? latency_.gateway_slow_us
                                          : latency_.gateway_fast_us) +
      static_cast<double>(flows_) * latency_.per_flow_queue_us;
  if (filtering_) gateway_us += latency_.filtering_extra_us;
  ms += gateway_us / 1000.0;
  return ms;
}

std::optional<double> NetworkSim::ping_once(const SimHost& src,
                                            const SimHost& dst) {
  const auto ident = static_cast<std::uint16_t>(rng_.next_u64());

  const net::Bytes request = net::build_icmp_echo(
      src.mac, dst.mac, src.ip, dst.ip, ident, 1);
  const auto req_pkt = net::parse_ethernet_frame(request, now_us_);
  const sdn::SwitchResult req_res = switch_->process(req_pkt, now_us_);
  now_us_ += 1000;
  if (req_res.action == sdn::FlowAction::kDrop) return std::nullopt;
  const double forward_ms = oneway_ms(src, dst, req_res.path);

  const net::Bytes reply = net::build_icmp_echo(
      dst.mac, src.mac, dst.ip, src.ip, ident, 2);
  const auto rep_pkt = net::parse_ethernet_frame(reply, now_us_);
  const sdn::SwitchResult rep_res = switch_->process(rep_pkt, now_us_);
  now_us_ += 1000;
  if (rep_res.action == sdn::FlowAction::kDrop) return std::nullopt;
  const double return_ms = oneway_ms(dst, src, rep_res.path);

  return forward_ms + return_ms;
}

RttResult NetworkSim::measure_rtt(const std::string& src,
                                  const std::string& dst,
                                  std::size_t iterations) {
  RttResult result;
  const SimHost& s = host(src);
  const SimHost& d = host(dst);
  for (std::size_t i = 0; i < iterations; ++i) {
    ++result.sent;
    if (auto rtt = ping_once(s, d)) {
      result.rtt_ms.add(*rtt);
    } else {
      ++result.dropped;
    }
    now_us_ += 1'000'000;  // 1 s ping interval
  }
  return result;
}

double NetworkSim::cpu_utilization_pct() {
  double pct = cpu_.base_pct +
               cpu_.per_flow_pct * static_cast<double>(flows_);
  if (filtering_) {
    pct += cpu_.filtering_base_pct +
           cpu_.filtering_per_flow_pct * static_cast<double>(flows_);
  }
  pct += gaussian(0.0, cpu_.noise_pct);
  return std::min(100.0, std::max(0.0, pct));
}

double NetworkSim::memory_mb(std::size_t rule_count, bool calibrated) const {
  if (!filtering_) {
    return memory_.base_mb +
           memory_.no_filtering_slope_mb * static_cast<double>(rule_count);
  }
  if (calibrated) {
    return memory_.base_mb + memory_.floodlight_bytes_per_rule *
                                 static_cast<double>(rule_count) / 1e6;
  }
  // Raw accounting covers both gateway-side stores: the controller's
  // enforcement-rule cache and the switch's two-tier flow table.
  return memory_.base_mb +
         static_cast<double>(controller_->rules().memory_bytes() +
                             switch_->memory_bytes()) /
             1e6;
}

NetworkSim make_paper_testbed(bool filtering, std::uint64_t seed) {
  NetworkSim sim(filtering, seed);
  const auto dev_ip = [](std::uint8_t last) {
    return net::Ipv4Address::of(192, 168, 0, last);
  };
  // Per-device extra latency reproduces Table V's distinct base RTTs:
  // D1D4 ~24.5, D2D4 ~28.2, D3D4 ~27.5 ms without filtering.
  sim.add_host({.name = "D1",
                .mac = net::MacAddress::of(0x02, 0xd1, 0, 0, 0, 1),
                .ip = dev_ip(11), .medium = Medium::kWireless,
                .extra_oneway_ms = 0.0});
  sim.add_host({.name = "D2",
                .mac = net::MacAddress::of(0x02, 0xd2, 0, 0, 0, 2),
                .ip = dev_ip(12), .medium = Medium::kWireless,
                .extra_oneway_ms = 0.95});
  sim.add_host({.name = "D3",
                .mac = net::MacAddress::of(0x02, 0xd3, 0, 0, 0, 3),
                .ip = dev_ip(13), .medium = Medium::kWireless,
                .extra_oneway_ms = 0.75});
  sim.add_host({.name = "D4",
                .mac = net::MacAddress::of(0x02, 0xd4, 0, 0, 0, 4),
                .ip = dev_ip(14), .medium = Medium::kWireless,
                .extra_oneway_ms = 0.05});
  sim.add_host({.name = "Slocal",
                .mac = net::MacAddress::of(0x02, 0x51, 0, 0, 0, 5),
                .ip = dev_ip(100), .medium = Medium::kWired,
                .extra_oneway_ms = 0.0});
  sim.add_host({.name = "Sremote",
                .mac = net::MacAddress::of(0x02, 0x52, 0, 0, 0, 6),
                .ip = net::Ipv4Address::of(52, 29, 100, 10),
                .medium = Medium::kInternet, .extra_oneway_ms = 0.0});

  // All measurement devices are Trusted so enforcement admits every flow
  // and only the filtering machinery's cost is visible — matching the
  // paper's methodology of measuring overhead, not blocking.
  for (const char* name : {"D1", "D2", "D3", "D4", "Slocal", "Sremote"}) {
    sdn::EnforcementRule rule;
    rule.device = sim.host(name).mac;
    rule.level = sdn::IsolationLevel::kTrusted;
    sim.apply_rule(std::move(rule));
  }
  return sim;
}

}  // namespace iotsentinel::sim
