// Behavioural device models: scripted setup-phase dialogues.
//
// The paper collected 20 real setup captures per device-type; we replace
// the physical devices with per-type scripts. Each script is an ordered
// list of SetupSteps (WPA2 handshake, DHCP, discovery, cloud check-in...)
// with stochastic knobs (skip probabilities, repeat jitter, timing jitter,
// retransmissions). Device-types the paper found mutually confusable share
// the same script, mirroring their identical hardware/firmware; everyone
// else differs in protocol mix, peer order, and message sizes.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "net/ip_address.hpp"

namespace iotsentinel::sim {

/// One unit of setup behaviour; expands to one or more packets.
enum class StepKind {
  /// 802.1X/WPA2: EAPoL-Start + two visible EAPoL-Key frames.
  kEapolHandshake,
  /// DHCP DISCOVER + REQUEST (client side of the exchange).
  kDhcpExchange,
  /// ARP probe for the own address + gratuitous ARP announcement.
  kArpAnnounce,
  /// ARP request for the default gateway.
  kArpGateway,
  /// ICMPv6 router solicitation (IPv6-enabled stacks).
  kIpv6RouterSolicit,
  /// MLDv1 report joining the solicited-node group (hop-by-hop router
  /// alert => exercises both IPv6 option features).
  kMldReport,
  /// IGMPv2 join (IPv4 router alert + padding options).
  kIgmpJoin,
  /// DNS A query for `host` to the gateway resolver.
  kDnsQuery,
  /// NTP client request to `remote`.
  kNtpSync,
  /// mDNS announcement of service `host`.
  kMdnsAnnounce,
  /// SSDP M-SEARCH for target `host`.
  kSsdpSearch,
  /// SSDP NOTIFY alive with LOCATION built from `host`.
  kSsdpNotify,
  /// TCP SYN + HTTP GET to `remote` (`host` = Host header, `path` below).
  kHttpCloudCheck,
  /// TCP SYN + TLS ClientHello to `remote`:443 with SNI `host`.
  kHttpsCloudCheck,
  /// Bare TCP SYN to `remote`:`port` (proprietary cloud protocols).
  kTcpConnect,
  /// ICMP echo request to `remote` (connectivity probe).
  kIcmpPing,
};

/// One scripted step with its stochastic knobs.
struct SetupStep {
  StepKind kind = StepKind::kDhcpExchange;
  /// Hostname / SNI / mDNS service / SSDP target, as the kind requires.
  std::string host{};
  /// HTTP path for kHttpCloudCheck.
  std::string path = "/";
  /// Remote endpoint for cloud/NTP/ping steps.
  net::Ipv4Address remote{};
  /// TCP port for kTcpConnect.
  std::uint16_t port = 0;
  /// Base number of times the step's packets are emitted.
  int repeat = 1;
  /// Up to this many extra repeats, uniformly sampled.
  int repeat_jitter = 0;
  /// Probability the whole step is skipped in a given run.
  double skip_prob = 0.0;
  /// Mean pause before the step starts, milliseconds.
  double gap_ms = 50.0;
};

/// A device-type's complete behavioural profile.
struct DeviceProfile {
  /// Table-II identifier, e.g. "D-LinkSiren".
  std::string name{};
  /// Table-II model string, e.g. "D-Link Siren DCH-S220".
  std::string model{};
  /// Script executed when the device is introduced to the network.
  std::vector<SetupStep> steps{};
  /// One standby/operation cycle (heartbeats, cloud keepalives, periodic
  /// NTP, service re-announcements). Used by the legacy-installation
  /// extension (paper Sect. VIII-A): fingerprinting devices that are
  /// already connected from their operational traffic. Populated by the
  /// catalog, derived from the device's own services and cloud endpoints.
  std::vector<SetupStep> standby_steps{};
  /// True when the device has a communication channel the gateway cannot
  /// control (Bluetooth, LTE, proprietary RF) — triggers the paper's
  /// user-notification mitigation when the device is also vulnerable.
  bool has_uncontrolled_channel = false;
  /// Vendor DHCP parameter-request list (option 55) — vendors differ, and
  /// the difference shows up in the packet-size feature.
  std::vector<std::uint8_t> dhcp_params{1, 3, 6, 15};
  /// DHCP hostname (option 12) the device announces; empty = none. Real
  /// devices commonly send a model-specific name, which the gateway's
  /// device inventory surfaces to the user.
  std::string dhcp_hostname{};
  /// Probability that any emitted packet is immediately retransmitted
  /// (exercises the consecutive-duplicate removal of Eq. (1)).
  double retransmit_prob = 0.05;
  /// Mean intra-step gap between packets, milliseconds.
  double intra_gap_ms = 8.0;
  /// Locally administered OUI prefix used when minting instance MACs.
  std::array<std::uint8_t, 3> oui{0x02, 0x00, 0x00};
};

}  // namespace iotsentinel::sim
