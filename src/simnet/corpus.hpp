// Fingerprint corpus generation: the simulated counterpart of the paper's
// dataset — one fingerprint per (roster type, setup capture) pair, i.e.
// device_catalog().size() x runs_per_type. With the shipped Table II
// roster and the paper's 20 captures per type that reproduces the
// original 540-fingerprint corpus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fingerprint/fingerprint.hpp"
#include "simnet/device_catalog.hpp"

namespace iotsentinel::sim {

/// Per-type fingerprint collections.
struct FingerprintCorpus {
  /// Device-type names, catalog order.
  std::vector<std::string> type_names;
  /// by_type[t][r] = fingerprint F of run r of type t.
  std::vector<std::vector<fp::Fingerprint>> by_type;

  [[nodiscard]] std::size_t num_types() const { return type_names.size(); }
  [[nodiscard]] std::size_t total() const {
    std::size_t n = 0;
    for (const auto& v : by_type) n += v.size();
    return n;
  }
};

/// Generates `runs_per_type` setup captures for every catalog device-type
/// (each run = fresh traffic generation -> parse -> feature extraction ->
/// F), deterministically from `seed`.
FingerprintCorpus generate_corpus(std::size_t runs_per_type = 20,
                                  std::uint64_t seed = 42);

/// Generates captures for a subset of device-types (by catalog name).
FingerprintCorpus generate_corpus_for(const std::vector<std::string>& names,
                                      std::size_t runs_per_type,
                                      std::uint64_t seed);

/// Standby-traffic corpus for the legacy-installation extension (paper
/// Sect. VIII-A): each "run" is a window of `cycles` operational cycles of
/// the device's standby behaviour instead of a setup dialogue.
FingerprintCorpus generate_standby_corpus(std::size_t runs_per_type,
                                          std::uint64_t seed,
                                          std::size_t cycles = 3);

}  // namespace iotsentinel::sim
