// Fault/attack injection for simulated traffic: the channel between a
// frame source (DeviceTraceStream, FleetSim, a scenario script) and the
// gateway under test.
//
// A FaultChannel is a deterministic stream transformer: frames are fed in
// arrival order and come out dropped, duplicated, bit-corrupted and/or
// reordered according to the configured probabilities. All randomness is
// drawn from a private seeded RNG in a fixed per-frame order (drop,
// corrupt, duplicate, reorder — four draws per frame, always), so the
// same (config, input stream) pair reproduces the same faulted stream bit
// for bit; the adversarial scenario engine (simnet/scenario.hpp) leans on
// this for replayable attack runs.
//
// Reordering model: a selected frame is held back and re-emitted after
// `reorder_depth` subsequent input frames have passed (earlier if the
// stream ends — flush()). Timestamps are never rewritten, so a reordered
// frame arrives at the gateway *after* frames bearing later capture
// times — exactly the hazard the extractor's monotone-clock hardening
// (fingerprint/extractor.hpp) has to absorb.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ml/rng.hpp"
#include "simnet/traffic_generator.hpp"

namespace iotsentinel::sim {

/// Per-channel fault probabilities. All default to "clean passthrough".
struct FaultConfig {
  /// Chance a frame is silently lost.
  double drop_prob = 0.0;
  /// Chance a frame is delivered twice back to back.
  double duplicate_prob = 0.0;
  /// Chance a frame is held and re-emitted `reorder_depth` frames later.
  double reorder_prob = 0.0;
  /// Chance 1..`corrupt_max_bits` random bits of the frame are flipped.
  double corrupt_prob = 0.0;
  /// How many subsequent frames pass a held (reordered) frame.
  std::size_t reorder_depth = 4;
  /// Upper bound on flipped bits per corrupted frame.
  std::size_t corrupt_max_bits = 8;
  /// Seed of the channel's private RNG.
  std::uint64_t seed = 1;
};

/// Deterministic drop/duplicate/corrupt/reorder stage. Compose stages by
/// chaining `apply`, or drive frame-by-frame with `feed` + `flush`.
class FaultChannel {
 public:
  /// Injection counters (monotonic; `emitted` counts output frames).
  struct Stats {
    std::uint64_t frames_in = 0;
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t corrupted = 0;
  };

  explicit FaultChannel(FaultConfig config);

  /// Feeds one frame; appends 0..2 frames to `out` now, possibly more
  /// later (held frames whose delay expires ride out on later feeds).
  void feed(TimedFrame frame, std::vector<TimedFrame>& out);

  /// Emits every still-held frame (end of stream / end of fault window).
  void flush(std::vector<TimedFrame>& out);

  /// Whole-trace convenience: feed everything, then flush.
  [[nodiscard]] std::vector<TimedFrame> apply(std::vector<TimedFrame> trace);

  /// Frames currently held for reordering.
  [[nodiscard]] std::size_t held() const { return held_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void corrupt(net::Bytes& bytes);

  struct Held {
    std::size_t remaining = 0;
    TimedFrame frame;
  };

  FaultConfig config_;
  ml::Rng rng_;
  std::deque<Held> held_;
  Stats stats_;
};

}  // namespace iotsentinel::sim
