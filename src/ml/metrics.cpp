#include "ml/metrics.hpp"

#include <cstdio>

namespace iotsentinel::ml {

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  if (n_ == 0) {
    *this = other;
    return;
  }
  if (other.n_ != n_) return;  // arity mismatch: ignore (caller bug)
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

std::uint64_t ConfusionMatrix::row_total(std::size_t c) const {
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < n_; ++p) sum += at(c, p);
  return sum;
}

std::uint64_t ConfusionMatrix::total() const {
  std::uint64_t sum = 0;
  for (auto v : counts_) sum += v;
  return sum;
}

double ConfusionMatrix::class_accuracy(std::size_t c) const {
  const std::uint64_t row = row_total(c);
  if (row == 0) return 0.0;
  return static_cast<double>(at(c, c)) / static_cast<double>(row);
}

double ConfusionMatrix::accuracy() const {
  const std::uint64_t all = total();
  if (all == 0) return 0.0;
  std::uint64_t correct = 0;
  for (std::size_t c = 0; c < n_; ++c) correct += at(c, c);
  return static_cast<double>(correct) / static_cast<double>(all);
}

std::string ConfusionMatrix::to_table(
    const std::vector<std::size_t>& classes,
    const std::vector<std::string>& labels) const {
  std::string out = "A\\P";
  char buf[32];
  for (std::size_t i = 0; i < classes.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%8zu", i + 1);
    out += buf;
  }
  out += '\n';
  for (std::size_t r = 0; r < classes.size(); ++r) {
    std::snprintf(buf, sizeof(buf), "%-3zu", r + 1);
    out += buf;
    for (std::size_t c = 0; c < classes.size(); ++c) {
      std::snprintf(buf, sizeof(buf), "%8llu",
                    static_cast<unsigned long long>(at(classes[r], classes[c])));
      out += buf;
    }
    if (r < labels.size()) {
      out += "   # ";
      out += labels[r];
    }
    out += '\n';
  }
  return out;
}

}  // namespace iotsentinel::ml
