// Random Forest classifier (Breiman 2001): bootstrap-bagged CART trees
// with per-node feature subsampling and majority voting.
//
// IoT Sentinel trains one *binary* forest per device-type (Sect. IV-B.1),
// but the implementation is generic over the number of classes so the
// ablation benches can also compare against a single multi-class forest.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include <optional>

#include "ml/compiled_forest.hpp"
#include "ml/decision_tree.hpp"

namespace iotsentinel::ml {

/// Forest hyperparameters.
struct ForestConfig {
  /// Number of trees.
  std::size_t num_trees = 30;
  /// Per-tree config; `max_features == 0` selects sqrt(d) automatically.
  TreeConfig tree{};
  /// Fraction of the training set drawn (with replacement) per tree.
  double bootstrap_fraction = 1.0;
  /// Base RNG seed; tree t uses an independent stream forked from it.
  std::uint64_t seed = 1;
};

/// A trained Random Forest.
class RandomForest {
 public:
  /// Trains on the full dataset.
  void train(const Dataset& data, const ForestConfig& config);

  /// Trains on a row subset (cross-validation folds pass indices).
  void train(const Dataset& data, std::span<const std::size_t> indices,
             const ForestConfig& config);

  /// Majority-vote class.
  [[nodiscard]] int predict(std::span<const float> features) const;

  /// Mean of the member trees' leaf distributions.
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const float> features) const;

  /// Probability assigned to class 1 — the accept score of the paper's
  /// binary per-device-type classifiers.
  [[nodiscard]] double positive_score(std::span<const float> features) const;

  /// Mean gini feature importance across the member trees (normalized to
  /// sum to 1 when any tree split at all).
  [[nodiscard]] std::vector<double> feature_importances() const;

  /// Flattens the trained forest into the allocation-free serving engine.
  /// Predictions are bit-identical to the methods above; re-run after any
  /// retrain or load.
  [[nodiscard]] CompiledForest compile() const {
    return CompiledForest::compile(*this);
  }

  [[nodiscard]] std::size_t tree_count() const { return trees_.size(); }
  [[nodiscard]] int num_classes() const { return num_classes_; }
  [[nodiscard]] bool trained() const { return !trees_.empty(); }
  [[nodiscard]] const DecisionTree& tree(std::size_t i) const {
    return trees_[i];
  }

  /// Serializes the trained forest as a framed record: "IRF2" tag +
  /// 32-bit payload length + payload (docs/FORMAT.md). The frame lets a
  /// reader that does not understand the payload skip the whole record.
  /// Never fails.
  void save(net::ByteWriter& w) const;

  /// Reads a framed "IRF2" record back. Payload bytes after the last
  /// tree (fields appended by newer writers) are skipped, so appending
  /// is a compatible format evolution.
  ///
  /// Error contract: returns nullopt on a wrong tag (cursor unmoved), a
  /// truncated frame, or a malformed payload; never throws or crashes on
  /// arbitrary input. On success the cursor sits exactly past the
  /// record; on payload errors it sits past the frame's claimed extent.
  /// Integrity checking is the container's job — a bit flip that yields
  /// a structurally valid tree is NOT detected here (the IOTS1 envelope
  /// CRCs reject it before this parser ever runs).
  static std::optional<RandomForest> load(net::ByteReader& r);

  /// Reads the legacy unframed "IRF1" layout written before the IOTS1
  /// container existed (v0 blobs, kept loadable for migration). Same
  /// error contract as `load`, except that on payload errors the cursor
  /// position is unspecified (the legacy format has no length prefix to
  /// resynchronize on).
  static std::optional<RandomForest> load_v0(net::ByteReader& r);

 private:
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

}  // namespace iotsentinel::ml
