// Classification quality metrics: accuracy, per-class accuracy (the
// quantity plotted in the paper's Fig. 5) and confusion matrices
// (Table III).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace iotsentinel::ml {

/// Square confusion matrix: rows = actual class, columns = predicted.
class ConfusionMatrix {
 public:
  ConfusionMatrix() = default;
  explicit ConfusionMatrix(std::size_t num_classes)
      : n_(num_classes), counts_(num_classes * num_classes, 0) {}

  void record(std::size_t actual, std::size_t predicted) {
    ++counts_.at(actual * n_ + predicted);
  }

  /// Merges another matrix of the same arity (repeated CV runs).
  void merge(const ConfusionMatrix& other);

  [[nodiscard]] std::size_t num_classes() const { return n_; }
  [[nodiscard]] std::uint64_t at(std::size_t actual,
                                 std::size_t predicted) const {
    return counts_.at(actual * n_ + predicted);
  }

  /// Samples whose actual class is `c`.
  [[nodiscard]] std::uint64_t row_total(std::size_t c) const;
  [[nodiscard]] std::uint64_t total() const;

  /// Correct / total for class `c` (Fig. 5's "ratio of correct
  /// identification"); 0 when the class never occurred.
  [[nodiscard]] double class_accuracy(std::size_t c) const;

  /// Overall correct / total (the paper's "global ratio", 0.815).
  [[nodiscard]] double accuracy() const;

  /// Pretty-prints the sub-matrix over `classes` with the given labels
  /// (Table III shows only the 10 confusable types).
  [[nodiscard]] std::string to_table(
      const std::vector<std::size_t>& classes,
      const std::vector<std::string>& labels) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace iotsentinel::ml
