#include "ml/decision_tree.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace iotsentinel::ml {
namespace {

/// Gini impurity of a class histogram with `total` samples.
double gini(const std::vector<std::uint32_t>& counts, double total) {
  if (total <= 0) return 0.0;
  double sum_sq = 0.0;
  for (std::uint32_t c : counts) {
    const double p = static_cast<double>(c) / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

struct SplitCandidate {
  int feature = -1;
  float threshold = 0.0f;
  double impurity = std::numeric_limits<double>::infinity();
};

}  // namespace

void DecisionTree::train(const Dataset& data,
                         std::span<const std::size_t> indices,
                         int num_classes, const TreeConfig& config, Rng& rng) {
  nodes_.clear();
  num_classes_ = num_classes;
  importances_.assign(data.num_features(), 0.0);
  root_samples_ = indices.size();
  std::vector<std::size_t> work(indices.begin(), indices.end());
  build(data, work, 0, config, rng);
  // Normalize the accumulated impurity decreases to sum to 1.
  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
}

int DecisionTree::build(const Dataset& data, std::vector<std::size_t>& indices,
                        std::size_t depth, const TreeConfig& config, Rng& rng) {
  // Class histogram for this node.
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i : indices) ++counts[static_cast<std::size_t>(data.label(i))];
  const double total = static_cast<double>(indices.size());
  const double node_impurity = gini(counts, total);

  auto make_leaf = [&]() -> int {
    Node leaf;
    leaf.counts = counts;
    nodes_.push_back(std::move(leaf));
    return static_cast<int>(nodes_.size() - 1);
  };

  const bool depth_exhausted = config.max_depth != 0 && depth >= config.max_depth;
  if (indices.size() < config.min_samples_split || node_impurity == 0.0 ||
      depth_exhausted) {
    return make_leaf();
  }

  // Feature subsampling (mtry). 0 => consider every feature.
  const std::size_t d = data.num_features();
  std::vector<std::size_t> feature_pool;
  if (config.max_features == 0 || config.max_features >= d) {
    feature_pool.resize(d);
    for (std::size_t f = 0; f < d; ++f) feature_pool[f] = f;
  } else {
    feature_pool = rng.sample_without_replacement(d, config.max_features);
  }

  // Scan candidate thresholds per feature: sort the node's values once and
  // sweep the class histogram across boundaries between distinct values.
  SplitCandidate best;
  std::vector<std::pair<float, int>> values;  // (feature value, label)
  values.reserve(indices.size());
  for (std::size_t feature : feature_pool) {
    values.clear();
    for (std::size_t i : indices) {
      values.emplace_back(data.row(i)[feature], data.label(i));
    }
    std::sort(values.begin(), values.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (values.front().first == values.back().first) continue;  // constant

    std::vector<std::uint32_t> left_counts(
        static_cast<std::size_t>(num_classes_), 0);
    std::vector<std::uint32_t> right_counts = counts;
    std::size_t n_left = 0;
    for (std::size_t i = 0; i + 1 < values.size(); ++i) {
      const auto label = static_cast<std::size_t>(values[i].second);
      ++left_counts[label];
      --right_counts[label];
      ++n_left;
      if (values[i].first == values[i + 1].first) continue;  // same value
      const std::size_t n_right = values.size() - n_left;
      if (n_left < config.min_samples_leaf || n_right < config.min_samples_leaf)
        continue;
      const double weighted =
          (static_cast<double>(n_left) * gini(left_counts, static_cast<double>(n_left)) +
           static_cast<double>(n_right) * gini(right_counts, static_cast<double>(n_right))) /
          total;
      if (weighted < best.impurity) {
        best.impurity = weighted;
        best.feature = static_cast<int>(feature);
        // Midpoint threshold between adjacent distinct values.
        best.threshold = values[i].first +
                         (values[i + 1].first - values[i].first) / 2.0f;
        // Guard against midpoint rounding onto the left value.
        if (best.threshold <= values[i].first)
          best.threshold = values[i + 1].first;
      }
    }
  }

  if (best.feature < 0 || best.impurity >= node_impurity) return make_leaf();

  // Gini importance: impurity decrease weighted by the node's share of
  // the training sample.
  importances_[static_cast<std::size_t>(best.feature)] +=
      (total / static_cast<double>(root_samples_)) *
      (node_impurity - best.impurity);

  std::vector<std::size_t> left_idx;
  std::vector<std::size_t> right_idx;
  left_idx.reserve(indices.size());
  right_idx.reserve(indices.size());
  for (std::size_t i : indices) {
    if (data.row(i)[static_cast<std::size_t>(best.feature)] < best.threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return make_leaf();

  // Reserve this node's slot before recursing (children append after it).
  const int self = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  indices.clear();
  indices.shrink_to_fit();
  const int left = build(data, left_idx, depth + 1, config, rng);
  const int right = build(data, right_idx, depth + 1, config, rng);
  Node& node = nodes_[static_cast<std::size_t>(self)];
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.left = left;
  node.right = right;
  return self;
}

int DecisionTree::predict(std::span<const float> features) const {
  const auto proba = predict_proba(features);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const float> features) const {
  std::vector<double> out(static_cast<std::size_t>(num_classes_), 0.0);
  if (nodes_.empty()) return out;
  std::size_t node = 0;
  while (nodes_[node].left >= 0) {
    const Node& n = nodes_[node];
    node = static_cast<std::size_t>(
        features[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left
                                                                    : n.right);
  }
  const auto& counts = nodes_[node].counts;
  double total = 0.0;
  for (std::uint32_t c : counts) total += c;
  if (total == 0.0) return out;
  for (std::size_t c = 0; c < counts.size(); ++c)
    out[c] = static_cast<double>(counts[c]) / total;
  return out;
}

std::size_t DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the flat representation.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    if (nodes_[node].left >= 0) {
      stack.emplace_back(static_cast<std::size_t>(nodes_[node].left), depth + 1);
      stack.emplace_back(static_cast<std::size_t>(nodes_[node].right), depth + 1);
    }
  }
  return max_depth;
}

void DecisionTree::save(net::ByteWriter& w) const {
  w.u32be(static_cast<std::uint32_t>(num_classes_));
  w.u32be(static_cast<std::uint32_t>(importances_.size()));
  for (double v : importances_) {
    w.u32be(std::bit_cast<std::uint32_t>(static_cast<float>(v)));
  }
  w.u32be(static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& node : nodes_) {
    w.u32be(static_cast<std::uint32_t>(node.feature));
    w.u32be(std::bit_cast<std::uint32_t>(node.threshold));
    w.u32be(static_cast<std::uint32_t>(node.left));
    w.u32be(static_cast<std::uint32_t>(node.right));
    w.u32be(static_cast<std::uint32_t>(node.counts.size()));
    for (std::uint32_t c : node.counts) w.u32be(c);
  }
}

std::optional<DecisionTree> DecisionTree::load(net::ByteReader& r) {
  DecisionTree tree;
  auto num_classes = r.u32be();
  auto num_importances = r.u32be();
  // num_classes bounds every leaf histogram the compiled engine
  // materializes; an absurd value in a crafted blob must not translate
  // into a giant allocation downstream.
  if (!num_classes || !num_importances || *num_classes == 0 ||
      *num_classes > 4096 || *num_importances > 1'000'000) {
    return std::nullopt;
  }
  tree.num_classes_ = static_cast<int>(*num_classes);
  tree.importances_.reserve(*num_importances);
  for (std::uint32_t i = 0; i < *num_importances; ++i) {
    auto bits = r.u32be();
    if (!bits) return std::nullopt;
    tree.importances_.push_back(std::bit_cast<float>(*bits));
  }
  auto node_count = r.u32be();
  if (!node_count || *node_count > 10'000'000) return std::nullopt;
  tree.nodes_.reserve(*node_count);
  for (std::uint32_t i = 0; i < *node_count; ++i) {
    Node node;
    auto feature = r.u32be();
    auto threshold = r.u32be();
    auto left = r.u32be();
    auto right = r.u32be();
    auto counts = r.u32be();
    if (!feature || !threshold || !left || !right || !counts ||
        *counts > 4096) {
      return std::nullopt;
    }
    node.feature = static_cast<int>(*feature);
    node.threshold = std::bit_cast<float>(*threshold);
    node.left = static_cast<int>(*left);
    node.right = static_cast<int>(*right);
    node.counts.reserve(*counts);
    for (std::uint32_t c = 0; c < *counts; ++c) {
      auto value = r.u32be();
      if (!value) return std::nullopt;
      node.counts.push_back(*value);
    }
    // Structural sanity — serving trusts all of this unchecked, so it is
    // load-time-or-never. Internal nodes: children must point forward
    // within the vector and the split feature must index into the
    // feature vector (whose dimension the importances array records).
    // Leaves: the class histogram must hold exactly num_classes entries
    // (prediction reads counts[c] for every class); internal nodes
    // store none.
    if (node.left >= 0) {
      if (node.left <= static_cast<int>(i) ||
          node.right <= static_cast<int>(i) ||
          static_cast<std::uint32_t>(node.left) >= *node_count ||
          static_cast<std::uint32_t>(node.right) >= *node_count ||
          *feature >= *num_importances || !node.counts.empty()) {
        return std::nullopt;
      }
    } else if (node.counts.size() != *num_classes) {
      return std::nullopt;
    }
    tree.nodes_.push_back(std::move(node));
  }
  return tree;
}

}  // namespace iotsentinel::ml
