// Hot model swap: epoch/RCU publication of compiled forest banks.
//
// The IoTSSP keeps learning while it serves (ROADMAP "online retraining
// with hot model swap"): newly confirmed fingerprints of one device-type
// are folded into that type's RandomForest on a background thread, and
// the resulting bank of CompiledForest engines is published to the
// serving threads without ever blocking them. The per-type one-vs-rest
// design makes this naturally incremental — rebuilding type T leaves the
// other types' engines untouched (their bytes are copied, so their
// predictions stay bit-identical across the swap; asserted by
// tests/test_hot_swap.cpp).
//
// Publication protocol (epoch-based reclamation, readers lock-free)
// ------------------------------------------------------------------
// The current bank lives behind one atomic pointer; a global epoch
// counter equals the current bank's version. Every reader owns a fixed
// slot holding the epoch it has pinned (0 = quiescent). To serve a
// batch a reader pins:
//
//     e = epoch;                      // seq_cst
//     do { slot = e; } while ((e' = epoch) != e, e = e');  // seq_cst
//     bank = current;                 // seq_cst
//
// and unpins (slot = 0, release) when the batch is done. A publisher,
// serialized on an internal mutex, installs the new bank with one
// atomic exchange, bumps the epoch, retires the old bank, and frees any
// retired bank whose version is below the minimum pinned epoch.
//
// Why this is safe: a reader that obtained bank B(v) loaded `current`
// *before* the exchange that replaced B(v) (in the seq_cst total order —
// the load returned the pre-exchange value). Its slot store of e <= v
// precedes that load in program order, hence precedes the exchange, and
// therefore precedes the publisher's post-exchange slot scan, which must
// then observe the pin and keep B(v). Conversely the scan observing a
// released slot (the reader's release-store of 0) synchronizes-with that
// release, so every read the reader made of the bank happens-before the
// free. Readers never block, never allocate, and can never observe a
// torn bank: the engines vector is immutable once published.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "ml/compiled_forest.hpp"
#include "ml/random_forest.hpp"
#include "telemetry/registry.hpp"

namespace iotsentinel::ml {

/// One published, immutable generation of the per-type serving engines.
struct ForestBank {
  /// No type was retrained (the initial bank).
  static constexpr std::size_t kNoRetrainedType =
      std::numeric_limits<std::size_t>::max();

  /// Monotone generation number; equals the publisher's epoch at the
  /// moment this bank was installed (the initial bank is version 1).
  std::uint64_t version = 0;
  /// The single type whose forest differs from the previous bank
  /// (kNoRetrainedType for the initial bank). Consumers use this to
  /// invalidate state derived from the replaced classifier.
  std::size_t retrained_type = kNoRetrainedType;
  /// engines[t] serves type t; all entries except `retrained_type` are
  /// byte-for-byte copies of the previous bank's engines.
  std::vector<CompiledForest> engines;
};

/// Publishes retrained forest banks to serving threads (see file comment
/// for the protocol). Any number of reader threads (each holding its own
/// ReaderHandle) and any number of publisher threads (serialized
/// internally) may run concurrently. The publisher must outlive every
/// ReaderHandle and BankRef handed out.
class ForestBankPublisher {
 public:
  /// Fixed reader-slot count; register_reader beyond this asserts.
  static constexpr std::size_t kMaxReaders = 64;

  /// Takes ownership of the training-side forests (typically copies of a
  /// trained ClassifierBank's) and publishes version 1 compiled from
  /// them. Compiling a copy of a trained forest is deterministic, so the
  /// initial engines are bit-identical to the source bank's.
  explicit ForestBankPublisher(std::vector<RandomForest> forests);

  /// Frees the current bank and every retired one. No reader may hold a
  /// BankRef or ReaderHandle past this point.
  ~ForestBankPublisher();

  ForestBankPublisher(const ForestBankPublisher&) = delete;
  ForestBankPublisher& operator=(const ForestBankPublisher&) = delete;

  /// A reader's registration: owns one pin slot. Move-only; destruction
  /// releases the slot. Must not outlive the publisher.
  class ReaderHandle {
   public:
    ReaderHandle(ReaderHandle&& other) noexcept
        : owner_(other.owner_), index_(other.index_) {
      other.owner_ = nullptr;
    }
    ReaderHandle& operator=(ReaderHandle&& other) noexcept {
      if (this != &other) {
        release();
        owner_ = other.owner_;
        index_ = other.index_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    ~ReaderHandle() { release(); }

   private:
    friend class ForestBankPublisher;
    ReaderHandle(ForestBankPublisher* owner, std::size_t index)
        : owner_(owner), index_(index) {}
    void release();

    ForestBankPublisher* owner_ = nullptr;
    std::size_t index_ = 0;
  };

  /// A pinned snapshot of the current bank. While any BankRef for a bank
  /// exists, that bank is not reclaimed. Move-only; destruction unpins.
  /// Acquire/deref/release are allocation-free (asserted by the tests).
  class BankRef {
   public:
    BankRef(BankRef&& other) noexcept
        : bank_(other.bank_), slot_(other.slot_) {
      other.slot_ = nullptr;
    }
    BankRef& operator=(BankRef&& other) noexcept {
      if (this != &other) {
        unpin();
        bank_ = other.bank_;
        slot_ = other.slot_;
        other.slot_ = nullptr;
      }
      return *this;
    }
    ~BankRef() { unpin(); }

    [[nodiscard]] const ForestBank& operator*() const { return *bank_; }
    [[nodiscard]] const ForestBank* operator->() const { return bank_; }

   private:
    friend class ForestBankPublisher;
    BankRef(const ForestBank* bank, std::atomic<std::uint64_t>* slot)
        : bank_(bank), slot_(slot) {}
    void unpin() {
      if (slot_ != nullptr) {
        slot_->store(kQuiescent, std::memory_order_release);
        slot_ = nullptr;
      }
    }

    const ForestBank* bank_ = nullptr;
    std::atomic<std::uint64_t>* slot_ = nullptr;
  };

  // --- reader side (lock-free after registration) -----------------------

  /// Claims a pin slot for the calling thread. One handle per concurrent
  /// reader; a thread may re-register after releasing its handle.
  [[nodiscard]] ReaderHandle register_reader();

  /// Pins the current bank. Never blocks on publishers; the returned
  /// snapshot stays valid (and its engines immutable) until the BankRef
  /// is destroyed. One BankRef per handle at a time.
  [[nodiscard]] BankRef acquire(ReaderHandle& reader);

  // --- publisher side (any thread; internally serialized) ----------------

  /// Retrains type `type`'s forest on `data`/`config` and publishes a
  /// bank where only that engine changed. Blocks for the training
  /// duration (call from a background thread); readers are never
  /// blocked. Returns the new bank's version.
  std::uint64_t rebuild_type(std::size_t type, const Dataset& data,
                             const ForestConfig& config);

  /// Publishes a prebuilt engine set (size must equal num_types). The
  /// low-level primitive behind rebuild_type — callers that retrain
  /// through core::ClassifierBank publish its engines here. Returns the
  /// new version.
  std::uint64_t publish_engines(std::vector<CompiledForest> engines,
                                std::size_t retrained_type);

  /// Frees retired banks no reader can still hold. Publishing reclaims
  /// automatically; this is for tests and idle maintenance.
  void reclaim();

  // --- introspection ----------------------------------------------------

  /// Version of the currently published bank (= the epoch).
  [[nodiscard]] std::uint64_t version() const {
    return epoch_.load(std::memory_order_seq_cst);
  }
  /// Successful publishes since construction (the initial bank is not a
  /// retrain).
  [[nodiscard]] std::uint64_t retrains_completed() const {
    return retrains_.load(std::memory_order_relaxed);
  }
  /// Retired banks not yet reclaimed (each pinned by some reader epoch).
  [[nodiscard]] std::size_t retired_banks() const;
  /// Number of per-type forests in every bank.
  [[nodiscard]] std::size_t num_types() const;
  /// Copy of the training-side forest of `type` as of the latest publish
  /// (persistence: fold the retrained forest back into a ClassifierBank
  /// for the incremental model-store rewrite).
  [[nodiscard]] RandomForest forest_copy(std::size_t type) const;

  /// Registry bindings (docs/OBSERVABILITY.md); all optional. Bind
  /// before publishing — the pointers are read by publisher threads.
  struct Telemetry {
    /// `hotswap.retrains_completed`: published banks.
    telemetry::Counter* retrains = nullptr;
    /// `hotswap.bank_epoch`: version of the current bank.
    telemetry::Gauge* bank_epoch = nullptr;
    /// `hotswap.swap_latency_us`: pointer-swap + retire + reclaim time.
    telemetry::Histogram* swap_latency_us = nullptr;
    /// `hotswap.retired_banks`: retired-but-unreclaimed bank count.
    telemetry::Gauge* retired_banks = nullptr;
  };
  void bind_telemetry(const Telemetry& telemetry);

 private:
  /// Slot value meaning "no epoch pinned" (real epochs start at 1).
  static constexpr std::uint64_t kQuiescent = 0;

  struct alignas(64) ReaderSlot {
    std::atomic<std::uint64_t> pinned{kQuiescent};
    std::atomic<bool> taken{false};
  };

  struct Retired {
    const ForestBank* bank = nullptr;
  };

  /// Installs `bank` (version assigned inside), retires the old bank and
  /// reclaims. Caller holds publish_mu_. Returns the new version.
  std::uint64_t publish_locked(ForestBank* bank);
  /// Frees retired banks below the minimum pinned epoch. Caller holds
  /// publish_mu_.
  void reclaim_locked();

  /// Serializes publishers; guards forests_, retired_ and telemetry_.
  mutable std::mutex publish_mu_;
  /// Master training-side forests (the next rebuild copies the other
  /// types' engines but retrains from/into these).
  std::vector<RandomForest> forests_;
  std::vector<Retired> retired_;
  Telemetry telemetry_;

  std::atomic<const ForestBank*> current_{nullptr};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> retrains_{0};
  std::array<ReaderSlot, kMaxReaders> slots_{};
};

}  // namespace iotsentinel::ml
