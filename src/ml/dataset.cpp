#include "ml/dataset.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace iotsentinel::ml {

void Dataset::add(std::span<const float> features, int label) {
  if (num_features_ == 0) num_features_ = features.size();
  if (features.size() != num_features_) {
    std::fprintf(stderr,
                 "Dataset::add: feature width %zu != expected %zu\n",
                 features.size(), num_features_);
    std::abort();
  }
  data_.insert(data_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

int Dataset::num_classes() const {
  int max_label = -1;
  for (int l : labels_) max_label = std::max(max_label, l);
  return max_label + 1;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(num_features_);
  for (std::size_t i : indices) out.add(row(i), label(i));
  return out;
}

std::vector<FoldSplit> stratified_k_fold(const std::vector<int>& labels,
                                         std::size_t k, Rng& rng) {
  // Group sample indices by class, shuffle within class, deal round-robin
  // so every fold receives floor/ceil(n_c / k) samples of class c.
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i)
    by_class[labels[i]].push_back(i);

  std::vector<std::vector<std::size_t>> fold_test(k);
  for (auto& [label, indices] : by_class) {
    rng.shuffle(indices);
    for (std::size_t i = 0; i < indices.size(); ++i)
      fold_test[i % k].push_back(indices[i]);
  }

  std::vector<FoldSplit> splits(k);
  for (std::size_t f = 0; f < k; ++f) {
    splits[f].test = fold_test[f];
    std::sort(splits[f].test.begin(), splits[f].test.end());
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      splits[f].train.insert(splits[f].train.end(), fold_test[g].begin(),
                             fold_test[g].end());
    }
    std::sort(splits[f].train.begin(), splits[f].train.end());
  }
  return splits;
}

}  // namespace iotsentinel::ml
