// CART decision tree for classification (gini impurity, axis-aligned
// threshold splits, optional per-node feature subsampling for forests).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include <optional>

#include "ml/dataset.hpp"
#include "ml/rng.hpp"
#include "net/bytes.hpp"

namespace iotsentinel::ml {

/// Decision-tree hyperparameters.
struct TreeConfig {
  /// Maximum tree depth; 0 means unlimited.
  std::size_t max_depth = 0;
  /// Minimum samples required to attempt a split.
  std::size_t min_samples_split = 2;
  /// Minimum samples in each leaf.
  std::size_t min_samples_leaf = 1;
  /// Features examined per split; 0 means all (single trees) — forests set
  /// this to ~sqrt(d).
  std::size_t max_features = 0;
};

/// A trained CART classifier.
///
/// Nodes are stored in a flat vector (index-linked) for cache-friendly
/// prediction; leaves store the full class histogram so predict_proba can
/// return calibrated leaf frequencies.
class DecisionTree {
 public:
  /// Trains on (a subset of) `data`. `indices` selects rows (with
  /// duplicates allowed — bootstrap samples pass repeated indices).
  /// `num_classes` fixes the output arity across forest members.
  void train(const Dataset& data, std::span<const std::size_t> indices,
             int num_classes, const TreeConfig& config, Rng& rng);

  /// Most frequent class at the reached leaf.
  [[nodiscard]] int predict(std::span<const float> features) const;

  /// Class distribution at the reached leaf.
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const float> features) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] int num_classes() const { return num_classes_; }
  [[nodiscard]] bool trained() const { return !nodes_.empty(); }

  /// Mean-decrease-in-impurity (gini) importance per feature, normalized
  /// to sum to 1 (all zeros for a single-leaf tree).
  [[nodiscard]] const std::vector<double>& feature_importances() const {
    return importances_;
  }

  /// Serializes the trained tree (structure + leaf histograms + feature
  /// importances) into `w`. Format is versioned by the enclosing forest.
  void save(net::ByteWriter& w) const;

  /// Reads a tree back; nullopt on malformed input.
  static std::optional<DecisionTree> load(net::ByteReader& r);

 private:
  // The compilation pass flattens nodes_ into its SoA serving layout.
  friend class CompiledForest;

  struct Node {
    // Internal node: feature/threshold valid, left/right >= 0.
    // Leaf: left == -1; `counts` holds the class histogram.
    int feature = -1;
    float threshold = 0.0f;
    int left = -1;
    int right = -1;
    std::vector<std::uint32_t> counts;
  };

  int build(const Dataset& data, std::vector<std::size_t>& indices,
            std::size_t depth, const TreeConfig& config, Rng& rng);

  std::vector<Node> nodes_;
  std::vector<double> importances_;
  std::size_t root_samples_ = 0;
  int num_classes_ = 0;
};

}  // namespace iotsentinel::ml
