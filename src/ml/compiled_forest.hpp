// Allocation-free compiled inference engine for trained forests.
//
// `compile()` is a post-training pass that flattens every DecisionTree
// into one contiguous node array (split feature / threshold / child
// offsets packed in 16 bytes per node, all trees back to back) plus a
// single shared pool of *pre-normalized* leaf class probabilities
// indexed by leaf id. Prediction then reduces to chasing offsets through
// two flat arrays: no per-node vectors, no per-call histograms, zero
// heap allocations.
//
// The engine is numerically bit-identical to the training-side
// RandomForest/DecisionTree prediction paths: leaf probabilities are
// stored as the same doubles `counts[c] / total` that
// DecisionTree::predict_proba computes, and accumulation/division order
// across trees matches RandomForest::predict_proba exactly. The
// equivalence suite (tests/test_compiled_forest.cpp) asserts this with
// exact floating-point comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace iotsentinel::ml {

class DecisionTree;
class RandomForest;

/// A forest flattened for serving. Cheap to copy/move; rebuild with
/// `compile()` whenever the source forest is retrained or reloaded.
class CompiledForest {
 public:
  CompiledForest() = default;

  /// Flattens a trained forest. An untrained forest compiles to an empty
  /// engine whose predictions match the untrained RandomForest (zeros).
  static CompiledForest compile(const RandomForest& forest);

  /// Flattens a single tree (a one-member forest); the single-tree bench
  /// and equivalence tests use this directly.
  static CompiledForest compile(const DecisionTree& tree);

  /// Mean of the member trees' leaf distributions, written into `out`
  /// (`out.size()` must equal `num_classes()`). Allocation-free.
  void predict_proba_into(std::span<const float> features,
                          std::span<double> out) const;

  /// Majority-vote class (first index on ties, like RandomForest).
  [[nodiscard]] int predict(std::span<const float> features) const;

  /// Probability of class 1 — the accept score of the paper's binary
  /// per-device-type classifiers. Needs no scratch buffer at all.
  [[nodiscard]] double positive_score(std::span<const float> features) const;

  /// Batched binary scoring: `out[i] = positive_score(batch[i])`.
  /// `out.size()` must equal `batch.size()`. (FixedFingerprint is an
  /// alias for std::vector<float>, so fingerprint batches pass through
  /// unchanged.)
  void score_batch(std::span<const std::vector<float>> batch,
                   std::span<double> out) const;

  [[nodiscard]] std::size_t tree_count() const { return roots_.size(); }
  [[nodiscard]] int num_classes() const { return num_classes_; }
  [[nodiscard]] bool empty() const { return roots_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    /// Split feature for internal nodes; -1 marks a leaf.
    std::int32_t feature = -1;
    float threshold = 0.0f;
    /// Internal: absolute child offsets into `nodes_`.
    /// Leaf: `left` is the offset of this leaf's distribution in
    /// `leaf_probs_` (`right` unused).
    std::int32_t left = 0;
    std::int32_t right = 0;
  };
  static_assert(sizeof(Node) == 16);

  /// Walks one tree; returns the reached leaf's `leaf_probs_` offset.
  [[nodiscard]] std::size_t leaf_offset(std::span<const float> features,
                                        std::uint32_t root) const {
    std::size_t n = root;
    while (nodes_[n].feature >= 0) {
      const Node& node = nodes_[n];
      n = static_cast<std::size_t>(
          features[static_cast<std::size_t>(node.feature)] < node.threshold
              ? node.left
              : node.right);
    }
    return static_cast<std::size_t>(nodes_[n].left);
  }

  void append_tree(const DecisionTree& tree);

  /// All trees' nodes, contiguous; tree t starts at `roots_[t]`.
  std::vector<Node> nodes_;
  /// Shared pool of pre-normalized leaf distributions, `num_classes_`
  /// doubles per leaf.
  std::vector<double> leaf_probs_;
  std::vector<std::uint32_t> roots_;
  int num_classes_ = 0;
};

}  // namespace iotsentinel::ml
