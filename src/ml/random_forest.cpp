#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace iotsentinel::ml {

void RandomForest::train(const Dataset& data, const ForestConfig& config) {
  std::vector<std::size_t> all(data.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  train(data, all, config);
}

void RandomForest::train(const Dataset& data,
                         std::span<const std::size_t> indices,
                         const ForestConfig& config) {
  trees_.clear();
  num_classes_ = data.num_classes();
  if (indices.empty() || num_classes_ <= 0) return;

  TreeConfig tree_config = config.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(data.num_features()))));
    if (tree_config.max_features == 0) tree_config.max_features = 1;
  }

  const auto bootstrap_size = static_cast<std::size_t>(
      std::max(1.0, config.bootstrap_fraction *
                        static_cast<double>(indices.size())));

  Rng base(config.seed);
  trees_.resize(config.num_trees);
  for (auto& tree : trees_) {
    Rng tree_rng = base.fork();
    std::vector<std::size_t> sample(bootstrap_size);
    for (auto& s : sample) s = indices[tree_rng.index(indices.size())];
    tree.train(data, sample, num_classes_, tree_config, tree_rng);
  }
}

int RandomForest::predict(std::span<const float> features) const {
  const auto proba = predict_proba(features);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

std::vector<double> RandomForest::predict_proba(
    std::span<const float> features) const {
  std::vector<double> sum(static_cast<std::size_t>(num_classes_), 0.0);
  if (trees_.empty()) return sum;
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba(features);
    for (std::size_t c = 0; c < sum.size(); ++c) sum[c] += p[c];
  }
  for (auto& v : sum) v /= static_cast<double>(trees_.size());
  return sum;
}

std::vector<double> RandomForest::feature_importances() const {
  std::vector<double> sum;
  for (const auto& tree : trees_) {
    const auto& imp = tree.feature_importances();
    if (sum.empty()) sum.assign(imp.size(), 0.0);
    for (std::size_t f = 0; f < imp.size(); ++f) sum[f] += imp[f];
  }
  double total = 0.0;
  for (double v : sum) total += v;
  if (total > 0.0) {
    for (double& v : sum) v /= total;
  }
  return sum;
}

double RandomForest::positive_score(std::span<const float> features) const {
  const auto proba = predict_proba(features);
  return proba.size() > 1 ? proba[1] : 0.0;
}

void RandomForest::save(net::ByteWriter& w) const {
  w.bytes(std::string("IRF2"));
  const std::size_t length_at = w.size();
  w.u32be(0);  // payload length, patched below
  const std::size_t payload_at = w.size();
  w.u32be(static_cast<std::uint32_t>(num_classes_));
  w.u32be(static_cast<std::uint32_t>(trees_.size()));
  for (const auto& tree : trees_) tree.save(w);
  w.patch_u32be(length_at, static_cast<std::uint32_t>(w.size() - payload_at));
}

std::optional<RandomForest> RandomForest::load(net::ByteReader& r) {
  if (!r.read_tag("IRF2")) return std::nullopt;
  auto length = r.u32be();
  if (!length) return std::nullopt;
  auto payload = r.slice(*length);
  if (!payload) return std::nullopt;
  RandomForest forest;
  auto num_classes = payload->u32be();
  auto tree_count = payload->u32be();
  // num_classes sizes per-leaf probability rows in the compiled engine;
  // cap it so a crafted blob cannot demand a giant allocation, and
  // require every member tree to agree with the forest (training
  // guarantees it; serving assumes it).
  if (!num_classes || !tree_count || *num_classes > 4096 ||
      *tree_count > 100'000) {
    return std::nullopt;
  }
  forest.num_classes_ = static_cast<int>(*num_classes);
  forest.trees_.reserve(*tree_count);
  for (std::uint32_t i = 0; i < *tree_count; ++i) {
    auto tree = DecisionTree::load(*payload);
    if (!tree || tree->num_classes() != forest.num_classes_) {
      return std::nullopt;
    }
    forest.trees_.push_back(std::move(*tree));
  }
  // Bytes a newer writer appended after the trees are skipped: `payload`
  // is a slice, so the caller's reader already sits past this record.
  return forest;
}

std::optional<RandomForest> RandomForest::load_v0(net::ByteReader& r) {
  if (!r.read_tag("IRF1")) return std::nullopt;
  RandomForest forest;
  auto num_classes = r.u32be();
  auto tree_count = r.u32be();
  if (!num_classes || !tree_count || *num_classes > 4096 ||
      *tree_count > 100'000) {
    return std::nullopt;
  }
  forest.num_classes_ = static_cast<int>(*num_classes);
  forest.trees_.reserve(*tree_count);
  for (std::uint32_t i = 0; i < *tree_count; ++i) {
    auto tree = DecisionTree::load(r);
    if (!tree || tree->num_classes() != forest.num_classes_) {
      return std::nullopt;
    }
    forest.trees_.push_back(std::move(*tree));
  }
  return forest;
}

}  // namespace iotsentinel::ml
