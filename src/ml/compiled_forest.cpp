#include "ml/compiled_forest.hpp"

#include <algorithm>
#include <cassert>

#include "ml/random_forest.hpp"

namespace iotsentinel::ml {

void CompiledForest::append_tree(const DecisionTree& tree) {
  const std::size_t base = nodes_.size();
  roots_.push_back(static_cast<std::uint32_t>(base));

  if (!tree.trained()) {
    // Degenerate member: behaves like a single all-zero leaf, matching
    // DecisionTree::predict_proba on an empty tree.
    Node leaf;
    leaf.left = static_cast<std::int32_t>(leaf_probs_.size());
    leaf_probs_.insert(leaf_probs_.end(),
                       static_cast<std::size_t>(num_classes_), 0.0);
    nodes_.push_back(leaf);
    return;
  }

  for (const DecisionTree::Node& src : tree.nodes_) {
    Node dst;
    if (src.left >= 0) {
      dst.feature = src.feature;
      dst.threshold = src.threshold;
      dst.left = static_cast<std::int32_t>(base) + src.left;
      dst.right = static_cast<std::int32_t>(base) + src.right;
    } else {
      dst.left = static_cast<std::int32_t>(leaf_probs_.size());
      // Pre-normalize exactly as DecisionTree::predict_proba does: the
      // same double division, zeros for an empty histogram.
      double total = 0.0;
      for (std::uint32_t c : src.counts) total += c;
      const std::size_t classes = static_cast<std::size_t>(num_classes_);
      for (std::size_t c = 0; c < classes; ++c) {
        const double count =
            c < src.counts.size() ? static_cast<double>(src.counts[c]) : 0.0;
        leaf_probs_.push_back(total == 0.0 ? 0.0 : count / total);
      }
    }
    nodes_.push_back(dst);
  }
}

CompiledForest CompiledForest::compile(const RandomForest& forest) {
  CompiledForest out;
  out.num_classes_ = forest.num_classes();
  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    out.append_tree(forest.tree(t));
  }
  return out;
}

CompiledForest CompiledForest::compile(const DecisionTree& tree) {
  CompiledForest out;
  out.num_classes_ = tree.num_classes();
  out.append_tree(tree);
  return out;
}

void CompiledForest::predict_proba_into(std::span<const float> features,
                                        std::span<double> out) const {
  assert(out.size() == static_cast<std::size_t>(num_classes_));
  std::fill(out.begin(), out.end(), 0.0);
  if (roots_.empty()) return;
  for (std::uint32_t root : roots_) {
    const std::size_t base = leaf_offset(features, root);
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += leaf_probs_[base + c];
  }
  const double count = static_cast<double>(roots_.size());
  for (double& v : out) v /= count;
}

int CompiledForest::predict(std::span<const float> features) const {
  if (num_classes_ <= 0) return 0;
  constexpr std::size_t kStackClasses = 32;
  double stack_buf[kStackClasses];
  std::vector<double> heap_buf;
  std::span<double> proba;
  if (static_cast<std::size_t>(num_classes_) <= kStackClasses) {
    proba = std::span<double>(stack_buf, static_cast<std::size_t>(num_classes_));
  } else {
    heap_buf.resize(static_cast<std::size_t>(num_classes_));
    proba = heap_buf;
  }
  predict_proba_into(features, proba);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

double CompiledForest::positive_score(std::span<const float> features) const {
  if (roots_.empty() || num_classes_ < 2) return 0.0;
  double sum = 0.0;
  for (std::uint32_t root : roots_) {
    sum += leaf_probs_[leaf_offset(features, root) + 1];
  }
  return sum / static_cast<double>(roots_.size());
}

void CompiledForest::score_batch(std::span<const std::vector<float>> batch,
                                 std::span<double> out) const {
  assert(out.size() == batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    out[i] = positive_score(batch[i]);
  }
}

}  // namespace iotsentinel::ml
