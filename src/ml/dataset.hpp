// Tabular dataset container and cross-validation index generation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/rng.hpp"

namespace iotsentinel::ml {

/// Row-major feature matrix with integer labels.
///
/// Rows are samples (one F' fingerprint each in this library), columns are
/// features. Labels are small non-negative class ids.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t num_features) : num_features_(num_features) {}

  /// Appends one sample; `features.size()` must equal `num_features()`
  /// (checked, aborts on mismatch — this is a programming error).
  void add(std::span<const float> features, int label);

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] bool empty() const { return labels_.empty(); }
  [[nodiscard]] std::size_t num_features() const { return num_features_; }

  [[nodiscard]] std::span<const float> row(std::size_t i) const {
    return {data_.data() + i * num_features_, num_features_};
  }
  [[nodiscard]] int label(std::size_t i) const { return labels_[i]; }
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }

  /// Number of distinct label values (max label + 1).
  [[nodiscard]] int num_classes() const;

  /// Builds a new dataset from a subset of row indices.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

 private:
  std::size_t num_features_ = 0;
  std::vector<float> data_;
  std::vector<int> labels_;
};

/// One train/test split of a cross-validation run (row indices).
struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified k-fold splits: each fold's test set preserves the overall
/// class proportions (the paper evaluates with stratified 10-fold CV).
/// Samples of each class are shuffled with `rng` then dealt round-robin.
std::vector<FoldSplit> stratified_k_fold(const std::vector<int>& labels,
                                         std::size_t k, Rng& rng);

}  // namespace iotsentinel::ml
