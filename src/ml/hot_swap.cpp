#include "ml/hot_swap.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace iotsentinel::ml {

ForestBankPublisher::ForestBankPublisher(std::vector<RandomForest> forests)
    : forests_(std::move(forests)) {
  auto* bank = new ForestBank;
  bank->version = 1;
  bank->retrained_type = ForestBank::kNoRetrainedType;
  bank->engines.reserve(forests_.size());
  for (const RandomForest& forest : forests_) {
    bank->engines.push_back(forest.compile());
  }
  current_.store(bank, std::memory_order_seq_cst);
  epoch_.store(1, std::memory_order_seq_cst);
}

ForestBankPublisher::~ForestBankPublisher() {
#ifndef NDEBUG
  for (const ReaderSlot& slot : slots_) {
    assert(!slot.taken.load(std::memory_order_relaxed) &&
           "ReaderHandle outlived its ForestBankPublisher");
  }
#endif
  delete current_.load(std::memory_order_seq_cst);
  for (const Retired& retired : retired_) delete retired.bank;
}

void ForestBankPublisher::ReaderHandle::release() {
  if (owner_ == nullptr) return;
  ReaderSlot& slot = owner_->slots_[index_];
  slot.pinned.store(kQuiescent, std::memory_order_release);
  slot.taken.store(false, std::memory_order_release);
  owner_ = nullptr;
}

ForestBankPublisher::ReaderHandle ForestBankPublisher::register_reader() {
  for (std::size_t i = 0; i < kMaxReaders; ++i) {
    bool expected = false;
    if (slots_[i].taken.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
      return ReaderHandle(this, i);
    }
  }
  assert(false && "ForestBankPublisher reader slots exhausted");
  return ReaderHandle(this, 0);
}

ForestBankPublisher::BankRef ForestBankPublisher::acquire(
    ReaderHandle& reader) {
  assert(reader.owner_ == this);
  std::atomic<std::uint64_t>& slot = slots_[reader.index_].pinned;
  // Pin-then-verify loop (see the header's protocol proof): after the
  // loop the slot holds an epoch e with epoch_ == e observed *after* the
  // store, so any bank obtained below has version >= e and a publisher
  // retiring it must first observe this pin.
  std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot.store(e, std::memory_order_seq_cst);
    const std::uint64_t latest = epoch_.load(std::memory_order_seq_cst);
    if (latest == e) break;
    e = latest;
  }
  const ForestBank* bank = current_.load(std::memory_order_seq_cst);
  return BankRef(bank, &slot);
}

std::uint64_t ForestBankPublisher::rebuild_type(std::size_t type,
                                                const Dataset& data,
                                                const ForestConfig& config) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  assert(type < forests_.size());
  forests_[type].train(data, config);
  // Copy the *current* engines (safe under the publish lock — no other
  // publisher can retire the bank underneath us) and recompile only the
  // retrained type: every other engine is byte-identical to the bank
  // being replaced, which is what keeps untouched types' predictions
  // bit-identical across the swap.
  auto* bank = new ForestBank;
  bank->retrained_type = type;
  bank->engines = current_.load(std::memory_order_seq_cst)->engines;
  bank->engines[type] = forests_[type].compile();
  return publish_locked(bank);
}

std::uint64_t ForestBankPublisher::publish_engines(
    std::vector<CompiledForest> engines, std::size_t retrained_type) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  assert(engines.size() == forests_.size());
  auto* bank = new ForestBank;
  bank->retrained_type = retrained_type;
  bank->engines = std::move(engines);
  return publish_locked(bank);
}

std::uint64_t ForestBankPublisher::publish_locked(ForestBank* bank) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t old_epoch = epoch_.load(std::memory_order_seq_cst);
  bank->version = old_epoch + 1;
  const ForestBank* old = current_.exchange(bank, std::memory_order_seq_cst);
  epoch_.store(bank->version, std::memory_order_seq_cst);
  retired_.push_back(Retired{old});
  reclaim_locked();
  retrains_.fetch_add(1, std::memory_order_relaxed);
  const auto t1 = std::chrono::steady_clock::now();
  if (telemetry_.retrains != nullptr) telemetry_.retrains->add(1);
  if (telemetry_.bank_epoch != nullptr) {
    telemetry_.bank_epoch->set(bank->version);
  }
  if (telemetry_.swap_latency_us != nullptr) {
    telemetry_.swap_latency_us->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count()));
  }
  if (telemetry_.retired_banks != nullptr) {
    telemetry_.retired_banks->set(retired_.size());
  }
  return bank->version;
}

void ForestBankPublisher::reclaim() {
  std::lock_guard<std::mutex> lock(publish_mu_);
  reclaim_locked();
  if (telemetry_.retired_banks != nullptr) {
    telemetry_.retired_banks->set(retired_.size());
  }
}

void ForestBankPublisher::reclaim_locked() {
  // A retired bank B(v) may still be held only by a reader whose slot
  // pins an epoch <= v (readers obtain banks with version >= their pin).
  // Freeing banks with version < min(pinned) is therefore safe; with no
  // pins at all, everything retired is free.
  std::uint64_t min_pinned = std::numeric_limits<std::uint64_t>::max();
  for (const ReaderSlot& slot : slots_) {
    const std::uint64_t pinned = slot.pinned.load(std::memory_order_seq_cst);
    if (pinned != kQuiescent) min_pinned = std::min(min_pinned, pinned);
  }
  auto it = std::remove_if(retired_.begin(), retired_.end(),
                           [min_pinned](const Retired& retired) {
                             if (retired.bank->version < min_pinned) {
                               delete retired.bank;
                               return true;
                             }
                             return false;
                           });
  retired_.erase(it, retired_.end());
}

std::size_t ForestBankPublisher::retired_banks() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return retired_.size();
}

std::size_t ForestBankPublisher::num_types() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return forests_.size();
}

RandomForest ForestBankPublisher::forest_copy(std::size_t type) const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  assert(type < forests_.size());
  return forests_[type];
}

void ForestBankPublisher::bind_telemetry(const Telemetry& telemetry) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  telemetry_ = telemetry;
  if (telemetry_.bank_epoch != nullptr) {
    telemetry_.bank_epoch->set(epoch_.load(std::memory_order_seq_cst));
  }
}

}  // namespace iotsentinel::ml
