// Deterministic pseudo-random number generation for reproducible ML runs.
//
// std::mt19937 distributions are not guaranteed identical across standard
// libraries, so all sampling in this library goes through this SplitMix64-
// seeded xoshiro256** generator with hand-rolled bounded sampling. The same
// seed yields the same trees, folds and traffic everywhere.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "net/hash_mix.hpp"

namespace iotsentinel::ml {

/// xoshiro256** PRNG (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'1071'5e47'11e1ULL) {
    // SplitMix64 expansion of the seed into the four state words
    // (bit-identical to the historical inline mixer: seeded streams and
    // every generated corpus stay reproducible).
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = net::mix64(x);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's rejection-free-ish method
  /// (debiased multiply-shift with rejection on the low word).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      // 128-bit multiply high/low.
      const unsigned __int128 m =
          static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= threshold) return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform size_t index in [0, n).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(bounded(n));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k indices sampled from [0, n) without replacement (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) {
    std::vector<std::size_t> pool(n);
    std::iota(pool.begin(), pool.end(), std::size_t{0});
    // Partial Fisher-Yates: fix the first k slots.
    for (std::size_t i = 0; i < k && i < n; ++i) {
      const std::size_t j = i + index(n - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k < n ? k : n);
    return pool;
  }

  /// Derives an independent child generator (for per-tree streams).
  Rng fork() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace iotsentinel::ml
