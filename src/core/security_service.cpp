#include "core/security_service.hpp"

namespace iotsentinel::core {

void IoTSecurityService::register_endpoints(
    const std::string& device_type, std::vector<net::Ipv4Address> endpoints) {
  endpoints_[device_type] = std::move(endpoints);
}

ServiceVerdict IoTSecurityService::assess(const fp::Fingerprint& f) const {
  ServiceVerdict verdict;
  identifier_.identify_into(f, verdict.identification);

  if (verdict.identification.type_index) {
    verdict.device_type = verdict.identification.type_name;
    verdict.is_known = true;
    verdict.level = db_.assess(verdict.device_type);
  } else {
    // Unknown device-type: strict isolation (paper Sect. III-B).
    verdict.level = sdn::IsolationLevel::kStrict;
  }

  if (verdict.level == sdn::IsolationLevel::kRestricted) {
    auto it = endpoints_.find(verdict.device_type);
    if (it != endpoints_.end()) verdict.permitted_endpoints = it->second;
  }
  return verdict;
}

}  // namespace iotsentinel::core
