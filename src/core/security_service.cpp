#include "core/security_service.hpp"

namespace iotsentinel::core {

void IoTSecurityService::register_endpoints(
    const std::string& device_type, std::vector<net::Ipv4Address> endpoints) {
  endpoints_[device_type] = std::move(endpoints);
}

namespace {

/// Clears a verdict's non-identification fields, keeping buffer capacity.
void reset_verdict(ServiceVerdict& verdict) {
  verdict.device_type.clear();
  verdict.is_known = false;
  verdict.level = sdn::IsolationLevel::kStrict;
  verdict.permitted_endpoints.clear();
}

}  // namespace

void IoTSecurityService::finish_verdict(ServiceVerdict& verdict) const {
  if (verdict.identification.type_index) {
    verdict.device_type = verdict.identification.type_name;
    verdict.is_known = true;
    verdict.level = db_.assess(verdict.device_type);
  } else {
    // Unknown device-type: strict isolation (paper Sect. III-B).
    verdict.level = sdn::IsolationLevel::kStrict;
  }

  if (verdict.level == sdn::IsolationLevel::kRestricted) {
    auto it = endpoints_.find(verdict.device_type);
    if (it != endpoints_.end()) verdict.permitted_endpoints = it->second;
  }
}

ServiceVerdict IoTSecurityService::assess(const fp::Fingerprint& f) const {
  ServiceVerdict verdict;
  assess_into(f, verdict);
  return verdict;
}

void IoTSecurityService::assess_into(const fp::Fingerprint& f,
                                     ServiceVerdict& out) const {
  reset_verdict(out);
  identifier_.identify_into(f, out.identification);
  finish_verdict(out);
  assessments_.fetch_add(1, std::memory_order_relaxed);
}

void IoTSecurityService::assess_batch(
    std::span<const fp::Fingerprint* const> fingerprints,
    std::vector<ServiceVerdict>& out) const {
  assess_batch_with(identifier_.bank().engines(), fingerprints, out);
}

void IoTSecurityService::assess_batch_with(
    std::span<const ml::CompiledForest> engines,
    std::span<const fp::Fingerprint* const> fingerprints,
    std::vector<ServiceVerdict>& out) const {
  out.resize(fingerprints.size());

  // Lend the verdicts' identification results to the batched identifier
  // so their candidate/name buffers are reused, then take them back.
  std::vector<IdentificationResult> identifications(fingerprints.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    identifications[i] = std::move(out[i].identification);
  }
  identifier_.identify_batch_with(engines, fingerprints, identifications);
  for (std::size_t i = 0; i < out.size(); ++i) {
    reset_verdict(out[i]);
    out[i].identification = std::move(identifications[i]);
    finish_verdict(out[i]);
  }
  assessments_.fetch_add(fingerprints.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace iotsentinel::core
