// Sharded multi-threaded Security Gateway pipeline.
//
// The serial SecurityGateway pushes one interleaved packet stream through
// one extractor and one classifier — fine for a lab capture, not for a
// gateway onboarding many devices at once. ShardedGateway parallelizes the
// per-packet work while keeping every piece of mutable state single-writer:
//
//   ingest thread ──SpscRing──▶ worker shard 0 (extractor+tracker+switch)
//       │ hash(src MAC) % N ──▶ worker shard 1          │ completed
//       └──────────────────────▶ ...                     ▼ fingerprints
//                            submission queue ──▶ classifier thread
//                                                   │ score_batch /
//                                                   │ identify_batch
//                 worker shard (via SpscRing) ◀─────┘ verdict message
//                      │ rule install (controller lock) + flow flush
//                      ▼ + inventory update, between two of the
//                        device's frames
//
//   * Frames are routed by hash(source MAC) % num_shards, so all packets
//     of one device land on one shard in submission order — fingerprint
//     extraction sees exactly the per-device subsequence it would see in
//     the serial gateway, and no extractor/tracker/flow-table state is
//     ever shared between threads.
//   * Completed fingerprints drain into a small mutex+condvar submission
//     queue; a dedicated classifier thread scores them in batches through
//     the bank's type-major score_batch sweep and fires GatewayEvents.
//   * Post-verdict effects (enforcement-rule install, inventory update,
//     flushing flows admitted under the provisional policy) are routed
//     *back* to the owning worker through a second SPSC ring: install +
//     flush land atomically w.r.t. the device's frame stream, which is
//     what makes the enforcement auditor's zero-violation check hold.
//   * expire_departed rides the frame rings as an in-band control op; the
//     worker round-trips a barrier through the classifier before sweeping
//     so straggler verdicts cannot resurrect a departed device's rule.
//
// Verdict/event sets are identical to the serial gateway on the same
// trace (asserted by tests/test_gateway_pool.cpp); only event order and
// data-plane timing differ.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/device_tracker.hpp"
#include "net/builder.hpp"
#include "core/security_gateway.hpp"
#include "core/security_service.hpp"
#include "core/spsc_ring.hpp"
#include "fingerprint/extractor.hpp"
#include "ml/hot_swap.hpp"
#include "sdn/controller.hpp"
#include "sdn/software_switch.hpp"
#include "sdn/switch_cache.hpp"
#include "telemetry/registry.hpp"

namespace iotsentinel::core {

/// Sharded pipeline configuration.
struct ShardedGatewayConfig {
  /// Worker shards; each owns a private extractor + tracker + data plane.
  std::size_t num_shards = 4;
  /// Per-shard frame ring capacity (rounded up to a power of two);
  /// `submit` applies backpressure when the owning shard's ring is full.
  std::size_t ring_capacity = 4096;
  /// Max fingerprints the classifier thread scores per batch.
  std::size_t classify_batch_max = 32;
  /// Records (timestamp, src MAC) of every frame in per-shard processing
  /// order — test/diagnostic aid, leave off in production.
  bool record_frame_log = false;
  /// Gives every shard's switch a federated flow-class decision cache
  /// (sdn/switch_cache.hpp) with invalidation fan-out from the shared
  /// controller — the control-plane scale-out that collapses the
  /// slow-path consult rate on ephemeral-port standby traffic.
  bool switch_cache_enabled = true;
  /// Per-shard decision-cache capacity (flush-on-full above it).
  std::size_t switch_cache_entries = sdn::SwitchRuleCache::kDefaultCapacity;
  /// Optional hot-swap model source (must outlive the gateway). When set,
  /// the classifier thread registers as a reader and pins one published
  /// ForestBank snapshot per batch — background retrains through the
  /// publisher reach the serving path at the next batch boundary without
  /// ever blocking it. Verdict events carry the bank version that scored
  /// them, and a swap fans cache invalidations out for devices of the
  /// retrained type (see Controller::invalidate_model_swap). The
  /// publisher's engines must stem from `service`'s own identifier so
  /// stage 2 (references, type names) matches stage 1. When null the
  /// gateway serves the service's fixed compiled bank, as before.
  ml::ForestBankPublisher* model_publisher = nullptr;
  fp::ExtractorConfig extractor;
  sdn::ControllerConfig controller;
};

/// The multi-threaded gateway runtime. Construction spawns the worker and
/// classifier threads; `finish()` (or the destructor) drains and joins.
class ShardedGateway {
 public:
  /// `service` outlives the gateway. Threads start immediately.
  explicit ShardedGateway(const IoTSecurityService& service,
                          ShardedGatewayConfig config = {});
  ~ShardedGateway();

  ShardedGateway(const ShardedGateway&) = delete;
  ShardedGateway& operator=(const ShardedGateway&) = delete;

  /// Observer invoked (on the classifier thread) after each
  /// identification + enforcement install. Set before the first `submit`.
  void on_device_identified(std::function<void(const GatewayEvent&)> cb) {
    observer_ = std::move(cb);
  }

  /// Enqueues one raw frame at capture time `timestamp_us` onto its
  /// owning shard's ring. Zero-copy: the frame bytes must stay valid
  /// until `finish()` returns (replay buffers and capture rings satisfy
  /// this naturally). Single ingest thread only; blocks briefly when the
  /// shard's ring is full (backpressure). Must not be called after
  /// `finish()`.
  void submit(std::span<const std::uint8_t> frame, std::uint64_t timestamp_us);

  /// Like `submit`, but takes ownership of the frame bytes: the buffer
  /// rides the ring and is freed by the worker after processing. This is
  /// the entry point for streaming sources (e.g. the fleet simulator)
  /// that produce each frame once and keep no trace behind — memory in
  /// flight is bounded by the ring capacities instead of the stream
  /// length. Same single-ingest-thread and backpressure contract.
  void submit_owned(net::Bytes frame, std::uint64_t timestamp_us);

  /// Requests a departure sweep on every shard: each worker forgets the
  /// devices its tracker saw last before `now_us - idle_us`, removing
  /// their enforcement rules, flushing their flows and discarding any
  /// half-open captures — the sharded equivalent of the serial gateway's
  /// `expire_departed`. The request rides the frame rings, so it takes
  /// effect at a definite point in each shard's frame stream; before
  /// sweeping, a worker posts a barrier through the submission queue and
  /// drains the classifier's echo, guaranteeing that verdicts for
  /// captures completed *before* the sweep are applied first (and then
  /// swept — a departed device never keeps a freshly installed rule).
  /// Asynchronous; same single-ingest-thread contract as `submit`. Sweep
  /// counts surface as `ShardStats::devices_expired`.
  void expire_departed(std::uint64_t now_us, std::uint64_t idle_us);

  /// Installs an enforcement-audit hook on every shard's data plane (each
  /// shard gets a copy — pair with sdn/enforcement_audit.hpp, whose hooks
  /// share one auditor's counters). Set before the first `submit`.
  void set_audit(const sdn::SoftwareSwitch::AuditHook& hook) {
    for (auto& shard : shards_) shard->data_plane.set_audit(hook);
  }

  /// Drains the pipeline: workers force-complete in-progress captures
  /// (the serial gateway's `finish_pending_captures`), the classifier
  /// scores every straggler, all verdicts are applied, and every thread
  /// is joined. Idempotent. After it returns the gateway is quiescent and
  /// all accessors below are safe.
  void finish();

  /// Shard a device's frames are routed to.
  [[nodiscard]] std::size_t shard_of(const net::MacAddress& mac) const {
    return std::hash<net::MacAddress>{}(mac) % shards_.size();
  }

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

  /// Backpressure observability. All counters are monotonic and read
  /// with relaxed atomics, so the snapshot is safe (and cheap) to take
  /// while the pipeline is running — the numbers lag the hot paths by at
  /// most a cache-coherency hop.
  struct ShardStats {
    /// Frames this shard's worker has fully processed.
    std::uint64_t frames_processed = 0;
    /// submit/submit_owned calls that found this shard's ring full and
    /// had to spin (one count per stalled frame, however long the wait).
    std::uint64_t submit_stalls = 0;
    /// Highest frame-ring occupancy ever observed at submit time.
    std::uint64_t ring_high_water = 0;
    /// The ring's actual (power-of-two) capacity, for context.
    std::uint64_t ring_capacity = 0;
    /// Idle flow entries evicted by the worker's periodic expiry sweep.
    std::uint64_t flows_expired = 0;
    /// Frames rejected by `is_malformed_frame` (counted in
    /// frames_processed, dropped before reaching the extractor).
    std::uint64_t malformed_frames = 0;
    /// Frames whose data-plane verdict was kDrop (includes malformed).
    std::uint64_t dropped_frames = 0;
    /// Devices removed by `expire_departed` sweeps on this shard.
    std::uint64_t devices_expired = 0;
    /// High-water mark of concurrently tracked setup captures in this
    /// shard's extractor (adversarial state-bloat metric).
    std::uint64_t extractor_peak_active = 0;
  };
  struct Stats {
    std::vector<ShardStats> shards;
    /// Sums over all shards, for quick dashboards (the peak-active sum
    /// bounds fleet-wide concurrent extractor state).
    std::uint64_t frames_processed = 0;
    std::uint64_t submit_stalls = 0;
    std::uint64_t flows_expired = 0;
    std::uint64_t malformed_frames = 0;
    std::uint64_t dropped_frames = 0;
    std::uint64_t devices_expired = 0;
    std::uint64_t extractor_peak_active = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Identification events so far (copy — safe to call while running).
  [[nodiscard]] std::vector<GatewayEvent> events() const;

  /// The shared enforcement controller (its mutating entry points are
  /// internally locked).
  [[nodiscard]] sdn::Controller& controller() { return controller_; }
  [[nodiscard]] const sdn::Controller& controller() const {
    return controller_;
  }

  /// The gateway's metric registry (docs/OBSERVABILITY.md). Lock-free
  /// readable while the pipeline runs: `registry().snapshot()` /
  /// `text_report()` are safe from any thread at any time. Workers
  /// publish their shard-local counters on the expiry stride (every
  /// `kExpiryStride` frames) and at drain, the classifier publishes
  /// controller/service aggregates per batch, so live values lag the hot
  /// paths by at most one stride/batch; after `finish()` they are exact.
  [[nodiscard]] telemetry::Registry& registry() { return registry_; }
  [[nodiscard]] const telemetry::Registry& registry() const {
    return registry_;
  }

  /// One shard's flow-class decision cache (post-finish inspection; a
  /// default-constructed idle cache when `switch_cache_enabled` is off).
  [[nodiscard]] const sdn::SwitchRuleCache& shard_rule_cache(
      std::size_t shard) const {
    return shards_[shard]->cache;
  }

  // --- post-finish() inspection ----------------------------------------
  /// One shard's passive device inventory.
  [[nodiscard]] const DeviceTracker& shard_inventory(std::size_t shard) const {
    return shards_[shard]->tracker;
  }
  /// One shard's data plane.
  [[nodiscard]] const sdn::SoftwareSwitch& shard_data_plane(
      std::size_t shard) const {
    return shards_[shard]->data_plane;
  }
  /// One shard's fingerprint extractor (state-bloat metrics).
  [[nodiscard]] const fp::SetupCaptureExtractor& shard_extractor(
      std::size_t shard) const {
    return shards_[shard]->extractor;
  }
  /// Frames a shard processed.
  [[nodiscard]] std::uint64_t shard_packets(std::size_t shard) const {
    return shards_[shard]->packets.load(std::memory_order_relaxed);
  }

  /// One processed frame, in shard processing order (recorded only when
  /// `record_frame_log` is set).
  struct FrameLogEntry {
    std::uint64_t timestamp_us = 0;
    net::MacAddress src;

    friend bool operator==(const FrameLogEntry&,
                           const FrameLogEntry&) = default;
  };
  [[nodiscard]] const std::vector<FrameLogEntry>& frame_log(
      std::size_t shard) const {
    return shards_[shard]->frame_log;
  }

 private:
  /// What a ring slot carries: a frame, or an in-band control request
  /// (`expire_departed`) that must execute at a definite point in the
  /// shard's frame stream.
  enum class IngestOp : std::uint8_t { kFrame, kExpireDeparted };

  /// A frame in flight between the ingest thread and a worker. Bytes are
  /// either borrowed (`submit`'s lifetime contract, `owned` empty) or
  /// carried by `owned` (`submit_owned`), in which case `data` points
  /// into it — moving a vector never relocates its heap buffer, so the
  /// pointer stays valid while the ref rides the ring.
  struct FrameRef {
    std::uint64_t timestamp_us = 0;
    const std::uint8_t* data = nullptr;
    std::uint32_t size = 0;
    IngestOp op = IngestOp::kFrame;
    /// kExpireDeparted only: the sweep's idle threshold.
    std::uint64_t idle_us = 0;
    net::Bytes owned;
  };

  /// Post-verdict message routed from the classifier thread back to the
  /// device's owning shard. The worker — not the classifier — installs
  /// the rule, so rule install + flow flush + inventory update happen
  /// atomically with respect to that shard's frame stream (a fast-path
  /// entry can never contradict the installed rule set, which is what the
  /// enforcement auditor asserts). `is_barrier` marks the classifier's
  /// echo of an expire_departed barrier instead of a verdict.
  struct VerdictMsg {
    net::MacAddress mac;
    std::string device_type;
    sdn::IsolationLevel level = sdn::IsolationLevel::kStrict;
    sdn::EnforcementRule rule;
    std::uint64_t at_us = 0;
    bool is_barrier = false;
  };

  /// A completed capture awaiting classification, or (barrier_shard >= 0)
  /// an expire_departed barrier the classifier echoes back to that shard
  /// behind every verdict submitted before it.
  struct PendingCapture {
    net::MacAddress mac;
    fp::Fingerprint fingerprint;
    std::uint64_t end_us = 0;
    int barrier_shard = -1;
  };

  /// Resolved registry references one shard's worker publishes into (see
  /// docs/OBSERVABILITY.md for the metric contract). Bound once at
  /// construction so the hot path never touches the registry's name maps.
  struct ShardTelemetry {
    telemetry::Counter* frames = nullptr;
    telemetry::Gauge* ring_high_water = nullptr;
    telemetry::Counter* tier1_hits = nullptr;
    telemetry::Counter* tier2_scans = nullptr;
    telemetry::Gauge* live_flows = nullptr;
    telemetry::Gauge* deadline_heap = nullptr;
    telemetry::Counter* fast_path = nullptr;
    telemetry::Counter* cached_path = nullptr;
    telemetry::Counter* slow_path = nullptr;
    telemetry::Counter* cache_hits = nullptr;
    telemetry::Counter* cache_misses = nullptr;
    telemetry::Gauge* cache_size = nullptr;
  };

  struct Shard {
    Shard(std::size_t ring_capacity, const fp::ExtractorConfig& extractor_cfg,
          sdn::Controller& controller, std::size_t cache_entries)
        : frames(ring_capacity),
          verdicts(kVerdictRingCapacity),
          extractor(extractor_cfg),
          data_plane(controller),
          cache(cache_entries) {}

    SpscRing<FrameRef> frames;     // ingest -> worker
    SpscRing<VerdictMsg> verdicts; // classifier -> worker
    fp::SetupCaptureExtractor extractor;
    DeviceTracker tracker;
    sdn::SoftwareSwitch data_plane;
    /// This shard's federated flow-class decision cache; attached to the
    /// shared controller and bound to `data_plane` only when
    /// `switch_cache_enabled` (idle otherwise).
    sdn::SwitchRuleCache cache;
    /// Worker-published metric bindings.
    ShardTelemetry metrics;
    /// This shard's index in shards_ (barrier addressing).
    std::size_t index = 0;
    /// Monotonic counters behind stats(). `packets` is bumped by the
    /// worker; the stall/high-water pair only by the ingest thread.
    std::atomic<std::uint64_t> packets{0};
    std::atomic<std::uint64_t> submit_stalls{0};
    std::atomic<std::uint64_t> ring_high_water{0};
    std::atomic<std::uint64_t> flows_expired{0};
    std::atomic<std::uint64_t> malformed{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> devices_expired{0};
    /// Worker-maintained mirror of extractor.peak_active_devices() so
    /// stats() stays race-free while the pipeline runs.
    std::atomic<std::uint64_t> extractor_peak{0};
    /// Worker-thread-only stride counter for the periodic expiry sweep.
    std::uint64_t frames_since_expiry = 0;
    /// Worker-thread-only scratch for expire_departed sweeps.
    std::vector<net::MacAddress> departed_scratch;
    std::vector<FrameLogEntry> frame_log;
    std::thread thread;
  };

  static constexpr std::size_t kVerdictRingCapacity = 256;
  /// Frames between a worker's idle-flow expiry sweeps.
  static constexpr std::uint64_t kExpiryStride = 1024;

  void worker_loop(Shard& shard);
  void classifier_loop();
  /// Worker-side: copies the shard's plain single-writer counters into
  /// its registry bindings (monotone `publish`, so readers never observe
  /// a counter going backwards). Called on the expiry stride and at
  /// worker drain.
  void publish_shard_telemetry(Shard& shard);
  /// Classifier-side: publishes controller + service aggregates.
  void publish_control_plane_telemetry();
  /// Routes a popped ring slot to process_frame or handle_expire.
  void dispatch(Shard& shard, const FrameRef& frame);
  void process_frame(Shard& shard, const FrameRef& frame);
  /// Worker-side expire_departed: barrier round-trip, then the sweep.
  void handle_expire(Shard& shard, std::uint64_t now_us,
                     std::uint64_t idle_us);
  /// Shared backpressure path of submit/submit_owned/expire_departed.
  void enqueue(Shard& shard, FrameRef ref);
  bool drain_verdicts(Shard& shard);
  /// Worker-side verdict application: rule install + flow flush +
  /// inventory update, serialized with the shard's frame stream.
  void apply_verdict_msg(Shard& shard, VerdictMsg& msg);
  /// Classifier-side: packages a verdict for the owning worker and fires
  /// the identification event.
  void apply_verdict(const PendingCapture& capture,
                     const ServiceVerdict& verdict);
  /// Classifier-side: fans cache invalidations out for the devices whose
  /// type the newly observed bank retrained (all identified devices when
  /// the classifier missed intermediate banks and cannot attribute the
  /// change to one type).
  void handle_model_swap(const ml::ForestBank& bank,
                         std::uint64_t prev_version, std::uint64_t now_us);

  const IoTSecurityService& service_;
  ShardedGatewayConfig config_;
  sdn::Controller controller_;
  /// Declared before shards_ so metric storage outlives the workers'
  /// final publishes (members destroy in reverse order).
  telemetry::Registry registry_;
  /// Control-plane metric bindings (published by the classifier thread
  /// and finish()).
  telemetry::Counter* m_packet_ins_ = nullptr;
  telemetry::Counter* m_drops_ = nullptr;
  telemetry::Counter* m_neg_hits_ = nullptr;
  telemetry::Counter* m_installs_ = nullptr;
  telemetry::Counter* m_invalidations_ = nullptr;
  telemetry::Counter* m_assessments_ = nullptr;
  telemetry::Counter* m_fingerprints_scored_ = nullptr;
  telemetry::Histogram* m_batch_latency_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Submission queue: workers (producers) -> classifier (consumer).
  std::mutex submission_mu_;
  std::condition_variable submission_cv_;
  std::deque<PendingCapture> submissions_;   // guarded by submission_mu_
  std::size_t flushed_workers_ = 0;          // guarded by submission_mu_

  /// Set by finish(): no more frames will be submitted.
  std::atomic<bool> ingest_done_{false};
  /// Set by the classifier after its last verdict was pushed.
  std::atomic<bool> classifier_done_{false};
  /// Owner-thread flag making finish() idempotent.
  bool finished_ = false;

  mutable std::mutex events_mu_;
  std::vector<GatewayEvent> events_;         // guarded by events_mu_
  std::function<void(const GatewayEvent&)> observer_;

  // Classifier-thread-only hot-swap state (no locks needed).
  /// Version of the bank snapshot scoring the current batch (stamped into
  /// each verdict's GatewayEvent); 0 without a model_publisher.
  std::uint64_t classifier_model_version_ = 0;
  /// Last identified type of each device, as seen by the classifier —
  /// EnforcementRule does not carry the type, and a swap must invalidate
  /// exactly the devices of the retrained type.
  std::unordered_map<net::MacAddress, std::size_t> device_type_by_mac_;
  /// Scratch for handle_model_swap's device list.
  std::vector<net::MacAddress> swap_scratch_;

  std::thread classifier_thread_;
};

}  // namespace iotsentinel::core
