// One-classifier-per-device-type bank (paper Sect. IV-B.1).
//
// For every known device-type D_i a *binary* Random Forest C_i is trained:
// positives are D_i's fingerprints F', negatives a random subset of the
// other types' fingerprints capped at `negative_ratio` x positives to
// avoid imbalanced-class degradation. New device-types can be added
// without touching existing classifiers — the operation the paper calls
// out as the scalability advantage over one multi-class model.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <optional>

#include "fingerprint/fingerprint.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/random_forest.hpp"
#include "net/bytes.hpp"

namespace iotsentinel::core {

/// Accept threshold that calibrates the pipeline to the paper's reported
/// behaviour on the 27-type corpus: ~55% of identifications need stage-2
/// discrimination with ~7 edit distances on average, the family-confusable
/// types split ~50/50 instead of being swallowed whole by one sibling's
/// classifier, and the global accuracy lands at ~0.82 (paper: 0.815).
/// The trade-off: a permissive threshold weakens new-device-type detection
/// (more foreign fingerprints get accepted by some classifier) — the
/// threshold ablation bench quantifies this.
inline constexpr double kPaperCalibratedAcceptThreshold = 0.25;

/// Bank-wide training configuration.
struct BankConfig {
  /// Per-type forest settings (30 trees per binary classifier).
  ml::ForestConfig forest = default_forest();
  /// Negatives sampled per positive (the paper uses 10 x n).
  double negative_ratio = 10.0;
  /// A classifier accepts a fingerprint when its positive-class vote
  /// fraction is >= this threshold. The default is a bare majority, which
  /// maximizes new-device-type discovery; the paper-reproduction benches
  /// pass kPaperCalibratedAcceptThreshold instead.
  double accept_threshold = 0.5;
  /// Seed for negative subsampling and forest training.
  std::uint64_t seed = 17;

  static ml::ForestConfig default_forest() {
    ml::ForestConfig config;
    config.num_trees = 30;
    return config;
  }
};

/// The bank of per-type binary classifiers.
class ClassifierBank {
 public:
  explicit ClassifierBank(BankConfig config = {}) : config_(config) {}

  /// Trains one classifier per entry of `by_type`; `type_names[i]` labels
  /// class i. Wipes any previous state.
  void train(const std::vector<std::string>& type_names,
             const std::vector<std::vector<fp::FixedFingerprint>>& by_type);

  /// Adds (or retrains) a single device-type without touching the other
  /// classifiers. `negative_pool` supplies fingerprints of other types.
  /// Returns the type's index.
  std::size_t add_type(
      const std::string& name,
      const std::vector<fp::FixedFingerprint>& positives,
      const std::vector<const fp::FixedFingerprint*>& negative_pool);

  /// The dataset + forest settings a retrain of one type would use.
  struct RetrainPlan {
    ml::Dataset data;
    ml::ForestConfig forest;
  };

  /// Builds the exact training inputs `add_type` would use for the type
  /// at `index` — same seeded negative subsampling, same forest seed —
  /// without training anything. Background retrainers
  /// (ml::ForestBankPublisher) use this to rebuild one type off-thread
  /// and publish a forest bit-identical to an in-place `add_type`.
  [[nodiscard]] RetrainPlan retrain_plan(
      std::size_t index, const std::vector<fp::FixedFingerprint>& positives,
      const std::vector<const fp::FixedFingerprint*>& negative_pool) const;

  /// Installs an externally trained forest as type `index`'s classifier
  /// and recompiles only that engine. The fold-back half of a hot swap:
  /// the publisher's retrained forest becomes the persistent state that
  /// `save` / the incremental model-store rewrite serialize.
  void replace_forest(std::size_t index, ml::RandomForest forest);

  /// Positive-class score of every classifier for this fingerprint.
  [[nodiscard]] std::vector<double> scores(
      const fp::FixedFingerprint& fingerprint) const;

  /// Allocation-free variant of `scores`: writes into `out`, whose size
  /// must equal `num_types()`. This is the serving hot path — it runs
  /// entirely on the compiled forests.
  void scores_into(const fp::FixedFingerprint& fingerprint,
                   std::span<double> out) const;

  /// Batched scoring: `out` is row-major `batch.size() x num_types()`
  /// (`out[i * num_types() + t]` = classifier t's score of `batch[i]`).
  /// Iterates type-major so one compiled forest stays hot in cache while
  /// it scans the whole batch.
  void score_batch(std::span<const fp::FixedFingerprint> batch,
                   std::span<double> out) const;

  /// `score_batch` against an explicit engine set instead of the bank's
  /// own compiled forests. `engines.size()` must equal `num_types()`.
  /// This is how a hot-swapped bank snapshot (ml::ForestBank) serves
  /// through the unchanged identification pipeline.
  void score_batch_with(std::span<const ml::CompiledForest> engines,
                        std::span<const fp::FixedFingerprint> batch,
                        std::span<double> out) const;

  /// Indices of the types whose classifier accepts the fingerprint.
  [[nodiscard]] std::vector<std::size_t> accepted(
      const fp::FixedFingerprint& fingerprint) const;

  /// Reusable-buffer variant of `accepted`: clears `out` then appends.
  /// Allocation-free once the caller's buffer capacity has warmed up.
  void accepted_into(const fp::FixedFingerprint& fingerprint,
                     std::vector<std::size_t>& out) const;

  /// Score of a single classifier (timing benches isolate one step).
  [[nodiscard]] double score_one(std::size_t type_index,
                                 const fp::FixedFingerprint& f) const;

  /// Direct access to a type's trained forest (feature-importance and
  /// introspection tooling).
  [[nodiscard]] const ml::RandomForest& forest(std::size_t i) const {
    return forests_[i];
  }

  /// The compiled serving engine of a type's forest (kept in sync by
  /// train / add_type / load).
  [[nodiscard]] const ml::CompiledForest& compiled(std::size_t i) const {
    return compiled_[i];
  }

  /// All compiled engines, in type order (seed a ForestBankPublisher or
  /// compare against a published snapshot).
  [[nodiscard]] std::span<const ml::CompiledForest> engines() const {
    return compiled_;
  }

  [[nodiscard]] std::size_t num_types() const { return forests_.size(); }
  [[nodiscard]] const std::string& type_name(std::size_t i) const {
    return names_[i];
  }
  [[nodiscard]] const std::vector<std::string>& type_names() const {
    return names_;
  }
  [[nodiscard]] const BankConfig& config() const { return config_; }

  /// Serializes the trained bank (config + names + framed forests) as a
  /// framed "IBK2" record: tag + 32-bit payload length + payload
  /// (docs/FORMAT.md). Never fails.
  void save(net::ByteWriter& w) const;

  /// Reads a framed "IBK2" record back and recompiles the serving
  /// engines. Payload bytes after the last type record are skipped
  /// (forward compatibility with appending writers). Returns nullopt on
  /// wrong tag (cursor unmoved), truncated frame or malformed payload;
  /// never throws or crashes on arbitrary input. Bit-flip integrity is
  /// the IOTS1 container's job, not this parser's.
  static std::optional<ClassifierBank> load(net::ByteReader& r);

  /// Reads the legacy unframed "IBK1" layout (v0 blobs, kept loadable
  /// for migration). Same error contract as `load`, but on failure the
  /// cursor position is unspecified.
  static std::optional<ClassifierBank> load_v0(net::ByteReader& r);

 private:
  /// Rebuilds compiled_[t] from forests_[t].
  void compile_one(std::size_t t);
  void compile_all();

  BankConfig config_;
  std::vector<std::string> names_;
  std::vector<ml::RandomForest> forests_;
  /// compiled_[t] mirrors forests_[t]; every scoring call serves from
  /// these flat engines, never from the training-side trees.
  std::vector<ml::CompiledForest> compiled_;
};

}  // namespace iotsentinel::core
