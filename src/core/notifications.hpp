// User notification mechanism (paper Sect. III-C.3).
//
// Network isolation and traffic filtering cannot protect against devices
// with communication channels the gateway does not control (Bluetooth,
// LTE, proprietary RF): a compromised device can exfiltrate over them
// regardless of any flow rule. For those cases the paper prescribes
// notifying the user, helping them identify the physical device, and
// verifying its removal. This module is that notification ledger.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "net/mac_address.hpp"
#include "sdn/isolation.hpp"

namespace iotsentinel::core {

/// Why the user is being interrupted.
enum class NotificationReason {
  /// Vulnerable device with an uncontrolled channel: isolation cannot
  /// contain it, the device must be physically removed.
  kRemoveDevice,
  /// Legacy device without WPS re-keying support needs manual
  /// re-introduction to join the trusted overlay (Sect. VIII-A).
  kManualReauthRequired,
  /// A device-type unknown to the IoTSSP joined and was put under strict
  /// isolation; the user may want to review it.
  kUnknownDeviceQuarantined,
};

std::string to_string(NotificationReason reason);

/// One pending notification.
struct UserNotification {
  net::MacAddress device{};
  /// Identified device-type ("" when unknown) — the paper's "helps her to
  /// identify the device in question".
  std::string device_type{};
  NotificationReason reason = NotificationReason::kUnknownDeviceQuarantined;
  std::string message{};
  std::uint64_t raised_at_us = 0;
  bool acknowledged = false;
};

/// Append-only notification ledger with acknowledgement tracking.
///
/// Thread safety: `notify`, `acknowledge` and `pending` serialize on an
/// internal mutex so gateway worker/classifier threads can raise
/// notifications concurrently. `pending` returns snapshot copies and the
/// callback receives a copy taken under the lock, so neither can race
/// with a concurrent `acknowledge` flipping an entry's flag. The callback
/// itself runs outside the lock (it may re-enter the center);
/// `on_notify` and `history` are setup/quiescent-time accessors.
class NotificationCenter {
 public:
  using Callback = std::function<void(const UserNotification&)>;

  /// Invoked for every new notification (UI hook).
  void on_notify(Callback cb) { callback_ = std::move(cb); }

  /// Raises a notification; duplicate (device, reason) pairs with an
  /// unacknowledged notification outstanding are suppressed.
  /// Returns true when a new notification was recorded.
  bool notify(UserNotification notification);

  /// Marks every outstanding notification for `device` acknowledged
  /// (e.g. the user removed or re-authenticated it). Returns the number
  /// acknowledged.
  std::size_t acknowledge(const net::MacAddress& device);

  /// Outstanding (unacknowledged) notifications — a snapshot taken under
  /// the lock (copies, so concurrent acknowledgements cannot race with
  /// the caller reading them).
  [[nodiscard]] std::vector<UserNotification> pending() const;

  /// Full history, acknowledged included.
  [[nodiscard]] const std::deque<UserNotification>& history() const {
    return log_;
  }

 private:
  Callback callback_;
  mutable std::mutex mu_;
  std::deque<UserNotification> log_;  // guarded by mu_ (append-only)
};

}  // namespace iotsentinel::core
