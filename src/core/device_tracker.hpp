// Network device inventory.
//
// The Security Gateway's user interface needs to tell the user *which*
// physical device a MAC address is (paper Sect. III-C.3: "helps her to
// identify the device in question"). The tracker maintains per-device
// state gleaned passively: IP bindings (ARP/DHCP), the announced DHCP
// hostname and vendor class, the DNS names the device resolves, traffic
// counters and lifecycle timestamps, plus the identification verdict once
// the IoTSSP returns one.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sdn/isolation.hpp"

namespace iotsentinel::core {

/// Everything known about one device on the network.
struct TrackedDevice {
  net::MacAddress mac;
  std::optional<net::Ipv4Address> ip;
  /// DHCP option 12 hostname, when the device announced one.
  std::string hostname;
  /// DHCP option 60 vendor class.
  std::string vendor_class;
  /// Distinct DNS names the device queried (capped).
  std::set<std::string> dns_queries;
  std::uint64_t first_seen_us = 0;
  std::uint64_t last_seen_us = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  /// Identification verdict (set via mark_identified).
  std::string device_type;
  std::optional<sdn::IsolationLevel> level;

  /// One-line inventory rendering for UIs.
  [[nodiscard]] std::string summary() const;
};

/// Passive device inventory.
class DeviceTracker {
 public:
  /// Cap on remembered DNS names per device.
  static constexpr std::size_t kMaxDnsNames = 32;

  /// Records one observed packet. `frame` supplies the raw bytes so
  /// DHCP/DNS message content can be inspected; pass an empty span when
  /// only metadata is available.
  void observe(const net::ParsedPacket& pkt,
               std::span<const std::uint8_t> frame = {});

  /// Attaches an identification verdict to a device.
  void mark_identified(const net::MacAddress& mac,
                       const std::string& device_type,
                       sdn::IsolationLevel level);

  /// Removes a departed device; returns true when it was known.
  bool forget(const net::MacAddress& mac);

  [[nodiscard]] const TrackedDevice* find(const net::MacAddress& mac) const;
  [[nodiscard]] std::size_t size() const { return devices_.size(); }

  /// All devices, most recently seen first.
  ///
  /// Allocates and sorts on every call — UI/reporting only. Hot paths use
  /// `for_each` (no allocation, unspecified order) or the caller-buffer
  /// `idle_devices_into` instead.
  [[nodiscard]] std::vector<const TrackedDevice*> all() const;

  /// Visits every device without allocating, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [mac, device] : devices_) fn(device);
  }

  /// Devices silent since `now_us - idle_us` (candidates for rule-cache
  /// cleanup / departure handling).
  [[nodiscard]] std::vector<net::MacAddress> idle_devices(
      std::uint64_t now_us, std::uint64_t idle_us) const;

  /// Caller-buffer variant of `idle_devices` for periodic gateway sweeps:
  /// clears `out` and refills it, reusing its capacity across calls.
  void idle_devices_into(std::uint64_t now_us, std::uint64_t idle_us,
                         std::vector<net::MacAddress>& out) const;

 private:
  std::unordered_map<net::MacAddress, TrackedDevice> devices_;
};

}  // namespace iotsentinel::core
