#include "core/notifications.hpp"

namespace iotsentinel::core {

std::string to_string(NotificationReason reason) {
  switch (reason) {
    case NotificationReason::kRemoveDevice:
      return "remove-device";
    case NotificationReason::kManualReauthRequired:
      return "manual-reauth-required";
    case NotificationReason::kUnknownDeviceQuarantined:
      return "unknown-device-quarantined";
  }
  return "?";
}

bool NotificationCenter::notify(UserNotification notification) {
  // Copy for the callback taken under the lock: handing out a reference
  // into the ledger would race with a concurrent acknowledge() flipping
  // the entry's flag while the callback reads it.
  UserNotification recorded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& existing : log_) {
      if (!existing.acknowledged && existing.device == notification.device &&
          existing.reason == notification.reason) {
        return false;  // already pending
      }
    }
    log_.push_back(std::move(notification));
    recorded = log_.back();
  }
  // Outside the lock: the callback may inspect or re-enter the center.
  if (callback_) callback_(recorded);
  return true;
}

std::size_t NotificationCenter::acknowledge(const net::MacAddress& device) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (auto& notification : log_) {
    if (!notification.acknowledged && notification.device == device) {
      notification.acknowledged = true;
      ++count;
    }
  }
  return count;
}

std::vector<UserNotification> NotificationCenter::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<UserNotification> out;
  for (const auto& notification : log_) {
    if (!notification.acknowledged) out.push_back(notification);
  }
  return out;
}

}  // namespace iotsentinel::core
