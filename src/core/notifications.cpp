#include "core/notifications.hpp"

namespace iotsentinel::core {

std::string to_string(NotificationReason reason) {
  switch (reason) {
    case NotificationReason::kRemoveDevice:
      return "remove-device";
    case NotificationReason::kManualReauthRequired:
      return "manual-reauth-required";
    case NotificationReason::kUnknownDeviceQuarantined:
      return "unknown-device-quarantined";
  }
  return "?";
}

bool NotificationCenter::notify(UserNotification notification) {
  for (const auto& existing : log_) {
    if (!existing.acknowledged && existing.device == notification.device &&
        existing.reason == notification.reason) {
      return false;  // already pending
    }
  }
  log_.push_back(std::move(notification));
  if (callback_) callback_(log_.back());
  return true;
}

std::size_t NotificationCenter::acknowledge(const net::MacAddress& device) {
  std::size_t count = 0;
  for (auto& notification : log_) {
    if (!notification.acknowledged && notification.device == device) {
      notification.acknowledged = true;
      ++count;
    }
  }
  return count;
}

std::vector<const UserNotification*> NotificationCenter::pending() const {
  std::vector<const UserNotification*> out;
  for (const auto& notification : log_) {
    if (!notification.acknowledged) out.push_back(&notification);
  }
  return out;
}

}  // namespace iotsentinel::core
