// The IoT Security Service (IoTSSP, paper Sect. III-B).
//
// Receives device fingerprints from Security Gateways, identifies the
// device-type with the two-stage identifier, assesses the type against the
// vulnerability database and returns the isolation level to enforce plus —
// for Restricted devices — the permitted vendor-cloud endpoints. The
// service is stateless with respect to its gateway clients, mirroring the
// paper's privacy design.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/identifier.hpp"
#include "core/vulnerability_db.hpp"
#include "net/ip_address.hpp"
#include "sdn/isolation.hpp"

namespace iotsentinel::core {

/// The IoTSSP's answer to one fingerprint submission.
struct ServiceVerdict {
  /// Identified type name; empty for new/unknown device-types.
  std::string device_type;
  bool is_known = false;
  sdn::IsolationLevel level = sdn::IsolationLevel::kStrict;
  /// Endpoints a Restricted device may still reach (vendor cloud).
  std::vector<net::Ipv4Address> permitted_endpoints;
  /// Full identification trace (candidates, discrimination use, ...).
  IdentificationResult identification;
};

/// The cloud-side service.
class IoTSecurityService {
 public:
  IoTSecurityService(DeviceIdentifier identifier, VulnerabilityDb db)
      : identifier_(std::move(identifier)), db_(std::move(db)) {}

  /// Movable (setup-time only — moving while assessments run is a race);
  /// the telemetry atomics require spelling the moves out.
  IoTSecurityService(IoTSecurityService&& other) noexcept
      : identifier_(std::move(other.identifier_)),
        db_(std::move(other.db_)),
        endpoints_(std::move(other.endpoints_)),
        assessments_(other.assessments_.load(std::memory_order_relaxed)),
        batches_(other.batches_.load(std::memory_order_relaxed)) {}
  IoTSecurityService& operator=(IoTSecurityService&& other) noexcept {
    identifier_ = std::move(other.identifier_);
    db_ = std::move(other.db_);
    endpoints_ = std::move(other.endpoints_);
    assessments_.store(other.assessments_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    batches_.store(other.batches_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    return *this;
  }

  /// Registers the permitted cloud endpoints for a device-type (consulted
  /// when the type is assessed Restricted).
  void register_endpoints(const std::string& device_type,
                          std::vector<net::Ipv4Address> endpoints);

  /// The paper's request path: fingerprint in, isolation level out.
  ///
  /// Thread safety: `assess`, `assess_into` and `assess_batch` are pure
  /// reads of state frozen at construction/registration time, so any
  /// number of threads may call them concurrently — the sharded gateway's
  /// classifier thread relies on this. `register_endpoints` is a setup-time
  /// mutation and must not race with assessments.
  [[nodiscard]] ServiceVerdict assess(const fp::Fingerprint& f) const;

  /// Reusable-buffer variant of `assess`: resets every field of `out`
  /// while keeping its buffers' capacity.
  void assess_into(const fp::Fingerprint& f, ServiceVerdict& out) const;

  /// Batched request path (one IoTSSP round for many completing devices):
  /// stage-1 classification runs through the bank's type-major
  /// `score_batch` sweep via `DeviceIdentifier::identify_batch`. Verdicts
  /// are field-for-field identical to per-fingerprint `assess` calls.
  /// `out` is resized to `fingerprints.size()`, reusing element buffers.
  void assess_batch(std::span<const fp::Fingerprint* const> fingerprints,
                    std::vector<ServiceVerdict>& out) const;

  /// `assess_batch` with stage-1 classification served by an explicit
  /// engine set — a hot-swapped ml::ForestBank snapshot pinned for the
  /// duration of the call (ml::ForestBankPublisher). Everything else
  /// (stage 2, vulnerability assessment, endpoints) is unchanged; with
  /// the identifier's own engines this is exactly `assess_batch`.
  void assess_batch_with(std::span<const ml::CompiledForest> engines,
                         std::span<const fp::Fingerprint* const> fingerprints,
                         std::vector<ServiceVerdict>& out) const;

  [[nodiscard]] const DeviceIdentifier& identifier() const {
    return identifier_;
  }
  [[nodiscard]] const VulnerabilityDb& vulnerability_db() const { return db_; }

  /// Fingerprints assessed so far (single + batched paths). Intrinsic
  /// service-side telemetry: the counters are relaxed atomics so the
  /// const/thread-safe contract of the assess family is unchanged.
  [[nodiscard]] std::uint64_t assessments() const {
    return assessments_.load(std::memory_order_relaxed);
  }
  /// `assess_batch` invocations (batch sizing = assessments / batches).
  [[nodiscard]] std::uint64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }

 private:
  /// Shared verdict tail: maps an already-filled `identification` to
  /// type/level/endpoints (used by both the single and batched paths).
  void finish_verdict(ServiceVerdict& verdict) const;

  DeviceIdentifier identifier_;
  VulnerabilityDb db_;
  std::unordered_map<std::string, std::vector<net::Ipv4Address>> endpoints_;
  /// Telemetry (see `assessments`); mutable because assessing is
  /// logically const.
  mutable std::atomic<std::uint64_t> assessments_{0};
  mutable std::atomic<std::uint64_t> batches_{0};
};

}  // namespace iotsentinel::core
